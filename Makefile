GO ?= go

.PHONY: all build test race vet lint ci bench bench-json microbench trace-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Enforce the determinism & persistence invariants (see README).
lint:
	$(GO) run ./cmd/pmnetlint ./...

# Everything CI runs, in the same order.
ci: build test race vet lint trace-smoke

# Trace determinism smoke: the pinned scenario's chrome://tracing bytes must
# match the golden (same bytes TestTraceGoldenSmoke pins), and 8 concurrent
# identical runs must produce byte-identical traces (pmnetsim -parallel
# byte-compares them internally and fails loudly on divergence).
trace-smoke:
	$(GO) run ./cmd/pmnetsim -workload ideal -clients 1 -requests 5 -seed 7 \
		-trace /tmp/pmnet_trace_smoke.json >/dev/null
	diff -q /tmp/pmnet_trace_smoke.json testdata/trace_smoke.json
	$(GO) run ./cmd/pmnetsim -workload ideal -clients 1 -requests 5 -seed 7 \
		-trace /tmp/pmnet_trace_smoke.json -parallel 8 >/dev/null
	diff -q /tmp/pmnet_trace_smoke.json testdata/trace_smoke.json
	@echo "trace-smoke: golden match + 8-way parallel byte-identical"

# Hot-path micro-benchmarks (allocs/op must stay 0; see the pins in the
# matching alloc_test.go files). Override BENCHTIME=1x for a CI smoke run.
BENCHTIME ?= 1s
microbench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineSchedule|BenchmarkTransmit|BenchmarkPersistAll' \
		-benchtime $(BENCHTIME) -benchmem ./internal/sim ./internal/netsim ./internal/pmem

# Full experiment suite, cells on a GOMAXPROCS-sized worker pool.
bench:
	$(GO) run ./cmd/pmnetbench -run all -parallel 0

# Machine-readable form of the same run (schema pmnetbench/v1).
bench-json:
	$(GO) run ./cmd/pmnetbench -run all -parallel 0 -json
