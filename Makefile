GO ?= go

.PHONY: all build test race vet lint ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Enforce the determinism & persistence invariants (see README).
lint:
	$(GO) run ./cmd/pmnetlint ./...

# Everything CI runs, in the same order.
ci: build test race vet lint
