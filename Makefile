GO ?= go

.PHONY: all build test race vet lint ci bench bench-json microbench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Enforce the determinism & persistence invariants (see README).
lint:
	$(GO) run ./cmd/pmnetlint ./...

# Everything CI runs, in the same order.
ci: build test race vet lint

# Hot-path micro-benchmarks (allocs/op must stay 0; see the pins in the
# matching alloc_test.go files). Override BENCHTIME=1x for a CI smoke run.
BENCHTIME ?= 1s
microbench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineSchedule|BenchmarkTransmit|BenchmarkPersistAll' \
		-benchtime $(BENCHTIME) -benchmem ./internal/sim ./internal/netsim ./internal/pmem

# Full experiment suite, cells on a GOMAXPROCS-sized worker pool.
bench:
	$(GO) run ./cmd/pmnetbench -run all -parallel 0

# Machine-readable form of the same run (schema pmnetbench/v1).
bench-json:
	$(GO) run ./cmd/pmnetbench -run all -parallel 0 -json
