GO ?= go

.PHONY: all build test race vet lint lint-sarif ci bench bench-json microbench trace-smoke \
	shard-smoke openloop-smoke speedup-smoke impairments-smoke bench-baseline \
	bench-regression benchdiff sched-baseline sched-gate

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Enforce the determinism & persistence invariants (see README).
lint:
	$(GO) run ./cmd/pmnetlint ./...

# Same audit as `lint`, emitted as a SARIF 2.1.0 log (lint.sarif) for code
# scanners; the exit code still reflects findings, so `make lint` semantics
# are unchanged and this target fails the same way.
lint-sarif:
	$(GO) run ./cmd/pmnetlint -format sarif ./... > lint.sarif

# Everything CI runs, in the same order.
ci: build test race vet lint trace-smoke shard-smoke openloop-smoke speedup-smoke \
	impairments-smoke sched-gate

# Trace determinism smoke: the pinned scenario's chrome://tracing bytes must
# match the golden (same bytes TestTraceGoldenSmoke pins), and 8 concurrent
# identical runs must produce byte-identical traces (pmnetsim -parallel
# byte-compares them internally and fails loudly on divergence).
trace-smoke:
	$(GO) run ./cmd/pmnetsim -workload ideal -clients 1 -requests 5 -seed 7 \
		-trace /tmp/pmnet_trace_smoke.json >/dev/null
	diff -q /tmp/pmnet_trace_smoke.json testdata/trace_smoke.json
	$(GO) run ./cmd/pmnetsim -workload ideal -clients 1 -requests 5 -seed 7 \
		-trace /tmp/pmnet_trace_smoke.json -parallel 8 >/dev/null
	diff -q /tmp/pmnet_trace_smoke.json testdata/trace_smoke.json
	@echo "trace-smoke: golden match + 8-way parallel byte-identical"

# Hot-path micro-benchmarks (allocs/op must stay 0; see the pins in the
# matching alloc_test.go files). Override BENCHTIME=1x for a CI smoke run.
BENCHTIME ?= 1s
microbench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineSchedule|BenchmarkCancel|BenchmarkTransmit|BenchmarkPersistAll|BenchmarkEpochOverhead|BenchmarkBarrier' \
		-benchtime $(BENCHTIME) -benchmem ./internal/sim ./internal/netsim ./internal/pmem ./internal/sim/pdes

# Full experiment suite, cells on a GOMAXPROCS-sized worker pool.
bench:
	$(GO) run ./cmd/pmnetbench -run all -parallel 0

# Machine-readable form of the same run (schema pmnetbench/v1).
bench-json:
	$(GO) run ./cmd/pmnetbench -run all -parallel 0 -json

# Sharded-execution determinism smoke: the conservative-PDES path must render
# byte-identical output at every shard count (DESIGN.md §10.4). Uses the
# "scale" experiment (always sharded) so the check stays fast; CI diffs the
# full suite.
shard-smoke:
	$(GO) run ./cmd/pmnetbench -run scale -seed 1 -parallel 1 -shards 1 > /tmp/pmnet_shards1.txt
	$(GO) run ./cmd/pmnetbench -run scale -seed 1 -parallel 1 -shards 4 > /tmp/pmnet_shards4.txt
	diff -q /tmp/pmnet_shards1.txt /tmp/pmnet_shards4.txt
	$(GO) run ./cmd/pmnetsim -workload ideal -clients 8 -requests 50 -seed 7 \
		-shards 1 -trace /tmp/pmnet_sim_shards1.json >/dev/null
	$(GO) run ./cmd/pmnetsim -workload ideal -clients 8 -requests 50 -seed 7 \
		-shards 4 -trace /tmp/pmnet_sim_shards4.json >/dev/null
	diff -q /tmp/pmnet_sim_shards1.json /tmp/pmnet_sim_shards4.json
	@echo "shard-smoke: shards 1 vs 4 byte-identical (tables + trace)"

# Open-loop scale smoke: live state must be O(active sessions), never
# O(users). TestOpenLoopMemoryFlat runs the same offered load against 10k and
# 100k logical users and asserts (a) the active-session table stays bounded
# by the admission cap and (b) retained heap does not grow with the user
# count — the invariant that makes "retwis at 1M users" a config number.
openloop-smoke:
	$(GO) test -run TestOpenLoopMemoryFlat -v ./internal/harness
	@echo "openloop-smoke: 10x users, flat retained heap"

# Speedup-curve smoke: the "speedup" experiment runs one pinned scenario at
# shards 1, 2 and 4 and renders the per-shard virtual-time observables side
# by side — any divergence shows up as a loud MISMATCH row. The fresh JSON is
# then benchdiff-gated against the committed baseline (unmatched baseline
# cells are tolerated; the gate covers matched cells). The wall-clock curve
# itself is machine-relative: flat at cpus=1 is the shared worker budget
# working as designed, not a regression.
speedup-smoke:
	$(GO) run ./cmd/pmnetbench -run speedup -seed 1 -parallel 1 > /tmp/pmnet_speedup.txt
	@! grep -q MISMATCH /tmp/pmnet_speedup.txt || \
		{ echo "speedup-smoke: shard counts diverged:"; cat /tmp/pmnet_speedup.txt; exit 1; }
	$(GO) run ./cmd/pmnetbench -run speedup -seed 1 -parallel 1 -json > /tmp/pmnet_speedup.json
	$(GO) run ./cmd/benchdiff BENCH_baseline.json /tmp/pmnet_speedup.json
	@echo "speedup-smoke: shards 1/2/4 byte-identical observables; events/sec gated"

# Impairment-matrix smoke: the scenario × system scorecard must be
# byte-identical on the classic and sharded engines (every impairment draw
# comes from a per-link RNG stream owned by the sending partition), must keep
# its verdict spread — at least one "pmnet" win and the ack-starve "degrades"
# row, the cell the experiment exists to show — and its events/sec is
# benchdiff-gated against the committed baseline.
impairments-smoke:
	$(GO) run ./cmd/pmnetbench -run impairments -seed 1 -parallel 1 -shards 1 > /tmp/pmnet_impair1.txt
	$(GO) run ./cmd/pmnetbench -run impairments -seed 1 -parallel 1 -shards 4 > /tmp/pmnet_impair4.txt
	diff -q /tmp/pmnet_impair1.txt /tmp/pmnet_impair4.txt
	@grep -q 'pmnet *$$' /tmp/pmnet_impair1.txt || \
		{ echo "impairments-smoke: no winning scenario in matrix:"; cat /tmp/pmnet_impair1.txt; exit 1; }
	@grep -q 'degrades *$$' /tmp/pmnet_impair1.txt || \
		{ echo "impairments-smoke: no degrading scenario in matrix:"; cat /tmp/pmnet_impair1.txt; exit 1; }
	$(GO) run ./cmd/pmnetbench -run impairments -seed 1 -parallel 1 -json > /tmp/pmnet_impair.json
	$(GO) run ./cmd/benchdiff BENCH_baseline.json /tmp/pmnet_impair.json
	@echo "impairments-smoke: shards 1 vs 4 byte-identical; verdict spread held; events/sec gated"

# Regenerate the committed wall-clock baseline (run on a quiet machine, then
# commit the file so `make bench-regression` and CI have a reference point).
bench-baseline:
	$(GO) run ./cmd/pmnetbench -run all -seed 1 -parallel 0 -json > BENCH_baseline.json

# Compare two pmnetbench/v1 documents; exits 1 on a >15% events-per-second
# regression. Usage: make benchdiff OLD=BENCH_baseline.json NEW=bench.json
OLD ?= BENCH_baseline.json
NEW ?= /tmp/pmnet_bench_new.json
benchdiff:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

# Bench-regression gate: rerun the suite and compare events/sec against the
# committed baseline. Wall-clock numbers are machine-relative — refresh the
# baseline (make bench-baseline) when moving to different hardware.
bench-regression:
	$(GO) run ./cmd/pmnetbench -run all -seed 1 -parallel 0 -json > $(NEW)
	$(GO) run ./cmd/benchdiff BENCH_baseline.json $(NEW)

# Scheduler micro-benchmark gate. Fixed iteration counts (not -benchtime 1s)
# keep the measured loop identical between baseline and candidate, so ns/op is
# comparable even on a noisy single-core runner. The ns/op threshold is
# deliberately generous (40%) — the tight screw is allocs/op, which is
# deterministic and must not grow at all (benchdiff -gobench fails on any
# increase). Refresh the committed baseline with `make sched-baseline` after an
# intentional scheduler change or on new hardware.
SCHEDBENCHTIME ?= 300000x
sched-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineSchedule|BenchmarkCancel' \
		-benchtime $(SCHEDBENCHTIME) -benchmem ./internal/sim | tee BENCH_sched_baseline.txt

sched-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineSchedule|BenchmarkCancel' \
		-benchtime $(SCHEDBENCHTIME) -benchmem ./internal/sim > /tmp/pmnet_sched_new.txt
	$(GO) run ./cmd/benchdiff -gobench -threshold 40 BENCH_sched_baseline.txt /tmp/pmnet_sched_new.txt
