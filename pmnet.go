// Package pmnet is a faithful reimplementation-as-simulation of
// "PMNet: In-Network Data Persistence" (ISCA 2021): a programmable network
// device augmented with persistent memory that logs in-flight update
// requests and acknowledges clients with sub-RTT latency, moving the server
// network stack and request processing off the critical path.
//
// The package exposes:
//
//   - The client/server software interface of the paper's Table I
//     (StartSession / Session.SendUpdate / Session.Bypass / EndSession on
//     the client; the Server library with PMNet_recv/PMNet_ack semantics).
//   - Testbed construction: build a simulated cluster (clients, switches,
//     PMNet devices as ToR switch or server NIC, replication chains, read
//     caching) on a deterministic virtual clock.
//   - Failure injection and recovery: power-fail the server or a PMNet
//     device and drive the paper's recovery protocol.
//
// Everything runs on a discrete-event simulation (internal/sim): latencies
// are modelled, deterministic, and calibrated against the paper's testbed,
// so experiments are bit-reproducible and immune to GC pauses or host
// scheduling. See DESIGN.md for the calibration and substitution notes.
package pmnet

import (
	"pmnet/internal/client"
	"pmnet/internal/protocol"
	"pmnet/internal/server"
	"pmnet/internal/sim"
)

// Re-exported aliases so applications need only import pmnet.

// Time is virtual time in nanoseconds (alias of the simulator's clock type).
type Time = sim.Time

// Common durations on the virtual clock.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Request is an application-level operation (GET/PUT/DELETE/LOCK/TXN).
type Request = protocol.Request

// Response is the server's application-level reply.
type Response = protocol.Response

// Status is the application-level result code.
type Status = protocol.Status

// Result reports a completed client request.
type Result = client.Result

// Handler executes application requests on the server, returning the
// response and the modelled CPU cost.
type Handler = server.Handler

// HandlerFunc adapts a function to Handler.
type HandlerFunc = server.HandlerFunc

// IdealHandler is the §VI-B1 microbenchmark handler: acknowledge without
// processing.
type IdealHandler = server.IdealHandler

// CrashFaultHandler is implemented by handlers whose persistent state must
// power-fail and recover in lockstep with the server (the KV and Redis
// handlers do). NewTestbed wires these hooks automatically.
type CrashFaultHandler interface {
	// Crash power-fails the application's PM: unpersisted state is lost.
	Crash()
	// Restart replays the application's redo log and reattaches handles.
	Restart()
}

// Status codes.
const (
	StatusOK       = protocol.StatusOK
	StatusNotFound = protocol.StatusNotFound
	StatusLocked   = protocol.StatusLocked
	StatusError    = protocol.StatusError
)

// Request constructors (see protocol package for details).
var (
	// GetReq builds a read request.
	GetReq = protocol.GetReq
	// PutReq builds an update request.
	PutReq = protocol.PutReq
	// DeleteReq builds a delete request.
	DeleteReq = protocol.DeleteReq
	// LockReq builds a lock-acquire request (always bypasses PMNet, §III-C).
	LockReq = protocol.LockReq
	// UnlockReq builds a lock-release request.
	UnlockReq = protocol.UnlockReq
	// TxnReq builds a composite transactional request.
	TxnReq = protocol.TxnReq
	// ScanReq builds an ordered range-scan request (YCSB-E style); ordered
	// engines (btree, rbtree, skiplist, ctree) serve it, the hashmap
	// rejects it.
	ScanReq = protocol.ScanReq
)

// Session is a client connection (Table I: PMNet_start_session /
// PMNet_send_update / PMNet_bypass / PMNet_end_session).
type Session = client.Session

// Design selects the system under test (§VI-A4's design points).
type Design uint8

const (
	// ClientServer is the baseline: every packet goes to the server; updates
	// complete on the server's acknowledgement.
	ClientServer Design = iota
	// PMNetSwitch places the PMNet device as the server rack's ToR switch.
	PMNetSwitch
	// PMNetNIC places the PMNet device as a bump-in-the-wire at the server's
	// NIC (the Microsoft SmartNIC-style deployment).
	PMNetNIC
)

func (d Design) String() string {
	switch d {
	case ClientServer:
		return "Client-Server"
	case PMNetSwitch:
		return "PMNet-Switch"
	case PMNetNIC:
		return "PMNet-NIC"
	default:
		return "Design(?)"
	}
}

// StackKind selects the host network-stack model (§VI-B7).
type StackKind uint8

const (
	// KernelStack is the default in-kernel UDP/TCP path.
	KernelStack StackKind = iota
	// BypassStack is the libVMA-style user-space path.
	BypassStack
)
