package pmnet_test

// Randomized fault injection validated by the persistence checker
// (internal/checker): drive unique-key updates from several clients while
// crashing and recovering the server at random points, optionally with
// packet loss, and verify the paper's end-to-end guarantees — every
// acknowledged update survives, per-session order holds, and SeqNum dedupe
// yields exactly-once application.

import (
	"fmt"
	"testing"

	"pmnet"
	"pmnet/internal/apps"
	"pmnet/internal/checker"
	"pmnet/internal/kv"
	"pmnet/internal/sim"
)

type faultScenario struct {
	name     string
	seed     uint64
	clients  int
	updates  int // per client
	crashes  int
	lossRate float64
	design   pmnet.Design
	repl     int
}

func runFaultScenario(t *testing.T, sc faultScenario) {
	t.Helper()
	arena := kv.NewArena(64 << 20)
	engine, err := kv.OpenHashmap(arena)
	if err != nil {
		t.Fatal(err)
	}
	kvHandler := apps.NewKVHandler(engine, arena)
	chk := checker.New()

	repl := sc.repl
	if repl == 0 {
		repl = 1
	}
	bed := pmnet.NewTestbed(pmnet.Config{
		Design:      sc.design,
		Clients:     sc.clients,
		Seed:        sc.seed,
		Replication: repl,
		Handler:     chk.WrapHandler(kvHandler),
		LossRate:    sc.lossRate,
		Timeout:     300 * pmnet.Microsecond,
	})

	for c := 0; c < sc.clients; c++ {
		c := c
		var issue func(k int)
		issue = func(k int) {
			if k >= sc.updates {
				return
			}
			key := fmt.Sprintf("s%d-u%04d", c+1, k)
			val := fmt.Sprintf("v%d", k)
			chk.Issue(uint16(c+1), key, val)
			bed.Session(c).SendUpdate(pmnet.PutReq([]byte(key), []byte(val)), func(r pmnet.Result) {
				if r.Err == nil {
					chk.Complete(key)
				}
				issue(k + 1)
			})
		}
		issue(0)
	}

	// Random crash schedule on the virtual clock. CrashServer/RecoverServer
	// reach the KV handler's hooks through the checker's wrapper (testbed
	// probes the handler with server.As, which walks the Unwrap chain).
	r := sim.NewRand(sc.seed * 31)
	for i := 0; i < sc.crashes; i++ {
		bed.RunFor(pmnet.Time(100+r.Intn(400)) * pmnet.Microsecond)
		bed.CrashServer()
		bed.RunFor(pmnet.Time(50+r.Intn(200)) * pmnet.Microsecond)
		bed.RecoverServer()
	}
	bed.Run() // quiesce

	issued, completed, applied := chk.Summary()
	t.Logf("%s: issued=%d completed=%d applied=%d", sc.name, issued, completed, applied)
	if completed == 0 {
		t.Fatalf("no update ever completed")
	}
	violations := chk.Check(func(key string) (string, bool) {
		v, ok := kvHandler.Engine.Get([]byte(key))
		return string(v), ok
	})
	for _, v := range violations {
		t.Errorf("%s: %v", sc.name, v)
	}
	if len(violations) > 0 {
		t.FailNow()
	}
	// The PMNet logs must eventually drain (all acknowledged work retired).
	for i, d := range bed.Devices {
		if live := d.Log().LiveEntries(); live != 0 {
			t.Errorf("device %d holds %d live entries after quiescence", i, live)
		}
	}
	// Probe via the unwrap-aware helper: a future decorated engine must not
	// silently lose the invariant check.
	ver, ok := kv.As[interface{ Verify() error }](kvHandler.Engine)
	if !ok {
		t.Fatalf("engine does not expose Verify through its wrapper chain")
	}
	if err := ver.Verify(); err != nil {
		t.Errorf("engine invariants broken after faults: %v", err)
	}
}

// hookProbe decorates a handler and counts crash/restart deliveries. It
// implements CrashFaultHandler itself so it can stand in for the KV/Redis
// handlers in the wrapper regression below.
type hookProbe struct {
	pmnet.Handler
	crashes  int
	restarts int
}

func (p *hookProbe) Crash()   { p.crashes++ }
func (p *hookProbe) Restart() { p.restarts++ }

// TestCrashHooksReachWrappedHandler is the regression for the bug where
// NewTestbed type-asserted the configured handler to CrashFaultHandler
// directly: any interposed wrapper (checker.WrapHandler here) made the
// assertion fail and crash/restart hooks were silently dropped. The testbed
// now walks the wrapper's Unwrap chain, so the hooks must fire.
func TestCrashHooksReachWrappedHandler(t *testing.T) {
	probe := &hookProbe{Handler: pmnet.IdealHandler{}}
	chk := checker.New()
	bed := pmnet.NewTestbed(pmnet.Config{
		Design:  pmnet.PMNetSwitch,
		Clients: 1,
		Seed:    7,
		Handler: chk.WrapHandler(probe),
	})
	bed.RunFor(50 * pmnet.Microsecond)
	bed.CrashServer()
	bed.RunFor(50 * pmnet.Microsecond)
	bed.RecoverServer()
	bed.Run()
	if probe.crashes != 1 || probe.restarts != 1 {
		t.Fatalf("hooks lost behind the wrapper: crashes=%d restarts=%d, want 1/1",
			probe.crashes, probe.restarts)
	}
}

func TestFaultInjectionSingleCrash(t *testing.T) {
	runFaultScenario(t, faultScenario{
		name: "single-crash", seed: 11, clients: 3, updates: 60, crashes: 1,
		design: pmnet.PMNetSwitch,
	})
}

func TestFaultInjectionRepeatedCrashes(t *testing.T) {
	runFaultScenario(t, faultScenario{
		name: "repeated-crashes", seed: 13, clients: 4, updates: 80, crashes: 3,
		design: pmnet.PMNetSwitch,
	})
}

func TestFaultInjectionCrashesWithLoss(t *testing.T) {
	runFaultScenario(t, faultScenario{
		name: "crashes+loss", seed: 17, clients: 3, updates: 50, crashes: 2,
		lossRate: 0.02, design: pmnet.PMNetSwitch,
	})
}

func TestFaultInjectionReplicatedChain(t *testing.T) {
	runFaultScenario(t, faultScenario{
		name: "replicated", seed: 19, clients: 2, updates: 50, crashes: 2,
		design: pmnet.PMNetSwitch, repl: 3,
	})
}

// The NIC deployment places the PMNet device as a bump-in-the-wire at the
// server (§IV-A): the log sits one short hop from the crash domain it
// protects, so the crash/recovery and loss machinery must hold there too.
func TestFaultInjectionNICCrash(t *testing.T) {
	runFaultScenario(t, faultScenario{
		name: "nic-crash", seed: 37, clients: 3, updates: 60, crashes: 1,
		design: pmnet.PMNetNIC,
	})
}

func TestFaultInjectionNICCrashesWithLoss(t *testing.T) {
	runFaultScenario(t, faultScenario{
		name: "nic-crashes+loss", seed: 41, clients: 3, updates: 50, crashes: 2,
		lossRate: 0.02, design: pmnet.PMNetNIC,
	})
}

func TestFaultInjectionBaselineForComparison(t *testing.T) {
	// The guarantees must also hold in the baseline (completions come from
	// server-ACKs; crash recovery relies on client retries alone).
	runFaultScenario(t, faultScenario{
		name: "baseline", seed: 23, clients: 3, updates: 40, crashes: 1,
		design: pmnet.ClientServer,
	})
}

func TestFaultInjectionSweepSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep in long mode only")
	}
	for seed := uint64(100); seed < 110; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runFaultScenario(t, faultScenario{
				name: "sweep", seed: seed, clients: 3, updates: 40,
				crashes: 2, lossRate: 0.01, design: pmnet.PMNetSwitch,
			})
		})
	}
}

// TestFaultInjectionDeviceCrash covers the §IV-E1 intermittent device
// failures (Figure 12): the PMNet device power-fails mid-stream. Clients
// stall (no ACKs), time out and resend; the device restarts with its
// battery-backed log intact (RebuildIndex). All guarantees must hold.
func TestFaultInjectionDeviceCrash(t *testing.T) {
	arena := kv.NewArena(64 << 20)
	engine, err := kv.OpenHashmap(arena)
	if err != nil {
		t.Fatal(err)
	}
	kvHandler := apps.NewKVHandler(engine, arena)
	chk := checker.New()
	bed := pmnet.NewTestbed(pmnet.Config{
		Design:  pmnet.PMNetSwitch,
		Clients: 3,
		Seed:    31,
		Handler: chk.WrapHandler(kvHandler),
		Timeout: 200 * pmnet.Microsecond,
	})
	for c := 0; c < 3; c++ {
		c := c
		var issue func(k int)
		issue = func(k int) {
			if k >= 60 {
				return
			}
			key := fmt.Sprintf("d%d-u%03d", c+1, k)
			chk.Issue(uint16(c+1), key, "v")
			bed.Session(c).SendUpdate(pmnet.PutReq([]byte(key), []byte("v")), func(r pmnet.Result) {
				if r.Err == nil {
					chk.Complete(key)
				}
				issue(k + 1)
			})
		}
		issue(0)
	}
	// Crash the device twice mid-stream.
	bed.RunFor(250 * pmnet.Microsecond)
	bed.Devices[0].Fail()
	bed.RunFor(150 * pmnet.Microsecond) // clients stall and time out
	bed.Devices[0].Restart()
	bed.RunFor(400 * pmnet.Microsecond)
	bed.Devices[0].Fail()
	bed.RunFor(100 * pmnet.Microsecond)
	bed.Devices[0].Restart()
	bed.Run()

	issued, completed, applied := chk.Summary()
	t.Logf("device-crash: issued=%d completed=%d applied=%d", issued, completed, applied)
	if completed != issued {
		t.Fatalf("only %d/%d completed (resends should recover device crashes)", completed, issued)
	}
	violations := chk.Check(func(key string) (string, bool) {
		v, ok := kvHandler.Engine.Get([]byte(key))
		return string(v), ok
	})
	for _, v := range violations {
		t.Errorf("%v", v)
	}
	if bed.Devices[0].Log().LiveEntries() != 0 {
		t.Errorf("device log leaked %d entries", bed.Devices[0].Log().LiveEntries())
	}
}
