package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"pmnet/internal/benchfmt"
	"pmnet/internal/harness"
)

// normalize zeroes the wall-clock-class fields of a document — everything
// that legitimately varies run to run or with the shard count. What remains
// (tables, notes, metrics, per-cell virtual time, events, latency
// percentiles, counters) is pure virtual-time output and must be
// byte-identical across shard counts.
func normalize(d benchfmt.Doc) benchfmt.Doc {
	d.Shards = 0
	d.WallMs = 0
	d.Perf.EventsPerSec = 0
	d.Perf.Allocs = 0
	d.Perf.AllocsPerEvent = 0
	for i := range d.Experiments {
		d.Experiments[i].WallMs = 0
		for j := range d.Experiments[i].Cells {
			d.Experiments[i].Cells[j].WallMs = 0
		}
	}
	return d
}

// TestShardCountInvariantOutput pins the tentpole guarantee at the binary's
// output layer: the JSON document (after wall-clock normalization) and the
// raw CSV rendering are byte-identical at -shards 1 and -shards N.
func TestShardCountInvariantOutput(t *testing.T) {
	ids := []string{"fig2", "scale"}
	run := func(shards int) (*harness.BatchResult, benchfmt.Doc) {
		b, err := harness.RunExperiments(ids, harness.Options{
			Seed: 3, Parallel: 1, Shards: shards,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return b, normalize(benchfmt.FromBatch(b))
	}

	baseBatch, baseDoc := run(1)
	baseJSON, err := json.MarshalIndent(baseDoc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var baseCSV bytes.Buffer
	for _, er := range baseBatch.Experiments {
		baseCSV.WriteString(er.Table.CSV())
	}

	for _, shards := range []int{2, 4} {
		batch, doc := run(shards)
		gotJSON, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseJSON, gotJSON) {
			t.Errorf("shards=%d: normalized JSON differs from shards=1 (%d vs %d bytes)",
				shards, len(gotJSON), len(baseJSON))
		}
		var gotCSV bytes.Buffer
		for _, er := range batch.Experiments {
			gotCSV.WriteString(er.Table.CSV())
		}
		if !bytes.Equal(baseCSV.Bytes(), gotCSV.Bytes()) {
			t.Errorf("shards=%d: CSV rendering differs from shards=1", shards)
		}
	}
}
