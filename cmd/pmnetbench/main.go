// Command pmnetbench regenerates the tables and figures of the PMNet paper
// (ISCA 2021) on the simulated testbed.
//
// Usage:
//
//	pmnetbench [-run all|fig2|fig15|fig16|fig18|fig19|fig20|fig21|fig22|recovery|tpcclock] [-seed N]
//
// Each experiment prints the rows the corresponding figure plots, plus notes
// comparing the measured shape against the paper's reported numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmnet/internal/harness"
)

func main() {
	run := flag.String("run", "all", "experiment id or 'all'")
	seed := flag.Uint64("seed", 1, "simulation seed (experiments are deterministic per seed)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "table", "output format: table | csv")
	flag.Parse()

	if *list {
		for _, id := range harness.ExperimentOrder {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *run == "all" {
		ids = harness.ExperimentOrder
	} else {
		for _, id := range strings.Split(*run, ",") {
			if _, ok := harness.Experiments[id]; !ok {
				fmt.Fprintf(os.Stderr, "pmnetbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		res := harness.Experiments[id](*seed)
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n", res.ID, res.Table.Title)
			fmt.Print(res.Table.CSV())
		default:
			fmt.Print(res.Table.Format())
			for _, n := range res.Notes {
				fmt.Printf("  note: %s\n", n)
			}
		}
	}
}
