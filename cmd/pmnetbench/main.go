// Command pmnetbench regenerates the tables and figures of the PMNet paper
// (ISCA 2021) on the simulated testbed.
//
// Usage:
//
//	pmnetbench [-run all|fig2|fig15|fig16|fig18|fig19|fig20|fig21|fig22|recovery|tpcclock|scale|openloop] [-seed N] [-parallel N] [-shards N] [-format table|csv|json]
//
// Each experiment prints the rows the corresponding figure plots, plus notes
// comparing the measured shape against the paper's reported numbers.
// Experiment cells are independent simulations; -parallel N executes them on a
// worker pool of that size (0 = GOMAXPROCS) with output byte-identical to
// -parallel 1. -shards N runs every cell's testbed on the conservative-PDES
// path (internal/sim/pdes) with N engine shards; output is byte-identical for
// every N ≥ 1, so the flag is purely a wall-clock knob — pair it with
// -parallel 1, since intra-cell and inter-cell parallelism compete for the
// same cores. -json (or -format json) emits the machine-readable form with
// per-cell virtual-time stats and real wall-clock timings; cmd/benchdiff
// compares two such documents. -cpuprofile/-memprofile write runtime/pprof
// profiles of the batch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pmnet/internal/benchfmt"
	"pmnet/internal/harness"
	"pmnet/internal/prof"
)

func main() {
	run := flag.String("run", "all", "experiment id or 'all'")
	seed := flag.Uint64("seed", 1, "simulation seed (experiments are deterministic per seed)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "table", "output format: table | csv | json")
	parallel := flag.Int("parallel", 0, "cell worker-pool size (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "shorthand for -format json")
	shards := flag.Int("shards", 0, "run every cell on the conservative-PDES path with N engine shards (output byte-identical for every N >= 1; combine with -parallel 1 to avoid oversubscription)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *list {
		for _, id := range harness.ExperimentOrder {
			fmt.Println(id)
		}
		return
	}
	if *jsonOut {
		*format = "json"
	}

	var ids []string
	if *run == "all" {
		ids = harness.ExperimentOrder
	} else {
		for _, id := range strings.Split(*run, ",") {
			if _, ok := harness.Specs[id]; !ok {
				fmt.Fprintf(os.Stderr, "pmnetbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	stopProfiles, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmnetbench: %v\n", err)
		os.Exit(1)
	}

	batch, err := harness.RunExperiments(ids, harness.Options{Seed: *seed, Parallel: *parallel, Shards: *shards})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmnetbench: %v\n", err)
		os.Exit(1)
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "pmnetbench: %v\n", err)
		os.Exit(1)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(benchfmt.FromBatch(batch)); err != nil {
			fmt.Fprintf(os.Stderr, "pmnetbench: %v\n", err)
			os.Exit(1)
		}
	case "csv":
		for i, er := range batch.Experiments {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("# %s: %s\n", er.ID, er.Table.Title)
			fmt.Print(er.Table.CSV())
			for _, n := range er.Notes {
				fmt.Printf("# note: %s\n", n)
			}
		}
	default:
		for i, er := range batch.Experiments {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(er.Text())
		}
	}
}
