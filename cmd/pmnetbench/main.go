// Command pmnetbench regenerates the tables and figures of the PMNet paper
// (ISCA 2021) on the simulated testbed.
//
// Usage:
//
//	pmnetbench [-run all|fig2|fig15|fig16|fig18|fig19|fig20|fig21|fig22|recovery|tpcclock] [-seed N] [-parallel N] [-format table|csv|json]
//
// Each experiment prints the rows the corresponding figure plots, plus notes
// comparing the measured shape against the paper's reported numbers.
// Experiment cells are independent simulations; -parallel N executes them on a
// worker pool of that size (0 = GOMAXPROCS) with output byte-identical to
// -parallel 1. -json (or -format json) emits the machine-readable form with
// per-cell virtual-time stats and real wall-clock timings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pmnet/internal/harness"
)

// The JSON document: schema "pmnetbench/v1".
type jsonDoc struct {
	Schema      string           `json:"schema"`
	Seed        uint64           `json:"seed"`
	Parallel    int              `json:"parallel"`
	WallMs      float64          `json:"wall_ms"`
	Perf        jsonPerf         `json:"perf"`
	Experiments []jsonExperiment `json:"experiments"`
}

// jsonPerf is the batch-level perf trajectory (BENCH artifacts). Events is
// deterministic per seed; the rates and allocation counts are wall-clock-class
// fields that vary run to run.
type jsonPerf struct {
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

type jsonExperiment struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Columns []string           `json:"columns"`
	Rows    [][]string         `json:"rows"`
	Notes   []string           `json:"notes"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	WallMs  float64            `json:"wall_ms"`
	Cells   []jsonCell         `json:"cells"`
}

type jsonCell struct {
	Key       string  `json:"key"`
	WallMs    float64 `json:"wall_ms"`
	VirtualUs float64 `json:"virtual_us"`
	Events    uint64  `json:"events,omitempty"`
	Requests  uint64  `json:"requests,omitempty"`
	MeanUs    float64 `json:"mean_us,omitempty"`
	P50Us     float64 `json:"p50_us,omitempty"`
	P99Us     float64 `json:"p99_us,omitempty"`
	// Counters is the cell's unified metrics registry at quiescence —
	// every layer's counters under dotted names (encoding/json emits map
	// keys sorted, so the block is byte-stable across runs).
	Counters map[string]uint64 `json:"counters,omitempty"`
}

func toJSON(b *harness.BatchResult) jsonDoc {
	doc := jsonDoc{
		Schema:   "pmnetbench/v1",
		Seed:     b.Seed,
		Parallel: b.Parallel,
		WallMs:   float64(b.Wall.Microseconds()) / 1e3,
		Perf: jsonPerf{
			Events:         b.Perf.Events,
			EventsPerSec:   b.Perf.EventsPerSec,
			Allocs:         b.Perf.Allocs,
			AllocsPerEvent: b.Perf.AllocsPerEvent,
		},
	}
	for _, er := range b.Experiments {
		je := jsonExperiment{
			ID:      er.ID,
			Title:   er.Table.Title,
			Columns: er.Table.Columns,
			Rows:    er.Table.Rows,
			Notes:   er.Notes,
			Metrics: er.Metrics,
			WallMs:  float64(er.Wall.Microseconds()) / 1e3,
		}
		if je.Notes == nil {
			je.Notes = []string{}
		}
		for _, c := range er.Cells {
			jc := jsonCell{
				Key:       c.Key,
				WallMs:    float64(c.Wall.Microseconds()) / 1e3,
				VirtualUs: c.VirtualEnd.Micros(),
				Events:    c.Events,
			}
			if c.Run != nil && c.Run.Requests > 0 {
				jc.Requests = c.Run.Requests
				jc.MeanUs = c.Run.Hist.Mean().Micros()
				jc.P50Us = c.Run.Hist.Percentile(50).Micros()
				jc.P99Us = c.Run.Hist.Percentile(99).Micros()
			}
			if len(c.Counters) > 0 {
				jc.Counters = make(map[string]uint64, len(c.Counters))
				for _, s := range c.Counters {
					jc.Counters[s.Name] = s.Value
				}
			}
			je.Cells = append(je.Cells, jc)
		}
		doc.Experiments = append(doc.Experiments, je)
	}
	return doc
}

func main() {
	run := flag.String("run", "all", "experiment id or 'all'")
	seed := flag.Uint64("seed", 1, "simulation seed (experiments are deterministic per seed)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "table", "output format: table | csv | json")
	parallel := flag.Int("parallel", 0, "cell worker-pool size (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "shorthand for -format json")
	flag.Parse()

	if *list {
		for _, id := range harness.ExperimentOrder {
			fmt.Println(id)
		}
		return
	}
	if *jsonOut {
		*format = "json"
	}

	var ids []string
	if *run == "all" {
		ids = harness.ExperimentOrder
	} else {
		for _, id := range strings.Split(*run, ",") {
			if _, ok := harness.Specs[id]; !ok {
				fmt.Fprintf(os.Stderr, "pmnetbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	batch, err := harness.RunExperiments(ids, harness.Options{Seed: *seed, Parallel: *parallel})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmnetbench: %v\n", err)
		os.Exit(1)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(toJSON(batch)); err != nil {
			fmt.Fprintf(os.Stderr, "pmnetbench: %v\n", err)
			os.Exit(1)
		}
	case "csv":
		for i, er := range batch.Experiments {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("# %s: %s\n", er.ID, er.Table.Title)
			fmt.Print(er.Table.CSV())
			for _, n := range er.Notes {
				fmt.Printf("# note: %s\n", n)
			}
		}
	default:
		for i, er := range batch.Experiments {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(er.Text())
		}
	}
}
