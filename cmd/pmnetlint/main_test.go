package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The driver is tested at the run() boundary — the exact surface main wires
// to os.Exit/os.Stdout/os.Stderr — covering the three exit codes and both
// output formats against the in-tree fixture corpus.

// fixtureDir is a package directory guaranteed to produce findings: the
// wallclock fixture corpus (full of deliberate violations, and never walked
// by ./...).
const fixtureDir = "../../internal/analysis/testdata/src/wallclock"

// cleanDir is a package the full analyzer suite accepts as-is.
const cleanDir = "../../internal/pmem"

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCleanIsZero(t *testing.T) {
	code, stdout, stderr := runLint(t, cleanDir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings:\n%s", stdout)
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	code, stdout, stderr := runLint(t, fixtureDir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "wallclock") {
		t.Errorf("findings output does not mention the analyzer:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing the finding count summary: %q", stderr)
	}
}

func TestExitUsageErrorIsTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-format", "yaml"}, // unknown format
		{"-nosuchflag"},     // unknown flag
		{"/"},               // outside the module
		{"-baseline", "no-such-file.json", cleanDir}, // unreadable baseline
	} {
		code, _, stderr := runLint(t, args...)
		if code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %q)", args, code, stderr)
		}
		if stderr == "" {
			t.Errorf("run(%v): exit 2 with no diagnostic on stderr", args)
		}
	}
}

func TestSARIFOutput(t *testing.T) {
	code, stdout, stderr := runLint(t, "-format", "sarif", fixtureDir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version = %q schema = %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "pmnetlint" {
		t.Fatalf("want exactly one run driven by pmnetlint, got %+v", log.Runs)
	}
	run := log.Runs[0]
	// Rule table: the driver pseudo-rule plus all nine analyzers.
	if got, want := len(run.Tool.Driver.Rules), 10; got != want {
		t.Errorf("rule table has %d entries, want %d", got, want)
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for the violation-laden fixture corpus")
	}
	ruleIDs := make(map[string]int)
	for i, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = i
	}
	for _, r := range run.Results {
		if r.Level != "error" {
			t.Errorf("result level = %q, want error", r.Level)
		}
		if idx, ok := ruleIDs[r.RuleID]; !ok || idx != r.RuleIndex {
			t.Errorf("result ruleId %q / ruleIndex %d does not match the rule table", r.RuleID, r.RuleIndex)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if !strings.HasPrefix(loc.ArtifactLocation.URI, "internal/analysis/testdata/src/wallclock/") {
			t.Errorf("artifact URI %q is not module-root-relative", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("result has no line: %+v", loc)
		}
	}
}

func TestSARIFDeterministic(t *testing.T) {
	_, first, _ := runLint(t, "-format", "sarif", fixtureDir)
	_, second, _ := runLint(t, "-format", "sarif", fixtureDir)
	if first != second {
		t.Error("two identical runs produced different SARIF output")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "lint-baseline.json")

	code, _, stderr := runLint(t, "-write-baseline", baseline, fixtureDir)
	if code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0\nstderr:\n%s", code, stderr)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var entries []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Message  string `json:"message"`
		Count    int    `json:"count"`
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("baseline is empty for the violation-laden fixture corpus")
	}
	for _, e := range entries {
		if e.Count <= 0 || e.Analyzer == "" || e.File == "" || e.Message == "" {
			t.Errorf("incomplete baseline entry: %+v", e)
		}
	}

	// With every current finding baselined, the same run is clean.
	code, stdout, stderr := runLint(t, "-baseline", baseline, fixtureDir)
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("baselined run still printed findings:\n%s", stdout)
	}

	// The baseline does not mask a different package's findings.
	code, _, _ = runLint(t, "-baseline", baseline, "../../internal/analysis/testdata/src/randsource")
	if code != 1 {
		t.Errorf("baseline leaked across packages: exit = %d, want 1", code)
	}
}
