// Command pmnetlint enforces pmnet's determinism and persistence
// invariants. It walks the module's packages, runs the analyzers in
// internal/analysis, and prints findings as file:line:col diagnostics.
//
// Usage:
//
//	pmnetlint [./... | package-dir ...]
//
// Exit codes (machine-readable, for CI):
//
//	0  no findings
//	1  findings reported
//	2  usage, parse or type-check error
//
// Analyzers:
//
//   - wallclock:    no time.Now/Sleep/After/... in model code
//   - randsource:   no math/rand or crypto/rand imports in model code
//   - maprange:     no order-sensitive map iteration in event-ordering packages
//   - persistcover: no pmem write without a persist barrier
//
// A finding is suppressed by a directive on its line or the line above:
//
//	//pmnetlint:ignore <analyzer> <reason>
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"pmnet/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmnetlint:", err)
		return 2
	}
	root, modPath, err := analysis.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmnetlint:", err)
		return 2
	}
	loader := analysis.NewLoader(root, modPath)

	var targets []analysis.PackageDir
	all := len(args) == 0
	for _, a := range args {
		if a == "./..." || a == "..." {
			all = true
			continue
		}
		abs, err := filepath.Abs(a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmnetlint: %s: %v\n", a, err)
			return 2
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || rel == ".." || filepath.IsAbs(rel) || (len(rel) > 2 && rel[:3] == "..\x2f") {
			fmt.Fprintf(os.Stderr, "pmnetlint: %s is outside module %s\n", a, modPath)
			return 2
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		targets = append(targets, analysis.PackageDir{Dir: abs, ImportPath: ip})
	}
	if all {
		pkgs, err := loader.ModulePackages()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmnetlint:", err)
			return 2
		}
		targets = pkgs
	}

	var findings []analysis.Finding
	status := 0
	for _, t := range targets {
		pkg, err := loader.LoadDir(t.Dir, t.ImportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmnetlint:", err)
			status = 2
			continue
		}
		findings = append(findings, analysis.RunPackage(pkg, analysis.ForPackage(modPath, t.ImportPath))...)
	}
	for _, f := range findings {
		rel, err := filepath.Rel(cwd, f.Pos.Filename)
		if err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if status != 0 {
		return status
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pmnetlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
