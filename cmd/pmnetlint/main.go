// Command pmnetlint enforces pmnet's determinism and persistence
// invariants. It walks the module's packages, runs the analyzers in
// internal/analysis, and prints findings as file:line:col diagnostics or a
// SARIF 2.1.0 log.
//
// Usage:
//
//	pmnetlint [flags] [./... | package-dir ...]
//
// Flags:
//
//	-format text|sarif   output format (default text)
//	-baseline FILE       suppress findings recorded in this JSON baseline
//	-write-baseline FILE write current findings to FILE as a baseline, exit 0
//
// Exit codes (machine-readable, for CI):
//
//	0  no findings (or every finding baselined)
//	1  findings reported
//	2  usage, parse or type-check error
//
// Analyzers:
//
//   - wallclock:    no time.Now/Sleep/After/... in model code
//   - randsource:   no math/rand or crypto/rand imports in model code
//   - maprange:     no order-sensitive map iteration in event-ordering packages
//   - persistcover: no pmem write without a persist barrier
//   - persistorder: a persist barrier on every CFG path from pmem write to ACK send
//   - boundedwork:  dataplane loop bounds are constants, parameter lengths, or table sizes
//   - syncpool:     buffer pools in model code go through the deterministic pool
//   - sharedstate:  no cross-cell shared mutable state in the sharded simulator
//   - ignoreaudit:  every //pmnetlint:ignore still suppresses a real finding
//
// A finding is suppressed by a directive on its line or the line above:
//
//	//pmnetlint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pmnet/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("pmnetlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	format := flags.String("format", "text", "output format: text or sarif")
	baselinePath := flags.String("baseline", "", "JSON baseline file; findings it covers are not reported")
	writeBaseline := flags.String("write-baseline", "", "write current findings to this JSON baseline file and exit 0")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(stderr, "pmnetlint: unknown -format %q (want text or sarif)\n", *format)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "pmnetlint:", err)
		return 2
	}
	root, modPath, err := analysis.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "pmnetlint:", err)
		return 2
	}
	loader := analysis.NewLoader(root, modPath)

	var targets []analysis.PackageDir
	all := flags.NArg() == 0
	for _, a := range flags.Args() {
		if a == "./..." || a == "..." {
			all = true
			continue
		}
		abs, err := filepath.Abs(a)
		if err != nil {
			fmt.Fprintf(stderr, "pmnetlint: %s: %v\n", a, err)
			return 2
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || rel == ".." || filepath.IsAbs(rel) || (len(rel) > 2 && rel[:3] == "..\x2f") {
			fmt.Fprintf(stderr, "pmnetlint: %s is outside module %s\n", a, modPath)
			return 2
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		targets = append(targets, analysis.PackageDir{Dir: abs, ImportPath: ip})
	}
	if all {
		pkgs, err := loader.ModulePackages()
		if err != nil {
			fmt.Fprintln(stderr, "pmnetlint:", err)
			return 2
		}
		targets = pkgs
	}

	var findings []analysis.Finding
	status := 0
	for _, t := range targets {
		pkg, err := loader.LoadDir(t.Dir, t.ImportPath)
		if err != nil {
			fmt.Fprintln(stderr, "pmnetlint:", err)
			status = 2
			continue
		}
		findings = append(findings, analysis.RunPackage(pkg, analysis.ForPackage(modPath, t.ImportPath))...)
	}

	// Baseline and SARIF artifacts are committed/uploaded: key them on
	// module-root-relative slash paths so they are stable across checkouts.
	rootRel := make([]analysis.Finding, len(findings))
	for i, f := range findings {
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			f.Pos.Filename = filepath.ToSlash(rel)
		}
		rootRel[i] = f
	}

	if *writeBaseline != "" {
		bf, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintln(stderr, "pmnetlint:", err)
			return 2
		}
		werr := analysis.WriteBaseline(bf, rootRel)
		if cerr := bf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "pmnetlint:", werr)
			return 2
		}
		fmt.Fprintf(stderr, "pmnetlint: wrote %d finding(s) to baseline %s\n", len(rootRel), *writeBaseline)
		return status
	}

	if *baselinePath != "" {
		bf, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "pmnetlint:", err)
			return 2
		}
		baseline, err := analysis.ReadBaseline(bf)
		bf.Close()
		if err != nil {
			fmt.Fprintln(stderr, "pmnetlint:", err)
			return 2
		}
		rootRel = baseline.Filter(rootRel)
	}

	if *format == "sarif" {
		if err := analysis.WriteSARIF(stdout, rootRel); err != nil {
			fmt.Fprintln(stderr, "pmnetlint:", err)
			return 2
		}
	} else {
		for _, f := range rootRel {
			// Text diagnostics are for humans at the terminal: print paths
			// relative to where they ran the tool.
			abs := filepath.Join(root, filepath.FromSlash(f.Pos.Filename))
			if rel, err := filepath.Rel(cwd, abs); err == nil {
				f.Pos.Filename = rel
			}
			fmt.Fprintln(stdout, f)
		}
	}
	if status != 0 {
		return status
	}
	if len(rootRel) > 0 {
		fmt.Fprintf(stderr, "pmnetlint: %d finding(s)\n", len(rootRel))
		return 1
	}
	return 0
}
