// Command pmnetsim runs one interactive PMNet scenario: build a testbed,
// drive a workload, optionally inject a server failure mid-run, and dump
// the resulting latency distribution and component statistics.
//
// Usage:
//
//	pmnetsim [-design client-server|pmnet-switch|pmnet-nic] [-workload btree|...|ideal]
//	         [-clients N] [-requests N] [-update-ratio F] [-replication K]
//	         [-cache N] [-bypass-stack] [-crash] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"pmnet"
	"pmnet/internal/harness"
)

func main() {
	design := flag.String("design", "pmnet-switch", "client-server | pmnet-switch | pmnet-nic")
	wl := flag.String("workload", "hashmap", "btree|ctree|rbtree|hashmap|skiplist|redis|twitter|tpcc|ideal")
	clients := flag.Int("clients", 4, "client machines")
	requests := flag.Int("requests", 500, "requests per client")
	updateRatio := flag.Float64("update-ratio", 1.0, "fraction of update requests")
	replication := flag.Int("replication", 1, "PMNet devices chained for replication")
	cache := flag.Int("cache", 0, "in-network read cache entries (0 = off)")
	bypass := flag.Bool("bypass-stack", false, "use libVMA-style kernel-bypass host stacks")
	zipf := flag.Bool("zipf", false, "zipfian key popularity")
	cross := flag.Float64("cross-traffic", 0, "background traffic toward the server (Gbps)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	var d pmnet.Design
	switch *design {
	case "client-server":
		d = pmnet.ClientServer
	case "pmnet-switch":
		d = pmnet.PMNetSwitch
	case "pmnet-nic":
		d = pmnet.PMNetNIC
	default:
		fmt.Fprintf(os.Stderr, "pmnetsim: unknown design %q\n", *design)
		os.Exit(2)
	}
	stacks := pmnet.KernelStack
	if *bypass {
		stacks = pmnet.BypassStack
	}

	res, err := harness.Run(harness.RunConfig{
		Design:           d,
		Workload:         harness.Workload(*wl),
		Clients:          *clients,
		Requests:         *requests,
		Warmup:           *requests / 10,
		UpdateRatio:      *updateRatio,
		Replication:      *replication,
		CacheSize:        *cache,
		Stacks:           stacks,
		Zipfian:          *zipf,
		CrossTrafficGbps: *cross,
		Seed:             *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmnetsim: %v\n", err)
		os.Exit(1)
	}

	h := res.Run.Hist
	fmt.Printf("design        %v (%s, %d clients, update ratio %.0f%%)\n",
		d, *wl, *clients, *updateRatio*100)
	fmt.Printf("requests      %d completed (%d updates, %d bypass, %d lock ops, %d lock retries)\n",
		res.Driver.Completed, res.Driver.Updates, res.Driver.Bypasses,
		res.Driver.LockOps, res.Driver.LockRetries)
	fmt.Printf("throughput    %.0f req/s\n", res.Run.Throughput())
	fmt.Printf("latency mean  %.2f us\n", h.Mean().Micros())
	for _, p := range []float64{50, 90, 99, 99.9} {
		fmt.Printf("latency p%-4v %.2f us\n", p, h.Percentile(p).Micros())
	}
	if len(res.Bed.Devices) > 0 {
		for i, dev := range res.Bed.Devices {
			st := dev.Stats()
			fmt.Printf("pmnet[%d]      logged=%d acked=%d invalidated=%d bypassed(coll/full/size)=%d/%d/%d",
				i, st.Log.Logged, st.AcksSent, st.Log.Invalidated,
				st.Log.BypassedCollision, st.Log.BypassedFull, st.Log.BypassedOversize)
			if dev.Cache() != nil {
				cs := dev.Cache().Stats()
				fmt.Printf(" cache(hit/miss/fill)=%d/%d/%d", cs.Hits, cs.Misses, cs.Fills)
			}
			fmt.Println()
		}
	}
	srv := res.Bed.Server.Stats()
	fmt.Printf("server        applied=%d reads=%d dup=%d retrans=%d reordered=%d\n",
		srv.UpdatesApplied, srv.ReadsServed, srv.Duplicates, srv.RetransSent, srv.Reordered)
	net := res.Bed.Network.Stats()
	fmt.Printf("network       delivered=%d drops(full/rand/dead)=%d/%d/%d\n",
		net.Delivered, net.DroppedFull, net.DroppedRand, net.DroppedDead)
}
