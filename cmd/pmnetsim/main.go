// Command pmnetsim runs one interactive PMNet scenario: build a testbed,
// drive a workload, optionally inject a server failure mid-run, and dump
// the resulting latency distribution and component statistics.
//
// Usage:
//
//	pmnetsim [-design client-server|pmnet-switch|pmnet-nic] [-workload btree|...|ideal]
//	         [-clients N] [-requests N] [-update-ratio F] [-replication K]
//	         [-cache N] [-bypass-stack] [-crash] [-seed N]
//	         [-offered-load RPS] [-duration MS] [-users N]
//	         [-arrival poisson|mmpp|diurnal|flash] [-backoff]
//	         [-trace out.json] [-parallel N] [-shards N]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -offered-load > 0 the run is open-loop: arrivals follow the selected
// -arrival process at the offered rate for -duration virtual milliseconds,
// multiplexed over -users logical user sessions (live state stays bounded by
// the admission cap regardless of -users; excess arrivals are shed, never
// queued). -requests is ignored in this mode. -backoff enables capped
// exponential client retransmission backoff.
//
// With -trace, the run records every request-lifecycle event and gauge sample
// on the virtual clock and writes a chrome://tracing (Perfetto-loadable) JSON
// file. With -parallel N > 1, N identical copies of the run execute on
// concurrent goroutines and their trace outputs are byte-compared before one
// is written — a built-in determinism check: the trace is a pure function of
// the configuration, never of host scheduling. With -shards N, the testbed
// runs on the conservative-PDES path (internal/sim/pdes) with N engine
// shards; all output, including the trace bytes, is identical for every
// N ≥ 1. -cpuprofile/-memprofile write runtime/pprof profiles of the run.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sync"

	"pmnet"
	"pmnet/internal/arrival"
	"pmnet/internal/harness"
	"pmnet/internal/netsim"
	"pmnet/internal/prof"
	"pmnet/internal/sim"
	"pmnet/internal/trace"
)

func main() {
	design := flag.String("design", "pmnet-switch", "client-server | pmnet-switch | pmnet-nic")
	wl := flag.String("workload", "hashmap", "btree|ctree|rbtree|hashmap|skiplist|redis|twitter|tpcc|ideal")
	clients := flag.Int("clients", 4, "client machines")
	requests := flag.Int("requests", 500, "requests per client")
	updateRatio := flag.Float64("update-ratio", 1.0, "fraction of update requests")
	replication := flag.Int("replication", 1, "PMNet devices chained for replication")
	cache := flag.Int("cache", 0, "in-network read cache entries (0 = off)")
	bypass := flag.Bool("bypass-stack", false, "use libVMA-style kernel-bypass host stacks")
	zipf := flag.Bool("zipf", false, "zipfian key popularity")
	cross := flag.Float64("cross-traffic", 0, "background traffic toward the server (Gbps)")
	offered := flag.Float64("offered-load", 0, "open-loop offered load in user actions/s (0 = closed-loop -requests mode)")
	duration := flag.Float64("duration", 0, "open-loop run length in virtual milliseconds (0 = harness default)")
	users := flag.Int("users", 0, "open-loop logical user population (0 = harness default)")
	arrivalKind := flag.String("arrival", "poisson", "open-loop arrival process: poisson | mmpp | diurnal | flash")
	arrivalTrace := flag.String("arrival-trace", "", "replay recorded open-loop arrivals from this file (one ns timestamp per line; excludes -offered-load)")
	backoff := flag.Bool("backoff", false, "capped exponential client retransmission backoff")
	topo := flag.String("topo", "star", "client fabric: star | leaf-spine | fat-tree")
	leaves := flag.Int("leaves", 0, "leaf-spine leaf count (0 = default 2)")
	spines := flag.Int("spines", 0, "leaf-spine spine count (0 = default 2)")
	oversub := flag.Float64("oversub", 0, "leaf-spine oversubscription ratio (0 = full bisection)")
	fatTreeK := flag.Int("fattree-k", 0, "fat-tree arity (even; 0 = default 4)")
	impLoss := flag.Float64("impair-loss", 0, "access-link loss probability in the good state [0,1]")
	impBurstLoss := flag.Float64("impair-burst-loss", 0, "loss probability in the Gilbert-Elliott bad state [0,1]")
	impBurstOn := flag.Float64("impair-burst-on", 0, "P(good->bad) per packet [0,1]")
	impBurstOff := flag.Float64("impair-burst-off", 0, "P(bad->good) per packet [0,1]")
	impJitter := flag.Float64("impair-jitter-us", 0, "lognormal access-link jitter median (us)")
	impJitterSigma := flag.Float64("impair-jitter-sigma", 0, "jitter lognormal shape")
	impReorder := flag.Float64("impair-reorder", 0, "reordering probability [0,1)")
	impReorderWin := flag.Float64("impair-reorder-window-us", 0, "reorder hold-back window (us)")
	impDup := flag.Float64("impair-dup", 0, "duplication probability [0,1)")
	impRate := flag.Float64("impair-rate-gbps", 0, "token-bucket access-link rate cap (Gbps, 0 = off)")
	impBurstKB := flag.Int("impair-burst-kb", 0, "token-bucket burst (KB, 0 = 64)")
	impAckOnly := flag.Bool("impair-ack-only", false, "impair only the edge->client (ACK) direction")
	seed := flag.Uint64("seed", 1, "simulation seed")
	traceFile := flag.String("trace", "", "write a chrome://tracing JSON of the run to this file")
	par := flag.Int("parallel", 1, "run N identical copies concurrently and byte-compare their traces")
	shards := flag.Int("shards", 0, "run the testbed on the conservative-PDES path with N engine shards (output identical for every N >= 1)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	var d pmnet.Design
	switch *design {
	case "client-server":
		d = pmnet.ClientServer
	case "pmnet-switch":
		d = pmnet.PMNetSwitch
	case "pmnet-nic":
		d = pmnet.PMNetNIC
	default:
		fmt.Fprintf(os.Stderr, "pmnetsim: unknown design %q\n", *design)
		os.Exit(2)
	}
	stacks := pmnet.KernelStack
	if *bypass {
		stacks = pmnet.BypassStack
	}

	cfg := harness.RunConfig{
		Design:           d,
		Workload:         harness.Workload(*wl),
		Clients:          *clients,
		Requests:         *requests,
		Warmup:           *requests / 10,
		UpdateRatio:      *updateRatio,
		Replication:      *replication,
		CacheSize:        *cache,
		Stacks:           stacks,
		Zipfian:          *zipf,
		CrossTrafficGbps: *cross,
		Seed:             *seed,
		Shards:           *shards,
		RetryBackoff:     *backoff,
		Topology:         *topo,
		Leaves:           *leaves,
		Spines:           *spines,
		Oversub:          *oversub,
		FatTreeK:         *fatTreeK,
		ImpairAckPath:    *impAckOnly,
		Impair: netsim.Impairments{
			GoodLoss:      *impLoss,
			BadLoss:       *impBurstLoss,
			GoodToBad:     *impBurstOn,
			BadToGood:     *impBurstOff,
			JitterMedian:  sim.Time(*impJitter * float64(sim.Microsecond)),
			JitterSigma:   *impJitterSigma,
			ReorderProb:   *impReorder,
			ReorderWindow: sim.Time(*impReorderWin * float64(sim.Microsecond)),
			DupProb:       *impDup,
			RateBps:       *impRate * 1e9,
			BurstBytes:    *impBurstKB << 10,
		},
	}
	if err := cfg.Impair.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "pmnetsim: %v\n", err)
		os.Exit(2)
	}
	if *offered > 0 && *arrivalTrace != "" {
		fmt.Fprintln(os.Stderr, "pmnetsim: -offered-load and -arrival-trace are mutually exclusive")
		os.Exit(2)
	}
	if *offered > 0 {
		kind, err := arrival.ParseKind(*arrivalKind)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmnetsim: %v\n", err)
			os.Exit(2)
		}
		cfg.OfferedLoad = *offered
		cfg.Duration = sim.Time(*duration * float64(sim.Millisecond))
		cfg.Users = *users
		cfg.Arrival.Kind = kind
	}
	if *arrivalTrace != "" {
		cfg.ArrivalTrace = *arrivalTrace
		cfg.Duration = sim.Time(*duration * float64(sim.Millisecond))
		cfg.Users = *users
	}
	if *par < 1 {
		*par = 1
	}
	if *par > 1 && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "pmnetsim: -parallel without -trace has nothing to compare")
		os.Exit(2)
	}

	stopProfiles, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmnetsim: %v\n", err)
		os.Exit(1)
	}

	type runOut struct {
		res   *harness.RunResult
		json  []byte
		drops uint64
		err   error
	}
	outs := make([]runOut, *par)
	var wg sync.WaitGroup
	for i := range outs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cfg // identical config; each copy gets its own tracer
			var tr *trace.Tracer
			if *traceFile != "" {
				tr = trace.NewTracer(0)
				c.Trace = tr
			}
			r, err := harness.Run(c)
			if err != nil {
				outs[i].err = err
				return
			}
			outs[i].res = r
			if tr != nil {
				outs[i].json = tr.ChromeJSON(r.Bed.NodeName)
				outs[i].drops = tr.Dropped()
			}
		}()
	}
	wg.Wait()
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "pmnetsim: %v\n", err)
		os.Exit(1)
	}
	for _, o := range outs {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "pmnetsim: %v\n", o.err)
			os.Exit(1)
		}
	}
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[0].json, outs[i].json) {
			fmt.Fprintf(os.Stderr, "pmnetsim: DETERMINISM VIOLATION: trace of copy %d differs from copy 0 (%d vs %d bytes)\n",
				i, len(outs[i].json), len(outs[0].json))
			os.Exit(1)
		}
	}
	res := outs[0].res
	if *traceFile != "" {
		if err := os.WriteFile(*traceFile, outs[0].json, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pmnetsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace         %s (%d bytes, %d events dropped)\n",
			*traceFile, len(outs[0].json), outs[0].drops)
		if *par > 1 {
			fmt.Printf("determinism   %d concurrent copies produced byte-identical traces\n", *par)
		}
	}

	h := res.Run.Hist
	fmt.Printf("design        %v (%s, %d clients, update ratio %.0f%%)\n",
		d, *wl, *clients, *updateRatio*100)
	fmt.Printf("requests      %d completed (%d updates, %d bypass, %d lock ops, %d lock retries)\n",
		res.Driver.Completed, res.Driver.Updates, res.Driver.Bypasses,
		res.Driver.LockOps, res.Driver.LockRetries)
	if open := res.Open; open != nil {
		if *arrivalTrace != "" {
			fmt.Printf("open-loop     trace replay from %s, %d users\n",
				*arrivalTrace, cfg.Users)
		} else {
			fmt.Printf("open-loop     %s arrivals, %.0f actions/s offered, %d users\n",
				*arrivalKind, *offered, cfg.Users)
		}
		fmt.Printf("admission     offered=%d admitted=%d shed=%d peak-active=%d peak-sessions=%d\n",
			open.Offered, open.Admitted, open.Shed, open.PeakActive, open.PeakSessions)
		fmt.Printf("goodput       %.0f req/s (measured window: %d arrivals, %d completions)\n",
			res.Run.Throughput(), open.MeasuredOff, open.MeasuredDone)
		fmt.Printf("tail spot     p99=%.2f us exact (reservoir of %d/%d samples)\n",
			open.Reservoir.Percentile(99).Micros(), open.Reservoir.Len(), open.Reservoir.Seen())
	} else {
		fmt.Printf("throughput    %.0f req/s\n", res.Run.Throughput())
	}
	fmt.Printf("latency mean  %.2f us\n", h.Mean().Micros())
	for _, p := range []float64{50, 90, 99, 99.9} {
		fmt.Printf("latency p%-4v %.2f us\n", p, h.Percentile(p).Micros())
	}
	if len(res.Bed.Devices) > 0 {
		for i, dev := range res.Bed.Devices {
			st := dev.Stats()
			fmt.Printf("pmnet[%d]      logged=%d acked=%d invalidated=%d bypassed(coll/full/size)=%d/%d/%d",
				i, st.Log.Logged, st.AcksSent, st.Log.Invalidated,
				st.Log.BypassedCollision, st.Log.BypassedFull, st.Log.BypassedOversize)
			if dev.Cache() != nil {
				cs := dev.Cache().Stats()
				fmt.Printf(" cache(hit/miss/fill)=%d/%d/%d", cs.Hits, cs.Misses, cs.Fills)
			}
			fmt.Println()
		}
	}
	srv := res.Bed.Server.Stats()
	fmt.Printf("server        applied=%d reads=%d dup=%d retrans=%d reordered=%d\n",
		srv.UpdatesApplied, srv.ReadsServed, srv.Duplicates, srv.RetransSent, srv.Reordered)
	net := res.Bed.NetworkStats()
	fmt.Printf("network       delivered=%d drops(full/rand/dead/burst)=%d/%d/%d/%d dup=%d\n",
		net.Delivered, net.DroppedFull, net.DroppedRand, net.DroppedDead,
		net.DroppedBurst, net.Duplicated)
	if res.Bed.Sharded() {
		fmt.Printf("sharding      %d shards\n", res.Bed.Shards())
	}
}
