package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmnet/internal/benchfmt"
)

func writeDoc(t *testing.T, dir, name string, doc benchfmt.Doc) string {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func exp(id string, cells ...benchfmt.Cell) benchfmt.Experiment {
	return benchfmt.Experiment{ID: id, Cells: cells}
}

func cell(key string, events uint64, wallMs float64) benchfmt.Cell {
	return benchfmt.Cell{Key: key, Events: events, WallMs: wallMs}
}

// TestUnmatchedExperimentWarnsNotFails is the regression test for the CI
// failure mode where a freshly added experiment (present in the new JSON,
// absent from the recorded baseline) broke the diff: benchdiff must warn,
// exclude the unmatched cells, and still gate on the matched ones.
func TestUnmatchedExperimentWarnsNotFails(t *testing.T) {
	dir := t.TempDir()
	oldDoc := benchfmt.Doc{
		Schema: benchfmt.Schema, Seed: 1,
		Perf:        benchfmt.Perf{Events: 1000, EventsPerSec: 1e6},
		Experiments: []benchfmt.Experiment{exp("fig2", cell("a", 500, 1), cell("b", 500, 1))},
	}
	newDoc := benchfmt.Doc{
		Schema: benchfmt.Schema, Seed: 1,
		Perf: benchfmt.Perf{Events: 3000, EventsPerSec: 0.4e6},
		Experiments: []benchfmt.Experiment{
			exp("fig2", cell("a", 500, 1), cell("b", 500, 1)),
			// The new experiment is slow enough that folding it into a naive
			// batch-level gate would report a >15% regression.
			exp("openloop", cell("base/50k", 2000, 100)),
		},
	}
	oldPath := writeDoc(t, dir, "old.json", oldDoc)
	newPath := writeDoc(t, dir, "new.json", newDoc)

	var out, errOut strings.Builder
	code := run([]string{oldPath, newPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d for baseline missing an experiment, want 0\noutput:\n%s%s",
			code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "warn: cell openloop/base/50k has no baseline counterpart") {
		t.Errorf("missing unmatched-cell warning:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "gating on matched cells only") {
		t.Errorf("gate was not restricted to matched cells:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "OK: matched-cell events_per_sec") {
		t.Errorf("matched-cell gate did not pass:\n%s", out.String())
	}
}

// TestUnmatchedBaselineCellWarns: the mirror case — a cell that existed in
// the baseline but vanished from the new document is warned about, not
// silently dropped.
func TestUnmatchedBaselineCellWarns(t *testing.T) {
	dir := t.TempDir()
	oldDoc := benchfmt.Doc{
		Schema: benchfmt.Schema, Seed: 1,
		Perf:        benchfmt.Perf{Events: 1000, EventsPerSec: 1e6},
		Experiments: []benchfmt.Experiment{exp("fig2", cell("a", 500, 1), cell("gone", 500, 1))},
	}
	newDoc := benchfmt.Doc{
		Schema: benchfmt.Schema, Seed: 1,
		Perf:        benchfmt.Perf{Events: 500, EventsPerSec: 1e6},
		Experiments: []benchfmt.Experiment{exp("fig2", cell("a", 500, 1))},
	}
	oldPath := writeDoc(t, dir, "old.json", oldDoc)
	newPath := writeDoc(t, dir, "new.json", newDoc)

	var out, errOut strings.Builder
	code := run([]string{oldPath, newPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "warn: baseline cell fig2/gone absent from new document") {
		t.Errorf("missing vanished-cell warning:\n%s", out.String())
	}
}

// TestMatchedRegressionStillFails: tolerance for unmatched cells must not
// disable the gate itself — a real regression in the matched cells exits 1.
func TestMatchedRegressionStillFails(t *testing.T) {
	dir := t.TempDir()
	oldDoc := benchfmt.Doc{
		Schema: benchfmt.Schema, Seed: 1,
		Perf:        benchfmt.Perf{Events: 1000, EventsPerSec: 1e6},
		Experiments: []benchfmt.Experiment{exp("fig2", cell("a", 1000, 1))},
	}
	newDoc := benchfmt.Doc{
		Schema: benchfmt.Schema, Seed: 1,
		Perf: benchfmt.Perf{Events: 2000, EventsPerSec: 1e6},
		Experiments: []benchfmt.Experiment{
			exp("fig2", cell("a", 1000, 2)), // 2x slower on the matched cell
			exp("openloop", cell("base/50k", 1000, 1)),
		},
	}
	oldPath := writeDoc(t, dir, "old.json", oldDoc)
	newPath := writeDoc(t, dir, "new.json", newDoc)

	var out, errOut strings.Builder
	code := run([]string{"-threshold", "15", oldPath, newPath}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d for a 2x matched-cell regression, want 1\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL: matched-cell events_per_sec regressed") {
		t.Errorf("missing FAIL line:\n%s", out.String())
	}
}

// TestCommittedFixtureWarnPath pins the warn path against committed
// documents: testdata/baseline_pre_speedup.json predates the speedup
// experiment, testdata/with_speedup.json includes it. The diff must warn
// per unmatched speedup cell, restrict the gate to the matched fig2 cells,
// and exit 0 — the exact CI situation the first run after adding an
// experiment lands in, recorded as bytes so a regression in the matching
// logic cannot hide behind the doc builders above.
func TestCommittedFixtureWarnPath(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"testdata/baseline_pre_speedup.json",
		"testdata/with_speedup.json",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d for baseline missing the speedup experiment, want 0\noutput:\n%s%s",
			code, out.String(), errOut.String())
	}
	for _, sh := range []string{"1", "2", "4"} {
		want := "warn: cell speedup/shards=" + sh + " has no baseline counterpart"
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing warning %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(out.String(), "gating on matched cells only") {
		t.Errorf("gate was not restricted to matched cells:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "OK: matched-cell events_per_sec") {
		t.Errorf("matched-cell gate did not pass:\n%s", out.String())
	}
	// The matched fig2 cells got slightly faster, so no workload-mismatch
	// flag may appear: their event counts are identical by construction.
	if strings.Contains(out.String(), "[!]") {
		t.Errorf("spurious workload-mismatch flag:\n%s", out.String())
	}
}

// TestIdenticalDocsPass: the no-op diff stays green and uses the batch gate.
func TestIdenticalDocsPass(t *testing.T) {
	dir := t.TempDir()
	doc := benchfmt.Doc{
		Schema: benchfmt.Schema, Seed: 1,
		Perf:        benchfmt.Perf{Events: 1000, EventsPerSec: 1e6},
		Experiments: []benchfmt.Experiment{exp("fig2", cell("a", 500, 1))},
	}
	oldPath := writeDoc(t, dir, "old.json", doc)
	newPath := writeDoc(t, dir, "new.json", doc)

	var out, errOut strings.Builder
	code := run([]string{oldPath, newPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d for identical documents, want 0\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "OK: events_per_sec within") {
		t.Errorf("batch gate not used for fully matched documents:\n%s", out.String())
	}
	if strings.Contains(out.String(), "warn:") {
		t.Errorf("spurious warning for identical documents:\n%s", out.String())
	}
}

func writeText(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGobenchGate covers the -gobench mode: matched benchmarks gate ns/op on
// the threshold and allocs/op on any growth; unmatched names warn only.
func TestGobenchGate(t *testing.T) {
	dir := t.TempDir()
	oldOut := writeText(t, dir, "old.txt", `
goos: linux
BenchmarkEngineScheduleWheel-8   	 1000000	       50.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkCancel-8                	 1000000	       30.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkRetired-8               	 1000000	       10.0 ns/op
PASS
`)

	run2 := func(name, content string) (int, string) {
		newOut := writeText(t, dir, name, content)
		var sb, eb strings.Builder
		code := run([]string{"-gobench", "-threshold", "40", oldOut, newOut}, &sb, &eb)
		return code, sb.String() + eb.String()
	}

	// Within threshold, same allocs, one new + one retired benchmark: OK.
	code, out := run2("ok.txt", `
BenchmarkEngineScheduleWheel-4   	 1000000	       60.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkCancel-4                	 1000000	       25.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkBrandNew-4              	 1000000	       99.0 ns/op	       0 B/op	       0 allocs/op
PASS
`)
	if code != 0 {
		t.Fatalf("in-threshold run failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "warn: baseline benchmark BenchmarkRetired") {
		t.Fatalf("missing retired-benchmark warning:\n%s", out)
	}

	// ns/op blowout on one benchmark: FAIL.
	code, out = run2("slow.txt", `
BenchmarkEngineScheduleWheel-4   	 1000000	      500.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkCancel-4                	 1000000	       30.0 ns/op	       0 B/op	       0 allocs/op
`)
	if code != 1 || !strings.Contains(out, "FAIL ns/op") {
		t.Fatalf("ns/op regression not caught (%d):\n%s", code, out)
	}

	// allocs/op growth alone, ns/op fine: FAIL (exact gate).
	code, out = run2("allocs.txt", `
BenchmarkEngineScheduleWheel-4   	 1000000	       50.0 ns/op	      16 B/op	       1 allocs/op
BenchmarkCancel-4                	 1000000	       30.0 ns/op	       0 B/op	       0 allocs/op
`)
	if code != 1 || !strings.Contains(out, "FAIL allocs/op grew") {
		t.Fatalf("allocs/op growth not caught (%d):\n%s", code, out)
	}

	// Nothing matched at all: FAIL loudly rather than green on vacuity.
	code, out = run2("none.txt", `
BenchmarkSomethingElse-4         	 1000000	       30.0 ns/op
`)
	if code != 1 || !strings.Contains(out, "no benchmarks matched") {
		t.Fatalf("vacuous match not caught (%d):\n%s", code, out)
	}
}
