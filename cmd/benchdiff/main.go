// Command benchdiff compares two pmnetbench JSON documents (schema
// "pmnetbench/v1") and reports the wall-clock delta between them: batch
// events-per-second, and per-cell wall time and ns-per-event, matched by
// (experiment id, cell key).
//
// Usage:
//
//	benchdiff [-threshold PCT] old.json new.json
//
// The exit status makes it a CI gate: benchdiff exits 1 when the new
// document's batch events-per-second regressed by more than -threshold
// percent (default 15) against the old one. Virtual-time fields are checked
// first — if the two documents simulated different event counts for a
// matched cell, they ran different workloads and the wall-clock comparison
// is flagged as unreliable (but still printed).
//
// Experiments or cells present in only one document are tolerated with a
// warning, never a failure: a freshly added experiment must not fail CI
// against a baseline recorded before it existed. When the two documents do
// not cover the same cells, the batch-level events-per-second numbers
// describe different batches, so the regression gate is computed from the
// matched cells only (sum of events over sum of wall time on each side).
//
// The same tool reads speedups: run `pmnetbench -run scale -parallel 1 -json`
// at -shards 1 and -shards 4, then benchdiff the two files; a speedup of
// 2.0x prints as a -50% wall / +100% events-per-second delta.
//
// With -gobench the two files are instead raw `go test -bench` outputs,
// matched by benchmark name (the -N GOMAXPROCS suffix is ignored). The gate
// then fails when any matched benchmark's ns/op regressed by more than
// -threshold percent, or when its allocs/op grew at all — allocation counts
// are deterministic, so the zero-alloc scheduler pins get an exact gate even
// on a noisy runner:
//
//	go test -run '^$' -bench Schedule -benchmem ./internal/sim > new.txt
//	benchdiff -gobench -threshold 40 BENCH_sched_baseline.txt new.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pmnet/internal/benchfmt"
)

func pct(oldV, newV float64) string {
	if oldV == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
}

func nsPerEvent(c benchfmt.Cell) float64 {
	if c.Events == 0 {
		return 0
	}
	return c.WallMs * 1e6 / float64(c.Events)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit status lifted out for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 15, "max tolerated events-per-second regression (percent) before exiting 1")
	gobench := fs.Bool("gobench", false, "inputs are `go test -bench` outputs: gate per-benchmark ns/op against -threshold and allocs/op against any growth")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-gobench] [-threshold PCT] old new")
		return 2
	}
	if *gobench {
		return runGobench(fs.Arg(0), fs.Arg(1), *threshold, stdout, stderr)
	}
	oldDoc, err := benchfmt.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newDoc, err := benchfmt.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout, "old: %s  (seed %d, parallel %d, shards %d)\n",
		fs.Arg(0), oldDoc.Seed, oldDoc.Parallel, oldDoc.Shards)
	fmt.Fprintf(stdout, "new: %s  (seed %d, parallel %d, shards %d)\n\n",
		fs.Arg(1), newDoc.Seed, newDoc.Parallel, newDoc.Shards)

	fmt.Fprintf(stdout, "%-24s %14s %14s %10s\n", "batch", "old", "new", "delta")
	fmt.Fprintf(stdout, "%-24s %14.1f %14.1f %10s\n", "wall_ms",
		oldDoc.WallMs, newDoc.WallMs, pct(oldDoc.WallMs, newDoc.WallMs))
	fmt.Fprintf(stdout, "%-24s %14d %14d %10s\n", "events",
		oldDoc.Perf.Events, newDoc.Perf.Events,
		pct(float64(oldDoc.Perf.Events), float64(newDoc.Perf.Events)))
	fmt.Fprintf(stdout, "%-24s %14.0f %14.0f %10s\n", "events_per_sec",
		oldDoc.Perf.EventsPerSec, newDoc.Perf.EventsPerSec,
		pct(oldDoc.Perf.EventsPerSec, newDoc.Perf.EventsPerSec))
	fmt.Fprintf(stdout, "%-24s %14.3f %14.3f %10s\n", "allocs_per_event",
		oldDoc.Perf.AllocsPerEvent, newDoc.Perf.AllocsPerEvent,
		pct(oldDoc.Perf.AllocsPerEvent, newDoc.Perf.AllocsPerEvent))
	if oldDoc.Perf.EventsPerSec > 0 {
		fmt.Fprintf(stdout, "%-24s %41.2fx\n", "speedup (new/old)",
			newDoc.Perf.EventsPerSec/oldDoc.Perf.EventsPerSec)
	}

	// Per-cell comparison, matched by (experiment id, cell key) in the new
	// document's order. Cells present in only one document are warned about
	// and excluded — a new experiment or a renamed cell must not fail the
	// gate against a baseline that predates it.
	oldCells := make(map[string]benchfmt.Cell)
	for _, e := range oldDoc.Experiments {
		for _, c := range e.Cells {
			oldCells[e.ID+"/"+c.Key] = c
		}
	}
	var unmatchedNew, unmatchedOld []string
	var matchedOldWall, matchedNewWall float64
	var matchedOldEvents, matchedNewEvents uint64
	matched := make(map[string]bool)
	workloadMismatch := false
	header := false
	for _, e := range newDoc.Experiments {
		for _, nc := range e.Cells {
			key := e.ID + "/" + nc.Key
			oc, ok := oldCells[key]
			if !ok {
				unmatchedNew = append(unmatchedNew, key)
				continue
			}
			matched[key] = true
			matchedOldWall += oc.WallMs
			matchedNewWall += nc.WallMs
			matchedOldEvents += oc.Events
			matchedNewEvents += nc.Events
			if !header {
				fmt.Fprintf(stdout, "\n%-24s %14s %14s %10s\n",
					"cell (ns/event)", "old", "new", "delta")
				header = true
			}
			mark := ""
			if oc.Events != nc.Events {
				workloadMismatch = true
				mark = "  [!] event counts differ: different workload"
			}
			fmt.Fprintf(stdout, "%-24s %14.1f %14.1f %10s%s\n",
				key, nsPerEvent(oc), nsPerEvent(nc),
				pct(nsPerEvent(oc), nsPerEvent(nc)), mark)
		}
	}
	for _, e := range oldDoc.Experiments {
		for _, c := range e.Cells {
			if !matched[e.ID+"/"+c.Key] {
				unmatchedOld = append(unmatchedOld, e.ID+"/"+c.Key)
			}
		}
	}
	for _, key := range unmatchedNew {
		fmt.Fprintf(stdout, "\nwarn: cell %s has no baseline counterpart; excluded from comparison\n", key)
	}
	for _, key := range unmatchedOld {
		fmt.Fprintf(stdout, "\nwarn: baseline cell %s absent from new document; excluded from comparison\n", key)
	}
	if workloadMismatch {
		fmt.Fprintln(stdout, "\n[!] some matched cells simulated different event counts; their")
		fmt.Fprintln(stdout, "    wall-clock deltas compare different workloads, not performance.")
	}

	// Regression gate. When both documents cover exactly the same cells the
	// batch events-per-second is the gate, as always. When they differ, that
	// batch number compares different batches — gate on the matched cells'
	// aggregate rate instead.
	oldRate, newRate := oldDoc.Perf.EventsPerSec, newDoc.Perf.EventsPerSec
	gateName := "events_per_sec"
	if len(unmatchedNew)+len(unmatchedOld) > 0 {
		gateName = "matched-cell events_per_sec"
		oldRate, newRate = 0, 0
		if matchedOldWall > 0 {
			oldRate = float64(matchedOldEvents) / (matchedOldWall / 1e3)
		}
		if matchedNewWall > 0 {
			newRate = float64(matchedNewEvents) / (matchedNewWall / 1e3)
		}
		fmt.Fprintf(stdout, "\nwarn: documents cover different cells; gating on matched cells only (%s old, %s new)\n",
			fmt.Sprintf("%.0f ev/s", oldRate), fmt.Sprintf("%.0f ev/s", newRate))
	}
	if oldRate > 0 {
		reg := (oldRate - newRate) / oldRate * 100
		if reg > *threshold {
			fmt.Fprintf(stdout, "\nFAIL: %s regressed %.1f%% (threshold %.1f%%)\n",
				gateName, reg, *threshold)
			return 1
		}
		fmt.Fprintf(stdout, "\nOK: %s within %.1f%% threshold\n", gateName, *threshold)
	}
	return 0
}

// gobenchResult is one parsed `go test -bench` result line.
type gobenchResult struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// parseGobench reads `go test -bench` output, returning results keyed by
// benchmark name with the -GOMAXPROCS suffix stripped, plus the names in
// file order. Duplicate names (e.g. the same benchmark from two packages or
// -count > 1) keep the LAST result — matching how a human reads a rerun.
func parseGobench(path string) (map[string]gobenchResult, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := make(map[string]gobenchResult)
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var r gobenchResult
		seen := false
		// fields[1] is the iteration count; after it come value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsPerOp = v
				seen = true
			case "allocs/op":
				r.allocsPerOp = v
				r.hasAllocs = true
			}
		}
		if !seen {
			continue
		}
		if _, dup := out[name]; !dup {
			order = append(order, name)
		}
		out[name] = r
	}
	return out, order, sc.Err()
}

// runGobench compares two `go test -bench` outputs benchmark-by-benchmark.
// ns/op is gated with the percentage threshold (micro-benchmarks on shared
// runners are noisy; pick the threshold accordingly); allocs/op is gated
// exactly, because Go's allocation accounting is deterministic and the
// scheduler benches pin zero steady-state allocations.
func runGobench(oldPath, newPath string, threshold float64, stdout, stderr io.Writer) int {
	oldRes, _, err := parseGobench(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newRes, newOrder, err := parseGobench(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "%-32s %12s %12s %10s %18s\n", "benchmark (ns/op)", "old", "new", "delta", "allocs old->new")
	failed := false
	matched := 0
	for _, name := range newOrder {
		nr := newRes[name]
		or, ok := oldRes[name]
		if !ok {
			fmt.Fprintf(stdout, "%-32s %12s %12.1f %10s\n", name, "(none)", nr.nsPerOp, "n/a")
			continue
		}
		matched++
		verdict := ""
		reg := 0.0
		if or.nsPerOp > 0 {
			reg = (nr.nsPerOp - or.nsPerOp) / or.nsPerOp * 100
		}
		if reg > threshold {
			verdict = "  FAIL ns/op"
			failed = true
		}
		allocs := "-"
		if or.hasAllocs && nr.hasAllocs {
			allocs = fmt.Sprintf("%.0f -> %.0f", or.allocsPerOp, nr.allocsPerOp)
			if nr.allocsPerOp > or.allocsPerOp {
				verdict += "  FAIL allocs/op grew"
				failed = true
			}
		}
		fmt.Fprintf(stdout, "%-32s %12.1f %12.1f %+9.1f%% %18s%s\n",
			name, or.nsPerOp, nr.nsPerOp, reg, allocs, verdict)
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			fmt.Fprintf(stdout, "warn: baseline benchmark %s missing from new output\n", name)
		}
	}
	if matched == 0 {
		fmt.Fprintln(stdout, "\nFAIL: no benchmarks matched between the two files")
		return 1
	}
	if failed {
		fmt.Fprintf(stdout, "\nFAIL: scheduler benchmark regression (ns/op threshold %.1f%%, allocs/op exact)\n", threshold)
		return 1
	}
	fmt.Fprintf(stdout, "\nOK: %d benchmarks within %.1f%% ns/op threshold, no allocs/op growth\n", matched, threshold)
	return 0
}
