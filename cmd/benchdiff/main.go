// Command benchdiff compares two pmnetbench JSON documents (schema
// "pmnetbench/v1") and reports the wall-clock delta between them: batch
// events-per-second, and per-cell wall time and ns-per-event, matched by
// (experiment id, cell key).
//
// Usage:
//
//	benchdiff [-threshold PCT] old.json new.json
//
// The exit status makes it a CI gate: benchdiff exits 1 when the new
// document's batch events-per-second regressed by more than -threshold
// percent (default 15) against the old one. Virtual-time fields are checked
// first — if the two documents simulated different event counts for a
// matched cell, they ran different workloads and the wall-clock comparison
// is flagged as unreliable (but still printed).
//
// The same tool reads speedups: run `pmnetbench -run scale -parallel 1 -json`
// at -shards 1 and -shards 4, then benchdiff the two files; a speedup of
// 2.0x prints as a -50% wall / +100% events-per-second delta.
package main

import (
	"flag"
	"fmt"
	"os"

	"pmnet/internal/benchfmt"
)

func pct(oldV, newV float64) string {
	if oldV == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
}

func nsPerEvent(c benchfmt.Cell) float64 {
	if c.Events == 0 {
		return 0
	}
	return c.WallMs * 1e6 / float64(c.Events)
}

func main() {
	threshold := flag.Float64("threshold", 15, "max tolerated events-per-second regression (percent) before exiting 1")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] old.json new.json")
		os.Exit(2)
	}
	oldDoc, err := benchfmt.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newDoc, err := benchfmt.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("old: %s  (seed %d, parallel %d, shards %d)\n",
		flag.Arg(0), oldDoc.Seed, oldDoc.Parallel, oldDoc.Shards)
	fmt.Printf("new: %s  (seed %d, parallel %d, shards %d)\n\n",
		flag.Arg(1), newDoc.Seed, newDoc.Parallel, newDoc.Shards)

	fmt.Printf("%-24s %14s %14s %10s\n", "batch", "old", "new", "delta")
	fmt.Printf("%-24s %14.1f %14.1f %10s\n", "wall_ms",
		oldDoc.WallMs, newDoc.WallMs, pct(oldDoc.WallMs, newDoc.WallMs))
	fmt.Printf("%-24s %14d %14d %10s\n", "events",
		oldDoc.Perf.Events, newDoc.Perf.Events,
		pct(float64(oldDoc.Perf.Events), float64(newDoc.Perf.Events)))
	fmt.Printf("%-24s %14.0f %14.0f %10s\n", "events_per_sec",
		oldDoc.Perf.EventsPerSec, newDoc.Perf.EventsPerSec,
		pct(oldDoc.Perf.EventsPerSec, newDoc.Perf.EventsPerSec))
	fmt.Printf("%-24s %14.3f %14.3f %10s\n", "allocs_per_event",
		oldDoc.Perf.AllocsPerEvent, newDoc.Perf.AllocsPerEvent,
		pct(oldDoc.Perf.AllocsPerEvent, newDoc.Perf.AllocsPerEvent))
	if oldDoc.Perf.EventsPerSec > 0 {
		fmt.Printf("%-24s %41.2fx\n", "speedup (new/old)",
			newDoc.Perf.EventsPerSec/oldDoc.Perf.EventsPerSec)
	}

	// Per-cell comparison, matched by (experiment id, cell key) in the new
	// document's order. Cells present in only one document are skipped —
	// the two runs selected different experiments, which is fine.
	oldCells := make(map[string]benchfmt.Cell)
	for _, e := range oldDoc.Experiments {
		for _, c := range e.Cells {
			oldCells[e.ID+"/"+c.Key] = c
		}
	}
	workloadMismatch := false
	header := false
	for _, e := range newDoc.Experiments {
		for _, nc := range e.Cells {
			key := e.ID + "/" + nc.Key
			oc, ok := oldCells[key]
			if !ok {
				continue
			}
			if !header {
				fmt.Printf("\n%-24s %14s %14s %10s\n",
					"cell (ns/event)", "old", "new", "delta")
				header = true
			}
			mark := ""
			if oc.Events != nc.Events {
				workloadMismatch = true
				mark = "  [!] event counts differ: different workload"
			}
			fmt.Printf("%-24s %14.1f %14.1f %10s%s\n",
				key, nsPerEvent(oc), nsPerEvent(nc),
				pct(nsPerEvent(oc), nsPerEvent(nc)), mark)
		}
	}
	if workloadMismatch {
		fmt.Println("\n[!] some matched cells simulated different event counts; their")
		fmt.Println("    wall-clock deltas compare different workloads, not performance.")
	}

	if oldDoc.Perf.EventsPerSec > 0 {
		reg := (oldDoc.Perf.EventsPerSec - newDoc.Perf.EventsPerSec) /
			oldDoc.Perf.EventsPerSec * 100
		if reg > *threshold {
			fmt.Printf("\nFAIL: events_per_sec regressed %.1f%% (threshold %.1f%%)\n",
				reg, *threshold)
			os.Exit(1)
		}
		fmt.Printf("\nOK: events_per_sec within %.1f%% threshold\n", *threshold)
	}
}
