package pmnet

import (
	"fmt"

	"pmnet/internal/apps"
	"pmnet/internal/kv"
	"pmnet/internal/rediskv"
)

// EngineNames lists the five PMDK-style storage engines, in the paper's
// order: btree, ctree, rbtree, hashmap, skiplist.
var EngineNames = append([]string(nil), kv.EngineNames...)

// NewKVHandler creates a server request handler backed by one of the five
// persistent index engines (§VI-A2) on a fresh simulated PM arena of
// arenaBytes (0 = 64 MiB). The handler serves OpGet/OpPut/OpDelete and the
// server-side locking primitives of §III-C, charging CPU time derived from
// the engine's actual PM work.
func NewKVHandler(engine string, arenaBytes int) (Handler, error) {
	factory, ok := kv.Factories[engine]
	if !ok {
		return nil, fmt.Errorf("pmnet: unknown engine %q (have %v)", engine, EngineNames)
	}
	if arenaBytes <= 0 {
		arenaBytes = 64 << 20
	}
	arena := kv.NewArena(arenaBytes)
	e, err := factory(arena)
	if err != nil {
		return nil, err
	}
	return apps.NewKVHandler(e, arena), nil
}

// NewRedisHandler creates a server request handler backed by the Redis-like
// persistent store (the paper's PM-optimized Redis analogue). Commands ride
// in TxnReq requests: TxnReq([]byte("SET"), key, value), and so on for GET,
// INCR, LPUSH, LRANGE, SADD, SISMEMBER, SCARD. Plain PutReq/GetReq map to
// string SET/GET.
func NewRedisHandler(arenaBytes int) (Handler, error) {
	if arenaBytes <= 0 {
		arenaBytes = 64 << 20
	}
	arena := kv.NewArena(arenaBytes)
	store, err := rediskv.Open(arena)
	if err != nil {
		return nil, err
	}
	return apps.NewRedisHandler(store, arena), nil
}
