package pmnet

import (
	"fmt"
	"testing"
)

func TestNewKVHandlerAllEngines(t *testing.T) {
	for _, name := range EngineNames {
		h, err := NewKVHandler(name, 8<<20)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp, cost := h.Handle(PutReq([]byte("k"), []byte("v")))
		if resp.Status != StatusOK || cost <= 0 {
			t.Fatalf("%s: put %+v cost %v", name, resp, cost)
		}
		resp, _ = h.Handle(GetReq([]byte("k")))
		if resp.Status != StatusOK || string(resp.Args[1]) != "v" {
			t.Fatalf("%s: get %+v", name, resp)
		}
	}
}

func TestNewKVHandlerUnknownEngine(t *testing.T) {
	if _, err := NewKVHandler("btrie", 0); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestNewRedisHandler(t *testing.T) {
	h, err := NewRedisHandler(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := h.Handle(TxnReq([]byte("INCR"), []byte("ctr")))
	if resp.Status != StatusOK || string(resp.Args[0]) != "1" {
		t.Fatalf("INCR: %+v", resp)
	}
}

func TestEngineNamesExported(t *testing.T) {
	if len(EngineNames) != 5 {
		t.Fatalf("EngineNames = %v", EngineNames)
	}
	// The exported slice must be a copy: mutating it must not corrupt the
	// registry used by NewKVHandler.
	saved := EngineNames[0]
	EngineNames[0] = "corrupted"
	defer func() { EngineNames[0] = saved }()
	if _, err := NewKVHandler(saved, 1<<20); err != nil {
		t.Fatalf("registry corrupted by exported-slice mutation: %v", err)
	}
}

// End-to-end: a full cluster with each engine handler behind PMNet, doing a
// write → read → delete → read sequence through the network.
func TestEndToEndEachEngine(t *testing.T) {
	for _, name := range EngineNames {
		name := name
		t.Run(name, func(t *testing.T) {
			h, err := NewKVHandler(name, 16<<20)
			if err != nil {
				t.Fatal(err)
			}
			bed := NewTestbed(Config{Design: PMNetSwitch, Seed: 3, Handler: h})
			s := bed.Session(0)
			var steps []string
			s.SendUpdate(PutReq([]byte("alpha"), []byte("one")), func(r Result) {
				steps = append(steps, fmt.Sprintf("put:%v", r.Status))
				s.Bypass(GetReq([]byte("alpha")), func(r Result) {
					steps = append(steps, fmt.Sprintf("get:%v:%s", r.Status, r.Value))
					s.SendUpdate(DeleteReq([]byte("alpha")), func(r Result) {
						steps = append(steps, fmt.Sprintf("del:%v", r.Status))
						s.Bypass(GetReq([]byte("alpha")), func(r Result) {
							steps = append(steps, fmt.Sprintf("get2:%v", r.Status))
						})
					})
				})
			})
			bed.Run()
			want := []string{"put:ok", "get:ok:one", "del:ok", "get2:not-found"}
			if len(steps) != len(want) {
				t.Fatalf("steps %v", steps)
			}
			for i := range want {
				if steps[i] != want[i] {
					t.Fatalf("step %d = %q, want %q (all: %v)", i, steps[i], want[i], steps)
				}
			}
		})
	}
}

func TestDesignAndStackStrings(t *testing.T) {
	if ClientServer.String() != "Client-Server" || PMNetSwitch.String() != "PMNet-Switch" ||
		PMNetNIC.String() != "PMNet-NIC" {
		t.Fatal("design names wrong")
	}
	if Design(99).String() == "" {
		t.Fatal("unknown design must format")
	}
}

func TestTestbedConfigDefaults(t *testing.T) {
	bed := NewTestbed(Config{Design: PMNetSwitch})
	cfg := bed.Config()
	if cfg.Clients != 1 || cfg.ServerWorkers != 16 || cfg.Replication != 1 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Handler == nil || cfg.Timeout <= 0 {
		t.Fatal("handler/timeout defaults missing")
	}
	if len(bed.Devices) != 1 || bed.ToR == nil || bed.Server == nil {
		t.Fatal("testbed components missing")
	}
}

func TestEndToEndScan(t *testing.T) {
	h, err := NewKVHandler("btree", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	bed := NewTestbed(Config{Design: PMNetSwitch, Seed: 4, Handler: h})
	s := bed.Session(0)
	// Insert three keys then range-scan from the second.
	var scanned [][]byte
	s.SendUpdate(PutReq([]byte("kA"), []byte("1")), func(Result) {
		s.SendUpdate(PutReq([]byte("kB"), []byte("2")), func(Result) {
			s.SendUpdate(PutReq([]byte("kC"), []byte("3")), func(Result) {
				s.Bypass(ScanReq([]byte("kB"), 10), func(r Result) {
					if r.Status != StatusOK {
						t.Errorf("scan status %v", r.Status)
					}
					scanned = r.Args
				})
			})
		})
	})
	bed.Run()
	if len(scanned) != 4 { // kB,2,kC,3
		t.Fatalf("scan args %q", scanned)
	}
	if string(scanned[0]) != "kB" || string(scanned[3]) != "3" {
		t.Fatalf("scan results %q", scanned)
	}
}

func TestMultiServerRack(t *testing.T) {
	// Three servers behind one PMNet ToR; sessions round-robin. Each server
	// gets its own engine; the shared device logs per-destination.
	bed := NewTestbed(Config{
		Design:  PMNetSwitch,
		Clients: 6,
		Servers: 3,
		Seed:    8,
		HandlerFactory: func(i int) Handler {
			h, err := NewKVHandler("hashmap", 8<<20)
			if err != nil {
				t.Fatal(err)
			}
			return h
		},
	})
	if len(bed.Servers) != 3 {
		t.Fatalf("built %d servers", len(bed.Servers))
	}
	done := 0
	for c := 0; c < 6; c++ {
		c := c
		var issue func(k int)
		issue = func(k int) {
			if k >= 30 {
				return
			}
			key := []byte(fmt.Sprintf("c%d-k%02d", c, k))
			bed.Session(c).SendUpdate(PutReq(key, []byte("v")), func(r Result) {
				if r.Err == nil {
					done++
				}
				issue(k + 1)
			})
		}
		issue(0)
	}
	bed.Run()
	if done != 180 {
		t.Fatalf("completed %d/180", done)
	}
	// Work spread across all three servers; the one device served them all.
	for i, s := range bed.Servers {
		if got := s.Stats().UpdatesApplied; got != 60 {
			t.Fatalf("server %d applied %d, want 60", i, got)
		}
	}
	st := bed.Devices[0].Stats()
	if st.Log.Logged != 180 || bed.Devices[0].Log().LiveEntries() != 0 {
		t.Fatalf("device log stats: logged=%d live=%d", st.Log.Logged,
			bed.Devices[0].Log().LiveEntries())
	}
}

func TestMultiServerIndependentCrash(t *testing.T) {
	// Crashing one server of the rack must not disturb the others, and its
	// recovery replay must only target it.
	handlers := make([]*struct{ h Handler }, 3)
	bed := NewTestbed(Config{
		Design:  PMNetSwitch,
		Clients: 3,
		Servers: 3,
		Seed:    9,
		Timeout: 20 * Millisecond,
		HandlerFactory: func(i int) Handler {
			h, _ := NewKVHandler("hashmap", 8<<20)
			handlers[i] = &struct{ h Handler }{h}
			return h
		},
	})
	completed := 0
	for c := 0; c < 3; c++ {
		c := c
		var issue func(k int)
		issue = func(k int) {
			if k >= 40 {
				return
			}
			bed.Session(c).SendUpdate(PutReq([]byte(fmt.Sprintf("c%d-%02d", c, k)), []byte("v")),
				func(r Result) {
					if r.Err == nil {
						completed++
					}
					issue(k + 1)
				})
		}
		issue(0)
	}
	bed.RunFor(300 * Microsecond)
	bed.Servers[1].Crash() // only server 1 (client 1's backend)
	bed.RunFor(400 * Microsecond)
	bed.Servers[1].Recover()
	bed.Run()
	if completed != 120 {
		t.Fatalf("completed %d/120", completed)
	}
	for i, s := range bed.Servers {
		if got := s.Stats().UpdatesApplied; got != 40 {
			t.Fatalf("server %d applied %d, want 40", i, got)
		}
	}
	if bed.Devices[0].Log().LiveEntries() != 0 {
		t.Fatal("device log not drained")
	}
}
