package pmnet_test

// End-to-end tests of the observability layer: the golden trace (the exact
// chrome://tracing bytes of a small fixed scenario), byte-determinism across
// concurrently executing identical runs (the harness's -parallel contract,
// also exercised under -race by `make race`), and the stability of the
// unified counters registry.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pmnet"
	"pmnet/internal/harness"
	"pmnet/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// smokeConfig mirrors the `pmnetsim -workload ideal -clients 1 -requests 5
// -seed 7` scenario used by `make trace-smoke`, so the Go golden test and the
// CLI smoke target pin the same bytes.
func smokeConfig() harness.RunConfig {
	return harness.RunConfig{
		Design:      pmnet.PMNetSwitch,
		Workload:    harness.WLIdeal,
		Clients:     1,
		Requests:    5,
		UpdateRatio: 1.0,
		Seed:        7,
	}
}

// tracedRun executes cfg with a fresh tracer and returns the chrome JSON.
func tracedRun(t *testing.T, cfg harness.RunConfig) []byte {
	t.Helper()
	tr := trace.NewTracer(0)
	cfg.Trace = tr
	res, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring overflow: %d records dropped", tr.Dropped())
	}
	return tr.ChromeJSON(res.Bed.NodeName)
}

func TestTraceGoldenSmoke(t *testing.T) {
	got := tracedRun(t, smokeConfig())
	golden := filepath.Join("testdata", "trace_smoke.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestTraceGoldenSmoke -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace diverged from golden (%d vs %d bytes): the event stream "+
			"or its encoding changed; inspect with `pmnetsim -trace`, then "+
			"regenerate via `go test -run TestTraceGoldenSmoke -update`",
			len(got), len(want))
	}
}

// TestTraceByteIdenticalAcrossGoroutines runs several identical traced
// simulations on concurrent goroutines — the way the harness worker pool
// executes cells — and requires byte-identical traces. Loss and a mid-run
// crash are enabled so the nondeterminism-prone paths (drops, resends,
// recovery) are all in the stream. Under -race this doubles as the proof
// that tracing introduces no cross-testbed sharing.
func TestTraceByteIdenticalAcrossGoroutines(t *testing.T) {
	const copies = 4
	runOnce := func() []byte {
		tr := trace.NewTracer(0)
		res, err := harness.Run(harness.RunConfig{
			Design:      pmnet.PMNetSwitch,
			Workload:    harness.WLIdeal,
			Clients:     3,
			Requests:    40,
			UpdateRatio: 1.0,
			Seed:        11,
			Trace:       tr,
		})
		if err != nil {
			t.Error(err)
			return nil
		}
		return tr.ChromeJSON(res.Bed.NodeName)
	}
	outs := make([][]byte, copies)
	var wg sync.WaitGroup
	for i := 0; i < copies; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i] = runOnce()
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := 1; i < copies; i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Fatalf("copy %d trace differs from copy 0 (%d vs %d bytes)",
				i, len(outs[i]), len(outs[0]))
		}
	}
	if len(outs[0]) == 0 {
		t.Fatal("empty trace")
	}
}

// TestCountersDeterministicAndComplete pins the unified registry: two
// identical runs snapshot to identical counter sets, the names cover every
// layer, and the values agree with the layer stats they absorb.
func TestCountersDeterministicAndComplete(t *testing.T) {
	run := func() ([]trace.Snapshot, *harness.RunResult) {
		res, err := harness.Run(smokeConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.Bed.Counters().Snapshot(), res
	}
	snap1, res := run()
	snap2, _ := run()
	if len(snap1) != len(snap2) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(snap1), len(snap2))
	}
	for i := range snap1 {
		if snap1[i] != snap2[i] {
			t.Fatalf("counter %d differs across identical runs: %+v vs %+v",
				i, snap1[i], snap2[i])
		}
	}
	byName := make(map[string]uint64, len(snap1))
	for _, s := range snap1 {
		byName[s.Name] = s.Value
	}
	for _, name := range []string{
		"engine.events", "net.delivered", "client.completed",
		"server.updates_applied", "dev0.log.logged", "dev0.pm.persists",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("registry missing %q", name)
		}
	}
	if got, want := byName["client.completed"], res.Bed.Session(0).Stats().Completed; got != want {
		t.Errorf("client.completed=%d, session stats say %d", got, want)
	}
	if got, want := byName["engine.events"], res.Bed.Engine.EventsRun(); got != want {
		t.Errorf("engine.events=%d, engine says %d", got, want)
	}
	if byName["dev0.log.live"] != 0 {
		t.Errorf("dev0.log.live=%d after quiescence, want 0", byName["dev0.log.live"])
	}
}
