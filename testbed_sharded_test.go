package pmnet

import (
	"fmt"
	"reflect"
	"testing"

	"pmnet/internal/dataplane"
	"pmnet/internal/netsim"
	"pmnet/internal/sim"
)

// grantAll is a WorkerBudget that always grants the full request — it forces
// the runner onto the multi-worker path regardless of GOMAXPROCS, so the
// identity tests below exercise real barrier concurrency even on 1-CPU CI.
type grantAll struct{ granted int }

func (g *grantAll) Acquire(want int) int { g.granted += want; return want }
func (g *grantAll) Release(n int)        {}

// runShardedUpdates drives n synchronous updates on every session of a
// sharded testbed and returns per-session latency slices plus the run's
// observables.
func runShardedUpdates(t *testing.T, cfg Config, n int) (lats [][]Time, events uint64, now Time) {
	t.Helper()
	tb := NewTestbed(cfg)
	if !tb.Sharded() {
		t.Fatalf("config did not take the sharded path: %+v", cfg)
	}
	lats = make([][]Time, cfg.Clients)
	val := make([]byte, 100)
	for i := range lats {
		i := i
		var issue func(k int)
		issue = func(k int) {
			if k >= n {
				return
			}
			key := []byte(fmt.Sprintf("key-%d-%d", i, k))
			tb.Session(i).SendUpdate(PutReq(key, val), func(r Result) {
				if r.Err == nil {
					lats[i] = append(lats[i], r.Latency)
				}
				issue(k + 1)
			})
		}
		issue(0)
	}
	tb.Run()
	return lats, tb.EventsRun(), tb.Now()
}

// TestShardedForcedMultiWorker: granting the runner a full worker complement
// must not change a single observable versus the default 1-worker budget-less
// run. This is the §10.4 determinism contract at the worker axis (the shard
// axis is covered by the harness's TestShardedByteIdentical), and it runs the
// multi-worker barrier path even when GOMAXPROCS would normally clamp the
// runner to one worker.
func TestShardedForcedMultiWorker(t *testing.T) {
	for _, shards := range []int{2, 4, 7} {
		base := Config{Design: PMNetSwitch, Clients: 8, Replication: 2, Seed: 9, Shards: shards}
		forced := base
		g := &grantAll{}
		forced.WorkerBudget = g

		wantLats, wantEvents, wantNow := runShardedUpdates(t, base, 20)
		gotLats, gotEvents, gotNow := runShardedUpdates(t, forced, 20)

		if g.granted == 0 {
			t.Fatalf("shards=%d: forced budget was never consulted", shards)
		}
		if !reflect.DeepEqual(gotLats, wantLats) {
			t.Errorf("shards=%d: latencies diverge under forced workers", shards)
		}
		if gotEvents != wantEvents {
			t.Errorf("shards=%d: events %d != %d", shards, gotEvents, wantEvents)
		}
		if gotNow != wantNow {
			t.Errorf("shards=%d: virtual end %d != %d", shards, gotNow, wantNow)
		}
	}
}

// TestPlanTopologyShardInvariant: the partition plan must be a pure function
// of the cluster config — never of cfg.Shards — or `-shards 1` and
// `-shards N` would see different event interleavings.
func TestPlanTopologyShardInvariant(t *testing.T) {
	cfg := Config{Design: PMNetSwitch, Clients: 8, Replication: 3, Seed: 1}
	link := cfg.applyDefaults()
	want := planTopology(&cfg, link)
	for _, sh := range []int{1, 4, 12} {
		c := cfg
		c.Shards = sh
		if got := planTopology(&c, link); !reflect.DeepEqual(got, want) {
			t.Fatalf("plan changed with Shards=%d", sh)
		}
	}
}

// TestPlanTopologyStructure checks the planner's cuts on the real testbed
// topologies: low-latency chain patches and NIC hops merge, full-latency
// edge links are cut (maximizing lookahead), servers co-locate, and
// PinWithToR glues devices to the ToR.
func TestPlanTopologyStructure(t *testing.T) {
	// DefaultLink edge latency: 600 ns propagation + 46-byte UDP overhead
	// serialized at 10 Gb/s.
	link := netsim.DefaultLink()
	edgeLat := link.PropDelay + sim.Time(float64(netsim.UDPOverhead*8)/link.Bandwidth*1e9)

	t.Run("switch-chain", func(t *testing.T) {
		cfg := Config{Design: PMNetSwitch, Clients: 6, Replication: 3}
		link := cfg.applyDefaults()
		p := planTopology(&cfg, link)
		if p.Lookahead != edgeLat {
			t.Errorf("lookahead %d, want edge-link latency %d", p.Lookahead, edgeLat)
		}
		// The 200 ns chain patches merge the devices into one partition,
		// separate from the ToR (PinChain default).
		d0 := p.Part[devBase]
		for i := 1; i < 3; i++ {
			if p.Part[devBase+netsim.NodeID(i)] != d0 {
				t.Errorf("device %d split from chain partition", i)
			}
		}
		if p.Part[torID] == d0 {
			t.Error("ToR merged into the device chain under PinChain")
		}
		if p.NParts > maxPartitions {
			t.Errorf("%d partitions exceed the %d cap", p.NParts, maxPartitions)
		}
	})

	t.Run("nic", func(t *testing.T) {
		cfg := Config{Design: PMNetNIC, Clients: 4}
		link := cfg.applyDefaults()
		p := planTopology(&cfg, link)
		// The 100 ns bump-in-the-wire hop merges the NIC device with the
		// server; the client edge links are the cut.
		if p.Part[devBase] != p.Part[serverID] {
			t.Error("NIC device split from its server")
		}
		if p.Lookahead != edgeLat {
			t.Errorf("lookahead %d, want edge-link latency %d", p.Lookahead, edgeLat)
		}
	})

	t.Run("pin-with-tor", func(t *testing.T) {
		cfg := Config{Design: PMNetSwitch, Clients: 4, Replication: 2}
		cfg.Device.Pin = dataplane.PinWithToR
		link := cfg.applyDefaults()
		p := planTopology(&cfg, link)
		for i := 0; i < 2; i++ {
			if p.Part[devBase+netsim.NodeID(i)] != p.Part[torID] {
				t.Errorf("device %d not co-located with ToR under PinWithToR", i)
			}
		}
	})

	t.Run("multi-server", func(t *testing.T) {
		cfg := Config{Design: PMNetSwitch, Clients: 4, Servers: 3}
		link := cfg.applyDefaults()
		p := planTopology(&cfg, link)
		s0 := p.Part[serverID]
		for i := 1; i < 3; i++ {
			if p.Part[serverID+netsim.NodeID(i)] != s0 {
				t.Errorf("server %d split from the rack partition", i)
			}
		}
	})
}

// TestShardedPartitionCounters: the registry exposes the plan's partition
// count, and epochs/events-per-epoch are populated after a run.
func TestShardedPartitionCounters(t *testing.T) {
	cfg := Config{Design: PMNetSwitch, Clients: 6, Seed: 3, Shards: 4}
	tb := NewTestbed(cfg)
	runShardedUpdatesOn(t, tb, 10)
	counters := map[string]uint64{}
	for _, s := range tb.Counters().Snapshot() {
		counters[s.Name] = s.Value
	}
	if counters["sim.partitions"] == 0 {
		t.Error("sim.partitions not exported")
	}
	if counters["sim.epochs"] == 0 {
		t.Error("sim.epochs zero after a sharded run")
	}
	if counters["sim.events_per_epoch"] == 0 {
		t.Error("sim.events_per_epoch zero after a sharded run")
	}
	if perf := tb.RunnerPerf(); perf.Epochs != counters["sim.epochs"] {
		t.Errorf("RunnerPerf epochs %d != counter %d", perf.Epochs, counters["sim.epochs"])
	}
}

// runShardedUpdatesOn drives updates on an already-built testbed.
func runShardedUpdatesOn(t *testing.T, tb *Testbed, n int) {
	t.Helper()
	val := make([]byte, 100)
	for i := range tb.Sessions {
		i := i
		var issue func(k int)
		issue = func(k int) {
			if k >= n {
				return
			}
			key := []byte(fmt.Sprintf("key-%d-%d", i, k))
			tb.Session(i).SendUpdate(PutReq(key, val), func(r Result) { issue(k + 1) })
		}
		issue(0)
	}
	tb.Run()
}
