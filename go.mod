module pmnet

go 1.22
