package netsim

import (
	"testing"

	"pmnet/internal/protocol"
	"pmnet/internal/sim"
)

// testRig wires two hosts through a switch: h1 -- sw -- h2.
type testRig struct {
	eng    *sim.Engine
	net    *Network
	h1, h2 *Host
	sw     *Switch
}

func newRig(t *testing.T, link LinkConfig) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	r := sim.NewRand(1)
	net := New(eng, r.Fork())
	noJitter := StackModel{Base: 1 * sim.Microsecond}
	h1 := NewHost(net, 1, "h1", noJitter, 1, r.Fork())
	h2 := NewHost(net, 2, "h2", noJitter, 1, r.Fork())
	sw := NewSwitch(net, 3, "sw", DefaultSwitchLatency)
	net.Connect(1, 3, link)
	net.Connect(2, 3, link)
	return &testRig{eng: eng, net: net, h1: h1, h2: h2, sw: sw}
}

func rawPacket(to NodeID, n int) *Packet {
	return &Packet{To: to, Raw: make([]byte, n)}
}

func TestEndToEndDelivery(t *testing.T) {
	rig := newRig(t, LinkConfig{PropDelay: 1 * sim.Microsecond, Bandwidth: 10e9})
	var gotAt sim.Time
	var got *Packet
	rig.h2.OnReceive(func(p *Packet) { got, gotAt = p, rig.eng.Now() })
	rig.h1.Send(rawPacket(2, 100))
	rig.eng.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	// tx stack 1µs + ser(146B@10G ≈ 116ns) + prop 1µs + switch 0.5µs +
	// ser + prop 1µs + rx stack 1µs ≈ 4.73µs.
	if gotAt < 4*sim.Microsecond || gotAt > 6*sim.Microsecond {
		t.Fatalf("delivery at %v, want ≈4.7µs", gotAt)
	}
	if got.Hops != 2 {
		t.Fatalf("hops = %d, want 2", got.Hops)
	}
	if rig.net.Stats().Delivered != 1 {
		t.Fatalf("stats %+v", rig.net.Stats())
	}
}

func TestSerializationDelayScalesWithSize(t *testing.T) {
	link := LinkConfig{PropDelay: 0, Bandwidth: 1e9} // 1 Gbps to amplify
	rig := newRig(t, link)
	var small, large sim.Time
	rig.h2.OnReceive(func(p *Packet) {
		if len(p.Raw) < 1000 {
			small = rig.eng.Now() - p.SentAt
		} else {
			large = rig.eng.Now() - p.SentAt
		}
	})
	rig.h1.Send(rawPacket(2, 10))
	rig.eng.Run()
	rig.h1.Send(rawPacket(2, 10000))
	rig.eng.Run()
	if large <= small {
		t.Fatalf("large packet (%v) not slower than small (%v)", large, small)
	}
	// 10 kB at 1 Gbps is ~80 µs of serialization per hop.
	if large-small < 100*sim.Microsecond {
		t.Fatalf("serialization delta %v too small", large-small)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	link := LinkConfig{PropDelay: 0, Bandwidth: 1e9, QueueBytes: 2000}
	rig := newRig(t, link)
	delivered := 0
	rig.h2.OnReceive(func(p *Packet) { delivered++ })
	// Burst far beyond the 2 kB queue. All Sends enter the wire at ~1µs
	// (same stack latency), so most must tail-drop.
	for i := 0; i < 50; i++ {
		rig.h1.Send(rawPacket(2, 1000))
	}
	rig.eng.Run()
	if delivered >= 50 {
		t.Fatal("no drops despite overflowing queue")
	}
	if rig.net.Stats().DroppedFull == 0 {
		t.Fatal("DroppedFull not counted")
	}
	if delivered == 0 {
		t.Fatal("everything dropped; queue model broken")
	}
}

func TestRandomLoss(t *testing.T) {
	link := LinkConfig{PropDelay: 0, Bandwidth: 0, LossRate: 0.5}
	rig := newRig(t, link)
	delivered := 0
	rig.h2.OnReceive(func(p *Packet) { delivered++ })
	const n = 2000
	for i := 0; i < n; i++ {
		rig.h1.Send(rawPacket(2, 10))
	}
	rig.eng.Run()
	// Two lossy hops at 50% each → ~25% delivery.
	frac := float64(delivered) / n
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("delivered %.2f, want ≈0.25", frac)
	}
	if rig.net.Stats().DroppedRand == 0 {
		t.Fatal("DroppedRand not counted")
	}
}

func TestFailedNodeDropsTraffic(t *testing.T) {
	rig := newRig(t, DefaultLink())
	delivered := 0
	rig.h2.OnReceive(func(p *Packet) { delivered++ })
	rig.h2.Fail()
	rig.h1.Send(rawPacket(2, 100))
	rig.eng.Run()
	if delivered != 0 {
		t.Fatal("failed host received traffic")
	}
	rig.h2.Restart()
	rig.h1.Send(rawPacket(2, 100))
	rig.eng.Run()
	if delivered != 1 {
		t.Fatal("restarted host did not receive traffic")
	}
}

func TestFailDropsInFlightStackWork(t *testing.T) {
	rig := newRig(t, DefaultLink())
	delivered := 0
	rig.h2.OnReceive(func(p *Packet) { delivered++ })
	rig.h1.Send(rawPacket(2, 100))
	// Fail h2 while the packet is in flight and keep it down until after
	// the packet would have arrived: the packet must be lost. Restarting
	// afterwards must not resurrect it.
	rig.eng.RunUntil(2 * sim.Microsecond)
	rig.h2.Fail()
	rig.eng.RunUntil(20 * sim.Microsecond)
	rig.h2.Restart()
	rig.eng.Run()
	if delivered != 0 {
		t.Fatal("packet survived host crash")
	}
	if rig.net.Stats().DroppedDead == 0 {
		t.Fatal("crash drop not counted")
	}
}

func TestNoRouteDrops(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, sim.NewRand(1))
	h1 := NewHost(net, 1, "h1", StackModel{}, 1, sim.NewRand(2))
	NewHost(net, 2, "h2", StackModel{}, 1, sim.NewRand(3))
	// No links at all.
	h1.Send(rawPacket(2, 10))
	eng.Run()
	if net.Stats().DroppedDead == 0 {
		t.Fatal("unroutable packet not counted as dead")
	}
}

func TestRoutingMultiHopChain(t *testing.T) {
	// h1 - s1 - s2 - s3 - h2: the chain used for replication topologies.
	eng := sim.NewEngine()
	r := sim.NewRand(5)
	net := New(eng, r.Fork())
	h1 := NewHost(net, 1, "h1", StackModel{}, 1, r.Fork())
	h2 := NewHost(net, 2, "h2", StackModel{}, 1, r.Fork())
	var sws []*Switch
	for i := 0; i < 3; i++ {
		sws = append(sws, NewSwitch(net, NodeID(10+i), "s", DefaultSwitchLatency))
	}
	net.Connect(1, 10, DefaultLink())
	net.Connect(10, 11, DefaultLink())
	net.Connect(11, 12, DefaultLink())
	net.Connect(12, 2, DefaultLink())
	var got *Packet
	h2.OnReceive(func(p *Packet) { got = p })
	h1.Send(rawPacket(2, 64))
	eng.Run()
	if got == nil {
		t.Fatal("not delivered over chain")
	}
	if got.Hops != 4 {
		t.Fatalf("hops = %d, want 4", got.Hops)
	}
	for _, s := range sws {
		if s.Forwarded() != 1 {
			t.Fatalf("switch forwarded %d", s.Forwarded())
		}
	}
}

func TestPMNetPacketSize(t *testing.T) {
	msg := protocol.Fragment(protocol.TypeUpdateReq, 1, 1, make([]byte, 100), 0)[0]
	p := &Packet{To: 2, Msg: msg, PMNet: true}
	want := UDPOverhead + protocol.HeaderSize + 100
	if p.Size() != want {
		t.Fatalf("Size() = %d, want %d", p.Size(), want)
	}
	q := p.Clone()
	if q.Size() != want || q == p {
		t.Fatal("clone broken")
	}
}

func TestStackModelSampling(t *testing.T) {
	r := sim.NewRand(9)
	m := StackModel{Base: 1000, JitterMedian: 500, JitterSigma: 0.5}
	var sum sim.Time
	const n = 100000
	min := sim.Time(1 << 62)
	for i := 0; i < n; i++ {
		v := m.Sample(r)
		if v < m.Base {
			t.Fatalf("sample %v below base", v)
		}
		if v < min {
			min = v
		}
		sum += v
	}
	mean := float64(sum) / n
	want := float64(m.Mean())
	if mean < want*0.95 || mean > want*1.05 {
		t.Fatalf("sample mean %.0f, analytic %.0f", mean, want)
	}
	// No-jitter model is deterministic.
	fixed := StackModel{Base: 2000, JitterMedian: 100}
	if fixed.Sample(r) != 2100 {
		t.Fatal("jitterless model must be base+median")
	}
}

func TestCPUSerializesOnOneWorker(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 1)
	var done []sim.Time
	for i := 0; i < 3; i++ {
		cpu.Submit(10*sim.Microsecond, func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	for i, at := range done {
		want := sim.Time(i+1) * 10 * sim.Microsecond
		if at != want {
			t.Fatalf("job %d at %v, want %v", i, at, want)
		}
	}
	if cpu.Jobs() != 3 || cpu.BusyTime() != 30*sim.Microsecond {
		t.Fatal("cpu accounting wrong")
	}
}

func TestCPUParallelWorkers(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 4)
	var last sim.Time
	for i := 0; i < 4; i++ {
		cpu.Submit(10*sim.Microsecond, func() { last = eng.Now() })
	}
	eng.Run()
	if last != 10*sim.Microsecond {
		t.Fatalf("4 jobs on 4 workers finished at %v, want 10µs", last)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, sim.NewRand(1))
	NewHost(net, 1, "a", StackModel{}, 1, sim.NewRand(2))
	defer func() {
		if recover() == nil {
			t.Error("duplicate node id did not panic")
		}
	}()
	NewHost(net, 1, "b", StackModel{}, 1, sim.NewRand(3))
}

func TestConnectUnknownNodePanics(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, sim.NewRand(1))
	NewHost(net, 1, "a", StackModel{}, 1, sim.NewRand(2))
	defer func() {
		if recover() == nil {
			t.Error("connect to unknown node did not panic")
		}
	}()
	net.Connect(1, 99, DefaultLink())
}

func TestNetworkNames(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, sim.NewRand(1))
	NewHost(net, 7, "client-0", StackModel{}, 1, sim.NewRand(2))
	if net.Name(7) != "client-0" {
		t.Fatal("name lookup failed")
	}
	if net.Name(99) == "" {
		t.Fatal("unknown node must format a fallback name")
	}
}

func TestCrossTrafficRateAndTag(t *testing.T) {
	eng := sim.NewEngine()
	r := sim.NewRand(21)
	net := New(eng, r.Fork())
	a := NewHost(net, 1, "a", StackModel{}, 1, r.Fork())
	_ = a
	b := NewHost(net, 2, "b", StackModel{}, 1, r.Fork())
	net.Connect(1, 2, LinkConfig{PropDelay: 0, Bandwidth: 100e9})
	var got uint64
	b.OnReceive(func(p *Packet) {
		if p.Tenant != 7 {
			t.Error("tenant tag lost")
		}
		got++
	})
	// 4 Gbps of 1446B frames over 10 ms ≈ 3458 packets.
	ct := NewCrossTraffic(net, r.Fork(), 1, 2, 1400, 4e9, 7)
	ct.Start()
	eng.RunUntil(10 * sim.Millisecond)
	ct.Stop()
	eng.Run()
	if got < 3000 || got > 3900 {
		t.Fatalf("received %d background packets, want ≈3458", got)
	}
	if ct.Sent() < got {
		t.Fatal("sent counter below received")
	}
}

func TestCrossTrafficStops(t *testing.T) {
	eng := sim.NewEngine()
	r := sim.NewRand(22)
	net := New(eng, r.Fork())
	NewHost(net, 1, "a", StackModel{}, 1, r.Fork())
	NewHost(net, 2, "b", StackModel{}, 1, r.Fork())
	net.Connect(1, 2, DefaultLink())
	ct := NewCrossTraffic(net, r.Fork(), 1, 2, 1400, 1e9, 0)
	ct.Start()
	ct.Start() // idempotent
	eng.RunUntil(sim.Millisecond)
	ct.Stop()
	eng.Run() // must drain: a stopped generator schedules no more events
	if eng.Pending() != 0 {
		t.Fatalf("%d events leaked after Stop", eng.Pending())
	}
}

// Cross traffic sharing the workload's bottleneck link inflates its tail —
// the §I premise behind PMNet's tail-latency claims.
func TestCrossTrafficInflatesTail(t *testing.T) {
	measure := func(background bool) sim.Time {
		eng := sim.NewEngine()
		r := sim.NewRand(23)
		net := New(eng, r.Fork())
		client := NewHost(net, 1, "client", StackModel{}, 1, r.Fork())
		server := NewHost(net, 2, "server", StackModel{}, 1, r.Fork())
		NewHost(net, 3, "noise", StackModel{}, 1, r.Fork())
		sw := NewSwitch(net, 4, "sw", DefaultSwitchLatency)
		_ = sw
		link := LinkConfig{PropDelay: 600, Bandwidth: 10e9, QueueBytes: 512 << 10}
		net.Connect(1, 4, link)
		net.Connect(3, 4, link)
		net.Connect(4, 2, link) // shared bottleneck into the server
		var worst sim.Time
		server.OnReceive(func(p *Packet) {
			if p.Tenant == 0 && p.Raw != nil {
				if lat := eng.Now() - p.SentAt; lat > worst {
					worst = lat
				}
			}
		})
		if background {
			ct := NewCrossTraffic(net, r.Fork(), 3, 2, 1400, 9e9, 1)
			ct.Start()
			defer ct.Stop()
		}
		for i := 0; i < 300; i++ {
			i := i
			eng.At(sim.Time(i)*20*sim.Microsecond, func() {
				client.Send(&Packet{To: 2, Raw: make([]byte, 100)})
			})
		}
		eng.RunUntil(10 * sim.Millisecond)
		return worst
	}
	quiet := measure(false)
	noisy := measure(true)
	if noisy < quiet*2 {
		t.Fatalf("9G background traffic did not inflate the tail: quiet=%v noisy=%v", quiet, noisy)
	}
}
