package netsim

import (
	"testing"

	"pmnet/internal/sim"
)

// Regression for the drop-tail admission bug: a packet larger than
// QueueBytes must be admitted when the link is completely idle (the wire
// itself has no size limit — only the queue does), and tail-dropped only
// when it would land behind queued bytes.
func TestOversizedPacketAdmittedWhenIdle(t *testing.T) {
	link := LinkConfig{PropDelay: 0, Bandwidth: 1e9, QueueBytes: 500}
	rig := newRig(t, link)
	delivered := 0
	rig.h2.OnReceive(func(p *Packet) { delivered++ })
	// Both 900 B packets (> QueueBytes) clear the TX stack at the same time:
	// the first finds the link idle and must serialize; the second lands
	// behind it and must tail-drop.
	rig.h1.Send(rawPacket(2, 900))
	rig.h1.Send(rawPacket(2, 900))
	rig.eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d oversized packets, want 1 (idle-link admission)", delivered)
	}
	if rig.net.Stats().DroppedFull != 1 {
		t.Fatalf("DroppedFull = %d, want 1", rig.net.Stats().DroppedFull)
	}
}

func TestLinkConfigValidate(t *testing.T) {
	if err := (LinkConfig{LossRate: 0.5}).Validate(); err != nil {
		t.Fatalf("LossRate 0.5 rejected: %v", err)
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if err := (LinkConfig{LossRate: bad}).Validate(); err == nil {
			t.Errorf("LossRate %v accepted, want error", bad)
		}
	}
}

// LossRate >= 1 used to silently black-hole every packet (while still
// consuming an RNG draw each); now the link refuses to be built.
func TestConnectRejectsFullLoss(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, sim.NewRand(1))
	NewHost(net, 1, "a", StackModel{}, 1, sim.NewRand(2))
	NewHost(net, 2, "b", StackModel{}, 1, sim.NewRand(3))
	defer func() {
		if recover() == nil {
			t.Error("Connect with LossRate 1 did not panic")
		}
	}()
	net.Connect(1, 2, LinkConfig{LossRate: 1})
}

func TestImpairmentsValidate(t *testing.T) {
	good := []Impairments{
		{},
		{GoodLoss: 0.01, BadLoss: 1, GoodToBad: 0.05, BadToGood: 0.2},
		{JitterMedian: 1000, JitterSigma: 0.5},
		{ReorderProb: 0.1, ReorderWindow: 1000},
		{DupProb: 0.5},
		{RateBps: 1e9, BurstBytes: 1024},
	}
	for i, im := range good {
		if err := im.Validate(); err != nil {
			t.Errorf("good[%d] rejected: %v", i, err)
		}
	}
	bad := []Impairments{
		{GoodLoss: 1.5},
		{BadLoss: -0.1},
		{GoodToBad: 2},
		{BadToGood: -1},
		{ReorderProb: 1, ReorderWindow: 1000}, // [0,1)
		{ReorderProb: 0.1},                    // needs a window
		{ReorderWindow: -1},
		{DupProb: 1},
		{JitterMedian: -1},
		{JitterSigma: -0.5},
		{RateBps: -1},
		{BurstBytes: -1},
	}
	for i, im := range bad {
		if err := im.Validate(); err == nil {
			t.Errorf("bad[%d] = %+v accepted, want error", i, im)
		}
	}
}

// Gilbert–Elliott burst lengths: with BadLoss 1 and GoodLoss 0, loss runs
// are exactly bad-state visits, whose length is geometric with mean
// 1/BadToGood.
func TestGilbertElliottBurstLengths(t *testing.T) {
	im := newLinkImpair(Impairments{
		BadLoss: 1, GoodToBad: 0.05, BadToGood: 0.2,
	}, sim.NewRand(42))
	const n = 500000
	bursts, cur := 0, 0
	total := 0
	losses := 0
	for i := 0; i < n; i++ {
		if im.lose() {
			losses++
			cur++
			continue
		}
		if cur > 0 {
			bursts++
			total += cur
			cur = 0
		}
	}
	if bursts < 1000 {
		t.Fatalf("only %d bursts in %d packets; chain not flipping", bursts, n)
	}
	mean := float64(total) / float64(bursts)
	if mean < 4.0 || mean > 6.0 {
		t.Fatalf("mean burst length %.2f, want ≈ 1/BadToGood = 5", mean)
	}
	// Long-run loss rate = stationary P(bad) = g2b/(g2b+b2g) = 0.2.
	frac := float64(losses) / n
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("loss fraction %.3f, want ≈ 0.20", frac)
	}
}

// Reorder hold-back is bounded by the window and strictly positive on a hit.
func TestReorderWindowBounded(t *testing.T) {
	window := 50 * sim.Microsecond
	im := newLinkImpair(Impairments{
		ReorderProb: 0.5, ReorderWindow: window,
	}, sim.NewRand(7))
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		d := im.extraDelay()
		if d == 0 {
			continue
		}
		hits++
		if d > window+1 {
			t.Fatalf("hold-back %v exceeds window %v", d, window)
		}
	}
	if hits < n/3 || hits > 2*n/3 {
		t.Fatalf("%d/%d reorder hits, want ≈ half", hits, n)
	}
}

// Jitter-only impairment never produces a negative delay (the PDES lookahead
// bound requires arrivals at or after the propagation bound).
func TestJitterDelayNonNegative(t *testing.T) {
	im := newLinkImpair(Impairments{
		JitterMedian: 20 * sim.Microsecond, JitterSigma: 1.5,
	}, sim.NewRand(13))
	for i := 0; i < 100000; i++ {
		if d := im.extraDelay(); d < 0 {
			t.Fatalf("negative extra delay %v", d)
		}
	}
}

// Duplication delivers an independent deep copy: distinct packet IDs,
// multiplied across every impaired hop it traverses.
func TestDuplicationDelivers(t *testing.T) {
	link := DefaultLink()
	link.Impair = Impairments{DupProb: 0.5}
	rig := newRig(t, link)
	delivered := 0
	ids := map[uint64]bool{}
	rig.h2.OnReceive(func(p *Packet) {
		delivered++
		if ids[p.ID] {
			t.Fatalf("packet id %d delivered twice; duplicate shares identity", p.ID)
		}
		ids[p.ID] = true
		if len(p.Raw) != 100 {
			t.Fatalf("duplicate payload length %d, want 100", len(p.Raw))
		}
	})
	const n = 1000
	for i := 0; i < n; i++ {
		rig.h1.Send(rawPacket(2, 100))
	}
	rig.eng.Run()
	// Two impaired hops at 50% each: E[deliveries] = n·1.5² = 2250.
	if delivered < 2000 || delivered > 2500 {
		t.Fatalf("delivered %d, want ≈ 2250", delivered)
	}
	if rig.net.Stats().Duplicated == 0 {
		t.Fatal("Duplicated not counted")
	}
}

// Token-bucket shaping paces a burst down to the configured rate.
func TestTokenBucketRate(t *testing.T) {
	link := LinkConfig{PropDelay: 0, Bandwidth: 10e9}
	link.Impair = Impairments{RateBps: 1e8, BurstBytes: 1000} // 12.5 B/µs
	rig := newRig(t, link)
	delivered := 0
	var lastAt sim.Time
	rig.h2.OnReceive(func(p *Packet) { delivered++; lastAt = rig.eng.Now() })
	const n = 100
	for i := 0; i < n; i++ {
		rig.h1.Send(rawPacket(2, 1000))
	}
	rig.eng.Run()
	if delivered != n {
		t.Fatalf("delivered %d, want %d (shaping must delay, not drop)", delivered, n)
	}
	// ~100 kB minus the 1 kB burst credit at 12.5 B/µs ≈ 8 ms (per hop; the
	// second hop receives at the shaped rate and adds little).
	if lastAt < 6*sim.Millisecond || lastAt > 12*sim.Millisecond {
		t.Fatalf("burst drained at %v, want ≈ 8 ms under the 100 Mbps cap", lastAt)
	}
}

// Burst (Gilbert–Elliott) drops are classified separately from drop-tail and
// legacy random loss.
func TestBurstDropCounter(t *testing.T) {
	link := DefaultLink()
	link.Impair = Impairments{GoodLoss: 0.3}
	rig := newRig(t, link)
	delivered := 0
	rig.h2.OnReceive(func(p *Packet) { delivered++ })
	const n = 1000
	for i := 0; i < n; i++ {
		rig.h1.Send(rawPacket(2, 50))
	}
	rig.eng.Run()
	st := rig.net.Stats()
	if st.DroppedBurst == 0 {
		t.Fatal("DroppedBurst not counted")
	}
	if st.DroppedRand != 0 || st.DroppedFull != 0 {
		t.Fatalf("impairment loss leaked into other counters: %+v", st)
	}
	frac := float64(delivered) / n
	if frac < 0.39 || frac > 0.59 { // (1-0.3)² = 0.49 over two hops
		t.Fatalf("delivered %.2f, want ≈ 0.49", frac)
	}
}

// ecmpRig wires a two-spine leaf-spine by hand:
//
//	clients 1..8 — leaf 100 — {spine 200, spine 201} — leaf 101 — server 9.
func ecmpRig(t *testing.T) (*sim.Engine, *Network, *Host, []*Host, map[NodeID]*Switch) {
	t.Helper()
	eng := sim.NewEngine()
	r := sim.NewRand(3)
	net := New(eng, r.Fork())
	sws := map[NodeID]*Switch{}
	for _, id := range []NodeID{100, 101, 200, 201} {
		sws[id] = NewSwitch(net, id, "sw", DefaultSwitchLatency)
	}
	var clients []*Host
	for i := 1; i <= 8; i++ {
		h := NewHost(net, NodeID(i), "c", StackModel{}, 1, r.Fork())
		clients = append(clients, h)
		net.Connect(NodeID(i), 100, DefaultLink())
	}
	server := NewHost(net, 9, "server", StackModel{}, 1, r.Fork())
	net.Connect(9, 101, DefaultLink())
	for _, leaf := range []NodeID{100, 101} {
		for _, spine := range []NodeID{200, 201} {
			net.Connect(leaf, spine, DefaultLink())
		}
	}
	net.SetECMP(true)
	return eng, net, server, clients, sws
}

// Distinct flows spread across both spines; every packet still arrives.
func TestECMPSplitsFlowsAcrossSpines(t *testing.T) {
	eng, _, server, clients, sws := ecmpRig(t)
	delivered := 0
	server.OnReceive(func(p *Packet) { delivered++ })
	const per = 10
	for _, c := range clients {
		for i := 0; i < per; i++ {
			c.Send(rawPacket(9, 100))
		}
	}
	eng.Run()
	if delivered != len(clients)*per {
		t.Fatalf("delivered %d, want %d", delivered, len(clients)*per)
	}
	s0, s1 := sws[200].Forwarded(), sws[201].Forwarded()
	if s0 == 0 || s1 == 0 {
		t.Fatalf("flows not spread: spine0=%d spine1=%d", s0, s1)
	}
	if s0+s1 != uint64(len(clients)*per) {
		t.Fatalf("spines forwarded %d, want %d", s0+s1, len(clients)*per)
	}
}

// One flow always hashes to one path: a single client's packets all cross
// the same spine, preserving in-order delivery within the flow.
func TestECMPFlowConsistency(t *testing.T) {
	eng, _, server, clients, sws := ecmpRig(t)
	server.OnReceive(func(p *Packet) {})
	const per = 20
	for i := 0; i < per; i++ {
		clients[0].Send(rawPacket(9, 100))
	}
	eng.Run()
	s0, s1 := sws[200].Forwarded(), sws[201].Forwarded()
	if s0 != 0 && s1 != 0 {
		t.Fatalf("one flow crossed both spines: spine0=%d spine1=%d", s0, s1)
	}
	if s0+s1 != per {
		t.Fatalf("spines forwarded %d, want %d", s0+s1, per)
	}
}

func TestLeafSpineShape(t *testing.T) {
	link := DefaultLink()
	topo := LeafSpine(4, 2, 4, link, 6)
	if len(topo.Switches) != 6 {
		t.Fatalf("switches = %d, want 6 (4 leaves + 2 spines)", len(topo.Switches))
	}
	if len(topo.Links) != 8 {
		t.Fatalf("links = %d, want 8 (full leaf×spine mesh)", len(topo.Links))
	}
	if len(topo.ClientEdges) != 3 || topo.ServerEdge != leafBase+3 {
		t.Fatalf("edges = %v / server %d", topo.ClientEdges, topo.ServerEdge)
	}
	if !topo.ECMP {
		t.Fatal("two spines must enable ECMP")
	}
	// Oversubscription: 6 hosts × 10G over 2 spines at ratio 4 → 7.5G uplinks.
	wantBW := 6 * link.Bandwidth / (2 * 4)
	for _, l := range topo.Links {
		if l.Cfg.Bandwidth != wantBW {
			t.Fatalf("uplink bandwidth %v, want %v", l.Cfg.Bandwidth, wantBW)
		}
		if l.Cfg.PropDelay != 2*link.PropDelay {
			t.Fatalf("uplink prop %v, want 2× host link", l.Cfg.PropDelay)
		}
	}
	// Single spine: no multipath.
	if LeafSpine(2, 1, 1, link, 1).ECMP {
		t.Fatal("single spine must not claim ECMP")
	}
}

func TestFatTreeShape(t *testing.T) {
	link := DefaultLink()
	topo := FatTree(4, link)
	// k=4: 4 pods × (2 edge + 2 agg) + 4 cores = 20 switches.
	if len(topo.Switches) != 20 {
		t.Fatalf("switches = %d, want 20", len(topo.Switches))
	}
	// Per pod: 2×2 edge-agg + 2×2 agg-core = 8 links; 4 pods = 32.
	if len(topo.Links) != 32 {
		t.Fatalf("links = %d, want 32", len(topo.Links))
	}
	if len(topo.ClientEdges) != 7 || topo.ServerEdge != leafBase+7 {
		t.Fatalf("edges = %v / server %d", topo.ClientEdges, topo.ServerEdge)
	}
	if !topo.ECMP {
		t.Fatal("k=4 fat-tree must enable ECMP")
	}
	defer func() {
		if recover() == nil {
			t.Error("odd fat-tree arity did not panic")
		}
	}()
	FatTree(3, link)
}

// A fat-tree actually routes: client on pod 0 reaches a server on the last
// edge switch across the core layer.
func TestFatTreeRoutes(t *testing.T) {
	eng := sim.NewEngine()
	r := sim.NewRand(4)
	net := New(eng, r.Fork())
	topo := FatTree(4, DefaultLink())
	for _, sw := range topo.Switches {
		NewSwitch(net, sw.ID, sw.Name, DefaultSwitchLatency)
	}
	for _, l := range topo.Links {
		net.Connect(l.A, l.B, l.Cfg)
	}
	client := NewHost(net, 1, "c", StackModel{}, 1, r.Fork())
	server := NewHost(net, 2, "s", StackModel{}, 1, r.Fork())
	net.Connect(1, topo.ClientEdges[0], DefaultLink())
	net.Connect(2, topo.ServerEdge, DefaultLink())
	net.SetECMP(topo.ECMP)
	got := 0
	server.OnReceive(func(p *Packet) { got++ })
	for i := 0; i < 5; i++ {
		client.Send(rawPacket(2, 64))
	}
	_ = client
	eng.Run()
	if got != 5 {
		t.Fatalf("delivered %d of 5 across the fat-tree", got)
	}
}
