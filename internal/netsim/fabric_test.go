package netsim

// Unit tests of the fabric: cross-partition handoff ordering, packet-pool
// repatriation, lookahead computation, and the steady-state allocation pin
// for the sharded packet path.

import (
	"fmt"
	"testing"

	"pmnet/internal/raceflag"
	"pmnet/internal/sim"
	"pmnet/internal/sim/pdes"
)

// fabricRig is a two-partition ping-pong: host a in partition 0, host b in
// partition 1, each on its own engine, with b echoing every packet straight
// back — the minimal topology where every packet crosses partitions both
// ways and is freed away from home.
type fabricRig struct {
	engs   []*sim.Engine
	fab    *Fabric
	a, b   *Host
	runner *pdes.Runner
	echoes int
}

func newFabricRig() *fabricRig {
	rg := &fabricRig{engs: []*sim.Engine{sim.NewEngine(), sim.NewEngine()}}
	root := sim.NewRand(1)
	rg.fab = NewFabric(rg.engs, []int{0, 1}, root)
	rg.a = NewHost(rg.fab.Part(0), 1, "a", StackModel{}, 1, root.Fork())
	rg.b = NewHost(rg.fab.Part(1), 2, "b", StackModel{}, 1, root.Fork())
	rg.fab.Connect(1, 2, DefaultLink())
	rg.a.OnReceive(func(*Packet) {})
	rg.b.OnReceive(func(p *Packet) {
		rg.echoes++
		nb := rg.fab.Part(1)
		out := nb.AllocPacket()
		out.To = 1
		out.Raw = append(out.Raw[:0], p.Raw...)
		nb.Transmit(out, 2)
	})
	rg.fab.Freeze()
	shards := []pdes.Shard{
		{Eng: rg.engs[0], Begin: rg.fab.BeginFunc(0), Drain: rg.fab.DrainFunc(0), PendingOut: rg.fab.PendingOutFunc(0)},
		{Eng: rg.engs[1], Begin: rg.fab.BeginFunc(1), Drain: rg.fab.DrainFunc(1), PendingOut: rg.fab.PendingOutFunc(1)},
	}
	rg.runner = pdes.New(shards, rg.fab.Lookahead(), 1)
	rg.runner.SetQuiesce(rg.fab.Quiesce)
	return rg
}

// round sends one packet a→b, which echoes it b→a, and runs to quiescence.
func (rg *fabricRig) round() {
	na := rg.fab.Part(0)
	pkt := na.AllocPacket()
	pkt.To = 2
	pkt.Raw = append(pkt.Raw[:0], "ping-payload"...)
	na.Transmit(pkt, 1)
	rg.runner.Run()
}

func TestFabricPingPong(t *testing.T) {
	rg := newFabricRig()
	for i := 0; i < 5; i++ {
		rg.round()
	}
	if rg.echoes != 5 {
		t.Fatalf("b received %d packets, want 5", rg.echoes)
	}
	if s := rg.fab.Stats(); s.Delivered == 0 {
		t.Fatal("fabric stats recorded no deliveries")
	}
}

// TestFabricLookahead: the window is the minimum cross-partition link's
// propagation delay plus minimum-datagram serialization.
func TestFabricLookahead(t *testing.T) {
	rg := newFabricRig()
	link := DefaultLink()
	want := link.PropDelay + sim.Time(float64(UDPOverhead*8)/link.Bandwidth*1e9)
	if got := rg.fab.Lookahead(); got != want {
		t.Fatalf("lookahead %d, want %d", got, want)
	}
}

// TestFabricShardedAllocs pins the sharded steady state to zero allocations
// per round: cross-partition handoff buffers, return slices, and per-shard
// event pools all reach a fixed point after warmup, so a shard's epoch loop
// allocates nothing — the same discipline the single-engine path pins.
func TestFabricShardedAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	rg := newFabricRig()
	for i := 0; i < 10; i++ {
		rg.round() // warm packet pools, handoff buffers, heap arenas
	}
	if got := testing.AllocsPerRun(100, rg.round); got != 0 {
		t.Errorf("sharded round allocated %.1f objects, want 0", got)
	}
}

// TestFabricPacketRepatriation: packets freed away from home return to their
// home partition's pool at the barrier instead of piling up in the peer's.
func TestFabricPacketRepatriation(t *testing.T) {
	rg := newFabricRig()
	for i := 0; i < 50; i++ {
		rg.round()
	}
	// After quiescence every packet has been reclaimed somewhere; home pools
	// must own their packets back (both parities' ret slices empty at the
	// fixed point).
	for p := 0; p < 2; p++ {
		n := rg.fab.Part(p)
		for par := range n.ret {
			for peer, back := range n.ret[par] {
				if len(back) != 0 {
					t.Fatalf("partition %d parity %d still holds %d packets owed to partition %d",
						p, par, len(back), peer)
				}
			}
		}
	}
}

// TestFabricDuplicateNodePanics: the fabric-wide id check replaces the
// per-network one.
func TestFabricDuplicateNodePanics(t *testing.T) {
	engs := []*sim.Engine{sim.NewEngine(), sim.NewEngine()}
	root := sim.NewRand(1)
	fab := NewFabric(engs, []int{0, 1}, root)
	NewHost(fab.Part(0), 7, "x", StackModel{}, 1, root.Fork())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node id across partitions must panic")
		}
	}()
	NewHost(fab.Part(1), 7, "y", StackModel{}, 1, root.Fork())
}

// TestFabricPartitionConnectPanics: partition networks must be wired through
// the fabric, never directly.
func TestFabricPartitionConnectPanics(t *testing.T) {
	engs := []*sim.Engine{sim.NewEngine()}
	root := sim.NewRand(1)
	fab := NewFabric(engs, []int{0}, root)
	NewHost(fab.Part(0), 1, "a", StackModel{}, 1, root.Fork())
	NewHost(fab.Part(0), 2, "b", StackModel{}, 1, root.Fork())
	defer func() {
		if recover() == nil {
			t.Fatal("Network.Connect on a partition must panic")
		}
	}()
	fab.Part(0).Connect(1, 2, DefaultLink())
}

// TestFabricPacketIDsInvariant: packet ids carry the minting partition in the
// high bits, so ids are globally unique and independent of shard assignment.
func TestFabricPacketIDsInvariant(t *testing.T) {
	mint := func(assign []int) []uint64 {
		nengines := 0
		for _, a := range assign {
			if a+1 > nengines {
				nengines = a + 1
			}
		}
		engs := make([]*sim.Engine, nengines)
		for i := range engs {
			engs[i] = sim.NewEngine()
		}
		fab := NewFabric(engs, assign, sim.NewRand(1))
		var ids []uint64
		for p := 0; p < fab.Parts(); p++ {
			for k := 0; k < 3; k++ {
				ids = append(ids, fab.Part(p).NewPacketID())
			}
		}
		return ids
	}
	one := mint([]int{0, 0, 0})
	spread := mint([]int{0, 1, 2})
	if fmt.Sprint(one) != fmt.Sprint(spread) {
		t.Fatalf("packet ids depend on shard assignment:\n one engine: %v\n spread:     %v", one, spread)
	}
	seen := map[uint64]bool{}
	for _, id := range one {
		if seen[id] {
			t.Fatalf("duplicate packet id %d", id)
		}
		seen[id] = true
	}
}
