package netsim

// Generated datacenter topologies. A Topology describes a fabric of plain
// switches inserted between the client machines and the server rack's ToR:
// clients attach round-robin to the ClientEdges, the rack ToR uplinks from
// the ServerEdge, and multipath fabrics set ECMP so the testbed enables
// flow-hash forwarding (Network.SetECMP / Fabric.SetECMP). Generators are
// pure functions of their parameters: switch ids, names, link order and
// configs come out identical on every run, so the fabric composes with the
// PDES partition planner and the byte-identity goldens unchanged.

import "fmt"

// Switch id bases for generated fabrics, above every builder-assigned range
// (clients 1..N, tor 1000, devices 2000+, servers 3000+, noise 4000).
const (
	leafBase  NodeID = 5000 // leaf-spine leaves; fat-tree edge switches
	spineBase NodeID = 5200 // leaf-spine spines; fat-tree aggregation
	coreBase  NodeID = 5400 // fat-tree cores
)

// TopoSwitch is one generated switch.
type TopoSwitch struct {
	ID   NodeID
	Name string
}

// TopoLink is one generated fabric link (bidirectional, symmetric config).
type TopoLink struct {
	A, B NodeID
	Cfg  LinkConfig
}

// Topology is a generated switch fabric awaiting instantiation by a builder.
type Topology struct {
	Switches    []TopoSwitch
	Links       []TopoLink
	ClientEdges []NodeID // client hosts attach here, round-robin
	ServerEdge  NodeID   // the server rack's ToR uplinks here
	ECMP        bool     // fabric has equal-cost multipaths
}

// LeafSpine generates a two-tier leaf-spine fabric: every leaf connects to
// every spine. The last leaf is the server edge; clients spread across the
// others. Uplink bandwidth is sized from the oversubscription ratio —
// hostsPerLeaf host-facing ports of hostLink.Bandwidth shared over `spines`
// uplinks at ratio oversub (oversub 1 = full bisection; 4 = a 4:1
// oversubscribed fabric whose uplinks congest under incast).
func LeafSpine(leaves, spines int, oversub float64, hostLink LinkConfig, hostsPerLeaf int) Topology {
	if leaves < 2 {
		panic("netsim: leaf-spine needs at least 2 leaves (client edge + server edge)")
	}
	if spines < 1 {
		panic("netsim: leaf-spine needs at least 1 spine")
	}
	if oversub <= 0 {
		oversub = 1
	}
	if hostsPerLeaf < 1 {
		hostsPerLeaf = 1
	}
	up := hostLink
	up.PropDelay = 2 * hostLink.PropDelay // inter-rack run vs intra-rack DAC
	if hostLink.Bandwidth > 0 {
		up.Bandwidth = float64(hostsPerLeaf) * hostLink.Bandwidth / (float64(spines) * oversub)
	}
	var t Topology
	t.ECMP = spines > 1
	for s := 0; s < spines; s++ {
		t.Switches = append(t.Switches, TopoSwitch{
			ID: spineBase + NodeID(s), Name: fmt.Sprintf("spine-%d", s)})
	}
	for l := 0; l < leaves; l++ {
		id := leafBase + NodeID(l)
		t.Switches = append(t.Switches, TopoSwitch{ID: id, Name: fmt.Sprintf("leaf-%d", l)})
		for s := 0; s < spines; s++ {
			t.Links = append(t.Links, TopoLink{A: id, B: spineBase + NodeID(s), Cfg: up})
		}
	}
	for l := 0; l < leaves-1; l++ {
		t.ClientEdges = append(t.ClientEdges, leafBase+NodeID(l))
	}
	t.ServerEdge = leafBase + NodeID(leaves-1)
	return t
}

// FatTree generates a k-ary fat-tree: k pods of k/2 edge and k/2 aggregation
// switches, (k/2)² cores, full bisection bandwidth at hostLink.Bandwidth.
// Aggregation switch j of every pod connects to cores j·k/2 … (j+1)·k/2−1.
// The last edge switch is the server edge; clients spread across the rest.
// k must be even and ≥ 2; k ≥ 4 gives equal-cost multipaths (ECMP).
func FatTree(k int, hostLink LinkConfig) Topology {
	if k < 2 || k%2 != 0 {
		panic("netsim: fat-tree arity must be even and >= 2")
	}
	half := k / 2
	up := hostLink
	up.PropDelay = 2 * hostLink.PropDelay
	core := hostLink
	core.PropDelay = 3 * hostLink.PropDelay
	var t Topology
	t.ECMP = half > 1
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			t.Switches = append(t.Switches, TopoSwitch{
				ID: leafBase + NodeID(p*half+e), Name: fmt.Sprintf("edge-%d-%d", p, e)})
		}
		for a := 0; a < half; a++ {
			t.Switches = append(t.Switches, TopoSwitch{
				ID: spineBase + NodeID(p*half+a), Name: fmt.Sprintf("agg-%d-%d", p, a)})
		}
	}
	for c := 0; c < half*half; c++ {
		t.Switches = append(t.Switches, TopoSwitch{
			ID: coreBase + NodeID(c), Name: fmt.Sprintf("core-%d", c)})
	}
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				t.Links = append(t.Links, TopoLink{
					A: leafBase + NodeID(p*half+e), B: spineBase + NodeID(p*half+a), Cfg: up})
			}
		}
		for a := 0; a < half; a++ {
			for i := 0; i < half; i++ {
				t.Links = append(t.Links, TopoLink{
					A: spineBase + NodeID(p*half+a), B: coreBase + NodeID(a*half+i), Cfg: core})
			}
		}
	}
	edges := k * half
	for i := 0; i < edges-1; i++ {
		t.ClientEdges = append(t.ClientEdges, leafBase+NodeID(i))
	}
	t.ServerEdge = leafBase + NodeID(edges-1)
	return t
}
