package netsim

import (
	"math"

	"pmnet/internal/sim"
	"pmnet/internal/trace"
)

// StackModel samples per-packet network-stack latency for a host. The
// kernel path is modelled as a base cost plus lognormal jitter (tight body,
// long right tail — the well-documented shape of kernel I/O latency), the
// bypass path (libVMA-style, §VI-B7) as a much smaller base with light jitter.
type StackModel struct {
	Base         sim.Time // fixed per-packet cost
	JitterMedian sim.Time // median of the lognormal jitter term
	JitterSigma  float64  // sigma of the lognormal (0 disables jitter)
}

// Sample draws one stack traversal latency.
func (m StackModel) Sample(r *sim.Rand) sim.Time {
	lat := m.Base
	if m.JitterMedian > 0 && m.JitterSigma > 0 {
		lat += sim.Time(r.LogNormal(math.Log(float64(m.JitterMedian)), m.JitterSigma))
	} else {
		lat += m.JitterMedian
	}
	return lat
}

// Mean returns the analytic mean of the sampled latency (base + lognormal
// mean), used for calibration reporting.
func (m StackModel) Mean() sim.Time {
	if m.JitterMedian <= 0 {
		return m.Base
	}
	mean := float64(m.JitterMedian) * math.Exp(m.JitterSigma*m.JitterSigma/2)
	return m.Base + sim.Time(mean)
}

// Canonical stack models, calibrated against the paper's own numbers: the
// PMNet microbenchmark RTT of 21.5 µs implies ≈8.5 µs per client-stack
// traversal, and the ≈60 µs baseline RTT with a ≈70 % server-side share
// (Figure 2) implies ≈15 µs per server-stack traversal.
var (
	// ClientKernelStack: ≈8.5 µs mean per traversal.
	ClientKernelStack = StackModel{Base: 5 * sim.Microsecond, JitterMedian: 3 * sim.Microsecond, JitterSigma: 0.7}
	// ServerKernelStack: ≈15.5 µs mean with a heavy tail; the server
	// terminates many flows and suffers softirq/scheduling interference
	// (the paper's 99th-percentile update RTT reaches 350 µs).
	ServerKernelStack = StackModel{Base: 9 * sim.Microsecond, JitterMedian: 5 * sim.Microsecond, JitterSigma: 0.8}
	// BypassStack: user-space stack (libVMA), ≈1.2 µs, light tail.
	BypassStack = StackModel{Base: 900, JitterMedian: 300, JitterSigma: 0.3}
)

// CPU models a pool of worker cores with earliest-available-first dispatch;
// the server request handlers execute on it, so request processing both adds
// latency and saturates under load (the source of the paper's tail effects).
type CPU struct {
	eng     *sim.Engine
	busyAt  []sim.Time
	busySum sim.Time
	jobs    uint64
}

// NewCPU creates a pool of `workers` cores.
func NewCPU(eng *sim.Engine, workers int) *CPU {
	if workers <= 0 {
		panic("netsim: CPU needs at least one worker")
	}
	return &CPU{eng: eng, busyAt: make([]sim.Time, workers)}
}

// Submit schedules fn to run after cost of compute on the earliest-free
// worker, returning the completion time.
func (c *CPU) Submit(cost sim.Time, fn func()) sim.Time {
	best := 0
	for i, t := range c.busyAt {
		if t < c.busyAt[best] {
			best = i
		}
	}
	start := c.busyAt[best]
	if now := c.eng.Now(); start < now {
		start = now
	}
	done := start + cost
	c.busyAt[best] = done
	c.busySum += cost
	c.jobs++
	c.eng.At(done, fn)
	return done
}

// Jobs returns the number of submitted jobs.
func (c *CPU) Jobs() uint64 { return c.jobs }

// BusyTime returns the total compute time consumed.
func (c *CPU) BusyTime() sim.Time { return c.busySum }

// Reset clears queued work accounting (used when a host restarts after a
// failure; in-flight jobs are cancelled by the owner via engine events).
func (c *CPU) Reset() {
	for i := range c.busyAt {
		c.busyAt[i] = 0
	}
}

// Host is a generic endpoint machine: an application callback behind TX/RX
// network-stack latency models.
type Host struct {
	id    NodeID
	net   *Network
	eng   *sim.Engine
	rand  *sim.Rand
	stack StackModel
	cpu   *CPU
	recv  func(pkt *Packet)
	down  bool
	gen   uint64      // restart generation: packets in the old stack are dropped
	xings []*crossing // recycled stack-traversal records (per-host)
}

// crossing is one pooled stack traversal (TX or RX). Its callback is bound
// once at allocation, so Send/HandlePacket schedule no per-packet closures.
type crossing struct {
	h   *Host
	pkt *Packet
	gen uint64
	tx  bool
	fn  func()
}

func (h *Host) getCrossing(pkt *Packet, tx bool) *crossing {
	var c *crossing
	if k := len(h.xings) - 1; k >= 0 {
		c = h.xings[k]
		h.xings = h.xings[:k]
	} else {
		c = &crossing{h: h}
		c.fn = func() { c.h.crossed(c) }
	}
	c.pkt = pkt
	c.gen = h.gen
	c.tx = tx
	return c
}

// crossed fires when a packet emerges from the host stack. Packets that die
// here (host down, restart generation mismatch, no receiver) are recycled;
// received packets are recycled once the application callback returns —
// receivers must not retain the *Packet (copying Msg is fine; payload
// buffers are never pooled).
func (h *Host) crossed(c *crossing) {
	pkt, gen, tx := c.pkt, c.gen, c.tx
	c.pkt = nil
	h.xings = append(h.xings, c)
	if h.down || gen != h.gen {
		h.net.FreePacket(pkt)
		return
	}
	if tx {
		if tr := h.net.tracer; tr != nil {
			// Packet ids are normally minted on first Transmit; mint early so
			// the TX-stack instant and the wire hops share one id. Ids feed
			// nothing but the trace, so this does not perturb the simulation.
			if pkt.ID == 0 {
				pkt.ID = h.net.NewPacketID()
			}
			tr.Emit(trace.EvStackTX, uint64(h.id), pkt.ID, 0)
		}
		h.net.Transmit(pkt, h.id)
		return
	}
	if h.recv == nil {
		h.net.FreePacket(pkt)
		return
	}
	if tr := h.net.tracer; tr != nil {
		tr.Emit(trace.EvStackRX, uint64(h.id), pkt.ID, 0)
	}
	h.recv(pkt)
	h.net.FreePacket(pkt)
}

// NewHost creates a host with the given stack model and worker count,
// registers it with the network under name, and returns it. The application
// attaches its receive callback with OnReceive.
func NewHost(net *Network, id NodeID, name string, stack StackModel, workers int, rand *sim.Rand) *Host {
	h := &Host{
		id:    id,
		net:   net,
		eng:   net.Engine(),
		rand:  rand,
		stack: stack,
		cpu:   NewCPU(net.Engine(), workers),
	}
	net.AddNode(h, name)
	return h
}

// ID implements Node.
func (h *Host) ID() NodeID { return h.id }

// CPU exposes the host's worker pool.
func (h *Host) CPU() *CPU { return h.cpu }

// Rand exposes the host's RNG stream (for application-level jitter).
func (h *Host) Rand() *sim.Rand { return h.rand }

// Engine exposes the virtual clock.
func (h *Host) Engine() *sim.Engine { return h.eng }

// Network exposes the network the host is attached to.
func (h *Host) Network() *Network { return h.net }

// Stack returns the host's stack model.
func (h *Host) Stack() StackModel { return h.stack }

// SetStack replaces the stack model (e.g. switching to the bypass stack for
// the Fig. 22 experiment).
func (h *Host) SetStack(m StackModel) { h.stack = m }

// OnReceive registers the application callback invoked for packets addressed
// to this host, after RX stack latency.
func (h *Host) OnReceive(fn func(pkt *Packet)) { h.recv = fn }

// Send pushes pkt through the TX stack and onto the wire. SentAt is stamped
// with the time the application called Send.
func (h *Host) Send(pkt *Packet) {
	if h.down {
		h.net.FreePacket(pkt)
		return
	}
	pkt.From = h.id
	pkt.SentAt = h.eng.Now()
	h.eng.After(h.stack.Sample(h.rand), h.getCrossing(pkt, true).fn)
}

// HandlePacket implements Node: RX stack latency then the app callback.
func (h *Host) HandlePacket(pkt *Packet) {
	if h.down {
		h.net.FreePacket(pkt)
		return
	}
	h.eng.After(h.stack.Sample(h.rand), h.getCrossing(pkt, false).fn)
}

// Fail takes the host down: all in-flight stack traversals and future
// traffic are dropped until Restart.
func (h *Host) Fail() {
	h.down = true
	h.net.SetNodeDown(h.id, true)
}

// Restart brings the host back up with empty stacks and an idle CPU.
func (h *Host) Restart() {
	h.down = false
	h.gen++
	h.cpu.Reset()
	h.net.SetNodeDown(h.id, false)
}

// Down reports whether the host is failed.
func (h *Host) Down() bool { return h.down }
