package netsim

// Topology-aware partition planning for the sharded testbed (DESIGN.md
// §10.6). Given the abstract topology — nodes, links, and co-location
// constraints — the planner cuts the graph at its highest-latency links, so
// the conservative lookahead (the minimum cut-link latency, see
// Fabric.Freeze) is as wide as a threshold cut can make it, then packs the
// resulting components into at most MaxParts partitions balanced by an
// event-rate estimate derived from link bandwidth.
//
// The plan is a pure function of its inputs. Callers must derive those
// inputs from configuration alone — never from the shard count — because
// the partition structure is what `-shards 1..N` byte-identity rests on:
// handoff queues exist on every partition-crossing link at EVERY shard
// count, so the event interleaving cannot depend on how many engines drive
// the partitions.

import (
	"sort"

	"pmnet/internal/sim"
)

// PlanNode describes one topology node for partition planning.
type PlanNode struct {
	ID NodeID
	// Group forces co-location: nodes sharing the same non-negative group
	// always land in one partition (entities that share mutable state
	// outside the packet path, e.g. server hosts sharing one handler
	// instance, must stay on one engine). Negative = unconstrained.
	Group int
}

// PlanLink describes one bidirectional link of the abstract topology.
type PlanLink struct {
	A, B NodeID
	Cfg  LinkConfig
}

// PlanOptions bounds the plan.
type PlanOptions struct {
	// MaxParts caps the partition count; when the threshold cut yields more
	// components than this, components are packed together by LPT over the
	// event-rate estimate. ≤ 0 means no cap. Every partition costs a drain
	// scan and a heap peek per epoch, so callers keep this small.
	MaxParts int
}

// Plan maps every node to its partition.
type Plan struct {
	Part   map[NodeID]int
	NParts int
	// Lookahead is the minimum latency over links whose endpoints landed in
	// different partitions (0 when nothing is cut). Fabric.Freeze recomputes
	// the binding value from the built topology; this one is for tests and
	// planning diagnostics.
	Lookahead sim.Time
}

// linkLatency is the conservative latency bound of one link direction: the
// propagation delay plus minimum-datagram serialization — the same formula
// Fabric.Freeze uses for the lookahead, so the planner optimizes exactly the
// quantity the runner's epoch width is bound by.
func linkLatency(cfg LinkConfig) sim.Time {
	l := cfg.PropDelay
	if cfg.Bandwidth > 0 {
		l += sim.Time(float64(UDPOverhead*8) / cfg.Bandwidth * 1e9)
	}
	return l
}

// PlanPartitions computes a partition plan: merge links from the lowest
// latency tier upward — keeping cheap links (device chains, NIC
// bump-in-the-wire hops) internal to a partition — and stop just before the
// tier whose merge would fuse the whole graph, so only the most expensive
// links are cut and the lookahead is maximal among threshold cuts. The
// surviving components are packed into at most MaxParts partitions by LPT
// over an event-rate estimate (sum of incident link bandwidth), numbered
// deterministically.
func PlanPartitions(nodes []PlanNode, links []PlanLink, opt PlanOptions) Plan {
	n := len(nodes)
	if n == 0 {
		panic("netsim: plan: no nodes")
	}
	// Deterministic node order regardless of caller order.
	sorted := append([]PlanNode(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	idx := make(map[NodeID]int, n)
	for i, nd := range sorted {
		if _, dup := idx[nd.ID]; dup {
			panic("netsim: plan: duplicate node id")
		}
		idx[nd.ID] = i
	}

	uf := newUnionFind(n)
	// Co-location constraints first: group members are one super-node.
	groupRep := make(map[int]int)
	for i, nd := range sorted {
		if nd.Group < 0 {
			continue
		}
		if rep, ok := groupRep[nd.Group]; ok {
			uf.union(rep, i)
		} else {
			groupRep[nd.Group] = i
		}
	}

	// Edges sorted by (latency, endpoints) — ascending tiers.
	type edge struct {
		a, b int
		lat  sim.Time
	}
	edges := make([]edge, 0, len(links))
	for _, l := range links {
		a, aok := idx[l.A]
		b, bok := idx[l.B]
		if !aok || !bok {
			panic("netsim: plan: link references unknown node")
		}
		if a > b {
			a, b = b, a
		}
		edges = append(edges, edge{a: a, b: b, lat: linkLatency(l.Cfg)})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].lat != edges[j].lat {
			return edges[i].lat < edges[j].lat
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	// Merge tier by tier; stop before the tier that would fuse everything.
	for i := 0; i < len(edges); {
		j := i
		for j < len(edges) && edges[j].lat == edges[i].lat {
			j++
		}
		trial := uf.clone()
		for k := i; k < j; k++ {
			trial.union(edges[k].a, edges[k].b)
		}
		if trial.components() == 1 {
			break
		}
		uf = trial
		i = j
	}

	// Event-rate estimate per node: saturated-link event rate is
	// proportional to bandwidth, so sum incident Gbps (+1 per link so
	// zero-bandwidth links still count).
	weight := make([]float64, n)
	for i := range weight {
		weight[i] = 1
	}
	for _, l := range links {
		w := 1 + l.Cfg.Bandwidth/1e9
		weight[idx[l.A]] += w
		weight[idx[l.B]] += w
	}

	// Components in deterministic order: by smallest member index.
	compOf := make(map[int]int) // root -> component index
	var compWeight []float64
	var compMembers [][]int
	for i := 0; i < n; i++ {
		r := uf.find(i)
		c, ok := compOf[r]
		if !ok {
			c = len(compMembers)
			compOf[r] = c
			compMembers = append(compMembers, nil)
			compWeight = append(compWeight, 0)
		}
		compMembers[c] = append(compMembers[c], i)
		compWeight[c] += weight[i]
	}

	// Pack components into partitions. Under the cap each component is its
	// own partition; over it, LPT (heaviest first, least-loaded bin, all
	// ties broken by lowest index) keeps estimated event rates balanced.
	nparts := len(compMembers)
	partOf := make([]int, len(compMembers)) // component -> partition
	if opt.MaxParts > 0 && nparts > opt.MaxParts {
		nparts = opt.MaxParts
		order := make([]int, len(compMembers))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			return compWeight[order[i]] > compWeight[order[j]]
		})
		load := make([]float64, nparts)
		for _, c := range order {
			best := 0
			for b := 1; b < nparts; b++ {
				if load[b] < load[best] {
					best = b
				}
			}
			partOf[c] = best
			load[best] += compWeight[c]
		}
	} else {
		for c := range partOf {
			partOf[c] = c
		}
	}

	p := Plan{Part: make(map[NodeID]int, n), NParts: nparts}
	for c, members := range compMembers {
		for _, i := range members {
			p.Part[sorted[i].ID] = partOf[c]
		}
	}
	// Final lookahead from the final assignment (packing can only remove
	// cut links, never add one below the threshold).
	for _, l := range links {
		if p.Part[l.A] == p.Part[l.B] {
			continue
		}
		lat := linkLatency(l.Cfg)
		if p.Lookahead == 0 || lat < p.Lookahead {
			p.Lookahead = lat
		}
	}
	return p
}

// unionFind is a plain union-find with path compression (no ranks — the
// planner runs once per testbed over tens of nodes).
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(i int) int {
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]]
		i = u.parent[i]
	}
	return i
}

// union merges the two sets, keeping the smaller root — so component
// identity (and with it partition numbering) is independent of merge order.
func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

func (u *unionFind) clone() *unionFind {
	return &unionFind{parent: append([]int(nil), u.parent...)}
}

func (u *unionFind) components() int {
	c := 0
	for i := range u.parent {
		if u.find(i) == i {
			c++
		}
	}
	return c
}
