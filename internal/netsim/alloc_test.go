package netsim

// Allocation pin + micro-benchmark for the packet path. A packet's full
// journey — Transmit, link serialization, arrival, RX stack crossing, app
// callback, recycle — runs on pooled packets and pooled event payloads, so
// steady state must be allocation-free.

import (
	"testing"

	"pmnet/internal/raceflag"
	"pmnet/internal/sim"
	"pmnet/internal/trace"
)

// transmitRig is a two-host wire with a no-op receiver, the minimal topology
// that exercises every pooled record type on the packet path.
type transmitRig struct {
	eng *sim.Engine
	net *Network
	a   *Host
	b   *Host
}

func newTransmitRig() *transmitRig {
	eng := sim.NewEngine()
	r := sim.NewRand(1)
	n := New(eng, r)
	a := NewHost(n, 1, "a", StackModel{}, 1, r)
	b := NewHost(n, 2, "b", StackModel{}, 1, r)
	n.Connect(a.ID(), b.ID(), DefaultLink())
	b.OnReceive(func(*Packet) {})
	return &transmitRig{eng: eng, net: n, a: a, b: b}
}

// round pushes one raw packet a→b and drains the virtual clock.
func (rg *transmitRig) round() {
	pkt := rg.net.AllocPacket()
	pkt.To = rg.b.ID()
	pkt.Raw = append(pkt.Raw[:0], "ping-payload"...)
	rg.net.Transmit(pkt, rg.a.ID())
	rg.eng.Run()
}

// TestTransmitAllocs pins Network.Transmit plus delivery to zero steady-state
// allocations once the packet, txEnd, arrival, crossing, and engine-node
// pools have warmed up.
func TestTransmitAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	rg := newTransmitRig()
	rg.round() // warm the pools and the route tables
	if got := testing.AllocsPerRun(100, rg.round); got != 0 {
		t.Errorf("Transmit+deliver allocated %.1f objects per packet, want 0", got)
	}
}

// TestTransmitTracedAllocs pins the traced packet path: with a bound tracer
// the journey emits stack/link records into the preallocated ring and must
// stay allocation-free, same as the untraced path.
func TestTransmitTracedAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	rg := newTransmitRig()
	tr := trace.NewTracer(1 << 16)
	tr.Bind(rg.eng)
	rg.net.SetTracer(tr)
	rg.round() // warm pools; ring is preallocated by Bind
	if got := testing.AllocsPerRun(100, rg.round); got != 0 {
		t.Errorf("traced Transmit+deliver allocated %.1f objects per packet, want 0", got)
	}
	if tr.Len() == 0 {
		t.Fatal("tracer recorded nothing on the traced path")
	}
}

// TestDropPathAllocs pins the drop paths — the packets a crashed server
// blackholes (dead destination) plus random loss — to zero steady-state
// allocations, traced and untraced. These paths run hottest exactly when
// the simulation is least healthy, so they must not start allocating.
func TestDropPathAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	for _, traced := range []bool{false, true} {
		name := "untraced"
		if traced {
			name = "traced"
		}
		t.Run(name, func(t *testing.T) {
			rg := newTransmitRig()
			if traced {
				tr := trace.NewTracer(1 << 16)
				tr.Bind(rg.eng)
				rg.net.SetTracer(tr)
			}
			rg.round()                  // warm pools over the live path
			rg.net.SetNodeDown(2, true) // crash the receiver
			rg.round()                  // warm the drop path
			if got := testing.AllocsPerRun(100, rg.round); got != 0 {
				t.Errorf("dead-destination drop allocated %.1f objects per packet, want 0", got)
			}
			if s := rg.net.Stats(); s.DroppedDead == 0 {
				t.Fatal("drop path never taken")
			}
		})
	}
}

// BenchmarkTransmit measures one full packet journey per iteration.
func BenchmarkTransmit(b *testing.B) {
	rg := newTransmitRig()
	rg.round()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rg.round()
	}
}
