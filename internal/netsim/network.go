package netsim

import (
	"fmt"
	"sort"

	"pmnet/internal/sim"
	"pmnet/internal/trace"
)

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	PropDelay  sim.Time // propagation latency (wire + PHY)
	Bandwidth  float64  // bits per second; 0 means infinite (no serialization)
	QueueBytes int      // egress queue capacity; 0 means unbounded
	LossRate   float64  // random drop probability in [0,1)

	// Impair layers the deterministic netem-style impairment models
	// (Gilbert–Elliott burst loss, jitter, reordering, duplication, rate
	// throttling — see impair.go) onto this direction. The zero value is
	// free: no per-link RNG is forked and Transmit takes its historical path.
	Impair Impairments
}

// Validate rejects out-of-range link parameters. Connect panics on a config
// that fails it, so a silently black-holed link (LossRate ≥ 1 consumed a
// draw per packet and dropped everything) is a loud build-time error now.
func (cfg LinkConfig) Validate() error {
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return fmt.Errorf("netsim: LossRate %v outside [0,1)", cfg.LossRate)
	}
	return cfg.Impair.Validate()
}

// DefaultLink returns the testbed's 10 GbE link model: ~0.6 µs propagation
// (intra-rack DAC cable + PHY/MAC) and a 512 KB egress buffer (a typical
// shallow ToR per-port share).
func DefaultLink() LinkConfig {
	return LinkConfig{
		PropDelay:  600 * sim.Nanosecond,
		Bandwidth:  10e9,
		QueueBytes: 512 << 10,
	}
}

type link struct {
	cfg      LinkConfig
	from, to NodeID   // endpoints, for the queue-depth gauge
	busyAt   sim.Time // when the transmitter frees up
	queued   int      // bytes awaiting/under serialization
	dropped  uint64   // drop-tail losses only (LinkDrops)
	sent     uint64
	imp      *linkImpair // nil unless cfg.Impair is set
}

// Stats aggregates network-wide counters.
type Stats struct {
	Delivered    uint64
	DroppedFull  uint64 // drop-tail queue overflow
	DroppedRand  uint64 // random loss
	DroppedDead  uint64 // destination or next hop unreachable/failed
	DroppedBurst uint64 // impairment-model (Gilbert–Elliott) loss
	Duplicated   uint64 // impairment-model duplications
}

// Network owns the topology, routing and packet delivery.
// It is single-threaded on the virtual clock.
//
// Packet ownership: packets minted with AllocPacket are owned by whoever
// holds them and recycled with FreePacket when their journey ends — the
// network frees on every drop path, hosts free after the receive callback
// returns (so applications must not retain a *Packet past the callback;
// copying Msg is fine — payload buffers are never pooled), and devices free
// packets they sink. Packets built with &Packet{} bypass the pool entirely.
type Network struct {
	eng    *sim.Engine
	rand   *sim.Rand
	nodes  map[NodeID]Node
	names  map[NodeID]string
	links  map[[2]NodeID]*link
	routes map[NodeID]map[NodeID]NodeID   // routes[at][dst] = next hop
	ecmp   bool                           // flow-hash over equal-cost paths
	multi  map[NodeID]map[NodeID][]NodeID // ECMP: all equal-cost next hops
	down   map[NodeID]bool                // failed nodes drop all traffic
	idSeq  uint64                         // packet-id counter (partition-tagged inside a fabric)
	stats  Stats
	tracer *trace.Tracer // nil = tracing off (the common, zero-cost case)

	// Fabric membership (nil/zero outside sharded testbeds — these fields
	// are untouched on the classic single-engine path). pidx is this
	// partition's index; par is the current epoch's write parity (set by
	// the fabric's Begin hook; starts at 1 so setup-time pushes land where
	// the first epoch reads); xout routes directed links whose far endpoint
	// lives in another partition to the cross-partition handoff queue;
	// ret[par][p] collects packets freed here during the current epoch
	// whose home pool is partition p, reclaimed by p at the next epoch.
	fab   *Fabric
	pidx  int32
	par   uint32
	xout  map[[2]NodeID]*xqueue
	ret   [2][][]*Packet
	xlive []*xqueue // drainInbound scratch (non-empty inbound queues)

	// Per-network free lists (single-threaded on the virtual clock, so no
	// sync.Pool — see DESIGN.md "Hot path & pooling"). txs/arrs/dtxs hold
	// event-payload records whose callbacks are bound once at allocation, so
	// a steady-state Transmit schedules no new closures.
	pkts []*Packet
	txs  []*txEnd
	arrs []*arrival
	dtxs []*delayedTx
}

// txEnd is a pooled "serialization finished" event payload.
type txEnd struct {
	n    *Network
	l    *link
	size int
	fn   func()
}

// arrival is a pooled "packet reaches next hop" event payload.
type arrival struct {
	n   *Network
	pkt *Packet
	hop NodeID
	fn  func()
}

// delayedTx is a pooled payload for TransmitAfter.
type delayedTx struct {
	n    *Network
	pkt  *Packet
	from NodeID
	fn   func()
}

// New creates an empty network on eng. rand drives random loss; pass any
// seeded generator.
func New(eng *sim.Engine, rand *sim.Rand) *Network {
	return &Network{
		eng:    eng,
		rand:   rand,
		nodes:  make(map[NodeID]Node),
		names:  make(map[NodeID]string),
		links:  make(map[[2]NodeID]*link),
		routes: make(map[NodeID]map[NodeID]NodeID),
		down:   make(map[NodeID]bool),
	}
}

// Engine returns the virtual clock driving this network.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Stats returns a copy of the delivery counters.
func (n *Network) Stats() Stats { return n.stats }

// SetTracer attaches the observability tracer. Call before traffic starts;
// nil (the default) disables tracing with no per-packet cost beyond a
// predictable branch.
func (n *Network) SetTracer(t *trace.Tracer) { n.tracer = t }

// Tracer returns the attached tracer (nil when tracing is off). Layers built
// on the network (hosts, devices, clients, servers) pick their tracer up
// from here so one testbed wire-up covers every layer.
func (n *Network) Tracer() *trace.Tracer { return n.tracer }

// AddNode attaches a node under the given name. Adding two nodes with the
// same ID is a topology bug and panics.
func (n *Network) AddNode(node Node, name string) {
	id := node.ID()
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node id %d (%s)", id, name))
	}
	if n.fab != nil {
		n.fab.addOwner(id, n.pidx, name)
	}
	n.nodes[id] = node
	n.names[id] = name
}

// Name returns the registered name of a node.
func (n *Network) Name(id NodeID) string {
	if s, ok := n.names[id]; ok {
		return s
	}
	return fmt.Sprintf("node-%d", id)
}

// Connect creates a bidirectional link between a and b with the same config
// in both directions. Both nodes must already be added.
func (n *Network) Connect(a, b NodeID, cfg LinkConfig) {
	n.ConnectAsym(a, b, cfg, cfg)
}

// ConnectAsym creates a bidirectional link with direction-specific configs:
// ab governs a→b, ba governs b→a. Asymmetric impairment (loss on the
// ACK-carrying direction only) and asymmetric capacity both need it.
func (n *Network) ConnectAsym(a, b NodeID, ab, ba LinkConfig) {
	if n.fab != nil {
		panic("netsim: partition networks are wired through Fabric.Connect")
	}
	if _, ok := n.nodes[a]; !ok {
		panic(fmt.Sprintf("netsim: connect: unknown node %d", a))
	}
	if _, ok := n.nodes[b]; !ok {
		panic(fmt.Sprintf("netsim: connect: unknown node %d", b))
	}
	n.links[[2]NodeID{a, b}] = n.newLink(a, b, ab)
	n.links[[2]NodeID{b, a}] = n.newLink(b, a, ba)
	n.routes = nil // invalidate; recomputed lazily
	n.multi = nil
}

// newLink builds one directed link, validating its config and forking the
// impairment RNG (from this network's stream — the SOURCE partition's inside
// a fabric) only when impairments are configured, so clean links leave the
// historical draw sequence untouched.
func (n *Network) newLink(from, to NodeID, cfg LinkConfig) *link {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("netsim: connect %d->%d: %v", from, to, err))
	}
	l := &link{cfg: cfg, from: from, to: to}
	if cfg.Impair.Enabled() {
		l.imp = newLinkImpair(cfg.Impair, n.rand.Fork())
	}
	return l
}

// SetECMP enables flow-hashed equal-cost multipath forwarding: where the
// route table finds several shortest paths, each flow (From, To, ports) is
// pinned by hash to one of them — in-order within a flow, spread across the
// fabric between flows, with naturally asymmetric request/ACK routes (the
// reverse flow hashes independently). Call before traffic flows; single-path
// topologies are unaffected. Partitioned networks get this from
// Fabric.SetECMP instead.
func (n *Network) SetECMP(on bool) {
	if n.fab != nil {
		panic("netsim: partition networks get ECMP from Fabric.SetECMP")
	}
	n.ecmp = on
	n.routes = nil
	n.multi = nil
}

// computeRoutes runs BFS from every node to build next-hop tables.
// Datacenter fabrics use flow-consistent (ECMP) load balancing; with our
// tree/chain topologies there is a single shortest path, so plain BFS
// reproduces in-order delivery within a flow (§IV-A4 footnote).
func (n *Network) computeRoutes() {
	if n.fab != nil {
		// Partition networks share the fabric-wide table installed by
		// Freeze; computing one from the partition's own links would route
		// within a fragment of the topology.
		panic("netsim: fabric not frozen before traffic")
	}
	linkKeys := make([][2]NodeID, 0, len(n.links))
	for key := range n.links {
		linkKeys = append(linkKeys, key)
	}
	srcs := make([]NodeID, 0, len(n.nodes))
	for src := range n.nodes {
		srcs = append(srcs, src)
	}
	n.routes = buildRouteTable(linkKeys, srcs)
	if n.ecmp {
		n.multi = buildMultiRouteTable(linkKeys, srcs)
	}
}

// buildRouteTable is the shared BFS next-hop builder, used both by a classic
// Network (over its own links and nodes) and by a Fabric (over the global
// topology spanning every partition). Both inputs may arrive in map order:
// they are sorted here, because neighbour order steers BFS parent choice
// between equal-cost paths — adjacency lists built in map iteration order
// could pick different next hops (and thus different delivery times) from
// run to run on multipath topologies.
func buildRouteTable(linkKeys [][2]NodeID, srcs []NodeID) map[NodeID]map[NodeID]NodeID {
	routes := make(map[NodeID]map[NodeID]NodeID, len(srcs))
	sort.Slice(linkKeys, func(i, j int) bool {
		if linkKeys[i][0] != linkKeys[j][0] {
			return linkKeys[i][0] < linkKeys[j][0]
		}
		return linkKeys[i][1] < linkKeys[j][1]
	})
	adj := make(map[NodeID][]NodeID)
	for _, key := range linkKeys {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, src := range srcs {
		// BFS from src, recording each node's parent; next hop from any
		// node toward src is its parent on the BFS tree rooted at src.
		parent := map[NodeID]NodeID{src: src}
		order := []NodeID{src}
		queue := []NodeID{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if _, seen := parent[nb]; !seen {
					parent[nb] = cur
					order = append(order, nb)
					queue = append(queue, nb)
				}
			}
		}
		// Walk the BFS discovery order, not the parent map.
		for _, node := range order {
			if node == src {
				continue
			}
			if routes[node] == nil {
				routes[node] = make(map[NodeID]NodeID)
			}
			routes[node][src] = parent[node]
		}
	}
	return routes
}

// buildMultiRouteTable is the ECMP companion of buildRouteTable: for every
// (node, dst) pair it records ALL neighbours one BFS level closer to dst, in
// ascending neighbour order. The single-path table's next hop is always a
// member, so enabling ECMP on a single-path topology changes nothing.
func buildMultiRouteTable(linkKeys [][2]NodeID, srcs []NodeID) map[NodeID]map[NodeID][]NodeID {
	sort.Slice(linkKeys, func(i, j int) bool {
		if linkKeys[i][0] != linkKeys[j][0] {
			return linkKeys[i][0] < linkKeys[j][0]
		}
		return linkKeys[i][1] < linkKeys[j][1]
	})
	adj := make(map[NodeID][]NodeID)
	for _, key := range linkKeys {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	multi := make(map[NodeID]map[NodeID][]NodeID, len(srcs))
	for _, src := range srcs {
		// BFS from src records hop distances; any neighbour one level closer
		// is an equal-cost next hop toward src.
		dist := map[NodeID]int{src: 0}
		order := []NodeID{src}
		queue := []NodeID{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if _, seen := dist[nb]; !seen {
					dist[nb] = dist[cur] + 1
					order = append(order, nb)
					queue = append(queue, nb)
				}
			}
		}
		for _, node := range order {
			if node == src {
				continue
			}
			var hops []NodeID
			for _, nb := range adj[node] {
				if d, ok := dist[nb]; ok && d == dist[node]-1 {
					hops = append(hops, nb)
				}
			}
			if multi[node] == nil {
				multi[node] = make(map[NodeID][]NodeID)
			}
			multi[node][src] = hops
		}
	}
	return multi
}

// NextHop returns the neighbour to which `at` should forward traffic headed
// for dst, and whether a route exists.
func (n *Network) NextHop(at, dst NodeID) (NodeID, bool) {
	if n.routes == nil {
		n.computeRoutes()
	}
	hop, ok := n.routes[at][dst]
	return hop, ok
}

// nextHopFor picks the egress neighbour for pkt at `from`: the single-path
// table normally, a flow-hashed choice among the equal-cost next hops under
// ECMP. The hash covers (switch, From, To, ports), so one flow always takes
// one path through a given switch — in-order delivery within a flow is
// preserved (§IV-A4) while distinct flows spread across the fabric.
func (n *Network) nextHopFor(from NodeID, pkt *Packet) (NodeID, bool) {
	if n.routes == nil {
		n.computeRoutes()
	}
	if n.multi != nil {
		if hops := n.multi[from][pkt.To]; len(hops) > 1 {
			return hops[ecmpFlowHash(from, pkt)%uint64(len(hops))], true
		}
	}
	hop, ok := n.routes[from][pkt.To]
	return hop, ok
}

// ecmpFlowHash mixes the flow identity with the hashing switch's id through
// a splitmix64 finalizer — per-switch-independent choices, deterministic
// across runs and shard counts (no RNG involved).
func ecmpFlowHash(at NodeID, pkt *Packet) uint64 {
	h := uint64(uint32(at))<<40 ^ uint64(uint32(pkt.From))<<24 ^
		uint64(uint32(pkt.To))<<8 ^ uint64(pkt.SrcPort)<<16 ^ uint64(pkt.DstPort)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// SetNodeDown marks a node failed (true) or restored (false). Failed nodes
// silently drop every packet addressed to or traversing them.
func (n *Network) SetNodeDown(id NodeID, down bool) {
	n.down[id] = down
}

// NodeDown reports whether the node is currently failed.
func (n *Network) NodeDown(id NodeID) bool { return n.down[id] }

// NewPacketID mints a unique packet identity. Inside a fabric the id carries
// the partition index in its high bits over a per-partition counter: ids stay
// globally unique without a shared counter, and — because the minting
// partition and its local mint order are pure functions of the topology — the
// id of any given packet is identical in every shard configuration (packet
// ids feed the trace, whose bytes are compared across -shards values).
func (n *Network) NewPacketID() uint64 {
	n.idSeq++
	if n.fab != nil {
		return uint64(n.pidx+1)<<partIDShift | n.idSeq
	}
	return n.idSeq
}

// partIDShift positions the partition tag above any realistic per-partition
// packet count (2^48 packets).
const partIDShift = 48

// AllocPacket returns a zeroed pool-owned packet (its Raw buffer keeps its
// capacity across recycles). Release it with FreePacket when its journey
// ends; the network's drop paths and host delivery do so automatically.
func (n *Network) AllocPacket() *Packet {
	if k := len(n.pkts) - 1; k >= 0 {
		p := n.pkts[k]
		n.pkts = n.pkts[:k]
		p.pool = pkLive
		return p
	}
	return &Packet{pool: pkLive, home: n.pidx}
}

// FreePacket recycles a pool-owned packet. Unpooled packets (built with
// &Packet{}) are ignored; freeing the same packet twice panics. A packet
// whose journey ends in a foreign partition is queued for return to its home
// pool at the next epoch barrier rather than adopted locally, keeping every
// pool balanced (and therefore zero-alloc) under asymmetric cross-partition
// traffic.
func (n *Network) FreePacket(p *Packet) {
	switch p.pool {
	case pkUnpooled:
		return
	case pkFree:
		panic("netsim: packet double free")
	}
	raw := p.Raw[:0]
	home := p.home
	*p = Packet{Raw: raw, pool: pkFree, home: home}
	if n.fab != nil && home != n.pidx {
		n.ret[n.par][home] = append(n.ret[n.par][home], p)
		return
	}
	n.pkts = append(n.pkts, p)
}

func (n *Network) getTxEnd(l *link, size int) *txEnd {
	var t *txEnd
	if k := len(n.txs) - 1; k >= 0 {
		t = n.txs[k]
		n.txs = n.txs[:k]
	} else {
		t = &txEnd{n: n}
		t.fn = func() { t.n.finishTx(t) }
	}
	t.l = l
	t.size = size
	return t
}

func (n *Network) finishTx(t *txEnd) {
	t.l.queued -= t.size
	if n.tracer != nil {
		n.tracer.Emit(trace.GaugeLinkQueue, trace.LinkID(uint64(t.l.from), uint64(t.l.to)), uint64(t.l.queued), 0)
	}
	t.l = nil
	n.txs = append(n.txs, t)
}

func (n *Network) getArrival(pkt *Packet, hop NodeID) *arrival {
	var a *arrival
	if k := len(n.arrs) - 1; k >= 0 {
		a = n.arrs[k]
		n.arrs = n.arrs[:k]
	} else {
		a = &arrival{n: n}
		a.fn = func() { a.n.arrive(a) }
	}
	a.pkt = pkt
	a.hop = hop
	return a
}

func (n *Network) arrive(a *arrival) {
	pkt, hop := a.pkt, a.hop
	a.pkt = nil
	n.arrs = append(n.arrs, a)
	pkt.Hops++
	n.deliver(pkt, hop)
}

// TransmitAfter transmits pkt from `from` once delay has elapsed, without
// allocating a closure — the pooled-payload form of
// eng.After(delay, func() { net.Transmit(pkt, from) }).
func (n *Network) TransmitAfter(delay sim.Time, pkt *Packet, from NodeID) {
	var t *delayedTx
	if k := len(n.dtxs) - 1; k >= 0 {
		t = n.dtxs[k]
		n.dtxs = n.dtxs[:k]
	} else {
		t = &delayedTx{n: n}
		t.fn = func() { t.n.fireDelayedTx(t) }
	}
	t.pkt = pkt
	t.from = from
	n.eng.After(delay, t.fn)
}

func (n *Network) fireDelayedTx(t *delayedTx) {
	pkt, from := t.pkt, t.from
	t.pkt = nil
	n.dtxs = append(n.dtxs, t)
	n.Transmit(pkt, from)
}

// Transmit moves pkt one hop from `from` toward pkt.To, modelling the
// egress link. Delivery invokes the next node's HandlePacket on the virtual
// clock. Lost packets vanish (UDP semantics); recovery is the protocol
// library's job.
func (n *Network) Transmit(pkt *Packet, from NodeID) {
	if pkt.ID == 0 {
		pkt.ID = n.NewPacketID()
	}
	if n.down[from] {
		n.stats.DroppedDead++
		n.dropPacket(pkt, from, trace.DropDead)
		return
	}
	if from == pkt.To {
		// Local delivery (loopback), e.g. a host talking to itself.
		n.deliver(pkt, from)
		return
	}
	hop, ok := n.nextHopFor(from, pkt)
	if !ok {
		n.stats.DroppedDead++
		n.dropPacket(pkt, from, trace.DropDead)
		return
	}
	l := n.links[[2]NodeID{from, hop}]
	if l == nil {
		n.stats.DroppedDead++
		n.dropPacket(pkt, from, trace.DropDead)
		return
	}
	var dup *Packet
	if im := l.imp; im != nil {
		if im.lose() {
			n.stats.DroppedBurst++
			n.dropPacket(pkt, from, trace.DropBurst)
			return
		}
		if im.duplicate() {
			dup = n.dupPacket(pkt)
		}
	}
	n.sendOnLink(l, pkt, from, hop)
	if dup != nil {
		n.stats.Duplicated++
		n.sendOnLink(l, dup, from, hop)
	}
}

// sendOnLink runs one packet through the from→hop link: drop-tail admission,
// legacy random loss, (optionally rate-shaped) serialization, then the
// arrival hand-off. The draw order on n.rand is exactly the historical
// Transmit sequence — the impairment models draw only from the link's own
// forked stream — so pre-impairment configurations keep their golden bytes.
func (n *Network) sendOnLink(l *link, pkt *Packet, from, hop NodeID) {
	size := pkt.Size()
	// Drop-tail admission: a full queue drops the tail, but the head packet
	// is always admitted — when nothing is queued or in service the packet
	// occupies the (idle) transmitter, however large, instead of being
	// permanently undeliverable.
	if l.cfg.QueueBytes > 0 && l.queued > 0 && l.queued+size > l.cfg.QueueBytes {
		l.dropped++
		n.stats.DroppedFull++
		n.dropPacket(pkt, from, trace.DropFull)
		return
	}
	if l.cfg.LossRate > 0 && n.rand.Float64() < l.cfg.LossRate {
		n.stats.DroppedRand++
		n.dropPacket(pkt, from, trace.DropRand)
		return
	}
	var ser sim.Time
	if l.cfg.Bandwidth > 0 {
		ser = sim.Time(float64(size*8) / l.cfg.Bandwidth * 1e9)
	}
	now := n.eng.Now()
	start := l.busyAt
	if start < now {
		start = now
	}
	if im := l.imp; im != nil && im.cfg.RateBps > 0 {
		if at := im.shapeStart(now, size); at > start {
			start = at
		}
	}
	l.queued += size
	l.busyAt = start + ser
	txDone := l.busyAt
	l.sent++
	if n.tracer != nil {
		n.tracer.Emit(trace.GaugeLinkQueue, trace.LinkID(uint64(from), uint64(hop)), uint64(l.queued), 0)
	}
	n.eng.At(txDone, n.getTxEnd(l, size).fn)
	arriveAt := txDone + l.cfg.PropDelay
	if im := l.imp; im != nil {
		// Jitter/reorder hold-back is strictly additive, so arriveAt stays ≥
		// now + serialization + PropDelay — the fabric lookahead bound.
		arriveAt += im.extraDelay()
	}
	if n.xout != nil {
		if x := n.xout[[2]NodeID{from, hop}]; x != nil {
			// The next hop lives in another partition: hand the packet off
			// through the cross-partition queue (current write parity)
			// instead of scheduling the arrival locally. The receiving
			// partition injects it at the next epoch — always ≥ lookahead
			// away, because arriveAt ≥ now + serialization + PropDelay and
			// the fabric lookahead is the minimum of that sum over cross
			// links.
			x.push(n.par, arriveAt, pkt, hop)
			return
		}
	}
	n.eng.At(arriveAt, n.getArrival(pkt, hop).fn)
}

// dupPacket mints a pool-owned copy of p for link-level duplication with its
// own Raw buffer and a fresh id. Packet.Clone is wrong here: it shares Raw,
// and Raw buffers are pool-owned — the original and the duplicate end their
// journeys (and free) independently. Msg is copied by value; payload buffers
// are never pooled, so sharing those is safe.
func (n *Network) dupPacket(p *Packet) *Packet {
	q := n.AllocPacket()
	raw := append(q.Raw[:0], p.Raw...)
	pool, home := q.pool, q.home
	*q = *p
	q.Raw = raw
	q.pool, q.home = pool, home
	q.ID = n.NewPacketID()
	return q
}

// dropPacket records the drop into the trace (when tracing is on) and
// recycles the packet. The pkt.ID must be read before FreePacket zeroes it,
// which is exactly what makes this a helper rather than two inline lines.
func (n *Network) dropPacket(pkt *Packet, at NodeID, reason uint64) {
	if n.tracer != nil {
		n.tracer.Emit(trace.EvDrop, uint64(at), pkt.ID, reason)
	}
	n.FreePacket(pkt)
}

func (n *Network) deliver(pkt *Packet, at NodeID) {
	if n.down[at] {
		n.stats.DroppedDead++
		n.dropPacket(pkt, at, trace.DropDead)
		return
	}
	node, ok := n.nodes[at]
	if !ok {
		n.stats.DroppedDead++
		n.dropPacket(pkt, at, trace.DropDead)
		return
	}
	if at == pkt.To {
		n.stats.Delivered++
	}
	node.HandlePacket(pkt)
}

// LinkQueueBytes reports the bytes currently queued on the a→b link; useful
// in tests and for the Fig. 16 saturation experiment.
func (n *Network) LinkQueueBytes(a, b NodeID) int {
	if l := n.links[[2]NodeID{a, b}]; l != nil {
		return l.queued
	}
	return 0
}

// LinkDrops reports drop-tail losses on the a→b link.
func (n *Network) LinkDrops(a, b NodeID) uint64 {
	if l := n.links[[2]NodeID{a, b}]; l != nil {
		return l.dropped
	}
	return 0
}
