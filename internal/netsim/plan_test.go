package netsim

// Unit tests for the topology-aware partition planner: determinism under
// input reordering, threshold-cut lookahead maximization, co-location
// groups, and LPT packing under the partition cap.

import (
	"reflect"
	"testing"

	"pmnet/internal/sim"
)

func lat(ns int) LinkConfig { return LinkConfig{PropDelay: sim.Time(ns)} }

// star builds the canonical PMNet shape in miniature: a ToR (id 100) with
// nclients clients (1..n) on slow links, one server (200) on a slow link,
// and a device chain (300..300+ndev-1) hanging off the ToR on fast links.
func star(nclients, ndev int, slow, fast LinkConfig) ([]PlanNode, []PlanLink) {
	nodes := []PlanNode{{ID: 100, Group: -1}, {ID: 200, Group: -1}}
	links := []PlanLink{{A: 100, B: 200, Cfg: slow}}
	for i := 0; i < nclients; i++ {
		id := NodeID(1 + i)
		nodes = append(nodes, PlanNode{ID: id, Group: -1})
		links = append(links, PlanLink{A: id, B: 100, Cfg: slow})
	}
	prev := NodeID(100)
	for i := 0; i < ndev; i++ {
		id := NodeID(300 + i)
		nodes = append(nodes, PlanNode{ID: id, Group: -1})
		links = append(links, PlanLink{A: prev, B: id, Cfg: fast})
		prev = id
	}
	return nodes, links
}

// TestPlanCutsAtSlowLinks: the device chain's fast links merge into the
// ToR's partition; the slow client and server links are cut, so the
// lookahead is the slow-link latency, not the fast one.
func TestPlanCutsAtSlowLinks(t *testing.T) {
	nodes, links := star(4, 3, lat(600), lat(100))
	p := PlanPartitions(nodes, links, PlanOptions{})
	if p.Lookahead != 600 {
		t.Fatalf("lookahead %d, want 600 (the slow tier)", p.Lookahead)
	}
	for _, dev := range []NodeID{300, 301, 302} {
		if p.Part[dev] != p.Part[100] {
			t.Fatalf("device %d in partition %d, ToR in %d: fast chain links must not be cut",
				dev, p.Part[dev], p.Part[100])
		}
	}
	// 4 clients + server + (ToR+devices) = 6 components.
	if p.NParts != 6 {
		t.Fatalf("NParts = %d, want 6", p.NParts)
	}
	seen := map[int]bool{}
	for _, id := range []NodeID{1, 2, 3, 4, 200} {
		part := p.Part[id]
		if part == p.Part[100] || seen[part] {
			t.Fatalf("node %d shares partition %d unexpectedly", id, part)
		}
		seen[part] = true
	}
}

// TestPlanDeterministicUnderReordering: the plan is a pure function of the
// topology — shuffling node and link declaration order changes nothing.
func TestPlanDeterministicUnderReordering(t *testing.T) {
	nodes, links := star(5, 2, lat(600), lat(150))
	p1 := PlanPartitions(nodes, links, PlanOptions{MaxParts: 3})

	rn := append([]PlanNode(nil), nodes...)
	rl := append([]PlanLink(nil), links...)
	rng := sim.NewRand(42)
	for i := len(rn) - 1; i > 0; i-- {
		j := int(rng.Uint64() % uint64(i+1))
		rn[i], rn[j] = rn[j], rn[i]
	}
	for i := len(rl) - 1; i > 0; i-- {
		j := int(rng.Uint64() % uint64(i+1))
		rl[i], rl[j] = rl[j], rl[i]
	}
	p2 := PlanPartitions(rn, rl, PlanOptions{MaxParts: 3})
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("plan depends on declaration order:\n first: %+v\n shuffled: %+v", p1, p2)
	}
}

// TestPlanGroupCohesion: nodes sharing a non-negative group land in one
// partition even when no link (or only a cut-tier link) joins them.
func TestPlanGroupCohesion(t *testing.T) {
	nodes := []PlanNode{
		{ID: 1, Group: 7}, {ID: 2, Group: 7}, {ID: 3, Group: 7},
		{ID: 100, Group: -1},
	}
	links := []PlanLink{
		{A: 1, B: 100, Cfg: lat(600)},
		{A: 2, B: 100, Cfg: lat(600)},
		{A: 3, B: 100, Cfg: lat(600)},
	}
	p := PlanPartitions(nodes, links, PlanOptions{})
	if p.Part[1] != p.Part[2] || p.Part[2] != p.Part[3] {
		t.Fatalf("grouped nodes split: %d %d %d", p.Part[1], p.Part[2], p.Part[3])
	}
	if p.Part[100] == p.Part[1] {
		t.Fatal("ungrouped ToR glued to the group without a cheap link")
	}
	if p.Lookahead != 600 {
		t.Fatalf("lookahead %d, want 600", p.Lookahead)
	}
}

// TestPlanSingleComponent: when groups (or cheap links) fuse everything, the
// plan is one partition and the lookahead is 0 (nothing cut) — the caller
// falls back to single-engine semantics.
func TestPlanSingleComponent(t *testing.T) {
	nodes := []PlanNode{{ID: 1, Group: 0}, {ID: 2, Group: 0}}
	p := PlanPartitions(nodes, []PlanLink{{A: 1, B: 2, Cfg: lat(600)}}, PlanOptions{})
	if p.NParts != 1 || p.Lookahead != 0 {
		t.Fatalf("got NParts=%d lookahead=%d, want 1 and 0", p.NParts, p.Lookahead)
	}
}

// TestPlanMaxPartsPacking: the 100 Gb/s server uplink serializes faster
// than the 1 Gb/s client links, so the cheapest tier merges server+ToR into
// one heavy component; over the cap, LPT packing gives that component a
// partition no client shares and spreads the clients across the rest.
func TestPlanMaxPartsPacking(t *testing.T) {
	heavy := LinkConfig{PropDelay: 600, Bandwidth: 100e9} // server uplink
	light := LinkConfig{PropDelay: 600, Bandwidth: 1e9}   // client links
	nodes := []PlanNode{{ID: 100, Group: -1}, {ID: 200, Group: -1}}
	links := []PlanLink{{A: 100, B: 200, Cfg: heavy}}
	for i := 0; i < 8; i++ {
		id := NodeID(1 + i)
		nodes = append(nodes, PlanNode{ID: id, Group: -1})
		links = append(links, PlanLink{A: id, B: 100, Cfg: light})
	}
	p := PlanPartitions(nodes, links, PlanOptions{MaxParts: 4})
	if p.NParts != 4 {
		t.Fatalf("NParts = %d, want 4", p.NParts)
	}
	if p.Part[200] != p.Part[100] {
		t.Fatal("fast low-latency uplink should merge server with ToR")
	}
	counts := make([]int, p.NParts)
	for _, nd := range nodes {
		part := p.Part[nd.ID]
		if part < 0 || part >= p.NParts {
			t.Fatalf("node %d assigned out-of-range partition %d", nd.ID, part)
		}
		counts[part]++
	}
	// The server+ToR component (bandwidth weight ~220) outweighs all eight
	// clients (~3 each) combined, so LPT packs no client next to it.
	hot := p.Part[200]
	if counts[hot] != 2 {
		t.Fatalf("heavy component's partition holds %d nodes, want exactly server+ToR", counts[hot])
	}
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d left empty by packing", b)
		}
	}
	// Cut links are the client links; at 1 Gb/s their serialization
	// dominates the plan lookahead.
	want := light.PropDelay + sim.Time(float64(UDPOverhead*8)/light.Bandwidth*1e9)
	if p.Lookahead != want {
		t.Fatalf("lookahead %d, want %d", p.Lookahead, want)
	}
}
