package netsim

// Deterministic link impairment models — the netem knob set (loss, jitter,
// reordering, duplication, rate throttling) as pure functions of the link's
// own forked RNG stream. Each impaired directed link owns a linkImpair with
// its own sim.Rand, forked from the owning Network's stream at link-creation
// time: the draw sequence is a function of the topology build order alone,
// never of traffic on other links, which is what keeps `-shards`/`-parallel`
// byte-identity intact (a cross-partition link's state, including its RNG,
// lives in the SOURCE partition — see fabric.go). Links with a zero
// Impairments never fork an RNG, so pre-existing configurations consume
// exactly the streams the committed goldens pin.

import (
	"fmt"

	"pmnet/internal/sim"
)

// Impairments configures the per-link impairment models. The zero value
// disables them all (and skips the per-link RNG fork entirely). All fields
// are scalars so LinkConfig stays comparable.
type Impairments struct {
	// Gilbert–Elliott two-state burst loss: the link flips between a good
	// and a bad state with the given per-packet transition probabilities and
	// drops packets at the state's loss rate. GoodToBad == BadToGood == 0
	// pins the chain in the good state (plain Bernoulli loss at GoodLoss).
	// Expected burst length is 1/BadToGood packets.
	GoodLoss  float64 // loss probability in the good state, [0,1]
	BadLoss   float64 // loss probability in the bad state, [0,1] (1 = blackout)
	GoodToBad float64 // P(good → bad) per packet, [0,1]
	BadToGood float64 // P(bad → good) per packet, [0,1]

	// Lognormal delay jitter added to every delivery, reusing the StackModel
	// machinery: median JitterMedian with shape JitterSigma (sigma 0 = a
	// constant JitterMedian shift).
	JitterMedian sim.Time
	JitterSigma  float64

	// Bounded reordering: each packet is independently held back by a
	// uniform extra delay in (0, ReorderWindow] with probability
	// ReorderProb, letting later-sent packets overtake it.
	ReorderProb   float64
	ReorderWindow sim.Time

	// DupProb duplicates a packet (a deep, independently-routed copy) with
	// this probability, in [0,1).
	DupProb float64

	// Token-bucket rate throttling: serialization start is gated so the
	// link's long-run rate cannot exceed RateBps, with BurstBytes of credit
	// (default 64 KB when RateBps > 0).
	RateBps    float64
	BurstBytes int
}

// Enabled reports whether any impairment is configured.
func (im Impairments) Enabled() bool { return im != Impairments{} }

// Validate rejects out-of-range impairment parameters.
func (im Impairments) Validate() error {
	check01 := func(name string, v float64, openTop bool) error {
		if v < 0 || v > 1 || (openTop && v == 1) {
			top := "1]"
			if openTop {
				top = "1)"
			}
			return fmt.Errorf("netsim: impairment %s = %v outside [0,%s", name, v, top)
		}
		return nil
	}
	if err := check01("GoodLoss", im.GoodLoss, false); err != nil {
		return err
	}
	if err := check01("BadLoss", im.BadLoss, false); err != nil {
		return err
	}
	if err := check01("GoodToBad", im.GoodToBad, false); err != nil {
		return err
	}
	if err := check01("BadToGood", im.BadToGood, false); err != nil {
		return err
	}
	if err := check01("ReorderProb", im.ReorderProb, true); err != nil {
		return err
	}
	if err := check01("DupProb", im.DupProb, true); err != nil {
		return err
	}
	if im.ReorderProb > 0 && im.ReorderWindow <= 0 {
		return fmt.Errorf("netsim: ReorderProb %v needs a positive ReorderWindow", im.ReorderProb)
	}
	if im.ReorderWindow < 0 {
		return fmt.Errorf("netsim: ReorderWindow %v is negative", im.ReorderWindow)
	}
	if im.JitterMedian < 0 {
		return fmt.Errorf("netsim: JitterMedian %v is negative", im.JitterMedian)
	}
	if im.JitterSigma < 0 {
		return fmt.Errorf("netsim: JitterSigma %v is negative", im.JitterSigma)
	}
	if im.RateBps < 0 {
		return fmt.Errorf("netsim: RateBps %v is negative", im.RateBps)
	}
	if im.BurstBytes < 0 {
		return fmt.Errorf("netsim: BurstBytes %v is negative", im.BurstBytes)
	}
	return nil
}

// defaultBurstBytes is the token-bucket credit used when RateBps is set
// without an explicit BurstBytes.
const defaultBurstBytes = 64 << 10

// linkImpair is the runtime state of one impaired directed link.
type linkImpair struct {
	cfg    Impairments
	rng    *sim.Rand
	jit    StackModel // jitter sampler (Base 0)
	bad    bool       // Gilbert–Elliott state
	tokens float64    // token-bucket credit in bytes (negative = deficit)
	tbAt   sim.Time   // last refill reference time
	burst  float64    // bucket capacity in bytes
}

func newLinkImpair(cfg Impairments, rng *sim.Rand) *linkImpair {
	li := &linkImpair{
		cfg: cfg,
		rng: rng,
		jit: StackModel{JitterMedian: cfg.JitterMedian, JitterSigma: cfg.JitterSigma},
	}
	li.burst = float64(cfg.BurstBytes)
	if cfg.RateBps > 0 && li.burst <= 0 {
		li.burst = defaultBurstBytes
	}
	li.tokens = li.burst
	return li
}

// lose advances the Gilbert–Elliott chain one packet and reports whether the
// packet is lost in the resulting state. Degenerate probabilities (0 or 1)
// skip their draw — the stream is per-link, so the draw count may depend on
// the chain's own trajectory without breaking determinism.
func (li *linkImpair) lose() bool {
	c := &li.cfg
	if c.GoodToBad > 0 || c.BadToGood > 0 {
		u := li.rng.Float64()
		if li.bad {
			if u < c.BadToGood {
				li.bad = false
			}
		} else if u < c.GoodToBad {
			li.bad = true
		}
	}
	p := c.GoodLoss
	if li.bad {
		p = c.BadLoss
	}
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return li.rng.Float64() < p
}

// duplicate reports whether this packet spawns a duplicate.
func (li *linkImpair) duplicate() bool {
	return li.cfg.DupProb > 0 && li.rng.Float64() < li.cfg.DupProb
}

// shapeStart returns the earliest time a size-byte packet may begin
// serialization at or after now under the token bucket. Credit refills
// continuously at RateBps up to the burst; a deficit converts to delay at
// the same rate (the bucket goes negative and is repaid by future refill).
func (li *linkImpair) shapeStart(now sim.Time, size int) sim.Time {
	rate := li.cfg.RateBps / 8e9 // bytes per virtual nanosecond
	if now > li.tbAt {
		li.tokens += float64(now-li.tbAt) * rate
		if li.tokens > li.burst {
			li.tokens = li.burst
		}
	}
	li.tbAt = now
	li.tokens -= float64(size)
	if li.tokens >= 0 {
		return now
	}
	return now + sim.Time(-li.tokens/rate) + 1
}

// extraDelay samples the per-delivery delay additions: lognormal jitter plus,
// on a reorder hit, a uniform hold-back in (0, ReorderWindow]. Strictly
// non-negative, so it can only push an arrival later than the propagation
// bound — the fabric lookahead (Freeze) stays conservative.
func (li *linkImpair) extraDelay() sim.Time {
	var d sim.Time
	if li.cfg.JitterMedian > 0 {
		d += li.jit.Sample(li.rng)
	}
	if li.cfg.ReorderProb > 0 && li.rng.Float64() < li.cfg.ReorderProb {
		d += sim.Time(li.rng.Float64()*float64(li.cfg.ReorderWindow)) + 1
	}
	return d
}
