package netsim

import (
	"pmnet/internal/sim"
	"pmnet/internal/trace"
)

// Switch is a plain (non-programmable) cut-through switch: it forwards every
// packet toward its destination after a fixed sub-microsecond pipeline
// latency, the "regular switch" the paper places between the clients and
// the FPGA (§VI-A1).
type Switch struct {
	id      NodeID
	net     *Network
	latency sim.Time
	seen    uint64
}

// NewSwitch creates a switch with the given forwarding latency and registers
// it under name.
func NewSwitch(net *Network, id NodeID, name string, latency sim.Time) *Switch {
	s := &Switch{id: id, net: net, latency: latency}
	net.AddNode(s, name)
	return s
}

// DefaultSwitchLatency is the sub-microsecond forwarding delay of a
// datacenter ToR switch.
const DefaultSwitchLatency = 500 * sim.Nanosecond

// ID implements Node.
func (s *Switch) ID() NodeID { return s.id }

// Forwarded returns the number of packets this switch has forwarded.
func (s *Switch) Forwarded() uint64 { return s.seen }

// HandlePacket implements Node by forwarding toward the destination.
func (s *Switch) HandlePacket(pkt *Packet) {
	if pkt.To == s.id {
		s.net.FreePacket(pkt)
		return // addressed to the switch itself: sink it
	}
	s.seen++
	if tr := s.net.tracer; tr != nil {
		tr.Emit(trace.EvSwitchFwd, uint64(s.id), pkt.ID, 0)
	}
	s.net.TransmitAfter(s.latency, pkt, s.id)
}
