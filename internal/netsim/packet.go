// Package netsim provides the simulated datacenter network substrate:
// nodes (hosts, switches, PMNet devices) connected by links with
// propagation delay, serialization at a configured line rate, bounded
// drop-tail queues, and optional random loss. Routing is hop-by-hop so
// in-network devices observe — and may act on — every packet that crosses
// them, which is precisely what the PMNet data plane requires.
package netsim

import (
	"fmt"

	"pmnet/internal/protocol"
	"pmnet/internal/sim"
)

// NodeID identifies a node in the network.
type NodeID int

// UDPOverhead is the per-packet wire overhead we charge for Ethernet + IP +
// UDP headers (14+20+8 plus preamble/FCS rounding).
const UDPOverhead = 46

// Packet is one datagram in flight. PMNet traffic carries a decoded
// protocol.Message; other traffic carries only Raw bytes.
type Packet struct {
	ID       uint64 // unique per network, for tracing
	From, To NodeID // source and final destination hosts
	SrcPort  uint16
	DstPort  uint16

	Msg    protocol.Message // valid when PMNet is true
	PMNet  bool             // PMNet header present (dst port in reserved range)
	Raw    []byte           // non-PMNet payload
	Tenant uint16           // background-traffic tag (0 = workload traffic)

	SentAt sim.Time // when the sending host's app handed it to the stack
	Hops   int      // number of links traversed so far

	pool poolState // free-list lifecycle; zero for packets built with &Packet{}
	// home is the fabric partition whose pool owns this packet. A packet
	// handed off across partitions is freed on the receiving side, which
	// routes it back to its home pool at the next epoch barrier — otherwise
	// asymmetric traffic (one request in, R acks out) would drain one
	// partition's pool and grow another's without bound. Always 0 outside a
	// fabric.
	home int32
}

// poolState tracks a packet's position in the network free-list lifecycle.
// Packets constructed directly with &Packet{} (tests, external drivers) stay
// pkUnpooled and are ignored by FreePacket; pooled packets cycle between
// pkLive and pkFree, and freeing one twice panics — a double free means two
// owners, which would corrupt a reused packet silently.
type poolState uint8

const (
	pkUnpooled poolState = iota
	pkLive
	pkFree
)

// Size returns the bytes the packet occupies on the wire.
func (p *Packet) Size() int {
	if p.PMNet {
		return UDPOverhead + p.Msg.WireSize()
	}
	return UDPOverhead + len(p.Raw)
}

func (p *Packet) String() string {
	if p.PMNet {
		return fmt.Sprintf("pkt#%d %d->%d [%v]", p.ID, p.From, p.To, p.Msg.Hdr)
	}
	return fmt.Sprintf("pkt#%d %d->%d raw(%dB)", p.ID, p.From, p.To, len(p.Raw))
}

// Clone returns a shallow copy with a fresh identity, used when a device
// mirrors or regenerates a packet (e.g. a PMNet retransmission). The copy is
// never pool-owned, regardless of the original.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Hops = 0
	q.pool = pkUnpooled
	return &q
}

// Node is anything attached to the network. HandlePacket is invoked when a
// packet arrives at the node — whether the node is the final destination or
// an intermediate device that must decide to forward it.
type Node interface {
	ID() NodeID
	HandlePacket(pkt *Packet)
}
