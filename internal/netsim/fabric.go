package netsim

// This file partitions a Network for conservative parallel simulation
// (internal/sim/pdes). A Fabric owns a set of partition Networks — each on
// its own (possibly shared) sim.Engine — plus the global topology spanning
// them: one route table, one name table, and one handoff queue per ordered
// pair of adjacent partitions. The partition structure is a pure function of
// the topology, chosen by the builder (testbed) independently of how many
// engines/shards drive it; that invariance is what makes `-shards 1` and
// `-shards N` produce byte-identical output (DESIGN.md §10.4).
//
// Cross-partition discipline:
//
//   - A directed link whose endpoints live in different partitions keeps its
//     state (busyAt, queue depth, drops, loss draws) in the SOURCE
//     partition, which models serialization and egress exactly as the
//     classic path does — only the arrival event is handed off.
//   - The handoff queue is single-producer (the source partition's worker
//     appends during its epoch) and single-consumer (the destination
//     partition drains it at the next barrier); the pdes barrier provides
//     the happens-before edge between the two.
//   - The destination injects queued arrivals ordered by
//     (arrival time, source partition index, source emission order) — a key
//     computed from the topology alone, so the injection order cannot
//     depend on worker scheduling or shard count.
//   - Packets are handed off, never shared: ownership moves with the queue
//     entry, and a packet freed away from home is routed back to its home
//     pool at the next barrier (see Network.FreePacket).

import (
	"fmt"
	"sort"

	"pmnet/internal/sim"
)

// xev is one queued cross-partition arrival.
type xev struct {
	at  sim.Time
	pkt *Packet
	hop NodeID
}

// xqueue carries arrivals from one source partition to one destination
// partition (all cross links between the pair share it). buf is appended by
// the source partition's worker during an epoch and drained — sorted stably
// by arrival time, preserving source emission order among ties — by the
// destination at the next barrier.
type xqueue struct {
	src, dst int32
	buf      []xev
	pos      int // drain cursor into buf
}

func (q *xqueue) push(at sim.Time, pkt *Packet, hop NodeID) {
	q.buf = append(q.buf, xev{at: at, pkt: pkt, hop: hop})
}

// Fabric is the partitioned form of a Network. Build it single-threaded:
// NewFabric, AddNode (via the partition Networks), Connect, then Freeze
// before any traffic flows.
type Fabric struct {
	parts     []*Network
	assign    []int // partition -> engine (shard) index
	owner     map[NodeID]int32
	topo      map[[2]NodeID]LinkConfig // directed global topology
	xqs       map[[2]int32]*xqueue     // (src part, dst part) -> queue
	xin       [][]*xqueue              // per partition: inbound queues, by src order
	lookahead sim.Time
	frozen    bool
}

// NewFabric creates one partition Network per assign entry; partition i runs
// on engines[assign[i]] with its own loss-RNG stream forked from root in
// partition order (so RNG consumption, like everything else, is a function
// of the partition structure, not the shard count).
func NewFabric(engines []*sim.Engine, assign []int, root *sim.Rand) *Fabric {
	if len(assign) == 0 {
		panic("netsim: fabric needs at least one partition")
	}
	f := &Fabric{
		assign: append([]int(nil), assign...),
		owner:  make(map[NodeID]int32),
		topo:   make(map[[2]NodeID]LinkConfig),
		xqs:    make(map[[2]int32]*xqueue),
	}
	names := make(map[NodeID]string) // one name table spanning all partitions
	for i, eng := range assign {
		if eng < 0 || eng >= len(engines) {
			panic(fmt.Sprintf("netsim: partition %d assigned to unknown engine %d", i, eng))
		}
		n := New(engines[eng], root.Fork())
		n.fab = f
		n.pidx = int32(i)
		n.names = names
		n.ret = make([][]*Packet, len(assign))
		f.parts = append(f.parts, n)
	}
	return f
}

// Parts returns the partition count.
func (f *Fabric) Parts() int { return len(f.parts) }

// Part returns partition i's Network; layers built on it (hosts, devices,
// servers, sessions) land in that partition and on its engine.
func (f *Fabric) Part(i int) *Network { return f.parts[i] }

// Owner returns the partition a node was added to.
func (f *Fabric) Owner(id NodeID) int { return int(f.owner[id]) }

// addOwner records node ownership at AddNode time; the fabric-wide check
// replaces the per-network duplicate check for cross-partition collisions.
func (f *Fabric) addOwner(id NodeID, part int32, name string) {
	if f.frozen {
		panic("netsim: fabric is frozen; topology is immutable")
	}
	if p, dup := f.owner[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node id %d (%s) across partitions %d and %d", id, name, p, part))
	}
	f.owner[id] = part
}

// Connect creates a bidirectional link between a and b with the same config
// in both directions, wiring each direction into its source partition (and
// through a handoff queue when the endpoints live in different partitions).
// Both nodes must already be added.
func (f *Fabric) Connect(a, b NodeID, cfg LinkConfig) {
	if f.frozen {
		panic("netsim: fabric is frozen; topology is immutable")
	}
	f.connectDirected(a, b, cfg)
	f.connectDirected(b, a, cfg)
}

func (f *Fabric) connectDirected(a, b NodeID, cfg LinkConfig) {
	pa, ok := f.owner[a]
	if !ok {
		panic(fmt.Sprintf("netsim: connect: unknown node %d", a))
	}
	pb, ok := f.owner[b]
	if !ok {
		panic(fmt.Sprintf("netsim: connect: unknown node %d", b))
	}
	key := [2]NodeID{a, b}
	f.topo[key] = cfg
	src := f.parts[pa]
	src.links[key] = &link{cfg: cfg, from: a, to: b}
	if pa == pb {
		return
	}
	qk := [2]int32{pa, pb}
	q := f.xqs[qk]
	if q == nil {
		q = &xqueue{src: pa, dst: pb}
		f.xqs[qk] = q
	}
	if src.xout == nil {
		src.xout = make(map[[2]NodeID]*xqueue)
	}
	src.xout[key] = q
}

// Freeze computes the global route table (shared read-only by every
// partition), the inbound queue lists, and the lookahead bound — the minimum
// over cross-partition links of propagation delay plus the serialization
// time of a minimum-size datagram, i.e. the least virtual time any
// cross-partition interaction can take. Topology is immutable afterwards.
func (f *Fabric) Freeze() {
	if f.frozen {
		return
	}
	f.frozen = true
	linkKeys := make([][2]NodeID, 0, len(f.topo))
	for key := range f.topo {
		linkKeys = append(linkKeys, key)
	}
	nodes := make([]NodeID, 0, len(f.owner))
	for id := range f.owner {
		nodes = append(nodes, id)
	}
	routes := buildRouteTable(linkKeys, nodes)
	for _, n := range f.parts {
		n.routes = routes
	}

	// Lookahead: every cross-partition arrival is scheduled at
	// txStart + serialization(size) + PropDelay with size ≥ UDPOverhead,
	// so min(serMin + PropDelay) over cross links bounds it from below.
	f.lookahead = 0
	for _, key := range linkKeys {
		if f.owner[key[0]] == f.owner[key[1]] {
			continue
		}
		cfg := f.topo[key]
		l := cfg.PropDelay
		if cfg.Bandwidth > 0 {
			l += sim.Time(float64(UDPOverhead*8) / cfg.Bandwidth * 1e9)
		}
		if f.lookahead == 0 || l < f.lookahead {
			f.lookahead = l
		}
	}
	if f.lookahead == 0 {
		// No cross-partition links: partitions are mutually independent and
		// any window is conservative.
		f.lookahead = sim.Millisecond
	}
	if f.lookahead < 1 {
		panic("netsim: fabric lookahead collapsed to zero (a cross-partition link has no latency)")
	}

	f.xin = make([][]*xqueue, len(f.parts))
	qkeys := make([][2]int32, 0, len(f.xqs))
	for qk := range f.xqs {
		qkeys = append(qkeys, qk)
	}
	sort.Slice(qkeys, func(i, j int) bool {
		if qkeys[i][1] != qkeys[j][1] {
			return qkeys[i][1] < qkeys[j][1]
		}
		return qkeys[i][0] < qkeys[j][0]
	})
	for _, qk := range qkeys {
		f.xin[qk[1]] = append(f.xin[qk[1]], f.xqs[qk])
	}
}

// Lookahead returns the conservative window computed by Freeze.
func (f *Fabric) Lookahead() sim.Time {
	if !f.frozen {
		panic("netsim: fabric not frozen")
	}
	return f.lookahead
}

// DrainFunc returns the pdes drain hook for one shard: at every epoch
// barrier it reclaims returned packets and injects queued cross-partition
// arrivals for each partition assigned to that shard, in partition order.
func (f *Fabric) DrainFunc(shard int) func() {
	var mine []*Network
	for p, s := range f.assign {
		if s == shard {
			mine = append(mine, f.parts[p])
		}
	}
	return func() {
		for _, n := range mine {
			f.reclaimReturns(n)
			f.drainInbound(n)
		}
	}
}

// reclaimReturns pulls back packets that other partitions freed on this
// partition's behalf since the previous barrier. The pdes barrier orders the
// producers' appends before this read; producers will not touch the slices
// again until after the next barrier.
func (f *Fabric) reclaimReturns(n *Network) {
	me := n.pidx
	for _, peer := range f.parts {
		if peer == n {
			continue
		}
		back := peer.ret[me]
		if len(back) == 0 {
			continue
		}
		n.pkts = append(n.pkts, back...)
		for i := range back {
			back[i] = nil
		}
		peer.ret[me] = back[:0]
	}
}

// drainInbound injects every queued cross-partition arrival into n's engine,
// ordered by (arrival time, source partition index, source emission order).
// Each queue is sorted stably by time first (a partition's emissions
// interleave multiple egress links, so the buffer is only near-sorted), then
// the queues — already in source order from Freeze — are cursor-merged.
func (f *Fabric) drainInbound(n *Network) {
	// Collect the non-empty queues into a per-partition scratch list (kept in
	// source order because f.xin is), so the merge scans only live queues.
	live := n.xlive[:0]
	for _, q := range f.xin[n.pidx] {
		if len(q.buf) == 0 {
			continue
		}
		insertionSortByAt(q.buf)
		live = append(live, q)
	}
	n.xlive = live
	for {
		var best *xqueue
		for _, q := range live {
			if q.pos >= len(q.buf) {
				continue
			}
			if best == nil || q.buf[q.pos].at < best.buf[best.pos].at {
				best = q
			}
		}
		if best == nil {
			break
		}
		ev := best.buf[best.pos]
		best.buf[best.pos] = xev{}
		best.pos++
		n.eng.At(ev.at, n.getArrival(ev.pkt, ev.hop).fn)
	}
	for _, q := range live {
		q.buf = q.buf[:0]
		q.pos = 0
	}
}

// insertionSortByAt stably sorts a small buffer by arrival time in place —
// no allocation, and ties keep their emission order.
func insertionSortByAt(buf []xev) {
	for i := 1; i < len(buf); i++ {
		e := buf[i]
		j := i - 1
		for j >= 0 && buf[j].at > e.at {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = e
	}
}

// Stats sums delivery counters across partitions.
func (f *Fabric) Stats() Stats {
	var s Stats
	for _, n := range f.parts {
		s.Delivered += n.stats.Delivered
		s.DroppedFull += n.stats.DroppedFull
		s.DroppedRand += n.stats.DroppedRand
		s.DroppedDead += n.stats.DroppedDead
	}
	return s
}

// LinkQueueBytes reports the a→b egress queue depth wherever the link lives.
func (f *Fabric) LinkQueueBytes(a, b NodeID) int {
	return f.parts[f.owner[a]].LinkQueueBytes(a, b)
}

// LinkDrops reports a→b drop-tail losses wherever the link lives.
func (f *Fabric) LinkDrops(a, b NodeID) uint64 {
	return f.parts[f.owner[a]].LinkDrops(a, b)
}
