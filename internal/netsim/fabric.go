package netsim

// This file partitions a Network for conservative parallel simulation
// (internal/sim/pdes). A Fabric owns a set of partition Networks — each on
// its own (possibly shared) sim.Engine — plus the global topology spanning
// them: one route table, one name table, and one handoff queue per ordered
// pair of adjacent partitions. The partition structure is a pure function of
// the topology, chosen by the builder (testbed) independently of how many
// engines/shards drive it; that invariance is what makes `-shards 1` and
// `-shards N` produce byte-identical output (DESIGN.md §10.4).
//
// Cross-partition discipline:
//
//   - A directed link whose endpoints live in different partitions keeps its
//     state (busyAt, queue depth, drops, loss draws) in the SOURCE
//     partition, which models serialization and egress exactly as the
//     classic path does — only the arrival event is handed off.
//   - The handoff queue is single-producer (the source partition's worker
//     appends during its epoch) and single-consumer (the destination
//     partition drains it at the next epoch); the queue is double-buffered
//     by epoch parity — during epoch k producers append to side k&1 while
//     the consumer drains side (k-1)&1 — so the single pdes barrier at the
//     end of each epoch is the only happens-before edge needed between the
//     two (DESIGN.md §10.6).
//   - Each parity side publishes the minimum queued arrival time (reset by
//     the producer's Begin, maintained on push); Fabric.PendingOutFunc folds
//     a shard's outbound minimums into the slot it publishes to the runner,
//     so events sitting undrained in a buffer can never be skipped past and
//     the runner's reduce stays O(shards).
//   - The destination injects queued arrivals ordered by
//     (arrival time, source partition index, source emission order) — a key
//     computed from the topology alone, so the injection order cannot
//     depend on worker scheduling or shard count.
//   - Packets are handed off, never shared: ownership moves with the queue
//     entry, and a packet freed away from home is routed back to its home
//     pool at the next barrier (see Network.FreePacket).

import (
	"fmt"
	"math"
	"sort"

	"pmnet/internal/sim"
)

// xnever is the pending-minimum identity: no queued arrival. Its value
// matches the pdes runner's reduction identity, so PendingMin composes with
// gmin without translation.
const xnever = sim.Time(math.MaxInt64)

// xev is one queued cross-partition arrival.
type xev struct {
	at  sim.Time
	pkt *Packet
	hop NodeID
}

// xside is one epoch-parity half of a handoff queue: the arrival buffer, the
// minimum queued arrival time (maintained on push, reset by the producer's
// Begin before the parity is written again), and the consumer's drain
// cursor. Padded to a cache line so the producer's writes to one parity
// never false-share with the consumer's drain of the other.
type xside struct {
	buf  []xev
	qmin sim.Time
	pos  int // drain cursor into buf
	_    [24]byte
}

// xqueue carries arrivals from one source partition to one destination
// partition (all cross links between the pair share it), double-buffered by
// epoch parity: during epoch k the source partition's worker appends to
// sides[k&1] while the destination drains sides[(k-1)&1] — sorted stably by
// arrival time, preserving source emission order among ties.
type xqueue struct {
	src, dst int32
	sides    [2]xside
}

func (q *xqueue) push(parity uint32, at sim.Time, pkt *Packet, hop NodeID) {
	s := &q.sides[parity]
	s.buf = append(s.buf, xev{at: at, pkt: pkt, hop: hop})
	if at < s.qmin {
		s.qmin = at
	}
}

// Fabric is the partitioned form of a Network. Build it single-threaded:
// NewFabric, AddNode (via the partition Networks), Connect, then Freeze
// before any traffic flows.
type Fabric struct {
	parts     []*Network
	assign    []int // partition -> engine (shard) index
	owner     map[NodeID]int32
	topo      map[[2]NodeID]LinkConfig // directed global topology
	xqs       map[[2]int32]*xqueue     // (src part, dst part) -> queue
	xin       [][]*xqueue              // per partition: inbound queues, by src order
	xoutOf    [][]*xqueue              // per partition: outbound queues, by dst order
	allq      []*xqueue                // every queue, in (dst, src) order
	lookahead sim.Time
	ecmp      bool
	frozen    bool
}

// NewFabric creates one partition Network per assign entry; partition i runs
// on engines[assign[i]] with its own loss-RNG stream forked from root in
// partition order (so RNG consumption, like everything else, is a function
// of the partition structure, not the shard count).
func NewFabric(engines []*sim.Engine, assign []int, root *sim.Rand) *Fabric {
	if len(assign) == 0 {
		panic("netsim: fabric needs at least one partition")
	}
	f := &Fabric{
		assign: append([]int(nil), assign...),
		owner:  make(map[NodeID]int32),
		topo:   make(map[[2]NodeID]LinkConfig),
		xqs:    make(map[[2]int32]*xqueue),
	}
	names := make(map[NodeID]string) // one name table spanning all partitions
	for i, eng := range assign {
		if eng < 0 || eng >= len(engines) {
			panic(fmt.Sprintf("netsim: partition %d assigned to unknown engine %d", i, eng))
		}
		n := New(engines[eng], root.Fork())
		n.fab = f
		n.pidx = int32(i)
		n.names = names
		n.ret[0] = make([][]*Packet, len(assign))
		n.ret[1] = make([][]*Packet, len(assign))
		// The write parity starts at 1: the first epoch's Begin flips to 0
		// and its drain reads 1, so packets pushed or freed during model
		// setup (before any epoch) land exactly where the first reduce and
		// drain look.
		n.par = 1
		f.parts = append(f.parts, n)
	}
	return f
}

// Parts returns the partition count.
func (f *Fabric) Parts() int { return len(f.parts) }

// Part returns partition i's Network; layers built on it (hosts, devices,
// servers, sessions) land in that partition and on its engine.
func (f *Fabric) Part(i int) *Network { return f.parts[i] }

// Owner returns the partition a node was added to.
func (f *Fabric) Owner(id NodeID) int { return int(f.owner[id]) }

// addOwner records node ownership at AddNode time; the fabric-wide check
// replaces the per-network duplicate check for cross-partition collisions.
func (f *Fabric) addOwner(id NodeID, part int32, name string) {
	if f.frozen {
		panic("netsim: fabric is frozen; topology is immutable")
	}
	if p, dup := f.owner[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node id %d (%s) across partitions %d and %d", id, name, p, part))
	}
	f.owner[id] = part
}

// Connect creates a bidirectional link between a and b with the same config
// in both directions, wiring each direction into its source partition (and
// through a handoff queue when the endpoints live in different partitions).
// Both nodes must already be added.
func (f *Fabric) Connect(a, b NodeID, cfg LinkConfig) {
	f.ConnectAsym(a, b, cfg, cfg)
}

// ConnectAsym is Connect with direction-specific configs: ab governs a→b,
// ba governs b→a — the fabric form of Network.ConnectAsym.
func (f *Fabric) ConnectAsym(a, b NodeID, ab, ba LinkConfig) {
	if f.frozen {
		panic("netsim: fabric is frozen; topology is immutable")
	}
	f.connectDirected(a, b, ab)
	f.connectDirected(b, a, ba)
}

// SetECMP enables flow-hashed equal-cost multipath forwarding fabric-wide.
// Call before Freeze; the multi-route table is built there and shared
// read-only by every partition, exactly like the single-path table.
func (f *Fabric) SetECMP(on bool) {
	if f.frozen {
		panic("netsim: fabric is frozen; topology is immutable")
	}
	f.ecmp = on
}

func (f *Fabric) connectDirected(a, b NodeID, cfg LinkConfig) {
	pa, ok := f.owner[a]
	if !ok {
		panic(fmt.Sprintf("netsim: connect: unknown node %d", a))
	}
	pb, ok := f.owner[b]
	if !ok {
		panic(fmt.Sprintf("netsim: connect: unknown node %d", b))
	}
	key := [2]NodeID{a, b}
	f.topo[key] = cfg
	src := f.parts[pa]
	// The directed link — including any impairment RNG fork — lives in the
	// SOURCE partition, so its draw stream is a function of that partition's
	// build order alone, never of the shard count.
	src.links[key] = src.newLink(a, b, cfg)
	if pa == pb {
		return
	}
	qk := [2]int32{pa, pb}
	q := f.xqs[qk]
	if q == nil {
		q = &xqueue{src: pa, dst: pb}
		q.sides[0].qmin = xnever
		q.sides[1].qmin = xnever
		f.xqs[qk] = q
	}
	if src.xout == nil {
		src.xout = make(map[[2]NodeID]*xqueue)
	}
	src.xout[key] = q
}

// Freeze computes the global route table (shared read-only by every
// partition), the inbound queue lists, and the lookahead bound — the minimum
// over cross-partition links of propagation delay plus the serialization
// time of a minimum-size datagram, i.e. the least virtual time any
// cross-partition interaction can take. Topology is immutable afterwards.
func (f *Fabric) Freeze() {
	if f.frozen {
		return
	}
	f.frozen = true
	linkKeys := make([][2]NodeID, 0, len(f.topo))
	for key := range f.topo {
		linkKeys = append(linkKeys, key)
	}
	nodes := make([]NodeID, 0, len(f.owner))
	for id := range f.owner {
		nodes = append(nodes, id)
	}
	routes := buildRouteTable(linkKeys, nodes)
	var multi map[NodeID]map[NodeID][]NodeID
	if f.ecmp {
		multi = buildMultiRouteTable(linkKeys, nodes)
	}
	for _, n := range f.parts {
		n.routes = routes
		n.ecmp = f.ecmp
		n.multi = multi
	}

	// Lookahead: every cross-partition arrival is scheduled at
	// txStart + serialization(size) + PropDelay with size ≥ UDPOverhead,
	// so min(serMin + PropDelay) over cross links bounds it from below.
	f.lookahead = 0
	for _, key := range linkKeys {
		if f.owner[key[0]] == f.owner[key[1]] {
			continue
		}
		l := linkLatency(f.topo[key])
		if f.lookahead == 0 || l < f.lookahead {
			f.lookahead = l
		}
	}
	if f.lookahead == 0 {
		// No cross-partition links: partitions are mutually independent and
		// any window is conservative.
		f.lookahead = sim.Millisecond
	}
	if f.lookahead < 1 {
		panic("netsim: fabric lookahead collapsed to zero (a cross-partition link has no latency)")
	}

	f.xin = make([][]*xqueue, len(f.parts))
	f.xoutOf = make([][]*xqueue, len(f.parts))
	qkeys := make([][2]int32, 0, len(f.xqs))
	for qk := range f.xqs {
		qkeys = append(qkeys, qk)
	}
	sort.Slice(qkeys, func(i, j int) bool {
		if qkeys[i][1] != qkeys[j][1] {
			return qkeys[i][1] < qkeys[j][1]
		}
		return qkeys[i][0] < qkeys[j][0]
	})
	for _, qk := range qkeys {
		q := f.xqs[qk]
		f.xin[qk[1]] = append(f.xin[qk[1]], q)
		f.xoutOf[qk[0]] = append(f.xoutOf[qk[0]], q)
		f.allq = append(f.allq, q)
	}
}

// Lookahead returns the conservative window computed by Freeze.
func (f *Fabric) Lookahead() sim.Time {
	if !f.frozen {
		panic("netsim: fabric not frozen")
	}
	return f.lookahead
}

// BeginFunc returns the pdes Begin hook for one shard: at the start of every
// epoch it flips each owned partition to the epoch's write parity and resets
// that parity's pending minimums on the partition's outbound queues. It must
// run even for shards whose engine run is skipped — a stale minimum would
// wedge the global window (see pdes.Shard.Begin).
func (f *Fabric) BeginFunc(shard int) func(parity uint32) {
	var mine []*Network
	for p, s := range f.assign {
		if s == shard {
			mine = append(mine, f.parts[p])
		}
	}
	return func(parity uint32) {
		for _, n := range mine {
			n.par = parity
			for _, q := range f.xoutOf[n.pidx] {
				q.sides[parity].qmin = xnever
			}
		}
	}
}

// DrainFunc returns the pdes drain hook for one shard: at every epoch it
// reclaims returned packets and injects queued cross-partition arrivals at
// the given (previous-epoch) parity for each partition assigned to that
// shard, in partition order.
func (f *Fabric) DrainFunc(shard int) func(parity uint32) {
	var mine []*Network
	for p, s := range f.assign {
		if s == shard {
			mine = append(mine, f.parts[p])
		}
	}
	return func(parity uint32) {
		for _, n := range mine {
			f.reclaimReturns(n, parity)
			f.drainInbound(n, parity)
		}
	}
}

// PendingOutFunc returns the pdes PendingOut hook for one shard: the minimum
// arrival time queued at the given parity across the shard's outbound
// handoff queues, split into own (destination partition on this same shard —
// drained by this shard's own worker) and cross (destination on another
// shard). The runner folds own into the shard's published next-event time
// and cross into the published y slot, so its reduce is O(shards) with no
// global queue scan, and undrained buffered events still bound the epoch
// window. Only the worker driving the shard calls it (at publish), so it
// reads only queue minimums that worker's epoch just wrote. Call after
// Freeze — the queue lists are built there.
func (f *Fabric) PendingOutFunc(shard int) func(parity uint32) (own, cross sim.Time) {
	if !f.frozen {
		panic("netsim: fabric not frozen")
	}
	var ownQ, crossQ []*xqueue
	for p, s := range f.assign {
		if s != shard {
			continue
		}
		for _, q := range f.xoutOf[p] {
			if f.assign[q.dst] == shard {
				ownQ = append(ownQ, q)
			} else {
				crossQ = append(crossQ, q)
			}
		}
	}
	return func(parity uint32) (own, cross sim.Time) {
		own, cross = xnever, xnever
		for _, q := range ownQ {
			if t := q.sides[parity].qmin; t < own {
				own = t
			}
		}
		for _, q := range crossQ {
			if t := q.sides[parity].qmin; t < cross {
				cross = t
			}
		}
		return own, cross
	}
}

// Quiesce repatriates every cross-partition free still parked in a return
// slice, both parities. The pdes runner calls it single-threaded after its
// workers have joined (SetQuiesce), so the frees of a run's final epoch —
// which no later epoch will reclaim — still make it home before the caller
// inspects pools or the next run warms up.
func (f *Fabric) Quiesce() {
	for _, n := range f.parts {
		f.reclaimReturns(n, 0)
		f.reclaimReturns(n, 1)
	}
}

// reclaimReturns pulls back packets that other partitions freed on this
// partition's behalf during the previous epoch (the given parity). The pdes
// barrier orders the producers' appends before this read; producers are now
// writing the opposite parity and will not touch these slices again until
// this parity is theirs to write.
func (f *Fabric) reclaimReturns(n *Network, parity uint32) {
	me := n.pidx
	for _, peer := range f.parts {
		if peer == n {
			continue
		}
		back := peer.ret[parity][me]
		if len(back) == 0 {
			continue
		}
		n.pkts = append(n.pkts, back...)
		for i := range back {
			back[i] = nil
		}
		peer.ret[parity][me] = back[:0]
	}
}

// drainInbound injects every cross-partition arrival queued at the given
// parity into n's engine, ordered by (arrival time, source partition index,
// source emission order). Each buffer is sorted stably by time first (a
// partition's emissions interleave multiple egress links, so the buffer is
// only near-sorted), then the queues — already in source order from Freeze —
// are cursor-merged. The drained parity's qmin is left stale; its producer
// resets it at Begin before writing the parity again.
func (f *Fabric) drainInbound(n *Network, parity uint32) {
	// Collect the non-empty queues into a per-partition scratch list (kept in
	// source order because f.xin is), so the merge scans only live queues.
	live := n.xlive[:0]
	for _, q := range f.xin[n.pidx] {
		if len(q.sides[parity].buf) == 0 {
			continue
		}
		insertionSortByAt(q.sides[parity].buf)
		live = append(live, q)
	}
	n.xlive = live
	for {
		var best *xside
		for _, q := range live {
			s := &q.sides[parity]
			if s.pos >= len(s.buf) {
				continue
			}
			if best == nil || s.buf[s.pos].at < best.buf[best.pos].at {
				best = s
			}
		}
		if best == nil {
			break
		}
		ev := best.buf[best.pos]
		best.buf[best.pos] = xev{}
		best.pos++
		n.eng.At(ev.at, n.getArrival(ev.pkt, ev.hop).fn)
	}
	for _, q := range live {
		s := &q.sides[parity]
		s.buf = s.buf[:0]
		s.pos = 0
	}
}

// insertionSortByAt stably sorts a small buffer by arrival time in place —
// no allocation, and ties keep their emission order.
func insertionSortByAt(buf []xev) {
	for i := 1; i < len(buf); i++ {
		e := buf[i]
		j := i - 1
		for j >= 0 && buf[j].at > e.at {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = e
	}
}

// Stats sums delivery counters across partitions.
func (f *Fabric) Stats() Stats {
	var s Stats
	for _, n := range f.parts {
		s.Delivered += n.stats.Delivered
		s.DroppedFull += n.stats.DroppedFull
		s.DroppedRand += n.stats.DroppedRand
		s.DroppedDead += n.stats.DroppedDead
		s.DroppedBurst += n.stats.DroppedBurst
		s.Duplicated += n.stats.Duplicated
	}
	return s
}

// LinkQueueBytes reports the a→b egress queue depth wherever the link lives.
func (f *Fabric) LinkQueueBytes(a, b NodeID) int {
	return f.parts[f.owner[a]].LinkQueueBytes(a, b)
}

// LinkDrops reports a→b drop-tail losses wherever the link lives.
func (f *Fabric) LinkDrops(a, b NodeID) uint64 {
	return f.parts[f.owner[a]].LinkDrops(a, b)
}
