package netsim

import "pmnet/internal/sim"

// CrossTraffic injects background datagrams between two hosts at a target
// rate — the shared-network contention (bandwidth, switch queues, links)
// the paper names as the root of long tail latencies (§I). Inter-arrival
// times are exponential (Poisson traffic); packets carry a tenant tag so
// experiments can separate them from workload traffic.
type CrossTraffic struct {
	net       *Network
	eng       *sim.Engine
	rand      *sim.Rand
	from, to  NodeID
	size      int
	meanGapNs float64
	tenant    uint16
	running   bool
	sent      uint64
	fireFn    func() // bound once; next() schedules no per-packet closure
}

// NewCrossTraffic creates a generator pushing `size`-byte datagrams from →
// to at targetBitsPerSec on average.
func NewCrossTraffic(net *Network, rand *sim.Rand, from, to NodeID, size int, targetBitsPerSec float64, tenant uint16) *CrossTraffic {
	if size <= 0 {
		size = 1400
	}
	pktBits := float64((size + UDPOverhead) * 8)
	c := &CrossTraffic{
		net:       net,
		eng:       net.Engine(),
		rand:      rand,
		from:      from,
		to:        to,
		size:      size,
		meanGapNs: pktBits / targetBitsPerSec * 1e9,
		tenant:    tenant,
	}
	c.fireFn = c.fire
	return c
}

// Start begins injection; Stop halts it. The generator schedules one event
// per packet, so a stopped generator leaves the event queue drainable.
func (c *CrossTraffic) Start() {
	if c.running {
		return
	}
	c.running = true
	c.next()
}

// Stop halts injection after the current inter-arrival gap.
func (c *CrossTraffic) Stop() { c.running = false }

// Sent returns the number of packets injected.
func (c *CrossTraffic) Sent() uint64 { return c.sent }

func (c *CrossTraffic) next() {
	if !c.running {
		return
	}
	gap := sim.Time(c.rand.Exp(c.meanGapNs))
	if gap < 1 {
		gap = 1
	}
	c.eng.After(gap, c.fireFn)
}

func (c *CrossTraffic) fire() {
	if !c.running {
		return
	}
	c.sent++
	p := c.net.AllocPacket()
	p.To = c.to
	p.From = c.from
	p.Tenant = c.tenant
	if cap(p.Raw) >= c.size {
		p.Raw = p.Raw[:c.size]
	} else {
		p.Raw = make([]byte, c.size)
	}
	c.net.Transmit(p, c.from)
	c.next()
}
