// Package arrival implements deterministic open-loop arrival processes for
// the experiment harness. A closed-loop driver (fixed clients, zero think
// time) self-throttles at saturation: each client waits for its previous
// request, so offered load collapses to match service capacity and the
// load-latency knee is invisible. An open-loop process generates arrivals on
// the virtual clock at a configured rate regardless of completions — the
// production traffic shape — which is what exposes where latency departs
// from the service time and where goodput stops tracking offered load.
//
// Every process is a pure function of (Config, *sim.Rand): it draws all
// randomness from the seeded stream it was constructed with and never reads
// the wall clock, so arrival sequences are byte-reproducible and independent
// of host scheduling, -parallel pool size, and -shards count. Rates are
// arrivals per second of virtual time.
package arrival

import (
	"fmt"
	"math"

	"pmnet/internal/sim"
)

// Kind selects the arrival process shape.
type Kind uint8

const (
	// Poisson is a homogeneous Poisson process: i.i.d. exponential
	// inter-arrival gaps with mean 1/Rate.
	Poisson Kind = iota
	// MMPP is a 2-state Markov-modulated Poisson process: a "calm" and a
	// "burst" state, each Poisson at its own rate, with exponentially
	// distributed dwell times. The long-run mean rate is Rate; bursts run at
	// Burst×Rate for a BurstFraction of the time.
	MMPP
	// Diurnal is a non-homogeneous Poisson process whose instantaneous rate
	// follows a sinusoidal load curve: λ(t) = Rate·(1 + Swing·sin(2πt/Period)).
	// The mean over a whole period is Rate.
	Diurnal
	// Flash is a flash-crowd ramp: Poisson at Rate, except during
	// [FlashAt, FlashAt+FlashLen) where the rate steps to FlashPeak×Rate.
	Flash
)

func (k Kind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case MMPP:
		return "mmpp"
	case Diurnal:
		return "diurnal"
	case Flash:
		return "flash"
	}
	return fmt.Sprintf("arrival.Kind(%d)", uint8(k))
}

// ParseKind maps a flag string to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "poisson", "":
		return Poisson, nil
	case "mmpp":
		return MMPP, nil
	case "diurnal":
		return Diurnal, nil
	case "flash":
		return Flash, nil
	}
	return 0, fmt.Errorf("arrival: unknown process %q (want poisson|mmpp|diurnal|flash)", s)
}

// Config parameterizes a process. Rate is required; the per-kind fields are
// completed with the defaults documented on each.
type Config struct {
	Kind Kind
	Rate float64 // mean arrivals per second of virtual time (> 0)

	// MMPP parameters.
	Burst         float64  // burst-state rate multiplier (default 8)
	BurstFraction float64  // long-run fraction of time spent bursting (default 0.1)
	BurstDwell    sim.Time // mean dwell per burst episode (default 1 ms)

	// Diurnal parameters.
	Period sim.Time // load-curve period, one simulated "day" (default 100 ms)
	Swing  float64  // relative amplitude in [0, 1) (default 0.8)

	// Flash-crowd parameters.
	FlashAt   sim.Time // ramp onset (default Period/4, i.e. 25 ms)
	FlashLen  sim.Time // ramp duration (default 10 ms)
	FlashPeak float64  // rate multiplier during the flash (default 10)
}

func (c *Config) defaults() {
	if c.Burst <= 1 {
		c.Burst = 8
	}
	if c.BurstFraction <= 0 || c.BurstFraction >= 1 {
		c.BurstFraction = 0.1
	}
	// The calm-state rate (1 - f·m)/(1 - f)·Rate must stay positive; clamp
	// the burst multiplier so f·m < 1 holds for any configured fraction.
	if c.Burst*c.BurstFraction >= 1 {
		c.Burst = 0.95 / c.BurstFraction
	}
	if c.BurstDwell <= 0 {
		c.BurstDwell = sim.Millisecond
	}
	if c.Period <= 0 {
		c.Period = 100 * sim.Millisecond
	}
	if c.Swing <= 0 || c.Swing >= 1 {
		c.Swing = 0.8
	}
	if c.FlashAt <= 0 {
		c.FlashAt = 25 * sim.Millisecond
	}
	if c.FlashLen <= 0 {
		c.FlashLen = 10 * sim.Millisecond
	}
	if c.FlashPeak <= 1 {
		c.FlashPeak = 10
	}
}

// Process generates one monotone stream of arrival times. Not safe for
// concurrent use; one process belongs to one driver on one engine.
type Process struct {
	cfg  Config
	rand *sim.Rand
	now  sim.Time // time of the last arrival returned

	// MMPP state.
	burst      bool
	stateEnd   sim.Time
	stateStart sim.Time
	burstTime  sim.Time // completed burst dwell, for DwellFractions
	calmTime   sim.Time // completed calm dwell

	// Thinning bound for the non-homogeneous kinds.
	maxRate float64
}

// New builds a process drawing randomness from r. It panics on a
// non-positive rate — a config bug, not a recoverable condition.
func New(cfg Config, r *sim.Rand) *Process {
	if cfg.Rate <= 0 {
		panic("arrival: non-positive rate")
	}
	cfg.defaults()
	p := &Process{cfg: cfg, rand: r}
	switch cfg.Kind {
	case MMPP:
		// Start calm and draw the first dwell; the calm dwell mean is set so
		// the long-run burst fraction comes out at BurstFraction.
		p.stateEnd = sim.Time(r.Exp(float64(p.calmDwell())))
	case Diurnal:
		p.maxRate = cfg.Rate * (1 + cfg.Swing)
	case Flash:
		p.maxRate = cfg.Rate * cfg.FlashPeak
	}
	return p
}

// calmDwell returns the mean calm-state dwell that balances BurstDwell into
// the configured long-run burst fraction.
func (p *Process) calmDwell() sim.Time {
	f := p.cfg.BurstFraction
	return sim.Time(float64(p.cfg.BurstDwell) * (1 - f) / f)
}

// gap converts a mean rate (arrivals/s) into one exponential inter-arrival
// gap in virtual nanoseconds, floored at 1 ns so the stream always advances.
func (p *Process) gap(rate float64) sim.Time {
	g := sim.Time(p.rand.Exp(1e9 / rate))
	if g < 1 {
		g = 1
	}
	return g
}

// Next returns the absolute virtual time of the next arrival. Times are
// strictly increasing.
func (p *Process) Next() sim.Time {
	switch p.cfg.Kind {
	case MMPP:
		p.next(p.stepMMPP)
	case Diurnal:
		p.next(p.stepThinned(p.diurnalRate))
	case Flash:
		p.next(p.stepThinned(p.flashRate))
	default:
		p.now += p.gap(p.cfg.Rate)
	}
	return p.now
}

// next advances p.now until step reports an accepted arrival.
func (p *Process) next(step func() bool) {
	for !step() {
	}
}

// stepMMPP advances by one candidate gap in the current modulation state,
// toggling states at dwell boundaries. The exponential's memorylessness makes
// restarting the draw at a boundary statistically exact.
func (p *Process) stepMMPP() bool {
	rate := p.calmRate()
	if p.burst {
		rate = p.cfg.Rate * p.cfg.Burst
	}
	g := p.gap(rate)
	if p.now+g >= p.stateEnd {
		// Dwell expires first: jump to the boundary, toggle, redraw.
		p.now = p.stateEnd
		if p.burst {
			p.burstTime += p.stateEnd - p.stateStart
		} else {
			p.calmTime += p.stateEnd - p.stateStart
		}
		p.stateStart = p.stateEnd
		p.burst = !p.burst
		mean := p.calmDwell()
		if p.burst {
			mean = p.cfg.BurstDwell
		}
		dwell := sim.Time(p.rand.Exp(float64(mean)))
		if dwell < 1 {
			dwell = 1
		}
		p.stateEnd = p.now + dwell
		return false
	}
	p.now += g
	return true
}

// calmRate is the calm-state rate keeping the long-run mean at Rate.
func (p *Process) calmRate() float64 {
	f := p.cfg.BurstFraction
	return p.cfg.Rate * (1 - f*p.cfg.Burst) / (1 - f)
}

// DwellFractions reports the observed split of virtual time across the two
// MMPP modulation states, counting completed dwells only. Both values are 0
// for non-MMPP processes or before the first state transition.
func (p *Process) DwellFractions() (burst, calm float64) {
	total := p.burstTime + p.calmTime
	if total == 0 {
		return 0, 0
	}
	return float64(p.burstTime) / float64(total), float64(p.calmTime) / float64(total)
}

// stepThinned is Lewis-Shedler thinning: propose at the peak rate, accept
// with probability λ(t)/λmax. Rejected proposals still advance time.
func (p *Process) stepThinned(rate func(sim.Time) float64) func() bool {
	return func() bool {
		p.now += p.gap(p.maxRate)
		return p.rand.Float64() < rate(p.now)/p.maxRate
	}
}

func (p *Process) diurnalRate(t sim.Time) float64 {
	phase := 2 * math.Pi * float64(t%p.cfg.Period) / float64(p.cfg.Period)
	return p.cfg.Rate * (1 + p.cfg.Swing*math.Sin(phase))
}

func (p *Process) flashRate(t sim.Time) float64 {
	if t >= p.cfg.FlashAt && t < p.cfg.FlashAt+p.cfg.FlashLen {
		return p.cfg.Rate * p.cfg.FlashPeak
	}
	return p.cfg.Rate
}
