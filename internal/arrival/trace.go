package arrival

// Trace replay: an arrival source that plays back a recorded timestamp file
// instead of sampling a synthetic process. Production arrival streams have
// structure no Poisson/MMPP fit captures (correlated bursts, daily edges,
// retry storms); replaying a captured trace through the same open-loop
// driver makes the harness comparable against real traffic shapes.
//
// A trace file is plain text: one arrival time per line, in nanoseconds of
// virtual time, non-decreasing; blank lines and #-comments are skipped. One
// file describes the WHOLE cluster's arrivals; per-client sources take
// disjoint strided views (client i of n replays timestamps i, i+n, i+2n, …),
// so the split is a pure function of (file, client index, client count) and
// adding clients never reorders anyone's stream.

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"pmnet/internal/sim"
)

// Source is the arrival-stream interface the open-loop driver consumes: Next
// returns the absolute virtual time of the next arrival, strictly
// increasing. Exhausted sources return times past any run duration.
type Source interface {
	Next() sim.Time
}

// Process implements Source.
var _ Source = (*Process)(nil)

// exhausted is returned by a drained replay — beyond any Duration, so the
// driver stops scheduling.
const exhausted = sim.Time(math.MaxInt64)

// TraceFile is a parsed arrival trace.
type TraceFile struct {
	times []sim.Time
}

// Len returns the number of recorded arrivals.
func (tf *TraceFile) Len() int { return len(tf.times) }

// ReadTraceFile parses a trace file (see the package comment for the
// format), validating that timestamps are non-negative and non-decreasing.
func ReadTraceFile(path string) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tf := &TraceFile{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		ns, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad arrival time %q: %v", path, line, s, err)
		}
		t := sim.Time(ns)
		if t < 0 {
			return nil, fmt.Errorf("%s:%d: negative arrival time %d", path, line, ns)
		}
		if n := len(tf.times); n > 0 && t < tf.times[n-1] {
			return nil, fmt.Errorf("%s:%d: arrival time %d decreases (previous %d)", path, line, ns, tf.times[n-1])
		}
		tf.times = append(tf.times, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(tf.times) == 0 {
		return nil, fmt.Errorf("%s: trace holds no arrivals", path)
	}
	return tf, nil
}

// Client returns client i's strided view of an n-client split. The view
// shares the parsed slice (read-only), so per-client sources cost no copies.
func (tf *TraceFile) Client(i, n int) *Replay {
	if n <= 0 || i < 0 || i >= n {
		panic(fmt.Sprintf("arrival: bad trace split client %d of %d", i, n))
	}
	return &Replay{times: tf.times, idx: i, stride: n}
}

// Replay plays one strided view of a trace. Implements Source; returned
// times are strictly increasing (duplicate recorded timestamps are nudged
// forward 1 ns, matching the synthetic processes' 1 ns floor), and a drained
// replay keeps returning a time past any run duration.
type Replay struct {
	times  []sim.Time
	idx    int
	stride int
	last   sim.Time
	played int
}

var _ Source = (*Replay)(nil)

// Next returns the next recorded arrival in this view.
func (p *Replay) Next() sim.Time {
	if p.idx >= len(p.times) {
		return exhausted
	}
	t := p.times[p.idx]
	p.idx += p.stride
	p.played++
	if p.played > 1 && t <= p.last {
		t = p.last + 1
	}
	p.last = t
	return t
}

// Played reports how many arrivals this view has produced.
func (p *Replay) Played() int { return p.played }
