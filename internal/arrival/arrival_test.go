package arrival

import (
	"math"
	"testing"

	"pmnet/internal/sim"
)

// Golden arrival streams, same style as the sim.Rand golden tests: these pin
// the exact virtual-time sequence each process emits for a fixed seed. Every
// open-loop experiment's byte-identity contract bottoms out here — if a
// refactor shifts any value, previously published open-loop outputs silently
// change. Captured from the initial implementation; never regenerate them to
// make a failing test pass.
var goldenStreams = map[Kind][8]sim.Time{
	Poisson: {1825, 3933, 6321, 7516, 7692, 7702, 8359, 8702},
	MMPP:    {9488, 20236, 25617, 26411, 26457, 29416, 30962, 32148},
	Diurnal: {2438, 2803, 2949, 3475, 5335, 5759, 8807, 9042},
	Flash:   {437, 1579, 1726, 2033, 4999, 6321, 7811, 8291},
}

func TestGoldenStreams(t *testing.T) {
	for kind, want := range goldenStreams {
		p := New(Config{Kind: kind, Rate: 1e6}, sim.NewRand(42))
		for i, w := range want {
			if got := p.Next(); got != w {
				t.Errorf("%s seed 42: arrival #%d = %d, want %d (stream drifted)", kind, i, got, w)
			}
		}
	}
}

func TestSameSeedSameStream(t *testing.T) {
	for _, kind := range []Kind{Poisson, MMPP, Diurnal, Flash} {
		a := New(Config{Kind: kind, Rate: 5e5}, sim.NewRand(7))
		b := New(Config{Kind: kind, Rate: 5e5}, sim.NewRand(7))
		for i := 0; i < 1000; i++ {
			if av, bv := a.Next(), b.Next(); av != bv {
				t.Fatalf("%s: same-seed streams diverged at #%d: %v != %v", kind, i, av, bv)
			}
		}
	}
}

func TestMonotone(t *testing.T) {
	for _, kind := range []Kind{Poisson, MMPP, Diurnal, Flash} {
		p := New(Config{Kind: kind, Rate: 1e8}, sim.NewRand(3))
		prev := sim.Time(0)
		for i := 0; i < 10000; i++ {
			v := p.Next()
			if v <= prev {
				t.Fatalf("%s: arrival #%d = %v not after %v", kind, i, v, prev)
			}
			prev = v
		}
	}
}

// TestPoissonMoments checks the empirical inter-arrival mean and variance of
// the Poisson process against the exponential's mean = stddev = 1/λ.
func TestPoissonMoments(t *testing.T) {
	const rate = 1e6 // → mean gap 1000 ns
	const n = 200000
	p := New(Config{Kind: Poisson, Rate: rate}, sim.NewRand(11))
	gaps := make([]float64, n)
	prev := sim.Time(0)
	for i := range gaps {
		v := p.Next()
		gaps[i] = float64(v - prev)
		prev = v
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / n
	var sq float64
	for _, g := range gaps {
		sq += (g - mean) * (g - mean)
	}
	variance := sq / n

	wantMean := 1e9 / rate
	if rel := math.Abs(mean-wantMean) / wantMean; rel > 0.02 {
		t.Errorf("mean gap %.1f ns, want %.1f ±2%% (rel err %.3f)", mean, wantMean, rel)
	}
	// Exponential: variance = mean². The 1 ns floor and integer truncation
	// are negligible at a 1000 ns mean.
	if rel := math.Abs(variance-wantMean*wantMean) / (wantMean * wantMean); rel > 0.05 {
		t.Errorf("gap variance %.0f, want %.0f ±5%% (rel err %.3f)", variance, wantMean*wantMean, rel)
	}
}

// TestMMPPDwellFractions runs the modulated process long enough to complete
// many dwell episodes and checks the observed burst/calm time split against
// the configured long-run fraction, plus the overall arrival rate.
func TestMMPPDwellFractions(t *testing.T) {
	// Short dwells so the run covers thousands of dwell cycles — with the
	// default 1 ms burst dwell a 0.5 s run sees only ~50 cycles and the
	// realized rate carries ~10% sampling noise, swamping the tolerance.
	cfg := Config{Kind: MMPP, Rate: 1e6, Burst: 8, BurstFraction: 0.1, BurstDwell: 50 * sim.Microsecond}
	p := New(cfg, sim.NewRand(19))
	const n = 1000000
	var last sim.Time
	for i := 0; i < n; i++ {
		last = p.Next()
	}
	burst, calm := p.DwellFractions()
	if burst == 0 && calm == 0 {
		t.Fatal("no completed dwells observed")
	}
	if math.Abs(burst-cfg.BurstFraction) > 0.03 {
		t.Errorf("burst dwell fraction %.3f, want %.3f ±0.03", burst, cfg.BurstFraction)
	}
	// Long-run mean arrival rate ≈ Rate despite the modulation.
	gotRate := float64(n) / (float64(last) / 1e9)
	if rel := math.Abs(gotRate-cfg.Rate) / cfg.Rate; rel > 0.05 {
		t.Errorf("long-run rate %.0f/s, want %.0f ±5%%", gotRate, cfg.Rate)
	}
}

// TestMMPPOverdispersion: the point of MMPP is burstiness — windowed arrival
// counts must be overdispersed relative to Poisson (index of dispersion ≫ 1).
func TestMMPPOverdispersion(t *testing.T) {
	dispersion := func(kind Kind) float64 {
		p := New(Config{Kind: kind, Rate: 1e6}, sim.NewRand(23))
		const window = 200 * sim.Microsecond
		counts := make([]float64, 0, 2048)
		cur, limit := 0.0, window
		for i := 0; i < 300000; i++ {
			v := p.Next()
			for v >= limit {
				counts = append(counts, cur)
				cur, limit = 0, limit+window
			}
			cur++
		}
		var sum float64
		for _, c := range counts {
			sum += c
		}
		mean := sum / float64(len(counts))
		var sq float64
		for _, c := range counts {
			sq += (c - mean) * (c - mean)
		}
		return sq / float64(len(counts)) / mean
	}
	pois, mmpp := dispersion(Poisson), dispersion(MMPP)
	if pois > 1.3 {
		t.Errorf("Poisson index of dispersion %.2f, want ≈1", pois)
	}
	if mmpp < 3 {
		t.Errorf("MMPP index of dispersion %.2f, want ≫1 (bursty)", mmpp)
	}
}

// TestDiurnalMeanRate: over whole periods the sinusoid integrates out and the
// mean rate must come back to Rate.
func TestDiurnalMeanRate(t *testing.T) {
	cfg := Config{Kind: Diurnal, Rate: 1e6, Period: 10 * sim.Millisecond, Swing: 0.8}
	p := New(cfg, sim.NewRand(31))
	const periods = 40
	horizon := sim.Time(periods) * cfg.Period
	n := 0
	for {
		if p.Next() > horizon {
			break
		}
		n++
	}
	gotRate := float64(n) / (float64(horizon) / 1e9)
	if rel := math.Abs(gotRate-cfg.Rate) / cfg.Rate; rel > 0.05 {
		t.Errorf("diurnal mean rate %.0f/s over %d periods, want %.0f ±5%%", gotRate, periods, cfg.Rate)
	}
	// And the curve must actually swing: peak-quarter rate vs trough-quarter.
	p2 := New(cfg, sim.NewRand(33))
	var peak, trough int
	for {
		v := p2.Next()
		if v > horizon {
			break
		}
		switch (v % cfg.Period) * 4 / cfg.Period {
		case 0: // rising quarter around sin>0
			peak++
		case 2: // falling quarter around sin<0
			trough++
		}
	}
	if peak <= trough {
		t.Errorf("diurnal curve flat: peak-quarter %d ≤ trough-quarter %d arrivals", peak, trough)
	}
}

// TestFlashCrowd: the rate during the flash window must be ≈FlashPeak× the
// baseline outside it.
func TestFlashCrowd(t *testing.T) {
	cfg := Config{Kind: Flash, Rate: 1e6, FlashAt: 20 * sim.Millisecond,
		FlashLen: 10 * sim.Millisecond, FlashPeak: 10}
	p := New(cfg, sim.NewRand(37))
	var before, during int
	for {
		v := p.Next()
		if v >= cfg.FlashAt+cfg.FlashLen {
			break
		}
		if v < cfg.FlashAt {
			before++
		} else {
			during++
		}
	}
	baseRate := float64(before) / (float64(cfg.FlashAt) / 1e9)
	flashRate := float64(during) / (float64(cfg.FlashLen) / 1e9)
	if rel := math.Abs(baseRate-cfg.Rate) / cfg.Rate; rel > 0.1 {
		t.Errorf("pre-flash rate %.0f/s, want %.0f ±10%%", baseRate, cfg.Rate)
	}
	if ratio := flashRate / baseRate; ratio < 8 || ratio > 12 {
		t.Errorf("flash rate ratio %.1fx, want ≈10x", ratio)
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{"poisson": Poisson, "": Poisson,
		"mmpp": MMPP, "diurnal": Diurnal, "flash": Flash} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded")
	}
}
