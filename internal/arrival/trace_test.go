package arrival

import (
	"os"
	"path/filepath"
	"testing"

	"pmnet/internal/sim"
)

func writeTrace(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "trace.txt")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadTraceFileGolden(t *testing.T) {
	tf, err := ReadTraceFile("testdata/trace_sample.txt")
	if err != nil {
		t.Fatal(err)
	}
	if tf.Len() != 24 {
		t.Fatalf("fixture holds %d arrivals, want 24", tf.Len())
	}
	if tf.times[0] != 1000 || tf.times[23] != 118000 {
		t.Fatalf("fixture endpoints %d..%d, want 1000..118000", tf.times[0], tf.times[23])
	}
}

func TestReadTraceFileSkipsCommentsAndBlanks(t *testing.T) {
	p := writeTrace(t, "# header\n\n10\n  20  \n\n# mid\n30\n")
	tf, err := ReadTraceFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Len() != 3 {
		t.Fatalf("parsed %d arrivals, want 3", tf.Len())
	}
}

func TestReadTraceFileRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":    "10\nnope\n",
		"negative":   "-5\n",
		"decreasing": "10\n20\n15\n",
		"empty":      "# only comments\n\n",
	}
	for name, body := range cases {
		p := writeTrace(t, body)
		if _, err := ReadTraceFile(p); err == nil {
			t.Errorf("%s trace parsed without error", name)
		}
	}
}

// TestClientSplitCoversDisjointly: the strided views of an n-way split
// together replay every recorded arrival exactly once.
func TestClientSplitCoversDisjointly(t *testing.T) {
	tf, err := ReadTraceFile("testdata/trace_sample.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 5, 7} {
		total := 0
		for i := 0; i < n; i++ {
			v := tf.Client(i, n)
			for v.Next() != exhausted {
			}
			total += v.Played()
		}
		if total != tf.Len() {
			t.Errorf("split %d-way replayed %d arrivals, want %d", n, total, tf.Len())
		}
	}
}

// TestReplayStrictlyIncreasing: duplicate recorded timestamps are nudged
// forward so the driver always sees strictly increasing arrival times.
func TestReplayStrictlyIncreasing(t *testing.T) {
	tf, err := ReadTraceFile("testdata/trace_sample.txt")
	if err != nil {
		t.Fatal(err)
	}
	v := tf.Client(0, 1)
	last := sim.Time(-1)
	for {
		tm := v.Next()
		if tm == exhausted {
			break
		}
		if tm <= last {
			t.Fatalf("arrival %d not after previous %d", tm, last)
		}
		last = tm
	}
}

func TestReplayExhaustionIsSticky(t *testing.T) {
	p := writeTrace(t, "5\n")
	tf, err := ReadTraceFile(p)
	if err != nil {
		t.Fatal(err)
	}
	v := tf.Client(0, 2) // client 0 of 2 owns the single arrival
	if got := v.Next(); got != 5 {
		t.Fatalf("first arrival %d, want 5", got)
	}
	for i := 0; i < 3; i++ {
		if got := v.Next(); got != exhausted {
			t.Fatalf("drained replay returned %d, want exhausted sentinel", got)
		}
	}
	v1 := tf.Client(1, 2) // client 1 owns nothing
	if got := v1.Next(); got != exhausted {
		t.Fatalf("empty view returned %d, want exhausted sentinel", got)
	}
}

func TestClientSplitPanicsOnBadIndex(t *testing.T) {
	tf := &TraceFile{times: []sim.Time{1}}
	for _, c := range []struct{ i, n int }{{0, 0}, {-1, 2}, {2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Client(%d, %d) did not panic", c.i, c.n)
				}
			}()
			tf.Client(c.i, c.n)
		}()
	}
}
