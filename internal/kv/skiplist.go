package kv

import (
	"bytes"
	"fmt"

	"pmnet/internal/pmobj"
)

// Skiplist is an ordered skip list, the analogue of PMDK's skiplist_map
// example. Tower heights are derived deterministically from the key hash so
// the structure is identical across crash/replay runs.
//
// Root layout:
//
//	+0  tag | +8 count | +16 headOff
//
// Node layout (class 256):
//
//	+0  kOff | +8 kLen | +16 vOff | +24 vLen | +32 level | +40 next[level]
const (
	slTag      = 0
	slCount    = 8
	slHead     = 16
	slRootSize = 24

	snKOff  = 0
	snKLen  = 8
	snVOff  = 16
	snVLen  = 24
	snLevel = 32
	snNext  = 40

	slMaxLevel = 16
)

func slNodeSize(level int) int { return snNext + 8*level }

// Skiplist implements Engine.
type Skiplist struct {
	a    *pmobj.Arena
	root uint64
}

// OpenSkiplist opens or creates a skip list on a.
func OpenSkiplist(a *pmobj.Arena) (Engine, error) {
	if root := a.Root(); root != 0 {
		if err := checkTag(a, root, tagSkiplist, "skiplist"); err != nil {
			return nil, err
		}
		return &Skiplist{a: a, root: root}, nil
	}
	var root uint64
	err := a.Update(func(tx *pmobj.Tx) error {
		r, err := tx.Alloc(slRootSize)
		if err != nil {
			return err
		}
		head, err := tx.Alloc(slNodeSize(slMaxLevel))
		if err != nil {
			return err
		}
		tx.WriteBytes(head, make([]byte, slNodeSize(slMaxLevel)))
		tx.WriteU64(head+snLevel, slMaxLevel)
		tx.WriteU64(r+slTag, tagSkiplist)
		tx.WriteU64(r+slCount, 0)
		tx.WriteU64(r+slHead, head)
		tx.SetRoot(r)
		root = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Skiplist{a: a, root: root}, nil
}

// Name implements Engine.
func (s *Skiplist) Name() string { return "skiplist" }

// Len implements Engine.
func (s *Skiplist) Len() int { return int(s.a.ReadU64(s.root + slCount)) }

// levelFor derives the deterministic tower height of a key.
func levelFor(key []byte) int {
	h := fnv64(key)
	level := 1
	for h&1 == 1 && level < slMaxLevel {
		level++
		h >>= 1
	}
	return level
}

func (s *Skiplist) nodeKey(n uint64) []byte {
	return getString(s.a, s.a.ReadU64(n+snKOff), s.a.ReadU64(n+snKLen))
}

// findUpdate locates key, filling update[i] with the rightmost node at level
// i whose key precedes key. Returns the candidate node (successor at level
// 0) or 0.
func (s *Skiplist) findUpdate(key []byte, update *[slMaxLevel]uint64) uint64 {
	head := s.a.ReadU64(s.root + slHead)
	x := head
	for i := slMaxLevel - 1; i >= 0; i-- {
		for {
			next := s.a.ReadU64(x + snNext + uint64(i)*8)
			if next == 0 || bytes.Compare(s.nodeKey(next), key) >= 0 {
				break
			}
			x = next
		}
		update[i] = x
	}
	cand := s.a.ReadU64(x + snNext)
	if cand != 0 && bytes.Equal(s.nodeKey(cand), key) {
		return cand
	}
	return 0
}

// Put implements Engine.
func (s *Skiplist) Put(key, value []byte) error {
	var update [slMaxLevel]uint64
	node := s.findUpdate(key, &update)
	return s.a.Update(func(tx *pmobj.Tx) error {
		vOff, err := putString(tx, value)
		if err != nil {
			return err
		}
		if node != 0 {
			freeString(tx, s.a.ReadU64(node+snVOff), s.a.ReadU64(node+snVLen))
			tx.WriteU64(node+snVOff, vOff)
			tx.WriteU64(node+snVLen, uint64(len(value)))
			return nil
		}
		kOff, err := putString(tx, key)
		if err != nil {
			return err
		}
		level := levelFor(key)
		n, err := tx.Alloc(slNodeSize(level))
		if err != nil {
			return err
		}
		tx.WriteU64(n+snKOff, kOff)
		tx.WriteU64(n+snKLen, uint64(len(key)))
		tx.WriteU64(n+snVOff, vOff)
		tx.WriteU64(n+snVLen, uint64(len(value)))
		tx.WriteU64(n+snLevel, uint64(level))
		for i := 0; i < level; i++ {
			pred := update[i]
			succ := s.a.ReadU64(pred + snNext + uint64(i)*8)
			tx.WriteU64(n+snNext+uint64(i)*8, succ)
			tx.WriteU64(pred+snNext+uint64(i)*8, n)
		}
		tx.WriteU64(s.root+slCount, s.a.ReadU64(s.root+slCount)+1)
		return nil
	})
}

// Get implements Engine.
func (s *Skiplist) Get(key []byte) ([]byte, bool) {
	var update [slMaxLevel]uint64
	node := s.findUpdate(key, &update)
	if node == 0 {
		return nil, false
	}
	return getString(s.a, s.a.ReadU64(node+snVOff), s.a.ReadU64(node+snVLen)), true
}

// Delete implements Engine.
func (s *Skiplist) Delete(key []byte) (bool, error) {
	var update [slMaxLevel]uint64
	node := s.findUpdate(key, &update)
	if node == 0 {
		return false, nil
	}
	err := s.a.Update(func(tx *pmobj.Tx) error {
		level := int(s.a.ReadU64(node + snLevel))
		for i := 0; i < level; i++ {
			pred := update[i]
			if s.a.ReadU64(pred+snNext+uint64(i)*8) == node {
				tx.WriteU64(pred+snNext+uint64(i)*8, s.a.ReadU64(node+snNext+uint64(i)*8))
			}
		}
		freeString(tx, s.a.ReadU64(node+snKOff), s.a.ReadU64(node+snKLen))
		freeString(tx, s.a.ReadU64(node+snVOff), s.a.ReadU64(node+snVLen))
		tx.Free(node, slNodeSize(level))
		tx.WriteU64(s.root+slCount, s.a.ReadU64(s.root+slCount)-1)
		return nil
	})
	return err == nil, err
}

// Keys implements Engine (ascending order).
func (s *Skiplist) Keys() [][]byte {
	var out [][]byte
	head := s.a.ReadU64(s.root + slHead)
	for n := s.a.ReadU64(head + snNext); n != 0; n = s.a.ReadU64(n + snNext) {
		out = append(out, s.nodeKey(n))
	}
	return out
}

// Verify implements Engine: ascending level-0 order, count agreement, and
// tower consistency (every level-i list is a subsequence of level 0 in the
// same order).
func (s *Skiplist) Verify() error {
	head := s.a.ReadU64(s.root + slHead)
	var prev []byte
	count := 0
	pos := map[uint64]int{}
	for n := s.a.ReadU64(head + snNext); n != 0; n = s.a.ReadU64(n + snNext) {
		k := s.nodeKey(n)
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			return fmt.Errorf("skiplist: order violation at %q", k)
		}
		lvl := int(s.a.ReadU64(n + snLevel))
		if want := levelFor(k); lvl != want {
			return fmt.Errorf("skiplist: node %q level %d, want deterministic %d", k, lvl, want)
		}
		pos[n] = count
		prev = k
		count++
		if count > 1<<22 {
			return fmt.Errorf("skiplist: level-0 cycle")
		}
	}
	if count != s.Len() {
		return fmt.Errorf("skiplist: count %d, list holds %d", s.Len(), count)
	}
	for i := 1; i < slMaxLevel; i++ {
		last := -1
		for n := s.a.ReadU64(head + snNext + uint64(i)*8); n != 0; n = s.a.ReadU64(n + snNext + uint64(i)*8) {
			p, ok := pos[n]
			if !ok {
				return fmt.Errorf("skiplist: level %d references a node absent from level 0", i)
			}
			if p <= last {
				return fmt.Errorf("skiplist: level %d order violation", i)
			}
			if int(s.a.ReadU64(n+snLevel)) <= i {
				return fmt.Errorf("skiplist: node on level %d with height %d", i, s.a.ReadU64(n+snLevel))
			}
			last = p
		}
	}
	return nil
}
