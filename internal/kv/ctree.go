package kv

import (
	"encoding/binary"
	"fmt"

	"pmnet/internal/pmobj"
)

// CTree is a crit-bit (PATRICIA) tree, the analogue of PMDK's ctree_map
// example engine.
//
// Keys are stored internally with an 8-byte big-endian length prefix
// ("ikey"), which guarantees no stored key is a strict prefix of another —
// the classic crit-bit prefix hazard for variable-length binary keys.
//
// Root object: +0 tag | +8 count | +16 treeRoot (tagged pointer).
//
// Pointers into the tree carry a type tag in bit 0 (arena offsets are
// ≥16-byte aligned): 0 = leaf, 1 = internal.
//
// Leaf (32 B):     +0 ikOff | +8 ikLen | +16 vOff | +24 vLen
// Internal (32 B): +0 byteIdx | +8 otherBits | +16 child0 | +24 child1
const (
	ctTag      = 0
	ctCount    = 8
	ctRoot     = 16
	ctRootSize = 24

	clKOff = 0
	clKLen = 8
	clVOff = 16
	clVLen = 24
	clSize = 32

	ciByte  = 0
	ciBits  = 8
	ciChild = 16
	ciSize  = 32
)

func isInternal(p uint64) bool     { return p&1 == 1 }
func asInternal(off uint64) uint64 { return off | 1 }
func offOf(p uint64) uint64        { return p &^ 1 }

// CTree implements Engine.
type CTree struct {
	a    *pmobj.Arena
	root uint64
}

// OpenCTree opens or creates a crit-bit tree on a.
func OpenCTree(a *pmobj.Arena) (Engine, error) {
	if root := a.Root(); root != 0 {
		if err := checkTag(a, root, tagCTree, "ctree"); err != nil {
			return nil, err
		}
		return &CTree{a: a, root: root}, nil
	}
	var root uint64
	err := a.Update(func(tx *pmobj.Tx) error {
		r, err := tx.Alloc(ctRootSize)
		if err != nil {
			return err
		}
		tx.WriteU64(r+ctTag, tagCTree)
		tx.WriteU64(r+ctCount, 0)
		tx.WriteU64(r+ctRoot, 0)
		tx.SetRoot(r)
		root = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &CTree{a: a, root: root}, nil
}

// Name implements Engine.
func (c *CTree) Name() string { return "ctree" }

// Len implements Engine.
func (c *CTree) Len() int { return int(c.a.ReadU64(c.root + ctCount)) }

func (c *CTree) ru(off uint64) uint64 { return c.a.TxReadU64(off) }

// ikey builds the length-prefixed internal key.
func ikey(key []byte) []byte {
	out := make([]byte, 8+len(key))
	binary.BigEndian.PutUint64(out, uint64(len(key)))
	copy(out[8:], key)
	return out
}

func (c *CTree) leafKey(leaf uint64) []byte {
	return getString(c.a, c.ru(leaf+clKOff), c.ru(leaf+clKLen))
}

// byteAt returns ik[idx] or 0 beyond the end.
func byteAt(ik []byte, idx uint64) byte {
	if idx < uint64(len(ik)) {
		return ik[idx]
	}
	return 0
}

// direction picks the child for ik at an internal node with (byteIdx,
// otherBits): 1 when the crit bit is set.
func direction(ik []byte, byteIdx, otherBits uint64) int {
	cb := byteAt(ik, byteIdx)
	return int((1 + (otherBits | uint64(cb))) >> 8)
}

// walkToLeaf descends from the (tagged) root pointer to the best-matching
// leaf, returning its tagged pointer (0 when the tree is empty).
func (c *CTree) walkToLeaf(ik []byte) uint64 {
	p := c.ru(c.root + ctRoot)
	if p == 0 {
		return 0
	}
	for isInternal(p) {
		n := offOf(p)
		d := direction(ik, c.ru(n+ciByte), c.ru(n+ciBits))
		p = c.ru(n + ciChild + uint64(d)*8)
	}
	return p
}

// Get implements Engine.
func (c *CTree) Get(key []byte) ([]byte, bool) {
	ik := ikey(key)
	p := c.walkToLeaf(ik)
	if p == 0 {
		return nil, false
	}
	leaf := offOf(p)
	if string(c.leafKey(leaf)) != string(ik) {
		return nil, false
	}
	return getString(c.a, c.ru(leaf+clVOff), c.ru(leaf+clVLen)), true
}

// Put implements Engine.
func (c *CTree) Put(key, value []byte) error {
	ik := ikey(key)
	return c.a.Update(func(tx *pmobj.Tx) error {
		vOff, err := putString(tx, value)
		if err != nil {
			return err
		}
		best := c.walkToLeaf(ik)
		if best == 0 {
			// Empty tree: a single leaf.
			leaf, err := c.newLeaf(tx, ik, vOff, uint64(len(value)))
			if err != nil {
				return err
			}
			tx.WriteU64(c.root+ctRoot, leaf)
			tx.WriteU64(c.root+ctCount, 1)
			return nil
		}
		bk := c.leafKey(offOf(best))
		// Find the first differing byte between ik and bk.
		var diffByte uint64
		var diffBits uint64
		found := false
		maxLen := len(ik)
		if len(bk) > maxLen {
			maxLen = len(bk)
		}
		for i := 0; i < maxLen; i++ {
			a, b := byteAt(ik, uint64(i)), byteAt(bk, uint64(i))
			if a != b {
				diffByte = uint64(i)
				x := uint64(a ^ b)
				// Isolate the most significant differing bit.
				x |= x >> 1
				x |= x >> 2
				x |= x >> 4
				crit := x &^ (x >> 1)
				diffBits = ^crit & 0xFF // djb's "otherbits"
				found = true
				break
			}
		}
		if !found {
			// Same key: overwrite value.
			leaf := offOf(best)
			freeString(tx, c.ru(leaf+clVOff), c.ru(leaf+clVLen))
			tx.WriteU64(leaf+clVOff, vOff)
			tx.WriteU64(leaf+clVLen, uint64(len(value)))
			return nil
		}
		newDir := direction(ik, diffByte, diffBits)

		// Insert point: walk from the root until the node's position
		// exceeds (diffByte, diffBits) in crit-bit order.
		where := c.root + ctRoot // address of the pointer to rewrite
		for {
			p := c.ru(where)
			if !isInternal(p) {
				break
			}
			n := offOf(p)
			nb, nbits := c.ru(n+ciByte), c.ru(n+ciBits)
			if nb > diffByte || (nb == diffByte && nbits > diffBits) {
				break
			}
			d := direction(ik, nb, nbits)
			where = n + ciChild + uint64(d)*8
		}

		leaf, err := c.newLeaf(tx, ik, vOff, uint64(len(value)))
		if err != nil {
			return err
		}
		inner, err := tx.Alloc(ciSize)
		if err != nil {
			return err
		}
		tx.WriteU64(inner+ciByte, diffByte)
		tx.WriteU64(inner+ciBits, diffBits)
		tx.WriteU64(inner+ciChild+uint64(newDir)*8, leaf)
		tx.WriteU64(inner+ciChild+uint64(1-newDir)*8, c.ru(where))
		tx.WriteU64(where, asInternal(inner))
		tx.WriteU64(c.root+ctCount, c.ru(c.root+ctCount)+1)
		return nil
	})
}

func (c *CTree) newLeaf(tx *pmobj.Tx, ik []byte, vOff, vLen uint64) (uint64, error) {
	kOff, err := putString(tx, ik)
	if err != nil {
		return 0, err
	}
	leaf, err := tx.Alloc(clSize)
	if err != nil {
		return 0, err
	}
	tx.WriteU64(leaf+clKOff, kOff)
	tx.WriteU64(leaf+clKLen, uint64(len(ik)))
	tx.WriteU64(leaf+clVOff, vOff)
	tx.WriteU64(leaf+clVLen, vLen)
	return leaf, nil // leaves are untagged (bit 0 clear)
}

// Delete implements Engine.
func (c *CTree) Delete(key []byte) (bool, error) {
	ik := ikey(key)
	p := c.a.ReadU64(c.root + ctRoot)
	if p == 0 {
		return false, nil
	}
	// Track the pointer to the current node and the enclosing internal node
	// (whose OTHER child survives the unlink).
	where := c.root + ctRoot
	var parent uint64 // internal node offset, 0 at the root
	var parentDir int
	for isInternal(p) {
		n := offOf(p)
		d := direction(ik, c.ru(n+ciByte), c.ru(n+ciBits))
		parent, parentDir = n, d
		where = n + ciChild + uint64(d)*8
		p = c.ru(where)
	}
	leaf := offOf(p)
	if string(c.leafKey(leaf)) != string(ik) {
		return false, nil
	}
	_ = where
	err := c.a.Update(func(tx *pmobj.Tx) error {
		freeString(tx, c.ru(leaf+clKOff), c.ru(leaf+clKLen))
		freeString(tx, c.ru(leaf+clVOff), c.ru(leaf+clVLen))
		tx.Free(leaf, clSize)
		if parent == 0 {
			tx.WriteU64(c.root+ctRoot, 0)
		} else {
			sibling := c.ru(parent + ciChild + uint64(1-parentDir)*8)
			// Find the pointer to `parent` to replace it with the sibling.
			gwhere := c.root + ctRoot
			q := c.ru(gwhere)
			for offOf(q) != parent {
				n := offOf(q)
				d := direction(ik, c.ru(n+ciByte), c.ru(n+ciBits))
				gwhere = n + ciChild + uint64(d)*8
				q = c.ru(gwhere)
			}
			tx.WriteU64(gwhere, sibling)
			tx.Free(parent, ciSize)
		}
		tx.WriteU64(c.root+ctCount, c.ru(c.root+ctCount)-1)
		return nil
	})
	return err == nil, err
}

// Keys implements Engine. Crit-bit order over ikeys sorts first by length,
// then lexicographically.
func (c *CTree) Keys() [][]byte {
	var out [][]byte
	var walk func(p uint64)
	walk = func(p uint64) {
		if p == 0 {
			return
		}
		if isInternal(p) {
			n := offOf(p)
			walk(c.ru(n + ciChild))
			walk(c.ru(n + ciChild + 8))
			return
		}
		ik := c.leafKey(offOf(p))
		out = append(out, ik[8:])
	}
	walk(c.a.ReadU64(c.root + ctRoot))
	return out
}

// Verify implements Engine: crit-bit positions strictly increase downward,
// every leaf is reachable via the directions its own key dictates, and the
// count agrees.
func (c *CTree) Verify() error {
	count := 0
	var walk func(p uint64, minByte, minBits uint64, has bool) error
	walk = func(p uint64, minByte, minBits uint64, has bool) error {
		if p == 0 {
			return nil
		}
		if !isInternal(p) {
			count++
			return nil
		}
		n := offOf(p)
		nb, nbits := c.ru(n+ciByte), c.ru(n+ciBits)
		if has && (nb < minByte || (nb == minByte && nbits <= minBits)) {
			return fmt.Errorf("ctree: crit-bit order violation at byte %d", nb)
		}
		if err := walk(c.ru(n+ciChild), nb, nbits, true); err != nil {
			return err
		}
		return walk(c.ru(n+ciChild+8), nb, nbits, true)
	}
	if err := walk(c.a.ReadU64(c.root+ctRoot), 0, 0, false); err != nil {
		return err
	}
	if count != c.Len() {
		return fmt.Errorf("ctree: count %d, tree holds %d", c.Len(), count)
	}
	// Every key must be findable through its own directions.
	for _, k := range c.Keys() {
		if _, ok := c.Get(k); !ok {
			return fmt.Errorf("ctree: key %q unreachable via lookup", k)
		}
	}
	return nil
}
