package kv

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"pmnet/internal/pmobj"
	"pmnet/internal/sim"
)

const arenaSize = 8 << 20

// forEachEngine runs f once per engine on a fresh arena.
func forEachEngine(t *testing.T, f func(t *testing.T, e Engine, a *pmobj.Arena, reopen func() Engine)) {
	t.Helper()
	for _, name := range EngineNames {
		name := name
		t.Run(name, func(t *testing.T) {
			a := NewArena(arenaSize)
			e, err := Factories[name](a)
			if err != nil {
				t.Fatal(err)
			}
			reopen := func() Engine {
				if err := a.Reopen(); err != nil {
					t.Fatal(err)
				}
				e2, err := Factories[name](a)
				if err != nil {
					t.Fatal(err)
				}
				return e2
			}
			f(t, e, a, reopen)
		})
	}
}

func mustPut(t *testing.T, e Engine, k, v string) {
	t.Helper()
	if err := e.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("%s: Put(%q): %v", e.Name(), k, err)
	}
}

func mustGet(t *testing.T, e Engine, k, want string) {
	t.Helper()
	got, ok := e.Get([]byte(k))
	if !ok {
		t.Fatalf("%s: Get(%q) missing", e.Name(), k)
	}
	if string(got) != want {
		t.Fatalf("%s: Get(%q) = %q, want %q", e.Name(), k, got, want)
	}
}

func mustMiss(t *testing.T, e Engine, k string) {
	t.Helper()
	if _, ok := e.Get([]byte(k)); ok {
		t.Fatalf("%s: Get(%q) unexpectedly present", e.Name(), k)
	}
}

func mustVerify(t *testing.T, e Engine) {
	t.Helper()
	if err := e.Verify(); err != nil {
		t.Fatalf("%s: Verify: %v", e.Name(), err)
	}
}

func TestEngineBasicOps(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine, a *pmobj.Arena, reopen func() Engine) {
		mustMiss(t, e, "absent")
		mustPut(t, e, "alpha", "1")
		mustPut(t, e, "beta", "2")
		mustPut(t, e, "gamma", "3")
		mustGet(t, e, "alpha", "1")
		mustGet(t, e, "beta", "2")
		mustGet(t, e, "gamma", "3")
		if e.Len() != 3 {
			t.Fatalf("Len = %d", e.Len())
		}
		// Overwrite.
		mustPut(t, e, "beta", "two")
		mustGet(t, e, "beta", "two")
		if e.Len() != 3 {
			t.Fatalf("Len after overwrite = %d", e.Len())
		}
		// Delete.
		ok, err := e.Delete([]byte("alpha"))
		if err != nil || !ok {
			t.Fatalf("Delete: %v %v", ok, err)
		}
		mustMiss(t, e, "alpha")
		if ok, _ := e.Delete([]byte("alpha")); ok {
			t.Fatal("double delete succeeded")
		}
		if e.Len() != 2 {
			t.Fatalf("Len after delete = %d", e.Len())
		}
		mustVerify(t, e)
	})
}

func TestEngineBinaryAndEdgeKeys(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine, a *pmobj.Arena, reopen func() Engine) {
		keys := []string{
			"", "a", "ab", "abc", "b",
			"a\x00", "a\x00b", "\x00", "\x00\x00", "\xff\xff",
			"prefix", "prefixlonger",
		}
		for i, k := range keys {
			mustPut(t, e, k, fmt.Sprintf("v%d", i))
		}
		for i, k := range keys {
			mustGet(t, e, k, fmt.Sprintf("v%d", i))
		}
		if e.Len() != len(keys) {
			t.Fatalf("Len = %d, want %d", e.Len(), len(keys))
		}
		mustVerify(t, e)
		// Delete the prefix-hazard keys specifically.
		for _, k := range []string{"a", "a\x00", "prefix", ""} {
			if ok, err := e.Delete([]byte(k)); !ok || err != nil {
				t.Fatalf("Delete(%q): %v %v", k, ok, err)
			}
		}
		mustMiss(t, e, "a")
		mustGet(t, e, "ab", "v2")
		mustGet(t, e, "a\x00b", "v6")
		mustGet(t, e, "prefixlonger", "v11")
		mustVerify(t, e)
	})
}

func TestEngineEmptyValue(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine, a *pmobj.Arena, reopen func() Engine) {
		mustPut(t, e, "k", "")
		v, ok := e.Get([]byte("k"))
		if !ok || len(v) != 0 {
			t.Fatalf("empty value round trip: %q %v", v, ok)
		}
	})
}

func TestEngineBulkAndOrder(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine, a *pmobj.Arena, reopen func() Engine) {
		r := sim.NewRand(42)
		want := map[string]string{}
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("key-%04d", r.Intn(300))
			v := fmt.Sprintf("val-%d", i)
			mustPut(t, e, k, v)
			want[k] = v
		}
		for k, v := range want {
			mustGet(t, e, k, v)
		}
		if e.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", e.Len(), len(want))
		}
		mustVerify(t, e)

		keys := e.Keys()
		if len(keys) != len(want) {
			t.Fatalf("Keys() returned %d, want %d", len(keys), len(want))
		}
		set := map[string]bool{}
		for _, k := range keys {
			set[string(k)] = true
		}
		for k := range want {
			if !set[k] {
				t.Fatalf("Keys() missing %q", k)
			}
		}
		// Ordered engines iterate in sorted order. (All our keys here have
		// equal length, so even the ctree's length-first order is lexical.)
		switch e.Name() {
		case "btree", "rbtree", "skiplist", "ctree":
			if !sort.SliceIsSorted(keys, func(i, j int) bool {
				return bytes.Compare(keys[i], keys[j]) < 0
			}) {
				t.Fatalf("%s: Keys() not sorted", e.Name())
			}
		}
	})
}

func TestEngineBulkDelete(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine, a *pmobj.Arena, reopen func() Engine) {
		r := sim.NewRand(7)
		live := map[string]string{}
		for i := 0; i < 400; i++ {
			k := fmt.Sprintf("k%03d", i)
			mustPut(t, e, k, "v")
			live[k] = "v"
		}
		// Random interleaved deletes and verifies.
		for i := 0; i < 350; i++ {
			k := fmt.Sprintf("k%03d", r.Intn(400))
			_, exists := live[k]
			ok, err := e.Delete([]byte(k))
			if err != nil {
				t.Fatalf("Delete(%q): %v", k, err)
			}
			if ok != exists {
				t.Fatalf("Delete(%q) = %v, map says %v", k, ok, exists)
			}
			delete(live, k)
			if i%50 == 0 {
				mustVerify(t, e)
			}
		}
		if e.Len() != len(live) {
			t.Fatalf("Len = %d, want %d", e.Len(), len(live))
		}
		for k := range live {
			mustGet(t, e, k, "v")
		}
		mustVerify(t, e)
	})
}

func TestEngineSurvivesPowerFail(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine, a *pmobj.Arena, reopen func() Engine) {
		for i := 0; i < 100; i++ {
			mustPut(t, e, fmt.Sprintf("key%03d", i), fmt.Sprintf("val%03d", i))
		}
		_, _ = e.Delete([]byte("key050"))
		a.Device().PowerFail()
		e2 := reopen()
		if e2.Len() != 99 {
			t.Fatalf("Len after power fail = %d", e2.Len())
		}
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("key%03d", i)
			if i == 50 {
				mustMiss(t, e2, k)
				continue
			}
			mustGet(t, e2, k, fmt.Sprintf("val%03d", i))
		}
		mustVerify(t, e2)
	})
}

// TestEngineTornCommitAtomicity crashes every engine inside commit at each
// stage and checks the op is all-or-nothing.
func TestEngineTornCommitAtomicity(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine, a *pmobj.Arena, reopen func() Engine) {
		for i := 0; i < 50; i++ {
			mustPut(t, e, fmt.Sprintf("base%02d", i), "v")
		}
		for _, stage := range []int{1, 2, 3} {
			key := fmt.Sprintf("torn-stage%d", stage)
			a.CrashHook = func(s int) bool { return s == stage }
			_ = e.Put([]byte(key), []byte("tv"))
			a.CrashHook = nil
			a.Device().PowerFail()
			e2 := reopen()
			_, present := e2.Get([]byte(key))
			if stage == 1 && present {
				t.Fatalf("stage 1 torn commit became visible for %q", key)
			}
			if stage >= 2 && !present {
				t.Fatalf("stage %d committed op lost for %q", stage, key)
			}
			mustVerify(t, e2)
			e = e2
		}
	})
}

// TestEngineOracle drives each engine against a map with a deterministic
// random op mix (a heavier-weight cousin of a quick.Check, with structural
// verification sprinkled in).
func TestEngineOracle(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine, a *pmobj.Arena, reopen func() Engine) {
		r := sim.NewRand(uint64(len(e.Name())) * 77)
		oracle := map[string]string{}
		for step := 0; step < 3000; step++ {
			k := fmt.Sprintf("k%03d", r.Intn(250))
			switch r.Intn(10) {
			case 0, 1, 2, 3, 4: // put
				v := fmt.Sprintf("v%d", step)
				mustPut(t, e, k, v)
				oracle[k] = v
			case 5, 6: // delete
				_, want := oracle[k]
				ok, err := e.Delete([]byte(k))
				if err != nil || ok != want {
					t.Fatalf("step %d: Delete(%q) = %v,%v want %v", step, k, ok, err, want)
				}
				delete(oracle, k)
			default: // get
				v, ok := e.Get([]byte(k))
				want, wok := oracle[k]
				if ok != wok || (ok && string(v) != want) {
					t.Fatalf("step %d: Get(%q) = %q,%v want %q,%v", step, k, v, ok, want, wok)
				}
			}
			if step%500 == 499 {
				mustVerify(t, e)
				if e.Len() != len(oracle) {
					t.Fatalf("step %d: Len %d vs oracle %d", step, e.Len(), len(oracle))
				}
			}
		}
		// Power-fail at the end: all committed state must survive.
		a.Device().PowerFail()
		e2 := reopen()
		for k, v := range oracle {
			mustGet(t, e2, k, v)
		}
		if e2.Len() != len(oracle) {
			t.Fatalf("post-crash Len %d vs %d", e2.Len(), len(oracle))
		}
		mustVerify(t, e2)
	})
}

// TestEngineRandomCrashPoints interleaves ops with torn commits at random
// stages, maintaining the oracle according to commit semantics.
func TestEngineRandomCrashPoints(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine, a *pmobj.Arena, reopen func() Engine) {
		r := sim.NewRand(uint64(len(e.Name())) * 1234)
		oracle := map[string]string{}
		for step := 0; step < 400; step++ {
			k := fmt.Sprintf("k%02d", r.Intn(60))
			v := fmt.Sprintf("v%d", step)
			if r.Intn(5) == 0 {
				// Torn commit: stage 1 discards, stages 2-3 commit.
				stage := 1 + r.Intn(3)
				a.CrashHook = func(s int) bool { return s == stage }
				isDelete := r.Intn(3) == 0
				var existed bool
				if isDelete {
					_, existed = oracle[k]
					_, _ = e.Delete([]byte(k))
				} else {
					_ = e.Put([]byte(k), []byte(v))
				}
				a.CrashHook = nil
				a.Device().PowerFail()
				e = reopen()
				if stage >= 2 {
					if isDelete {
						if existed {
							delete(oracle, k)
						}
					} else {
						oracle[k] = v
					}
				}
			} else {
				mustPut(t, e, k, v)
				oracle[k] = v
			}
		}
		for k, v := range oracle {
			mustGet(t, e, k, v)
		}
		if e.Len() != len(oracle) {
			t.Fatalf("Len %d vs oracle %d", e.Len(), len(oracle))
		}
		mustVerify(t, e)
	})
}

func TestFactoryRejectsForeignArena(t *testing.T) {
	a := NewArena(1 << 20)
	if _, err := OpenHashmap(a); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBTree(a); err == nil {
		t.Fatal("btree opened a hashmap arena")
	}
}

func TestEngineNames(t *testing.T) {
	for _, name := range EngineNames {
		a := NewArena(1 << 20)
		e, err := Factories[name](a)
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() != name {
			t.Fatalf("engine %s reports name %s", name, e.Name())
		}
	}
}
