package kv

import "pmnet/internal/unwrap"

// As reports whether e — or any engine it decorates, found by walking the
// `Unwrap() Engine` chain — provides capability T, returning the outermost
// provider. Probe optional engine interfaces through this rather than a
// direct type assertion so a future instrumenting/validating wrapper cannot
// silently hide them (the failure mode server.As exists to prevent for
// handlers).
func As[T any](e Engine) (T, bool) { return unwrap.As[T](e) }