package kv

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"pmnet/internal/sim"
)

var orderedEngines = []string{"btree", "ctree", "rbtree", "skiplist"}

func loadedEngine(t *testing.T, name string, n int) Engine {
	t.Helper()
	a := NewArena(16 << 20)
	e, err := Factories[name](a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// Fixed-width keys: every engine's iteration order is byte order.
		if err := e.Put([]byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("val%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestScanOrderedEngines(t *testing.T) {
	for _, name := range orderedEngines {
		name := name
		t.Run(name, func(t *testing.T) {
			e := loadedEngine(t, name, 200)
			pairs, err := Scan(e, []byte("key00050"), 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) != 10 {
				t.Fatalf("got %d pairs", len(pairs))
			}
			for i, p := range pairs {
				wantK := fmt.Sprintf("key%05d", 50+i)
				if string(p.Key) != wantK || string(p.Value) != fmt.Sprintf("val%05d", 50+i) {
					t.Fatalf("pair %d = %q→%q, want %q", i, p.Key, p.Value, wantK)
				}
			}
		})
	}
}

func TestScanStartAtAbsentKey(t *testing.T) {
	// The start bound need not be present: scanning from a deleted key
	// yields its successor. (Equal-length start keeps the ctree's
	// length-first order aligned with byte order.)
	for _, name := range orderedEngines {
		e := loadedEngine(t, name, 20)
		if ok, err := e.Delete([]byte("key00006")); !ok || err != nil {
			t.Fatalf("%s: delete: %v %v", name, ok, err)
		}
		pairs, err := Scan(e, []byte("key00006"), 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(pairs) != 3 || string(pairs[0].Key) != "key00007" {
			t.Fatalf("%s: pairs %v", name, pairs)
		}
	}
}

func TestScanPastEnd(t *testing.T) {
	for _, name := range orderedEngines {
		e := loadedEngine(t, name, 10)
		pairs, err := Scan(e, []byte("key00008"), 100)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(pairs) != 2 {
			t.Fatalf("%s: got %d pairs, want 2 (truncated at end)", name, len(pairs))
		}
		if pairs, _ = Scan(e, []byte("zzzzzzzz"), 5); len(pairs) != 0 {
			t.Fatalf("%s: scan past the last key returned %d", name, len(pairs))
		}
	}
}

func TestScanEmptyAndZeroLimit(t *testing.T) {
	for _, name := range orderedEngines {
		a := NewArena(1 << 20)
		e, _ := Factories[name](a)
		if pairs, err := Scan(e, nil, 10); err != nil || len(pairs) != 0 {
			t.Fatalf("%s: empty engine scan: %v %v", name, pairs, err)
		}
		full := loadedEngine(t, name, 5)
		if pairs, err := Scan(full, nil, 0); err != nil || pairs != nil {
			t.Fatalf("%s: zero limit: %v %v", name, pairs, err)
		}
	}
}

func TestScanHashmapUnordered(t *testing.T) {
	e := loadedEngine(t, "hashmap", 10)
	if _, err := Scan(e, nil, 5); !errors.Is(err, ErrUnordered) {
		t.Fatalf("hashmap scan err = %v, want ErrUnordered", err)
	}
}

// Property: for random fixed-width keyspaces, Scan(start, k) equals the
// sorted model's answer, on every ordered engine.
func TestQuickScanMatchesModel(t *testing.T) {
	for _, name := range orderedEngines {
		name := name
		t.Run(name, func(t *testing.T) {
			r := sim.NewRand(uint64(len(name)))
			a := NewArena(16 << 20)
			e, err := Factories[name](a)
			if err != nil {
				t.Fatal(err)
			}
			model := map[string]string{}
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("k%04d", r.Intn(500))
				v := fmt.Sprintf("v%d", i)
				if err := e.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			}
			keys := make([]string, 0, len(model))
			for k := range model {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for trial := 0; trial < 50; trial++ {
				start := fmt.Sprintf("k%04d", r.Intn(520))
				limit := r.Intn(20) + 1
				got, err := Scan(e, []byte(start), limit)
				if err != nil {
					t.Fatal(err)
				}
				idx := sort.SearchStrings(keys, start)
				want := keys[idx:]
				if len(want) > limit {
					want = want[:limit]
				}
				if len(got) != len(want) {
					t.Fatalf("scan(%q,%d): %d pairs, want %d", start, limit, len(got), len(want))
				}
				for i := range want {
					if !bytes.Equal(got[i].Key, []byte(want[i])) || string(got[i].Value) != model[want[i]] {
						t.Fatalf("scan(%q,%d)[%d] = %q, want %q", start, limit, i, got[i].Key, want[i])
					}
				}
			}
		})
	}
}

func TestScanAfterDeletes(t *testing.T) {
	for _, name := range orderedEngines {
		e := loadedEngine(t, name, 30)
		for i := 0; i < 30; i += 2 {
			if ok, err := e.Delete([]byte(fmt.Sprintf("key%05d", i))); !ok || err != nil {
				t.Fatalf("%s: delete: %v %v", name, ok, err)
			}
		}
		pairs, err := Scan(e, nil, 100)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(pairs) != 15 {
			t.Fatalf("%s: %d pairs after deletes, want 15", name, len(pairs))
		}
		for i, p := range pairs {
			if string(p.Key) != fmt.Sprintf("key%05d", 2*i+1) {
				t.Fatalf("%s: pair %d = %q", name, i, p.Key)
			}
		}
	}
}
