package kv

import (
	"fmt"

	"pmnet/internal/pmobj"
)

// Hashmap is a chained hash table, the analogue of PMDK's hashmap_atomic
// example engine.
//
// Root layout:
//
//	+0  tag
//	+8  count
//	+16 nBuckets
//	+24 bucketsOff — array of nBuckets u64 chain heads
//
// Entry layout (64-byte class):
//
//	+0  next
//	+8  hash
//	+16 kOff | +24 kLen | +32 vOff | +40 vLen
const (
	hmTag      = 0
	hmCount    = 8
	hmNBuckets = 16
	hmBuckets  = 24
	hmRootSize = 32

	heNext = 0
	heHash = 8
	heKOff = 16
	heKLen = 24
	heVOff = 32
	heVLen = 40
	heSize = 48
)

// hashmapBuckets is the fixed bucket count (the PMDK example also uses a
// fixed table; growth is out of scope for the workload engines).
const hashmapBuckets = 4096

// Hashmap implements Engine.
type Hashmap struct {
	a    *pmobj.Arena
	root uint64
}

// OpenHashmap opens or creates a hashmap on a.
func OpenHashmap(a *pmobj.Arena) (Engine, error) {
	if root := a.Root(); root != 0 {
		if err := checkTag(a, root, tagHashmap, "hashmap"); err != nil {
			return nil, err
		}
		return &Hashmap{a: a, root: root}, nil
	}
	var root uint64
	err := a.Update(func(tx *pmobj.Tx) error {
		r, err := tx.Alloc(hmRootSize)
		if err != nil {
			return err
		}
		buckets, err := tx.Alloc(hashmapBuckets * 8)
		if err != nil {
			return err
		}
		zero := make([]byte, hashmapBuckets*8)
		tx.WriteBytes(buckets, zero)
		tx.WriteU64(r+hmTag, tagHashmap)
		tx.WriteU64(r+hmCount, 0)
		tx.WriteU64(r+hmNBuckets, hashmapBuckets)
		tx.WriteU64(r+hmBuckets, buckets)
		tx.SetRoot(r)
		root = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Hashmap{a: a, root: root}, nil
}

// Name implements Engine.
func (h *Hashmap) Name() string { return "hashmap" }

// Len implements Engine.
func (h *Hashmap) Len() int { return int(h.a.ReadU64(h.root + hmCount)) }

func (h *Hashmap) bucketOff(hash uint64) uint64 {
	n := h.a.ReadU64(h.root + hmNBuckets)
	arr := h.a.ReadU64(h.root + hmBuckets)
	return arr + (hash%n)*8
}

// findEntry returns (entryOff, prevOff) where prevOff is the address of the
// pointer that references the entry (bucket slot or predecessor's next).
func (h *Hashmap) findEntry(key []byte) (entry, prevPtr uint64) {
	hash := fnv64(key)
	ptr := h.bucketOff(hash)
	for {
		e := h.a.ReadU64(ptr)
		if e == 0 {
			return 0, ptr
		}
		if h.a.ReadU64(e+heHash) == hash &&
			keyCompare(h.a, key, h.a.ReadU64(e+heKOff), h.a.ReadU64(e+heKLen)) == 0 {
			return e, ptr
		}
		ptr = e + heNext
	}
}

// Put implements Engine.
func (h *Hashmap) Put(key, value []byte) error {
	entry, ptr := h.findEntry(key)
	return h.a.Update(func(tx *pmobj.Tx) error {
		vOff, err := putString(tx, value)
		if err != nil {
			return err
		}
		if entry != 0 {
			// Overwrite: swap the value block.
			freeString(tx, h.a.ReadU64(entry+heVOff), h.a.ReadU64(entry+heVLen))
			tx.WriteU64(entry+heVOff, vOff)
			tx.WriteU64(entry+heVLen, uint64(len(value)))
			return nil
		}
		kOff, err := putString(tx, key)
		if err != nil {
			return err
		}
		e, err := tx.Alloc(heSize)
		if err != nil {
			return err
		}
		_ = ptr // the miss position is irrelevant: we push at the head
		bucket := h.bucketOff(fnv64(key))
		tx.WriteU64(e+heNext, h.a.ReadU64(bucket))
		tx.WriteU64(e+heHash, fnv64(key))
		tx.WriteU64(e+heKOff, kOff)
		tx.WriteU64(e+heKLen, uint64(len(key)))
		tx.WriteU64(e+heVOff, vOff)
		tx.WriteU64(e+heVLen, uint64(len(value)))
		tx.WriteU64(bucket, e)
		tx.WriteU64(h.root+hmCount, h.a.ReadU64(h.root+hmCount)+1)
		return nil
	})
}

// Get implements Engine.
func (h *Hashmap) Get(key []byte) ([]byte, bool) {
	e, _ := h.findEntry(key)
	if e == 0 {
		return nil, false
	}
	return getString(h.a, h.a.ReadU64(e+heVOff), h.a.ReadU64(e+heVLen)), true
}

// Delete implements Engine.
func (h *Hashmap) Delete(key []byte) (bool, error) {
	e, ptr := h.findEntry(key)
	if e == 0 {
		return false, nil
	}
	err := h.a.Update(func(tx *pmobj.Tx) error {
		tx.WriteU64(ptr, h.a.ReadU64(e+heNext))
		freeString(tx, h.a.ReadU64(e+heKOff), h.a.ReadU64(e+heKLen))
		freeString(tx, h.a.ReadU64(e+heVOff), h.a.ReadU64(e+heVLen))
		tx.Free(e, heSize)
		tx.WriteU64(h.root+hmCount, h.a.ReadU64(h.root+hmCount)-1)
		return nil
	})
	return err == nil, err
}

// Keys implements Engine (unordered).
func (h *Hashmap) Keys() [][]byte {
	var out [][]byte
	n := h.a.ReadU64(h.root + hmNBuckets)
	arr := h.a.ReadU64(h.root + hmBuckets)
	for b := uint64(0); b < n; b++ {
		for e := h.a.ReadU64(arr + b*8); e != 0; e = h.a.ReadU64(e + heNext) {
			out = append(out, getString(h.a, h.a.ReadU64(e+heKOff), h.a.ReadU64(e+heKLen)))
		}
	}
	return out
}

// Verify implements Engine: every entry hangs in the bucket its hash selects
// and the counts agree.
func (h *Hashmap) Verify() error {
	n := h.a.ReadU64(h.root + hmNBuckets)
	arr := h.a.ReadU64(h.root + hmBuckets)
	var total uint64
	for b := uint64(0); b < n; b++ {
		seen := 0
		for e := h.a.ReadU64(arr + b*8); e != 0; e = h.a.ReadU64(e + heNext) {
			hash := h.a.ReadU64(e + heHash)
			key := getString(h.a, h.a.ReadU64(e+heKOff), h.a.ReadU64(e+heKLen))
			if fnv64(key) != hash {
				return fmt.Errorf("hashmap: stored hash mismatch for %q", key)
			}
			if hash%n != b {
				return fmt.Errorf("hashmap: entry %q in bucket %d, want %d", key, b, hash%n)
			}
			total++
			if seen++; seen > 1<<20 {
				return fmt.Errorf("hashmap: chain cycle in bucket %d", b)
			}
		}
	}
	if total != h.a.ReadU64(h.root+hmCount) {
		return fmt.Errorf("hashmap: count %d, chains hold %d", h.a.ReadU64(h.root+hmCount), total)
	}
	return nil
}
