package kv

import (
	"bytes"
	"errors"
)

// Pair is one key-value result of a range scan.
type Pair struct {
	Key   []byte
	Value []byte
}

// ErrUnordered is returned by Scan on engines without an ordered iteration
// capability (the hashmap, like PMDK's hashmap engines).
var ErrUnordered = errors.New("kv: engine does not support ordered scans")

// Scanner is implemented by engines that support ordered range scans
// (B-Tree, RB-Tree, Skip list in byte order; C-Tree in its length-first
// crit-bit order). Used by the YCSB-E style scan workload.
type Scanner interface {
	// Scan returns up to limit pairs with key ≥ start, in the engine's
	// iteration order.
	Scan(start []byte, limit int) ([]Pair, error)
}

// Scan dispatches to the engine's Scanner implementation, or ErrUnordered.
func Scan(e Engine, start []byte, limit int) ([]Pair, error) {
	if s, ok := e.(Scanner); ok {
		return s.Scan(start, limit)
	}
	return nil, ErrUnordered
}

// Skiplist scan: walk level 0 from the first node ≥ start.
func (s *Skiplist) Scan(start []byte, limit int) ([]Pair, error) {
	if limit <= 0 {
		return nil, nil
	}
	var update [slMaxLevel]uint64
	s.findUpdate(start, &update)
	n := s.a.ReadU64(update[0] + snNext)
	var out []Pair
	for n != 0 && len(out) < limit {
		out = append(out, Pair{
			Key:   s.nodeKey(n),
			Value: getString(s.a, s.a.ReadU64(n+snVOff), s.a.ReadU64(n+snVLen)),
		})
		n = s.a.ReadU64(n + snNext)
	}
	return out, nil
}

// BTree scan: bounded in-order walk.
func (b *BTree) Scan(start []byte, limit int) ([]Pair, error) {
	if limit <= 0 {
		return nil, nil
	}
	var out []Pair
	var walk func(n uint64) bool // false = stop
	walk = func(n uint64) bool {
		num := b.keyN(n)
		for i := 0; i < num; i++ {
			if !b.isLeaf(n) {
				if !walk(b.child(n, i)) {
					return false
				}
			}
			if len(out) >= limit {
				return false
			}
			it := b.item(n, i)
			key := getString(b.a, it.kOff, it.kLen)
			if bytes.Compare(key, start) >= 0 {
				out = append(out, Pair{Key: key, Value: getString(b.a, it.vOff, it.vLen)})
				if len(out) >= limit {
					return false
				}
			}
		}
		if !b.isLeaf(n) {
			return walk(b.child(n, num))
		}
		return true
	}
	walk(b.a.ReadU64(b.root + btRootNode))
	return out, nil
}

// RBTree scan: in-order walk with an early start bound.
func (t *RBTree) Scan(start []byte, limit int) ([]Pair, error) {
	if limit <= 0 {
		return nil, nil
	}
	nilN := t.nilNode()
	var out []Pair
	var walk func(n uint64) bool
	walk = func(n uint64) bool {
		if n == nilN {
			return true
		}
		key := t.nodeKey(n)
		// Prune left subtrees entirely below the start bound.
		if bytes.Compare(key, start) >= 0 {
			if !walk(t.left(n)) {
				return false
			}
			if len(out) >= limit {
				return false
			}
			out = append(out, Pair{Key: key,
				Value: getString(t.a, t.ru(n+rnVOff), t.ru(n+rnVLen))})
			if len(out) >= limit {
				return false
			}
		}
		return walk(t.right(n))
	}
	walk(t.a.ReadU64(t.root + rbRoot))
	return out, nil
}

// CTree scan: in-order walk of the crit-bit tree. Iteration order is the
// ikey order (length first, then bytes); for fixed-length keyspaces — like
// the YCSB keys — this coincides with byte order.
func (c *CTree) Scan(start []byte, limit int) ([]Pair, error) {
	if limit <= 0 {
		return nil, nil
	}
	ikStart := ikey(start)
	var out []Pair
	var walk func(p uint64) bool
	walk = func(p uint64) bool {
		if p == 0 {
			return true
		}
		if isInternal(p) {
			n := offOf(p)
			if !walk(c.ru(n + ciChild)) {
				return false
			}
			return walk(c.ru(n + ciChild + 8))
		}
		leaf := offOf(p)
		ik := c.leafKey(leaf)
		if bytes.Compare(ik, ikStart) >= 0 {
			out = append(out, Pair{Key: append([]byte(nil), ik[8:]...),
				Value: getString(c.a, c.ru(leaf+clVOff), c.ru(leaf+clVLen))})
			if len(out) >= limit {
				return false
			}
		}
		return true
	}
	walk(c.a.ReadU64(c.root + ctRoot))
	return out, nil
}
