package kv

import (
	"bytes"
	"fmt"

	"pmnet/internal/pmobj"
)

// RBTree is a CLRS red-black tree with a real sentinel node, the analogue
// of PMDK's rbtree_map example engine.
//
// Root object: +0 tag | +8 count | +16 treeRoot | +24 nil sentinel.
//
// Node (64 B):
//
//	+0 kOff | +8 kLen | +16 vOff | +24 vLen
//	+32 left | +40 right | +48 parent | +56 color (0 black, 1 red)
const (
	rbTag      = 0
	rbCount    = 8
	rbRoot     = 16
	rbNil      = 24
	rbRootSize = 32

	rnKOff   = 0
	rnKLen   = 8
	rnVOff   = 16
	rnVLen   = 24
	rnLeft   = 32
	rnRight  = 40
	rnParent = 48
	rnColor  = 56
	rnSize   = 64

	black = 0
	red   = 1
)

// RBTree implements Engine.
type RBTree struct {
	a    *pmobj.Arena
	root uint64
}

// OpenRBTree opens or creates a red-black tree on a.
func OpenRBTree(a *pmobj.Arena) (Engine, error) {
	if root := a.Root(); root != 0 {
		if err := checkTag(a, root, tagRBTree, "rbtree"); err != nil {
			return nil, err
		}
		return &RBTree{a: a, root: root}, nil
	}
	var root uint64
	err := a.Update(func(tx *pmobj.Tx) error {
		r, err := tx.Alloc(rbRootSize)
		if err != nil {
			return err
		}
		nilNode, err := tx.Alloc(rnSize)
		if err != nil {
			return err
		}
		tx.WriteBytes(nilNode, make([]byte, rnSize)) // black, zero links
		tx.WriteU64(r+rbTag, tagRBTree)
		tx.WriteU64(r+rbCount, 0)
		tx.WriteU64(r+rbRoot, nilNode)
		tx.WriteU64(r+rbNil, nilNode)
		tx.SetRoot(r)
		root = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &RBTree{a: a, root: root}, nil
}

// Name implements Engine.
func (t *RBTree) Name() string { return "rbtree" }

// Len implements Engine.
func (t *RBTree) Len() int { return int(t.a.ReadU64(t.root + rbCount)) }

func (t *RBTree) ru(off uint64) uint64 { return t.a.TxReadU64(off) }

func (t *RBTree) nilNode() uint64  { return t.a.ReadU64(t.root + rbNil) }
func (t *RBTree) treeRoot() uint64 { return t.ru(t.root + rbRoot) }

func (t *RBTree) left(n uint64) uint64   { return t.ru(n + rnLeft) }
func (t *RBTree) right(n uint64) uint64  { return t.ru(n + rnRight) }
func (t *RBTree) parent(n uint64) uint64 { return t.ru(n + rnParent) }
func (t *RBTree) color(n uint64) uint64  { return t.ru(n + rnColor) }

func (t *RBTree) nodeKey(n uint64) []byte {
	return getString(t.a, t.ru(n+rnKOff), t.ru(n+rnKLen))
}

// find returns the node holding key, or the sentinel.
func (t *RBTree) find(key []byte) uint64 {
	nilN := t.nilNode()
	n := t.treeRoot()
	for n != nilN {
		c := bytes.Compare(key, t.nodeKey(n))
		switch {
		case c == 0:
			return n
		case c < 0:
			n = t.left(n)
		default:
			n = t.right(n)
		}
	}
	return nilN
}

// Get implements Engine.
func (t *RBTree) Get(key []byte) ([]byte, bool) {
	n := t.find(key)
	if n == t.nilNode() {
		return nil, false
	}
	return getString(t.a, t.ru(n+rnVOff), t.ru(n+rnVLen)), true
}

// rotations ----------------------------------------------------------------

func (t *RBTree) rotateLeft(tx *pmobj.Tx, x uint64) {
	nilN := t.nilNode()
	y := t.right(x)
	tx.WriteU64(x+rnRight, t.left(y))
	if t.left(y) != nilN {
		tx.WriteU64(t.left(y)+rnParent, x)
	}
	tx.WriteU64(y+rnParent, t.parent(x))
	switch {
	case t.parent(x) == nilN:
		tx.WriteU64(t.root+rbRoot, y)
	case x == t.left(t.parent(x)):
		tx.WriteU64(t.parent(x)+rnLeft, y)
	default:
		tx.WriteU64(t.parent(x)+rnRight, y)
	}
	tx.WriteU64(y+rnLeft, x)
	tx.WriteU64(x+rnParent, y)
}

func (t *RBTree) rotateRight(tx *pmobj.Tx, x uint64) {
	nilN := t.nilNode()
	y := t.left(x)
	tx.WriteU64(x+rnLeft, t.right(y))
	if t.right(y) != nilN {
		tx.WriteU64(t.right(y)+rnParent, x)
	}
	tx.WriteU64(y+rnParent, t.parent(x))
	switch {
	case t.parent(x) == nilN:
		tx.WriteU64(t.root+rbRoot, y)
	case x == t.left(t.parent(x)):
		tx.WriteU64(t.parent(x)+rnLeft, y)
	default:
		tx.WriteU64(t.parent(x)+rnRight, y)
	}
	tx.WriteU64(y+rnRight, x)
	tx.WriteU64(x+rnParent, y)
}

// Put implements Engine.
func (t *RBTree) Put(key, value []byte) error {
	return t.a.Update(func(tx *pmobj.Tx) error {
		vOff, err := putString(tx, value)
		if err != nil {
			return err
		}
		nilN := t.nilNode()
		// BST descent.
		y := nilN
		x := t.treeRoot()
		for x != nilN {
			y = x
			c := bytes.Compare(key, t.nodeKey(x))
			if c == 0 {
				freeString(tx, t.ru(x+rnVOff), t.ru(x+rnVLen))
				tx.WriteU64(x+rnVOff, vOff)
				tx.WriteU64(x+rnVLen, uint64(len(value)))
				return nil
			}
			if c < 0 {
				x = t.left(x)
			} else {
				x = t.right(x)
			}
		}
		kOff, err := putString(tx, key)
		if err != nil {
			return err
		}
		z, err := tx.Alloc(rnSize)
		if err != nil {
			return err
		}
		tx.WriteU64(z+rnKOff, kOff)
		tx.WriteU64(z+rnKLen, uint64(len(key)))
		tx.WriteU64(z+rnVOff, vOff)
		tx.WriteU64(z+rnVLen, uint64(len(value)))
		tx.WriteU64(z+rnLeft, nilN)
		tx.WriteU64(z+rnRight, nilN)
		tx.WriteU64(z+rnParent, y)
		tx.WriteU64(z+rnColor, red)
		switch {
		case y == nilN:
			tx.WriteU64(t.root+rbRoot, z)
		case bytes.Compare(key, t.nodeKey(y)) < 0:
			tx.WriteU64(y+rnLeft, z)
		default:
			tx.WriteU64(y+rnRight, z)
		}
		t.insertFixup(tx, z)
		tx.WriteU64(t.root+rbCount, t.ru(t.root+rbCount)+1)
		return nil
	})
}

func (t *RBTree) insertFixup(tx *pmobj.Tx, z uint64) {
	for t.color(t.parent(z)) == red {
		gp := t.parent(t.parent(z))
		if t.parent(z) == t.left(gp) {
			y := t.right(gp)
			if t.color(y) == red {
				tx.WriteU64(t.parent(z)+rnColor, black)
				tx.WriteU64(y+rnColor, black)
				tx.WriteU64(gp+rnColor, red)
				z = gp
				continue
			}
			if z == t.right(t.parent(z)) {
				z = t.parent(z)
				t.rotateLeft(tx, z)
			}
			tx.WriteU64(t.parent(z)+rnColor, black)
			tx.WriteU64(t.parent(t.parent(z))+rnColor, red)
			t.rotateRight(tx, t.parent(t.parent(z)))
		} else {
			y := t.left(gp)
			if t.color(y) == red {
				tx.WriteU64(t.parent(z)+rnColor, black)
				tx.WriteU64(y+rnColor, black)
				tx.WriteU64(gp+rnColor, red)
				z = gp
				continue
			}
			if z == t.left(t.parent(z)) {
				z = t.parent(z)
				t.rotateRight(tx, z)
			}
			tx.WriteU64(t.parent(z)+rnColor, black)
			tx.WriteU64(t.parent(t.parent(z))+rnColor, red)
			t.rotateLeft(tx, t.parent(t.parent(z)))
		}
	}
	tx.WriteU64(t.treeRoot()+rnColor, black)
}

func (t *RBTree) minimum(n uint64) uint64 {
	nilN := t.nilNode()
	for t.left(n) != nilN {
		n = t.left(n)
	}
	return n
}

func (t *RBTree) transplant(tx *pmobj.Tx, u, v uint64) {
	nilN := t.nilNode()
	switch {
	case t.parent(u) == nilN:
		tx.WriteU64(t.root+rbRoot, v)
	case u == t.left(t.parent(u)):
		tx.WriteU64(t.parent(u)+rnLeft, v)
	default:
		tx.WriteU64(t.parent(u)+rnRight, v)
	}
	tx.WriteU64(v+rnParent, t.parent(u))
}

// Delete implements Engine.
func (t *RBTree) Delete(key []byte) (bool, error) {
	z := t.find(key)
	if z == t.nilNode() {
		return false, nil
	}
	err := t.a.Update(func(tx *pmobj.Tx) error {
		nilN := t.nilNode()
		y := z
		yColor := t.color(y)
		var x uint64
		switch {
		case t.left(z) == nilN:
			x = t.right(z)
			t.transplant(tx, z, x)
		case t.right(z) == nilN:
			x = t.left(z)
			t.transplant(tx, z, x)
		default:
			y = t.minimum(t.right(z))
			yColor = t.color(y)
			x = t.right(y)
			if t.parent(y) == z {
				tx.WriteU64(x+rnParent, y)
			} else {
				t.transplant(tx, y, x)
				tx.WriteU64(y+rnRight, t.right(z))
				tx.WriteU64(t.right(z)+rnParent, y)
			}
			t.transplant(tx, z, y)
			tx.WriteU64(y+rnLeft, t.left(z))
			tx.WriteU64(t.left(z)+rnParent, y)
			tx.WriteU64(y+rnColor, t.color(z))
		}
		if yColor == black {
			t.deleteFixup(tx, x)
		}
		freeString(tx, t.ru(z+rnKOff), t.ru(z+rnKLen))
		freeString(tx, t.ru(z+rnVOff), t.ru(z+rnVLen))
		tx.Free(z, rnSize)
		tx.WriteU64(t.root+rbCount, t.ru(t.root+rbCount)-1)
		return nil
	})
	return err == nil, err
}

func (t *RBTree) deleteFixup(tx *pmobj.Tx, x uint64) {
	for x != t.treeRoot() && t.color(x) == black {
		if x == t.left(t.parent(x)) {
			w := t.right(t.parent(x))
			if t.color(w) == red {
				tx.WriteU64(w+rnColor, black)
				tx.WriteU64(t.parent(x)+rnColor, red)
				t.rotateLeft(tx, t.parent(x))
				w = t.right(t.parent(x))
			}
			if t.color(t.left(w)) == black && t.color(t.right(w)) == black {
				tx.WriteU64(w+rnColor, red)
				x = t.parent(x)
			} else {
				if t.color(t.right(w)) == black {
					tx.WriteU64(t.left(w)+rnColor, black)
					tx.WriteU64(w+rnColor, red)
					t.rotateRight(tx, w)
					w = t.right(t.parent(x))
				}
				tx.WriteU64(w+rnColor, t.color(t.parent(x)))
				tx.WriteU64(t.parent(x)+rnColor, black)
				tx.WriteU64(t.right(w)+rnColor, black)
				t.rotateLeft(tx, t.parent(x))
				x = t.treeRoot()
			}
		} else {
			w := t.left(t.parent(x))
			if t.color(w) == red {
				tx.WriteU64(w+rnColor, black)
				tx.WriteU64(t.parent(x)+rnColor, red)
				t.rotateRight(tx, t.parent(x))
				w = t.left(t.parent(x))
			}
			if t.color(t.right(w)) == black && t.color(t.left(w)) == black {
				tx.WriteU64(w+rnColor, red)
				x = t.parent(x)
			} else {
				if t.color(t.left(w)) == black {
					tx.WriteU64(t.right(w)+rnColor, black)
					tx.WriteU64(w+rnColor, red)
					t.rotateLeft(tx, w)
					w = t.left(t.parent(x))
				}
				tx.WriteU64(w+rnColor, t.color(t.parent(x)))
				tx.WriteU64(t.parent(x)+rnColor, black)
				tx.WriteU64(t.left(w)+rnColor, black)
				t.rotateRight(tx, t.parent(x))
				x = t.treeRoot()
			}
		}
	}
	tx.WriteU64(x+rnColor, black)
}

// Keys implements Engine (ascending in-order walk).
func (t *RBTree) Keys() [][]byte {
	var out [][]byte
	nilN := t.nilNode()
	var walk func(n uint64)
	walk = func(n uint64) {
		if n == nilN {
			return
		}
		walk(t.left(n))
		out = append(out, t.nodeKey(n))
		walk(t.right(n))
	}
	walk(t.a.ReadU64(t.root + rbRoot))
	return out
}

// Verify implements Engine: BST order, red nodes have black children, equal
// black height on every path, black root, and count agreement.
func (t *RBTree) Verify() error {
	nilN := t.nilNode()
	rootNode := t.a.ReadU64(t.root + rbRoot)
	if rootNode != nilN && t.color(rootNode) != black {
		return fmt.Errorf("rbtree: red root")
	}
	if t.color(nilN) != black {
		return fmt.Errorf("rbtree: red sentinel")
	}
	count := 0
	var prev []byte
	var walk func(n uint64) (int, error) // black height
	walk = func(n uint64) (int, error) {
		if n == nilN {
			return 1, nil
		}
		if t.color(n) == red {
			if t.color(t.left(n)) == red || t.color(t.right(n)) == red {
				return 0, fmt.Errorf("rbtree: red node %q with red child", t.nodeKey(n))
			}
		}
		lh, err := walk(t.left(n))
		if err != nil {
			return 0, err
		}
		k := t.nodeKey(n)
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			return 0, fmt.Errorf("rbtree: order violation at %q", k)
		}
		prev = k
		count++
		rh, err := walk(t.right(n))
		if err != nil {
			return 0, err
		}
		if lh != rh {
			return 0, fmt.Errorf("rbtree: black-height mismatch at %q (%d vs %d)", k, lh, rh)
		}
		if t.color(n) == black {
			lh++
		}
		return lh, nil
	}
	if _, err := walk(rootNode); err != nil {
		return err
	}
	if count != t.Len() {
		return fmt.Errorf("rbtree: count %d, tree holds %d", t.Len(), count)
	}
	return nil
}
