package kv

import (
	"fmt"

	"pmnet/internal/pmobj"
)

// BTree is a CLRS-style B-tree with minimum degree t = 4 (up to 7 keys and
// 8 children per node), the analogue of PMDK's btree_map example engine.
// Every Put/Delete runs in one crash-atomic transaction; descent reads use
// the transaction overlay so proactive splits/merges are observed.
//
// Root object layout:
//
//	+0 tag | +8 count | +16 rootNode
//
// Node layout (class 512):
//
//	+0   leaf (1/0)
//	+8   n (live keys)
//	+16  items[7]: {kOff, kLen, vOff, vLen} — 32 bytes each
//	+240 children[8]
const (
	btT        = 4 // minimum degree
	btMaxKeys  = 2*btT - 1
	btMaxChild = 2 * btT

	btTag      = 0
	btCount    = 8
	btRootNode = 16
	btRootSize = 24

	bnLeaf     = 0
	bnN        = 8
	bnItems    = 16
	bnItemSize = 32
	bnChildren = bnItems + btMaxKeys*bnItemSize
	bnSize     = bnChildren + btMaxChild*8
)

// BTree implements Engine.
type BTree struct {
	a    *pmobj.Arena
	root uint64
}

// OpenBTree opens or creates a B-tree on a.
func OpenBTree(a *pmobj.Arena) (Engine, error) {
	if root := a.Root(); root != 0 {
		if err := checkTag(a, root, tagBTree, "btree"); err != nil {
			return nil, err
		}
		return &BTree{a: a, root: root}, nil
	}
	var root uint64
	err := a.Update(func(tx *pmobj.Tx) error {
		r, err := tx.Alloc(btRootSize)
		if err != nil {
			return err
		}
		node, err := newBTNode(tx, true)
		if err != nil {
			return err
		}
		tx.WriteU64(r+btTag, tagBTree)
		tx.WriteU64(r+btCount, 0)
		tx.WriteU64(r+btRootNode, node)
		tx.SetRoot(r)
		root = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &BTree{a: a, root: root}, nil
}

func newBTNode(tx *pmobj.Tx, leaf bool) (uint64, error) {
	n, err := tx.Alloc(bnSize)
	if err != nil {
		return 0, err
	}
	tx.WriteBytes(n, make([]byte, bnSize))
	if leaf {
		tx.WriteU64(n+bnLeaf, 1)
	}
	return n, nil
}

// Name implements Engine.
func (b *BTree) Name() string { return "btree" }

// Len implements Engine.
func (b *BTree) Len() int { return int(b.a.ReadU64(b.root + btCount)) }

// field helpers (overlay-aware) -------------------------------------------

func (b *BTree) ru(off uint64) uint64 { return b.a.TxReadU64(off) }

func (b *BTree) isLeaf(n uint64) bool { return b.ru(n+bnLeaf) == 1 }
func (b *BTree) keyN(n uint64) int    { return int(b.ru(n + bnN)) }

func itemOff(n uint64, i int) uint64  { return n + bnItems + uint64(i)*bnItemSize }
func childOff(n uint64, i int) uint64 { return n + bnChildren + uint64(i)*8 }

type btItem struct{ kOff, kLen, vOff, vLen uint64 }

func (b *BTree) item(n uint64, i int) btItem {
	o := itemOff(n, i)
	return btItem{b.ru(o), b.ru(o + 8), b.ru(o + 16), b.ru(o + 24)}
}

func setItem(tx *pmobj.Tx, n uint64, i int, it btItem) {
	o := itemOff(n, i)
	tx.WriteU64(o, it.kOff)
	tx.WriteU64(o+8, it.kLen)
	tx.WriteU64(o+16, it.vOff)
	tx.WriteU64(o+24, it.vLen)
}

func (b *BTree) child(n uint64, i int) uint64 { return b.ru(childOff(n, i)) }

func (b *BTree) itemKey(n uint64, i int) []byte {
	it := b.item(n, i)
	return getString(b.a, it.kOff, it.kLen)
}

// cmpKey compares probe against item i of node n. The key bytes are
// immutable once written, so a committed-view read is safe except for keys
// allocated in this very transaction — which only happens for the probe key
// itself, never compared against.
func (b *BTree) cmpKey(probe []byte, n uint64, i int) int {
	it := b.item(n, i)
	return keyCompare(b.a, probe, it.kOff, it.kLen)
}

// Get implements Engine (read-only: committed view throughout).
func (b *BTree) Get(key []byte) ([]byte, bool) {
	n := b.a.ReadU64(b.root + btRootNode)
	for {
		i := 0
		num := b.keyN(n)
		for i < num {
			c := b.cmpKey(key, n, i)
			if c == 0 {
				it := b.item(n, i)
				return getString(b.a, it.vOff, it.vLen), true
			}
			if c < 0 {
				break
			}
			i++
		}
		if b.isLeaf(n) {
			return nil, false
		}
		n = b.child(n, i)
	}
}

// splitChild splits the full i-th child of parent (CLRS B-TREE-SPLIT-CHILD).
func (b *BTree) splitChild(tx *pmobj.Tx, parent uint64, i int) error {
	full := b.child(parent, i)
	right, err := newBTNode(tx, b.isLeaf(full))
	if err != nil {
		return err
	}
	// Move the top t-1 items of `full` into `right`.
	for j := 0; j < btT-1; j++ {
		setItem(tx, right, j, b.item(full, j+btT))
	}
	if !b.isLeaf(full) {
		for j := 0; j < btT; j++ {
			tx.WriteU64(childOff(right, j), b.child(full, j+btT))
		}
	}
	tx.WriteU64(right+bnN, btT-1)
	median := b.item(full, btT-1)
	tx.WriteU64(full+bnN, btT-1)
	// Shift the parent's children and items right of position i.
	pn := b.keyN(parent)
	for j := pn; j > i; j-- {
		tx.WriteU64(childOff(parent, j+1), b.child(parent, j))
	}
	tx.WriteU64(childOff(parent, i+1), right)
	for j := pn - 1; j >= i; j-- {
		setItem(tx, parent, j+1, b.item(parent, j))
	}
	setItem(tx, parent, i, median)
	tx.WriteU64(parent+bnN, uint64(pn+1))
	return nil
}

// Put implements Engine.
func (b *BTree) Put(key, value []byte) error {
	return b.a.Update(func(tx *pmobj.Tx) error {
		vOff, err := putString(tx, value)
		if err != nil {
			return err
		}
		newItem := btItem{vOff: vOff, vLen: uint64(len(value))}

		rootNode := b.ru(b.root + btRootNode)
		if b.keyN(rootNode) == btMaxKeys {
			top, err := newBTNode(tx, false)
			if err != nil {
				return err
			}
			tx.WriteU64(childOff(top, 0), rootNode)
			tx.WriteU64(b.root+btRootNode, top)
			if err := b.splitChild(tx, top, 0); err != nil {
				return err
			}
			rootNode = top
		}
		// Descend, splitting full children proactively.
		n := rootNode
		for {
			num := b.keyN(n)
			i := 0
			for i < num {
				c := b.cmpKey(key, n, i)
				if c == 0 {
					// Overwrite in place.
					it := b.item(n, i)
					freeString(tx, it.vOff, it.vLen)
					o := itemOff(n, i)
					tx.WriteU64(o+16, newItem.vOff)
					tx.WriteU64(o+24, newItem.vLen)
					return nil
				}
				if c < 0 {
					break
				}
				i++
			}
			if b.isLeaf(n) {
				kOff, err := putString(tx, key)
				if err != nil {
					return err
				}
				newItem.kOff, newItem.kLen = kOff, uint64(len(key))
				for j := num - 1; j >= i; j-- {
					setItem(tx, n, j+1, b.item(n, j))
				}
				setItem(tx, n, i, newItem)
				tx.WriteU64(n+bnN, uint64(num+1))
				tx.WriteU64(b.root+btCount, b.ru(b.root+btCount)+1)
				return nil
			}
			c := b.child(n, i)
			if b.keyN(c) == btMaxKeys {
				if err := b.splitChild(tx, n, i); err != nil {
					return err
				}
				// The median moved up into position i; re-compare.
				switch cc := b.cmpKey(key, n, i); {
				case cc == 0:
					it := b.item(n, i)
					freeString(tx, it.vOff, it.vLen)
					o := itemOff(n, i)
					tx.WriteU64(o+16, newItem.vOff)
					tx.WriteU64(o+24, newItem.vLen)
					return nil
				case cc > 0:
					i++
				}
				c = b.child(n, i)
			}
			n = c
		}
	})
}

// Delete implements Engine (CLRS full deletion with borrow/merge).
func (b *BTree) Delete(key []byte) (bool, error) {
	if _, ok := b.Get(key); !ok {
		return false, nil
	}
	err := b.a.Update(func(tx *pmobj.Tx) error {
		n := b.ru(b.root + btRootNode)
		if err := b.deleteFrom(tx, n, key); err != nil {
			return err
		}
		// Shrink an empty internal root.
		n = b.ru(b.root + btRootNode)
		if b.keyN(n) == 0 && !b.isLeaf(n) {
			tx.WriteU64(b.root+btRootNode, b.child(n, 0))
			tx.Free(n, bnSize)
		}
		tx.WriteU64(b.root+btCount, b.ru(b.root+btCount)-1)
		return nil
	})
	return err == nil, err
}

// deleteFrom removes key from the subtree rooted at n; n is guaranteed to
// have ≥ t keys (or be the root) when called.
func (b *BTree) deleteFrom(tx *pmobj.Tx, n uint64, key []byte) error {
	num := b.keyN(n)
	i := 0
	for i < num && b.cmpKey(key, n, i) > 0 {
		i++
	}
	if i < num && b.cmpKey(key, n, i) == 0 {
		if b.isLeaf(n) {
			// Case 1: remove from leaf.
			it := b.item(n, i)
			freeString(tx, it.kOff, it.kLen)
			freeString(tx, it.vOff, it.vLen)
			for j := i; j < num-1; j++ {
				setItem(tx, n, j, b.item(n, j+1))
			}
			tx.WriteU64(n+bnN, uint64(num-1))
			return nil
		}
		// Case 2: internal node.
		left, right := b.child(n, i), b.child(n, i+1)
		switch {
		case b.keyN(left) >= btT:
			// 2a: replace with predecessor, delete it recursively.
			pred := b.maxItem(left)
			old := b.item(n, i)
			freeString(tx, old.kOff, old.kLen)
			freeString(tx, old.vOff, old.vLen)
			setItem(tx, n, i, pred)
			// Remove the predecessor item from the left subtree WITHOUT
			// freeing its strings (they now live in n).
			return b.deleteShallow(tx, left, getString(b.a, pred.kOff, pred.kLen))
		case b.keyN(right) >= btT:
			succ := b.minItem(right)
			old := b.item(n, i)
			freeString(tx, old.kOff, old.kLen)
			freeString(tx, old.vOff, old.vLen)
			setItem(tx, n, i, succ)
			return b.deleteShallow(tx, right, getString(b.a, succ.kOff, succ.kLen))
		default:
			// 2c: merge left + median + right, then recurse.
			if err := b.merge(tx, n, i); err != nil {
				return err
			}
			return b.deleteFrom(tx, left, key)
		}
	}
	if b.isLeaf(n) {
		return fmt.Errorf("btree: key vanished during delete")
	}
	// Case 3: ensure the child we descend into has ≥ t keys.
	child := b.child(n, i)
	if b.keyN(child) == btT-1 {
		var err error
		child, i, err = b.fill(tx, n, i)
		if err != nil {
			return err
		}
	}
	return b.deleteFrom(tx, child, key)
}

// deleteShallow removes key from the subtree without freeing its string
// blocks (used when the item was moved to an ancestor).
func (b *BTree) deleteShallow(tx *pmobj.Tx, n uint64, key []byte) error {
	num := b.keyN(n)
	i := 0
	for i < num && b.cmpKey(key, n, i) > 0 {
		i++
	}
	if i < num && b.cmpKey(key, n, i) == 0 {
		if b.isLeaf(n) {
			for j := i; j < num-1; j++ {
				setItem(tx, n, j, b.item(n, j+1))
			}
			tx.WriteU64(n+bnN, uint64(num-1))
			return nil
		}
		left, right := b.child(n, i), b.child(n, i+1)
		switch {
		case b.keyN(left) >= btT:
			pred := b.maxItem(left)
			setItem(tx, n, i, pred)
			return b.deleteShallow(tx, left, getString(b.a, pred.kOff, pred.kLen))
		case b.keyN(right) >= btT:
			succ := b.minItem(right)
			setItem(tx, n, i, succ)
			return b.deleteShallow(tx, right, getString(b.a, succ.kOff, succ.kLen))
		default:
			if err := b.merge(tx, n, i); err != nil {
				return err
			}
			return b.deleteShallow(tx, left, key)
		}
	}
	if b.isLeaf(n) {
		return fmt.Errorf("btree: shallow-delete key missing")
	}
	child := b.child(n, i)
	if b.keyN(child) == btT-1 {
		var err error
		child, i, err = b.fill(tx, n, i)
		if err != nil {
			return err
		}
	}
	return b.deleteShallow(tx, child, key)
}

// maxItem returns the rightmost item of the subtree at n.
func (b *BTree) maxItem(n uint64) btItem {
	for !b.isLeaf(n) {
		n = b.child(n, b.keyN(n))
	}
	return b.item(n, b.keyN(n)-1)
}

// minItem returns the leftmost item of the subtree at n.
func (b *BTree) minItem(n uint64) btItem {
	for !b.isLeaf(n) {
		n = b.child(n, 0)
	}
	return b.item(n, 0)
}

// fill guarantees child i of n has ≥ t keys by borrowing or merging;
// returns the (possibly different) child to descend into and its index.
func (b *BTree) fill(tx *pmobj.Tx, n uint64, i int) (uint64, int, error) {
	num := b.keyN(n)
	child := b.child(n, i)
	if i > 0 && b.keyN(b.child(n, i-1)) >= btT {
		// Borrow from the left sibling through the separator.
		left := b.child(n, i-1)
		ln := b.keyN(left)
		cn := b.keyN(child)
		for j := cn - 1; j >= 0; j-- {
			setItem(tx, child, j+1, b.item(child, j))
		}
		if !b.isLeaf(child) {
			for j := cn; j >= 0; j-- {
				tx.WriteU64(childOff(child, j+1), b.child(child, j))
			}
			tx.WriteU64(childOff(child, 0), b.child(left, ln))
		}
		setItem(tx, child, 0, b.item(n, i-1))
		setItem(tx, n, i-1, b.item(left, ln-1))
		tx.WriteU64(left+bnN, uint64(ln-1))
		tx.WriteU64(child+bnN, uint64(cn+1))
		return child, i, nil
	}
	if i < num && b.keyN(b.child(n, i+1)) >= btT {
		// Borrow from the right sibling.
		right := b.child(n, i+1)
		rn := b.keyN(right)
		cn := b.keyN(child)
		setItem(tx, child, cn, b.item(n, i))
		if !b.isLeaf(child) {
			tx.WriteU64(childOff(child, cn+1), b.child(right, 0))
			for j := 0; j < rn; j++ {
				tx.WriteU64(childOff(right, j), b.child(right, j+1))
			}
		}
		setItem(tx, n, i, b.item(right, 0))
		for j := 0; j < rn-1; j++ {
			setItem(tx, right, j, b.item(right, j+1))
		}
		tx.WriteU64(right+bnN, uint64(rn-1))
		tx.WriteU64(child+bnN, uint64(cn+1))
		return child, i, nil
	}
	// Merge with a sibling.
	if i == num {
		i--
	}
	if err := b.merge(tx, n, i); err != nil {
		return 0, 0, err
	}
	return b.child(n, i), i, nil
}

// merge folds child i+1 and the separator item into child i and removes
// them from n. Both children have t-1 keys.
func (b *BTree) merge(tx *pmobj.Tx, n uint64, i int) error {
	left, right := b.child(n, i), b.child(n, i+1)
	ln, rn := b.keyN(left), b.keyN(right)
	setItem(tx, left, ln, b.item(n, i))
	for j := 0; j < rn; j++ {
		setItem(tx, left, ln+1+j, b.item(right, j))
	}
	if !b.isLeaf(left) {
		for j := 0; j <= rn; j++ {
			tx.WriteU64(childOff(left, ln+1+j), b.child(right, j))
		}
	}
	tx.WriteU64(left+bnN, uint64(ln+1+rn))
	num := b.keyN(n)
	for j := i; j < num-1; j++ {
		setItem(tx, n, j, b.item(n, j+1))
	}
	for j := i + 1; j < num; j++ {
		tx.WriteU64(childOff(n, j), b.child(n, j+1))
	}
	tx.WriteU64(n+bnN, uint64(num-1))
	tx.Free(right, bnSize)
	return nil
}

// Keys implements Engine (ascending in-order walk).
func (b *BTree) Keys() [][]byte {
	var out [][]byte
	var walk func(n uint64)
	walk = func(n uint64) {
		num := b.keyN(n)
		if b.isLeaf(n) {
			for i := 0; i < num; i++ {
				out = append(out, b.itemKey(n, i))
			}
			return
		}
		for i := 0; i < num; i++ {
			walk(b.child(n, i))
			out = append(out, b.itemKey(n, i))
		}
		walk(b.child(n, num))
	}
	walk(b.a.ReadU64(b.root + btRootNode))
	return out
}

// Verify implements Engine: sorted order, key-count bounds, uniform leaf
// depth, and count agreement.
func (b *BTree) Verify() error {
	rootNode := b.a.ReadU64(b.root + btRootNode)
	leafDepth := -1
	count := 0
	var prev []byte
	var walk func(n uint64, depth int, isRoot bool) error
	walk = func(n uint64, depth int, isRoot bool) error {
		num := b.keyN(n)
		if !isRoot && (num < btT-1 || num > btMaxKeys) {
			return fmt.Errorf("btree: node with %d keys", num)
		}
		if b.isLeaf(n) {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaves at depths %d and %d", leafDepth, depth)
			}
		}
		for i := 0; i < num; i++ {
			if !b.isLeaf(n) {
				if err := walk(b.child(n, i), depth+1, false); err != nil {
					return err
				}
			}
			k := b.itemKey(n, i)
			if prev != nil && string(prev) >= string(k) {
				return fmt.Errorf("btree: order violation at %q", k)
			}
			prev = k
			count++
		}
		if !b.isLeaf(n) {
			return walk(b.child(n, num), depth+1, false)
		}
		return nil
	}
	if err := walk(rootNode, 0, true); err != nil {
		return err
	}
	if count != b.Len() {
		return fmt.Errorf("btree: count %d, tree holds %d", b.Len(), count)
	}
	return nil
}
