// Package kv implements the five persistent index structures used by the
// paper's PMDK workloads (§VI-A2): B-Tree, C-Tree (crit-bit), RB-Tree,
// Hashmap and Skip list — each built from scratch on the pmobj persistent
// arena with crash-atomic updates, exactly the role libpmemobj's example
// engines play on the paper's server.
package kv

import (
	"bytes"
	"errors"
	"fmt"

	"pmnet/internal/pmem"
	"pmnet/internal/pmobj"
)

// Engine is the common interface of all five index structures.
type Engine interface {
	// Name identifies the engine ("btree", "ctree", "rbtree", "hashmap",
	// "skiplist").
	Name() string
	// Put inserts or overwrites key → value, crash-atomically.
	Put(key, value []byte) error
	// Get returns the value for key.
	Get(key []byte) ([]byte, bool)
	// Delete removes key, reporting whether it existed.
	Delete(key []byte) (bool, error)
	// Len returns the number of live keys.
	Len() int
	// Keys returns every live key (sorted for ordered engines).
	Keys() [][]byte
	// Verify checks the structure's invariants, returning the first
	// violation found.
	Verify() error
}

// Factory opens (or creates) an engine on an arena.
type Factory func(a *pmobj.Arena) (Engine, error)

// Factories maps engine names to constructors — the workload table of
// §VI-A2.
var Factories = map[string]Factory{
	"hashmap":  OpenHashmap,
	"skiplist": OpenSkiplist,
	"btree":    OpenBTree,
	"rbtree":   OpenRBTree,
	"ctree":    OpenCTree,
}

// EngineNames lists the engines in the paper's presentation order.
var EngineNames = []string{"btree", "ctree", "rbtree", "hashmap", "skiplist"}

// ErrWrongEngine is returned when an arena holds a different engine's root.
var ErrWrongEngine = errors.New("kv: arena holds a different engine")

// NewArena is a convenience: a fresh arena on a simulated PM device of the
// given capacity.
func NewArena(capacity int) *pmobj.Arena {
	dev := pmem.NewDevice(pmem.DefaultConfig(capacity))
	a, err := pmobj.Open(dev, 0)
	if err != nil {
		panic(err)
	}
	return a
}

// Engine root tags.
const (
	tagHashmap uint64 = 0x484D4150 + iota // arbitrary distinct tags
	tagSkiplist
	tagBTree
	tagRBTree
	tagCTree
)

// checkTag validates an existing root's engine tag.
func checkTag(a *pmobj.Arena, root, want uint64, name string) error {
	if got := a.ReadU64(root); got != want {
		return fmt.Errorf("%w: want %s", ErrWrongEngine, name)
	}
	return nil
}

// byte-string helpers ------------------------------------------------------

// putString allocates a block holding s and returns (offset, requested len).
func putString(tx *pmobj.Tx, s []byte) (uint64, error) {
	if len(s) == 0 {
		// Zero-length strings still need a distinct non-zero offset; a
		// 1-byte block serves as the sentinel.
		return tx.Alloc(1)
	}
	off, err := tx.Alloc(len(s))
	if err != nil {
		return 0, err
	}
	tx.WriteBytes(off, s)
	return off, nil
}

func getString(a *pmobj.Arena, off, n uint64) []byte {
	if n == 0 {
		return []byte{}
	}
	return a.ReadBytes(off, int(n))
}

func freeString(tx *pmobj.Tx, off, n uint64) {
	if n == 0 {
		n = 1
	}
	tx.Free(off, int(n))
}

// keyCompare compares a probe key against a stored key.
func keyCompare(a *pmobj.Arena, probe []byte, kOff, kLen uint64) int {
	return bytes.Compare(probe, getString(a, kOff, kLen))
}

// fnv64 hashes a key (used by hashmap bucketing and skiplist heights).
func fnv64(b []byte) uint64 {
	var h uint64 = 1469598103934665603
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
