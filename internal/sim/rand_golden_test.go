package sim

import (
	"math"
	"testing"
)

// The golden streams below pin the exact splitmix64 output for fixed seeds.
// Every experiment's reproducibility contract ("bit-identical results given
// a seed") bottoms out in this stream: if a refactor of Rand shifts any of
// these values, previously published experiment outputs silently change.
// These constants were captured from the initial implementation and must
// never be regenerated to make a failing test pass — a mismatch means the
// stream drifted, which is the bug.

var goldenUint64 = map[uint64][8]uint64{
	0: {0x1C948E1575796814, 0xAE9EF1AB67004BDB, 0x7A2988D31F16E86E, 0x7A5DAEA24EBA3BA7,
		0xBB83C0C2207AD3E6, 0xE2DA71D9F0E79E32, 0xF037B46F16A54449, 0xAFD7E49C4512EE8C},
	1: {0xAE9EF1AB67004BDB, 0x7A2988D31F16E86E, 0x7A5DAEA24EBA3BA7, 0xBB83C0C2207AD3E6,
		0xE2DA71D9F0E79E32, 0xF037B46F16A54449, 0xAFD7E49C4512EE8C, 0x25ADE43F8DCFFC85},
	42: {0xD6BD449915FC5DB6, 0xE0EBB372A27D4E0B, 0xE881FF7DB53AB26E, 0xB295815C0AD9D50C,
		0x29748CEC736E65FA, 0x029D4D575B392925, 0x7B5D52485E89F7CE, 0x4A77B5797E686207},
	0xDEADBEEF: {0xCE0F11D1B520C760, 0xAD0160D8E9250D7A, 0x4B68523FC849783D, 0x08B368C9CDCAA286,
		0x8AFC420F0DCE10F2, 0x150FCA7F03FE7BA4, 0xFABDE3DAC469EF3C, 0xF16BCC72F44C6043},
}

func TestRandGoldenUint64(t *testing.T) {
	for seed, want := range goldenUint64 {
		r := NewRand(seed)
		for i, w := range want {
			if got := r.Uint64(); got != w {
				t.Fatalf("seed %d: Uint64 #%d = %#016x, want %#016x (splitmix64 stream drifted)",
					seed, i, got, w)
			}
		}
	}
}

func TestRandGoldenFloat64(t *testing.T) {
	want := []float64{
		0.686888015891849,
		0.14718462516412945,
		0.00062271011008874222,
		0.62168456364315738,
	}
	r := NewRand(7)
	for i, w := range want {
		if got := r.Float64(); got != w {
			t.Fatalf("seed 7: Float64 #%d = %.17g, want %.17g", i, got, w)
		}
	}
}

func TestRandGoldenIntn(t *testing.T) {
	want := []int{58, 42, 13, 93, 99, 36}
	r := NewRand(11)
	for i, w := range want {
		if got := r.Intn(100); got != w {
			t.Fatalf("seed 11: Intn(100) #%d = %d, want %d", i, got, w)
		}
	}
}

func TestRandGoldenFork(t *testing.T) {
	f := NewRand(5).Fork()
	want := []uint64{0xCBF82771FD4A2078, 0xF64BBEB061078C3C}
	for i, w := range want {
		if got := f.Uint64(); got != w {
			t.Fatalf("fork of seed 5: Uint64 #%d = %#016x, want %#016x", i, got, w)
		}
	}
}

func TestZipfGoldenStream(t *testing.T) {
	// Zipf folds Float64 through the YCSB transform; pin it too so the
	// request-popularity sequence of every workload stays fixed.
	z := NewZipf(NewRand(99), 1000, 0.99)
	want := []int{931, 30, 381, 55, 222, 2, 28, 21, 601, 3}
	for i, w := range want {
		if got := z.Next(); got != w {
			t.Fatalf("zipf(n=1000, theta=0.99, seed 99) #%d = %d, want %d", i, got, w)
		}
	}
}

func TestRandStreamsIndependent(t *testing.T) {
	// Same seed → identical stream; regression guard for accidental global
	// state sneaking into Rand.
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed streams diverged at #%d: %#x != %#x", i, av, bv)
		}
	}
	if math.Abs(NewRand(1).Float64()-NewRand(2).Float64()) == 0 {
		t.Fatal("different seeds produced identical first Float64")
	}
}
