package sim

// Cancel-heavy stress of the engine's node pool and heap under epoch-style
// bounded execution: the conservative-PDES runner (internal/sim/pdes) drives
// engines through many short RunUntil windows, so Event handles routinely
// survive across window boundaries — scheduled in one window, cancelled or
// fired in a later one. The generation-tagged pool must never let a recycled
// node leak a stale callback through an old handle, and the heap must stay
// consistent through arbitrary interleavings of schedule, cancel, and fire.

import (
	"fmt"
	"testing"

	"pmnet/internal/raceflag"
)

// TestCancelStormAcrossWindows runs a deterministic schedule/cancel storm
// through thousands of short RunUntil windows and verifies (a) cancelled
// events never fire, (b) every surviving event fires exactly once, (c) the
// firing log is identical to an unwindowed run of the same storm.
func TestCancelStormAcrossWindows(t *testing.T) {
	type record struct {
		id    int
		ev    Event
		dead  bool
		fired bool
	}
	storm := func(windowed bool) []string {
		eng := NewEngine()
		r := NewRand(42)
		var log []string
		live := make([]*record, 0, 512)
		next := 0
		var tick func()
		tick = func() {
			now := eng.Now()
			// Schedule a burst of future events, some several windows out.
			for k := 0; k < 8; k++ {
				rec := &record{id: next}
				next++
				delay := Time(1 + r.Intn(300))
				rec.ev = eng.At(now+delay, func() {
					if rec.dead {
						log = append(log, fmt.Sprintf("ZOMBIE %d", rec.id))
						return
					}
					rec.fired = true
					log = append(log, fmt.Sprintf("t=%d fire %d", eng.Now(), rec.id))
				})
				live = append(live, rec)
			}
			// Cancel a deterministic subset of everything still pending —
			// including events scheduled many ticks ago, so cancels and their
			// targets land in different windows.
			keep := live[:0]
			for _, rec := range live {
				if rec.fired {
					continue
				}
				if r.Intn(3) == 0 {
					rec.dead = true
					rec.ev.Cancel()
					log = append(log, fmt.Sprintf("t=%d cancel %d", now, rec.id))
					continue
				}
				keep = append(keep, rec)
			}
			live = keep
			if next < 4000 {
				eng.At(now+Time(10+r.Intn(40)), tick)
			}
		}
		eng.At(1, tick)
		if windowed {
			// Epoch-style driving: many short bounded windows, exactly how
			// the pdes runner advances a shard.
			for w := Time(0); eng.Pending() > 0; w += 37 {
				eng.RunUntil(w)
			}
		} else {
			eng.Run()
		}
		return log
	}

	base := storm(false)
	if len(base) == 0 {
		t.Fatal("storm produced no events")
	}
	for _, line := range base {
		if len(line) >= 6 && line[:6] == "ZOMBIE" {
			t.Fatalf("cancelled event fired: %q", line)
		}
	}
	windowed := storm(true)
	if len(windowed) != len(base) {
		t.Fatalf("windowed run logged %d lines, unwindowed %d", len(windowed), len(base))
	}
	for i := range base {
		if windowed[i] != base[i] {
			t.Fatalf("line %d: windowed %q != unwindowed %q", i, windowed[i], base[i])
		}
	}
}

// TestCancelStormBoundaries repeats the windowed-vs-unwindowed storm with
// delays aimed at the timer wheel's hazardous edges: level-rollover
// boundaries (where a pop cascades a whole slot down a level) and the
// overflow horizon (where far-future events sit in the sorted overflow list
// until the wheel turns into their segment and promotes them). Cancelled
// nodes parked exactly on those edges exercise lazy deletion during cascade
// and during overflow promotion; runs under -race via `make race`/CI.
func TestCancelStormBoundaries(t *testing.T) {
	// One delay generator per hazard zone; each is stormed separately so a
	// failure names the boundary it broke on.
	zones := []struct {
		name  string
		delay func(r *Rand) Time
	}{
		{"rollover-l0l1", func(r *Rand) Time {
			return Time(wheelSlots - 4 + r.Intn(8)) // straddle the 64 ns slot edge
		}},
		{"rollover-high", func(r *Rand) Time {
			edge := Time(1) << (2 * wheelBits) // level-2 boundary
			return edge - 4 + Time(r.Intn(8))
		}},
		{"overflow-promotion", func(r *Rand) Time {
			// Half land just inside the wheel span, half just beyond it in
			// the overflow list; promotion interleaves them back.
			return wheelSpan - 50 + Time(r.Intn(100))
		}},
		{"deep-overflow", func(r *Rand) Time {
			return wheelSpan * Time(1+r.Intn(3)) // multiple whole-wheel turns
		}},
	}
	for _, zone := range zones {
		zone := zone
		t.Run(zone.name, func(t *testing.T) {
			type record struct {
				id    int
				ev    Event
				dead  bool
				fired bool
			}
			storm := func(windowed bool) []string {
				eng := NewEngine()
				r := NewRand(7)
				var log []string
				live := make([]*record, 0, 256)
				next := 0
				var tick func()
				tick = func() {
					now := eng.Now()
					for k := 0; k < 6; k++ {
						rec := &record{id: next}
						next++
						rec.ev = eng.At(now+zone.delay(r), func() {
							if rec.dead {
								log = append(log, fmt.Sprintf("ZOMBIE %d", rec.id))
								return
							}
							rec.fired = true
							log = append(log, fmt.Sprintf("t=%d fire %d", eng.Now(), rec.id))
						})
						live = append(live, rec)
					}
					keep := live[:0]
					for _, rec := range live {
						if rec.fired {
							continue
						}
						if r.Intn(3) == 0 {
							rec.dead = true
							rec.ev.Cancel()
							log = append(log, fmt.Sprintf("t=%d cancel %d", now, rec.id))
							continue
						}
						keep = append(keep, rec)
					}
					live = keep
					if next < 600 {
						// Re-arm from inside the hazard zone so successive
						// bursts cross the boundary from both sides.
						eng.At(now+1+Time(r.Intn(20)), tick)
					}
				}
				eng.At(1, tick)
				if windowed {
					// Drive deadlines that bracket each upcoming event:
					// one window ending just before it (forcing a peek and a
					// partial cascade toward it) and one just past it. This
					// lands RunUntil boundaries on cascade/promotion points
					// without striding the whole overflow horizon.
					for {
						nt, ok := eng.NextTime()
						if !ok {
							break
						}
						if nt > eng.Now()+1 {
							eng.RunUntil(nt - 1)
						}
						eng.RunUntil(nt + Time(wheelSlots-1))
					}
				} else {
					eng.Run()
				}
				return log
			}
			base := storm(false)
			if len(base) == 0 {
				t.Fatal("storm produced no events")
			}
			for _, line := range base {
				if len(line) >= 6 && line[:6] == "ZOMBIE" {
					t.Fatalf("cancelled event fired: %q", line)
				}
			}
			windowed := storm(true)
			if len(windowed) != len(base) {
				t.Fatalf("windowed run logged %d lines, unwindowed %d", len(windowed), len(base))
			}
			for i := range base {
				if windowed[i] != base[i] {
					t.Fatalf("line %d: windowed %q != unwindowed %q", i, windowed[i], base[i])
				}
			}
		})
	}
}

// TestCancelStormAllocs pins the storm's steady state: schedule + cancel +
// recycle through the generation-tagged pool stays allocation-free once the
// pool is warm (the sharded runner multiplies this pattern by the shard
// count, so a per-cancel allocation would scale with the fleet).
func TestCancelStormAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	eng := NewEngine()
	var sink int
	fn := func() { sink++ }
	round := func() {
		now := eng.Now()
		evs := [16]Event{}
		for k := range evs {
			evs[k] = eng.At(now+Time(5+k), fn)
		}
		for k := 0; k < len(evs); k += 2 {
			evs[k].Cancel()
		}
		eng.RunUntil(now + 40)
	}
	for i := 0; i < 10; i++ {
		round() // warm the node pool past the high-water mark
	}
	if got := testing.AllocsPerRun(200, round); got != 0 {
		t.Errorf("cancel storm allocated %.1f objects per round, want 0", got)
	}
}
