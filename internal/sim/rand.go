package sim

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64 core) used for all
// stochastic model inputs. We avoid math/rand so that the stream is stable
// across Go releases and so each model component can own an independent,
// seedable stream.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed*0x9E3779B97F4A7C15 + 0x1234567890ABCDEF}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return -mean * math.Log(1-u)
}

// Normal returns a normally distributed value (Box–Muller).
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)). Network-stack latencies are
// well modelled as lognormal: a tight body with a long right tail.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Fork derives an independent generator from this one; useful for giving each
// simulated component its own stream while keeping a single top-level seed.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64())
}

// Zipf generates values in [0, n) following a Zipfian distribution with
// exponent theta, the standard YCSB request-popularity model.
type Zipf struct {
	r     *Rand
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // zeta(2, theta)
}

// NewZipf constructs a Zipfian generator over [0, n) with exponent theta
// (YCSB uses 0.99). It panics if n <= 0 or theta is not in (0, 1).
func NewZipf(r *Rand, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	if theta <= 0 || theta >= 1 {
		panic("sim: Zipf theta must be in (0,1)")
	}
	z := &Zipf{r: r, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.half = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.half/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next sample in [0, n). Rank 0 is the most popular item.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}
