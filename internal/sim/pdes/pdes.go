// Package pdes runs several sim.Engine instances as one conservative
// parallel discrete-event simulation.
//
// The model is classic conservative PDES with lookahead (Chandy/Misra; the
// same structure ns-3's distributed scheduler uses): the topology is split
// into shards, each owning a disjoint set of entities on its own engine, and
// every interaction that crosses a shard boundary is guaranteed to take at
// least L nanoseconds of virtual time (the minimum cross-shard link latency,
// measured at topology-build time). Execution proceeds in barrier-
// synchronized epochs:
//
//  1. Drain: each shard injects the cross-shard work its peers queued during
//     the previous epoch, in a deterministic merge order, and reclaims any
//     resources returned to it.
//  2. Reduce: every worker reads the per-shard next-event times written
//     before the barrier and computes the global minimum gmin identically.
//  3. Run: each shard executes its events in [gmin, gmin+L) independently.
//
// Because the first event of the epoch fires at ≥ gmin, anything a shard
// sends during the epoch arrives at ≥ gmin+L — the start of the next epoch —
// so no shard can receive an event in its own past, and the merge at the
// next barrier sees every cross-shard event before any of them is runnable.
// DESIGN.md §10.4 develops the full argument and the byte-identical-output
// discipline built on top of this runner.
//
// Determinism: the runner's output order is a pure function of the shard
// structure, never of the worker count or host scheduling. Workers only
// multiplex shards (shard s is always driven by worker s mod W, each shard's
// drain and run steps happen in shard order within a worker and are mutually
// independent across workers), and the barrier's atomics provide the
// happens-before edges that make the cross-shard queue handoffs safe.
package pdes

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"pmnet/internal/sim"
)

// never is the reduction identity: no pending event.
const never = sim.Time(math.MaxInt64)

// Shard is one partition of the simulation: an engine owning a disjoint set
// of entities, plus the drain hook that injects pending cross-shard work.
type Shard struct {
	// Eng is the shard's event engine. Only the worker driving this shard
	// touches it between barriers.
	Eng *sim.Engine
	// Drain is invoked at every epoch barrier, before the epoch window is
	// chosen: it must inject every cross-shard event queued for this shard
	// (in the deterministic merge order the model defines) and reclaim any
	// pooled resources returned to it. May be nil.
	Drain func()
}

// Runner drives a set of shards in barrier-synchronized epochs.
type Runner struct {
	shards    []Shard
	lookahead sim.Time
	workers   int
	mins      []minSlot
	bar       barrier
}

// minSlot holds one shard's next-event time, padded to its own cache line so
// per-epoch writes from different workers never false-share.
type minSlot struct {
	t sim.Time
	_ [56]byte
}

// New creates a runner over shards with the given lookahead (must be ≥ 1 ns:
// a zero window could never fire an event and the epoch loop would spin
// forever). workers bounds the worker pool; values ≤ 0 or beyond the shard
// count and GOMAXPROCS are clamped. The shard list order is part of the
// deterministic contract: shard s is always driven by worker s mod W.
func New(shards []Shard, lookahead sim.Time, workers int) *Runner {
	if len(shards) == 0 {
		panic("pdes: no shards")
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("pdes: lookahead %d ns is not positive", lookahead))
	}
	if workers <= 0 || workers > len(shards) {
		workers = len(shards)
	}
	if mx := runtime.GOMAXPROCS(0); workers > mx {
		workers = mx
	}
	return &Runner{
		shards:    shards,
		lookahead: lookahead,
		workers:   workers,
		mins:      make([]minSlot, len(shards)),
		bar:       barrier{n: int32(workers)},
	}
}

// Workers returns the resolved worker-pool size.
func (r *Runner) Workers() int { return r.workers }

// Lookahead returns the epoch window width.
func (r *Runner) Lookahead() sim.Time { return r.lookahead }

// Run executes epochs until every shard's queue is drained (checked after
// the drain phase, so in-flight cross-shard events keep the run alive).
func (r *Runner) Run() { r.RunUntil(never) }

// RunUntil executes epochs until every event with time ≤ deadline has run,
// then advances every shard clock to deadline (mirroring Engine.RunUntil).
// Events beyond the deadline stay queued for a later call.
//
// Model callbacks must not call Engine.Stop: the epoch loop would simply
// resume the engine at the next barrier.
func (r *Runner) RunUntil(deadline sim.Time) {
	if r.workers == 1 {
		r.work(0, deadline, nil)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < r.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.work(w, deadline, &r.bar)
		}(w)
	}
	r.work(0, deadline, &r.bar)
	wg.Wait()
}

// work is one worker's epoch loop. Every worker runs the identical control
// flow and computes the same gmin from the same mins snapshot, so they all
// agree on every epoch window and on the exit epoch without any leader.
// bar is nil in the single-worker fast path (no goroutines, no atomics).
func (r *Runner) work(w int, deadline sim.Time, bar *barrier) {
	var sense uint32
	for {
		for s := w; s < len(r.shards); s += r.workers {
			if d := r.shards[s].Drain; d != nil {
				d()
			}
			if t, ok := r.shards[s].Eng.NextTime(); ok {
				r.mins[s].t = t
			} else {
				r.mins[s].t = never
			}
		}
		if bar != nil {
			bar.wait(&sense)
		}
		gmin := never
		for i := range r.mins {
			if r.mins[i].t < gmin {
				gmin = r.mins[i].t
			}
		}
		if gmin == never || gmin > deadline {
			// Globally drained (below the deadline). Advance this worker's
			// shard clocks to the deadline so every engine agrees on Now,
			// exactly as Engine.RunUntil leaves a drained engine.
			if deadline < never {
				for s := w; s < len(r.shards); s += r.workers {
					r.shards[s].Eng.RunUntil(deadline)
				}
			}
			return
		}
		// The epoch window is [gmin, gmin+L): every event in it is safe to
		// run because nothing sent during the epoch can arrive before
		// gmin+L. RunUntil is ≤-inclusive, hence the -1 (integer ns).
		runTo := gmin + r.lookahead - 1
		if runTo > deadline {
			runTo = deadline
		}
		for s := w; s < len(r.shards); s += r.workers {
			r.shards[s].Eng.RunUntil(runTo)
		}
		if bar != nil {
			bar.wait(&sense)
		}
	}
}

// Now returns the maximum shard clock — after a bounded RunUntil all shards
// agree on it; after an unbounded Run it is the time of the last event.
func (r *Runner) Now() sim.Time {
	var max sim.Time
	for i := range r.shards {
		if t := r.shards[i].Eng.Now(); t > max {
			max = t
		}
	}
	return max
}

// EventsRun sums executed events across shards. The total is deterministic:
// the same events fire in every shard configuration.
func (r *Runner) EventsRun() uint64 {
	var n uint64
	for i := range r.shards {
		n += r.shards[i].Eng.EventsRun()
	}
	return n
}

// barrier is a sense-reversing spin barrier. Epochs are sub-microsecond, so
// the wait is a spin with Gosched rather than a futex sleep; the atomics
// double as the happens-before edges that publish each worker's plain writes
// (mins slots, cross-shard queue slices) to every other worker: each
// arrival's Add is observed by the last arrival, whose sense Store is
// observed by every spinner's Load.
type barrier struct {
	n     int32 // party count, fixed at construction
	count atomic.Int32
	sense atomic.Uint32
}

func (b *barrier) wait(sense *uint32) {
	s := *sense ^ 1
	*sense = s
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(s)
		return
	}
	for b.sense.Load() != s {
		runtime.Gosched()
	}
}
