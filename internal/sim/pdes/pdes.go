// Package pdes runs several sim.Engine instances as one conservative
// parallel discrete-event simulation.
//
// The model is classic conservative PDES with lookahead (Chandy/Misra; the
// same structure ns-3's distributed scheduler uses): the topology is split
// into shards, each owning a disjoint set of entities on its own engine, and
// every interaction that crosses a shard boundary is guaranteed to take at
// least L nanoseconds of virtual time (the minimum cross-shard link latency,
// measured at topology-build time). Execution proceeds in barrier-
// synchronized epochs, ONE barrier per epoch:
//
//  1. Reduce: every worker reads the per-shard next-event times and the
//     pending cross-shard queue minimum published before the previous
//     barrier and computes the global minimum gmin identically.
//  2. Begin/Drain/Run: each shard flips its handoff queues to the epoch's
//     write parity (Begin), injects the cross-shard work its peers queued
//     during the previous epoch from the read parity (Drain, deterministic
//     merge order), then executes its events in [gmin, gmin+L). Shards whose
//     next event lies beyond the window skip the engine run entirely.
//  3. Publish: each shard writes its next-event time and cumulative event
//     count into the epoch's parity slot, then all workers meet at the
//     barrier.
//
// Fusing the classic drain barrier into the run barrier is what the parity
// double-buffering buys: during epoch k producers append to buffers and
// min-slots of parity k&1 while consumers read parity (k-1)&1, so no barrier
// is needed between "publish" and "read" — the single barrier at the end of
// the epoch is the happens-before edge that hands parity k&1 to epoch k+1.
// The pending-queue minimums (Shard.PendingOut) are load-bearing for
// correctness: events sitting in handoff buffers are invisible to the
// engines until drained, so gmin must take them into account or a window
// could open past an undrained event and violate causality. Each shard folds
// its own outbound-queue minimums into the slot it publishes, so the reduce
// is O(shards) regardless of how many queues the topology has.
//
// Epoch batching (solo stretches): when the reduce shows that no cross-shard
// handoff is pending and every shard active in the upcoming window belongs
// to one worker, that worker runs epochs alone — full Begin/Drain/run/publish
// per epoch, exact same window sequence — while its peers park at the
// barrier, then rejoin at the epoch the leader publishes. The epoch/gmin
// sequence (and therefore every engine's event order and the Epochs counter)
// is byte-identical to the fully barriered run; only the barrier count —
// wall-clock-class telemetry — changes. See DESIGN.md §10.6.
//
// Because the first event of the epoch fires at ≥ gmin, anything a shard
// sends during the epoch arrives at ≥ gmin+L — the start of the next epoch —
// so no shard can receive an event in its own past, and the drain at the
// next epoch sees every cross-shard event before any of them is runnable.
// DESIGN.md §10.4 and §10.6 develop the full argument and the
// byte-identical-output discipline built on top of this runner.
//
// Determinism: the runner's output order is a pure function of the shard
// structure, never of the worker count or host scheduling. Workers only
// multiplex shards; the shard→worker assignment is rebalanced every
// rebalanceEvery epochs from published per-shard event counts, but every
// worker recomputes the identical assignment from identical published data,
// and which worker drives a shard cannot perturb the order its events run
// in. The barrier's atomics provide the happens-before edges that make the
// cross-shard queue handoffs safe.
package pdes

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pmnet/internal/sim"
)

// never is the reduction identity: no pending event.
const never = sim.Time(math.MaxInt64)

// rebalanceEvery is the epoch cadence of the deterministic shard→worker
// reassignment. Each worker recomputes an LPT assignment from the per-shard
// event-count deltas published at the previous barrier; 64 epochs amortizes
// the (tiny) sort while still tracking load shifts quickly.
const rebalanceEvery = 64

// Shard is one partition group of the simulation: an engine owning a
// disjoint set of entities, plus the parity hooks that manage its
// cross-shard handoff queues.
type Shard struct {
	// Eng is the shard's event engine. Only the worker driving this shard
	// touches it between barriers.
	Eng *sim.Engine
	// Begin is invoked at the start of every epoch, before Drain: it must
	// flip the shard's OUTBOUND handoff queues to the given write parity
	// (resetting that parity's pending-minimum slots). It runs
	// unconditionally — even for shards whose engine run is skipped —
	// because a stale pending minimum would wedge the global window.
	// May be nil for shards with no cross-shard queues.
	Begin func(parity uint32)
	// Drain is invoked after Begin with the opposite (read) parity: it must
	// inject every cross-shard event queued for this shard at that parity
	// (in the deterministic merge order the model defines) and reclaim any
	// pooled resources returned to it. May be nil.
	Drain func(parity uint32)
	// PendingOut reports the minimum event time this shard has queued into
	// outbound handoff buffers at the given parity (never if none), split by
	// destination: own covers queues whose destination lives on this same
	// shard (drained by this shard's own worker), cross covers queues bound
	// for other shards. The runner folds own into the shard's published
	// next-event time and publishes cross separately, so the per-epoch reduce
	// is O(shards) and the solo-stretch detector can see that no other shard
	// owes or is owed a drain. Required whenever the shard has outbound
	// queues (netsim: Fabric.PendingOutFunc); may be nil otherwise.
	PendingOut func(parity uint32) (own, cross sim.Time)
}

// PerfStats reports wall-clock-class runner telemetry. These numbers are NOT
// deterministic across runs (barrier spin time) or across shard counts
// (idle skips depend on the shard structure), so they belong in perf
// reporting — never in the byte-compared counter registry.
type PerfStats struct {
	// Epochs is the number of executed epoch windows. (This one IS a pure
	// function of the global event set — shard-count- and worker-count-
	// invariant — and is safe to mirror into deterministic counters.)
	Epochs uint64
	// BarrierNs is the cumulative wall time workers spent spinning at the
	// epoch barrier (0 on the single-worker path, which has no barrier).
	BarrierNs int64
	// IdleSkips counts shard-epochs where the engine run was skipped
	// because the shard's next event lay beyond the window.
	IdleSkips uint64
	// SoloEpochs counts epochs executed barrier-free inside a solo stretch
	// (each one saved a full barrier round-trip). Depends on the worker
	// count and shard→worker assignment, so perf-class only.
	SoloEpochs uint64
	// SoloStretches counts entries into solo mode.
	SoloStretches uint64
}

// Runner drives a set of shards in barrier-synchronized epochs.
type Runner struct {
	shards    []Shard
	lookahead sim.Time
	workers   int
	// quiesce, if set, runs single-threaded after every RunUntil, once all
	// workers have joined — the hook for cleanup no later epoch will do
	// (netsim: repatriating the final epoch's packet frees).
	quiesce func()
	mins    []minSlot
	bar     barrier
	// epoch counts executed epoch windows across RunUntil calls; its parity
	// selects the live buffer of every double-buffered structure.
	epoch  uint64
	states []*workerState
	// soloRejoin carries the epoch at which a solo stretch ends from the
	// leader to its parked peers; the leader stores it before arriving at
	// the rejoin barrier, whose happens-before edge publishes it.
	soloRejoin atomic.Uint64
	barrierNs  atomic.Int64
}

// minSlot holds one shard's published next-event time (engine minimum folded
// with the shard's own intra-shard outbound queue minimum), cross-shard
// outbound queue minimum, and cumulative event count, double-buffered by
// epoch parity (the owner writes parity k&1 at the end of epoch k while
// peers still read parity (k-1)&1 in their reduce), and padded to its own
// cache line so per-epoch writes from different workers never false-share.
type minSlot struct {
	t      [2]sim.Time
	y      [2]sim.Time // cross-shard outbound pending minimum
	events [2]uint64
	_      [16]byte
}

// workerState is one worker's private view of the shard→worker assignment
// plus rebalancing scratch. Every worker recomputes the identical assignment
// from the same published data, so private copies stay in agreement without
// any cross-worker writes.
type workerState struct {
	asg        []int32  // shard -> worker
	lastEvents []uint64 // cumulative events at last rebalance
	order      []int32  // scratch: shards sorted by delta desc
	delta      []uint64 // scratch: events since last rebalance
	load       []uint64 // scratch: per-worker assigned load
	lastRebal  uint64   // epoch of the last rebalance (guards re-entry)
	idleSkips  uint64
	soloEpochs    uint64
	soloStretches uint64
}

// New creates a runner over shards with the given lookahead (must be ≥ 1 ns:
// a zero window could never fire an event and the epoch loop would spin
// forever). workers bounds the worker pool; values ≤ 0 or beyond the shard
// count and GOMAXPROCS are clamped. The shard list order is part of the
// deterministic contract; the initial assignment is shard s → worker s mod W.
func New(shards []Shard, lookahead sim.Time, workers int) *Runner {
	if len(shards) == 0 {
		panic("pdes: no shards")
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("pdes: lookahead %d ns is not positive", lookahead))
	}
	if workers <= 0 || workers > len(shards) {
		workers = len(shards)
	}
	if mx := runtime.GOMAXPROCS(0); workers > mx {
		workers = mx
	}
	r := &Runner{
		shards:    shards,
		lookahead: lookahead,
		mins:      make([]minSlot, len(shards)),
	}
	r.setWorkers(workers)
	return r
}

// SetQuiesce installs a hook invoked single-threaded at the end of every
// Run/RunUntil call, after all workers have joined (netsim: Fabric.Quiesce).
// Must not be called while a run is in progress.
func (r *Runner) SetQuiesce(f func()) { r.quiesce = f }

// SetWorkers resizes the worker pool between runs (values ≤ 0 or beyond the
// shard count are clamped to the shard count; unlike New it does NOT clamp
// to GOMAXPROCS — callers pass budgeted counts, and tests force
// multi-worker execution on single-CPU machines). Worker count never
// affects output, only wall clock. Must not be called while a run is in
// progress.
func (r *Runner) SetWorkers(n int) {
	if n <= 0 || n > len(r.shards) {
		n = len(r.shards)
	}
	if n == r.workers {
		return
	}
	r.setWorkers(n)
}

func (r *Runner) setWorkers(n int) {
	r.workers = n
	r.bar.n = int32(n)
	s := len(r.shards)
	r.states = make([]*workerState, n)
	for w := range r.states {
		st := &workerState{
			asg:        make([]int32, s),
			lastEvents: make([]uint64, s),
			order:      make([]int32, s),
			delta:      make([]uint64, s),
			load:       make([]uint64, n),
			lastRebal:  r.epoch,
		}
		for i := 0; i < s; i++ {
			st.asg[i] = int32(i % n)
			st.lastEvents[i] = r.shards[i].Eng.EventsRun()
		}
		r.states[w] = st
	}
}

// Workers returns the resolved worker-pool size.
func (r *Runner) Workers() int { return r.workers }

// Lookahead returns the epoch window width.
func (r *Runner) Lookahead() sim.Time { return r.lookahead }

// Perf returns runner telemetry accumulated so far. Not safe to call while
// a run is in progress.
func (r *Runner) Perf() PerfStats {
	p := PerfStats{Epochs: r.epoch, BarrierNs: r.barrierNs.Load()}
	for _, st := range r.states {
		p.IdleSkips += st.idleSkips
		p.SoloEpochs += st.soloEpochs
		p.SoloStretches += st.soloStretches
	}
	return p
}

// Run executes epochs until every shard's queue — engine and handoff — is
// drained.
func (r *Runner) Run() { r.RunUntil(never) }

// RunUntil executes epochs until every event with time ≤ deadline has run,
// then advances every shard clock to deadline (mirroring Engine.RunUntil).
// Events beyond the deadline stay queued — in engines or in handoff buffers
// — for a later call.
//
// Model callbacks must not call Engine.Stop: the epoch loop would simply
// resume the engine at the next epoch.
func (r *Runner) RunUntil(deadline sim.Time) {
	if r.workers == 1 {
		r.epoch = r.work(0, deadline, nil)
		if r.quiesce != nil {
			r.quiesce()
		}
		return
	}
	// Fresh barrier state per call: workers restart their local sense at 0,
	// so the shared sense must restart too or the first barrier of a call
	// after an odd-wait call would let spinners fall through early.
	r.bar.reset()
	var wg sync.WaitGroup
	for w := 1; w < r.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.work(w, deadline, &r.bar)
		}(w)
	}
	e := r.work(0, deadline, &r.bar)
	wg.Wait()
	r.epoch = e
	if r.quiesce != nil {
		r.quiesce()
	}
}

// work is one worker's epoch loop; it returns the epoch counter at exit
// (identical across workers: every worker computes the same gmin from the
// same parity snapshot, so they all agree on every window and on the exit
// epoch without any leader). bar is nil in the single-worker fast path (no
// goroutines, no atomics, no allocations in steady state).
func (r *Runner) work(w int, deadline sim.Time, bar *barrier) uint64 {
	st := r.states[w]
	epoch := r.epoch
	var sense uint32
	var waitNs int64
	// Prologue: publish fresh next-event times into the parity the first
	// reduce will read. Callers may have scheduled new engine work since the
	// last run, and after SetWorkers the slots may never have been written.
	pp := uint32(epoch+1) & 1
	for s := range r.shards {
		if st.asg[s] != int32(w) {
			continue
		}
		r.publish(s, pp)
	}
	if bar != nil {
		bar.wait(&sense, &waitNs)
	}
	for {
		// Rebalance on cadence, from the event counts published at the
		// previous barrier. Skipped on the single-worker path, and guarded
		// against re-running when RunUntil re-enters at the same epoch.
		if bar != nil && epoch > 0 && epoch%rebalanceEvery == 0 && st.lastRebal != epoch {
			st.lastRebal = epoch
			st.rebalance(r.mins, uint32(epoch+1)&1)
		}
		wp := uint32(epoch) & 1 // this epoch's write parity
		rp := wp ^ 1            // previous epoch's parity: what we read
		gmin, anyY := r.reduce(rp)
		if gmin == never || gmin > deadline {
			// Globally drained (below the deadline). Advance this worker's
			// shard clocks to the deadline so every engine agrees on Now,
			// exactly as Engine.RunUntil leaves a drained engine. Handoff
			// buffers may still hold events — all ≥ gmin > deadline, by the
			// pending-minimum bound — and they stay queued for a later call.
			if deadline < never {
				for s := range r.shards {
					if st.asg[s] != int32(w) {
						continue
					}
					r.shards[s].Eng.RunUntil(deadline)
				}
			}
			break
		}
		// The epoch window is [gmin, gmin+L): every event in it is safe to
		// run because nothing sent during the epoch can arrive before
		// gmin+L. RunUntil is ≤-inclusive, hence the -1 (integer ns).
		runTo := gmin + r.lookahead - 1
		if runTo > deadline {
			runTo = deadline
		}
		// Solo-stretch detection. Every worker computes the same verdict
		// from the same published slots and the same private-but-identical
		// assignment, so entry and exit are fleet-consistent without any
		// extra coordination.
		if bar != nil && !anyY {
			if leader, horizon := r.soloCheck(st, rp, runTo); leader >= 0 {
				if int32(w) != leader {
					// Park. This epoch's body is the ordinary one (all my
					// shards idle-skip — that is what the detection proved),
					// and it leaves my published slots frozen: an idle
					// shard's publish rewrites the values of the previous
					// epoch, so BOTH parities already agree and stay valid
					// for the whole stretch without further writes. Then
					// wait out the stretch at a second barrier.
					r.runShards(st, w, wp, rp, runTo)
					bar.wait(&sense, &waitNs) // end-of-epoch barrier
					bar.wait(&sense, &waitNs) // park until the leader rejoins
					epoch = r.soloRejoin.Load()
					continue
				}
				// Leader: run this epoch normally — its end-of-epoch barrier
				// orders the peers' last writes before the stretch — then run
				// epochs alone until the window would touch a foreign shard
				// (horizon, constant while the peers sit idle), a cross-shard
				// handoff appears, or the deadline is reached. The solo
				// reduce reads only this worker's own slots and folds the
				// horizon in for the rest, so no foreign memory is touched
				// while the peers spin. A stretch also ends at the next
				// rebalance boundary, so reassignment happens at exactly
				// the same epochs as the fully barriered run and every
				// worker's private assignment stays in lockstep.
				r.runShards(st, w, wp, rp, runTo)
				epoch++
				bar.wait(&sense, &waitNs)
				st.soloStretches++
				for {
					wp = uint32(epoch) & 1
					rp = wp ^ 1
					g, y := r.soloReduce(st, w, rp)
					if g > horizon {
						g = horizon
					}
					if g == never || g > deadline {
						break
					}
					rt := g + r.lookahead - 1
					if rt > deadline {
						rt = deadline
					}
					if y || rt >= horizon {
						break
					}
					r.runShards(st, w, wp, rp, rt)
					epoch++
					st.soloEpochs++
					if epoch%rebalanceEvery == 0 {
						break
					}
				}
				r.soloRejoin.Store(epoch)
				bar.wait(&sense, &waitNs) // wake the parked peers at epoch
				continue
			}
		}
		r.runShards(st, w, wp, rp, runTo)
		epoch++
		if bar != nil {
			bar.wait(&sense, &waitNs)
		}
	}
	if bar != nil && waitNs > 0 {
		r.barrierNs.Add(waitNs)
	}
	return epoch
}

// reduce computes the global minimum over every shard's published next-event
// time and cross-shard outbound pending minimum at the given parity, and
// reports whether any cross-shard handoff content is pending at all. O(shards)
// — the per-queue minimums were folded in at publish time by their owners.
func (r *Runner) reduce(rp uint32) (gmin sim.Time, anyY bool) {
	gmin = never
	for i := range r.mins {
		m := &r.mins[i]
		if t := m.t[rp]; t < gmin {
			gmin = t
		}
		if y := m.y[rp]; y < never {
			anyY = true
			if y < gmin {
				gmin = y
			}
		}
	}
	return gmin, anyY
}

// soloCheck reports the worker that owns every shard whose next event falls
// inside the upcoming window, or -1 if those shards span workers (or the
// stretch is too short to pay for its extra rendezvous). horizon is the
// earliest next-event time of any shard the leader does NOT own — constant
// while those shards sit idle, so the leader re-checks it locally each solo
// epoch without touching its peers. Caller guarantees no cross-shard handoff
// is pending (anyY false), so published t values cover all queued work.
func (r *Runner) soloCheck(st *workerState, rp uint32, runTo sim.Time) (int32, sim.Time) {
	leader := int32(-1)
	for i := range r.mins {
		if r.mins[i].t[rp] > runTo {
			continue
		}
		if leader < 0 {
			leader = st.asg[i]
		} else if st.asg[i] != leader {
			return -1, 0
		}
	}
	if leader < 0 {
		return -1, 0
	}
	horizon := never
	for i := range r.mins {
		if st.asg[i] != leader {
			if t := r.mins[i].t[rp]; t < horizon {
				horizon = t
			}
		}
	}
	// Entry margin: a stretch pays one extra barrier round-trip (the rejoin),
	// so require headroom for at least ~two barrier-free windows before the
	// horizon. Deterministic — every worker reaches the same verdict.
	if horizon-runTo < 2*r.lookahead {
		return -1, 0
	}
	return leader, horizon
}

// runShards performs one epoch of work for every shard this worker owns:
// flip outbound queues to the write parity, drain the read parity, run the
// window, publish. Identical to the classic epoch body.
func (r *Runner) runShards(st *workerState, w int, wp, rp uint32, runTo sim.Time) {
	for s := range r.shards {
		if st.asg[s] != int32(w) {
			continue
		}
		sh := &r.shards[s]
		if sh.Begin != nil {
			sh.Begin(wp)
		}
		if sh.Drain != nil {
			sh.Drain(rp)
		}
		// Idle-shard fast path: if the shard's next event (after the
		// drain) lies beyond the window, skip the engine run. Its clock
		// lags, but Now only matters as a max across shards, and the
		// bounded exit path advances every clock to the deadline.
		if t, ok := sh.Eng.NextTime(); ok && t <= runTo {
			sh.Eng.RunUntil(runTo)
		} else {
			st.idleSkips++
		}
		r.publish(s, wp)
	}
}

// soloReduce is the stretch-mode reduce: the minimum over only the leader's
// own shards' published slots at the given parity. The caller folds the
// (constant) horizon in for everyone else's shards, so the leader never
// reads memory a parked peer might own. anyY reports cross-shard handoff
// content queued by the leader's shards — the first such push ends the
// stretch, because its destination shard must drain at the very next epoch.
func (r *Runner) soloReduce(st *workerState, w int, rp uint32) (gmin sim.Time, anyY bool) {
	gmin = never
	for i := range r.mins {
		if st.asg[i] != int32(w) {
			continue
		}
		m := &r.mins[i]
		if t := m.t[rp]; t < gmin {
			gmin = t
		}
		if y := m.y[rp]; y < never {
			anyY = true
			if y < gmin {
				gmin = y
			}
		}
	}
	return gmin, anyY
}

// publish writes shard s's next-event time (folded with its intra-shard
// outbound pending minimum), cross-shard outbound pending minimum, and
// cumulative event count into the given parity slot. Only the worker driving
// s calls it.
func (r *Runner) publish(s int, parity uint32) {
	m := &r.mins[s]
	sh := &r.shards[s]
	t := never
	if et, ok := sh.Eng.NextTime(); ok {
		t = et
	}
	y := never
	if sh.PendingOut != nil {
		own, cross := sh.PendingOut(parity)
		if own < t {
			t = own
		}
		y = cross
	}
	m.t[parity] = t
	m.y[parity] = y
	m.events[parity] = sh.Eng.EventsRun()
}

// rebalance recomputes this worker's private shard→worker assignment by LPT
// (longest processing time first) over the event-count deltas since the last
// rebalance. Insertion sort + linear argmin: zero allocations, and fully
// deterministic (delta desc, shard index asc on ties; lowest worker index on
// load ties), so every worker lands on the identical assignment.
func (st *workerState) rebalance(mins []minSlot, parity uint32) {
	s := len(st.asg)
	w := len(st.load)
	for i := 0; i < s; i++ {
		ev := mins[i].events[parity]
		st.delta[i] = ev - st.lastEvents[i]
		st.lastEvents[i] = ev
		st.order[i] = int32(i)
	}
	for i := 1; i < s; i++ {
		o := st.order[i]
		d := st.delta[o]
		j := i - 1
		for j >= 0 && st.delta[st.order[j]] < d {
			st.order[j+1] = st.order[j]
			j--
		}
		st.order[j+1] = o
	}
	for i := range st.load {
		st.load[i] = 0
	}
	for _, sh := range st.order {
		best := 0
		for i := 1; i < w; i++ {
			if st.load[i] < st.load[best] {
				best = i
			}
		}
		st.asg[sh] = int32(best)
		// +1 so zero-delta shards still spread instead of piling onto
		// worker 0 between bursts.
		st.load[best] += st.delta[sh] + 1
	}
}

// Now returns the maximum shard clock — after a bounded RunUntil all shards
// agree on it; after an unbounded Run it is the time of the last event.
func (r *Runner) Now() sim.Time {
	var max sim.Time
	for i := range r.shards {
		if t := r.shards[i].Eng.Now(); t > max {
			max = t
		}
	}
	return max
}

// EventsRun sums executed events across shards. The total is deterministic:
// the same events fire in every shard configuration.
func (r *Runner) EventsRun() uint64 {
	var n uint64
	for i := range r.shards {
		n += r.shards[i].Eng.EventsRun()
	}
	return n
}

// barrier is a sense-reversing spin barrier. Epochs are sub-microsecond, so
// the wait is a spin with Gosched rather than a futex sleep; the atomics
// double as the happens-before edges that publish each worker's plain writes
// (minSlot parities, cross-shard queue parities) to every other worker: each
// arrival's Add is observed by the last arrival, whose sense Store is
// observed by every spinner's Load.
type barrier struct {
	n     int32 // party count; written only between runs (SetWorkers)
	count atomic.Int32
	sense atomic.Uint32
}

// reset restores the initial state so a new run's workers (whose local
// senses restart at 0) agree with the shared sense. Called single-threaded
// at the top of RunUntil.
func (b *barrier) reset() {
	b.count.Store(0)
	b.sense.Store(0)
}

// wait blocks until all n parties arrive, accumulating spin time into
// spinNs. The last arrival pays no timing overhead, and a spinner that finds
// the sense already flipped pays none either.
func (b *barrier) wait(sense *uint32, spinNs *int64) {
	s := *sense ^ 1
	*sense = s
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(s)
		return
	}
	if b.sense.Load() == s {
		return
	}
	//pmnetlint:ignore wallclock barrier spin time is perf telemetry only, never simulated
	start := time.Now()
	for b.sense.Load() != s {
		runtime.Gosched()
	}
	//pmnetlint:ignore wallclock barrier spin time is perf telemetry only, never simulated
	*spinNs += time.Since(start).Nanoseconds()
}
