package pdes

// Micro-benchmarks and allocation pins for the epoch machinery: the
// single-barrier epoch loop must stay allocation-free in steady state (the
// only allowed allocations are the worker-goroutine spawns at RunUntil
// entry on the multi-worker path), and BenchmarkEpochOverhead/-Barrier give
// `make microbench` a tracked number for the per-epoch fixed cost.

import (
	"fmt"
	"sync"
	"testing"

	"pmnet/internal/raceflag"
	"pmnet/internal/sim"
)

// benchRig builds a quiet cross-shard rig: every shard self-reschedules one
// tick per 50 ns — exactly one event per shard per epoch, no logging, no
// cross traffic — so the measured cost is the runner machinery (reduce,
// parity flips, drain scans, publish, barrier), not the model.
func benchRig(shards, workers int) *Runner {
	tn := newTestNet(shards, 50)
	for i := range tn.engs {
		eng := tn.engs[i]
		var tick func()
		tick = func() { eng.At(eng.Now()+50, tick) }
		eng.At(1, tick)
	}
	return tn.runner(workers)
}

// BenchmarkEpochOverhead: one op is one epoch window (4 shards, one event
// each plus the full begin/drain/publish/barrier cycle).
func BenchmarkEpochOverhead(b *testing.B) {
	for _, w := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			r := benchRig(4, w)
			r.RunUntil(1000) // warm event pools and parity buffers
			b.ReportAllocs()
			b.ResetTimer()
			r.RunUntil(1000 + sim.Time(b.N)*50)
		})
	}
}

// BenchmarkBarrier: one op is one full barrier round for all parties.
func BenchmarkBarrier(b *testing.B) {
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("parties=%d", n), func(b *testing.B) {
			var bar barrier
			bar.n = int32(n)
			bar.reset()
			var wg sync.WaitGroup
			b.ResetTimer()
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var sense uint32
					var ns int64
					for i := 0; i < b.N; i++ {
						bar.wait(&sense, &ns)
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestEpochAllocs pins the single-worker epoch loop to zero steady-state
// allocations: ten epochs per run — reduce, parity flips, drains, publishes,
// idle bookkeeping — must allocate nothing once pools are warm.
func TestEpochAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	r := benchRig(4, 1)
	r.RunUntil(1000)
	deadline := sim.Time(1000)
	if got := testing.AllocsPerRun(100, func() {
		deadline += 500 // ten epochs
		r.RunUntil(deadline)
	}); got != 0 {
		t.Errorf("single-worker epoch loop allocated %.1f objects per 10 epochs, want 0", got)
	}
}

// TestMultiWorkerEpochAllocs pins the concurrent path: a RunUntil call
// spanning a thousand epochs may only pay the entry-time goroutine spawns —
// the epochs themselves (including the rebalance passes the run crosses)
// must add nothing.
func TestMultiWorkerEpochAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	r := benchRig(4, 2)
	r.RunUntil(1000)
	deadline := sim.Time(1000)
	got := testing.AllocsPerRun(20, func() {
		deadline += 50 * 1000 // a thousand epochs per call
		r.RunUntil(deadline)
	})
	if got > 8 {
		t.Errorf("multi-worker RunUntil allocated %.1f objects per call (1000 epochs); want only the entry-time goroutine spawn", got)
	}
}
