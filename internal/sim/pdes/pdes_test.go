package pdes

import (
	"fmt"
	"testing"

	"pmnet/internal/sim"
)

// forceWorkers overrides the GOMAXPROCS clamp so the concurrent barrier path
// is exercised (under -race in CI) even on single-core hosts, where New would
// otherwise always select the inline single-worker path.
func forceWorkers(r *Runner, w int) { r.SetWorkers(w) }

// xmsg is one synthetic cross-shard message.
type xmsg struct {
	at   sim.Time
	from int // source shard
	seq  int // source emission order
}

// xside is one parity half of a synthetic handoff queue: the buffer plus the
// minimum queued time, reset by Begin before the parity is written again.
type xside struct {
	buf  []xmsg
	qmin sim.Time
}

// testNet is a miniature cross-shard model following the same discipline as
// netsim.Fabric under the single-barrier protocol: per ordered shard-pair
// single-producer queues, parity-double-buffered — during epoch k producers
// append to sides[k&1] while consumers drain sides[(k-1)&1] — with a
// pending-minimum per parity so undrained events stay visible to gmin.
// Every delivery is logged and re-sends to the next shard until the hop
// budget runs out.
type testNet struct {
	engs   []*sim.Engine
	queues [][]*[2]xside // [src][dst]
	par    []uint32      // per-shard current write parity (set by Begin)
	seqs   []int
	logs   [][]string
	la     sim.Time
}

func newTestNet(nshards int, la sim.Time) *testNet {
	tn := &testNet{la: la}
	tn.engs = make([]*sim.Engine, nshards)
	tn.queues = make([][]*[2]xside, nshards)
	tn.par = make([]uint32, nshards)
	tn.seqs = make([]int, nshards)
	tn.logs = make([][]string, nshards)
	for i := range tn.engs {
		tn.engs[i] = sim.NewEngine()
		tn.queues[i] = make([]*[2]xside, nshards)
		for j := 0; j < nshards; j++ {
			q := &[2]xside{}
			q[0].qmin = never
			q[1].qmin = never
			tn.queues[i][j] = q
		}
	}
	return tn
}

// send queues a message on the sender's current write parity. Must only be
// called from inside an engine callback (i.e. during an epoch), after Begin
// has set the parity — the same contract netsim.Transmit lives under.
func (tn *testNet) send(from, to int, at sim.Time) {
	tn.seqs[from]++
	side := &tn.queues[from][to][tn.par[from]]
	side.buf = append(side.buf, xmsg{at: at, from: from, seq: tn.seqs[from]})
	if at < side.qmin {
		side.qmin = at
	}
}

// begin flips shard s's outbound queues to the new write parity.
func (tn *testNet) begin(s int, parity uint32) {
	tn.par[s] = parity
	for _, q := range tn.queues[s] {
		q[parity].qmin = never
	}
}

// drain injects shard d's inbound messages at the read parity in the
// deterministic merge order.
func (tn *testNet) drain(d int, parity uint32) {
	for src := 0; src < len(tn.engs); src++ {
		side := &tn.queues[src][d][parity]
		if len(side.buf) == 0 {
			continue
		}
		// Injection in (source, emission) order: the engine heap orders by
		// time with insertion-order tiebreak, so this fixed order is the
		// deterministic merge key regardless of buffer sortedness.
		for _, m := range side.buf {
			m := m
			tn.engs[d].At(m.at, func() { tn.deliver(d, m) })
		}
		side.buf = side.buf[:0]
	}
}

// pendingOut is shard i's PendingOut hook: the minimum queued time across
// its outbound queues at the given parity, split into the self-loop queue
// (own) and queues bound for other shards (cross) — the same split
// netsim.Fabric.PendingOutFunc computes from its partition assignment.
func (tn *testNet) pendingOut(i int, parity uint32) (own, cross sim.Time) {
	own, cross = never, never
	for j, q := range tn.queues[i] {
		t := q[parity].qmin
		if j == i {
			if t < own {
				own = t
			}
		} else if t < cross {
			cross = t
		}
	}
	return own, cross
}

// deliver logs the message and forwards it around the ring while the virtual
// clock is young — exercising multi-epoch chains of cross-shard traffic.
func (tn *testNet) deliver(d int, m xmsg) {
	now := tn.engs[d].Now()
	tn.logs[d] = append(tn.logs[d], fmt.Sprintf("t=%d %d->%d #%d", now, m.from, d, m.seq))
	if now < 100*tn.la {
		// Deterministic pseudo-jitter from the message identity alone.
		jitter := sim.Time((m.seq*7 + d*13) % 23)
		tn.send(d, (d+1)%len(tn.engs), now+tn.la+jitter)
	}
}

func (tn *testNet) shards() []Shard {
	out := make([]Shard, len(tn.engs))
	for i := range tn.engs {
		i := i
		out[i] = Shard{
			Eng:        tn.engs[i],
			Begin:      func(p uint32) { tn.begin(i, p) },
			Drain:      func(p uint32) { tn.drain(i, p) },
			PendingOut: func(p uint32) (sim.Time, sim.Time) { return tn.pendingOut(i, p) },
		}
	}
	return out
}

// runner builds a Runner wired to the testNet's parity hooks.
func (tn *testNet) runner(workers int) *Runner {
	r := New(tn.shards(), tn.la, workers)
	forceWorkers(r, workers)
	return r
}

func runRing(nshards, workers int, deadline sim.Time) [][]string {
	tn := newTestNet(nshards, 50)
	for i := range tn.engs {
		i := i
		tn.engs[i].At(1, func() { tn.deliver(i, xmsg{at: 1, from: i, seq: 0}) })
	}
	r := tn.runner(workers)
	if deadline > 0 {
		r.RunUntil(deadline)
	} else {
		r.Run()
	}
	return tn.logs
}

// TestWorkerCountInvariance: per-shard event logs are identical no matter how
// many workers drive the shard set — the core determinism contract. Run with
// -race to also prove the barrier publishes the queue handoffs.
func TestWorkerCountInvariance(t *testing.T) {
	base := runRing(5, 1, 0)
	for _, w := range []int{2, 3, 5} {
		got := runRing(5, w, 0)
		for s := range base {
			if len(got[s]) != len(base[s]) {
				t.Fatalf("workers=%d shard %d: %d events vs %d", w, s, len(got[s]), len(base[s]))
			}
			for i := range base[s] {
				if got[s][i] != base[s][i] {
					t.Fatalf("workers=%d shard %d event %d: %q vs %q", w, s, i, got[s][i], base[s][i])
				}
			}
		}
	}
}

// TestRunUntilSemantics mirrors Engine.RunUntil: events past the deadline
// stay queued, clocks land exactly on the deadline, and a later call resumes.
func TestRunUntilSemantics(t *testing.T) {
	tn := newTestNet(3, 50)
	fired := 0
	tn.engs[0].At(10, func() { fired++ })
	tn.engs[1].At(500, func() { fired++ })
	tn.engs[2].At(1500, func() { fired++ })
	r := tn.runner(1)
	r.RunUntil(1000)
	if fired != 2 {
		t.Fatalf("fired %d of 2 events due by t=1000", fired)
	}
	if r.Now() != 1000 {
		t.Fatalf("Now() = %d, want deadline 1000", r.Now())
	}
	for i, e := range tn.engs {
		if e.Now() != 1000 {
			t.Fatalf("shard %d clock %d, want 1000", i, e.Now())
		}
	}
	r.RunUntil(2000)
	if fired != 3 {
		t.Fatalf("fired %d of 3 after resume", fired)
	}
}

// TestQueuedOnlyEventsKeepRunAlive: an event that exists ONLY in a handoff
// buffer (every engine drained) must still hold the run open and fire — the
// pending-minimum hook is what makes it visible to gmin under the
// single-barrier protocol. Also exercises the idle-shard fast path: between
// t=1 and t=1000 the sender shard has nothing to run.
func TestQueuedOnlyEventsKeepRunAlive(t *testing.T) {
	for _, w := range []int{1, 2} {
		tn := newTestNet(2, 50)
		// t=6000 is past deliver's forwarding horizon (100*la), so exactly
		// one delivery happens — after a long gmin jump across idle time.
		tn.engs[0].At(1, func() { tn.send(0, 1, 6000) })
		r := tn.runner(w)
		r.Run()
		if len(tn.logs[1]) != 1 {
			t.Fatalf("workers=%d: queued-only event never fired (log %v)", w, tn.logs[1])
		}
		if want := "t=6000 0->1 #1"; tn.logs[1][0] != want {
			t.Fatalf("workers=%d: got %q, want %q", w, tn.logs[1][0], want)
		}
		if r.Perf().Epochs < 2 {
			t.Fatalf("workers=%d: expected at least 2 epochs, got %d", w, r.Perf().Epochs)
		}
	}
}

// TestResumeAcrossDeadlineWithQueuedEvents: a cross-shard event beyond the
// deadline stays in the handoff buffer at exit and fires on the resumed
// call — the parity state must survive across RunUntil calls.
func TestResumeAcrossDeadlineWithQueuedEvents(t *testing.T) {
	tn := newTestNet(2, 50)
	tn.engs[0].At(1, func() { tn.send(0, 1, 5000) })
	r := tn.runner(1)
	r.RunUntil(2000)
	if len(tn.logs[1]) != 0 {
		t.Fatalf("event at t=5000 fired before deadline 2000: %v", tn.logs[1])
	}
	if r.Now() != 2000 {
		t.Fatalf("Now() = %d, want 2000", r.Now())
	}
	r.RunUntil(6000)
	if len(tn.logs[1]) != 1 {
		t.Fatalf("queued event lost across resume (log %v)", tn.logs[1])
	}
}

// TestCancelAcrossEpochs is the schedule/cancel stress of the sharded
// engine: each shard keeps scheduling pairs of timers several epochs ahead
// and cancels one of each pair from a later epoch. Cancelled timers must
// never fire, and the surviving-fire log must not depend on the worker
// count. (Cancels are shard-local — an Event may only be touched by the
// engine that minted it — matching the model-code discipline pmnetlint's
// sharedstate analyzer enforces.) With 200 rounds the run crosses the
// rebalanceEvery cadence many times, so the dynamic shard→worker
// reassignment is exercised under -race too.
func TestCancelAcrossEpochs(t *testing.T) {
	run := func(workers int) [][]string {
		tn := newTestNet(4, 50)
		for i := range tn.engs {
			i := i
			eng := tn.engs[i]
			var step func(round int)
			step = func(round int) {
				if round >= 200 {
					return
				}
				now := eng.Now()
				// Two timers several epochs out; the first is doomed.
				doomed := eng.At(now+sim.Time(120+round%7), func() {
					tn.logs[i] = append(tn.logs[i], fmt.Sprintf("DOOMED r%d", round))
				})
				eng.At(now+sim.Time(130+round%11), func() {
					tn.logs[i] = append(tn.logs[i], fmt.Sprintf("t=%d fire r%d", eng.Now(), round))
				})
				// Cancel from a different epoch than the schedule.
				eng.At(now+sim.Time(60+round%5), func() {
					doomed.Cancel()
					// And keep cross-shard traffic flowing so epochs stay busy.
					tn.send(i, (i+1)%len(tn.engs), eng.Now()+tn.la)
					step(round + 1)
				})
			}
			eng.At(1, func() { step(0) })
		}
		r := tn.runner(workers)
		r.Run()
		return tn.logs
	}

	base := run(1)
	for s := range base {
		if len(base[s]) == 0 {
			t.Fatalf("shard %d logged nothing", s)
		}
		for _, line := range base[s] {
			if len(line) >= 6 && line[:6] == "DOOMED" {
				t.Fatalf("shard %d: cancelled timer fired: %q", s, line)
			}
		}
	}
	for _, w := range []int{2, 4} {
		got := run(w)
		for s := range base {
			if len(got[s]) != len(base[s]) {
				t.Fatalf("workers=%d shard %d: %d lines vs %d", w, s, len(got[s]), len(base[s]))
			}
			for i := range base[s] {
				if got[s][i] != base[s][i] {
					t.Fatalf("workers=%d shard %d line %d: %q vs %q", w, s, i, got[s][i], base[s][i])
				}
			}
		}
	}
}

// TestEventsRunInvariant: the total event count is identical across worker
// counts (the perf block's events metric is deterministic), and so is the
// epoch count (mirrored into the deterministic counter registry).
func TestEventsRunInvariant(t *testing.T) {
	count := func(workers int) (uint64, uint64) {
		tn := newTestNet(4, 50)
		for i := range tn.engs {
			i := i
			tn.engs[i].At(1, func() { tn.deliver(i, xmsg{at: 1, from: i, seq: 0}) })
		}
		r := tn.runner(workers)
		r.Run()
		return r.EventsRun(), r.Perf().Epochs
	}
	base, baseEpochs := count(1)
	if base == 0 {
		t.Fatal("no events ran")
	}
	if baseEpochs == 0 {
		t.Fatal("no epochs ran")
	}
	for _, w := range []int{2, 4} {
		got, epochs := count(w)
		if got != base {
			t.Fatalf("workers=%d: EventsRun %d != %d", w, got, base)
		}
		if epochs != baseEpochs {
			t.Fatalf("workers=%d: Epochs %d != %d", w, epochs, baseEpochs)
		}
	}
}

// TestRebalanceConverges: under a deliberately skewed load (one hot shard,
// three idle ones) the deterministic LPT reassignment must move the hot
// shard without perturbing the logs — identical output at every worker
// count is already asserted elsewhere; here we assert the assignment
// actually changed from the initial s mod W stride.
func TestRebalanceConverges(t *testing.T) {
	tn := newTestNet(4, 50)
	eng := tn.engs[0]
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 2000 {
			eng.At(eng.Now()+10, tick)
		}
	}
	eng.At(1, tick)
	r := tn.runner(2)
	r.Run()
	if r.Perf().Epochs < 2*rebalanceEvery {
		t.Fatalf("run too short to rebalance: %d epochs", r.Perf().Epochs)
	}
	// All worker states must agree (they recompute from identical data).
	for w := 1; w < len(r.states); w++ {
		for s := range r.states[0].asg {
			if r.states[w].asg[s] != r.states[0].asg[s] {
				t.Fatalf("worker %d disagrees on shard %d assignment", w, s)
			}
		}
	}
	// The hot shard (0) should own a worker to itself under LPT.
	asg := r.states[0].asg
	for s := 1; s < 4; s++ {
		if asg[s] == asg[0] {
			t.Fatalf("idle shard %d still co-scheduled with hot shard 0: %v", s, asg)
		}
	}
}

// TestNewClamps: construction guards.
func TestNewClamps(t *testing.T) {
	tn := newTestNet(2, 50)
	r := New(tn.shards(), 50, 99)
	if r.Workers() > 2 {
		t.Fatalf("workers %d not clamped to shard count", r.Workers())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero lookahead must panic")
		}
	}()
	New(tn.shards(), 0, 1)
}

// TestSoloStretchInvariance drives a workload whose activity concentrates on
// one shard for long phases — the shape that triggers solo-stretch epoch
// batching — and asserts the batched multi-worker runs produce the identical
// per-shard logs AND the identical epoch count as the single-worker run
// (Epochs is mirrored into the deterministic counter registry, so a stretch
// that merged or skipped a window would corrupt goldens). The workload also
// exercises both stretch exits: a cross-shard push (shard 0 sends into the
// ring every 37th local event) and the horizon (a lone far event on an
// otherwise idle shard that the window eventually reaches).
func TestSoloStretchInvariance(t *testing.T) {
	run := func(workers int) ([][]string, uint64, PerfStats) {
		tn := newTestNet(4, 50)
		eng := tn.engs[0]
		n := 0
		var tick func()
		tick = func() {
			n++
			now := eng.Now()
			tn.logs[0] = append(tn.logs[0], fmt.Sprintf("t=%d local %d", now, n))
			if n%37 == 0 {
				// Occasional cross-shard hop: ends any running stretch at
				// the next epoch, and (below t=100·la) walks the ring.
				tn.send(0, 1, now+tn.la+sim.Time(n%11))
			}
			if n < 1500 {
				eng.At(now+7, tick)
			}
		}
		eng.At(1, tick)
		// Far event on an idle shard: a finite horizon the dense phase runs
		// beneath, then a rejoin must hand the window over to shard 2.
		tn.engs[2].At(20000, func() {
			tn.logs[2] = append(tn.logs[2], fmt.Sprintf("t=%d far", tn.engs[2].Now()))
		})
		r := tn.runner(workers)
		r.Run()
		return tn.logs, r.EventsRun(), r.Perf()
	}

	baseLogs, baseEvents, basePerf := run(1)
	if len(baseLogs[0]) == 0 || len(baseLogs[2]) == 0 {
		t.Fatal("workload shape broken: expected logs on shards 0 and 2")
	}
	if basePerf.SoloEpochs != 0 {
		t.Fatalf("single-worker path reported %d solo epochs; it has no barrier to skip", basePerf.SoloEpochs)
	}
	for _, w := range []int{2, 3} {
		logs, events, perf := run(w)
		if events != baseEvents {
			t.Fatalf("workers=%d: EventsRun %d != %d", w, events, baseEvents)
		}
		if perf.Epochs != basePerf.Epochs {
			t.Fatalf("workers=%d: Epochs %d != %d — solo stretches must not change the window sequence", w, perf.Epochs, basePerf.Epochs)
		}
		if perf.SoloEpochs == 0 {
			t.Fatalf("workers=%d: no solo epochs — the batching path was never exercised", w)
		}
		if perf.SoloStretches == 0 || perf.SoloEpochs < perf.SoloStretches {
			t.Fatalf("workers=%d: implausible stretch accounting: %d epochs over %d stretches", w, perf.SoloEpochs, perf.SoloStretches)
		}
		for s := range baseLogs {
			if len(logs[s]) != len(baseLogs[s]) {
				t.Fatalf("workers=%d shard %d: %d lines vs %d", w, s, len(logs[s]), len(baseLogs[s]))
			}
			for i := range baseLogs[s] {
				if logs[s][i] != baseLogs[s][i] {
					t.Fatalf("workers=%d shard %d line %d: %q vs %q", w, s, i, logs[s][i], baseLogs[s][i])
				}
			}
		}
	}
}

// TestSoloStretchDeadline: a bounded RunUntil that lands inside a stretch
// must exit with every shard clock on the deadline and resume exactly —
// the leader's deadline break has to rejoin its parked peers first.
func TestSoloStretchDeadline(t *testing.T) {
	run := func(workers int) ([][]string, sim.Time) {
		tn := newTestNet(3, 50)
		eng := tn.engs[0]
		n := 0
		var tick func()
		tick = func() {
			n++
			tn.logs[0] = append(tn.logs[0], fmt.Sprintf("t=%d local %d", eng.Now(), n))
			if n < 800 {
				eng.At(eng.Now()+9, tick)
			}
		}
		eng.At(1, tick)
		tn.engs[1].At(30000, func() {
			tn.logs[1] = append(tn.logs[1], "late")
		})
		r := tn.runner(workers)
		r.RunUntil(3000)
		mid := r.Now()
		r.Run()
		return tn.logs, mid
	}
	baseLogs, baseMid := run(1)
	for _, w := range []int{2, 3} {
		logs, mid := run(w)
		if mid != baseMid || mid != 3000 {
			t.Fatalf("workers=%d: clock after RunUntil(3000) = %d (base %d), want 3000", w, mid, baseMid)
		}
		for s := range baseLogs {
			if fmt.Sprint(logs[s]) != fmt.Sprint(baseLogs[s]) {
				t.Fatalf("workers=%d shard %d: logs diverge", w, s)
			}
		}
	}
}
