package pdes

import (
	"fmt"
	"testing"

	"pmnet/internal/sim"
)

// forceWorkers overrides the GOMAXPROCS clamp so the concurrent barrier path
// is exercised (under -race in CI) even on single-core hosts, where New would
// otherwise always select the inline single-worker path.
func forceWorkers(r *Runner, w int) {
	if w > len(r.shards) {
		w = len(r.shards)
	}
	r.workers = w
	r.bar = barrier{n: int32(w)}
}

// xmsg is one synthetic cross-shard message.
type xmsg struct {
	at   sim.Time
	from int // source shard
	seq  int // source emission order
}

// testNet is a miniature cross-shard model following the same discipline as
// netsim.Fabric: per ordered shard-pair single-producer queues, drained at
// the barrier in (time, source shard, emission order) order. Every delivery
// is logged and re-sends to the next shard until the hop budget runs out.
type testNet struct {
	engs   []*sim.Engine
	queues [][][]xmsg // [src][dst]
	seqs   []int
	logs   [][]string
	la     sim.Time
}

func newTestNet(nshards int, la sim.Time) *testNet {
	tn := &testNet{la: la}
	tn.engs = make([]*sim.Engine, nshards)
	tn.queues = make([][][]xmsg, nshards)
	tn.seqs = make([]int, nshards)
	tn.logs = make([][]string, nshards)
	for i := range tn.engs {
		tn.engs[i] = sim.NewEngine()
		tn.queues[i] = make([][]xmsg, nshards)
	}
	return tn
}

func (tn *testNet) send(from, to int, at sim.Time) {
	tn.seqs[from]++
	tn.queues[from][to] = append(tn.queues[from][to], xmsg{at: at, from: from, seq: tn.seqs[from]})
}

// drain injects shard d's inbound messages in the deterministic merge order.
func (tn *testNet) drain(d int) {
	for src := 0; src < len(tn.engs); src++ {
		buf := tn.queues[src][d]
		if len(buf) == 0 {
			continue
		}
		// Injection in (source, emission) order: the engine heap orders by
		// time with insertion-order tiebreak, so this fixed order is the
		// deterministic merge key regardless of buffer sortedness.
		for _, m := range buf {
			m := m
			tn.engs[d].At(m.at, func() { tn.deliver(d, m) })
		}
		tn.queues[src][d] = buf[:0]
	}
}

// deliver logs the message and forwards it around the ring while the virtual
// clock is young — exercising multi-epoch chains of cross-shard traffic.
func (tn *testNet) deliver(d int, m xmsg) {
	now := tn.engs[d].Now()
	tn.logs[d] = append(tn.logs[d], fmt.Sprintf("t=%d %d->%d #%d", now, m.from, d, m.seq))
	if now < 100*tn.la {
		// Deterministic pseudo-jitter from the message identity alone.
		jitter := sim.Time((m.seq*7 + d*13) % 23)
		tn.send(d, (d+1)%len(tn.engs), now+tn.la+jitter)
	}
}

func (tn *testNet) shards() []Shard {
	out := make([]Shard, len(tn.engs))
	for i := range tn.engs {
		i := i
		out[i] = Shard{Eng: tn.engs[i], Drain: func() { tn.drain(i) }}
	}
	return out
}

func runRing(nshards, workers int, deadline sim.Time) [][]string {
	tn := newTestNet(nshards, 50)
	for i := range tn.engs {
		i := i
		tn.engs[i].At(1, func() { tn.deliver(i, xmsg{at: 1, from: i, seq: 0}) })
	}
	r := New(tn.shards(), tn.la, workers)
	forceWorkers(r, workers)
	if deadline > 0 {
		r.RunUntil(deadline)
	} else {
		r.Run()
	}
	return tn.logs
}

// TestWorkerCountInvariance: per-shard event logs are identical no matter how
// many workers drive the shard set — the core determinism contract. Run with
// -race to also prove the barrier publishes the queue handoffs.
func TestWorkerCountInvariance(t *testing.T) {
	base := runRing(5, 1, 0)
	for _, w := range []int{2, 3, 5} {
		got := runRing(5, w, 0)
		for s := range base {
			if len(got[s]) != len(base[s]) {
				t.Fatalf("workers=%d shard %d: %d events vs %d", w, s, len(got[s]), len(base[s]))
			}
			for i := range base[s] {
				if got[s][i] != base[s][i] {
					t.Fatalf("workers=%d shard %d event %d: %q vs %q", w, s, i, got[s][i], base[s][i])
				}
			}
		}
	}
}

// TestRunUntilSemantics mirrors Engine.RunUntil: events past the deadline
// stay queued, clocks land exactly on the deadline, and a later call resumes.
func TestRunUntilSemantics(t *testing.T) {
	tn := newTestNet(3, 50)
	fired := 0
	tn.engs[0].At(10, func() { fired++ })
	tn.engs[1].At(500, func() { fired++ })
	tn.engs[2].At(1500, func() { fired++ })
	r := New(tn.shards(), tn.la, 1)
	r.RunUntil(1000)
	if fired != 2 {
		t.Fatalf("fired %d of 2 events due by t=1000", fired)
	}
	if r.Now() != 1000 {
		t.Fatalf("Now() = %d, want deadline 1000", r.Now())
	}
	for i, e := range tn.engs {
		if e.Now() != 1000 {
			t.Fatalf("shard %d clock %d, want 1000", i, e.Now())
		}
	}
	r.RunUntil(2000)
	if fired != 3 {
		t.Fatalf("fired %d of 3 after resume", fired)
	}
}

// TestCancelAcrossEpochs is the schedule/cancel stress of the sharded
// engine: each shard keeps scheduling pairs of timers several epochs ahead
// and cancels one of each pair from a later epoch. Cancelled timers must
// never fire, and the surviving-fire log must not depend on the worker
// count. (Cancels are shard-local — an Event may only be touched by the
// engine that minted it — matching the model-code discipline pmnetlint's
// sharedstate analyzer enforces.)
func TestCancelAcrossEpochs(t *testing.T) {
	run := func(workers int) [][]string {
		tn := newTestNet(4, 50)
		for i := range tn.engs {
			i := i
			eng := tn.engs[i]
			var step func(round int)
			step = func(round int) {
				if round >= 200 {
					return
				}
				now := eng.Now()
				// Two timers several epochs out; the first is doomed.
				doomed := eng.At(now+sim.Time(120+round%7), func() {
					tn.logs[i] = append(tn.logs[i], fmt.Sprintf("DOOMED r%d", round))
				})
				eng.At(now+sim.Time(130+round%11), func() {
					tn.logs[i] = append(tn.logs[i], fmt.Sprintf("t=%d fire r%d", eng.Now(), round))
				})
				// Cancel from a different epoch than the schedule.
				eng.At(now+sim.Time(60+round%5), func() {
					doomed.Cancel()
					// And keep cross-shard traffic flowing so epochs stay busy.
					tn.send(i, (i+1)%len(tn.engs), eng.Now()+tn.la)
					step(round + 1)
				})
			}
			eng.At(1, func() { step(0) })
		}
		r := New(tn.shards(), tn.la, workers)
		forceWorkers(r, workers)
		r.Run()
		return tn.logs
	}

	base := run(1)
	for s := range base {
		if len(base[s]) == 0 {
			t.Fatalf("shard %d logged nothing", s)
		}
		for _, line := range base[s] {
			if len(line) >= 6 && line[:6] == "DOOMED" {
				t.Fatalf("shard %d: cancelled timer fired: %q", s, line)
			}
		}
	}
	for _, w := range []int{2, 4} {
		got := run(w)
		for s := range base {
			if len(got[s]) != len(base[s]) {
				t.Fatalf("workers=%d shard %d: %d lines vs %d", w, s, len(got[s]), len(base[s]))
			}
			for i := range base[s] {
				if got[s][i] != base[s][i] {
					t.Fatalf("workers=%d shard %d line %d: %q vs %q", w, s, i, got[s][i], base[s][i])
				}
			}
		}
	}
}

// TestEventsRunInvariant: the total event count is identical across worker
// counts (the perf block's events metric is deterministic).
func TestEventsRunInvariant(t *testing.T) {
	count := func(workers int) uint64 {
		tn := newTestNet(4, 50)
		for i := range tn.engs {
			i := i
			tn.engs[i].At(1, func() { tn.deliver(i, xmsg{at: 1, from: i, seq: 0}) })
		}
		r := New(tn.shards(), tn.la, workers)
		forceWorkers(r, workers)
		r.Run()
		return r.EventsRun()
	}
	base := count(1)
	if base == 0 {
		t.Fatal("no events ran")
	}
	for _, w := range []int{2, 4} {
		if got := count(w); got != base {
			t.Fatalf("workers=%d: EventsRun %d != %d", w, got, base)
		}
	}
}

// TestNewClamps: construction guards.
func TestNewClamps(t *testing.T) {
	tn := newTestNet(2, 50)
	r := New(tn.shards(), 50, 99)
	if r.Workers() > 2 {
		t.Fatalf("workers %d not clamped to shard count", r.Workers())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero lookahead must panic")
		}
	}()
	New(tn.shards(), 0, 1)
}
