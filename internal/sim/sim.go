// Package sim provides a deterministic discrete-event simulation engine.
//
// All PMNet experiments run on a virtual clock: events are scheduled at
// absolute virtual times (nanosecond resolution) and executed in time order.
// Nothing in the engine sleeps or reads the wall clock, so experiments are
// bit-reproducible given a seed and immune to host scheduling or GC jitter —
// the property that makes a faithful data-plane reproduction possible in Go.
//
// The engine is built for zero steady-state allocation: pending events live
// in a hierarchical timer wheel of pooled nodes recycled through a per-engine
// free list, so At/After/Run allocate nothing once the pool has warmed up.
// The pool is owned by exactly one engine and touched only from its (single)
// driving goroutine — never a sync.Pool, whose cross-goroutine stealing would
// make object identity depend on host scheduling.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations, mirroring time package conventions but on the virtual
// clock. A sim.Time difference is a duration in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a virtual-time difference to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Micros returns the time expressed in (possibly fractional) microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return t.Duration().String() }

// noCancel is the cancelGen sentinel: handle generations start at zero and
// only ever increase, so no handle can match it.
const noCancel = ^uint64(0)

// Timer-wheel geometry: wheelLevels levels of wheelSlots slots each, level
// lvl's slots wheelSlots^lvl nanoseconds wide. Level 0 slots are 1 ns wide,
// so every node in a level-0 slot shares the same `at` and intra-slot FIFO
// order IS (at, seq) order. The wheel spans wheelSlots^wheelLevels ns
// (≈68.7 s) ahead of base; anything farther waits in the sorted overflow
// list until the wheel turns into its segment.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelMask   = wheelSlots - 1
	wheelLevels = 6
	topShift    = wheelBits * wheelLevels
)

// compactMin is the dead-node floor below which Cancel never triggers a
// compaction sweep; above it, a sweep runs whenever dead nodes outnumber
// live nodes by more than an eighth, keeping the pool footprint within ~12%
// of the live population at O(1) amortized sweep cost per cancel.
const compactMin = 16

// node is one pooled event record, linked intrusively into a wheel slot's
// FIFO list (or held in the sorted overflow list). Nodes are recycled
// through the engine's free list when they fire or are swept after a lazy
// cancel.
type node struct {
	at   Time
	seq  uint64
	fn   func()
	next *node   // intrusive slot-list link
	eng  *Engine // owner, so Event.Cancel can reach the counters
	// gen is bumped every time the node is recycled; an Event handle captures
	// the gen it was issued under, so handles to already-fired (and possibly
	// reused) nodes become inert instead of cancelling a stranger's event.
	gen uint64
	// cancelGen records the handle generation that cancelled this node
	// (noCancel otherwise), which lets exactly that handle observe
	// Cancelled() == true even after the node is reused.
	cancelGen uint64
	// queued is true while the node sits in the wheel or overflow list;
	// dead marks a lazily cancelled node awaiting unlink (still queued).
	queued bool
	dead   bool
}

// Event is a handle to a scheduled callback. Events with equal times run in
// the order they were scheduled (FIFO tie-break via sequence numbers) so the
// engine is fully deterministic. The handle is a value: it stays valid —
// inert, not dangling — after the event fires and its node is recycled.
// The zero Event refers to nothing; Cancel on it is a no-op.
type Event struct {
	n   *node
	gen uint64
	at  Time
}

// Cancel prevents a pending event from running. Cancellation is lazy and
// O(1): the node is marked dead in place (it immediately stops counting
// toward Pending and is invisible to NextTime) and is unlinked later — when
// the wheel reaches it, or by a compaction sweep once dead nodes outnumber
// live ones. Cancelling an event that has already fired — even if its pooled
// node has since been reused — is a no-op.
func (ev Event) Cancel() {
	n := ev.n
	if n == nil || n.gen != ev.gen || !n.queued || n.dead {
		return
	}
	e := n.eng
	n.dead = true
	n.fn = nil
	n.cancelGen = ev.gen
	e.live--
	e.dead++
	if e.dead > compactMin && e.dead*8 > e.live {
		e.compact()
	}
}

// Cancelled reports whether this event was cancelled before running.
func (ev Event) Cancelled() bool { return ev.n != nil && ev.n.cancelGen == ev.gen }

// Time returns the virtual time the event is (or was) scheduled for.
func (ev Event) Time() Time { return ev.at }

// slotList is one wheel slot's FIFO of nodes (append at tail, consume at
// head). Within a level-0 slot all nodes share the same `at`, so FIFO order
// is exactly (at, seq) order.
type slotList struct {
	head, tail *node
}

// Engine owns the virtual clock and the pending event queue.
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now Time
	// base is the wheel's reference time. Invariants: base never decreases,
	// base ≤ now whenever the engine is between events (base only advances
	// in popNext, to the slot start of the event about to fire), and every
	// node in the wheel has at ≥ base. Together these guarantee At(t ≥ now)
	// always places at or above base — no "past the wheel" case exists.
	base    Time
	seq     uint64
	live    int // queued, not cancelled
	dead    int // queued, lazily cancelled, awaiting unlink
	stopped bool
	ran     uint64
	slots   [wheelLevels][wheelSlots]slotList
	occ     [wheelLevels]uint64 // per-level occupancy bitmaps
	// ov holds nodes beyond the wheel span, sorted by (at, seq); ovOff is
	// the consumed-prefix cursor so promotion never memmoves the slice.
	ov    []*node
	ovOff int
	free  []*node // recycled nodes
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsRun returns the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending returns the number of live events still queued. Lazily cancelled
// nodes awaiting unlink are not counted.
func (e *Engine) Pending() int { return e.live }

// NextTime returns the virtual time of the earliest live pending event, or
// false when the queue is empty. Lazily cancelled nodes are skipped — a
// cancelled head never shows through. The conservative PDES runner
// (internal/sim/pdes) peeks every shard's next event at each barrier to pick
// the epoch window; the peek must not disturb the event order (it frees dead
// nodes it walks over, but never moves a live node or advances the wheel).
func (e *Engine) NextTime() (Time, bool) {
	return e.peekTime()
}

// get pops a recycled node or allocates a fresh one (pool not yet warm).
func (e *Engine) get() *node {
	if k := len(e.free) - 1; k >= 0 {
		n := e.free[k]
		e.free = e.free[:k]
		return n
	}
	return &node{eng: e, cancelGen: noCancel}
}

// release returns a node to the free list. Bumping gen first makes every
// outstanding handle to it inert.
func (e *Engine) release(n *node) {
	n.gen++
	n.fn = nil
	n.next = nil
	n.queued = false
	n.dead = false
	e.free = append(e.free, n)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a model bug, not a recoverable condition.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	n := e.get()
	n.at = t
	n.seq = e.seq
	n.fn = fn
	n.queued = true
	e.seq++
	e.live++
	e.place(n)
	return Event{n: n, gen: n.gen, at: t}
}

// After schedules fn to run d nanoseconds from now. Negative delays are
// clamped to zero (run "immediately", after currently-queued same-time work).
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Time(math.MaxInt64))
}

// RunUntil executes events with time ≤ deadline. The clock is left at the
// time of the last executed event (or at deadline if it advanced past all
// events but the queue still has later entries).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		t, ok := e.peekTime()
		if !ok {
			break
		}
		if t > deadline {
			if e.now < deadline {
				e.now = deadline
			}
			return
		}
		e.fire(e.popNext())
	}
	if !e.stopped && e.now < deadline && deadline < Time(math.MaxInt64) {
		e.now = deadline
	}
}

// Step executes exactly one pending event and reports whether one ran. It
// shares popNext/fire with RunUntil so the two paths cannot diverge.
func (e *Engine) Step() bool {
	n := e.popNext()
	if n == nil {
		return false
	}
	e.fire(n)
	return true
}

// fire advances the clock to n and runs its callback. The node is recycled
// before the callback executes, so the callback may schedule new events that
// reuse it immediately.
func (e *Engine) fire(n *node) {
	e.now = n.at
	e.ran++
	fn := n.fn
	e.release(n)
	fn()
}

// Hierarchical timer wheel ordered by (at, seq) — the same total order as
// the previous 4-ary heap, with O(1) amortized schedule/pop for the
// near-future-clustered event populations network simulation produces
// (calendar-queue argument; same structure as the kernel timer wheel, but
// exact: nothing ever fires early or late, far events cascade down level by
// level as base advances).
//
// Placement: a node lands at the smallest level lvl whose slot width covers
// the highest bit where `at` differs from `base` — i.e. levels hold nodes
// sharing all digits above lvl with base. That makes the levels strictly
// time-ordered (everything at a lower level runs before anything at a
// higher one) and the slots within a level time-ordered by index, so the
// earliest pending node is always in the lowest occupied slot of the lowest
// occupied level; no ring wraparound exists to reason about.
//
// FIFO exactness: level-0 slots are 1 ns wide, so equal-`at` nodes meet in
// one level-0 list. Direct inserts append in seq order (seq is monotone);
// cascades detach a whole higher-level list and re-place it preserving
// relative order; and a direct level-0 insert can never interleave ahead of
// an equal-`at` node still sitting at a higher level, because after every
// cascade all remaining level ≥ 1 nodes differ from base above bit
// wheelBits — they cannot share an `at` with any level-0-placeable time.

// place links a queued node into the wheel (or the sorted overflow list).
// The caller has set at/seq/queued; dead nodes are never placed.
func (e *Engine) place(n *node) {
	d := uint64(n.at ^ e.base)
	var lvl int
	if d != 0 {
		lvl = (bits.Len64(d) - 1) / wheelBits
	}
	if lvl >= wheelLevels {
		e.ovInsert(n)
		return
	}
	slot := int(uint64(n.at)>>(wheelBits*lvl)) & wheelMask
	l := &e.slots[lvl][slot]
	n.next = nil
	if l.tail == nil {
		l.head = n
	} else {
		l.tail.next = n
	}
	l.tail = n
	e.occ[lvl] |= 1 << uint(slot)
}

// ovInsert binary-inserts a node into the overflow list, keeping it sorted
// by (at, seq). Far-future scheduling is rare and usually in increasing time
// order, so the insert almost always appends.
func (e *Engine) ovInsert(n *node) {
	liveTail := e.ov[e.ovOff:]
	lo, hi := 0, len(liveTail)
	for lo < hi {
		mid := (lo + hi) / 2
		m := liveTail[mid]
		if m.at < n.at || (m.at == n.at && m.seq < n.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.ov = append(e.ov, nil)
	at := e.ovOff + lo
	copy(e.ov[at+1:], e.ov[at:])
	e.ov[at] = n
}

// peekTime returns the earliest live pending time. It frees dead nodes it
// walks over (front-of-slot and overflow-front) but never moves a live node
// or advances base, so peeking cannot perturb event order.
func (e *Engine) peekTime() (Time, bool) {
	for lvl := 0; lvl < wheelLevels; lvl++ {
		for e.occ[lvl] != 0 {
			slot := bits.TrailingZeros64(e.occ[lvl])
			l := &e.slots[lvl][slot]
			for l.head != nil && l.head.dead {
				n := l.head
				l.head = n.next
				e.dead--
				e.release(n)
			}
			if l.head == nil {
				l.tail = nil
				e.occ[lvl] &^= 1 << uint(slot)
				continue
			}
			// The lowest occupied slot of the lowest occupied level holds the
			// earliest pending node; at level ≥ 1 the slot list is unsorted,
			// so scan it for the minimum live time.
			best := l.head.at
			if lvl > 0 {
				for n := l.head.next; n != nil; n = n.next {
					if !n.dead && n.at < best {
						best = n.at
					}
				}
			}
			return best, true
		}
	}
	for e.ovOff < len(e.ov) {
		n := e.ov[e.ovOff]
		if !n.dead {
			return n.at, true
		}
		e.ov[e.ovOff] = nil
		e.ovOff++
		e.dead--
		e.release(n)
	}
	if e.ovOff > 0 {
		e.ov = e.ov[:0]
		e.ovOff = 0
	}
	return 0, false
}

// popNext removes and returns the earliest live pending node, or nil on an
// empty queue, freeing any dead nodes it passes. Level-0 pops are O(1);
// otherwise base advances to the lowest occupied slot's start time and that
// slot cascades down, each node moving at most wheelLevels times over its
// lifetime (amortized O(1)).
func (e *Engine) popNext() *node {
	for {
		if e.occ[0] != 0 {
			slot := bits.TrailingZeros64(e.occ[0])
			l := &e.slots[0][slot]
			for l.head != nil {
				n := l.head
				l.head = n.next
				if l.head == nil {
					l.tail = nil
					e.occ[0] &^= 1 << uint(slot)
				}
				if n.dead {
					e.dead--
					e.release(n)
					continue
				}
				n.next = nil
				n.queued = false
				e.live--
				return n
			}
			continue
		}
		if !e.cascade() {
			return nil
		}
	}
}

// cascade advances base to the earliest occupied slot (or the earliest
// overflow segment once the wheel is empty) and redistributes that slot's
// nodes to lower levels, freeing dead ones. It reports whether any slot was
// opened; false means the queue is fully drained.
func (e *Engine) cascade() bool {
	for lvl := 1; lvl < wheelLevels; lvl++ {
		if e.occ[lvl] == 0 {
			continue
		}
		slot := bits.TrailingZeros64(e.occ[lvl])
		shift := uint(wheelBits * lvl)
		span := Time(1) << (shift + wheelBits)
		// All lower levels are empty, so the earliest pending time is inside
		// this slot: advance base to the slot's start and re-place its list.
		// Relative order is preserved, and every node lands at a lower level
		// (its differing bits vs the new base are below this slot's width).
		e.base = e.base&^(span-1) | Time(slot)<<shift
		l := &e.slots[lvl][slot]
		n := l.head
		l.head, l.tail = nil, nil
		e.occ[lvl] &^= 1 << uint(slot)
		for n != nil {
			next := n.next
			if n.dead {
				e.dead--
				e.release(n)
			} else {
				e.place(n)
			}
			n = next
		}
		return true
	}
	// Wheel empty: turn it into the earliest overflow segment and promote
	// that segment's (sorted) prefix.
	for e.ovOff < len(e.ov) {
		n := e.ov[e.ovOff]
		e.ov[e.ovOff] = nil
		e.ovOff++
		if n.dead {
			e.dead--
			e.release(n)
			continue
		}
		e.base = n.at >> topShift << topShift
		e.place(n)
		for e.ovOff < len(e.ov) {
			m := e.ov[e.ovOff]
			if uint64(m.at)>>topShift != uint64(n.at)>>topShift {
				break
			}
			e.ov[e.ovOff] = nil
			e.ovOff++
			if m.dead {
				e.dead--
				e.release(m)
			} else {
				e.place(m)
			}
		}
		if e.ovOff == len(e.ov) {
			e.ov = e.ov[:0]
			e.ovOff = 0
		}
		return true
	}
	if e.ovOff > 0 {
		e.ov = e.ov[:0]
		e.ovOff = 0
	}
	return false
}

// compact sweeps every slot list and the overflow list, unlinking and
// recycling dead nodes in place (live nodes keep their relative order).
// Triggered by Cancel once dead nodes outnumber live ones, so its O(n) walk
// amortizes to O(1) per cancel and the pool's footprint stays bounded by
// ~2× the live population.
func (e *Engine) compact() {
	for lvl := 0; lvl < wheelLevels; lvl++ {
		occ := e.occ[lvl]
		for occ != 0 {
			slot := bits.TrailingZeros64(occ)
			occ &^= 1 << uint(slot)
			l := &e.slots[lvl][slot]
			var head, tail *node
			for n := l.head; n != nil; {
				next := n.next
				if n.dead {
					e.dead--
					e.release(n)
				} else {
					n.next = nil
					if tail == nil {
						head = n
					} else {
						tail.next = n
					}
					tail = n
				}
				n = next
			}
			l.head, l.tail = head, tail
			if head == nil {
				e.occ[lvl] &^= 1 << uint(slot)
			}
		}
	}
	if len(e.ov) > e.ovOff {
		kept := e.ov[:0]
		for _, n := range e.ov[e.ovOff:] {
			if n.dead {
				e.dead--
				e.release(n)
			} else {
				kept = append(kept, n)
			}
		}
		for i := len(kept); i < len(e.ov); i++ {
			e.ov[i] = nil
		}
		e.ov = kept
		e.ovOff = 0
	} else {
		e.ov = e.ov[:0]
		e.ovOff = 0
	}
}
