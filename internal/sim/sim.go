// Package sim provides a deterministic discrete-event simulation engine.
//
// All PMNet experiments run on a virtual clock: events are scheduled at
// absolute virtual times (nanosecond resolution) and executed in time order.
// Nothing in the engine sleeps or reads the wall clock, so experiments are
// bit-reproducible given a seed and immune to host scheduling or GC jitter —
// the property that makes a faithful data-plane reproduction possible in Go.
//
// The engine is built for zero steady-state allocation: pending events live
// in a concrete 4-ary min-heap of pooled nodes recycled through a per-engine
// free list, so At/After/Run allocate nothing once the pool has warmed up.
// The pool is owned by exactly one engine and touched only from its (single)
// driving goroutine — never a sync.Pool, whose cross-goroutine stealing would
// make object identity depend on host scheduling.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations, mirroring time package conventions but on the virtual
// clock. A sim.Time difference is a duration in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a virtual-time difference to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Micros returns the time expressed in (possibly fractional) microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return t.Duration().String() }

// noCancel is the cancelGen sentinel: handle generations start at zero and
// only ever increase, so no handle can match it.
const noCancel = ^uint64(0)

// node is one pooled event record. Nodes are recycled through the engine's
// free list the moment they fire or are cancelled.
type node struct {
	at  Time
	seq uint64
	fn  func()
	idx int     // heap index; -1 while free or executing
	eng *Engine // owner, so Event.Cancel can reach the heap and free list
	// gen is bumped every time the node is recycled; an Event handle captures
	// the gen it was issued under, so handles to already-fired (and possibly
	// reused) nodes become inert instead of cancelling a stranger's event.
	gen uint64
	// cancelGen records the handle generation that cancelled this node
	// (noCancel otherwise), which lets exactly that handle observe
	// Cancelled() == true even after the node is reused.
	cancelGen uint64
}

// Event is a handle to a scheduled callback. Events with equal times run in
// the order they were scheduled (FIFO tie-break via sequence numbers) so the
// engine is fully deterministic. The handle is a value: it stays valid —
// inert, not dangling — after the event fires and its node is recycled.
// The zero Event refers to nothing; Cancel on it is a no-op.
type Event struct {
	n   *node
	gen uint64
	at  Time
}

// Cancel prevents a pending event from running, removing it from the queue
// immediately (it no longer counts toward Pending). Cancelling an event that
// has already fired — even if its pooled node has since been reused — is a
// no-op.
func (ev Event) Cancel() {
	n := ev.n
	if n == nil || n.gen != ev.gen || n.idx < 0 {
		return
	}
	e := n.eng
	e.removeAt(n.idx)
	n.idx = -1
	n.cancelGen = ev.gen
	e.release(n)
}

// Cancelled reports whether this event was cancelled before running.
func (ev Event) Cancelled() bool { return ev.n != nil && ev.n.cancelGen == ev.gen }

// Time returns the virtual time the event is (or was) scheduled for.
func (ev Event) Time() Time { return ev.at }

// Engine owns the virtual clock and the pending event queue.
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     Time
	heap    []*node // 4-ary min-heap ordered by (at, seq)
	free    []*node // recycled nodes
	seq     uint64
	stopped bool
	ran     uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsRun returns the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.heap) }

// NextTime returns the virtual time of the earliest pending event, or false
// when the queue is empty. The conservative PDES runner (internal/sim/pdes)
// peeks every shard's next event at each barrier to pick the epoch window;
// the peek must not disturb the heap.
func (e *Engine) NextTime() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// get pops a recycled node or allocates a fresh one (pool not yet warm).
func (e *Engine) get() *node {
	if k := len(e.free) - 1; k >= 0 {
		n := e.free[k]
		e.free = e.free[:k]
		return n
	}
	return &node{idx: -1, eng: e, cancelGen: noCancel}
}

// release returns a node to the free list. Bumping gen first makes every
// outstanding handle to it inert.
func (e *Engine) release(n *node) {
	n.gen++
	n.fn = nil
	e.free = append(e.free, n)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a model bug, not a recoverable condition.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	n := e.get()
	n.at = t
	n.seq = e.seq
	n.fn = fn
	e.seq++
	e.push(n)
	return Event{n: n, gen: n.gen, at: t}
}

// After schedules fn to run d nanoseconds from now. Negative delays are
// clamped to zero (run "immediately", after currently-queued same-time work).
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Time(math.MaxInt64))
}

// RunUntil executes events with time ≤ deadline. The clock is left at the
// time of the last executed event (or at deadline if it advanced past all
// events but the queue still has later entries).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if e.heap[0].at > deadline {
			if e.now < deadline {
				e.now = deadline
			}
			return
		}
		e.fire(e.popNext())
	}
	if !e.stopped && e.now < deadline && deadline < Time(math.MaxInt64) {
		e.now = deadline
	}
}

// Step executes exactly one pending event and reports whether one ran. It
// shares popNext/fire with RunUntil so the two paths cannot diverge.
func (e *Engine) Step() bool {
	n := e.popNext()
	if n == nil {
		return false
	}
	e.fire(n)
	return true
}

// popNext removes and returns the earliest pending node, or nil on an empty
// queue. Cancelled events are removed eagerly by Cancel, so every queued
// node is live — there is no dead-node skip loop to keep in sync.
func (e *Engine) popNext() *node {
	if len(e.heap) == 0 {
		return nil
	}
	return e.popMin()
}

// fire advances the clock to n and runs its callback. The node is recycled
// before the callback executes, so the callback may schedule new events that
// reuse it immediately.
func (e *Engine) fire(n *node) {
	e.now = n.at
	e.ran++
	fn := n.fn
	e.release(n)
	fn()
}

// 4-ary min-heap over e.heap, ordered by (at, seq) — the same total order as
// the previous container/heap implementation, without interface boxing. A
// 4-ary layout halves tree depth versus binary, trading slightly wider
// sift-down scans for fewer cache-missing levels; idx tracking gives Cancel
// O(log n) removal.

func nodeLess(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(n *node) {
	e.heap = append(e.heap, n)
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) popMin() *node {
	h := e.heap
	n := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	e.heap = h[:last]
	n.idx = -1
	if last > 0 {
		e.siftDown(0)
	}
	return n
}

// removeAt deletes the node at heap index i (used by Cancel). The caller
// owns the removed node; the vacating substitute is re-sifted both ways,
// mirroring container/heap.Remove.
func (e *Engine) removeAt(i int) {
	h := e.heap
	last := len(h) - 1
	if i == last {
		h[last] = nil
		e.heap = h[:last]
		return
	}
	h[i] = h[last]
	h[last] = nil
	e.heap = h[:last]
	if !e.siftDown(i) {
		e.siftUp(i)
	}
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	n := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !nodeLess(n, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].idx = i
		i = p
	}
	h[i] = n
	n.idx = i
}

// siftDown restores heap order below i, reporting whether the node moved.
func (e *Engine) siftDown(i int) bool {
	h := e.heap
	n := h[i]
	start := i
	sz := len(h)
	for {
		c := i<<2 + 1
		if c >= sz {
			break
		}
		best := c
		end := c + 4
		if end > sz {
			end = sz
		}
		for j := c + 1; j < end; j++ {
			if nodeLess(h[j], h[best]) {
				best = j
			}
		}
		if !nodeLess(h[best], n) {
			break
		}
		h[i] = h[best]
		h[i].idx = i
		i = best
	}
	h[i] = n
	n.idx = i
	return i != start
}
