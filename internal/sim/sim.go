// Package sim provides a deterministic discrete-event simulation engine.
//
// All PMNet experiments run on a virtual clock: events are scheduled at
// absolute virtual times (nanosecond resolution) and executed in time order.
// Nothing in the engine sleeps or reads the wall clock, so experiments are
// bit-reproducible given a seed and immune to host scheduling or GC jitter —
// the property that makes a faithful data-plane reproduction possible in Go.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations, mirroring time package conventions but on the virtual
// clock. A sim.Time difference is a duration in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a virtual-time difference to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Micros returns the time expressed in (possibly fractional) microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return t.Duration().String() }

// Event is a scheduled callback. Events with equal times run in the order
// they were scheduled (FIFO tie-break via sequence numbers) so the engine is
// fully deterministic.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int // heap index; -1 once popped or cancelled
	dead bool
}

// Cancel prevents a pending event from running. Cancelling an event that has
// already fired is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// Cancelled reports whether the event was cancelled before running.
func (e *Event) Cancelled() bool { return e != nil && e.dead }

// Time returns the virtual time the event is (or was) scheduled for.
func (e *Event) Time() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending event queue.
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	ran     uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsRun returns the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a model bug, not a recoverable condition.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now. Negative delays are
// clamped to zero (run "immediately", after currently-queued same-time work).
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Time(math.MaxInt64))
}

// RunUntil executes events with time ≤ deadline. The clock is left at the
// time of the last executed event (or at deadline if it advanced past all
// events but the queue still has later entries).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > deadline {
			if e.now < deadline {
				e.now = deadline
			}
			return
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		e.now = next.at
		e.ran++
		next.fn()
	}
	if !e.stopped && e.now < deadline && deadline < Time(math.MaxInt64) {
		e.now = deadline
	}
}

// Step executes exactly one pending (non-cancelled) event and reports whether
// one ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*Event)
		if next.dead {
			continue
		}
		e.now = next.at
		e.ran++
		next.fn()
		return true
	}
	return false
}
