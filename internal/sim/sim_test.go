package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		e.At(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d ran at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}

func TestEngineAfterAndNow(t *testing.T) {
	e := NewEngine()
	var inner Time
	e.After(5*Microsecond, func() {
		e.After(3*Microsecond, func() { inner = e.Now() })
	})
	e.Run()
	if inner != 8*Microsecond {
		t.Fatalf("nested After fired at %v, want 8µs", inner)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(10, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event still ran")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, d := range []Time{10, 20, 30} {
		e.At(d, func() { ran = append(ran, e.Now()) })
	}
	e.RunUntil(20)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(20) ran %d events, want 2", len(ran))
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(ran) != 3 {
		t.Fatalf("after Run, ran %d events, want 3", len(ran))
	}
}

func TestEngineRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock at %v after RunUntil(100) with drained queue, want 100", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop at 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++ })
	e.At(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestAfterNegativeClamps(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(-5, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("negative After never ran")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRand(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds look identical (%d collisions)", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.1 {
		t.Fatalf("Exp mean = %v, want ≈5", mean)
	}
}

func TestRandNormalMoments(t *testing.T) {
	r := NewRand(13)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Normal stddev = %v", math.Sqrt(variance))
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	r := NewRand(17)
	z := NewZipf(r, 1000, 0.99)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must be the hottest, and the top-10 should dominate.
	top := 0
	for i := 0; i < 10; i++ {
		top += counts[i]
	}
	if counts[0] < counts[500] {
		t.Fatal("Zipf rank 0 colder than rank 500")
	}
	if float64(top)/n < 0.3 {
		t.Fatalf("top-10 carry only %.1f%% of traffic, want skew", 100*float64(top)/n)
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	r := NewRand(1)
	for _, fn := range []func(){
		func() { NewZipf(r, 0, 0.99) },
		func() { NewZipf(r, 10, 0) },
		func() { NewZipf(r, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewZipf with bad args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

// Property: for any set of delays, events fire in sorted order and the clock
// is monotonic.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.At(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Fork produces independent streams — a forked generator does not
// disturb nor mirror its parent.
func TestQuickForkIndependence(t *testing.T) {
	f := func(seed uint64) bool {
		a := NewRand(seed)
		fork := a.Fork()
		// Consume from fork; the parent continues its own stream.
		b := NewRand(seed)
		b.Uint64() // account for the Fork() draw
		for i := 0; i < 16; i++ {
			fork.Uint64()
		}
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
