package sim

// Tests specific to the hierarchical timer wheel: live-only Pending/NextTime
// under lazy cancellation, FIFO exactness across cascade (rollover)
// boundaries, overflow-level promotion, and a randomized equivalence check
// against a trivially-correct reference scheduler.

import (
	"fmt"
	"testing"
)

// wheelSpan is the virtual width of the whole wheel: events scheduled
// farther than this from base land in the sorted overflow list.
const wheelSpan = Time(1) << topShift

// TestPendingSkipsCancelledHead is the lazy-cancellation regression test:
// a cancelled node stays linked in the wheel until the sweeper or the wheel
// itself reaches it, but it must stop counting toward Pending and must be
// invisible to NextTime immediately — even (especially) when it is the head
// node the old eager implementation would have removed.
func TestPendingSkipsCancelledHead(t *testing.T) {
	cases := []struct {
		name  string
		first Time // earliest event (the one we cancel)
		rest  Time // surviving later event
	}{
		{"level0-head", 3, 7},
		{"level1-head", 100, 200},
		{"high-level-head", 1 << 20, 1<<20 + 5000},
		{"overflow-head", wheelSpan + 10, wheelSpan + 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine()
			fired := 0
			head := e.At(tc.first, func() { t.Fatal("cancelled head fired") })
			e.At(tc.rest, func() { fired++ })
			if got := e.Pending(); got != 2 {
				t.Fatalf("Pending before cancel = %d, want 2", got)
			}
			if at, ok := e.NextTime(); !ok || at != tc.first {
				t.Fatalf("NextTime before cancel = %v,%v, want %v,true", at, ok, tc.first)
			}
			head.Cancel()
			if got := e.Pending(); got != 1 {
				t.Fatalf("Pending after cancelling head = %d, want 1", got)
			}
			if at, ok := e.NextTime(); !ok || at != tc.rest {
				t.Fatalf("NextTime after cancelling head = %v,%v, want %v,true", at, ok, tc.rest)
			}
			e.Run()
			if fired != 1 {
				t.Fatalf("surviving event fired %d times, want 1", fired)
			}
			if got := e.Pending(); got != 0 {
				t.Fatalf("Pending after drain = %d, want 0", got)
			}
			if _, ok := e.NextTime(); ok {
				t.Fatal("NextTime reports an event on a drained engine")
			}
		})
	}
}

// TestNextTimeAllCancelled: when every queued node is dead the engine must
// report empty, and RunUntil must advance the clock exactly as it does for a
// genuinely empty queue.
func TestNextTimeAllCancelled(t *testing.T) {
	e := NewEngine()
	evs := make([]Event, 0, 8)
	for i := Time(1); i <= 8; i++ {
		evs = append(evs, e.At(i*50, func() { t.Fatal("cancelled event fired") }))
	}
	for _, ev := range evs {
		ev.Cancel()
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending with all-cancelled queue = %d, want 0", got)
	}
	if _, ok := e.NextTime(); ok {
		t.Fatal("NextTime sees a cancelled event")
	}
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("clock = %v after RunUntil(1000) on all-cancelled queue, want 1000", e.Now())
	}
}

// TestWheelFIFOAcrossCascade verifies the (at, seq) contract through a
// rollover: equal-time events scheduled before AND after the wheel has
// cascaded toward their segment must still fire in scheduling order.
func TestWheelFIFOAcrossCascade(t *testing.T) {
	e := NewEngine()
	var got []int
	target := Time(1 << 14) // level-2 territory from base 0
	e.At(target, func() { got = append(got, 0) })
	e.At(target, func() { got = append(got, 1) })
	// Fire an early event so popNext cascades base forward, then schedule
	// more equal-time events from inside a callback that runs after the
	// cascade — they must append behind the re-placed pair.
	e.At(5, func() {
		e.At(target, func() { got = append(got, 2) })
		e.At(target, func() { got = append(got, 3) })
	})
	e.Run()
	if fmt.Sprint(got) != "[0 1 2 3]" {
		t.Fatalf("equal-time firing order = %v, want [0 1 2 3]", got)
	}
}

// TestOverflowPromotion drives events through the overflow list: far-future
// times beyond the wheel span must be held, promoted when the wheel turns
// into their segment, and interleave correctly with near events and with
// equal-time events scheduled directly after promotion.
func TestOverflowPromotion(t *testing.T) {
	e := NewEngine()
	var got []string
	far := wheelSpan + 1000
	e.At(far, func() { got = append(got, "far0") })
	e.At(2*wheelSpan+5, func() { got = append(got, "veryfar") })
	e.At(far, func() { got = append(got, "far1") })
	e.At(10, func() { got = append(got, "near") })
	e.Run()
	want := "[near far0 far1 veryfar]"
	if fmt.Sprint(got) != want {
		t.Fatalf("firing order = %v, want %v", got, want)
	}
	if e.Now() != 2*wheelSpan+5 {
		t.Fatalf("clock = %v, want %v", e.Now(), 2*wheelSpan+5)
	}
}

// TestRunUntilDeadlineWithFarPending: peeking a far-future event to decide a
// window boundary must not disturb placement of later near events — the
// exact pattern the PDES runner produces (publish NextTime, then drain
// injects near-term arrivals).
func TestRunUntilDeadlineWithFarPending(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(1<<20, func() { got = append(got, "far") })
	e.RunUntil(100) // peeks the far event, advances clock to 100
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
	if at, ok := e.NextTime(); !ok || at != 1<<20 {
		t.Fatalf("NextTime = %v,%v, want %v,true", at, ok, Time(1<<20))
	}
	// Near events scheduled after the peek must still run first, in order.
	e.At(200, func() { got = append(got, "a") })
	e.At(200, func() { got = append(got, "b") })
	e.At(150, func() { got = append(got, "first") })
	e.Run()
	want := "[first a b far]"
	if fmt.Sprint(got) != want {
		t.Fatalf("firing order = %v, want %v", got, want)
	}
}

// refSched is a trivially-correct reference scheduler: a flat slice scanned
// for the minimum (at, seq) live entry on every pop. O(n²) and obviously
// faithful to the engine's documented total order.
type refSched struct {
	now  Time
	seq  uint64
	evs  []*refEv
	dead int
}

type refEv struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
}

func (s *refSched) at(t Time, fn func()) *refEv {
	ev := &refEv{at: t, seq: s.seq, fn: fn}
	s.seq++
	s.evs = append(s.evs, ev)
	return ev
}

func (s *refSched) run() {
	for {
		var best *refEv
		for _, ev := range s.evs {
			if ev.dead {
				continue
			}
			if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
				best = ev
			}
		}
		if best == nil {
			return
		}
		best.dead = true
		s.now = best.at
		best.fn()
	}
}

// TestWheelMatchesReference fuzzes the wheel against the reference
// scheduler: identical randomized storms of schedules (delays spanning every
// wheel level and the overflow list, with deliberate ties) and cancels must
// produce identical firing logs.
func TestWheelMatchesReference(t *testing.T) {
	delays := func(r *Rand) Time {
		switch r.Intn(6) {
		case 0:
			return Time(r.Intn(4)) // level-0 ties
		case 1:
			return Time(1 + r.Intn(64)) // level 0/1 boundary
		case 2:
			return Time(60 + r.Intn(8)) // straddle the 64 ns rollover
		case 3:
			return Time(1 + r.Intn(1<<14)) // mid levels
		case 4:
			return Time(1<<18 - 4 + r.Intn(8)) // high-level boundary
		default:
			return wheelSpan - 4 + Time(r.Intn(8)) // overflow promotion edge
		}
	}
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			storm := func(schedule func(Time, func()) func(), run func()) []string {
				r := NewRand(seed)
				var log []string
				var cancels []func()
				var tick func(depth int)
				id := 0
				tick = func(depth int) {
					for k := 0; k < 6; k++ {
						me := id
						id++
						d := delays(r)
						cancel := schedule(d, func() {
							log = append(log, fmt.Sprintf("fire %d", me))
							if depth < 40 && r.Intn(3) > 0 {
								tick(depth + 1)
							}
						})
						cancels = append(cancels, cancel)
					}
					// Cancel a deterministic subset (possibly already fired —
					// both sides must treat that as a no-op).
					for len(cancels) > 12 {
						i := r.Intn(len(cancels))
						cancels[i]()
						cancels[i] = cancels[len(cancels)-1]
						cancels = cancels[:len(cancels)-1]
					}
				}
				tick(0)
				run()
				return log
			}

			e := NewEngine()
			wheelLog := storm(func(d Time, fn func()) func() {
				ev := e.After(d, fn)
				return ev.Cancel
			}, e.Run)

			ref := &refSched{}
			refLog := storm(func(d Time, fn func()) func() {
				ev := ref.at(ref.now+d, fn)
				return func() { ev.dead = true; ev.fn = func() {} }
			}, ref.run)

			if len(wheelLog) != len(refLog) {
				t.Fatalf("wheel fired %d events, reference %d", len(wheelLog), len(refLog))
			}
			for i := range refLog {
				if wheelLog[i] != refLog[i] {
					t.Fatalf("event %d: wheel %q, reference %q", i, wheelLog[i], refLog[i])
				}
			}
			if len(wheelLog) == 0 {
				t.Fatal("storm fired nothing")
			}
		})
	}
}

// TestStopLeavesQueueIntact: Stop during a run must leave live events
// queued and resumable — including events parked in the overflow list.
func TestStopLeavesQueueIntact(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { e.Stop() })
	e.At(20, func() { fired++ })
	e.At(wheelSpan+50, func() { fired++ })
	e.Run()
	if e.Now() != 10 || fired != 0 {
		t.Fatalf("after Stop: now=%v fired=%d, want 10, 0", e.Now(), fired)
	}
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending after Stop = %d, want 2", got)
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("resumed run fired %d, want 2", fired)
	}
}
