package sim

// Allocation pin + micro-benchmark for the event engine hot path. The pooled
// node design promises that once the free list has warmed up, scheduling and
// running events allocates nothing; the pin turns that promise into a test
// that fails the build if a change reintroduces per-event garbage.

import (
	"testing"

	"pmnet/internal/raceflag"
)

// TestScheduleRunAllocs pins Engine.After + Run to zero steady-state
// allocations. The first round warms the node pool (and the heap backing
// array); every subsequent round must recycle.
func TestScheduleRunAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	e := NewEngine()
	fn := func() {}
	round := func() {
		base := e.Now()
		for i := 0; i < 64; i++ {
			e.After(Time(i%8), fn)
		}
		e.RunUntil(base + 8)
	}
	round() // warm the pool
	if got := testing.AllocsPerRun(100, round); got != 0 {
		t.Errorf("After+RunUntil allocated %.1f objects per 64-event round, want 0", got)
	}
}

// BenchmarkEngineSchedule measures the schedule→pop→fire cycle: one After
// plus one Step per iteration, with a standing population of events so the
// heap has realistic depth.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 256; i++ {
		e.After(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(256, fn)
		e.Step()
	}
}
