package sim

// Allocation pin + micro-benchmark for the event engine hot path. The pooled
// node design promises that once the free list has warmed up, scheduling and
// running events allocates nothing; the pin turns that promise into a test
// that fails the build if a change reintroduces per-event garbage.

import (
	"testing"

	"pmnet/internal/raceflag"
)

// TestScheduleRunAllocs pins Engine.After + Run to zero steady-state
// allocations. The first round warms the node pool (and the heap backing
// array); every subsequent round must recycle.
func TestScheduleRunAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	e := NewEngine()
	fn := func() {}
	round := func() {
		base := e.Now()
		for i := 0; i < 64; i++ {
			e.After(Time(i%8), fn)
		}
		e.RunUntil(base + 8)
	}
	round() // warm the pool
	if got := testing.AllocsPerRun(100, round); got != 0 {
		t.Errorf("After+RunUntil allocated %.1f objects per 64-event round, want 0", got)
	}
}

// BenchmarkEngineSchedule measures the schedule→pop→fire cycle: one After
// plus one Step per iteration, with a standing population of events so the
// heap has realistic depth.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 256; i++ {
		e.After(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(256, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleWheel is BenchmarkEngineSchedule with the delay
// distribution spread across every wheel level and into the overflow list —
// near-future events dominate (matching network workloads) but each
// iteration also touches high levels, so cascade and promotion costs are in
// the measured loop, not hidden behind an L0-only fast path.
func BenchmarkEngineScheduleWheel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	delays := [8]Time{1, 3, 17, 63, 1 << 9, 1 << 14, 1 << 20, (Time(1) << topShift) + 5}
	for i := 0; i < 256; i++ {
		e.After(delays[i%len(delays)], fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(delays[i%len(delays)], fn)
		e.Step()
	}
}

// BenchmarkCancel measures the schedule→cancel cycle that client retry
// timers pay on nearly every response: each iteration arms one timer a full
// timeout ahead and cancels it. Lazy deletion makes the cancel itself O(1);
// the sweep and compaction costs show up here too, because the standing
// population forces periodic dead-node reclamation.
func BenchmarkCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	var evs [64]Event
	for i := range evs {
		evs[i] = e.After(Time(1000+i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(evs)
		evs[k].Cancel()
		evs[k] = e.After(Time(1000+k), fn)
		if i%len(evs) == len(evs)-1 {
			e.RunUntil(e.Now() + 1)
		}
	}
}
