package server

import (
	"fmt"
	"testing"

	"pmnet/internal/netsim"
	"pmnet/internal/protocol"
	"pmnet/internal/sim"
)

// srvRig wires a scriptable client host to a Server under test.
type srvRig struct {
	eng    *sim.Engine
	net    *netsim.Network
	peer   *netsim.Host // plays the client
	server *Server
	// packets the peer received, by type
	recv map[protocol.Type][]*netsim.Packet
}

func newSrvRig(t *testing.T, h Handler, cfg Config) *srvRig {
	t.Helper()
	eng := sim.NewEngine()
	r := sim.NewRand(11)
	net := netsim.New(eng, r.Fork())
	stack := netsim.StackModel{Base: 1 * sim.Microsecond}
	rig := &srvRig{eng: eng, net: net, recv: make(map[protocol.Type][]*netsim.Packet)}
	rig.peer = netsim.NewHost(net, 1, "peer", stack, 1, r.Fork())
	serverHost := netsim.NewHost(net, 2, "server", stack, 4, r.Fork())
	net.Connect(1, 2, netsim.LinkConfig{PropDelay: sim.Microsecond, Bandwidth: 10e9})
	if h == nil {
		h = IdealHandler{}
	}
	rig.server = New(serverHost, h, cfg)
	rig.peer.OnReceive(func(p *netsim.Packet) {
		if p.PMNet {
			rig.recv[p.Msg.Hdr.Type] = append(rig.recv[p.Msg.Hdr.Type], p.Clone())
		}
	})
	return rig
}

func (rig *srvRig) sendUpdate(sess uint16, seq uint32, payload []byte) {
	msg := protocol.Fragment(protocol.TypeUpdateReq, sess, seq, payload, 0)[0]
	rig.peer.Send(&netsim.Packet{
		To: 2, SrcPort: 40000 + sess, DstPort: protocol.PortMin, PMNet: true, Msg: msg,
	})
}

func (rig *srvRig) sendBypass(sess uint16, seq uint32, payload []byte) {
	msg := protocol.Fragment(protocol.TypeBypassReq, sess, seq, payload, 0)[0]
	rig.peer.Send(&netsim.Packet{
		To: 2, SrcPort: 40000 + sess, DstPort: protocol.PortMin, PMNet: true, Msg: msg,
	})
}

// orderHandler records the order in which update payloads execute.
type orderHandler struct{ order []string }

func (h *orderHandler) Handle(req protocol.Request) (protocol.Response, sim.Time) {
	if req.Op == protocol.OpPut {
		h.order = append(h.order, string(req.Args[0]))
	}
	return protocol.Response{Status: protocol.StatusOK}, 2 * sim.Microsecond
}

func putPayload(key string) []byte {
	return protocol.PutReq([]byte(key), []byte("v")).Encode()
}

func TestInOrderUpdatesAppliedAndAcked(t *testing.T) {
	h := &orderHandler{}
	rig := newSrvRig(t, h, Config{})
	for i := 1; i <= 5; i++ {
		rig.sendUpdate(1, uint32(i), putPayload(fmt.Sprintf("k%d", i)))
	}
	rig.eng.Run()
	if len(h.order) != 5 {
		t.Fatalf("applied %d", len(h.order))
	}
	for i, k := range h.order {
		if k != fmt.Sprintf("k%d", i+1) {
			t.Fatalf("order %v", h.order)
		}
	}
	if got := len(rig.recv[protocol.TypeServerACK]); got != 5 {
		t.Fatalf("acks %d", got)
	}
	if rig.server.Stats().UpdatesApplied != 5 {
		t.Fatalf("stats %+v", rig.server.Stats())
	}
}

func TestOutOfOrderUpdatesReordered(t *testing.T) {
	h := &orderHandler{}
	rig := newSrvRig(t, h, Config{})
	// Inject 3,1,2 with small gaps so they arrive out of order.
	rig.sendUpdate(1, 3, putPayload("k3"))
	rig.eng.RunUntil(10 * sim.Microsecond)
	rig.sendUpdate(1, 1, putPayload("k1"))
	rig.eng.RunUntil(20 * sim.Microsecond)
	rig.sendUpdate(1, 2, putPayload("k2"))
	rig.eng.Run()
	want := []string{"k1", "k2", "k3"}
	if len(h.order) != 3 {
		t.Fatalf("applied %d", len(h.order))
	}
	for i := range want {
		if h.order[i] != want[i] {
			t.Fatalf("order %v, want %v (Fig. 7a reordering)", h.order, want)
		}
	}
	if rig.server.Stats().Reordered == 0 {
		t.Fatal("reordering not counted")
	}
}

func TestDuplicateDroppedWithMakeupAck(t *testing.T) {
	h := &orderHandler{}
	rig := newSrvRig(t, h, Config{})
	rig.sendUpdate(1, 1, putPayload("k1"))
	rig.eng.RunUntil(100 * sim.Microsecond)
	rig.sendUpdate(1, 1, putPayload("k1")) // resend of an applied update
	rig.eng.Run()
	if len(h.order) != 1 {
		t.Fatalf("duplicate applied: %v", h.order)
	}
	st := rig.server.Stats()
	if st.Duplicates != 1 || st.MakeupAcks != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Two ACKs total: the original and the make-up (§IV-E1).
	if got := len(rig.recv[protocol.TypeServerACK]); got != 2 {
		t.Fatalf("acks %d, want 2", got)
	}
}

func TestGapTriggersRetrans(t *testing.T) {
	rig := newSrvRig(t, nil, Config{GapTimeout: 30 * sim.Microsecond})
	rig.sendUpdate(1, 2, putPayload("k2")) // seq 1 missing
	rig.eng.RunUntil(200 * sim.Microsecond)
	rets := rig.recv[protocol.TypeRetrans]
	if len(rets) == 0 {
		t.Fatal("no Retrans for the gap")
	}
	if rets[0].Msg.Hdr.SeqNum != 1 {
		t.Fatalf("Retrans for seq %d, want 1", rets[0].Msg.Hdr.SeqNum)
	}
	// Fill the gap: both apply, Retrans stops.
	rig.sendUpdate(1, 1, putPayload("k1"))
	rig.eng.Run()
	if rig.server.Stats().UpdatesApplied != 2 {
		t.Fatalf("applied %d", rig.server.Stats().UpdatesApplied)
	}
}

func TestBypassServedImmediatelyDespiteUpdateGap(t *testing.T) {
	seen := 0
	h := HandlerFunc(func(req protocol.Request) (protocol.Response, sim.Time) {
		if req.Op == protocol.OpGet {
			seen++
			return protocol.Response{Status: protocol.StatusOK,
				Args: [][]byte{req.Args[0], []byte("val")}}, sim.Microsecond
		}
		return protocol.Response{Status: protocol.StatusOK}, sim.Microsecond
	})
	rig := newSrvRig(t, h, Config{GapTimeout: sim.Millisecond})
	rig.sendUpdate(1, 5, putPayload("k5")) // big gap: updates stall
	rig.sendBypass(1, 1|1<<31, protocol.GetReq([]byte("x")).Encode())
	rig.eng.RunUntil(500 * sim.Microsecond)
	if seen != 1 {
		t.Fatal("read blocked behind update gap")
	}
	if len(rig.recv[protocol.TypeReadResp]) != 1 {
		t.Fatal("no read response")
	}
}

func TestWatermarkSurvivesCrash(t *testing.T) {
	h := &orderHandler{}
	rig := newSrvRig(t, h, Config{})
	for i := 1; i <= 3; i++ {
		rig.sendUpdate(1, uint32(i), putPayload(fmt.Sprintf("k%d", i)))
	}
	rig.eng.RunUntil(sim.Millisecond)
	if rig.server.lastApplied(1) != 3 {
		t.Fatalf("watermark %d", rig.server.lastApplied(1))
	}
	rig.server.Crash()
	rig.server.Recover()
	rig.eng.RunUntil(2 * sim.Millisecond)
	if rig.server.lastApplied(1) != 3 {
		t.Fatal("watermark lost across crash")
	}
	// A replayed (logged) duplicate is suppressed.
	rig.sendUpdate(1, 2, putPayload("k2"))
	rig.eng.Run()
	if len(h.order) != 3 {
		t.Fatalf("replay re-applied: %v", h.order)
	}
	if rig.server.Stats().Duplicates != 1 {
		t.Fatalf("stats %+v", rig.server.Stats())
	}
}

func TestCrashDropsInFlightWork(t *testing.T) {
	h := &orderHandler{}
	rig := newSrvRig(t, h, Config{})
	rig.sendUpdate(1, 1, putPayload("k1"))
	// Crash while the request is inside the server (after ~3µs: stack+wire;
	// processing takes 2µs more).
	rig.eng.RunUntil(3*sim.Microsecond + 500*sim.Nanosecond)
	rig.server.Crash()
	rig.eng.Run()
	if len(h.order) != 0 && rig.server.lastApplied(1) != 0 {
		// Handler may have run before the crash boundary, but the watermark
		// must not have been persisted after Crash reverted it... the
		// decisive invariant: no server-ACK escaped.
		t.Logf("handler ran pre-crash; order=%v", h.order)
	}
	if len(rig.recv[protocol.TypeServerACK]) != 0 {
		t.Fatal("server-ACK escaped a crashed server")
	}
}

func TestRecoverPollsDevices(t *testing.T) {
	rig := newSrvRig(t, nil, Config{Devices: []netsim.NodeID{1}}) // peer poses as the device
	rig.server.Crash()
	rig.server.Recover()
	rig.eng.Run()
	polls := rig.recv[protocol.TypeRecoverReq]
	if len(polls) != 1 {
		t.Fatalf("recovery polls %d, want 1", len(polls))
	}
	if rig.server.Stats().Recoveries != 1 || rig.server.Stats().Crashes != 1 {
		t.Fatalf("stats %+v", rig.server.Stats())
	}
}

func TestCrashRestartHooks(t *testing.T) {
	crashed, restarted := false, false
	rig := newSrvRig(t, nil, Config{
		OnCrash:   func() { crashed = true },
		OnRestart: func() { restarted = true },
	})
	rig.server.Crash()
	if !crashed {
		t.Fatal("OnCrash not invoked")
	}
	rig.server.Recover()
	if !restarted {
		t.Fatal("OnRestart not invoked")
	}
}

func TestFragmentedQueryAppliedOnce(t *testing.T) {
	h := &orderHandler{}
	rig := newSrvRig(t, h, Config{})
	payload := protocol.PutReq([]byte("big"), make([]byte, 3000)).Encode()
	msgs := protocol.Fragment(protocol.TypeUpdateReq, 1, 1, payload, 1000)
	for _, m := range msgs {
		rig.peer.Send(&netsim.Packet{
			To: 2, SrcPort: 40001, DstPort: protocol.PortMin, PMNet: true, Msg: m,
		})
	}
	rig.eng.Run()
	if len(h.order) != 1 || h.order[0] != "big" {
		t.Fatalf("fragmented query applied %v", h.order)
	}
	// One server-ACK per fragment so every PMNet log entry is reclaimed.
	if got := len(rig.recv[protocol.TypeServerACK]); got != len(msgs) {
		t.Fatalf("acks %d, want %d", got, len(msgs))
	}
	if rig.server.lastApplied(1) != uint32(len(msgs)) {
		t.Fatalf("watermark %d, want %d", rig.server.lastApplied(1), len(msgs))
	}
}

func TestPerSessionIsolation(t *testing.T) {
	h := &orderHandler{}
	rig := newSrvRig(t, h, Config{})
	rig.sendUpdate(1, 1, putPayload("a1"))
	rig.sendUpdate(2, 1, putPayload("b1"))
	rig.sendUpdate(2, 2, putPayload("b2"))
	rig.eng.Run()
	if len(h.order) != 3 {
		t.Fatalf("applied %d", len(h.order))
	}
	if rig.server.lastApplied(1) != 1 || rig.server.lastApplied(2) != 2 {
		t.Fatal("per-session watermarks wrong")
	}
}

// Property: for ANY arrival permutation of a session's updates, the server
// applies them in issue order, exactly once, with the watermark at the top.
func TestQuickAnyPermutationAppliesInOrder(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%12 + 2
		h := &orderHandler{}
		rig := newSrvRig(t, h, Config{GapTimeout: 20 * sim.Microsecond})
		// Build a permutation of [1..n].
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i + 1
		}
		r := sim.NewRand(seed)
		for i := n - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		for _, seq := range perm {
			rig.sendUpdate(1, uint32(seq), putPayload(fmt.Sprintf("k%03d", seq)))
			rig.eng.RunUntil(rig.eng.Now() + 5*sim.Microsecond)
		}
		rig.eng.Run()
		if len(h.order) != n {
			return false
		}
		for i, k := range h.order {
			if k != fmt.Sprintf("k%03d", i+1) {
				return false
			}
		}
		return rig.server.lastApplied(1) == uint32(n)
	}
	if err := quickCheck(f, 60); err != nil {
		t.Error(err)
	}
}

// Property: duplicates at any position never cause a second application.
func TestQuickDuplicatesNeverReapply(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%8 + 2
		h := &orderHandler{}
		rig := newSrvRig(t, h, Config{GapTimeout: 20 * sim.Microsecond})
		r := sim.NewRand(seed)
		// Send each update once, plus random duplicates interleaved.
		for seq := 1; seq <= n; seq++ {
			rig.sendUpdate(1, uint32(seq), putPayload(fmt.Sprintf("k%03d", seq)))
			for r.Intn(3) == 0 {
				dup := uint32(r.Intn(seq) + 1)
				rig.sendUpdate(1, dup, putPayload(fmt.Sprintf("k%03d", dup)))
			}
			rig.eng.RunUntil(rig.eng.Now() + 40*sim.Microsecond)
		}
		rig.eng.Run()
		return len(h.order) == n
	}
	if err := quickCheck(f, 40); err != nil {
		t.Error(err)
	}
}

// quickCheck is a tiny deterministic harness (testing/quick's random
// function arguments are awkward for seeded rigs).
func quickCheck(f func(seed uint64, n uint8) bool, iters int) error {
	for i := 0; i < iters; i++ {
		if !f(uint64(i)*2654435761+1, uint8(i*37)) {
			return fmt.Errorf("property failed at iteration %d", i)
		}
	}
	return nil
}

func TestPermanentGapAbandonedAfterRetransLimit(t *testing.T) {
	h := &orderHandler{}
	rig := newSrvRig(t, h, Config{GapTimeout: 20 * sim.Microsecond, RetransLimit: 5})
	// seq 1 is permanently lost (its client died); 2 and 3 arrive.
	rig.sendUpdate(1, 2, putPayload("k2"))
	rig.sendUpdate(1, 3, putPayload("k3"))
	rig.eng.Run() // must drain: the gap is abandoned, not retried forever
	if got := len(rig.recv[protocol.TypeRetrans]); got == 0 || got > 6 {
		t.Fatalf("retrans sent %d times, want 1..6 (bounded)", got)
	}
	if rig.server.Stats().GapsAbandoned != 1 {
		t.Fatalf("stats %+v", rig.server.Stats())
	}
	// The buffered successors were applied in order after the jump.
	if len(h.order) != 2 || h.order[0] != "k2" || h.order[1] != "k3" {
		t.Fatalf("order %v", h.order)
	}
	// A very late arrival of the abandoned seq is treated as a duplicate
	// (no re-application, and a make-up ACK frees any log entry).
	rig.sendUpdate(1, 1, putPayload("k1"))
	rig.eng.Run()
	if len(h.order) != 2 {
		t.Fatalf("abandoned seq applied late: %v", h.order)
	}
}
