// Package server implements the PMNet server-side software library
// (Table I: PMNet_recv / PMNet_ack): per-session reorder buffers that
// restore the client's original update order from SeqNums (Figure 7), gap
// detection with Retrans requests, duplicate suppression with make-up
// server-ACKs, and the post-failure recovery poll that replays PMNet's
// logs (§IV-E).
package server

import (
	"encoding/binary"
	"slices"

	"pmnet/internal/netsim"
	"pmnet/internal/pmem"
	"pmnet/internal/protocol"
	"pmnet/internal/sim"
	"pmnet/internal/trace"
)

// Handler executes application requests. It returns the response and the
// CPU cost of processing, which the library charges to the host's worker
// pool — that cost is the paper's "server processing time".
type Handler interface {
	Handle(req protocol.Request) (protocol.Response, sim.Time)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req protocol.Request) (protocol.Response, sim.Time)

// Handle implements Handler.
func (f HandlerFunc) Handle(req protocol.Request) (protocol.Response, sim.Time) { return f(req) }

// IdealHandler is the microbenchmark request handler of §VI-B1: it
// acknowledges "upon reception of the request, without processing it".
// Even so, the acknowledgement costs a user-space turnaround — socket
// wakeup, dispatch, reply — which the paper's libVMA experiment (§VI-B7)
// shows still dominates once the kernel stack is bypassed; ≈12 µs matches
// the residual server-side cost its Figure 22 implies.
type IdealHandler struct {
	Cost sim.Time // 0 = 12 µs
}

// Handle implements Handler.
func (h IdealHandler) Handle(req protocol.Request) (protocol.Response, sim.Time) {
	cost := h.Cost
	if cost == 0 {
		cost = 12 * sim.Microsecond
	}
	return protocol.Response{Status: protocol.StatusOK}, cost
}

// Config parameterizes the server library.
type Config struct {
	// GapTimeout is how long a sequence gap may persist before the library
	// requests retransmission (Figure 7b). 0 = 50 µs.
	GapTimeout sim.Time
	// RetransLimit bounds retransmission requests per missing sequence
	// number; past it the gap is abandoned (nextSeq jumps over it) so a
	// permanently lost update — e.g. its client died mid-stream — cannot
	// wedge the session forever. 0 = 200.
	RetransLimit int
	// Devices lists the PMNet devices polled during recovery (deployment
	// knowledge: the ToR switch / NIC chain in front of this server).
	Devices []netsim.NodeID
	// MetaPMBytes sizes the PM region holding per-session applied-sequence
	// watermarks; 0 = 256 KiB (4 bytes × 64 Ki sessions).
	MetaPMBytes int
	// OnCrash/OnRestart let the application revert and recover its own
	// persistent state in lockstep with the library (e.g. power-failing the
	// KV engine's PM arena).
	OnCrash   func()
	OnRestart func()
}

// Stats counts server library activity.
type Stats struct {
	UpdatesApplied uint64
	ReadsServed    uint64
	Duplicates     uint64 // resent/replayed updates dropped via SeqNum
	MakeupAcks     uint64 // server-ACKs for duplicates, to reclaim logs
	RetransSent    uint64
	GapsAbandoned  uint64 // permanently missing seqs skipped after RetransLimit
	Buffered       uint64 // out-of-order fragments parked in the reorder buffer
	Reordered      uint64 // fragments that arrived ahead of a gap and were later applied
	Recoveries     uint64
	Crashes        uint64
}

type query struct {
	firstSeq uint32
	lastSeq  uint32
	req      protocol.Request
	from     netsim.NodeID
	srcPort  uint16
	dstPort  uint16
}

// bufferedFrag is one out-of-order update fragment parked in the reorder
// buffer. It copies the fields the ordered path needs out of the carrying
// packet: the packet itself is pool-owned and recycled when the host's
// receive callback returns, so it must never be retained across virtual
// time. (Msg.Payload may be aliased freely — payload buffers are not
// pooled.)
type bufferedFrag struct {
	msg     protocol.Message
	from    netsim.NodeID
	srcPort uint16
	dstPort uint16
}

type sessState struct {
	client   netsim.NodeID
	nextSeq  uint32
	buffered map[uint32]bufferedFrag
	reasm    map[uint32]*protocol.Reassembler
	queue    []query
	busy     bool
	gapArmed bool
	retrans  map[uint32]int // retransmission attempts per missing seq
}

// Server is the PMNet server library bound to one host.
type Server struct {
	host    *netsim.Host
	eng     *sim.Engine
	cfg     Config
	handler Handler
	meta    *pmem.Device
	sess    map[uint16]*sessState
	stats   Stats
	tracer  *trace.Tracer // picked up from the network at New; nil = off
	gen     uint64        // bumped on crash; stale CPU completions are dropped
}

// New binds a server library to host with the given handler.
func New(host *netsim.Host, handler Handler, cfg Config) *Server {
	if cfg.GapTimeout <= 0 {
		cfg.GapTimeout = 50 * sim.Microsecond
	}
	if cfg.RetransLimit <= 0 {
		cfg.RetransLimit = 200
	}
	if cfg.MetaPMBytes <= 0 {
		cfg.MetaPMBytes = 4 * 65536
	}
	s := &Server{
		host:    host,
		eng:     host.Engine(),
		cfg:     cfg,
		handler: handler,
		meta:    pmem.NewDevice(pmem.DefaultConfig(cfg.MetaPMBytes)),
		sess:    make(map[uint16]*sessState),
		tracer:  host.Network().Tracer(),
	}
	host.OnReceive(s.onPacket)
	return s
}

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats { return s.stats }

// Host exposes the underlying host.
func (s *Server) Host() *netsim.Host { return s.host }

// SetHandler replaces the request handler (used by harness reconfiguration).
func (s *Server) SetHandler(h Handler) { s.handler = h }

func (s *Server) session(id uint16) *sessState {
	st, ok := s.sess[id]
	if !ok {
		st = &sessState{
			nextSeq:  s.lastApplied(id) + 1,
			buffered: make(map[uint32]bufferedFrag),
			reasm:    make(map[uint32]*protocol.Reassembler),
			retrans:  make(map[uint32]int),
		}
		s.sess[id] = st
	}
	return st
}

// lastApplied reads the persistent applied-sequence watermark for a session.
func (s *Server) lastApplied(id uint16) uint32 {
	var b [4]byte
	if err := s.meta.ReadAt(b[:], int(id)*4); err != nil {
		panic("server: meta read: " + err.Error())
	}
	return binary.BigEndian.Uint32(b[:])
}

// setLastApplied persists the watermark. The application's own state must be
// durable before this is called; the pair gives standard redo semantics
// (re-applying an update whose watermark write was lost is safe for the
// idempotent KV operations PMNet targets).
func (s *Server) setLastApplied(id uint16, seq uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], seq)
	off := int(id) * 4
	if err := s.meta.WriteAt(b[:], off); err != nil {
		panic("server: meta write: " + err.Error())
	}
	if err := s.meta.Persist(off, 4); err != nil {
		panic("server: meta persist: " + err.Error())
	}
}

func (s *Server) reply(q query, hdr protocol.Header, payload []byte) {
	pkt := s.host.Network().AllocPacket()
	pkt.To = q.from
	pkt.SrcPort = q.dstPort // the PMNet port, so devices classify the reply
	pkt.DstPort = q.srcPort
	pkt.PMNet = true
	pkt.Msg = protocol.Message{Hdr: hdr, Payload: payload}
	s.host.Send(pkt)
}

func (s *Server) sendServerAck(sessID uint16, q query) {
	for seq := q.firstSeq; seq <= q.lastSeq; seq++ {
		if s.tracer != nil {
			s.tracer.Emit(trace.EvServerAck, uint64(s.host.ID()), 0, trace.SpanID(sessID, seq))
		}
		hdr := protocol.Header{
			Type:      protocol.TypeServerACK,
			SessionID: sessID,
			SeqNum:    seq,
			FragIdx:   uint16(seq - q.firstSeq),
			FragTotal: uint16(q.lastSeq - q.firstSeq + 1),
		}
		hdr.Seal()
		s.reply(q, hdr, nil)
	}
}

func (s *Server) onPacket(pkt *netsim.Packet) {
	if !pkt.PMNet {
		return
	}
	hdr := pkt.Msg.Hdr
	switch hdr.Type {
	case protocol.TypeUpdateReq:
		s.onUpdate(pkt)
	case protocol.TypeBypassReq:
		s.onBypass(pkt)
	}
}

// onBypass serves reads and synchronization requests immediately: they are
// not part of the ordered update stream (see client.BypassSeqBit).
func (s *Server) onBypass(pkt *netsim.Packet) {
	hdr := pkt.Msg.Hdr
	st := s.session(hdr.SessionID)
	st.client = pkt.From
	firstSeq := hdr.SeqNum - uint32(hdr.FragIdx)
	var payload []byte
	if hdr.FragTotal <= 1 {
		// Single-fragment query — the common case for small values: skip the
		// reassembler and its parts table. The copy is still required: the
		// packet's payload memory is pooled and recycled after delivery.
		payload = append(make([]byte, 0, len(pkt.Msg.Payload)), pkt.Msg.Payload...)
	} else {
		r, ok := st.reasm[firstSeq]
		if !ok {
			r = protocol.NewReassembler(firstSeq, hdr.FragTotal)
			st.reasm[firstSeq] = r
		}
		var err error
		payload, err = r.Add(pkt.Msg)
		if err != nil {
			return // incomplete (or inconsistent duplicate)
		}
		delete(st.reasm, firstSeq)
	}
	req, derr := protocol.DecodeRequest(payload)
	q := query{firstSeq: firstSeq, lastSeq: hdr.SeqNum - uint32(hdr.FragIdx) + uint32(hdr.FragTotal) - 1,
		req: req, from: pkt.From, srcPort: pkt.SrcPort, dstPort: pkt.DstPort}
	if derr != nil {
		s.respondRead(hdr.SessionID, q, protocol.Response{Status: protocol.StatusError})
		return
	}
	gen := s.gen
	resp, cost := s.handler.Handle(req)
	s.host.CPU().Submit(cost, func() {
		if gen != s.gen {
			return
		}
		s.stats.ReadsServed++
		s.respondRead(hdr.SessionID, q, resp)
	})
}

func (s *Server) respondRead(sessID uint16, q query, resp protocol.Response) {
	hdr := protocol.Header{
		Type:      protocol.TypeReadResp,
		SessionID: sessID,
		SeqNum:    q.firstSeq,
		FragTotal: 1,
	}
	hdr.Seal()
	s.reply(q, hdr, resp.Encode())
}

// onUpdate runs the ordered path: dedupe, reorder, reassemble, then execute
// in client order.
func (s *Server) onUpdate(pkt *netsim.Packet) {
	hdr := pkt.Msg.Hdr
	st := s.session(hdr.SessionID)
	st.client = pkt.From
	frag := bufferedFrag{msg: pkt.Msg, from: pkt.From, srcPort: pkt.SrcPort, dstPort: pkt.DstPort}
	seq := hdr.SeqNum
	switch {
	case seq < st.nextSeq:
		s.stats.Duplicates++
		// A make-up server-ACK reclaims the PMNet log entry (§IV-E1), so it
		// may ONLY be sent once the request is durably applied (covered by
		// the persistent watermark). nextSeq is volatile — it advances when
		// a packet is *received* in order, before the handler has run — and
		// a crash can roll it back; acking on nextSeq alone would destroy
		// the only persistent copy of a queued-but-unapplied update.
		if seq <= s.lastApplied(hdr.SessionID) {
			s.stats.MakeupAcks++
			ack := protocol.Header{
				Type:      protocol.TypeServerACK,
				SessionID: hdr.SessionID,
				SeqNum:    seq,
				FragIdx:   hdr.FragIdx,
				FragTotal: hdr.FragTotal,
			}
			ack.Seal()
			s.reply(query{from: pkt.From, srcPort: pkt.SrcPort, dstPort: pkt.DstPort}, ack, nil)
		}
		// Otherwise the duplicate is of an in-flight (queued) query; the
		// genuine server-ACK follows its application.
	case seq == st.nextSeq:
		delete(st.retrans, seq)
		st.nextSeq++
		s.applyInOrder(hdr.SessionID, st, frag)
		// Drain any buffered successors.
		for {
			next, ok := st.buffered[st.nextSeq]
			if !ok {
				break
			}
			delete(st.buffered, st.nextSeq)
			delete(st.retrans, st.nextSeq)
			st.nextSeq++
			s.stats.Reordered++
			s.applyInOrder(hdr.SessionID, st, next)
		}
	default: // seq > st.nextSeq: a gap
		if _, dup := st.buffered[seq]; dup {
			s.stats.Duplicates++
			return
		}
		st.buffered[seq] = frag
		s.stats.Buffered++
		s.armGapCheck(hdr.SessionID, st)
	}
}

// armGapCheck schedules a retransmission request if the gap persists
// (Figure 7b).
func (s *Server) armGapCheck(sessID uint16, st *sessState) {
	if st.gapArmed {
		return
	}
	st.gapArmed = true
	gen := s.gen
	s.eng.After(s.cfg.GapTimeout, func() {
		if gen != s.gen {
			return
		}
		st.gapArmed = false
		if len(st.buffered) == 0 {
			return
		}
		// Request every missing seq between nextSeq and the highest
		// buffered packet. A seq that stays missing past RetransLimit
		// attempts is abandoned: its sender is gone for good (the update
		// was never acknowledged, so no guarantee attaches) and stalling
		// the session forever would wedge every later update.
		var maxSeq uint32
		//pmnetlint:ignore maprange pure max reduction; any iteration order yields the same maxSeq
		for q := range st.buffered {
			if q > maxSeq {
				maxSeq = q
			}
		}
		for seq := st.nextSeq; seq < maxSeq; seq++ {
			if _, have := st.buffered[seq]; have {
				continue
			}
			st.retrans[seq]++
			if st.retrans[seq] > s.cfg.RetransLimit {
				continue // abandoned below once it is the head of line
			}
			s.stats.RetransSent++
			// Fragment geometry of the missing packet is unknown in
			// general; assume single-fragment (the common case). PMNet
			// serves the Retrans when the hash matches; otherwise the
			// client's bySeq lookup resends the right fragment.
			rh := protocol.Header{
				Type:      protocol.TypeRetrans,
				SessionID: sessID,
				SeqNum:    seq,
				FragTotal: 1,
			}
			rh.Seal()
			pkt := s.host.Network().AllocPacket()
			pkt.To = st.client
			pkt.SrcPort = protocol.PortMin
			pkt.DstPort = 40000 + sessID
			pkt.PMNet = true
			pkt.Msg = protocol.Message{Hdr: rh}
			s.host.Send(pkt)
		}
		// Abandon a head-of-line gap that exhausted its retransmissions.
		for {
			if _, have := st.buffered[st.nextSeq]; have {
				break
			}
			if st.nextSeq >= maxSeq || st.retrans[st.nextSeq] <= s.cfg.RetransLimit {
				break
			}
			delete(st.retrans, st.nextSeq)
			st.nextSeq++
			s.stats.GapsAbandoned++
		}
		// Drain anything the jump unblocked.
		for {
			next, ok := st.buffered[st.nextSeq]
			if !ok {
				break
			}
			delete(st.buffered, st.nextSeq)
			delete(st.retrans, st.nextSeq)
			st.nextSeq++
			s.stats.Reordered++
			s.applyInOrder(sessID, st, next)
		}
		s.armGapCheck(sessID, st)
	})
}

// applyInOrder feeds one in-order fragment to reassembly and enqueues the
// completed query for serial per-session execution.
func (s *Server) applyInOrder(sessID uint16, st *sessState, f bufferedFrag) {
	hdr := f.msg.Hdr
	firstSeq := hdr.SeqNum - uint32(hdr.FragIdx)
	var payload []byte
	if hdr.FragTotal <= 1 {
		// Single-fragment fast path, mirroring onBypass: no reassembler, one
		// payload copy (the fragment's memory belongs to the packet pool).
		payload = append(make([]byte, 0, len(f.msg.Payload)), f.msg.Payload...)
	} else {
		r, ok := st.reasm[firstSeq]
		if !ok {
			r = protocol.NewReassembler(firstSeq, hdr.FragTotal)
			st.reasm[firstSeq] = r
		}
		var err error
		payload, err = r.Add(f.msg)
		if err != nil {
			return // more fragments to come
		}
		delete(st.reasm, firstSeq)
	}
	req, derr := protocol.DecodeRequest(payload)
	if derr != nil {
		return // corrupt query: ignore; client will time out and resend
	}
	st.queue = append(st.queue, query{
		firstSeq: firstSeq,
		lastSeq:  firstSeq + uint32(hdr.FragTotal) - 1,
		req:      req,
		from:     f.from,
		srcPort:  f.srcPort,
		dstPort:  f.dstPort,
	})
	s.runNext(sessID, st)
}

// runNext executes queued queries one at a time per session, preserving the
// client's order even across the multi-worker CPU.
func (s *Server) runNext(sessID uint16, st *sessState) {
	if st.busy || len(st.queue) == 0 {
		return
	}
	st.busy = true
	q := st.queue[0]
	st.queue = st.queue[1:]
	gen := s.gen
	resp, cost := s.handler.Handle(q.req)
	_ = resp // updates acknowledge with server-ACKs, not a response payload
	s.host.CPU().Submit(cost, func() {
		if gen != s.gen {
			return
		}
		// The handler's state mutations are durable (engines persist before
		// returning); now persist the watermark and acknowledge.
		s.setLastApplied(sessID, q.lastSeq)
		s.stats.UpdatesApplied++
		if s.tracer != nil {
			s.tracer.Emit(trace.EvServerApply, uint64(s.host.ID()), 0, trace.SpanID(sessID, q.lastSeq))
		}
		s.sendServerAck(sessID, q)
		st.busy = false
		s.runNext(sessID, st)
	})
}

// DebugSessions reports, per session, the next expected sequence number and
// the sequence numbers parked in the reorder buffer — for tests and
// diagnostics.
func (s *Server) DebugSessions() map[uint16]struct {
	NextSeq  uint32
	Buffered []uint32
} {
	out := make(map[uint16]struct {
		NextSeq  uint32
		Buffered []uint32
	})
	ids := make([]uint16, 0, len(s.sess))
	for id := range s.sess {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		st := s.sess[id]
		var buf []uint32
		for seq := range st.buffered {
			buf = append(buf, seq)
		}
		slices.Sort(buf)
		out[id] = struct {
			NextSeq  uint32
			Buffered []uint32
		}{st.nextSeq, buf}
	}
	return out
}

// Crash power-fails the server: the host drops traffic, volatile library
// state (reorder buffers, queues) is lost, unpersisted metadata reverts, and
// the application's OnCrash hook fires (to power-fail its own PM).
func (s *Server) Crash() {
	s.stats.Crashes++
	s.gen++
	s.host.Fail()
	s.meta.PowerFail()
	s.sess = make(map[uint16]*sessState)
	if s.cfg.OnCrash != nil {
		s.cfg.OnCrash()
	}
}

// Recover restarts the host, reloads the persistent watermarks, runs the
// application's OnRestart hook, and polls every configured PMNet device for
// logged requests (§IV-E1). Replayed and client-resent packets then flow
// through the normal ordered path.
func (s *Server) Recover() {
	s.stats.Recoveries++
	s.host.Restart()
	if s.cfg.OnRestart != nil {
		s.cfg.OnRestart()
	}
	for _, dev := range s.cfg.Devices {
		hdr := protocol.Header{Type: protocol.TypeRecoverReq, FragTotal: 1}
		hdr.Seal()
		pkt := s.host.Network().AllocPacket()
		pkt.To = dev
		pkt.SrcPort = protocol.PortMin
		pkt.DstPort = protocol.PortMin
		pkt.PMNet = true
		pkt.Msg = protocol.Message{Hdr: hdr}
		s.host.Send(pkt)
	}
}
