package server

import "pmnet/internal/unwrap"

// As reports whether h — or any handler it decorates, found by walking the
// `Unwrap() Handler` chain — provides capability T, returning the outermost
// provider. Use this instead of a direct type assertion whenever probing a
// configured handler for an optional interface (crash hooks, verification),
// so interposed wrappers like the checker's recorder stay transparent.
func As[T any](h Handler) (T, bool) { return unwrap.As[T](h) }