// Package pmobj provides a PMDK-style persistent object arena on top of a
// simulated PM device: offset-based "persistent pointers", a size-class
// allocator, and redo-log transactions that make multi-word updates
// crash-atomic. The five PMDK workload engines (internal/kv) and the
// Redis-like store (internal/rediskv) build their persistent data
// structures on this arena, mirroring how the paper's server workloads use
// libpmemobj.
package pmobj

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pmnet/internal/pmem"
)

// Arena layout:
//
//	+0    magic (8)
//	+8    bump pointer (8)          — first never-allocated offset
//	+16   root offset (8)           — application root object
//	+24   free-list heads (8 × nClasses)
//	+H    redo log region (redoBytes)
//	+H+R  data area
const (
	magic       = 0x504D4F424A313744 // "PMOBJ17D"
	offMagic    = 0
	offBump     = 8
	offRoot     = 16
	offFreeBase = 24
)

// Size classes: 16 B .. 64 KiB, powers of two.
const (
	minClassShift = 4
	maxClassShift = 16
	nClasses      = maxClassShift - minClassShift + 1
)

const headerSize = offFreeBase + 8*nClasses

// Errors.
var (
	ErrOutOfMemory = errors.New("pmobj: arena out of memory")
	ErrTooLarge    = errors.New("pmobj: allocation exceeds max size class")
	ErrTxActive    = errors.New("pmobj: a transaction is already active")
)

// classFor returns the size class index for an allocation of n bytes.
func classFor(n int) (int, error) {
	if n <= 0 {
		n = 1
	}
	for c := 0; c < nClasses; c++ {
		if n <= 1<<(minClassShift+c) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
}

func classSize(c int) int { return 1 << (minClassShift + c) }

// Arena is a persistent heap. It is single-threaded on the virtual clock.
type Arena struct {
	dev       *pmem.Device
	redoBytes int
	dataBase  int
	tx        *Tx // active transaction, if any

	// CrashHook, when set, is invoked between commit stages (1: redo
	// written, 2: flag set, 3: partially applied). Returning true abandons
	// the commit at that point, simulating a power failure mid-commit.
	// Testing only.
	CrashHook func(stage int) bool

	stats ArenaStats
}

// ArenaStats counts arena activity.
type ArenaStats struct {
	Allocs     uint64
	Frees      uint64
	Commits    uint64
	Recoveries uint64 // redo replays performed at Open
	BytesAlloc uint64
}

// Open initializes (or recovers) an arena on dev. redoBytes sizes the redo
// region (0 = 64 KiB). If the device already holds an arena, Open replays
// any committed-but-unapplied redo log; otherwise it formats the device.
func Open(dev *pmem.Device, redoBytes int) (*Arena, error) {
	if redoBytes <= 0 {
		redoBytes = 64 << 10
	}
	a := &Arena{dev: dev, redoBytes: redoBytes, dataBase: headerSize + redoBytes}
	if dev.Len() < a.dataBase+1024 {
		return nil, fmt.Errorf("pmobj: device too small (%d bytes)", dev.Len())
	}
	if a.readU64(offMagic) == magic {
		if err := a.recover(); err != nil {
			return nil, err
		}
		return a, nil
	}
	// Format.
	a.writeU64(offMagic, magic)
	a.writeU64(offBump, uint64(a.dataBase))
	a.writeU64(offRoot, 0)
	for c := 0; c < nClasses; c++ {
		a.writeU64(uint64(offFreeBase+8*c), 0)
	}
	a.writeU64(uint64(headerSize), 0) // empty redo: committed flag zero
	a.persist(0, headerSize+16)
	return a, nil
}

// Device returns the underlying PM device.
func (a *Arena) Device() *pmem.Device { return a.dev }

// Stats returns a copy of the arena counters.
func (a *Arena) Stats() ArenaStats { return a.stats }

// low-level helpers -------------------------------------------------------

func (a *Arena) readU64(off uint64) uint64 {
	var b [8]byte
	if err := a.dev.ReadAt(b[:], int(off)); err != nil {
		panic("pmobj: read: " + err.Error())
	}
	return binary.BigEndian.Uint64(b[:])
}

// writeU64 stores a big-endian u64 without persisting it. Durability is the
// caller's contract: callers batch several header words and cover them with
// one a.persist barrier (see Open, recover, Commit).
func (a *Arena) writeU64(off, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	//pmnetlint:ignore persistcover barrier delegated to caller: header words are batched under one a.persist
	if err := a.dev.WriteAt(b[:], int(off)); err != nil {
		panic("pmobj: write: " + err.Error())
	}
}

func (a *Arena) persist(off, n int) {
	if err := a.dev.Persist(off, n); err != nil {
		panic("pmobj: persist: " + err.Error())
	}
}

// ReadU64 reads a big-endian u64 at off (committed/volatile view).
func (a *Arena) ReadU64(off uint64) uint64 { return a.readU64(off) }

// TxReadU64 reads a u64 with read-your-writes semantics when a transaction
// is active, falling back to the committed view. Data-structure engines use
// this for all metadata reads so that multi-step mutations (e.g. a B-tree
// split followed by a descent into the split child) observe their own
// in-flight writes.
func (a *Arena) TxReadU64(off uint64) uint64 {
	if a.tx != nil {
		return a.tx.ReadU64(off)
	}
	return a.readU64(off)
}

// ReadBytes reads n bytes at off.
func (a *Arena) ReadBytes(off uint64, n int) []byte {
	b := make([]byte, n)
	if err := a.dev.ReadAt(b, int(off)); err != nil {
		panic("pmobj: read bytes: " + err.Error())
	}
	return b
}

// Root returns the application root offset (0 when unset).
func (a *Arena) Root() uint64 { return a.readU64(offRoot) }

// redo log ----------------------------------------------------------------

// Redo record layout in the log region (base = headerSize):
//
//	+0  committed flag (8): magic when a commit is in flight
//	+8  op count (4) | total bytes (4)
//	+16 ops: each off(8) len(4) data...
const (
	redoFlag  = 0
	redoCount = 8
	redoOps   = 16
)

func (a *Arena) redoBase() uint64 { return uint64(headerSize) }

type writeOp struct {
	off  uint64
	data []byte
}

// recover replays a committed redo log left by a crash mid-commit.
func (a *Arena) recover() error {
	base := a.redoBase()
	if a.readU64(base+redoFlag) != magic {
		return nil // nothing in flight
	}
	cnt := binary.BigEndian.Uint32(a.ReadBytes(base+redoCount, 4))
	pos := base + redoOps
	for i := uint32(0); i < cnt; i++ {
		off := a.readU64(pos)
		n := binary.BigEndian.Uint32(a.ReadBytes(pos+8, 4))
		data := a.ReadBytes(pos+12, int(n))
		//pmnetlint:ignore persistcover a.persist (Device.Persist wrapper) covers this write two lines below
		if err := a.dev.WriteAt(data, int(off)); err != nil {
			return fmt.Errorf("pmobj: recover replay: %w", err)
		}
		a.persist(int(off), int(n))
		pos += 12 + uint64(n)
	}
	a.writeU64(base+redoFlag, 0)
	a.persist(int(base), 8)
	a.stats.Recoveries++
	return nil
}

// Reopen re-runs recovery after the underlying device power-failed; the
// volatile view has already reverted, so replaying any committed redo
// restores the last committed state.
func (a *Arena) Reopen() error {
	if a.tx != nil {
		a.tx = nil
	}
	return a.recover()
}
