package pmobj

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"pmnet/internal/pmem"
)

func newArena(t *testing.T, capacity int) *Arena {
	t.Helper()
	dev := pmem.NewDevice(pmem.DefaultConfig(capacity))
	a, err := Open(dev, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestOpenFormatsAndReopens(t *testing.T) {
	dev := pmem.NewDevice(pmem.DefaultConfig(1 << 20))
	a, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Root() != 0 {
		t.Fatal("fresh arena has nonzero root")
	}
	// Store a root, then re-open the same device: state survives.
	if err := a.Update(func(tx *Tx) error {
		off, err := tx.Alloc(64)
		if err != nil {
			return err
		}
		tx.WriteBytes(off, []byte("rooted"))
		tx.SetRoot(off)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Root() == 0 || string(b.ReadBytes(b.Root(), 6)) != "rooted" {
		t.Fatal("root lost across reopen")
	}
}

func TestCommitDurableAcrossPowerFail(t *testing.T) {
	a := newArena(t, 1<<20)
	var off uint64
	err := a.Update(func(tx *Tx) error {
		var err error
		off, err = tx.Alloc(32)
		if err != nil {
			return err
		}
		tx.WriteBytes(off, []byte("durable!"))
		tx.SetRoot(off)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Device().PowerFail()
	if err := a.Reopen(); err != nil {
		t.Fatal(err)
	}
	if got := a.ReadBytes(off, 8); string(got) != "durable!" {
		t.Fatalf("committed data lost: %q", got)
	}
}

func TestAbortLeavesNoTrace(t *testing.T) {
	a := newArena(t, 1<<20)
	bumpBefore := a.ReadU64(offBump)
	tx := a.Begin()
	o, err := tx.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	tx.WriteBytes(o, []byte("ghost"))
	tx.SetRoot(o)
	tx.Abort()
	if a.ReadU64(offBump) != bumpBefore {
		t.Fatal("abort moved the bump pointer")
	}
	if a.Root() != 0 {
		t.Fatal("abort set the root")
	}
}

func TestTornCommitBeforeFlagDiscarded(t *testing.T) {
	a := newArena(t, 1<<20)
	a.CrashHook = func(stage int) bool { return stage == 1 }
	tx := a.Begin()
	off, _ := tx.Alloc(32)
	tx.WriteBytes(off, []byte("torn"))
	tx.SetRoot(off)
	tx.Commit() // abandoned at stage 1 (flag not yet set)
	a.CrashHook = nil
	a.Device().PowerFail()
	if err := a.Reopen(); err != nil {
		t.Fatal(err)
	}
	if a.Root() != 0 {
		t.Fatal("pre-flag torn commit became visible")
	}
}

func TestTornCommitAfterFlagReplayed(t *testing.T) {
	for _, stage := range []int{2, 3} {
		a := newArena(t, 1<<20)
		a.CrashHook = func(s int) bool { return s == stage }
		tx := a.Begin()
		off, _ := tx.Alloc(32)
		tx.WriteBytes(off, []byte("replayed"))
		tx.SetRoot(off)
		tx.Commit() // abandoned mid-apply
		a.CrashHook = nil
		a.Device().PowerFail()
		if err := a.Reopen(); err != nil {
			t.Fatal(err)
		}
		if a.Stats().Recoveries != 1 {
			t.Fatalf("stage %d: recovery not performed", stage)
		}
		if a.Root() != off {
			t.Fatalf("stage %d: root not replayed", stage)
		}
		if got := a.ReadBytes(off, 8); string(got) != "replayed" {
			t.Fatalf("stage %d: data not replayed: %q", stage, got)
		}
	}
}

func TestAllocFreeReuse(t *testing.T) {
	a := newArena(t, 1<<20)
	var first uint64
	_ = a.Update(func(tx *Tx) error {
		first, _ = tx.Alloc(100) // class 128
		return nil
	})
	_ = a.Update(func(tx *Tx) error {
		tx.Free(first, 100)
		return nil
	})
	var second uint64
	_ = a.Update(func(tx *Tx) error {
		second, _ = tx.Alloc(120) // same class
		return nil
	})
	if second != first {
		t.Fatalf("freed block not reused: %d vs %d", second, first)
	}
}

func TestFreeThenAllocSameTx(t *testing.T) {
	a := newArena(t, 1<<20)
	var b1, b2 uint64
	_ = a.Update(func(tx *Tx) error {
		b1, _ = tx.Alloc(64)
		b2, _ = tx.Alloc(64)
		return nil
	})
	_ = a.Update(func(tx *Tx) error {
		tx.Free(b1, 64)
		tx.Free(b2, 64)
		got1, _ := tx.Alloc(64)
		got2, _ := tx.Alloc(64)
		if got1 != b2 || got2 != b1 {
			t.Errorf("LIFO reuse within tx broken: %d %d vs %d %d", got1, got2, b1, b2)
		}
		got3, _ := tx.Alloc(64) // list empty: bump
		if got3 == b1 || got3 == b2 {
			t.Error("triple reuse of two freed blocks")
		}
		return nil
	})
}

func TestReadYourWrites(t *testing.T) {
	a := newArena(t, 1<<20)
	_ = a.Update(func(tx *Tx) error {
		off, _ := tx.Alloc(16)
		tx.WriteU64(off, 42)
		if tx.ReadU64(off) != 42 {
			t.Error("tx read missed its own write")
		}
		tx.WriteU64(off, 43)
		if tx.ReadU64(off) != 43 {
			t.Error("tx read missed the latest write")
		}
		return nil
	})
}

func TestAllocTooLarge(t *testing.T) {
	a := newArena(t, 1<<20)
	err := a.Update(func(tx *Tx) error {
		_, err := tx.Alloc(1 << 20)
		return err
	})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestOutOfMemory(t *testing.T) {
	a := newArena(t, 128<<10)
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = a.Update(func(tx *Tx) error {
			_, e := tx.Alloc(8 << 10)
			return e
		})
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestNestedTxPanics(t *testing.T) {
	a := newArena(t, 1<<20)
	tx := a.Begin()
	defer tx.Abort()
	defer func() {
		if recover() == nil {
			t.Error("nested Begin did not panic")
		}
	}()
	a.Begin()
}

func TestDeviceTooSmall(t *testing.T) {
	dev := pmem.NewDevice(pmem.DefaultConfig(1024))
	if _, err := Open(dev, 64<<10); err == nil {
		t.Fatal("tiny device accepted")
	}
}

// Property: a sequence of committed transactions writing records survives
// power failure at any inter-transaction boundary; aborted transactions
// never surface.
func TestQuickCommittedStateSurvives(t *testing.T) {
	type step struct {
		Val    [8]byte
		Commit bool
	}
	f := func(steps []step) bool {
		if len(steps) > 40 {
			steps = steps[:40]
		}
		a := newArenaQuick()
		committed := make(map[uint64][]byte)
		for _, s := range steps {
			tx := a.Begin()
			off, err := tx.Alloc(16)
			if err != nil {
				tx.Abort()
				continue
			}
			tx.WriteBytes(off, s.Val[:])
			if s.Commit {
				tx.Commit()
				committed[off] = append([]byte{}, s.Val[:]...)
			} else {
				tx.Abort()
			}
		}
		a.Device().PowerFail()
		if err := a.Reopen(); err != nil {
			return false
		}
		for off, want := range committed {
			if !bytes.Equal(a.ReadBytes(off, 8), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func newArenaQuick() *Arena {
	dev := pmem.NewDevice(pmem.DefaultConfig(1 << 20))
	a, err := Open(dev, 16<<10)
	if err != nil {
		panic(err)
	}
	return a
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{{1, 0}, {16, 0}, {17, 1}, {32, 1}, {100, 3}, {65536, nClasses - 1}}
	for _, c := range cases {
		got, err := classFor(c.n)
		if err != nil || got != c.class {
			t.Errorf("classFor(%d) = %d, %v; want %d", c.n, got, err, c.class)
		}
	}
	if _, err := classFor(65537); err == nil {
		t.Error("classFor(65537) should fail")
	}
}
