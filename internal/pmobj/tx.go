package pmobj

import (
	"encoding/binary"
	"fmt"
)

// Tx is a redo-log transaction: writes (and allocator operations) buffer in
// volatile memory and become durable atomically at Commit. A crash before
// Commit leaves the arena untouched; a crash during Commit is repaired by
// redo replay at the next Open/Reopen.
//
// Reads inside a transaction that must observe the transaction's own writes
// go through Tx.ReadU64 (overlay semantics); plain Arena reads see the
// pre-transaction state.
type Tx struct {
	a      *Arena
	ops    []writeOp
	bump   uint64         // pending bump pointer
	heads  map[int]uint64 // size class → pending free-list head
	allocs int
	frees  int
	closed bool
}

// Begin starts a transaction. Nested transactions are a programming error
// and panic.
func (a *Arena) Begin() *Tx {
	if a.tx != nil {
		panic(ErrTxActive)
	}
	tx := &Tx{
		a:     a,
		bump:  a.readU64(offBump),
		heads: make(map[int]uint64),
	}
	a.tx = tx
	return tx
}

// Update runs fn inside a transaction and commits; any error aborts.
func (a *Arena) Update(fn func(tx *Tx) error) error {
	tx := a.Begin()
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	tx.Commit()
	return nil
}

// WriteU64 buffers a u64 store.
func (tx *Tx) WriteU64(off, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	tx.WriteBytes(off, b[:])
}

// WriteBytes buffers a byte-range store.
func (tx *Tx) WriteBytes(off uint64, data []byte) {
	if tx.closed {
		panic("pmobj: write on closed tx")
	}
	d := make([]byte, len(data))
	copy(d, data)
	tx.ops = append(tx.ops, writeOp{off: off, data: d})
}

// ReadU64 reads a u64 with read-your-writes semantics: the latest buffered
// store to off wins, falling back to the committed state.
func (tx *Tx) ReadU64(off uint64) uint64 {
	for i := len(tx.ops) - 1; i >= 0; i-- {
		op := tx.ops[i]
		if off >= op.off && off+8 <= op.off+uint64(len(op.data)) {
			return binary.BigEndian.Uint64(op.data[off-op.off:])
		}
	}
	return tx.a.readU64(off)
}

// SetRoot stores the application root offset.
func (tx *Tx) SetRoot(off uint64) { tx.WriteU64(offRoot, off) }

// headOf reads a free-list head with the transaction overlay.
func (tx *Tx) headOf(c int) uint64 {
	if h, ok := tx.heads[c]; ok {
		return h
	}
	return tx.a.readU64(uint64(offFreeBase + 8*c))
}

// Alloc reserves a block of at least n bytes and returns its offset. The
// allocation becomes durable only if the transaction commits.
func (tx *Tx) Alloc(n int) (uint64, error) {
	if tx.closed {
		panic("pmobj: alloc on closed tx")
	}
	c, err := classFor(n)
	if err != nil {
		return 0, err
	}
	if head := tx.headOf(c); head != 0 {
		// Pop the free list; the next pointer lives in the block's first 8
		// bytes and may have been written by this very transaction (free
		// then alloc), so use the overlay read.
		tx.heads[c] = tx.ReadU64(head)
		tx.allocs++
		return head, nil
	}
	size := uint64(classSize(c))
	off := tx.bump
	if off+size > uint64(tx.a.dev.Len()) {
		return 0, fmt.Errorf("%w: need %d bytes past %d (device %d)",
			ErrOutOfMemory, size, off, tx.a.dev.Len())
	}
	tx.bump += size
	tx.allocs++
	return off, nil
}

// Free returns a block of (original request size) n at off to its size
// class's free list.
func (tx *Tx) Free(off uint64, n int) {
	if tx.closed {
		panic("pmobj: free on closed tx")
	}
	c, err := classFor(n)
	if err != nil {
		panic("pmobj: free of oversized block")
	}
	tx.WriteU64(off, tx.headOf(c))
	tx.heads[c] = off
	tx.frees++
}

// Abort discards the transaction: nothing reaches the device.
func (tx *Tx) Abort() {
	tx.closed = true
	tx.a.tx = nil
}

// Commit makes every buffered write (and the allocator state) durable
// atomically:
//
//  1. Serialize all ops into the redo region and persist.
//  2. Persist the committed flag (the linearization point).
//  3. Apply ops to their home locations and persist.
//  4. Clear the flag.
//
// A crash before (2) discards the transaction; after (2), Open/Reopen
// replays it.
func (tx *Tx) Commit() {
	if tx.closed {
		panic("pmobj: double commit")
	}
	a := tx.a
	// Fold allocator state into the op list. Iterate size classes in index
	// order, not map order: op order fixes the redo-log byte layout and the
	// stage-3 apply order, both of which a mid-commit crash exposes — map
	// iteration here would make crash tests nondeterministic.
	tx.WriteU64(offBump, tx.bump)
	for c := 0; c < nClasses; c++ {
		if h, ok := tx.heads[c]; ok {
			tx.WriteU64(uint64(offFreeBase+8*c), h)
		}
	}

	base := a.redoBase()
	var total int
	for _, op := range tx.ops {
		total += 12 + len(op.data)
	}
	if redoOps+total > a.redoBytes {
		panic(fmt.Sprintf("pmobj: transaction too large for redo region (%d > %d)",
			total, a.redoBytes-redoOps))
	}
	// (1) write ops into the redo region.
	pos := base + redoOps
	var hdr [8]byte
	for _, op := range tx.ops {
		var meta [12]byte
		binary.BigEndian.PutUint64(meta[:8], op.off)
		binary.BigEndian.PutUint32(meta[8:], uint32(len(op.data)))
		mustWrite(a, pos, meta[:])
		mustWrite(a, pos+12, op.data)
		pos += 12 + uint64(len(op.data))
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(tx.ops)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(total))
	mustWrite(a, base+redoCount, hdr[:])
	a.persist(int(base+redoCount), 8+total)
	if a.CrashHook != nil && a.CrashHook(1) {
		tx.closed = true
		a.tx = nil
		return
	}
	// (2) committed flag: linearization point.
	a.writeU64(base+redoFlag, magic)
	a.persist(int(base+redoFlag), 8)
	if a.CrashHook != nil && a.CrashHook(2) {
		tx.closed = true
		a.tx = nil
		return
	}
	// (3) apply home-location writes.
	for i, op := range tx.ops {
		mustWrite(a, op.off, op.data)
		a.persist(int(op.off), len(op.data))
		if i == len(tx.ops)/2 && a.CrashHook != nil && a.CrashHook(3) {
			tx.closed = true
			a.tx = nil
			return
		}
	}
	// (4) clear the flag.
	a.writeU64(base+redoFlag, 0)
	a.persist(int(base+redoFlag), 8)

	a.stats.Commits++
	a.stats.Allocs += uint64(tx.allocs)
	a.stats.Frees += uint64(tx.frees)
	tx.closed = true
	a.tx = nil
}

// mustWrite stores bytes without persisting them; Commit batches redo-region
// writes and covers each group with one a.persist barrier.
func mustWrite(a *Arena, off uint64, data []byte) {
	//pmnetlint:ignore persistcover barrier delegated to caller: Commit persists each write group explicitly
	if err := a.dev.WriteAt(data, int(off)); err != nil {
		panic("pmobj: commit write: " + err.Error())
	}
}
