// Package rediskv implements a Redis-like persistent store — the analogue
// of the paper's PM-optimized Redis (§VI-A2) — on the pmobj arena. It
// supports the command subset the Twitter (Retwis) workload and the YCSB
// driver need: strings, counters, lists and sets, each value stored
// crash-atomically in a persistent hashmap.
package rediskv

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pmnet/internal/kv"
	"pmnet/internal/pmobj"
)

// Value type tags (first byte of every stored value).
const (
	tString  byte = 'S'
	tCounter byte = 'C'
	tList    byte = 'L'
	tSet     byte = 'Z'
)

// Errors.
var (
	ErrWrongType = errors.New("rediskv: operation against a key holding the wrong kind of value")
)

// Store is a Redis-like store. Each command is crash-atomic: it performs at
// most one engine Put, which commits in a single pmobj transaction.
type Store struct {
	hm kv.Engine
}

// Open creates or reopens a store on the arena.
func Open(a *pmobj.Arena) (*Store, error) {
	hm, err := kv.OpenHashmap(a)
	if err != nil {
		return nil, err
	}
	return &Store{hm: hm}, nil
}

// Len returns the number of keys.
func (s *Store) Len() int { return s.hm.Len() }

// strings -------------------------------------------------------------------

// Set stores a string value.
func (s *Store) Set(key, value []byte) error {
	return s.hm.Put(key, append([]byte{tString}, value...))
}

// Get fetches a string value.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	raw, ok := s.hm.Get(key)
	if !ok {
		return nil, false, nil
	}
	if raw[0] != tString {
		return nil, false, typeErr(key, tString, raw[0])
	}
	return raw[1:], true, nil
}

// Del removes a key of any type.
func (s *Store) Del(key []byte) (bool, error) { return s.hm.Delete(key) }

// Exists reports whether key is present.
func (s *Store) Exists(key []byte) bool {
	_, ok := s.hm.Get(key)
	return ok
}

// counters -------------------------------------------------------------------

// Incr atomically increments a counter, creating it at 1.
func (s *Store) Incr(key []byte) (int64, error) {
	raw, ok := s.hm.Get(key)
	var cur int64
	if ok {
		if raw[0] != tCounter {
			return 0, typeErr(key, tCounter, raw[0])
		}
		cur = int64(binary.BigEndian.Uint64(raw[1:]))
	}
	cur++
	buf := make([]byte, 9)
	buf[0] = tCounter
	binary.BigEndian.PutUint64(buf[1:], uint64(cur))
	if err := s.hm.Put(key, buf); err != nil {
		return 0, err
	}
	return cur, nil
}

// GetCounter reads a counter (0 when absent).
func (s *Store) GetCounter(key []byte) (int64, error) {
	raw, ok := s.hm.Get(key)
	if !ok {
		return 0, nil
	}
	if raw[0] != tCounter {
		return 0, typeErr(key, tCounter, raw[0])
	}
	return int64(binary.BigEndian.Uint64(raw[1:])), nil
}

// lists ----------------------------------------------------------------------

func decodeItems(raw []byte) [][]byte {
	n, off := binary.Uvarint(raw)
	items := make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		l, m := binary.Uvarint(raw[off:])
		off += m
		items = append(items, raw[off:off+int(l)])
		off += int(l)
	}
	return items
}

func encodeItems(tag byte, items [][]byte) []byte {
	out := make([]byte, 1, 64)
	out[0] = tag
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(items)))
	out = append(out, tmp[:n]...)
	for _, it := range items {
		n = binary.PutUvarint(tmp[:], uint64(len(it)))
		out = append(out, tmp[:n]...)
		out = append(out, it...)
	}
	return out
}

func (s *Store) loadItems(key []byte, tag byte) ([][]byte, bool, error) {
	raw, ok := s.hm.Get(key)
	if !ok {
		return nil, false, nil
	}
	if raw[0] != tag {
		return nil, false, typeErr(key, tag, raw[0])
	}
	return decodeItems(raw[1:]), true, nil
}

// LPush prepends value to the list at key, optionally trimming to maxLen
// (0 = unbounded). Returns the new length.
func (s *Store) LPush(key, value []byte, maxLen int) (int, error) {
	items, _, err := s.loadItems(key, tList)
	if err != nil {
		return 0, err
	}
	items = append([][]byte{value}, items...)
	if maxLen > 0 && len(items) > maxLen {
		items = items[:maxLen]
	}
	if err := s.hm.Put(key, encodeItems(tList, items)); err != nil {
		return 0, err
	}
	return len(items), nil
}

// LRange returns items [start, stop] (inclusive, like Redis; stop = -1
// means "to the end").
func (s *Store) LRange(key []byte, start, stop int) ([][]byte, error) {
	items, ok, err := s.loadItems(key, tList)
	if err != nil || !ok {
		return nil, err
	}
	n := len(items)
	if stop < 0 {
		stop = n + stop
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if start > stop {
		return nil, nil
	}
	out := make([][]byte, stop-start+1)
	copy(out, items[start:stop+1])
	return out, nil
}

// LLen returns the list length.
func (s *Store) LLen(key []byte) (int, error) {
	items, _, err := s.loadItems(key, tList)
	return len(items), err
}

// sets -----------------------------------------------------------------------

// SAdd inserts member into the set at key; reports whether it was new.
func (s *Store) SAdd(key, member []byte) (bool, error) {
	items, _, err := s.loadItems(key, tSet)
	if err != nil {
		return false, err
	}
	for _, it := range items {
		if string(it) == string(member) {
			return false, nil
		}
	}
	items = append(items, member)
	if err := s.hm.Put(key, encodeItems(tSet, items)); err != nil {
		return false, err
	}
	return true, nil
}

// SIsMember reports set membership.
func (s *Store) SIsMember(key, member []byte) (bool, error) {
	items, _, err := s.loadItems(key, tSet)
	if err != nil {
		return false, err
	}
	for _, it := range items {
		if string(it) == string(member) {
			return true, nil
		}
	}
	return false, nil
}

// SCard returns the set cardinality.
func (s *Store) SCard(key []byte) (int, error) {
	items, _, err := s.loadItems(key, tSet)
	return len(items), err
}

// SMembers returns every member.
func (s *Store) SMembers(key []byte) ([][]byte, error) {
	items, _, err := s.loadItems(key, tSet)
	return items, err
}

func typeErr(key []byte, want, got byte) error {
	return fmt.Errorf("%w: key %q holds %c, want %c", ErrWrongType, key, got, want)
}
