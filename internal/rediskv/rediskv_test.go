package rediskv

import (
	"errors"
	"fmt"
	"testing"

	"pmnet/internal/kv"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(kv.NewArena(8 << 20))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStringSetGet(t *testing.T) {
	s := newStore(t)
	if err := s.Set([]byte("user:1"), []byte("alice")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("user:1"))
	if err != nil || !ok || string(v) != "alice" {
		t.Fatalf("%q %v %v", v, ok, err)
	}
	if _, ok, _ := s.Get([]byte("nope")); ok {
		t.Fatal("phantom key")
	}
	if del, _ := s.Del([]byte("user:1")); !del {
		t.Fatal("delete failed")
	}
	if s.Exists([]byte("user:1")) {
		t.Fatal("key survived delete")
	}
}

func TestCounter(t *testing.T) {
	s := newStore(t)
	for want := int64(1); want <= 5; want++ {
		got, err := s.Incr([]byte("next_uid"))
		if err != nil || got != want {
			t.Fatalf("Incr = %d, %v; want %d", got, err, want)
		}
	}
	v, err := s.GetCounter([]byte("next_uid"))
	if err != nil || v != 5 {
		t.Fatalf("GetCounter = %d, %v", v, err)
	}
	if v, _ := s.GetCounter([]byte("absent")); v != 0 {
		t.Fatal("absent counter nonzero")
	}
}

func TestListOps(t *testing.T) {
	s := newStore(t)
	key := []byte("timeline:7")
	for i := 1; i <= 5; i++ {
		n, err := s.LPush(key, []byte(fmt.Sprintf("post%d", i)), 0)
		if err != nil || n != i {
			t.Fatalf("LPush: %d %v", n, err)
		}
	}
	// Newest first.
	got, err := s.LRange(key, 0, 2)
	if err != nil || len(got) != 3 {
		t.Fatalf("LRange: %v %v", got, err)
	}
	if string(got[0]) != "post5" || string(got[2]) != "post3" {
		t.Fatalf("order wrong: %q %q", got[0], got[2])
	}
	if all, _ := s.LRange(key, 0, -1); len(all) != 5 {
		t.Fatalf("LRange to end: %d", len(all))
	}
	if n, _ := s.LLen(key); n != 5 {
		t.Fatalf("LLen = %d", n)
	}
	// Out-of-range handling.
	if out, _ := s.LRange(key, 10, 20); out != nil {
		t.Fatal("range past end should be empty")
	}
}

func TestListTrim(t *testing.T) {
	s := newStore(t)
	key := []byte("tl")
	for i := 0; i < 10; i++ {
		if _, err := s.LPush(key, []byte{byte(i)}, 4); err != nil {
			t.Fatal(err)
		}
	}
	n, _ := s.LLen(key)
	if n != 4 {
		t.Fatalf("trimmed length %d, want 4", n)
	}
	got, _ := s.LRange(key, 0, -1)
	if got[0][0] != 9 {
		t.Fatal("trim dropped the newest instead of the oldest")
	}
}

func TestSetOps(t *testing.T) {
	s := newStore(t)
	key := []byte("followers:3")
	added, err := s.SAdd(key, []byte("u1"))
	if err != nil || !added {
		t.Fatalf("SAdd: %v %v", added, err)
	}
	if added, _ := s.SAdd(key, []byte("u1")); added {
		t.Fatal("duplicate member added")
	}
	_, _ = s.SAdd(key, []byte("u2"))
	if n, _ := s.SCard(key); n != 2 {
		t.Fatalf("SCard = %d", n)
	}
	if m, _ := s.SIsMember(key, []byte("u2")); !m {
		t.Fatal("membership lost")
	}
	if m, _ := s.SIsMember(key, []byte("u9")); m {
		t.Fatal("phantom member")
	}
	ms, _ := s.SMembers(key)
	if len(ms) != 2 {
		t.Fatalf("SMembers = %v", ms)
	}
}

func TestWrongTypeErrors(t *testing.T) {
	s := newStore(t)
	_ = s.Set([]byte("str"), []byte("x"))
	if _, err := s.Incr([]byte("str")); !errors.Is(err, ErrWrongType) {
		t.Fatalf("Incr on string: %v", err)
	}
	if _, err := s.LPush([]byte("str"), []byte("y"), 0); !errors.Is(err, ErrWrongType) {
		t.Fatalf("LPush on string: %v", err)
	}
	if _, err := s.SAdd([]byte("str"), []byte("y")); !errors.Is(err, ErrWrongType) {
		t.Fatalf("SAdd on string: %v", err)
	}
	_, _ = s.Incr([]byte("ctr"))
	if _, _, err := s.Get([]byte("ctr")); !errors.Is(err, ErrWrongType) {
		t.Fatalf("Get on counter: %v", err)
	}
}

func TestStoreSurvivesPowerFail(t *testing.T) {
	a := kv.NewArena(8 << 20)
	s, err := Open(a)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Set([]byte("k"), []byte("v"))
	_, _ = s.Incr([]byte("c"))
	_, _ = s.LPush([]byte("l"), []byte("item"), 0)
	_, _ = s.SAdd([]byte("z"), []byte("m"))

	a.Device().PowerFail()
	if err := a.Reopen(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(a)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s2.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatal("string lost")
	}
	if c, _ := s2.GetCounter([]byte("c")); c != 1 {
		t.Fatal("counter lost")
	}
	if n, _ := s2.LLen([]byte("l")); n != 1 {
		t.Fatal("list lost")
	}
	if m, _ := s2.SIsMember([]byte("z"), []byte("m")); !m {
		t.Fatal("set lost")
	}
}
