// Package prof wires the -cpuprofile / -memprofile flags shared by the
// pmnetbench and pmnetsim binaries onto runtime/pprof. Profiling is a
// host-side observation only: it never touches the virtual clock, so a
// profiled run produces byte-identical simulation output.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) file paths and
// returns a stop function to call once the measured work is done. The stop
// function finishes the CPU profile and writes the heap profile (after a GC,
// so it reflects live heap rather than garbage).
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
