// Package apps provides the server-side request handlers that bind the
// PMNet server library to the persistent storage engines: a KV handler for
// the five PMDK-style engines (with server-side locks for TPCC's critical
// sections) and a Redis handler for the Retwis/Twitter workload. Each
// handler charges CPU time derived from the actual PM work the engine
// performed, so "server processing time" in the experiments is an emergent
// property of the data structures, as on the paper's testbed.
package apps

import (
	"fmt"

	"pmnet/internal/kv"
	"pmnet/internal/pmem"
	"pmnet/internal/pmobj"
	"pmnet/internal/protocol"
	"pmnet/internal/rediskv"
	"pmnet/internal/sim"
)

// CostModel converts engine PM activity into simulated CPU time.
type CostModel struct {
	Base       sim.Time // fixed dispatch/parse cost per request
	PerRead    sim.Time // per PM read access
	PerWrite   sim.Time // per PM write access
	PerPersist sim.Time // per persist barrier (clwb+fence)
}

// DefaultCost is calibrated so a typical engine request costs 10–15 µs —
// the request-processing share of Figure 2's breakdown (user-space wakeup,
// parsing and dispatch on top of the engine's PM work).
func DefaultCost() CostModel {
	return CostModel{
		Base:       8000, // ns: socket wakeup + dispatch + reply
		PerRead:    60,
		PerWrite:   80,
		PerPersist: 273,
	}
}

// Charge computes the cost of the work between two device snapshots.
func (m CostModel) Charge(before, after pmem.Stats) sim.Time {
	c := m.Base
	c += sim.Time(after.Reads-before.Reads) * m.PerRead
	c += sim.Time(after.Writes-before.Writes) * m.PerWrite
	c += sim.Time(after.Persists-before.Persists) * m.PerPersist
	return c
}

// lockTable implements the server-side synchronization primitive of §III-C.
// It is volatile: after a server crash all locks are implicitly released
// (their owners' critical sections are re-driven by client retries).
type lockTable struct {
	locks map[string]string // lock name → owner
}

func newLockTable() *lockTable { return &lockTable{locks: make(map[string]string)} }

func (lt *lockTable) acquire(name, owner string) protocol.Status {
	if cur, held := lt.locks[name]; held && cur != owner {
		return protocol.StatusLocked
	}
	lt.locks[name] = owner
	return protocol.StatusOK
}

func (lt *lockTable) release(name, owner string) protocol.Status {
	if cur, held := lt.locks[name]; held && cur == owner {
		delete(lt.locks, name)
	}
	return protocol.StatusOK
}

func lockArgs(req protocol.Request) (name, owner string) {
	if len(req.Args) > 0 {
		name = string(req.Args[0])
	}
	if len(req.Args) > 1 {
		owner = string(req.Args[1])
	}
	return
}

// KVHandler serves GET/PUT/DELETE and lock requests on one storage engine.
type KVHandler struct {
	Engine kv.Engine
	Cost   CostModel
	arena  *pmobj.Arena
	dev    *pmem.Device
	locks  *lockTable
}

// NewKVHandler builds a handler over an engine living on arena.
func NewKVHandler(engine kv.Engine, arena *pmobj.Arena) *KVHandler {
	return &KVHandler{
		Engine: engine,
		Cost:   DefaultCost(),
		arena:  arena,
		dev:    arena.Device(),
		locks:  newLockTable(),
	}
}

// ResetLocks drops all locks (called from the server's OnRestart hook).
func (h *KVHandler) ResetLocks() { h.locks = newLockTable() }

// Crash power-fails the application's PM in lockstep with its server:
// unpersisted engine state is lost, committed state survives. Volatile
// locks are implicitly released.
func (h *KVHandler) Crash() {
	h.dev.PowerFail()
	h.locks = newLockTable()
}

// Restart replays any in-flight engine transaction from the redo log and
// reattaches the engine handle.
func (h *KVHandler) Restart() {
	if err := h.arena.Reopen(); err != nil {
		panic("apps: arena recovery failed: " + err.Error())
	}
	e, err := kv.Factories[h.Engine.Name()](h.arena)
	if err != nil {
		panic("apps: engine reattach failed: " + err.Error())
	}
	h.Engine = e
}

// Handle implements server.Handler.
func (h *KVHandler) Handle(req protocol.Request) (protocol.Response, sim.Time) {
	before := h.dev.Stats()
	resp := h.apply(req)
	return resp, h.Cost.Charge(before, h.dev.Stats())
}

func (h *KVHandler) apply(req protocol.Request) protocol.Response {
	switch req.Op {
	case protocol.OpGet:
		if len(req.Args) < 1 {
			return protocol.Response{Status: protocol.StatusError}
		}
		v, ok := h.Engine.Get(req.Args[0])
		if !ok {
			return protocol.Response{Status: protocol.StatusNotFound, Args: [][]byte{req.Args[0]}}
		}
		// [key, value] so the in-network cache can index the response.
		return protocol.Response{Status: protocol.StatusOK, Args: [][]byte{req.Args[0], v}}
	case protocol.OpPut:
		if len(req.Args) < 2 {
			return protocol.Response{Status: protocol.StatusError}
		}
		if err := h.Engine.Put(req.Args[0], req.Args[1]); err != nil {
			return protocol.Response{Status: protocol.StatusError, Args: [][]byte{[]byte(err.Error())}}
		}
		return protocol.Response{Status: protocol.StatusOK}
	case protocol.OpDelete:
		if len(req.Args) < 1 {
			return protocol.Response{Status: protocol.StatusError}
		}
		ok, err := h.Engine.Delete(req.Args[0])
		if err != nil {
			return protocol.Response{Status: protocol.StatusError}
		}
		if !ok {
			return protocol.Response{Status: protocol.StatusNotFound}
		}
		return protocol.Response{Status: protocol.StatusOK}
	case protocol.OpScan:
		if len(req.Args) < 2 {
			return protocol.Response{Status: protocol.StatusError}
		}
		pairs, err := kv.Scan(h.Engine, req.Args[0], atoi(req.Args[1]))
		if err != nil {
			return protocol.Response{Status: protocol.StatusError, Args: [][]byte{[]byte(err.Error())}}
		}
		args := make([][]byte, 0, 2*len(pairs))
		for _, p := range pairs {
			args = append(args, p.Key, p.Value)
		}
		return protocol.Response{Status: protocol.StatusOK, Args: args}
	case protocol.OpLockAcquire:
		name, owner := lockArgs(req)
		return protocol.Response{Status: h.locks.acquire(name, owner)}
	case protocol.OpLockRelease:
		name, owner := lockArgs(req)
		return protocol.Response{Status: h.locks.release(name, owner)}
	default:
		return protocol.Response{Status: protocol.StatusError}
	}
}

// RedisHandler serves the Redis command subset over a rediskv.Store.
// Commands arrive as OpTxn requests: Args[0] = command, then arguments.
type RedisHandler struct {
	Store *rediskv.Store
	Cost  CostModel
	arena *pmobj.Arena
	dev   *pmem.Device
}

// NewRedisHandler builds a handler over a store living on arena.
func NewRedisHandler(store *rediskv.Store, arena *pmobj.Arena) *RedisHandler {
	return &RedisHandler{Store: store, Cost: DefaultCost(), arena: arena, dev: arena.Device()}
}

// Crash power-fails the store's PM (see KVHandler.Crash).
func (h *RedisHandler) Crash() { h.dev.PowerFail() }

// Restart recovers the arena and reattaches the store.
func (h *RedisHandler) Restart() {
	if err := h.arena.Reopen(); err != nil {
		panic("apps: arena recovery failed: " + err.Error())
	}
	s, err := rediskv.Open(h.arena)
	if err != nil {
		panic("apps: store reattach failed: " + err.Error())
	}
	h.Store = s
}

// Handle implements server.Handler.
func (h *RedisHandler) Handle(req protocol.Request) (protocol.Response, sim.Time) {
	before := h.dev.Stats()
	resp := h.apply(req)
	return resp, h.Cost.Charge(before, h.dev.Stats())
}

func (h *RedisHandler) apply(req protocol.Request) protocol.Response {
	okResp := protocol.Response{Status: protocol.StatusOK}
	errResp := func(err error) protocol.Response {
		return protocol.Response{Status: protocol.StatusError, Args: [][]byte{[]byte(err.Error())}}
	}
	// Plain KV ops map onto string commands (lets YCSB run against Redis).
	switch req.Op {
	case protocol.OpGet:
		v, ok, err := h.Store.Get(req.Args[0])
		if err != nil {
			return errResp(err)
		}
		if !ok {
			return protocol.Response{Status: protocol.StatusNotFound, Args: [][]byte{req.Args[0]}}
		}
		return protocol.Response{Status: protocol.StatusOK, Args: [][]byte{req.Args[0], v}}
	case protocol.OpPut:
		if err := h.Store.Set(req.Args[0], req.Args[1]); err != nil {
			return errResp(err)
		}
		return okResp
	case protocol.OpTxn:
		// Redis command.
	default:
		return protocol.Response{Status: protocol.StatusError}
	}
	if len(req.Args) < 1 {
		return protocol.Response{Status: protocol.StatusError}
	}
	cmd := string(req.Args[0])
	args := req.Args[1:]
	switch cmd {
	case "SET":
		if err := h.Store.Set(args[0], args[1]); err != nil {
			return errResp(err)
		}
		return okResp
	case "GET":
		v, ok, err := h.Store.Get(args[0])
		if err != nil {
			return errResp(err)
		}
		if !ok {
			return protocol.Response{Status: protocol.StatusNotFound, Args: [][]byte{args[0]}}
		}
		return protocol.Response{Status: protocol.StatusOK, Args: [][]byte{args[0], v}}
	case "INCR":
		v, err := h.Store.Incr(args[0])
		if err != nil {
			return errResp(err)
		}
		return protocol.Response{Status: protocol.StatusOK,
			Args: [][]byte{[]byte(fmt.Sprintf("%d", v))}}
	case "LPUSH":
		// Timelines are trimmed retwis-style to bound value growth.
		if _, err := h.Store.LPush(args[0], args[1], 100); err != nil {
			return errResp(err)
		}
		return okResp
	case "LRANGE":
		items, err := h.Store.LRange(args[0], atoi(args[1]), atoi(args[2]))
		if err != nil {
			return errResp(err)
		}
		return protocol.Response{Status: protocol.StatusOK, Args: items}
	case "SADD":
		if _, err := h.Store.SAdd(args[0], args[1]); err != nil {
			return errResp(err)
		}
		return okResp
	case "SISMEMBER":
		m, err := h.Store.SIsMember(args[0], args[1])
		if err != nil {
			return errResp(err)
		}
		if !m {
			return protocol.Response{Status: protocol.StatusNotFound}
		}
		return okResp
	case "SCARD":
		n, err := h.Store.SCard(args[0])
		if err != nil {
			return errResp(err)
		}
		return protocol.Response{Status: protocol.StatusOK,
			Args: [][]byte{[]byte(fmt.Sprintf("%d", n))}}
	case "DEL":
		ok, err := h.Store.Del(args[0])
		if err != nil {
			return errResp(err)
		}
		if !ok {
			return protocol.Response{Status: protocol.StatusNotFound}
		}
		return okResp
	case "EXISTS":
		if !h.Store.Exists(args[0]) {
			return protocol.Response{Status: protocol.StatusNotFound}
		}
		return okResp
	case "LLEN":
		n, err := h.Store.LLen(args[0])
		if err != nil {
			return errResp(err)
		}
		return protocol.Response{Status: protocol.StatusOK,
			Args: [][]byte{[]byte(fmt.Sprintf("%d", n))}}
	default:
		return protocol.Response{Status: protocol.StatusError,
			Args: [][]byte{[]byte("unknown command " + cmd)}}
	}
}

func atoi(b []byte) int {
	n := 0
	neg := false
	for i, c := range b {
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		return -n
	}
	return n
}
