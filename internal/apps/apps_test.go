package apps

import (
	"fmt"
	"testing"

	"pmnet/internal/kv"
	"pmnet/internal/protocol"
	"pmnet/internal/rediskv"
)

func newKVHandler(t *testing.T, engine string) *KVHandler {
	t.Helper()
	a := kv.NewArena(8 << 20)
	e, err := kv.Factories[engine](a)
	if err != nil {
		t.Fatal(err)
	}
	return NewKVHandler(e, a)
}

func TestKVHandlerPutGetDelete(t *testing.T) {
	h := newKVHandler(t, "btree")
	resp, cost := h.Handle(protocol.PutReq([]byte("k"), []byte("v")))
	if resp.Status != protocol.StatusOK {
		t.Fatalf("put: %+v", resp)
	}
	if cost <= h.Cost.Base {
		t.Fatalf("put cost %v should exceed base %v (PM work)", cost, h.Cost.Base)
	}
	resp, _ = h.Handle(protocol.GetReq([]byte("k")))
	if resp.Status != protocol.StatusOK || string(resp.Args[0]) != "k" || string(resp.Args[1]) != "v" {
		t.Fatalf("get: %+v", resp)
	}
	resp, _ = h.Handle(protocol.GetReq([]byte("missing")))
	if resp.Status != protocol.StatusNotFound {
		t.Fatalf("miss: %+v", resp)
	}
	resp, _ = h.Handle(protocol.DeleteReq([]byte("k")))
	if resp.Status != protocol.StatusOK {
		t.Fatalf("delete: %+v", resp)
	}
	resp, _ = h.Handle(protocol.DeleteReq([]byte("k")))
	if resp.Status != protocol.StatusNotFound {
		t.Fatalf("double delete: %+v", resp)
	}
}

func TestKVHandlerAllEngines(t *testing.T) {
	for _, name := range kv.EngineNames {
		h := newKVHandler(t, name)
		if resp, _ := h.Handle(protocol.PutReq([]byte("a"), []byte("1"))); resp.Status != protocol.StatusOK {
			t.Fatalf("%s put failed", name)
		}
		if resp, _ := h.Handle(protocol.GetReq([]byte("a"))); string(resp.Args[1]) != "1" {
			t.Fatalf("%s get failed", name)
		}
	}
}

func lockReq(op protocol.Op, name, owner string) protocol.Request {
	return protocol.Request{Op: op, Args: [][]byte{[]byte(name), []byte(owner)}}
}

func TestKVHandlerLockSemantics(t *testing.T) {
	h := newKVHandler(t, "hashmap")
	// First client acquires.
	if resp, _ := h.Handle(lockReq(protocol.OpLockAcquire, "stock:1", "c1")); resp.Status != protocol.StatusOK {
		t.Fatal("c1 acquire failed")
	}
	// Second client blocked.
	if resp, _ := h.Handle(lockReq(protocol.OpLockAcquire, "stock:1", "c2")); resp.Status != protocol.StatusLocked {
		t.Fatal("c2 acquired a held lock")
	}
	// Re-entrant for the owner.
	if resp, _ := h.Handle(lockReq(protocol.OpLockAcquire, "stock:1", "c1")); resp.Status != protocol.StatusOK {
		t.Fatal("owner re-acquire failed")
	}
	// Release by a non-owner is a no-op.
	_, _ = h.Handle(lockReq(protocol.OpLockRelease, "stock:1", "c2"))
	if resp, _ := h.Handle(lockReq(protocol.OpLockAcquire, "stock:1", "c2")); resp.Status != protocol.StatusLocked {
		t.Fatal("non-owner release freed the lock")
	}
	// Owner release frees it.
	_, _ = h.Handle(lockReq(protocol.OpLockRelease, "stock:1", "c1"))
	if resp, _ := h.Handle(lockReq(protocol.OpLockAcquire, "stock:1", "c2")); resp.Status != protocol.StatusOK {
		t.Fatal("lock not released")
	}
	// ResetLocks (crash) releases everything.
	h.ResetLocks()
	if resp, _ := h.Handle(lockReq(protocol.OpLockAcquire, "stock:1", "c3")); resp.Status != protocol.StatusOK {
		t.Fatal("locks survived reset")
	}
}

func newRedisHandler(t *testing.T) *RedisHandler {
	t.Helper()
	a := kv.NewArena(8 << 20)
	s, err := rediskv.Open(a)
	if err != nil {
		t.Fatal(err)
	}
	return NewRedisHandler(s, a)
}

func cmd(name string, args ...string) protocol.Request {
	bs := make([][]byte, 0, len(args))
	for _, a := range args {
		bs = append(bs, []byte(a))
	}
	return protocol.TxnReq([]byte(name), bs...)
}

func TestRedisHandlerCommands(t *testing.T) {
	h := newRedisHandler(t)
	if resp, _ := h.Handle(cmd("SET", "k", "v")); resp.Status != protocol.StatusOK {
		t.Fatal("SET failed")
	}
	if resp, _ := h.Handle(cmd("GET", "k")); string(resp.Args[1]) != "v" {
		t.Fatalf("GET: %+v", resp)
	}
	if resp, _ := h.Handle(cmd("GET", "absent")); resp.Status != protocol.StatusNotFound {
		t.Fatal("GET absent")
	}
	if resp, _ := h.Handle(cmd("INCR", "ctr")); string(resp.Args[0]) != "1" {
		t.Fatalf("INCR: %+v", resp)
	}
	if resp, _ := h.Handle(cmd("INCR", "ctr")); string(resp.Args[0]) != "2" {
		t.Fatal("INCR twice")
	}
	_, _ = h.Handle(cmd("LPUSH", "tl", "p1"))
	_, _ = h.Handle(cmd("LPUSH", "tl", "p2"))
	resp, _ := h.Handle(cmd("LRANGE", "tl", "0", "9"))
	if resp.Status != protocol.StatusOK || len(resp.Args) != 2 || string(resp.Args[0]) != "p2" {
		t.Fatalf("LRANGE: %+v", resp)
	}
	if resp, _ := h.Handle(cmd("SADD", "s", "m")); resp.Status != protocol.StatusOK {
		t.Fatal("SADD")
	}
	if resp, _ := h.Handle(cmd("SISMEMBER", "s", "m")); resp.Status != protocol.StatusOK {
		t.Fatal("SISMEMBER hit")
	}
	if resp, _ := h.Handle(cmd("SISMEMBER", "s", "x")); resp.Status != protocol.StatusNotFound {
		t.Fatal("SISMEMBER miss")
	}
	if resp, _ := h.Handle(cmd("SCARD", "s")); string(resp.Args[0]) != "1" {
		t.Fatal("SCARD")
	}
	if resp, _ := h.Handle(cmd("BOGUS", "x")); resp.Status != protocol.StatusError {
		t.Fatal("unknown command accepted")
	}
	if resp, _ := h.Handle(cmd("LLEN", "tl")); string(resp.Args[0]) != "2" {
		t.Fatal("LLEN")
	}
	if resp, _ := h.Handle(cmd("EXISTS", "k")); resp.Status != protocol.StatusOK {
		t.Fatal("EXISTS hit")
	}
	if resp, _ := h.Handle(cmd("DEL", "k")); resp.Status != protocol.StatusOK {
		t.Fatal("DEL")
	}
	if resp, _ := h.Handle(cmd("EXISTS", "k")); resp.Status != protocol.StatusNotFound {
		t.Fatal("EXISTS after DEL")
	}
	if resp, _ := h.Handle(cmd("DEL", "k")); resp.Status != protocol.StatusNotFound {
		t.Fatal("double DEL")
	}
}

func TestRedisHandlerPlainKVOps(t *testing.T) {
	h := newRedisHandler(t)
	if resp, _ := h.Handle(protocol.PutReq([]byte("yk"), []byte("yv"))); resp.Status != protocol.StatusOK {
		t.Fatal("plain PUT")
	}
	resp, _ := h.Handle(protocol.GetReq([]byte("yk")))
	if string(resp.Args[1]) != "yv" {
		t.Fatal("plain GET")
	}
}

func TestRedisHandlerWrongType(t *testing.T) {
	h := newRedisHandler(t)
	_, _ = h.Handle(cmd("SET", "k", "v"))
	if resp, _ := h.Handle(cmd("INCR", "k")); resp.Status != protocol.StatusError {
		t.Fatal("INCR on string must error")
	}
}

func TestCostModelCharging(t *testing.T) {
	m := DefaultCost()
	h := newKVHandler(t, "btree")
	// A deeper structure costs more: insert 500 keys then measure a get.
	for i := 0; i < 500; i++ {
		key := []byte{byte(i >> 8), byte(i), 'k'}
		h.Handle(protocol.PutReq(key, []byte("v")))
	}
	_, getCost := h.Handle(protocol.GetReq([]byte{0, 250, 'k'}))
	if getCost <= m.Base {
		t.Fatalf("get cost %v must include PM read work", getCost)
	}
	_, putCost := h.Handle(protocol.PutReq([]byte{0, 251, 'k'}, []byte("v2")))
	if putCost <= getCost {
		t.Fatalf("put (%v) should cost more than get (%v): commit persists", putCost, getCost)
	}
}

func TestAtoi(t *testing.T) {
	for _, c := range []struct {
		in   string
		want int
	}{{"0", 0}, {"42", 42}, {"-1", -1}, {"9abc", 9}, {"", 0}} {
		if got := atoi([]byte(c.in)); got != c.want {
			t.Errorf("atoi(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestKVHandlerScan(t *testing.T) {
	h := newKVHandler(t, "btree")
	for i := 0; i < 20; i++ {
		h.Handle(protocol.PutReq([]byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("v%d", i))))
	}
	resp, cost := h.Handle(protocol.ScanReq([]byte("key005"), 4))
	if resp.Status != protocol.StatusOK {
		t.Fatalf("scan: %+v", resp)
	}
	if len(resp.Args) != 8 { // 4 key/value pairs
		t.Fatalf("scan returned %d args", len(resp.Args))
	}
	if string(resp.Args[0]) != "key005" || string(resp.Args[6]) != "key008" {
		t.Fatalf("scan keys %q..%q", resp.Args[0], resp.Args[6])
	}
	if cost <= h.Cost.Base {
		t.Fatal("scan cost must include PM reads")
	}
	// Hashmap rejects scans.
	hm := newKVHandler(t, "hashmap")
	hm.Handle(protocol.PutReq([]byte("k"), []byte("v")))
	if resp, _ := hm.Handle(protocol.ScanReq([]byte("a"), 3)); resp.Status != protocol.StatusError {
		t.Fatal("hashmap scan accepted")
	}
}
