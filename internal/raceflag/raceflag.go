// Package raceflag reports, at compile time, whether the race detector is
// enabled. The allocation-pinning tests skip under -race: the detector
// instruments every allocation (and allocates for its own shadow state), so
// testing.AllocsPerRun counts are meaningless there. The pins still run in
// the plain `go test ./...` pass, which CI executes alongside the race pass.
package raceflag
