// Package protocol implements the PMNet wire protocol (§IV-A of the paper):
// the PMNet header carried in the application layer of each UDP packet, the
// reserved port range that distinguishes PMNet traffic, MTU fragmentation of
// large queries, and the application-level request codec used by the
// key-value and transactional workloads.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Type distinguishes PMNet packet kinds (§IV-B1).
type Type uint8

const (
	// TypeInvalid is the zero value; never valid on the wire.
	TypeInvalid Type = iota
	// TypeUpdateReq is an update request from a client: PMNet logs it,
	// forwards it, and ACKs the client once it is persistent.
	TypeUpdateReq
	// TypeBypassReq is a read or synchronization request: PMNet forwards it
	// without logging (no early ACK).
	TypeBypassReq
	// TypePMNetACK is the early acknowledgement a PMNet device sends to the
	// client once an update request is persistent in its PM.
	TypePMNetACK
	// TypeServerACK is the server's acknowledgement that it has processed a
	// request; it invalidates the log entries along the path.
	TypeServerACK
	// TypeRetrans is a server-issued retransmission request for a lost
	// packet; a PMNet holding the logged packet answers it directly.
	TypeRetrans
	// TypeCacheResp is a read served from a PMNet device's read cache
	// (§IV-D).
	TypeCacheResp
	// TypeReadResp is the server's reply to a bypass (read) request.
	TypeReadResp
	// TypeRecoverReq is the control message a recovering server sends to a
	// PMNet device to request replay of all logged requests (§IV-E1: "the
	// server polls PMNet for logged requests").
	TypeRecoverReq

	typeMax
)

var typeNames = [...]string{
	TypeInvalid:    "invalid",
	TypeUpdateReq:  "update-req",
	TypeBypassReq:  "bypass-req",
	TypePMNetACK:   "PMNet-ACK",
	TypeServerACK:  "server-ACK",
	TypeRetrans:    "Retrans",
	TypeCacheResp:  "cache-resp",
	TypeReadResp:   "read-resp",
	TypeRecoverReq: "recover-req",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Valid reports whether t is a defined packet type.
func (t Type) Valid() bool { return t > TypeInvalid && t < typeMax }

// PMNet reserves UDP ports 51000–52000 (§IV-A2).
const (
	PortMin = 51000
	PortMax = 52000
)

// IsPMNetPort reports whether a UDP destination port marks PMNet traffic.
func IsPMNetPort(port uint16) bool { return port >= PortMin && port <= PortMax }

// MTU is the default maximum transmission unit (§IV-A3: "a UDP packet
// typically has a maximum transmission unit of 1.5 kB").
const MTU = 1500

// HeaderSize is the encoded size of a PMNet header in bytes.
//
// The paper's header is Type(8b) + SessionID(16b) + SeqNum(32b) +
// HashVal(32b); it underspecifies how multi-packet queries are reassembled,
// so we carry an explicit fragment index/total pair (the paper's library
// "tracks the number of PMNet-ACKs in a similar way", §IV-A3).
const HeaderSize = 16

// Header is the PMNet header (§IV-A1) plus the fragmentation fields our
// software library needs for MTU-sized packets.
type Header struct {
	Type      Type
	SessionID uint16 // client session (connection) identifier
	SeqNum    uint32 // per-session packet order; also dedupe key
	FragIdx   uint16 // fragment index within the query, 0-based
	FragTotal uint16 // number of fragments in the query (≥1)
	HashVal   uint32 // CRC-32 of the header (HashVal field zeroed); PM log index
}

// Errors returned by the codec.
var (
	ErrShortBuffer = errors.New("protocol: buffer too short for PMNet header")
	ErrBadType     = errors.New("protocol: invalid packet type")
	ErrBadHash     = errors.New("protocol: header hash mismatch")
)

// encodeInto writes the header with the given hash value.
func (h *Header) encodeInto(b []byte, hash uint32) {
	b[0] = byte(h.Type)
	b[1] = 0 // reserved
	binary.BigEndian.PutUint16(b[2:], h.SessionID)
	binary.BigEndian.PutUint32(b[4:], h.SeqNum)
	binary.BigEndian.PutUint16(b[8:], h.FragIdx)
	binary.BigEndian.PutUint16(b[10:], h.FragTotal)
	binary.BigEndian.PutUint32(b[12:], hash)
}

// crcTable drives the in-package CRC loop below.
var crcTable = crc32.MakeTable(crc32.IEEE)

// ComputeHash returns the CRC-32 (IEEE) of the encoded header with both the
// HashVal field and the Type byte zeroed. Excluding Type means every packet
// related to one request — the update-req itself, the server-ACK that
// retires it, a Retrans asking for it — carries the same HashVal, which is
// what lets a PMNet device use HashVal as its PM log index for all of them
// (§IV-B1). The hash still covers SessionID/SeqNum/fragment fields, so it
// doubles as an integrity check on those.
//
// The checksum is computed with a plain table-driven loop rather than
// crc32.ChecksumIEEE: the stdlib's assembly kernels make the input escape,
// which would heap-allocate the 16-byte scratch header on every Seal and
// DecodeHeader — one of the hottest allocation sites in the simulator. The
// result is bit-identical (same polynomial, same algorithm).
func (h *Header) ComputeHash() uint32 {
	var b [HeaderSize]byte
	h.encodeInto(b[:], 0)
	b[0] = 0 // Type excluded: shared across a request's related packets
	crc := ^uint32(0)
	for _, v := range b {
		crc = crcTable[byte(crc)^v] ^ (crc >> 8)
	}
	return ^crc
}

// Seal fills HashVal from the rest of the header and returns the header for
// chaining.
func (h *Header) Seal() *Header {
	h.HashVal = h.ComputeHash()
	return h
}

// Encode appends the wire form of h to dst and returns the extended slice.
// Encode does not recompute HashVal; call Seal first when constructing
// headers.
func (h *Header) Encode(dst []byte) []byte {
	var b [HeaderSize]byte
	h.encodeInto(b[:], h.HashVal)
	return append(dst, b[:]...)
}

// DecodeHeader parses a PMNet header from the front of b. It verifies the
// type field and the header CRC, returning the header and the remaining
// payload bytes.
func DecodeHeader(b []byte) (Header, []byte, error) {
	if len(b) < HeaderSize {
		return Header{}, nil, ErrShortBuffer
	}
	h := Header{
		Type:      Type(b[0]),
		SessionID: binary.BigEndian.Uint16(b[2:]),
		SeqNum:    binary.BigEndian.Uint32(b[4:]),
		FragIdx:   binary.BigEndian.Uint16(b[8:]),
		FragTotal: binary.BigEndian.Uint16(b[10:]),
		HashVal:   binary.BigEndian.Uint32(b[12:]),
	}
	if !h.Type.Valid() {
		return Header{}, nil, fmt.Errorf("%w: %d", ErrBadType, b[0])
	}
	if h.ComputeHash() != h.HashVal {
		return Header{}, nil, ErrBadHash
	}
	return h, b[HeaderSize:], nil
}

func (h Header) String() string {
	return fmt.Sprintf("%v sess=%d seq=%d frag=%d/%d hash=%08x",
		h.Type, h.SessionID, h.SeqNum, h.FragIdx, h.FragTotal, h.HashVal)
}
