package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op is the application-level operation carried in a request payload. All
// PMNet workloads (PMDK-style KV engines, the Redis-like store, Twitter,
// TPCC) share this codec so that servers can dispatch uniformly and the
// read cache can extract keys from GET/SET requests (§VI-B4).
type Op uint8

const (
	OpNop Op = iota
	// Key-value operations.
	OpGet
	OpPut
	OpDelete
	// Synchronization primitives; always sent as bypass requests so the
	// server enforces multi-client ordering (§III-C).
	OpLockAcquire
	OpLockRelease
	// Transactional / composite operations, interpreted by the workload
	// server handler (TPCC new-order & payment, Twitter post/follow/...).
	OpTxn
	// OpScan is an ordered range scan: Args = [startKey, limit (decimal)].
	// Read-only, so it travels as a bypass request (YCSB workload E).
	OpScan

	opMax
)

var opNames = [...]string{
	OpNop:         "nop",
	OpGet:         "get",
	OpPut:         "put",
	OpDelete:      "delete",
	OpLockAcquire: "lock",
	OpLockRelease: "unlock",
	OpTxn:         "txn",
	OpScan:        "scan",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Mutates reports whether the operation changes server state — the property
// that decides between update-req and bypass-req framing. Lock operations
// mutate server state but MUST travel as bypass requests so ordering is
// enforced at the server (§III-C); the client library handles that.
func (o Op) Mutates() bool {
	switch o {
	case OpPut, OpDelete, OpTxn, OpLockAcquire, OpLockRelease:
		return true
	default:
		return false
	}
}

// Request is an application-level query: an operation plus its arguments
// (key, value, transaction parameters...).
type Request struct {
	Op   Op
	Args [][]byte
}

// Status is the application-level result code carried in responses.
type Status uint8

const (
	StatusOK Status = iota
	StatusNotFound
	StatusLocked // lock acquisition failed; caller must retry
	StatusError
)

var statusNames = [...]string{
	StatusOK:       "ok",
	StatusNotFound: "not-found",
	StatusLocked:   "locked",
	StatusError:    "error",
}

func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Response is the server's application-level reply.
type Response struct {
	Status Status
	Args   [][]byte
}

// Codec errors.
var (
	ErrTruncated = errors.New("protocol: truncated request payload")
	ErrBadOp     = errors.New("protocol: unknown operation")
)

func encodeArgs(dst []byte, args [][]byte) []byte {
	dst = append(dst, byte(len(args)))
	var tmp [binary.MaxVarintLen64]byte
	for _, a := range args {
		n := binary.PutUvarint(tmp[:], uint64(len(a)))
		dst = append(dst, tmp[:n]...)
		dst = append(dst, a...)
	}
	return dst
}

// argsSize returns the encoded size of an argument vector, so Encode can
// allocate its output in one shot instead of growing through appends.
func argsSize(args [][]byte) int {
	n := 1 // arg count byte
	var tmp [binary.MaxVarintLen64]byte
	for _, a := range args {
		n += binary.PutUvarint(tmp[:], uint64(len(a))) + len(a)
	}
	return n
}

func decodeArgs(b []byte) ([][]byte, error) {
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	argc := int(b[0])
	b = b[1:]
	args := make([][]byte, 0, argc)
	for i := 0; i < argc; i++ {
		l, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < l {
			return nil, ErrTruncated
		}
		b = b[n:]
		args = append(args, b[:l:l])
		b = b[l:]
	}
	return args, nil
}

// Encode serializes the request as a payload.
func (r Request) Encode() []byte {
	out := make([]byte, 0, 1+argsSize(r.Args))
	out = append(out, byte(r.Op))
	return encodeArgs(out, r.Args)
}

// DecodeRequest parses a request payload.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < 1 {
		return Request{}, ErrTruncated
	}
	op := Op(b[0])
	if op == OpNop || op >= opMax {
		return Request{}, fmt.Errorf("%w: %d", ErrBadOp, b[0])
	}
	args, err := decodeArgs(b[1:])
	if err != nil {
		return Request{}, err
	}
	return Request{Op: op, Args: args}, nil
}

// Encode serializes the response as a payload.
func (r Response) Encode() []byte {
	out := make([]byte, 0, 1+argsSize(r.Args))
	out = append(out, byte(r.Status))
	return encodeArgs(out, r.Args)
}

// DecodeResponse parses a response payload.
func DecodeResponse(b []byte) (Response, error) {
	if len(b) < 1 {
		return Response{}, ErrTruncated
	}
	args, err := decodeArgs(b[1:])
	if err != nil {
		return Response{}, err
	}
	return Response{Status: Status(b[0]), Args: args}, nil
}

// Convenience constructors for the common shapes.

// GetReq builds a read request for key.
func GetReq(key []byte) Request { return Request{Op: OpGet, Args: [][]byte{key}} }

// PutReq builds an update request storing value under key.
func PutReq(key, value []byte) Request { return Request{Op: OpPut, Args: [][]byte{key, value}} }

// DeleteReq builds a delete request for key.
func DeleteReq(key []byte) Request { return Request{Op: OpDelete, Args: [][]byte{key}} }

// LockReq builds a lock-acquire request for the named lock.
func LockReq(name []byte) Request { return Request{Op: OpLockAcquire, Args: [][]byte{name}} }

// UnlockReq builds a lock-release request for the named lock.
func UnlockReq(name []byte) Request { return Request{Op: OpLockRelease, Args: [][]byte{name}} }

// TxnReq builds a composite transactional request; the first argument names
// the transaction and the rest are its parameters.
func TxnReq(name []byte, params ...[]byte) Request {
	return Request{Op: OpTxn, Args: append([][]byte{name}, params...)}
}

// ScanReq builds an ordered range-scan request starting at start, returning
// at most limit pairs.
func ScanReq(start []byte, limit int) Request {
	return Request{Op: OpScan, Args: [][]byte{start, []byte(fmt.Sprintf("%d", limit))}}
}

// Key returns the primary key of a KV request, or nil when the operation has
// no key (used by the PMNet read cache to index GET/SET traffic).
func (r Request) Key() []byte {
	if len(r.Args) == 0 {
		return nil
	}
	switch r.Op {
	case OpGet, OpPut, OpDelete:
		return r.Args[0]
	default:
		return nil
	}
}
