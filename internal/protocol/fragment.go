package protocol

import (
	"errors"
	"fmt"
)

// Message is one PMNet packet: a sealed header plus its payload fragment.
type Message struct {
	Hdr     Header
	Payload []byte
}

// WireSize returns the bytes this message occupies inside the UDP datagram.
func (m Message) WireSize() int { return HeaderSize + len(m.Payload) }

// Encode returns the datagram body (header followed by payload).
func (m Message) Encode() []byte {
	out := make([]byte, 0, m.WireSize())
	out = m.Hdr.Encode(out)
	return append(out, m.Payload...)
}

// DecodeMessage parses a datagram body into a Message.
func DecodeMessage(b []byte) (Message, error) {
	hdr, rest, err := DecodeHeader(b)
	if err != nil {
		return Message{}, err
	}
	return Message{Hdr: hdr, Payload: rest}, nil
}

// Fragment splits a query payload into MTU-sized PMNet packets (§IV-A3).
// Each fragment consumes one sequence number starting at firstSeq, carries
// the shared session ID and type, and is individually sealed (per-fragment
// HashVal, since each fragment is logged as its own PM entry and ACKed with
// its own PMNet-ACK).
//
// mtu bounds the whole datagram body (header + payload chunk). A zero or
// negative mtu uses the default MTU. Empty payloads produce one fragment.
func Fragment(typ Type, session uint16, firstSeq uint32, payload []byte, mtu int) []Message {
	if mtu <= 0 {
		mtu = MTU
	}
	chunk := mtu - HeaderSize
	if chunk <= 0 {
		panic(fmt.Sprintf("protocol: mtu %d leaves no room for payload", mtu))
	}
	total := (len(payload) + chunk - 1) / chunk
	if total == 0 {
		total = 1
	}
	if total > 0xFFFF {
		panic(fmt.Sprintf("protocol: query needs %d fragments (max 65535)", total))
	}
	msgs := make([]Message, 0, total)
	for i := 0; i < total; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(payload) {
			hi = len(payload)
		}
		h := Header{
			Type:      typ,
			SessionID: session,
			SeqNum:    firstSeq + uint32(i),
			FragIdx:   uint16(i),
			FragTotal: uint16(total),
		}
		h.Seal()
		msgs = append(msgs, Message{Hdr: h, Payload: payload[lo:hi]})
	}
	return msgs
}

// ErrIncomplete is returned by Reassembler.Add while fragments are missing.
var ErrIncomplete = errors.New("protocol: query incomplete")

// Reassembler collects the fragments of one query and yields the full
// payload once every fragment has arrived, tolerating reordering and
// duplicates. The query is identified by its first sequence number.
type Reassembler struct {
	firstSeq uint32
	total    int
	got      int
	parts    [][]byte
}

// NewReassembler starts reassembly for the query whose first fragment
// carries firstSeq and declares fragTotal fragments.
func NewReassembler(firstSeq uint32, fragTotal uint16) *Reassembler {
	if fragTotal == 0 {
		fragTotal = 1
	}
	return &Reassembler{
		firstSeq: firstSeq,
		total:    int(fragTotal),
		parts:    make([][]byte, fragTotal),
	}
}

// Complete reports whether every fragment has been received.
func (r *Reassembler) Complete() bool { return r.got == r.total }

// Missing returns the sequence numbers not yet received.
func (r *Reassembler) Missing() []uint32 {
	var out []uint32
	for i, p := range r.parts {
		if p == nil {
			out = append(out, r.firstSeq+uint32(i))
		}
	}
	return out
}

// Add records a fragment. When the final fragment lands it returns the
// concatenated payload; before that it returns ErrIncomplete. Fragments that
// do not belong to this query are rejected.
func (r *Reassembler) Add(m Message) ([]byte, error) {
	idx := int(m.Hdr.FragIdx)
	if int(m.Hdr.FragTotal) != r.total || idx >= r.total {
		return nil, fmt.Errorf("protocol: fragment %d/%d does not match query of %d fragments",
			idx, m.Hdr.FragTotal, r.total)
	}
	if m.Hdr.SeqNum != r.firstSeq+uint32(idx) {
		return nil, fmt.Errorf("protocol: fragment seq %d inconsistent with first seq %d + idx %d",
			m.Hdr.SeqNum, r.firstSeq, idx)
	}
	if r.parts[idx] == nil {
		r.parts[idx] = m.Payload
		r.got++
	}
	if !r.Complete() {
		return nil, ErrIncomplete
	}
	var n int
	for _, p := range r.parts {
		n += len(p)
	}
	out := make([]byte, 0, n)
	for _, p := range r.parts {
		out = append(out, p...)
	}
	return out, nil
}
