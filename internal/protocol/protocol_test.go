package protocol

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Type: TypeUpdateReq, SessionID: 42, SeqNum: 7, FragIdx: 1, FragTotal: 3}
	h.Seal()
	wire := h.Encode(nil)
	if len(wire) != HeaderSize {
		t.Fatalf("encoded %d bytes, want %d", len(wire), HeaderSize)
	}
	got, rest, err := DecodeHeader(append(wire, 0xAA, 0xBB))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("decoded %+v, want %+v", got, h)
	}
	if len(rest) != 2 || rest[0] != 0xAA {
		t.Fatalf("payload remainder wrong: %v", rest)
	}
}

func TestDecodeHeaderRejectsShort(t *testing.T) {
	_, _, err := DecodeHeader(make([]byte, HeaderSize-1))
	if !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
}

func TestDecodeHeaderRejectsBadType(t *testing.T) {
	h := Header{Type: TypeUpdateReq, SessionID: 1, SeqNum: 1, FragTotal: 1}
	h.Seal()
	wire := h.Encode(nil)
	wire[0] = 200 // invalid type
	if _, _, err := DecodeHeader(wire); !errors.Is(err, ErrBadType) {
		t.Fatalf("err = %v, want ErrBadType", err)
	}
}

func TestDecodeHeaderRejectsCorruption(t *testing.T) {
	h := Header{Type: TypeUpdateReq, SessionID: 9, SeqNum: 100, FragTotal: 1}
	h.Seal()
	wire := h.Encode(nil)
	wire[5] ^= 0xFF // corrupt SeqNum
	if _, _, err := DecodeHeader(wire); !errors.Is(err, ErrBadHash) {
		t.Fatalf("err = %v, want ErrBadHash", err)
	}
}

func TestHashDependsOnRequestIdentityNotType(t *testing.T) {
	base := Header{Type: TypeUpdateReq, SessionID: 1, SeqNum: 1, FragIdx: 0, FragTotal: 1}
	h0 := base.ComputeHash()
	// Hash changes with any request-identifying field...
	variants := []Header{
		{Type: TypeUpdateReq, SessionID: 2, SeqNum: 1, FragTotal: 1},
		{Type: TypeUpdateReq, SessionID: 1, SeqNum: 2, FragTotal: 1},
		{Type: TypeUpdateReq, SessionID: 1, SeqNum: 1, FragIdx: 1, FragTotal: 2},
	}
	for i, v := range variants {
		if v.ComputeHash() == h0 {
			t.Errorf("variant %d hash collides with base", i)
		}
	}
	// ...but NOT with the Type: a server-ACK for the request carries the
	// same HashVal, which is the PM log index (§IV-B1).
	ack := Header{Type: TypeServerACK, SessionID: 1, SeqNum: 1, FragIdx: 0, FragTotal: 1}
	if ack.ComputeHash() != h0 {
		t.Error("server-ACK hash differs from its request's hash")
	}
}

func TestPMNetPortRange(t *testing.T) {
	for _, c := range []struct {
		port uint16
		want bool
	}{{50999, false}, {51000, true}, {51500, true}, {52000, true}, {52001, false}, {80, false}} {
		if got := IsPMNetPort(c.port); got != c.want {
			t.Errorf("IsPMNetPort(%d) = %v", c.port, got)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeUpdateReq.String() != "update-req" || TypeServerACK.String() != "server-ACK" {
		t.Fatal("type names wrong")
	}
	if Type(99).String() == "" {
		t.Fatal("unknown type must still format")
	}
	if TypeInvalid.Valid() || Type(100).Valid() {
		t.Fatal("invalid types reported valid")
	}
	if !TypeRetrans.Valid() {
		t.Fatal("Retrans reported invalid")
	}
}

func TestFragmentSmallPayloadSingleFragment(t *testing.T) {
	msgs := Fragment(TypeUpdateReq, 5, 100, []byte("tiny"), 0)
	if len(msgs) != 1 {
		t.Fatalf("got %d fragments, want 1", len(msgs))
	}
	m := msgs[0]
	if m.Hdr.SeqNum != 100 || m.Hdr.FragIdx != 0 || m.Hdr.FragTotal != 1 {
		t.Fatalf("header %+v", m.Hdr)
	}
	if string(m.Payload) != "tiny" {
		t.Fatalf("payload %q", m.Payload)
	}
	if m.Hdr.ComputeHash() != m.Hdr.HashVal {
		t.Fatal("fragment not sealed")
	}
}

func TestFragmentEmptyPayload(t *testing.T) {
	msgs := Fragment(TypeUpdateReq, 1, 1, nil, 0)
	if len(msgs) != 1 || len(msgs[0].Payload) != 0 {
		t.Fatalf("empty payload should make one empty fragment, got %d", len(msgs))
	}
}

func TestFragmentRespectsMTU(t *testing.T) {
	payload := make([]byte, 4000)
	for i := range payload {
		payload[i] = byte(i)
	}
	msgs := Fragment(TypeUpdateReq, 3, 50, payload, 1500)
	if len(msgs) != 3 { // ceil(4000 / 1484)
		t.Fatalf("got %d fragments, want 3", len(msgs))
	}
	for i, m := range msgs {
		if m.WireSize() > 1500 {
			t.Fatalf("fragment %d exceeds MTU: %d", i, m.WireSize())
		}
		if m.Hdr.SeqNum != 50+uint32(i) {
			t.Fatalf("fragment %d seq %d", i, m.Hdr.SeqNum)
		}
	}
}

func TestReassemblerInOrder(t *testing.T) {
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	msgs := Fragment(TypeUpdateReq, 9, 10, payload, 1000)
	r := NewReassembler(10, msgs[0].Hdr.FragTotal)
	var got []byte
	for i, m := range msgs {
		out, err := r.Add(m)
		if i < len(msgs)-1 {
			if !errors.Is(err, ErrIncomplete) {
				t.Fatalf("fragment %d: err = %v, want ErrIncomplete", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		got = out
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reassembled payload differs")
	}
}

func TestReassemblerReorderedAndDuplicated(t *testing.T) {
	payload := make([]byte, 2500)
	for i := range payload {
		payload[i] = byte(i)
	}
	msgs := Fragment(TypeUpdateReq, 2, 0, payload, 1000)
	r := NewReassembler(0, msgs[0].Hdr.FragTotal)
	order := []int{2, 0, 0, 1} // out of order with a duplicate
	var got []byte
	for _, idx := range order {
		out, err := r.Add(msgs[idx])
		if err == nil {
			got = out
		} else if !errors.Is(err, ErrIncomplete) {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reassembly with reordering/duplicates failed")
	}
}

func TestReassemblerMissing(t *testing.T) {
	msgs := Fragment(TypeUpdateReq, 2, 40, make([]byte, 2500), 1000)
	r := NewReassembler(40, msgs[0].Hdr.FragTotal)
	_, _ = r.Add(msgs[0])
	_, _ = r.Add(msgs[2])
	miss := r.Missing()
	if len(miss) != 1 || miss[0] != 41 {
		t.Fatalf("Missing() = %v, want [41]", miss)
	}
}

func TestReassemblerRejectsForeignFragment(t *testing.T) {
	r := NewReassembler(0, 2)
	bad := Fragment(TypeUpdateReq, 1, 100, []byte("x"), 0)[0]
	if _, err := r.Add(bad); err == nil || errors.Is(err, ErrIncomplete) {
		t.Fatalf("foreign fragment accepted: %v", err)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := Fragment(TypeBypassReq, 7, 55, []byte("payload bytes"), 0)[0]
	got, err := DecodeMessage(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Hdr != m.Hdr || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("message round trip mismatch")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		GetReq([]byte("key1")),
		PutReq([]byte("key2"), []byte("value2")),
		DeleteReq([]byte("key3")),
		LockReq([]byte("stock:42")),
		UnlockReq([]byte("stock:42")),
		TxnReq([]byte("new-order"), []byte("w1"), []byte("d3")),
		{Op: OpPut, Args: [][]byte{{}, {}}}, // empty args are legal
	}
	for _, r := range reqs {
		got, err := DecodeRequest(r.Encode())
		if err != nil {
			t.Fatalf("%v: %v", r.Op, err)
		}
		if got.Op != r.Op || len(got.Args) != len(r.Args) {
			t.Fatalf("round trip changed shape: %+v vs %+v", got, r)
		}
		for i := range r.Args {
			if !bytes.Equal(got.Args[i], r.Args[i]) {
				t.Fatalf("arg %d mismatch", i)
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := Response{Status: StatusNotFound, Args: [][]byte{[]byte("why")}}
	got, err := DecodeResponse(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusNotFound || string(got.Args[0]) != "why" {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	if _, err := DecodeRequest(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("nil: %v", err)
	}
	if _, err := DecodeRequest([]byte{0}); !errors.Is(err, ErrBadOp) {
		t.Fatalf("nop op: %v", err)
	}
	if _, err := DecodeRequest([]byte{99, 0}); !errors.Is(err, ErrBadOp) {
		t.Fatalf("bad op: %v", err)
	}
	// Truncated arg payload.
	full := PutReq([]byte("abc"), []byte("defgh")).Encode()
	if _, err := DecodeRequest(full[:len(full)-2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestOpMutates(t *testing.T) {
	if OpGet.Mutates() || OpNop.Mutates() {
		t.Fatal("reads must not be mutating")
	}
	for _, o := range []Op{OpPut, OpDelete, OpTxn, OpLockAcquire, OpLockRelease} {
		if !o.Mutates() {
			t.Fatalf("%v should mutate", o)
		}
	}
}

func TestRequestKey(t *testing.T) {
	if k := GetReq([]byte("k")).Key(); string(k) != "k" {
		t.Fatalf("Key() = %q", k)
	}
	r := TxnReq([]byte("t"))
	if r.Key() != nil {
		t.Fatal("txn must have no cache key")
	}
	empty := Request{Op: OpGet}
	if empty.Key() != nil {
		t.Fatal("argless request must have no key")
	}
}

// Property: fragment → reassemble is the identity for any payload and MTU.
func TestQuickFragmentReassemble(t *testing.T) {
	f := func(payload []byte, mtuSeed uint16, seq uint32) bool {
		mtu := int(mtuSeed)%2000 + HeaderSize + 1 // ensure room for ≥1 byte
		if len(payload) > 1400*0xFFFF {
			payload = payload[:1400]
		}
		msgs := Fragment(TypeUpdateReq, 1, seq, payload, mtu)
		r := NewReassembler(seq, msgs[0].Hdr.FragTotal)
		var got []byte
		for i, m := range msgs {
			out, err := r.Add(m)
			if i == len(msgs)-1 {
				if err != nil {
					return false
				}
				got = out
			} else if !errors.Is(err, ErrIncomplete) {
				return false
			}
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: header encode/decode is the identity for any sealed header with
// a valid type.
func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(typ uint8, sess uint16, seq uint32, fi, ft uint16) bool {
		h := Header{
			Type:      Type(typ%uint8(typeMax-1)) + 1,
			SessionID: sess, SeqNum: seq, FragIdx: fi, FragTotal: ft,
		}
		h.Seal()
		got, _, err := DecodeHeader(h.Encode(nil))
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: request encode/decode identity.
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(opSeed uint8, args [][]byte) bool {
		ops := []Op{OpGet, OpPut, OpDelete, OpLockAcquire, OpLockRelease, OpTxn}
		if len(args) > 255 {
			args = args[:255]
		}
		r := Request{Op: ops[int(opSeed)%len(ops)], Args: args}
		got, err := DecodeRequest(r.Encode())
		if err != nil || got.Op != r.Op || len(got.Args) != len(r.Args) {
			return false
		}
		for i := range args {
			if !bytes.Equal(got.Args[i], args[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
