package checker

import (
	"strings"
	"testing"

	"pmnet/internal/protocol"
	"pmnet/internal/server"
	"pmnet/internal/sim"
)

func applyPut(c *Checker, key, value string) {
	h := c.WrapHandler(server.IdealHandler{})
	h.Handle(protocol.PutReq([]byte(key), []byte(value)))
}

func stateOf(m map[string]string) func(string) (string, bool) {
	return func(k string) (string, bool) {
		v, ok := m[k]
		return v, ok
	}
}

func TestCleanRunPasses(t *testing.T) {
	c := New()
	state := map[string]string{}
	for i, key := range []string{"a", "b", "c"} {
		_ = i
		c.Issue(1, key, "v-"+key)
		applyPut(c, key, "v-"+key)
		state[key] = "v-" + key
		c.Complete(key)
	}
	if v := c.Check(stateOf(state)); len(v) != 0 {
		t.Fatalf("violations on clean run: %v", v)
	}
	issued, completed, applied := c.Summary()
	if issued != 3 || completed != 3 || applied != 3 {
		t.Fatalf("summary %d/%d/%d", issued, completed, applied)
	}
}

func TestDurabilityViolation(t *testing.T) {
	c := New()
	c.Issue(1, "k", "v")
	c.Complete("k")
	applyPut(c, "k", "v")
	// Recovered state lost the update.
	v := c.Check(stateOf(map[string]string{}))
	if len(v) == 0 || v[0].Rule != "durability" {
		t.Fatalf("violations %v", v)
	}
	if !strings.Contains(v[0].Error(), "missing") {
		t.Fatalf("detail: %v", v[0])
	}
}

func TestDurabilityWrongValue(t *testing.T) {
	c := New()
	c.Issue(1, "k", "new")
	c.Complete("k")
	applyPut(c, "k", "new")
	v := c.Check(stateOf(map[string]string{"k": "old"}))
	found := false
	for _, violation := range v {
		if violation.Rule == "durability" {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong value not flagged: %v", v)
	}
}

func TestUncompletedUpdateMayBeLost(t *testing.T) {
	c := New()
	c.Issue(1, "k", "v") // never completed: the client got no ACK
	if v := c.Check(stateOf(map[string]string{})); len(v) != 0 {
		t.Fatalf("loss of an unacknowledged update flagged: %v", v)
	}
}

func TestOrderViolation(t *testing.T) {
	c := New()
	c.Issue(1, "first", "1")
	c.Issue(1, "second", "2")
	applyPut(c, "second", "2")
	applyPut(c, "first", "1")
	state := map[string]string{"first": "1", "second": "2"}
	c.Complete("first")
	c.Complete("second")
	v := c.Check(stateOf(state))
	found := false
	for _, violation := range v {
		if violation.Rule == "order" {
			found = true
		}
	}
	if !found {
		t.Fatalf("out-of-order apply not flagged: %v", v)
	}
}

func TestCrossSessionOrderIsFree(t *testing.T) {
	// Ordering is only guaranteed within a session (§III-C): interleaving
	// across sessions must not be flagged.
	c := New()
	c.Issue(1, "a1", "x")
	c.Issue(2, "b1", "y")
	applyPut(c, "b1", "y")
	applyPut(c, "a1", "x")
	c.Complete("a1")
	c.Complete("b1")
	state := map[string]string{"a1": "x", "b1": "y"}
	if v := c.Check(stateOf(state)); len(v) != 0 {
		t.Fatalf("cross-session interleaving flagged: %v", v)
	}
}

func TestUniquenessViolation(t *testing.T) {
	c := New()
	c.Strict = true // flag even idempotent replays
	c.Issue(1, "k", "v")
	applyPut(c, "k", "v")
	applyPut(c, "k", "v") // replay not deduped
	c.Complete("k")
	v := c.Check(stateOf(map[string]string{"k": "v"}))
	found := false
	for _, violation := range v {
		if violation.Rule == "uniqueness" {
			found = true
		}
	}
	if !found {
		t.Fatalf("double apply not flagged: %v", v)
	}
}

func TestQuiescenceViolation(t *testing.T) {
	c := New()
	c.Issue(1, "k", "v")
	c.Complete("k")
	// State magically has the value but no apply event was observed
	// (e.g. the handler was bypassed).
	v := c.Check(stateOf(map[string]string{"k": "v"}))
	found := false
	for _, violation := range v {
		if violation.Rule == "quiescence" {
			found = true
		}
	}
	if !found {
		t.Fatalf("phantom state not flagged: %v", v)
	}
}

func TestIdempotentReplayAllowedByDefault(t *testing.T) {
	c := New()
	c.Issue(1, "k", "v")
	applyPut(c, "k", "v")
	applyPut(c, "k", "v") // redo replay of the identical update
	c.Complete("k")
	if v := c.Check(stateOf(map[string]string{"k": "v"})); len(v) != 0 {
		t.Fatalf("idempotent replay flagged in non-strict mode: %v", v)
	}
	// Differing values are always a violation.
	c2 := New()
	c2.Issue(1, "k", "v1")
	applyPut(c2, "k", "v1")
	applyPut(c2, "k", "v2")
	c2.Complete("k")
	found := false
	for _, violation := range c2.Check(stateOf(map[string]string{"k": "v1"})) {
		if violation.Rule == "uniqueness" {
			found = true
		}
	}
	if !found {
		t.Fatal("differing-value double apply not flagged")
	}
}

func TestForeignTrafficIgnored(t *testing.T) {
	c := New()
	applyPut(c, "prefill", "x") // not issued through the checker
	c.Issue(1, "k", "v")
	applyPut(c, "k", "v")
	c.Complete("k")
	if v := c.Check(stateOf(map[string]string{"k": "v", "prefill": "x"})); len(v) != 0 {
		t.Fatalf("prefill traffic flagged: %v", v)
	}
}

func TestDuplicateKeyPanics(t *testing.T) {
	c := New()
	c.Issue(1, "k", "v")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate key accepted")
		}
	}()
	c.Issue(2, "k", "w")
}

func TestWrapHandlerIgnoresFailedAndNonPut(t *testing.T) {
	c := New()
	h := c.WrapHandler(server.HandlerFunc(func(req protocol.Request) (protocol.Response, sim.Time) {
		if req.Op == protocol.OpPut {
			return protocol.Response{Status: protocol.StatusError}, 1
		}
		return protocol.Response{Status: protocol.StatusOK}, 1
	}))
	h.Handle(protocol.PutReq([]byte("k"), []byte("v"))) // fails: not recorded
	h.Handle(protocol.GetReq([]byte("k")))
	if c.AppliedCount() != 0 {
		t.Fatalf("applied %d", c.AppliedCount())
	}
}
