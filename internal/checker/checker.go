// Package checker validates the end-to-end persistence guarantees of a
// PMNet system run — the direction the paper sketches as future work in
// §VIII ("testing methods can be adapted to in-network data persistence
// systems, to validate not only the ordering in one application but also
// the persist ordering among clients and servers").
//
// The checker observes a workload from both ends: the client library's
// issue/completion events and the server handler's apply events. After the
// run (including any injected crashes and recoveries) it verifies:
//
//	D — Durability: every update the client observed as complete (PMNet-ACK
//	    quorum or server-ACK) is reflected in the recovered server state.
//	O — Per-session order: a session's updates are applied in issue order.
//	U — Uniqueness: no update is applied more than once — except the redo
//	    case: a crash can land between the engine commit and the watermark
//	    persist, so recovery may re-apply the *identical* update once more
//	    (standard redo-log at-least-once semantics, safe for idempotent KV
//	    operations). Set Strict to flag those replays too.
//	Q — Quiescence: after the system drains, every completed update was
//	    applied exactly once.
//
// Workloads under check must use unique keys per update so the final state
// maps one-to-one onto updates.
package checker

import (
	"fmt"
	"sort"

	"pmnet/internal/protocol"
	"pmnet/internal/server"
	"pmnet/internal/sim"
)

// Update is one tracked client update.
type Update struct {
	Session   uint16
	Index     int // issue order within the session
	Key       string
	Value     string
	Completed bool
}

// Checker accumulates observations from one run.
type Checker struct {
	// Strict flags idempotent redo replays as uniqueness violations; leave
	// false for runs with injected crashes.
	Strict bool

	updates map[string]*Update // by key
	issued  map[uint16][]*Update
	applied []appliedEvent
}

type appliedEvent struct {
	key   string
	value string
}

// New creates an empty checker.
func New() *Checker {
	return &Checker{
		updates: make(map[string]*Update),
		issued:  make(map[uint16][]*Update),
	}
}

// Issue records that a session issued an update. Keys must be unique across
// the whole run.
func (c *Checker) Issue(session uint16, key, value string) {
	if _, dup := c.updates[key]; dup {
		panic(fmt.Sprintf("checker: duplicate key %q (checker workloads need unique keys)", key))
	}
	u := &Update{Session: session, Index: len(c.issued[session]), Key: key, Value: value}
	c.updates[key] = u
	c.issued[session] = append(c.issued[session], u)
}

// Complete records that the client observed the update as complete (the
// moment the paper's guarantee attaches: the request is persistent).
func (c *Checker) Complete(key string) {
	if u, ok := c.updates[key]; ok {
		u.Completed = true
	}
}

// WrapHandler interposes on the server handler to record every applied PUT.
// The wrapped handler sees apply events in true execution order (the server
// library serializes per session).
//
// The wrapper implements Unwrap so capability probes (server.As) still find
// what the inner handler provides — crash/restart hooks, invariant checkers.
// A closure here once swallowed CrashFaultHandler and silently disabled
// crash injection for checked runs.
func (c *Checker) WrapHandler(h server.Handler) server.Handler {
	return &recordingHandler{c: c, inner: h}
}

type recordingHandler struct {
	c     *Checker
	inner server.Handler
}

// Handle implements server.Handler.
func (r *recordingHandler) Handle(req protocol.Request) (protocol.Response, sim.Time) {
	resp, cost := r.inner.Handle(req)
	if req.Op == protocol.OpPut && len(req.Args) >= 2 && resp.Status == protocol.StatusOK {
		r.c.applied = append(r.c.applied, appliedEvent{
			key:   string(req.Args[0]),
			value: string(req.Args[1]),
		})
	}
	return resp, cost
}

// Unwrap exposes the decorated handler to server.As capability probes.
func (r *recordingHandler) Unwrap() server.Handler { return r.inner }

// AppliedCount returns the number of recorded apply events.
func (c *Checker) AppliedCount() int { return len(c.applied) }

// Violation describes one broken guarantee.
type Violation struct {
	Rule   string // "durability", "order", "uniqueness", "quiescence"
	Detail string
}

func (v Violation) Error() string { return v.Rule + ": " + v.Detail }

// Check validates all guarantees. lookup reads the recovered server state
// (e.g. the storage engine); crashes tells the checker whether the server
// state was rebuilt from scratch at least once (if not, pre-crash applies
// persist trivially).
func (c *Checker) Check(lookup func(key string) (string, bool)) []Violation {
	var out []Violation

	// U — uniqueness (modulo idempotent redo replay unless Strict).
	seen := map[string]int{}
	values := map[string]map[string]bool{}
	for _, ev := range c.applied {
		seen[ev.key]++
		if values[ev.key] == nil {
			values[ev.key] = map[string]bool{}
		}
		values[ev.key][ev.value] = true
	}
	// Report in sorted key order so violation lists are reproducible.
	dupKeys := make([]string, 0, len(seen))
	for key := range seen {
		dupKeys = append(dupKeys, key)
	}
	sort.Strings(dupKeys)
	for _, key := range dupKeys {
		n := seen[key]
		if n <= 1 {
			continue
		}
		if len(values[key]) > 1 {
			out = append(out, Violation{"uniqueness",
				fmt.Sprintf("update %q applied %d times with differing values", key, n)})
		} else if c.Strict {
			out = append(out, Violation{"uniqueness",
				fmt.Sprintf("update %q applied %d times (redo replay; strict mode)", key, n)})
		}
	}

	// O — per-session order: the subsequence of apply events belonging to
	// one session must have ascending issue indices.
	lastIdx := map[uint16]int{}
	for _, ev := range c.applied {
		u, ok := c.updates[ev.key]
		if !ok {
			continue // foreign traffic (e.g. prefill)
		}
		if prev, ok := lastIdx[u.Session]; ok && u.Index < prev {
			out = append(out, Violation{"order",
				fmt.Sprintf("session %d applied #%d (%q) after #%d", u.Session, u.Index, u.Key, prev)})
		}
		lastIdx[u.Session] = u.Index
	}

	// D — durability of completed updates in the final state.
	for _, u := range c.sorted() {
		if !u.Completed {
			continue
		}
		got, ok := lookup(u.Key)
		if !ok {
			out = append(out, Violation{"durability",
				fmt.Sprintf("completed update %q (session %d #%d) missing from recovered state",
					u.Key, u.Session, u.Index)})
			continue
		}
		if got != u.Value {
			out = append(out, Violation{"durability",
				fmt.Sprintf("completed update %q holds %q, want %q", u.Key, got, u.Value)})
		}
	}

	// Q — quiescence: every completed update has an apply event.
	for _, u := range c.sorted() {
		if u.Completed && seen[u.Key] == 0 {
			out = append(out, Violation{"quiescence",
				fmt.Sprintf("completed update %q never applied by the server", u.Key)})
		}
	}
	return out
}

// sorted returns updates in a deterministic order for stable reports.
func (c *Checker) sorted() []*Update {
	out := make([]*Update, 0, len(c.updates))
	for _, u := range c.updates {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Summary returns counts for reporting.
func (c *Checker) Summary() (issued, completed, applied int) {
	for _, u := range c.updates {
		issued++
		if u.Completed {
			completed++
		}
	}
	return issued, completed, len(c.applied)
}
