package trace

import (
	"bytes"
	"testing"

	"pmnet/internal/sim"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Bind(sim.NewEngine())
	tr.Emit(EvIssue, 1, 2, 3)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Records() != nil {
		t.Fatal("nil tracer must be inert")
	}
	var reg *Registry
	if reg.Snapshot() != nil || reg.Len() != 0 {
		t.Fatal("nil registry must be inert")
	}
}

func TestRingOverflowCountsDrops(t *testing.T) {
	tr := NewTracer(4)
	tr.Bind(sim.NewEngine())
	for i := 0; i < 10; i++ {
		tr.Emit(EvIssue, uint64(i), 0, 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	// The ring keeps the oldest records (head of the run), which is where a
	// debugging session starts reading.
	if got := tr.Records()[0].A; got != 0 {
		t.Fatalf("first record A = %d, want 0", got)
	}
}

func TestBindTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("second Bind must panic")
		}
	}()
	tr := NewTracer(1)
	tr.Bind(sim.NewEngine())
	tr.Bind(sim.NewEngine())
}

func TestEmitUsesVirtualClock(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer(8)
	tr.Bind(eng)
	eng.After(42*sim.Nanosecond, func() { tr.Emit(EvPersist, 7, 8, 9) })
	eng.RunUntil(1 * sim.Microsecond)
	recs := tr.Records()
	if len(recs) != 1 || recs[0].At != 42 {
		t.Fatalf("records = %+v, want one at t=42", recs)
	}
}

// sampleStream emits one record of every kind so the exporter's per-kind
// branches are all exercised.
func sampleStream() *Tracer {
	eng := sim.NewEngine()
	tr := NewTracer(64)
	tr.Bind(eng)
	at := sim.Time(0)
	emit := func(k Kind, a, b, c uint64) {
		at += 100
		eng.At(at, func() { tr.Emit(k, a, b, c) })
	}
	span := SpanID(3, 17)
	emit(EvIssue, span, 2, 1)
	emit(EvStackTX, 1, 5, 0)
	emit(EvSwitchFwd, 1000, 5, 0)
	emit(EvPipeline, 2000, 5, span)
	emit(EvPersist, 2000, 0xbeef, span)
	emit(EvPMNetAck, 2000, 0, span)
	emit(EvStackRX, 1, 6, 0)
	emit(EvServerApply, 3000, 0, span)
	emit(EvServerAck, 3000, 0, span)
	emit(EvResend, span, 1, 0)
	emit(EvDrop, 1000, 7, DropFull)
	emit(EvDrop, 1000, 8, DropRand)
	emit(EvDrop, 1000, 9, DropDead)
	emit(EvComplete, span, 1, 0)
	emit(EvFail, SpanID(3, 99), 3, 0)
	emit(GaugeLinkQueue, LinkID(1, 1000), 1500, 0)
	emit(GaugeLogLive, 2000, 12, 0)
	emit(GaugePMDirty, 2000, 4, 0)
	emit(GaugeInFlight, 3, 2, 0)
	eng.RunUntil(1 * sim.Millisecond)
	return tr
}

func TestChromeJSONDeterministic(t *testing.T) {
	a := sampleStream().ChromeJSON(nil)
	b := sampleStream().ChromeJSON(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("identical streams serialized differently")
	}
	for _, want := range []string{
		`"ph":"b"`, `"ph":"e"`, `"ph":"C"`, `"ph":"M"`, `"ph":"i"`,
		`"reason":"full"`, `"reason":"rand"`, `"reason":"dead"`,
		`"name":"pm-persist"`, `"ts":0.100`,
	} {
		if !bytes.Contains(a, []byte(want)) {
			t.Fatalf("trace missing %s:\n%s", want, a)
		}
	}
	// Metadata must lead in sorted pid order: 0 (requests) before node pids.
	if i, j := bytes.Index(a, []byte(`"pid":0,"tid":0,"args":{"name":"requests"}`)),
		bytes.Index(a, []byte(`"args":{"name":"node-3000"}`)); i < 0 || j < 0 || i > j {
		t.Fatalf("metadata order wrong (i=%d j=%d):\n%s", i, j, a)
	}
}

func TestSpanAndLinkPacking(t *testing.T) {
	if got := SpanID(0xabcd, 0x1234); got != 0xabcd00001234 {
		t.Fatalf("SpanID = %#x", got)
	}
	if got := LinkID(7, 9); got != 7<<32|9 {
		t.Fatalf("LinkID = %#x", got)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	var r Registry
	x := uint64(10)
	r.Add("z.last", func() uint64 { return 1 })
	r.Add("a.first", func() uint64 { return x })
	r.Add("m.mid", func() uint64 { return 3 })
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "a.first" || snap[1].Name != "m.mid" || snap[2].Name != "z.last" {
		t.Fatalf("snapshot order: %+v", snap)
	}
	if snap[0].Value != 10 {
		t.Fatalf("value = %d", snap[0].Value)
	}
	x = 99 // getters are lazy: a later snapshot sees the new value
	if got := r.Snapshot()[0].Value; got != 99 {
		t.Fatalf("lazy getter: got %d, want 99", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add must panic")
		}
	}()
	var r Registry
	r.Add("dup", func() uint64 { return 0 })
	r.Add("dup", func() uint64 { return 0 })
}

func TestEmitDoesNotAllocate(t *testing.T) {
	tr := NewTracer(1 << 12)
	tr.Bind(sim.NewEngine())
	n := testing.AllocsPerRun(1000, func() {
		tr.Emit(EvPersist, 1, 2, 3)
	})
	if n != 0 {
		t.Fatalf("Emit allocates %v per call, want 0", n)
	}
}
