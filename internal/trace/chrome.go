package trace

import (
	"bytes"
	"fmt"
	"sort"
)

// ChromeJSON serializes the recorded stream in the chrome://tracing (and
// Perfetto) JSON array format. nodeName maps a node id to its display name
// and may be nil (ids are rendered as "node-<id>").
//
// The output is a pure function of the recorded ring: timestamps come from
// the virtual clock and are formatted with integer math only (no float
// round-tripping), process metadata is emitted in sorted pid order, and
// events appear in emission order — so the bytes are identical for identical
// runs, regardless of host, GOMAXPROCS, or the race detector. The golden
// test and `make trace-smoke` hold us to that.
//
// Layout: request lifecycles are async spans ("b"/"e") under a synthetic
// "requests" process (pid 0, one tid per session); per-node stage events are
// thread-scoped instants under the node's pid; gauges are counter series
// ("C") attached to the owning node.
func (t *Tracer) ChromeJSON(nodeName func(id uint64) string) []byte {
	if nodeName == nil {
		nodeName = func(id uint64) string { return fmt.Sprintf("node-%d", id) }
	}
	recs := t.Records()

	// Collect the distinct pids first so process_name metadata can lead the
	// file in sorted order.
	pidSet := make(map[uint64]bool)
	for i := range recs {
		pidSet[pidOf(&recs[i])] = true
	}
	pids := make([]uint64, 0, len(pidSet))
	for pid := range pidSet {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	var buf bytes.Buffer
	buf.WriteString("[\n")
	first := true
	emit := func() *bytes.Buffer {
		if !first {
			buf.WriteString(",\n")
		}
		first = false
		return &buf
	}

	for _, pid := range pids {
		name := "requests"
		if pid != 0 {
			name = nodeName(pid)
		}
		fmt.Fprintf(emit(),
			`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`,
			pid, name)
	}

	for i := range recs {
		r := &recs[i]
		b := emit()
		switch r.Kind {
		case EvIssue:
			fmt.Fprintf(b, `{"name":"request","cat":"req","ph":"b","id":"0x%x","pid":0,"tid":%d,"ts":`,
				r.A, r.A>>32)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"frags":%d,"update":%d}}`, r.B, r.C)
		case EvComplete:
			fmt.Fprintf(b, `{"name":"request","cat":"req","ph":"e","id":"0x%x","pid":0,"tid":%d,"ts":`,
				r.A, r.A>>32)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"resends":%d,"cached":%d}}`, r.B, r.C)
		case EvFail:
			fmt.Fprintf(b, `{"name":"request","cat":"req","ph":"e","id":"0x%x","pid":0,"tid":%d,"ts":`,
				r.A, r.A>>32)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"failed":1,"retries":%d}}`, r.B)
		case EvResend:
			fmt.Fprintf(b, `{"name":"resend","cat":"req","ph":"i","s":"t","pid":0,"tid":%d,"ts":`,
				r.A>>32)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"seq":%d,"retry":%d}}`, r.A&0xffffffff, r.B)
		case EvStackTX, EvStackRX, EvSwitchFwd:
			fmt.Fprintf(b, `{"name":%q,"cat":"net","ph":"i","s":"t","pid":%d,"tid":0,"ts":`,
				r.Kind.String(), r.A)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"pkt":%d}}`, r.B)
		case EvPipeline:
			fmt.Fprintf(b, `{"name":"pipeline","cat":"dev","ph":"i","s":"t","pid":%d,"tid":0,"ts":`, r.A)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"pkt":%d,"span":"0x%x"}}`, r.B, r.C)
		case EvPersist:
			fmt.Fprintf(b, `{"name":"pm-persist","cat":"dev","ph":"i","s":"t","pid":%d,"tid":0,"ts":`, r.A)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"hash":%d,"span":"0x%x"}}`, r.B, r.C)
		case EvPMNetAck, EvServerApply, EvServerAck:
			fmt.Fprintf(b, `{"name":%q,"cat":"dev","ph":"i","s":"t","pid":%d,"tid":0,"ts":`,
				r.Kind.String(), r.A)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"span":"0x%x"}}`, r.C)
		case EvDrop:
			fmt.Fprintf(b, `{"name":"drop","cat":"net","ph":"i","s":"t","pid":%d,"tid":0,"ts":`, r.A)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"pkt":%d,"reason":%q}}`, r.B, dropReason(r.C))
		case GaugeLinkQueue:
			from, to := r.A>>32, r.A&0xffffffff
			fmt.Fprintf(b, `{"name":"link-queue to %s","ph":"C","pid":%d,"tid":0,"ts":`,
				nodeName(to), from)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"bytes":%d}}`, r.B)
		case GaugeLogLive:
			fmt.Fprintf(b, `{"name":"log-live","ph":"C","pid":%d,"tid":0,"ts":`, r.A)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"entries":%d}}`, r.B)
		case GaugePMDirty:
			fmt.Fprintf(b, `{"name":"pm-dirty","ph":"C","pid":%d,"tid":0,"ts":`, r.A)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"lines":%d}}`, r.B)
		case GaugeInFlight:
			fmt.Fprintf(b, `{"name":"in-flight s%d","ph":"C","pid":0,"tid":%d,"ts":`, r.A, r.A)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"value":%d}}`, r.B)
		default:
			fmt.Fprintf(b, `{"name":"kind-%d","ph":"i","s":"t","pid":0,"tid":0,"ts":`, r.Kind)
			writeTS(b, int64(r.At))
			fmt.Fprintf(b, `,"args":{"a":%d,"b":%d,"c":%d}}`, r.A, r.B, r.C)
		}
	}
	buf.WriteString("\n]\n")
	return buf.Bytes()
}

// writeTS renders a virtual-nanosecond stamp as chrome's microsecond ts with
// exact sub-microsecond digits. Integer math only: formatting floats would
// be the one nondeterminism hole in an otherwise virtual-clock pipeline.
func writeTS(b *bytes.Buffer, ns int64) {
	fmt.Fprintf(b, "%d.%03d", ns/1000, ns%1000)
}

func dropReason(c uint64) string {
	switch c {
	case DropDead:
		return "dead"
	case DropFull:
		return "full"
	case DropRand:
		return "rand"
	}
	return "?"
}

// pidOf assigns each record to its chrome process: request-scoped kinds live
// under the synthetic pid 0, node-scoped kinds under the node id in A (the
// link gauge keys by the egress node).
func pidOf(r *Record) uint64 {
	switch r.Kind {
	case EvIssue, EvComplete, EvFail, EvResend, GaugeInFlight:
		return 0
	case GaugeLinkQueue:
		return r.A >> 32
	}
	return r.A
}
