// Package trace is the deterministic observability layer of the simulator:
// per-request lifecycle spans (client issue → host stack → switch queue →
// device pipeline → PM persist → ACK / timeout-resend) and time-series
// gauges (link queue depth, log-table live entries, PM dirty lines,
// in-flight requests) recorded into a preallocated ring, plus a unified
// counter registry that snapshots every layer's activity counters under one
// sorted namespace.
//
// Every timestamp is read from the virtual clock, never the host clock, so
// a trace is a pure function of the run's Config: the serialized form is
// byte-identical across worker-pool sizes and under the race detector — the
// same discipline the experiment harness golden-tests for its tables.
//
// The off path is free: a nil *Tracer is a valid receiver for every Emit
// method and returns immediately, so instrumented hot paths stay zero-alloc
// and branch-cheap when tracing is disabled (pinned by the alloc tests next
// to the instrumented packages). The on path is also allocation-free in
// steady state: records land in a ring preallocated at Bind time, and once
// the ring fills, further records are counted as dropped rather than grown.
package trace

import (
	"pmnet/internal/sim"
)

// Kind classifies one trace record. The span kinds follow a request down the
// paper's latency breakdown (Figs. 8, 14, 16); the gauge kinds sample the
// occupancy series those breakdowns are explained by.
type Kind uint8

const (
	// EvIssue: a client session issued a request.
	// A = session<<32 | firstSeq, B = fragment count, C = 1 for updates.
	EvIssue Kind = iota
	// EvComplete: the request completed. A = session<<32|firstSeq,
	// B = resend count, C = 1 if the completion came from a cache.
	EvComplete
	// EvFail: the request failed terminally. A = session<<32|firstSeq,
	// B = retry count.
	EvFail
	// EvResend: a client timeout retransmission. A = session<<32|firstSeq,
	// B = retry number.
	EvResend
	// EvStackTX: a packet cleared a host's TX network stack.
	// A = host node id, B = packet id.
	EvStackTX
	// EvStackRX: a packet cleared a host's RX stack, about to hit the app.
	// A = host node id, B = packet id.
	EvStackRX
	// EvSwitchFwd: a plain switch forwarded a packet.
	// A = switch node id, B = packet id.
	EvSwitchFwd
	// EvPipeline: an update request entered a PMNet device's MAT pipeline.
	// A = device node id, B = packet id, C = session<<32|seq.
	EvPipeline
	// EvPersist: a log entry became durable in device PM — the moment the
	// paper's guarantee attaches. A = device node id, B = HashVal,
	// C = session<<32|seq.
	EvPersist
	// EvPMNetAck: the device emitted a PMNet-ACK. A = device node id,
	// C = session<<32|seq.
	EvPMNetAck
	// EvServerApply: the server applied an update (handler ran, watermark
	// persisted). A = server node id, C = session<<32|lastSeq.
	EvServerApply
	// EvServerAck: the server sent a server-ACK. A = server node id,
	// C = session<<32|seq.
	EvServerAck
	// EvDrop: the network dropped a packet. A = node id at the drop point,
	// B = packet id, C = drop reason (DropDead/DropFull/DropRand/DropBurst).
	EvDrop

	// GaugeLinkQueue: egress-queue occupancy of one link after a change.
	// A = from<<32|to (node ids), B = queued bytes.
	GaugeLinkQueue
	// GaugeLogLive: live entries in a device's PM log table.
	// A = device node id, B = live entries.
	GaugeLogLive
	// GaugePMDirty: dirty (unpersisted) lines in a device's PM.
	// A = device node id, B = dirty lines.
	GaugePMDirty
	// GaugeInFlight: outstanding requests of one client session.
	// A = session id, B = outstanding count.
	GaugeInFlight

	kindCount int = iota
)

// Drop reasons carried in EvDrop's C field.
const (
	DropDead  uint64 = iota + 1 // destination or next hop down/unroutable
	DropFull                    // drop-tail queue overflow
	DropRand                    // random loss
	DropBurst                   // impairment-model (Gilbert–Elliott) loss
)

// kindNames are the wire names used by the chrome exporter; indexed by Kind.
var kindNames = [kindCount]string{
	EvIssue:        "issue",
	EvComplete:     "complete",
	EvFail:         "fail",
	EvResend:       "resend",
	EvStackTX:      "stack-tx",
	EvStackRX:      "stack-rx",
	EvSwitchFwd:    "switch-fwd",
	EvPipeline:     "pipeline",
	EvPersist:      "pm-persist",
	EvPMNetAck:     "pmnet-ack",
	EvServerApply:  "server-apply",
	EvServerAck:    "server-ack",
	EvDrop:         "drop",
	GaugeLinkQueue: "link-queue",
	GaugeLogLive:   "log-live",
	GaugePMDirty:   "pm-dirty",
	GaugeInFlight:  "in-flight",
}

// String returns the exporter name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(?)"
}

// IsGauge reports whether the kind is a time-series gauge sample.
func (k Kind) IsGauge() bool { return k >= GaugeLinkQueue }

// Record is one ring entry: a virtual timestamp, a kind, and three generic
// arguments whose meaning the kind documents. Fixed-size and pointer-free so
// a ring of them is one allocation and no GC pressure.
type Record struct {
	At      sim.Time
	Kind    Kind
	A, B, C uint64
}

// DefaultCapacity is the ring size used when NewTracer is given none:
// 256 Ki records (~10 MB), comfortably a full harness cell.
const DefaultCapacity = 1 << 18

// Tracer records the observability stream of exactly one run. It is not
// safe for concurrent use — like every other piece of per-testbed state it
// lives on one virtual clock and one goroutine; distinct runs use distinct
// tracers. The zero *Tracer (nil) is a valid, disabled tracer: every method
// returns immediately.
type Tracer struct {
	eng  *sim.Engine
	ring []Record
	drop uint64
	cap  int
}

// NewTracer creates a tracer with the given ring capacity (records);
// capacity <= 0 selects DefaultCapacity. The ring itself is allocated when
// the tracer is bound to an engine, so an unused tracer costs nothing.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{cap: capacity}
}

// Bind attaches the tracer to the virtual clock it will timestamp from and
// preallocates the ring. A tracer observes exactly one run: binding twice
// panics rather than silently mixing two runs' records.
func (t *Tracer) Bind(eng *sim.Engine) {
	if t == nil {
		return
	}
	if t.eng != nil {
		panic("trace: tracer already bound (use one Tracer per run)")
	}
	t.eng = eng
	t.ring = make([]Record, 0, t.cap)
}

// Emit appends one record stamped with the current virtual time. When the
// ring is full the record is counted as dropped instead — recording must
// never allocate mid-run, or the on/off perf comparison would be meaningless.
func (t *Tracer) Emit(k Kind, a, b, c uint64) {
	if t == nil {
		return
	}
	if len(t.ring) == cap(t.ring) {
		t.drop++
		return
	}
	t.ring = append(t.ring, Record{At: t.eng.Now(), Kind: k, A: a, B: b, C: c})
}

// Records exposes the recorded ring in emission order.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	return t.ring
}

// Dropped returns how many records did not fit in the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.drop
}

// Len returns the number of recorded entries.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Capacity returns the configured ring capacity in records.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.cap
}

// AdoptMerged rebuilds t's ring as the ordered interleaving of the partition
// tracers' rings — the collection step of a sharded run, where each topology
// partition records into its own tracer (bound to its shard's engine) and
// the testbed folds them into the run's tracer afterwards.
//
// The merge key is (timestamp, partition index, emission order): each
// partition's ring is already time-sorted (its virtual clock is monotonic),
// and the partition list order is part of the topology, so the merged byte
// stream is identical in every shard configuration. Records beyond t's
// capacity are counted as dropped, exactly like Emit on a full ring; the
// parts' own drop counts carry over. Calling AdoptMerged again recomputes
// the same result, so re-running a testbed stays idempotent.
func (t *Tracer) AdoptMerged(parts []*Tracer) {
	if t == nil {
		return
	}
	if t.ring == nil {
		t.ring = make([]Record, 0, t.cap)
	}
	t.ring = t.ring[:0]
	t.drop = 0
	cursors := make([]int, len(parts))
	for _, p := range parts {
		t.drop += p.Dropped()
	}
	for {
		best := -1
		var bestAt sim.Time
		for i, p := range parts {
			if cursors[i] >= p.Len() {
				continue
			}
			at := p.ring[cursors[i]].At
			if best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best < 0 {
			return
		}
		rec := parts[best].ring[cursors[best]]
		cursors[best]++
		if len(t.ring) == cap(t.ring) {
			t.drop++
			continue
		}
		t.ring = append(t.ring, rec)
	}
}

// SpanID packs a session id and sequence number into the A/C argument form
// used by the request-lifecycle kinds.
func SpanID(session uint16, seq uint32) uint64 {
	return uint64(session)<<32 | uint64(seq)
}

// LinkID packs a directed link into GaugeLinkQueue's A argument.
func LinkID(from, to uint64) uint64 { return from<<32 | to&0xffffffff }
