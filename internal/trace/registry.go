package trace

import "sort"

// Registry is the unified counter namespace: every layer registers its
// activity counters under a dotted name ("net.delivered", "dev0.log.logged",
// "server.updates_applied", ...) as lazy getters, and Snapshot evaluates
// them all into one sorted list. It replaces ad-hoc spelunking through the
// scattered per-layer Stats structs when a run needs to be summarized —
// the structs stay (tests and calibration read them directly), but every
// consumer that wants "all counters of this run" goes through here.
type Registry struct {
	entries []counterEntry
}

type counterEntry struct {
	name string
	get  func() uint64
}

// Add registers one counter. Names must be unique; a duplicate is a wiring
// bug and panics at registration time, not at snapshot time.
func (r *Registry) Add(name string, get func() uint64) {
	for _, e := range r.entries {
		if e.name == name {
			panic("trace: duplicate counter " + name)
		}
	}
	r.entries = append(r.entries, counterEntry{name: name, get: get})
}

// Snapshot evaluates every counter and returns the values sorted by name —
// a deterministic serialization order regardless of registration order.
type Snapshot struct {
	Name  string
	Value uint64
}

// Snapshot reads all counters at the current moment.
func (r *Registry) Snapshot() []Snapshot {
	if r == nil {
		return nil
	}
	out := make([]Snapshot, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, Snapshot{Name: e.name, Value: e.get()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered counters.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.entries)
}
