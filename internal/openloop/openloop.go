// Package openloop multiplexes millions of logical user sessions onto one
// client transport session, driven by a deterministic open-loop arrival
// process (internal/arrival). Where the closed-loop workload.Driver issues
// the next request only after the previous one completes — and therefore
// self-throttles at saturation — this driver admits user actions at the
// configured offered load regardless of completions, which is what exposes
// the load-latency knee and the goodput ceiling.
//
// The scale trick is the active-session table: logical users exist only as
// an ID range, and per-user state is materialized lazily when an arrival
// picks a user, held in a map keyed by user ID while that user has actions
// in flight, and released back to a free list when the last one completes.
// Live state is O(active sessions) — bounded by MaxInFlight — never
// O(users), so "a million users" is a config number, not a memory budget.
//
// Determinism: every decision (arrival times, user picks, action mixes)
// draws from the driver's own seeded sim.Rand, the table is only ever
// looked up by key (never iterated), and one driver belongs to one client's
// engine — so runs are byte-reproducible and independent of -parallel and
// -shards (each client's driver lives on that client's engine partition,
// exactly like the closed-loop sharded path).
package openloop

import (
	"math"

	"pmnet/internal/arrival"
	"pmnet/internal/client"
	"pmnet/internal/protocol"
	"pmnet/internal/sim"
	"pmnet/internal/stats"
	"pmnet/internal/workload"
)

// Config parameterizes one driver (one client's slice of the offered load).
type Config struct {
	// Users is the number of logical users this driver owns, with IDs
	// [UserBase, UserBase+Users). Drivers own disjoint ranges so (user, seq)
	// pairs are globally unique without cross-driver coordination.
	Users    int
	UserBase int
	// MaxInFlight caps concurrently active actions; arrivals beyond it are
	// shed (counted, not queued — an open-loop generator must not convert
	// into a closed loop by backlogging). Default 128.
	MaxInFlight int
	// Skew > 0 concentrates user popularity on low IDs via an inverse
	// power-law transform (uid = Users·u^Skew for uniform u); 0 = uniform.
	Skew float64
	// Warmup..Duration bounds the run: arrivals stop at Duration, and only
	// actions arriving at or after Warmup are measured.
	Warmup   sim.Time
	Duration sim.Time
	// RetryDelay backs off lock-acquire retries (0 = 5 µs); MaxLockRetries
	// caps them per step (0 = 2000). Same semantics as workload.Driver.
	RetryDelay     sim.Time
	MaxLockRetries int
}

func (c *Config) defaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 128
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 5 * sim.Microsecond
	}
	if c.MaxLockRetries <= 0 {
		c.MaxLockRetries = 2000
	}
}

// Mix produces one user action: the request steps a logical user issues for
// a single site interaction (post a tweet, read a timeline, place an order).
// Implementations must draw randomness only from r and may share read-only
// state across drivers; seq is a driver-unique action counter for ID
// allocation. Steps are issued sequentially — step k+1 only after step k
// completes — so lock-bracketed transactions keep their ordering.
type Mix interface {
	Action(r *sim.Rand, uid int, seq uint64, ops []workload.Op) []workload.Op
}

// Stats counts driver activity. Measured* fields cover only arrivals inside
// the [Warmup, Duration) measurement window.
type Stats struct {
	Offered       uint64 // arrivals generated
	Admitted      uint64 // arrivals admitted below the in-flight cap
	Shed          uint64 // arrivals dropped at the cap
	Actions       uint64 // actions fully completed
	ActionsFailed uint64 // actions with at least one failed step
	Requests      uint64 // request completions across all steps
	Updates       uint64
	Bypasses      uint64
	LockOps       uint64
	LockRetries   uint64
	FailedReqs    uint64
	PeakActive    int    // high-water mark of concurrently active actions
	PeakSessions  int    // high-water mark of the active-session table
	MeasuredOff   uint64 // arrivals inside the measurement window
	MeasuredDone  uint64 // completed actions that arrived inside it
}

// Merge folds other into s (harness merges per-client stats in client-index
// order; peaks take the max since drivers run on disjoint engines).
func (s *Stats) Merge(other Stats) {
	s.Offered += other.Offered
	s.Admitted += other.Admitted
	s.Shed += other.Shed
	s.Actions += other.Actions
	s.ActionsFailed += other.ActionsFailed
	s.Requests += other.Requests
	s.Updates += other.Updates
	s.Bypasses += other.Bypasses
	s.LockOps += other.LockOps
	s.LockRetries += other.LockRetries
	s.FailedReqs += other.FailedReqs
	if other.PeakActive > s.PeakActive {
		s.PeakActive = other.PeakActive
	}
	if other.PeakSessions > s.PeakSessions {
		s.PeakSessions = other.PeakSessions
	}
	s.MeasuredOff += other.MeasuredOff
	s.MeasuredDone += other.MeasuredDone
}

// session is one active logical user: the table entry materialized while the
// user has actions in flight. Deliberately tiny — this struct times the
// active count IS the per-user memory story.
type session struct {
	uid      int
	inflight int
}

// action is one in-flight user action, pooled across the run.
type action struct {
	ops      []workload.Op
	idx      int
	arrived  sim.Time
	retries  int // lock retries on the current step
	failed   bool
	measured bool
	sess     *session
}

// Driver multiplexes one client transport session across this driver's user
// range. Single-threaded on its engine, like every model component.
type Driver struct {
	cfg  Config
	sess *client.Session
	eng  *sim.Engine
	mix  Mix
	arr  arrival.Source
	rand *sim.Rand
	run  *stats.Run
	res  *stats.Reservoir // optional exact-tail spot-check sample

	st       Stats
	active   map[int]*session // user ID → live session; lookup only, never ranged
	freeSess []*session
	freeAct  []*action
	inflight int
	seq      uint64
}

// New builds a driver. run receives one sample per measured completed action
// (latency = completion − arrival); res, when non-nil, receives the same
// samples for exact-tail spot checks.
func New(cfg Config, sess *client.Session, mix Mix, arr arrival.Source,
	r *sim.Rand, run *stats.Run, res *stats.Reservoir) *Driver {
	cfg.defaults()
	if cfg.Users <= 0 {
		panic("openloop: driver owns no users")
	}
	return &Driver{
		cfg:    cfg,
		sess:   sess,
		mix:    mix,
		arr:    arr,
		rand:   r,
		run:    run,
		res:    res,
		active: make(map[int]*session),
	}
}

// Start schedules the first arrival on eng. The run ends by quiescence:
// arrivals stop at Duration and the engine drains once the last in-flight
// action completes or times out.
func (d *Driver) Start(eng *sim.Engine) {
	d.eng = eng
	d.scheduleNext()
}

// Stats returns the driver counters. Read only after the engine has drained.
func (d *Driver) Stats() Stats { return d.st }

// ActiveSessions returns the current size of the active-session table.
func (d *Driver) ActiveSessions() int { return len(d.active) }

func (d *Driver) scheduleNext() {
	t := d.arr.Next()
	if t >= d.cfg.Duration {
		return
	}
	d.eng.At(t, d.onArrival)
}

func (d *Driver) onArrival() {
	d.scheduleNext()
	now := d.eng.Now()
	d.st.Offered++
	measured := now >= d.cfg.Warmup
	if measured {
		d.st.MeasuredOff++
	}
	if d.inflight >= d.cfg.MaxInFlight {
		d.st.Shed++
		return
	}
	d.st.Admitted++
	uid := d.pickUser()
	s := d.active[uid]
	if s == nil {
		s = d.getSession(uid)
		d.active[uid] = s
		if n := len(d.active); n > d.st.PeakSessions {
			d.st.PeakSessions = n
		}
	}
	s.inflight++
	d.inflight++
	if d.inflight > d.st.PeakActive {
		d.st.PeakActive = d.inflight
	}
	a := d.getAction()
	a.arrived = now
	a.measured = measured
	a.sess = s
	d.seq++
	a.ops = d.mix.Action(d.rand, uid, d.seq, a.ops[:0])
	d.step(a)
}

// pickUser draws this arrival's user from the driver's ID range.
func (d *Driver) pickUser() int {
	u := d.rand.Float64()
	if d.cfg.Skew > 0 {
		u = math.Pow(u, d.cfg.Skew)
	}
	uid := int(u * float64(d.cfg.Users))
	if uid >= d.cfg.Users {
		uid = d.cfg.Users - 1
	}
	return d.cfg.UserBase + uid
}

// step issues the current op of a, or finishes the action when none remain.
func (d *Driver) step(a *action) {
	if a.idx >= len(a.ops) {
		d.finish(a)
		return
	}
	a.retries = 0
	d.issue(a)
}

// issue plays one step with closed-loop semantics inside the action: locked
// responses retry with delay, failures are recorded but later steps still
// run (a failed step inside a lock bracket must not leak the lock).
func (d *Driver) issue(a *action) {
	op := a.ops[a.idx]
	handle := func(r client.Result) {
		if r.Err != nil {
			d.st.FailedReqs++
			a.failed = true
			a.idx++
			d.step(a)
			return
		}
		if op.Retry && r.Status == protocol.StatusLocked {
			if a.retries >= d.cfg.MaxLockRetries {
				d.st.FailedReqs++
				a.failed = true
				a.idx++
				d.step(a)
				return
			}
			a.retries++
			d.st.LockRetries++
			d.eng.After(d.cfg.RetryDelay, func() { d.issue(a) })
			return
		}
		d.st.Requests++
		a.idx++
		d.step(a)
	}
	switch {
	case op.Req.Op == protocol.OpLockAcquire || op.Req.Op == protocol.OpLockRelease:
		d.st.LockOps++
		d.st.Bypasses++
		d.sess.Bypass(op.Req, handle)
	case op.Update:
		d.st.Updates++
		d.sess.SendUpdate(op.Req, handle)
	default:
		d.st.Bypasses++
		d.sess.Bypass(op.Req, handle)
	}
}

func (d *Driver) finish(a *action) {
	now := d.eng.Now()
	if a.failed {
		d.st.ActionsFailed++
	} else {
		d.st.Actions++
		if a.measured {
			d.st.MeasuredDone++
			lat := now - a.arrived
			d.run.Record(lat, now)
			if d.res != nil {
				d.res.Record(lat)
			}
		}
	}
	s := a.sess
	s.inflight--
	if s.inflight == 0 {
		delete(d.active, s.uid)
		d.putSession(s)
	}
	d.inflight--
	d.putAction(a)
}

func (d *Driver) getSession(uid int) *session {
	if k := len(d.freeSess) - 1; k >= 0 {
		s := d.freeSess[k]
		d.freeSess = d.freeSess[:k]
		s.uid = uid
		return s
	}
	return &session{uid: uid}
}

func (d *Driver) putSession(s *session) {
	d.freeSess = append(d.freeSess, s)
}

func (d *Driver) getAction() *action {
	if k := len(d.freeAct) - 1; k >= 0 {
		a := d.freeAct[k]
		d.freeAct = d.freeAct[:k]
		return a
	}
	return &action{}
}

// putAction recycles a finished action, keeping its ops slice capacity.
func (d *Driver) putAction(a *action) {
	ops := a.ops[:0]
	*a = action{ops: ops}
	d.freeAct = append(d.freeAct, a)
}
