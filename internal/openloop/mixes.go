package openloop

import (
	"fmt"

	"pmnet/internal/protocol"
	"pmnet/internal/sim"
	"pmnet/internal/workload"
)

// The mixes mirror the closed-loop generators' request shapes (see
// internal/workload twitter.go / tpcc.go / ycsb.go) reparameterized by user:
// the closed-loop generators key state to a client ID, while here every
// action names the logical user an arrival picked. Mixes are stateless apart
// from read-only buffers, so one instance serves every driver of a run even
// when drivers execute on different shard workers.

func redisCmd(update bool, cmd string, args ...[]byte) workload.Op {
	return workload.Op{Req: protocol.TxnReq([]byte(cmd), args...), Update: update}
}

// TwitterMix emits retwis actions — post, follow, timeline read — for
// arbitrary user IDs.
type TwitterMix struct {
	Users       int     // global user population (targets of follows/reads)
	UpdateRatio float64 // fraction of actions that mutate
	PostLen     int
	TimelineLen int
	post        []byte
}

// NewTwitterMix completes the config with the retwis defaults.
func NewTwitterMix(users int, updateRatio float64, postLen int) *TwitterMix {
	if users <= 0 {
		users = 1000
	}
	if postLen <= 0 {
		postLen = 100
	}
	if updateRatio == 0 {
		updateRatio = 0.5
	}
	m := &TwitterMix{Users: users, UpdateRatio: updateRatio, PostLen: postLen,
		TimelineLen: 10, post: make([]byte, postLen)}
	for i := range m.post {
		m.post[i] = byte('t')
	}
	return m
}

// Action implements Mix.
func (m *TwitterMix) Action(r *sim.Rand, uid int, seq uint64, ops []workload.Op) []workload.Op {
	if r.Float64() < m.UpdateRatio {
		if r.Float64() < 0.7 {
			// Post: allocate a post id, store the tweet, push onto own and
			// global timelines. (uid, seq) is unique because drivers own
			// disjoint user ranges and seq is driver-monotone.
			pid := fmt.Sprintf("u%d-%d", uid, seq)
			return append(ops,
				redisCmd(true, "INCR", []byte("next_post_id")),
				redisCmd(true, "SET", []byte("post:"+pid), m.post),
				redisCmd(true, "LPUSH", []byte(fmt.Sprintf("timeline:%d", uid)), []byte(pid)),
				redisCmd(true, "LPUSH", []byte("timeline:global"), []byte(pid)),
			)
		}
		other := r.Intn(m.Users)
		return append(ops,
			redisCmd(true, "SADD", []byte(fmt.Sprintf("followers:%d", other)), []byte(fmt.Sprintf("%d", uid))),
			redisCmd(true, "SADD", []byte(fmt.Sprintf("following:%d", uid)), []byte(fmt.Sprintf("%d", other))),
		)
	}
	who := r.Intn(m.Users)
	return append(ops,
		redisCmd(false, "LRANGE", []byte(fmt.Sprintf("timeline:%d", who)),
			[]byte("0"), []byte(fmt.Sprintf("%d", m.TimelineLen-1))),
		redisCmd(false, "GET", []byte(fmt.Sprintf("post:c%d-1", who%1000))),
		redisCmd(false, "GET", []byte("post:latest")),
	)
}

// TPCCMix emits the TPCC subset — new-order (lock-bracketed), payment,
// order-status — with the user as the terminal.
type TPCCMix struct {
	Warehouses  int
	Districts   int
	Items       int
	UpdateRatio float64
	OrderLines  int
}

// NewTPCCMix completes the config with the closed-loop TPCC defaults.
func NewTPCCMix(updateRatio float64) *TPCCMix {
	if updateRatio == 0 {
		updateRatio = 0.88
	}
	return &TPCCMix{Warehouses: 4, Districts: 10, Items: 1000,
		UpdateRatio: updateRatio, OrderLines: 5}
}

func tpccKey(parts ...any) []byte {
	s := "tpcc"
	for _, p := range parts {
		s += fmt.Sprintf(":%v", p)
	}
	return []byte(s)
}

// Action implements Mix.
func (m *TPCCMix) Action(r *sim.Rand, uid int, seq uint64, ops []workload.Op) []workload.Op {
	w := r.Intn(m.Warehouses)
	d := r.Intn(m.Districts)
	if r.Float64() < m.UpdateRatio {
		if r.Float64() < 0.6 {
			// New-order: lock the stock row, read, write inside the critical
			// section, unlock — the §III-C pattern.
			item := r.Intn(m.Items)
			lock := tpccKey("stocklock", w, item)
			owner := []byte(fmt.Sprintf("user%d", uid))
			orderID := fmt.Sprintf("u%d-%d", uid, seq)
			ops = append(ops,
				workload.Op{Req: protocol.Request{Op: protocol.OpLockAcquire, Args: [][]byte{lock, owner}}, Retry: true},
				workload.Op{Req: protocol.GetReq(tpccKey("stock", w, item))},
				workload.Op{Req: protocol.PutReq(tpccKey("stock", w, item), []byte("qty-updated")), Update: true},
			)
			for l := 0; l < m.OrderLines; l++ {
				ops = append(ops, workload.Op{
					Req:    protocol.PutReq(tpccKey("orderline", w, d, orderID, l), []byte("line")),
					Update: true,
				})
			}
			return append(ops,
				workload.Op{Req: protocol.PutReq(tpccKey("order", w, d, orderID), []byte("placed")), Update: true},
				workload.Op{Req: protocol.Request{Op: protocol.OpLockRelease, Args: [][]byte{lock, owner}}},
			)
		}
		return append(ops,
			workload.Op{Req: protocol.PutReq(tpccKey("customer", w, d, uid, "balance"), []byte("bal")), Update: true},
			workload.Op{Req: protocol.PutReq(tpccKey("district", w, d, "ytd", uid), []byte("ytd")), Update: true},
		)
	}
	return append(ops,
		workload.Op{Req: protocol.GetReq(tpccKey("customer", w, d, uid, "balance"))},
		workload.Op{Req: protocol.GetReq(tpccKey("order", w, d, fmt.Sprintf("u%d-%d", uid, seq)))},
	)
}

// KVMix emits single-request YCSB-style actions over a shared keyspace, for
// open-loop runs against the plain KV workloads.
type KVMix struct {
	Keys        int
	UpdateRatio float64
	value       []byte
}

// NewKVMix completes the config with the YCSB defaults.
func NewKVMix(keys, valueSize int, updateRatio float64) *KVMix {
	if keys <= 0 {
		keys = 10000
	}
	if valueSize <= 0 {
		valueSize = 100
	}
	m := &KVMix{Keys: keys, UpdateRatio: updateRatio, value: make([]byte, valueSize)}
	for i := range m.value {
		m.value[i] = byte('a' + i%26)
	}
	return m
}

// Action implements Mix.
func (m *KVMix) Action(r *sim.Rand, uid int, seq uint64, ops []workload.Op) []workload.Op {
	key := workload.YCSBKey(r.Intn(m.Keys))
	if r.Float64() < m.UpdateRatio {
		return append(ops, workload.Op{Req: protocol.PutReq(key, m.value), Update: true})
	}
	return append(ops, workload.Op{Req: protocol.GetReq(key)})
}
