// Package benchfmt defines the machine-readable benchmark document shared by
// cmd/pmnetbench (writer) and cmd/benchdiff (reader): schema "pmnetbench/v1".
//
// The document splits cleanly into two kinds of fields. Virtual-time fields
// (events, requests, latency percentiles, counters) are deterministic per
// seed and byte-identical across -parallel and -shards settings; benchdiff
// treats a mismatch there as "not the same workload". Wall-clock-class fields
// (wall_ms, events_per_sec, allocs) vary run to run and machine to machine;
// they are what benchdiff actually compares.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"pmnet/internal/harness"
)

// Schema is the document identifier checked by readers.
const Schema = "pmnetbench/v1"

// Doc is one pmnetbench batch: the experiments it ran plus the batch-level
// perf trajectory.
type Doc struct {
	Schema   string `json:"schema"`
	Seed     uint64 `json:"seed"`
	Parallel int    `json:"parallel"`
	Shards   int    `json:"shards,omitempty"`
	// CPUs records the writing machine's logical core count — metadata for
	// reading wall-clock curves: a flat speedup curve on cpus=1 is the
	// worker budget working as designed, not a regression.
	CPUs        int          `json:"cpus,omitempty"`
	WallMs      float64      `json:"wall_ms"`
	Perf        Perf         `json:"perf"`
	Experiments []Experiment `json:"experiments"`
}

// Perf is the batch-level perf trajectory (BENCH artifacts). Events is
// deterministic per seed; the rates and allocation counts are
// wall-clock-class fields that vary run to run.
type Perf struct {
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// Experiment is one regenerated figure/table with per-cell timings.
type Experiment struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Columns []string           `json:"columns"`
	Rows    [][]string         `json:"rows"`
	Notes   []string           `json:"notes"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	WallMs  float64            `json:"wall_ms"`
	Cells   []Cell             `json:"cells"`
}

// Cell is one independent simulation within an experiment.
type Cell struct {
	Key       string  `json:"key"`
	WallMs    float64 `json:"wall_ms"`
	VirtualUs float64 `json:"virtual_us"`
	Events    uint64  `json:"events,omitempty"`
	Requests  uint64  `json:"requests,omitempty"`
	MeanUs    float64 `json:"mean_us,omitempty"`
	P50Us     float64 `json:"p50_us,omitempty"`
	P99Us     float64 `json:"p99_us,omitempty"`
	// Open-loop cells only (all omitempty so pre-open-loop documents and
	// baselines round-trip unchanged): offered arrivals, completions and
	// shed count in the measurement window, plus the deep-tail percentile.
	Offered uint64  `json:"offered,omitempty"`
	Shed    uint64  `json:"shed,omitempty"`
	P999Us  float64 `json:"p999_us,omitempty"`
	// Counters is the cell's unified metrics registry at quiescence —
	// every layer's counters under dotted names (encoding/json emits map
	// keys sorted, so the block is byte-stable across runs).
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// FromBatch converts a harness batch into the v1 document.
func FromBatch(b *harness.BatchResult) Doc {
	doc := Doc{
		Schema:   Schema,
		Seed:     b.Seed,
		Parallel: b.Parallel,
		Shards:   b.Shards,
		CPUs:     runtime.NumCPU(),
		WallMs:   float64(b.Wall.Microseconds()) / 1e3,
		Perf: Perf{
			Events:         b.Perf.Events,
			EventsPerSec:   b.Perf.EventsPerSec,
			Allocs:         b.Perf.Allocs,
			AllocsPerEvent: b.Perf.AllocsPerEvent,
		},
	}
	for _, er := range b.Experiments {
		je := Experiment{
			ID:      er.ID,
			Title:   er.Table.Title,
			Columns: er.Table.Columns,
			Rows:    er.Table.Rows,
			Notes:   er.Notes,
			Metrics: er.Metrics,
			WallMs:  float64(er.Wall.Microseconds()) / 1e3,
		}
		if je.Notes == nil {
			je.Notes = []string{}
		}
		for _, c := range er.Cells {
			jc := Cell{
				Key:       c.Key,
				WallMs:    float64(c.Wall.Microseconds()) / 1e3,
				VirtualUs: c.VirtualEnd.Micros(),
				Events:    c.Events,
			}
			if c.Run != nil && c.Run.Requests > 0 {
				jc.Requests = c.Run.Requests
				jc.MeanUs = c.Run.Hist.Mean().Micros()
				jc.P50Us = c.Run.Hist.Percentile(50).Micros()
				jc.P99Us = c.Run.Hist.Percentile(99).Micros()
			}
			if c.Open != nil {
				jc.Offered = c.Open.MeasuredOff
				jc.Shed = c.Open.Shed
				if c.Run != nil && c.Run.Requests > 0 {
					jc.P999Us = c.Run.Hist.Percentile(99.9).Micros()
				}
			}
			if len(c.Counters) > 0 {
				jc.Counters = make(map[string]uint64, len(c.Counters))
				for _, s := range c.Counters {
					jc.Counters[s.Name] = s.Value
				}
			}
			je.Cells = append(je.Cells, jc)
		}
		doc.Experiments = append(doc.Experiments, je)
	}
	return doc
}

// ReadFile loads and validates a v1 document.
func ReadFile(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, Schema)
	}
	return &doc, nil
}
