package analysis

import (
	"go/ast"
	"go/types"
)

// forbiddenTimeFuncs are the package-time entry points that read or wait on
// the wall clock. time.Duration arithmetic and formatting stay legal: the
// virtual clock (sim.Time) converts to time.Duration for display only.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// WallclockAnalyzer forbids wall-clock access in model code. The DES is
// bit-reproducible only because every timestamp comes from sim.Engine's
// virtual clock; a single time.Now() couples results to host scheduling.
var WallclockAnalyzer = &Analyzer{
	Name:  "wallclock",
	Doc:   "forbid time.Now/Sleep/After/... in model code; use the sim.Engine virtual clock",
	Scope: modelCode,
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				ident, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pass.Pkg.Info.Uses[ident].(*types.PkgName)
				if !ok || pn.Imported().Path() != "time" {
					return true
				}
				if forbiddenTimeFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"wall-clock time.%s is forbidden in model code; schedule on the sim.Engine virtual clock instead",
						sel.Sel.Name)
				}
				return true
			})
		}
	},
}
