package analysis

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 serialization of findings, for CI code-scanning upload. Only
// the subset of the schema the consumers actually read is emitted: tool
// driver + rules (one per analyzer), and one result per finding with a
// physical location. Output is deterministic: findings arrive sorted from
// RunPackage and the rule table follows registry order.

const sarifSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifRules is the rule table: every registered analyzer plus the
// "pmnetlint" pseudo-rule that directive-validation findings carry.
func sarifRules() ([]sarifRule, map[string]int) {
	rules := make([]sarifRule, 0, len(Analyzers)+1)
	index := make(map[string]int, len(Analyzers)+1)
	add := func(id, doc string) {
		index[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifText{Text: doc}})
	}
	add("pmnetlint", "suppression directives must be well-formed and name a known analyzer")
	for _, a := range Analyzers {
		add(a.Name, a.Doc)
	}
	return rules, index
}

// WriteSARIF emits findings as a SARIF 2.1.0 log. Finding filenames are
// used verbatim as artifact URIs — callers should pass module-root-relative,
// slash-separated paths so the log is stable across checkouts.
func WriteSARIF(w io.Writer, findings []Finding) error {
	rules, index := sarifRules()
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := index[f.Analyzer]
		if !ok {
			idx = 0 // unknown attribution falls back to the driver rule
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifText{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.Pos.Filename},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "pmnetlint", Rules: rules}},
			Results: results,
		}},
	}
	enc, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}
