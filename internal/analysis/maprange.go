package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MaprangeAnalyzer flags `for ... range` over map-typed values in the
// event-ordering packages (sim, netsim, dataplane, harness, server). Go
// randomises map iteration order per run, so any map range whose body
// schedules events, appends to a result slice, or picks "the first" match
// silently breaks bit-reproducibility.
//
// Two shapes are allowed without a directive:
//
//   - `for range m { ... }` — the body cannot see a key, so iteration order
//     cannot leak out.
//   - the canonical key-collection loop `for k := range m { keys =
//     append(keys, k) }` — the standard prelude to sorting the keys and
//     ranging the slice instead (ranging a sorted slice is not a map range
//     and is never flagged).
//
// Everything else needs either the sorted-keys rewrite or an explicit
// `//pmnetlint:ignore maprange <reason>` stating why order cannot matter
// (e.g. a pure min/max reduction).
var MaprangeAnalyzer = &Analyzer{
	Name:  "maprange",
	Doc:   "flag nondeterministic map iteration in event-ordering packages",
	Scope: eventOrdering,
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if rs.Key == nil || keyCollectionLoop(rs) {
					return true
				}
				pass.Reportf(rs.For,
					"map iteration order is nondeterministic; range over sorted keys or add //%s maprange <reason>",
					DirectivePrefix)
				return true
			})
		}
	},
}

// keyCollectionLoop recognises `for k := range m { keys = append(keys, k) }`.
func keyCollectionLoop(rs *ast.RangeStmt) bool {
	if rs.Value != nil {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	src, ok2 := call.Args[0].(*ast.Ident)
	arg, ok3 := call.Args[1].(*ast.Ident)
	return ok && ok2 && ok3 && dst.Name == src.Name && arg.Name == key.Name
}
