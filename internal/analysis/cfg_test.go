package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"testing"
)

// The CFG and dataflow engine are tested behaviorally: a miniature
// persist-order lattice (calls named write/persist/send, a boolean
// "write pending" fact) is run over function bodies covering each control
// shape the builder lowers. A send reached while a write may be pending is a
// violation; the fact at the synthetic exit block reports whether a write
// can escape the function unpersisted.

// pendingCheck parses body as the body of a function, builds its CFG, checks
// structural invariants, and runs the pending-write analysis. Violation
// lines are 1-based relative to the first line of body.
func pendingCheck(t *testing.T, body string) (violations []int, exitPending bool) {
	t.Helper()
	const header = "package p\n\nfunc f() {\n" // body starts on line 4
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", header+body+"\n}\n", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := buildCFG(file.Decls[0].(*ast.FuncDecl).Body)
	checkCFG(t, g)

	apply := func(b *block, pending bool, record func(line int)) bool {
		for _, n := range b.nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				c, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := c.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				switch id.Name {
				case "write":
					pending = true
				case "persist":
					pending = false
				case "send":
					if pending && record != nil {
						record(fset.Position(c.Pos()).Line - 3)
					}
				}
				return true
			})
		}
		return pending
	}

	in := forward(g, flowFuncs[bool]{
		entry: false,
		join:  func(a, b bool) bool { return a || b },
		equal: func(a, b bool) bool { return a == b },
		transfer: func(b *block, f bool) bool {
			return apply(b, f, nil)
		},
	})
	seen := make(map[int]bool)
	for _, b := range g.blocks {
		f, ok := in[b]
		if !ok {
			continue // unreachable
		}
		apply(b, f, func(line int) { seen[line] = true })
	}
	for l := range seen {
		violations = append(violations, l)
	}
	sort.Ints(violations)
	return violations, in[g.exit]
}

// checkCFG asserts structural invariants every built CFG must satisfy.
func checkCFG(t *testing.T, g *cfg) {
	t.Helper()
	known := make(map[*block]bool, len(g.blocks))
	for _, b := range g.blocks {
		known[b] = true
	}
	if !known[g.entry] || !known[g.exit] {
		t.Fatal("entry/exit not registered in blocks")
	}
	if len(g.exit.succs) != 0 {
		t.Fatalf("exit block has %d successors, want 0", len(g.exit.succs))
	}
	for _, b := range g.blocks {
		dup := make(map[*block]bool)
		for _, s := range b.succs {
			if !known[s] {
				t.Fatalf("block %d has successor outside the graph", b.index)
			}
			if dup[s] {
				t.Fatalf("block %d has duplicate successor %d", b.index, s.index)
			}
			dup[s] = true
		}
	}
}

func TestCFGDataflow(t *testing.T) {
	tests := []struct {
		name            string
		body            string
		wantViolations  []int
		wantExitPending bool
	}{
		{
			name: "straight line covered",
			body: "write()\npersist()\nsend()",
		},
		{
			name:            "straight line uncovered",
			body:            "write()\nsend()",
			wantViolations:  []int{2},
			wantExitPending: true,
		},
		{
			name: "if-else persists on both branches",
			body: "write()\nif c {\n\tpersist()\n} else {\n\tpersist()\n}\nsend()",
		},
		{
			name:            "if persists on one branch only",
			body:            "write()\nif c {\n\tpersist()\n}\nsend()",
			wantViolations:  []int{5},
			wantExitPending: true,
		},
		{
			name:            "else branch loses the persist",
			body:            "write()\nif c {\n\tpersist()\n} else {\n\t_ = c\n}\nsend()",
			wantViolations:  []int{7},
			wantExitPending: true,
		},
		{
			name:            "send inside loop after write",
			body:            "write()\nfor i := 0; i < n; i++ {\n\tsend()\n}",
			wantViolations:  []int{3},
			wantExitPending: true,
		},
		{
			name:            "persist inside loop may not execute",
			body:            "write()\nfor i := 0; i < n; i++ {\n\tpersist()\n}\nsend()",
			wantViolations:  []int{5},
			wantExitPending: true,
		},
		{
			name: "back edge: write on iteration k reaches send on k+1",
			body: "for i := 0; i < n; i++ {\n\tsend()\n\twrite()\n}\npersist()",
			// The send is clean on iteration 1 but pending flows around the
			// back edge; this is the case a single linear scan misses.
			wantViolations: []int{2},
		},
		{
			name: "loop then unconditional persist",
			body: "for i := 0; i < n; i++ {\n\twrite()\n}\npersist()\nsend()",
		},
		{
			name:            "range loop may iterate zero times",
			body:            "write()\nfor _, v := range xs {\n\t_ = v\n\tpersist()\n}\nsend()",
			wantViolations:  []int{6},
			wantExitPending: true,
		},
		{
			name:            "switch: one case misses the persist",
			body:            "write()\nswitch x {\ncase 1:\n\tpersist()\ncase 2:\n}\nsend()",
			wantViolations:  []int{7},
			wantExitPending: true,
		},
		{
			name: "switch with default covering all cases",
			body: "write()\nswitch x {\ncase 1:\n\tpersist()\ndefault:\n\tpersist()\n}\nsend()",
		},
		{
			name:            "switch without default: no-match path skips persist",
			body:            "write()\nswitch x {\ncase 1:\n\tpersist()\n}\nsend()",
			wantViolations:  []int{6},
			wantExitPending: true,
		},
		{
			name:            "fallthrough carries pending into next case",
			body:            "switch x {\ncase 1:\n\twrite()\n\tfallthrough\ncase 2:\n\tsend()\n}",
			wantViolations:  []int{6},
			wantExitPending: true,
		},
		{
			name:            "select: default path skips persist",
			body:            "write()\nselect {\ncase <-ch:\n\tpersist()\ndefault:\n}\nsend()",
			wantViolations:  []int{7},
			wantExitPending: true,
		},
		{
			name:            "early return skips the persist on the other path",
			body:            "write()\nif c {\n\tpersist()\n\treturn\n}\nsend()",
			wantViolations:  []int{6},
			wantExitPending: true,
		},
		{
			name: "persist before conditional return",
			body: "write()\npersist()\nif c {\n\treturn\n}\nsend()",
		},
		{
			name: "panic terminates the uncovered path",
			body: "write()\nif !c {\n\tpanic(\"bad\")\n}\npersist()\nsend()",
		},
		{
			name: "send after panic is unreachable",
			body: "write()\npanic(\"bad\")\nsend()",
		},
		{
			name: "goto jumps over the bare send",
			body: "write()\ngoto done\nsend()\ndone:\npersist()\nsend()",
		},
		{
			name:            "labeled break skips the persist",
			body:            "outer:\nfor {\n\twrite()\n\tfor {\n\t\tbreak outer\n\t}\n\tpersist()\n}\nsend()",
			wantViolations:  []int{9},
			wantExitPending: true,
		},
		{
			name:            "continue skips the persist",
			body:            "for i := 0; i < n; i++ {\n\twrite()\n\tif c {\n\t\tcontinue\n\t}\n\tpersist()\n}\nsend()",
			wantViolations:  []int{8},
			wantExitPending: true,
		},
		{
			name: "deferred persist runs after the send",
			body: "write()\ndefer persist()\nsend()",
			// The send still races the persist — but at function exit the
			// deferred call has covered the write.
			wantViolations: []int{3},
		},
		{
			name: "deferred send runs after the persist",
			body: "write()\ndefer send()\npersist()",
		},
		{
			name:            "deferred send with no persist",
			body:            "write()\ndefer send()",
			wantViolations:  []int{2},
			wantExitPending: true,
		},
		{
			name: "defers run LIFO: later persist covers earlier send",
			body: "write()\ndefer send()\ndefer persist()",
		},
		{
			name: "function literal is a separate unit",
			body: "write()\nf := func() {\n\tsend()\n}\npersist()\n_ = f",
		},
		{
			name:            "type switch: one case misses the persist",
			body:            "write()\nswitch v := y.(type) {\ncase int:\n\t_ = v\n\tpersist()\ncase string:\n\t_ = v\n}\nsend()",
			wantViolations:  []int{9},
			wantExitPending: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, exitPending := pendingCheck(t, tt.body)
			if !equalInts(got, tt.wantViolations) {
				t.Errorf("violations = %v, want %v", got, tt.wantViolations)
			}
			if exitPending != tt.wantExitPending {
				t.Errorf("exitPending = %v, want %v", exitPending, tt.wantExitPending)
			}
		})
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
