package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors golang.org/x/tools' analysistest: fixture
// files under testdata/src/<name> carry `// want "regexp"` comments on the
// lines where findings are expected; every finding must match a want on its
// line and every want must be matched by a finding.

var wantRE = regexp.MustCompile(`want "([^"]+)"`)

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := NewLoader(root, modPath)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return pkg
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var ws []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				ws = append(ws, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	if len(ws) == 0 {
		t.Fatal("fixture has no want annotations")
	}
	return ws
}

func checkFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	checkFixtureWith(t, []*Analyzer{a}, name)
}

// checkFixtureWith runs a specific analyzer set over a fixture; ignoreaudit
// needs company (its findings are defined by what the others suppress).
func checkFixtureWith(t *testing.T, as []*Analyzer, name string) {
	t.Helper()
	pkg := loadFixture(t, name)
	findings := RunPackage(pkg, as)
	wants := parseWants(t, pkg)
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %v", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.re)
		}
	}
}

func TestWallclockFixture(t *testing.T)    { checkFixture(t, WallclockAnalyzer, "wallclock") }
func TestRandsourceFixture(t *testing.T)   { checkFixture(t, RandsourceAnalyzer, "randsource") }
func TestMaprangeFixture(t *testing.T)     { checkFixture(t, MaprangeAnalyzer, "maprange") }
func TestPersistcoverFixture(t *testing.T) { checkFixture(t, PersistcoverAnalyzer, "persistcover") }
func TestSyncpoolFixture(t *testing.T)     { checkFixture(t, SyncpoolAnalyzer, "syncpool") }
func TestSharedstateFixture(t *testing.T)  { checkFixture(t, SharedstateAnalyzer, "sharedstate") }
func TestPersistorderFixture(t *testing.T) { checkFixture(t, PersistorderAnalyzer, "persistorder") }
func TestBoundedworkFixture(t *testing.T)  { checkFixture(t, BoundedworkAnalyzer, "boundedwork") }

func TestIgnoreauditFixture(t *testing.T) {
	checkFixtureWith(t, []*Analyzer{MaprangeAnalyzer, IgnoreauditAnalyzer}, "ignoreaudit")
}

// TestDirectiveValidation: a malformed or unknown-analyzer directive is
// itself a finding and does not suppress the finding beneath it.
func TestDirectiveValidation(t *testing.T) {
	pkg := loadFixture(t, "directives")
	findings := RunPackage(pkg, []*Analyzer{MaprangeAnalyzer})
	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s: %s", f.Analyzer, f.Message))
	}
	mustContain := []string{
		"pmnetlint: malformed directive",
		"pmnetlint: directive names unknown analyzer \"mapranje\"",
	}
	for _, want := range mustContain {
		found := false
		for _, g := range got {
			if strings.Contains(g, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing finding containing %q in %q", want, got)
		}
	}
	// Both map ranges must still be reported: broken directives suppress
	// nothing.
	nRange := 0
	for _, f := range findings {
		if f.Analyzer == "maprange" {
			nRange++
		}
	}
	if nRange != 2 {
		t.Errorf("got %d maprange findings, want 2 (broken directives must not suppress)", nRange)
	}
}

func TestScopes(t *testing.T) {
	const mod = "pmnet"
	cases := []struct {
		analyzer *Analyzer
		pkg      string
		want     bool
	}{
		{WallclockAnalyzer, "pmnet", true},
		{WallclockAnalyzer, "pmnet/internal/sim", true},
		{WallclockAnalyzer, "pmnet/internal/analysis", false},
		{WallclockAnalyzer, "pmnet/cmd/pmnetbench", false},
		{RandsourceAnalyzer, "pmnet/internal/workload", true},
		{RandsourceAnalyzer, "pmnet/examples/quickstart", false},
		{MaprangeAnalyzer, "pmnet/internal/sim", true},
		{MaprangeAnalyzer, "pmnet/internal/netsim", true},
		{MaprangeAnalyzer, "pmnet/internal/dataplane", true},
		{MaprangeAnalyzer, "pmnet/internal/harness", true},
		{MaprangeAnalyzer, "pmnet/internal/server", true},
		{MaprangeAnalyzer, "pmnet/internal/kv", false},
		{PersistcoverAnalyzer, "pmnet/internal/pmobj", true},
		{PersistcoverAnalyzer, "pmnet/internal/analysis", false},
		{PersistorderAnalyzer, "pmnet/internal/server", true},
		{PersistorderAnalyzer, "pmnet/internal/dataplane", true},
		{PersistorderAnalyzer, "pmnet/internal/pmem", false},
		{PersistorderAnalyzer, "pmnet/internal/pmobj", false},
		{PersistorderAnalyzer, "pmnet/internal/analysis/testdata/src/persistorder", true},
		{BoundedworkAnalyzer, "pmnet/internal/dataplane", true},
		{BoundedworkAnalyzer, "pmnet/internal/server", false},
		{BoundedworkAnalyzer, "pmnet/internal/sim", false},
		{BoundedworkAnalyzer, "pmnet/internal/analysis/testdata/src/boundedwork", true},
		{IgnoreauditAnalyzer, "pmnet/internal/server", true},
		{IgnoreauditAnalyzer, "pmnet/internal/analysis", true},
		{IgnoreauditAnalyzer, "pmnet/cmd/pmnetbench", true},
		{IgnoreauditAnalyzer, "pmnet/examples/quickstart", true},
		{SyncpoolAnalyzer, "pmnet/internal/sim", true},
		{SyncpoolAnalyzer, "pmnet/internal/netsim", true},
		{SyncpoolAnalyzer, "pmnet/internal/harness", true},
		{SyncpoolAnalyzer, "pmnet/internal/analysis", false},
		{SyncpoolAnalyzer, "pmnet/cmd/pmnetbench", false},
		{SharedstateAnalyzer, "pmnet/internal/sim", true},
		{SharedstateAnalyzer, "pmnet/internal/netsim", true},
		{SharedstateAnalyzer, "pmnet/internal/server", true},
		{SharedstateAnalyzer, "pmnet/internal/harness", false},
		{SharedstateAnalyzer, "pmnet/internal/sim/pdes", false},
		{SharedstateAnalyzer, "pmnet/internal/analysis", false},
		{SharedstateAnalyzer, "pmnet/cmd/pmnetsim", false},
	}
	for _, c := range cases {
		if got := c.analyzer.Scope(mod, c.pkg); got != c.want {
			t.Errorf("%s.Scope(%q) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}

// TestRepoIsClean is the in-tree equivalent of `pmnetlint ./...` exiting 0:
// the repository must satisfy its own invariants. A regression here means a
// change reintroduced wall-clock time, ambient randomness, unsorted map
// iteration, or an uncovered pmem write.
func TestRepoIsClean(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := NewLoader(root, modPath)
	pkgs, err := l.ModulePackages()
	if err != nil {
		t.Fatalf("ModulePackages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages found (%d); walker broken?", len(pkgs))
	}
	for _, pd := range pkgs {
		analyzers := ForPackage(modPath, pd.ImportPath)
		if len(analyzers) == 0 {
			continue
		}
		pkg, err := l.LoadDir(pd.Dir, pd.ImportPath)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", pd.ImportPath, err)
		}
		for _, f := range RunPackage(pkg, analyzers) {
			t.Errorf("%v", f)
		}
	}
}
