package analysis

// Intraprocedural control-flow graph construction. The CFG is the substrate
// for the path-sensitive analyzers (persistorder today; the MAT/IR stage
// checks of ROADMAP item 3 tomorrow): persistcover-style "does a barrier
// appear anywhere in the body" questions don't need one, but "does a barrier
// intervene on EVERY path between this write and that ACK" does.
//
// The builder covers the statement forms that occur in model code: blocks,
// if/else, for (all three clauses), range, switch, type switch, select,
// labeled break/continue, goto, return, and defer. Deferred calls are
// modeled as a dedicated block wired between every function exit and the
// synthetic exit block — the sound approximation for forward analyses: a
// deferred persist runs after every send in the body, so it can never make
// an ACK-before-persist path legal, but it does cover writes at return
// (persistcover's concern, not persistorder's).

import (
	"go/ast"
	"go/token"
)

// block is one basic block: a maximal sequence of straight-line AST nodes
// plus the successor edges control can take afterwards.
type block struct {
	index int
	nodes []ast.Node // statements/expressions in execution order
	succs []*block
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	blocks []*block
	entry  *block
	exit   *block // synthetic: every return/panic/fallthrough-off-the-end reaches it
}

type cfgBuilder struct {
	g    *cfg
	cur  *block // nil while the current point is unreachable (after return/branch)
	errs int

	// break/continue resolution: innermost-first stacks. label is "" for the
	// bare statement's target.
	breaks    []branchTarget
	continues []branchTarget

	labels map[string]*block // goto targets (and labeled-statement heads)
	gotos  []pendingGoto

	deferred []ast.Node // defer call expressions, source order
}

type branchTarget struct {
	label string
	dst   *block
}

type pendingGoto struct {
	from  *block
	label string
	pos   token.Pos
}

// buildCFG constructs the CFG of body. Function literals nested inside body
// are NOT traversed: each FuncLit is its own analyzable unit with its own
// CFG (its body runs at some unrelated time, so facts cannot flow into it
// linearly).
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}, labels: make(map[string]*block)}
	b.g.exit = b.newBlock() // index 0: exit
	b.cur = b.newBlock()
	b.g.entry = b.cur
	b.stmtList(body.List)

	// Resolve forward gotos.
	for _, pg := range b.gotos {
		if dst, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, dst)
		}
		// An unresolved label is a parse/type error upstream; nothing to do.
	}

	// Wire exits: if the body can fall off the end, that is a return.
	// Deferred calls run between every exit and the synthetic exit block.
	if b.cur != nil {
		b.edge(b.cur, b.g.exit)
	}
	if len(b.deferred) > 0 {
		deferBlk := b.newBlock()
		// Deferred calls execute LIFO.
		for i := len(b.deferred) - 1; i >= 0; i-- {
			deferBlk.nodes = append(deferBlk.nodes, b.deferred[i])
		}
		b.edge(deferBlk, b.g.exit)
		// Redirect every edge into exit through the defer block.
		for _, blk := range b.g.blocks {
			if blk == deferBlk {
				continue
			}
			for i, s := range blk.succs {
				if s == b.g.exit {
					blk.succs[i] = deferBlk
				}
			}
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *block) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// add appends a straight-line node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the name of an enclosing
// LabeledStmt directly wrapping this statement ("" if none).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	if b.cur == nil {
		// Unreachable code still gets blocks (a label can revive it).
		b.cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is a goto target: start a fresh block so jumps land
		// before the labeled statement.
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.labels[s.Label.Name] = head
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()

		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, after)
		}

		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after) // condition false
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			b.edge(post, head)
		}
		b.pushLoop(label, after, post)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		after := b.newBlock()
		b.edge(head, after) // range exhausted
		b.pushLoop(label, after, head)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, nil)

	case *ast.SelectStmt:
		// Every comm clause is a possible successor; select with no default
		// blocks, but for analysis purposes treating it like a switch over
		// clauses is the right over-approximation.
		b.switchBody(label, s.Body, func(cc *ast.CommClause) ast.Stmt { return cc.Comm })

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if dst := b.findTarget(b.breaks, s.Label); dst != nil {
				b.edge(b.cur, dst)
			}
			b.cur = nil
		case token.CONTINUE:
			if dst := b.findTarget(b.continues, s.Label); dst != nil {
				b.edge(b.cur, dst)
			}
			b.cur = nil
		case token.GOTO:
			if s.Label != nil {
				if dst, ok := b.labels[s.Label.Name]; ok {
					b.edge(b.cur, dst)
				} else {
					b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name, pos: s.Pos()})
				}
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by switchBody via clause ordering; the statement itself
			// carries no node.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.exit)
		b.cur = nil

	case *ast.DeferStmt:
		b.deferred = append(b.deferred, s.Call)

	case *ast.ExprStmt:
		b.add(s.X)
		if isTerminalCall(s.X) {
			// panic/os.Exit: control never reaches the next statement and
			// never returns normally, so the fact dies here rather than
			// flowing to the synthetic exit — a panicking path can't ACK,
			// so it shouldn't contribute to a callee's exit summary.
			b.cur = nil
		}

	case *ast.GoStmt:
		// The spawned function runs elsewhere; its arguments are evaluated
		// here. (sharedstate forbids go statements in model code anyway.)
		b.add(s.Call)

	default:
		// Assignments, declarations, inc/dec, send, empty: straight-line.
		b.add(s)
	}
}

// switchBody lowers the shared shape of switch / type switch / select. comm
// extracts the per-clause guard statement for select clauses (nil for
// switch, whose guards are expressions inside the CaseClause).
func (b *cfgBuilder) switchBody(label string, body *ast.BlockStmt, comm func(*ast.CommClause) ast.Stmt) {
	head := b.cur
	after := b.newBlock()
	// break inside a switch/select targets `after`; continue passes through
	// to any enclosing loop.
	b.breaks = append(b.breaks, branchTarget{label: "", dst: after})
	if label != "" {
		b.breaks = append(b.breaks, branchTarget{label: label, dst: after})
	}

	hasDefault := false
	var clauseBlocks []*block
	var clauseBodies [][]ast.Stmt
	for _, cs := range body.List {
		blk := b.newBlock()
		b.edge(head, blk)
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				blk.nodes = append(blk.nodes, e)
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauseBodies = append(clauseBodies, cs.Body)
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			}
			if comm != nil && cs.Comm != nil {
				blk.nodes = append(blk.nodes, cs.Comm)
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauseBodies = append(clauseBodies, cs.Body)
		}
	}
	if !hasDefault {
		b.edge(head, after) // no case matched
	}
	for i := range clauseBlocks {
		b.cur = clauseBlocks[i]
		stmts := clauseBodies[i]
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(stmts)
		if b.cur != nil {
			if fallsThrough && i+1 < len(clauseBlocks) {
				b.edge(b.cur, clauseBlocks[i+1])
			} else {
				b.edge(b.cur, after)
			}
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if label != "" {
		b.breaks = b.breaks[:len(b.breaks)-1]
	}
	b.cur = after
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *block) {
	b.breaks = append(b.breaks, branchTarget{label: "", dst: brk})
	b.continues = append(b.continues, branchTarget{label: "", dst: cont})
	if label != "" {
		b.breaks = append(b.breaks, branchTarget{label: label, dst: brk})
		b.continues = append(b.continues, branchTarget{label: label, dst: cont})
	}
}

func (b *cfgBuilder) popLoop() {
	// pushLoop pushed one or two entries onto each stack; pop until the
	// unlabeled entry (always pushed first) is gone.
	for len(b.breaks) > 0 {
		top := b.breaks[len(b.breaks)-1]
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		if top.label == "" {
			break
		}
	}
}

// findTarget resolves a break/continue label against a target stack,
// innermost first.
func (b *cfgBuilder) findTarget(stack []branchTarget, label *ast.Ident) *block {
	name := ""
	if label != nil {
		name = label.Name
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == name {
			return stack[i].dst
		}
	}
	return nil
}

// isTerminalCall reports whether expr is a call that never returns: panic(x)
// or os.Exit-shaped selector calls named Exit/Fatal*.
func isTerminalCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln":
			return true
		}
	}
	return false
}
