package analysis

// A small forward-dataflow engine over the CFG in cfg.go: classic worklist
// iteration to a fixed point. Analyses implement flowFuncs[F]; facts F must
// be treated as immutable values (transfer and join return fresh facts).

// flowFuncs defines one forward analysis over facts of type F.
type flowFuncs[F any] struct {
	// entry is the fact at the function entry block.
	entry F
	// join merges two facts at a control-flow merge point.
	join func(a, b F) F
	// equal reports whether two facts carry the same information; the
	// fixpoint iteration stops when every block's input is stable.
	equal func(a, b F) bool
	// transfer pushes a fact through one block's straight-line nodes.
	transfer func(b *block, in F) F
}

// forward computes, for every block, the fact holding at its entry. Facts
// for blocks never reached from the entry stay absent from the map —
// unreachable code constrains nothing.
func forward[F any](g *cfg, fn flowFuncs[F]) map[*block]F {
	in := make(map[*block]F, len(g.blocks))
	in[g.entry] = fn.entry

	// Deterministic worklist: process in block-index order, re-queue on
	// change. A simple boolean membership set keeps each block queued at
	// most once.
	work := []*block{g.entry}
	queued := make(map[*block]bool, len(g.blocks))
	queued[g.entry] = true

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		out := fn.transfer(b, in[b])
		for _, s := range b.succs {
			cur, ok := in[s]
			var next F
			if !ok {
				next = out
			} else {
				next = fn.join(cur, out)
			}
			if !ok || !fn.equal(cur, next) {
				in[s] = next
				if !queued[s] {
					work = append(work, s)
					queued[s] = true
				}
			}
		}
	}
	return in
}
