package analysis

// IgnoreauditAnalyzer keeps the suppression system honest: every
// //pmnetlint:ignore directive must still suppress a real diagnostic from
// the analyzer it names. Code moves; the directive that once justified a
// wall-clock read or a map range outlives the line it excused, and a stale
// ignore is worse than none — it documents an invariant violation that no
// longer exists and silently licenses the next one.
//
// Two findings:
//
//   - stale ignore: the named analyzer ran over this package and the
//     directive suppressed nothing — delete it (or, if the code regressed
//     around it, fix the code).
//   - out-of-scope ignore: the named analyzer does not audit this package
//     at all, so the directive can never suppress anything.
//
// The enforcement lives in RunPackage, which is the only place that knows
// which directives were consulted: this analyzer's Run is a no-op marker
// whose presence in the run set switches the audit on. ignoreaudit findings
// themselves cannot be suppressed — an ignore of the ignore-auditor would
// defeat the point (a directive naming ignoreaudit is always reported as
// stale).
var IgnoreauditAnalyzer = &Analyzer{
	Name:  "ignoreaudit",
	Doc:   "every //pmnetlint:ignore directive must still suppress a real diagnostic",
	Scope: func(modulePath, pkgPath string) bool { return true },
	Run:   func(*Pass) {}, // enforcement happens in RunPackage
}
