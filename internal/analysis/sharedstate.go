package analysis

import (
	"go/ast"
	"go/types"
)

// SharedstateAnalyzer forbids host-concurrency idioms — `go` statements and
// any use of sync / sync/atomic — in model code. The sharded scheduler
// (internal/sim/pdes) gives each partition its own single-threaded engine and
// moves every cross-partition interaction through the fabric's handoff
// queues, drained only at epoch barriers; that is the whole determinism
// argument (DESIGN.md §10.4). A goroutine or a mutex-guarded shared variable
// inside a model lets two partitions observe each other mid-epoch in host
// scheduling order, which shows up as traces that differ run to run only at
// -shards > 1 — the worst kind of bug to bisect. The two layers whose job IS
// host parallelism (the cell worker pool in internal/harness and the PDES
// scheduler itself) are exempt; everything else communicates by scheduling
// events.
var SharedstateAnalyzer = &Analyzer{
	Name: "sharedstate",
	Doc:  "forbid goroutines and sync/atomic in model code; cross-shard state moves through fabric handoff queues",
	Scope: func(modulePath, pkgPath string) bool {
		if !modelCode(modulePath, pkgPath) {
			return false
		}
		switch pkgPath {
		case modulePath + "/internal/harness", modulePath + "/internal/sim/pdes":
			return false
		}
		return true
	},
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(n.Pos(),
						"go statement in model code: shards are single-threaded engines; schedule an event or hand off through the fabric instead")
				case *ast.SelectorExpr:
					ident, ok := n.X.(*ast.Ident)
					if !ok {
						return true
					}
					pn, ok := pass.Pkg.Info.Uses[ident].(*types.PkgName)
					if !ok {
						return true
					}
					switch pn.Imported().Path() {
					case "sync", "sync/atomic":
						pass.Reportf(n.Pos(),
							"%s.%s in model code: shared mutable state across shards breaks epoch determinism; move the data through a fabric handoff queue", ident.Name, n.Sel.Name)
					}
				}
				return true
			})
		}
	},
}
