package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is a parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("pmnet/internal/sim")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module from source. Module
// imports resolve against the module tree on disk; everything else falls
// back to the standard library's source importer, so the loader needs no
// network, no GOPATH and no pre-built export data.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleRoot string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at moduleRoot with the
// given module path (the `module` line of go.mod).
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleRoot: moduleRoot,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer so packages under analysis can depend on
// other packages of the same module.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.ModuleRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/"))
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the non-test Go files in dir under the
// given import path. Results are cached by import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if excludedByBuildTags(src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// excludedByBuildTags reports whether a //go:build constraint above the
// package clause excludes the file from the default build. The analyzers
// audit the tagless build — every tag evaluates false — which keeps exactly
// one variant of tag-paired files (e.g. internal/raceflag's race/!race pair)
// in the type-checked package.
func excludedByBuildTags(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if expr, err := constraint.Parse(line); err == nil {
				return !expr.Eval(func(string) bool { return false })
			}
			continue
		}
		// package clause (or /* block */): constraints must precede it.
		break
	}
	return false
}

// PackageDir pairs a directory with its module import path.
type PackageDir struct {
	Dir        string
	ImportPath string
}

// ModulePackages enumerates every package directory of the module, in
// deterministic (lexical) order. testdata, vendor, hidden and VCS
// directories are skipped, as are directories without non-test Go files.
func (l *Loader) ModulePackages() ([]PackageDir, error) {
	var out []PackageDir
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, path)
		if err != nil {
			return err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		out = append(out, PackageDir{Dir: path, ImportPath: importPath})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}
