package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BoundedworkAnalyzer enforces the line-rate discipline on per-packet
// dataplane code: every loop's trip count must be statically tied to a
// constant, a parameter's length, or a table size. A real switch pipeline
// gives each packet a fixed number of stages and a fixed table budget
// (Packet Transactions, PAPERS.md; ROADMAP item 3's stage-budget precursor);
// a loop whose bound is "until this pointer chain ends" or "forever" is
// exactly the construct that cannot compile to such a pipeline — and in the
// simulator it is work the per-packet cost model cannot account for.
//
// Accepted bounds: constant expressions, len/cap of anything,
// Len/Cap/Size-style method calls, struct fields (table geometry), function
// parameters, and locals derived from only those. Ranging over a slice,
// array, map, or string is always bounded by the data; ranging over a
// channel or an iterator function is not.
var BoundedworkAnalyzer = &Analyzer{
	Name: "boundedwork",
	Doc:  "per-packet dataplane loops must have a constant, parameter-length, or table-size bound",
	Scope: func(modulePath, pkgPath string) bool {
		return fixtureCorpus(modulePath, pkgPath) ||
			pkgPath == modulePath+"/internal/dataplane"
	},
	Run: runBoundedwork,
}

func runBoundedwork(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			bw := &bwFunc{pass: pass, info: info,
				params:  make(map[*types.Var]bool),
				assigns: make(map[*types.Var][]ast.Expr),
				walking: make(map[*types.Var]bool),
			}
			bw.collect(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt:
					bw.checkFor(n)
				case *ast.RangeStmt:
					bw.checkRange(n)
				}
				return true
			})
		}
	}
}

// bwFunc holds the per-function environment: which objects are parameters
// (always bounded — the caller sized them) and what each local was assigned
// from.
type bwFunc struct {
	pass    *Pass
	info    *types.Info
	params  map[*types.Var]bool
	assigns map[*types.Var][]ast.Expr
	walking map[*types.Var]bool // cycle guard for derived-local chains
}

// collect indexes parameters (of the declaration and of any nested function
// literal — a literal's own loops are checked in the same walk) and every
// assignment reaching a local.
func (bw *bwFunc) collect(fd *ast.FuncDecl) {
	record := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				if v, ok := bw.info.Defs[name].(*types.Var); ok {
					bw.params[v] = true
				}
			}
		}
	}
	record(fd.Recv)
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncType:
			record(n.Params)
			record(n.Results)
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				// x op= y mutates x from its old value: self-referential,
				// which the cycle guard resolves to unbounded.
				for _, lhs := range n.Lhs {
					bw.recordAssign(lhs, lhs)
				}
			} else if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					bw.recordAssign(lhs, n.Rhs[i])
				}
			} else {
				// x, y := f(): a multi-value call; the call decides.
				for _, lhs := range n.Lhs {
					bw.recordAssign(lhs, n.Rhs[0])
				}
			}
		case *ast.IncDecStmt:
			// i++ / i--: an induction variable is not a bound, however
			// constant its initializer — poison it like an op-assign.
			bw.recordAssign(n.X, n.X)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					bw.recordAssign(name, n.Values[i])
				}
			}
		}
		return true
	})
}

func (bw *bwFunc) recordAssign(lhs ast.Expr, rhs ast.Expr) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	if v, ok := bw.info.ObjectOf(id).(*types.Var); ok {
		bw.assigns[v] = append(bw.assigns[v], rhs)
	}
}

func (bw *bwFunc) checkFor(s *ast.ForStmt) {
	if s.Cond == nil {
		bw.pass.Reportf(s.For,
			"unconditional loop in per-packet code: every dataplane loop needs a constant, parameter-length, or table-size bound (line-rate discipline)")
		return
	}
	if !bw.condBounded(s.Cond) {
		bw.pass.Reportf(s.For,
			"loop bound is not a constant, parameter length, or table size: per-packet work must be statically bounded (line-rate discipline)")
	}
}

func (bw *bwFunc) checkRange(s *ast.RangeStmt) {
	t := bw.info.TypeOf(s.X)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		bw.pass.Reportf(s.For,
			"range over a channel is unbounded per-packet work: drain a bounded batch instead (line-rate discipline)")
	case *types.Signature:
		bw.pass.Reportf(s.For,
			"range over an iterator function has no static bound: per-packet work must be statically bounded (line-rate discipline)")
	case *types.Basic:
		// for range n (integer): bounded iff n is.
		if u.Info()&types.IsInteger != 0 && !bw.bounded(s.X) {
			bw.pass.Reportf(s.For,
				"integer range bound is not a constant, parameter, or table size: per-packet work must be statically bounded (line-rate discipline)")
		}
	}
	// Slices, arrays, maps, strings: the data structure is the bound.
}

// condBounded reports whether a loop condition guarantees a statically
// accountable trip count: a comparison against a bounded expression, or a
// conjunction/disjunction built from such comparisons.
func (bw *bwFunc) condBounded(cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ, token.EQL:
			return bw.bounded(e.X) || bw.bounded(e.Y)
		case token.LAND:
			// One bounded conjunct bounds the loop.
			return bw.condBounded(e.X) || bw.condBounded(e.Y)
		case token.LOR:
			// The loop runs while either holds: both must be bounded.
			return bw.condBounded(e.X) && bw.condBounded(e.Y)
		}
	}
	return false
}

// bounded reports whether e's value is statically tied to a constant,
// parameter, length/capacity, or table size.
func (bw *bwFunc) bounded(e ast.Expr) bool {
	if tv, ok := bw.info.Types[e]; ok {
		if tv.Value != nil {
			return true // constant-folded by the type checker
		}
		// A bound is a count. Pointers (nil-terminated chases), booleans
		// (flag spins), channels: none of these name a quantity of work.
		b, isBasic := tv.Type.Underlying().(*types.Basic)
		if !isBasic || b.Info()&types.IsInteger == 0 {
			return false
		}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return bw.bounded(e.X)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.XOR:
			return bw.bounded(e.X)
		}
	case *ast.BinaryExpr:
		return bw.bounded(e.X) && bw.bounded(e.Y)
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "len" || fun.Name == "cap" {
				return true
			}
		case *ast.SelectorExpr:
			// Table-geometry accessors.
			switch fun.Sel.Name {
			case "Len", "Cap", "Size":
				return true
			}
		}
	case *ast.SelectorExpr:
		// A struct field read: table geometry / fixed configuration.
		return true
	case *ast.Ident:
		v, ok := bw.info.ObjectOf(e).(*types.Var)
		if !ok {
			return false
		}
		if bw.params[v] {
			return true
		}
		rhss := bw.assigns[v]
		if len(rhss) == 0 || bw.walking[v] {
			return false
		}
		bw.walking[v] = true
		ok = true
		for _, rhs := range rhss {
			if !bw.bounded(rhs) {
				ok = false
				break
			}
		}
		delete(bw.walking, v)
		return ok
	}
	return false
}
