// Package fixture exercises the maprange analyzer: in event-ordering
// packages, map iteration order must never leak into schedules or results.
package fixture

import "sort"

func badSum(m map[string]int, sink func(string)) {
	for k := range m { // want "map iteration order is nondeterministic"
		sink(k)
	}
}

func badKeyValue(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "map iteration order is nondeterministic"
		out = append(out, v)
	}
	return out
}

func badConditionalCollect(m map[int]bool) []int {
	var out []int
	// Not the canonical key-collection shape: the conditional append makes
	// the slice's contents depend on nothing, but its ORDER on iteration.
	for k := range m { // want "map iteration order is nondeterministic"
		if m[k] {
			out = append(out, k)
		}
	}
	return out
}

// okSorted is the canonical remediation: collect keys (allowed shape), sort
// them, and range the slice — slice iteration is never flagged.
func okSorted(m map[string]int, sink func(string, int)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sink(k, m[k])
	}
}

// okNoKey cannot observe iteration order: the body sees neither key nor
// value, so it runs len(m) identical times.
func okNoKey(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// okSlice: only map-typed range expressions are in scope.
func okSlice(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

func okIgnored(m map[uint32]int) uint32 {
	var maxKey uint32
	//pmnetlint:ignore maprange fixture: pure max reduction is order-independent
	for k := range m {
		if k > maxKey {
			maxKey = k
		}
	}
	return maxKey
}
