package fixture

import (
	"math" // a non-random math import is fine

	legacy "math/rand" //pmnetlint:ignore randsource fixture: legacy-stream comparison shim, directive coverage
)

func legacySample() float64 {
	return math.Floor(legacy.Float64())
}
