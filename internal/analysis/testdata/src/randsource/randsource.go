// Package fixture exercises the randsource analyzer: every stochastic model
// input must come from a seeded sim.Rand, never from ambient randomness.
package fixture

import (
	crand "crypto/rand" // want "crypto/rand"
	"math/rand"         // want "math/rand"
	rv2 "math/rand/v2"  // want "math/rand/v2"
)

func use() (int, int, byte) {
	var b [1]byte
	_, _ = crand.Read(b[:])
	return rand.Int(), rv2.IntN(10), b[0]
}
