// Package fixture exercises directive validation: a malformed or misnamed
// ignore directive must itself become a finding and must NOT suppress the
// finding it sits next to — a typo can never silently disable a check.
package fixture

func malformedNoReason(m map[int]int, sink func(int)) {
	//pmnetlint:ignore maprange
	for k := range m {
		sink(k)
	}
}

func unknownAnalyzer(m map[int]int, sink func(int)) {
	//pmnetlint:ignore mapranje sorted upstream
	for k := range m {
		sink(k)
	}
}
