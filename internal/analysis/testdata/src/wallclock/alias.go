package fixture

import wall "time"

// Renaming the import must not evade the analyzer: detection resolves the
// package object, not the identifier spelling.
func badAlias() wall.Time {
	return wall.Now() // want "time.Now is forbidden"
}
