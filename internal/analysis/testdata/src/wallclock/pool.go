package fixture

// pool.go exercises the wallclock analyzer inside the pooled hot-path shapes
// the event engine and packet path use: free-list getters, pre-bound
// callbacks, and recycle methods. A wall-clock read smuggled into any of
// these runs on every event, so the analyzer must see through the nesting.

import "time"

type poolNode struct {
	at  int64
	fn  func()
	gen uint64
}

type poolEngine struct {
	heap []*poolNode
	free []*poolNode
}

// get pops a recycled node; the allocation branch must not stamp wall time.
func (e *poolEngine) get() *poolNode {
	if k := len(e.free) - 1; k >= 0 {
		n := e.free[k]
		e.free = e.free[:k]
		return n
	}
	return &poolNode{at: time.Now().UnixNano()} // want "time.Now is forbidden"
}

// schedule binds the callback once at allocation — the pre-bound-closure
// pattern. The analyzer must descend into the function literal.
func (e *poolEngine) schedule() {
	n := e.get()
	n.fn = func() {
		start := time.Now()   // want "time.Now is forbidden"
		_ = time.Since(start) // want "time.Since is forbidden"
	}
	e.heap = append(e.heap, n)
}

// release recycles a node; pacing the free list off the host clock would tie
// pool occupancy (and thus object identity) to machine speed.
func (e *poolEngine) release(n *poolNode) {
	n.gen++
	n.fn = nil
	time.Sleep(time.Microsecond) // want "time.Sleep is forbidden"
	e.free = append(e.free, n)
}

// drain is an event loop over the pooled heap; deadline checks must come
// from the virtual clock, not a host timer.
func (e *poolEngine) drain() {
	deadline := time.After(time.Second) // want "time.After is forbidden"
	for len(e.heap) > 0 {
		select {
		case <-deadline:
			return
		default:
		}
		n := e.heap[len(e.heap)-1]
		e.heap = e.heap[:len(e.heap)-1]
		if n.fn != nil {
			n.fn()
		}
		e.release(n)
	}
}

// okPooledVirtual is the sanctioned shape: timestamps are plain integers fed
// in by the caller (the virtual clock), durations only formatted for display.
func (e *poolEngine) okPooledVirtual(nowVirtual int64) time.Duration {
	n := e.get()
	n.at = nowVirtual
	return time.Duration(n.at) * time.Nanosecond
}
