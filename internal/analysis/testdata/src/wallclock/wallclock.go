// Package fixture exercises the wallclock analyzer: model code must take
// every timestamp from the sim.Engine virtual clock, never the host's.
package fixture

import "time"

func badNow() time.Time {
	return time.Now() // want "time.Now is forbidden"
}

func badWaits() {
	time.Sleep(time.Millisecond) // want "time.Sleep is forbidden"
	<-time.After(time.Second)    // want "time.After is forbidden"
	t := time.NewTimer(time.Second) // want "time.NewTimer is forbidden"
	t.Stop()
	k := time.NewTicker(time.Second) // want "time.NewTicker is forbidden"
	k.Stop()
}

func badTick() <-chan time.Time {
	return time.Tick(time.Minute) // want "time.Tick is forbidden"
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since is forbidden"
}

// okDurations: the virtual clock renders through time.Duration for display
// only; duration arithmetic and constants must stay legal.
func okDurations(ns int64) time.Duration {
	return time.Duration(ns) * time.Nanosecond
}

func okIgnored() time.Time {
	//pmnetlint:ignore wallclock fixture: harness-boundary timeout guard, not model time
	return time.Now()
}
