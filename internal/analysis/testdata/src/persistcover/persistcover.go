// Package fixture exercises the persistcover analyzer: a pmem write with no
// persist barrier before return is the missing-clwb bug that breaks crash
// durability.
package fixture

import "pmnet/internal/pmem"

func badWrite(d *pmem.Device, p []byte) error {
	return d.WriteAt(p, 0) // want "never persisted"
}

type wrapped struct {
	dev *pmem.Device
}

// Writes through a struct field resolve to the same Device method.
func (w wrapped) badFieldWrite(p []byte) {
	_ = w.dev.WriteAt(p, 0) // want "never persisted"
}

func okWritePersist(d *pmem.Device, p []byte) error {
	if err := d.WriteAt(p, 0); err != nil {
		return err
	}
	return d.Persist(0, len(p))
}

func okWritePersistAll(d *pmem.Device, p []byte) {
	_ = d.WriteAt(p, 64)
	d.PersistAll()
}

// okLoopThenBarrier: one barrier covering a batch of writes satisfies the
// intraprocedural check.
func okLoopThenBarrier(d *pmem.Device, chunks [][]byte) {
	off := 0
	for _, c := range chunks {
		_ = d.WriteAt(c, off)
		off += len(c)
	}
	_ = d.Persist(0, off)
}

func okReadOnly(d *pmem.Device, p []byte) error {
	return d.ReadAt(p, 0)
}

// okDelegated documents the write-many-persist-once helper pattern: the
// caller owns the barrier, and the directive records that contract.
func okDelegated(d *pmem.Device, p []byte) error {
	//pmnetlint:ignore persistcover fixture: barrier delegated to caller for write batching
	return d.WriteAt(p, 128)
}
