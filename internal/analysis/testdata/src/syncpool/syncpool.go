// Package fixture exercises the syncpool analyzer: model code recycles hot
// objects through per-owner free lists, never sync.Pool, whose GC-driven and
// cross-goroutine reuse couples object identity to host scheduling.
package fixture

import "sync"

// badVar: declaring a pool is already a violation — it will be used.
var badVar sync.Pool // want "sync.Pool is forbidden"

type node struct{ next *node }

// badField: embedding a pool inside a model structure.
type badEngine struct {
	pool sync.Pool // want "sync.Pool is forbidden"
}

func badLiteral() *node {
	p := &sync.Pool{New: func() any { return new(node) }} // want "sync.Pool is forbidden"
	return p.Get().(*node)
}

func badParam(p *sync.Pool) { // want "sync.Pool is forbidden"
	p.Put(new(node))
}

// okFreeList is the sanctioned shape: a slice-backed free list owned by one
// component, pushed and popped only on the virtual-clock goroutine.
type okFreeList struct {
	free []*node
}

func (l *okFreeList) get() *node {
	if k := len(l.free) - 1; k >= 0 {
		n := l.free[k]
		l.free = l.free[:k]
		return n
	}
	return new(node)
}

func (l *okFreeList) put(n *node) { l.free = append(l.free, n) }

// okOtherSync: the rest of package sync stays legal — the parallel cell
// runner coordinates workers with WaitGroup and Mutex.
func okOtherSync() {
	var wg sync.WaitGroup
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		mu.Lock()
		mu.Unlock()
		wg.Done()
	}()
	wg.Wait()
}

func okIgnored() any {
	//pmnetlint:ignore syncpool fixture: demonstrating a suppressed finding
	var p sync.Pool
	return p.Get()
}
