// Package fixture exercises the ignoreaudit analyzer. The fixture is run
// with maprange + ignoreaudit: a directive that suppresses a live maprange
// finding survives; one whose finding has rotted away, or that names an
// analyzer outside the run set, is itself reported.
package fixture

var table = map[string]int{"a": 1, "b": 2}

// okUsed: the directive suppresses a real maprange finding, so ignoreaudit
// stays quiet about it.
func okUsed() int {
	max := 0
	//pmnetlint:ignore maprange fixture: pure max reduction, any order yields the same result
	for _, v := range table {
		if v > max {
			max = v
		}
	}
	return max
}

// staleDirective: the map range this once excused was rewritten into a
// plain counted loop, and the directive was left behind to rot.
func staleDirective() int {
	n := 0
	//pmnetlint:ignore maprange fixture: leftover from a rewritten loop // want "stale ignore"
	for i := 0; i < 3; i++ {
		n += i
	}
	return n
}

// outOfScope: wallclock is not part of this run set, so the directive can
// never suppress anything here.
func outOfScope() int {
	//pmnetlint:ignore wallclock fixture: copy-pasted from another package // want "out-of-scope ignore"
	return 42
}

// trailingUsed: a same-line directive also counts as used.
func trailingUsed() int {
	n := 0
	for k, v := range table { //pmnetlint:ignore maprange fixture: commutative sum over keys and values
		n += len(k) + v
	}
	return n
}

// selfIgnore: suppressing the auditor is always reported — the directive
// can never be "used" because audit findings bypass suppression.
func selfIgnore() int {
	//pmnetlint:ignore ignoreaudit fixture: trying to silence the auditor // want "stale ignore"
	return 7
}
