// Package fixture exercises the persistorder analyzer: on every control-flow
// path from a pmem write to an ACK/response send, a persist barrier must
// intervene (durable-before-ACK, PAPER §IV-B). The bad cases are the crash
// windows the paper's design closes: an ACK on the wire while the data it
// acknowledges is still in a volatile buffer.
package fixture

import (
	"pmnet/internal/netsim"
	"pmnet/internal/pmem"
	"pmnet/internal/pmobj"
)

// --- straight-line cases -------------------------------------------------

func okWritePersistSend(d *pmem.Device, h *netsim.Host, p []byte, pkt *netsim.Packet) {
	_ = d.WriteAt(p, 0)
	_ = d.Persist(0, len(p))
	h.Send(pkt)
}

func badSendBeforePersist(d *pmem.Device, h *netsim.Host, p []byte, pkt *netsim.Packet) {
	_ = d.WriteAt(p, 0)
	h.Send(pkt) // want "not yet persisted"
	_ = d.Persist(0, len(p))
}

// --- path sensitivity: the acceptance-criteria case ----------------------

// badBranchLosesPersist is the seeded bug from the issue: the persist exists
// but one branch skips it. persistcover is blind to this (a barrier appears
// in the body); only the CFG analysis sees the uncovered path.
func badBranchLosesPersist(d *pmem.Device, h *netsim.Host, p []byte, pkt *netsim.Packet, urgent bool) {
	_ = d.WriteAt(p, 0)
	if !urgent {
		_ = d.Persist(0, len(p))
	}
	h.Send(pkt) // want "not yet persisted"
}

func okBothBranchesPersist(d *pmem.Device, h *netsim.Host, p []byte, pkt *netsim.Packet, batch bool) {
	_ = d.WriteAt(p, 0)
	if batch {
		d.PersistAll()
	} else {
		_ = d.Persist(0, len(p))
	}
	h.Send(pkt)
}

func badSendInsideLoop(d *pmem.Device, nw *netsim.Network, p []byte, pkts []*netsim.Packet, from netsim.NodeID) {
	_ = d.WriteAt(p, 0)
	for _, pkt := range pkts {
		nw.Transmit(pkt, from) // want "not yet persisted"
	}
	d.PersistAll()
}

// okPersistThenFanOut: the barrier precedes the whole replication fan-out.
func okPersistThenFanOut(d *pmem.Device, nw *netsim.Network, p []byte, pkts []*netsim.Packet, from netsim.NodeID) {
	_ = d.WriteAt(p, 0)
	_ = d.Persist(0, len(p))
	for _, pkt := range pkts {
		nw.TransmitAfter(0, pkt, from)
	}
}

// --- pmobj transactions as write/barrier pairs ---------------------------

func okTxCommitThenAck(a *pmobj.Arena, h *netsim.Host, pkt *netsim.Packet) {
	tx := a.Begin()
	tx.WriteU64(64, 1)
	tx.Commit()
	h.Send(pkt)
}

func badTxAckBeforeCommit(a *pmobj.Arena, h *netsim.Host, pkt *netsim.Packet) {
	tx := a.Begin()
	tx.WriteU64(64, 1)
	h.Send(pkt) // want "not yet persisted"
	tx.Commit()
}

// okArenaUpdate: Update runs the transaction to commit before returning.
func okArenaUpdate(a *pmobj.Arena, h *netsim.Host, pkt *netsim.Packet) {
	_ = a.Update(func(tx *pmobj.Tx) error {
		tx.WriteU64(64, 1)
		return nil
	})
	h.Send(pkt)
}

// --- interprocedural: facts flow through direct callees ------------------

func sendAck(h *netsim.Host, pkt *netsim.Packet) {
	h.Send(pkt)
}

func persistThenAck(d *pmem.Device, h *netsim.Host, pkt *netsim.Packet) {
	d.PersistAll()
	h.Send(pkt)
}

func stageWrite(d *pmem.Device, p []byte) {
	_ = d.WriteAt(p, 0)
}

// badAckViaHelper: the send is hidden one call deep; the violation is
// reported at the call site that triggers it.
func badAckViaHelper(d *pmem.Device, h *netsim.Host, p []byte, pkt *netsim.Packet) {
	_ = d.WriteAt(p, 0)
	sendAck(h, pkt) // want "call to sendAck sends"
}

// okAckViaPersistingHelper: the callee persists on every path before its
// send, clearing the caller's pending write too.
func okAckViaPersistingHelper(d *pmem.Device, h *netsim.Host, p []byte, pkt *netsim.Packet) {
	_ = d.WriteAt(p, 0)
	persistThenAck(d, h, pkt)
}

// badWriteViaHelper: the pending write is inherited from the callee.
func badWriteViaHelper(d *pmem.Device, h *netsim.Host, p []byte, pkt *netsim.Packet) {
	stageWrite(d, p)
	h.Send(pkt) // want "not yet persisted"
}

func okWriteViaHelperThenPersist(d *pmem.Device, h *netsim.Host, p []byte, pkt *netsim.Packet) {
	stageWrite(d, p)
	d.PersistAll()
	h.Send(pkt)
}

// --- defer and function literals -----------------------------------------

// badDeferredPersist: the deferred barrier runs only at function exit,
// after the send has already left.
func badDeferredPersist(d *pmem.Device, h *netsim.Host, p []byte, pkt *netsim.Packet) {
	_ = d.WriteAt(p, 0)
	defer d.PersistAll()
	h.Send(pkt) // want "not yet persisted"
}

// okClosureIsSeparate: the closure body runs at an unrelated virtual time
// (e.g. a CPU-completion callback), so the enclosing write does not flow
// into it — and its own send is clean in isolation.
func okClosureIsSeparate(d *pmem.Device, h *netsim.Host, p []byte, pkt *netsim.Packet) func() {
	_ = d.WriteAt(p, 0)
	done := func() {
		h.Send(pkt)
	}
	d.PersistAll()
	return done
}

// badClosureOwnWindow: the closure itself writes then sends — it is analyzed
// as an independent unit and caught on its own.
func badClosureOwnWindow(d *pmem.Device, h *netsim.Host, p []byte, pkt *netsim.Packet) func() {
	return func() {
		_ = d.WriteAt(p, 0)
		h.Send(pkt) // want "not yet persisted"
	}
}
