// Fixture for the sharedstate analyzer: host-concurrency idioms that would
// let two PDES shards observe each other mid-epoch.
package sharedstate

import (
	"sort"
	"sync"
	"sync/atomic"
)

// A mutex-guarded shared counter: classic cross-shard shared memory.
var (
	mu      sync.Mutex    // want "sync.Mutex in model code"
	applied int
	seq     atomic.Uint64 // want "atomic.Uint64 in model code"
)

func recordApply() {
	mu.Lock()
	applied++
	mu.Unlock()
}

func nextSeq() uint64 {
	return seq.Add(1)
}

// Fanning work out to goroutines inside a model: the results arrive in host
// scheduling order.
func deliverAll(fns []func()) {
	var wg sync.WaitGroup // want "sync.WaitGroup in model code"
	for _, fn := range fns {
		wg.Add(1)
		go func(f func()) { // want "go statement in model code"
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// A bare goroutine used as a "background" poller.
func watch(stop chan struct{}, poll func()) {
	go func() { // want "go statement in model code"
		for {
			select {
			case <-stop:
				return
			default:
				poll()
			}
		}
	}()
}

// atomic.AddUint64 on a plain field: same shared-memory idiom, older API.
var delivered uint64

func bump() {
	atomic.AddUint64(&delivered, 1) // want "shared mutable state across shards"
}

// Deterministic single-threaded code passes: plain fields, sorted iteration,
// no goroutines.
func ok(xs []int) int {
	sort.Ints(xs)
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// A suppressed finding still needs a directive naming the analyzer.
var once sync.Once //pmnetlint:ignore sharedstate init-order shim retained for a legacy example
