// Package fixture exercises the boundedwork analyzer: per-packet dataplane
// loops must have a trip count statically tied to a constant, a parameter
// length, or a table size — the line-rate discipline a hardware pipeline
// imposes (Packet Transactions; ROADMAP item 3).
package fixture

type table struct {
	entries int
	slots   []uint64
}

func (t *table) Size() int { return t.entries }

type node struct {
	next *node
	key  uint64
}

// --- bounded loops -------------------------------------------------------

func okConstantBound(pkt []byte) int {
	sum := 0
	for i := 0; i < 16; i++ {
		sum += int(pkt[i%len(pkt)])
	}
	return sum
}

func okParamBound(pkt []byte, n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}

func okLenBound(pkt []byte) int {
	sum := 0
	for i := 0; i < len(pkt); i++ {
		sum += int(pkt[i])
	}
	return sum
}

func okTableFieldBound(t *table) int {
	sum := 0
	for i := 0; i < t.entries; i++ {
		sum += i
	}
	return sum
}

func okTableMethodBound(t *table) int {
	sum := 0
	for i := 0; i < t.Size(); i++ {
		sum += i
	}
	return sum
}

func okDerivedLocalBound(pkt []byte) int {
	half := len(pkt) / 2
	sum := 0
	for i := 0; i < half; i++ {
		sum += int(pkt[i])
	}
	return sum
}

func okRangeSlice(t *table) uint64 {
	var acc uint64
	for _, s := range t.slots {
		acc ^= s
	}
	return acc
}

func okRangeMap(m map[uint64]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func okCompoundCond(pkt []byte, stop bool) int {
	i := 0
	for i < len(pkt) && !stop {
		i++
	}
	return i
}

// --- unbounded loops -----------------------------------------------------

// badUnconditional is the canonical per-packet spin: no pipeline stage
// budget can express it.
func badUnconditional(pkt []byte) {
	for { // want "unconditional loop"
		if len(pkt) == 0 {
			return
		}
	}
}

// badPointerChase walks a linked structure until nil — the trip count is a
// property of runtime state, not of any table geometry.
func badPointerChase(head *node, key uint64) *node {
	for n := head; n != nil; n = n.next { // want "not a constant, parameter length, or table size"
		if n.key == key {
			return n
		}
	}
	return nil
}

// badLocalFromCall: the bound came from an arbitrary call, not from a
// length, constant, or parameter.
func lookupDepth() int { return 1 << 20 }

func badLocalFromCall(pkt []byte) int {
	depth := lookupDepth()
	sum := 0
	for i := 0; i < depth; i++ { // want "not a constant, parameter length, or table size"
		sum += i
	}
	return sum
}

// badBoolSpin: a bare flag condition gives no trip count at all.
func badBoolSpin(busy bool) {
	for busy { // want "not a constant, parameter length, or table size"
		busy = false
	}
}

// badRangeChannel: draining a channel is unbounded per-packet work.
func badRangeChannel(ch chan uint64) uint64 {
	var acc uint64
	for v := range ch { // want "range over a channel"
		acc ^= v
	}
	return acc
}

// badDisjunctHalfBounded: an || loop keeps running while EITHER side holds,
// so one unbounded disjunct poisons the whole condition.
func badDisjunctHalfBounded(pkt []byte, busy bool) int {
	i := 0
	for i < len(pkt) || busy { // want "not a constant, parameter length, or table size"
		i++
	}
	return i
}

// okJustified: a reasoned directive records why the walk is actually
// bounded (capacity-limited structure), mirroring the dataplane LRU sweep.
func okJustified(head *node) int {
	n := 0
	//pmnetlint:ignore boundedwork fixture: walk is capped by the structure's fixed capacity
	for el := head; el != nil; el = el.next {
		n++
	}
	return n
}

// Loops inside function literals are held to the same budget.
func badInsideClosure(pkt []byte) func() {
	return func() {
		for { // want "unconditional loop"
			if len(pkt) == 0 {
				return
			}
		}
	}
}
