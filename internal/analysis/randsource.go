package analysis

import "strconv"

// forbiddenRandImports are randomness sources whose streams are either
// non-reproducible (crypto/rand) or unstable across Go releases and
// goroutine interleavings (math/rand, math/rand/v2). Model code must draw
// every stochastic input from a seeded sim.Rand.
var forbiddenRandImports = map[string]string{
	"math/rand":    "its global stream is shared and its algorithms shift across Go releases",
	"math/rand/v2": "its stream is not guaranteed stable across Go releases",
	"crypto/rand":  "it is non-deterministic by design",
}

// RandsourceAnalyzer forbids importing ambient randomness in model code.
var RandsourceAnalyzer = &Analyzer{
	Name:  "randsource",
	Doc:   "forbid math/rand and crypto/rand imports in model code; use a seeded sim.Rand",
	Scope: modelCode,
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if why, bad := forbiddenRandImports[path]; bad {
					pass.Reportf(imp.Pos(),
						"import of %q is forbidden in model code (%s); use a seeded sim.Rand", path, why)
				}
			}
		}
	},
}
