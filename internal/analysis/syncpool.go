package analysis

import (
	"go/ast"
	"go/types"
)

// SyncpoolAnalyzer forbids sync.Pool in model code. The hot paths recycle
// objects through per-owner free lists (per-engine nodes, per-network
// packets, per-host crossings...), which are deterministic because exactly
// one component pushes and pops them on the single-threaded virtual clock.
// A sync.Pool hands objects to whichever goroutine asks first — and clears
// itself on GC — so object identity (and any state that leaks through an
// incompletely reset object) would depend on host scheduling and memory
// pressure, silently breaking bit-reproducibility.
var SyncpoolAnalyzer = &Analyzer{
	Name:  "syncpool",
	Doc:   "forbid sync.Pool in model code; recycle through per-owner free lists",
	Scope: modelCode,
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				ident, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pass.Pkg.Info.Uses[ident].(*types.PkgName)
				if !ok || pn.Imported().Path() != "sync" {
					return true
				}
				if sel.Sel.Name == "Pool" {
					pass.Reportf(sel.Pos(),
						"sync.Pool is forbidden in model code (GC-cleared, cross-goroutine object reuse breaks determinism); use a per-owner free list")
				}
				return true
			})
		}
	},
}
