package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// PersistorderAnalyzer enforces PMNet's headline guarantee — data is durable
// *before* the acknowledgement leaves the device (PAPER §IV-B, Figure 3
// step 6') — as a static property of server/dataplane handler code: on every
// control-flow path from a pmem write (pmem.Device.WriteAt, or a buffered
// pmobj transaction write) to an ACK/response send (netsim.Host.Send,
// netsim.Network.Transmit), a persist barrier (Device.Persist/PersistAll, or
// pmobj Tx.Commit) must intervene.
//
// persistcover asks the coarse question "does this function persist at all";
// persistorder asks the ordering question on the CFG: a function that
// persists on one branch but ACKs with the write still volatile on another
// is exactly the crash window that breaks the guarantee, and it passes
// persistcover.
//
// The analysis is a forward may-analysis over the function's CFG (cfg.go /
// dataflow.go), with facts propagated through direct same-package callees:
// each callee gets a summary — does it send while the caller's writes could
// still be pending, does it clear pending writes on every path, does it
// leave writes of its own unpersisted — computed by running the same
// dataflow over the callee's CFG (summaries are memoized; cycles fall back
// to a neutral summary). Function literals are analyzed as independent
// units: their bodies run at an unrelated virtual time (CPU completions,
// timer callbacks), so facts cannot flow into them linearly.
var PersistorderAnalyzer = &Analyzer{
	Name: "persistorder",
	Doc:  "on every path from a pmem write to an ACK/response send, a persist barrier must intervene",
	Scope: func(modulePath, pkgPath string) bool {
		if fixtureCorpus(modulePath, pkgPath) {
			return true
		}
		switch pkgPath {
		case modulePath + "/internal/server", modulePath + "/internal/dataplane":
			return true
		}
		return false
	},
	Run: runPersistorder,
}

// poEffect classifies what one call does to the persistence state.
type poEffect uint8

const (
	poNone    poEffect = iota
	poWrite            // volatile pmem write (or buffered tx write)
	poBarrier          // persist barrier: pending writes become durable
	poSend             // packet leaves toward the client/server
	poCallee           // same-package callee: consult its summary
)

// poSummary is the one-level-deep interprocedural summary of a callee.
type poSummary struct {
	sendsWhileCallerPending bool // may send before any barrier clears caller state
	clearsCaller            bool // every exit path passed a barrier
	leavesPending           bool // may return with its own writes unpersisted
}

// poFact is the dataflow fact: the set of writes (by position) that may be
// unpersisted at this program point, plus — in summary mode — whether the
// caller's pending writes may still be uncovered.
type poFact struct {
	pending map[token.Pos]bool
	caller  bool
}

func (f poFact) withWrite(pos token.Pos) poFact {
	p := make(map[token.Pos]bool, len(f.pending)+1)
	for k := range f.pending {
		p[k] = true
	}
	p[pos] = true
	return poFact{pending: p, caller: f.caller}
}

func (f poFact) cleared() poFact { return poFact{} }

func poJoin(a, b poFact) poFact {
	if len(b.pending) == 0 && !b.caller {
		return poFact{pending: a.pending, caller: a.caller}
	}
	if len(a.pending) == 0 && !a.caller {
		return poFact{pending: b.pending, caller: b.caller}
	}
	p := make(map[token.Pos]bool, len(a.pending)+len(b.pending))
	for k := range a.pending {
		p[k] = true
	}
	for k := range b.pending {
		p[k] = true
	}
	return poFact{pending: p, caller: a.caller || b.caller}
}

func poEqual(a, b poFact) bool {
	if a.caller != b.caller || len(a.pending) != len(b.pending) {
		return false
	}
	for k := range a.pending {
		if !b.pending[k] {
			return false
		}
	}
	return true
}

// persistorder runs per package: build the FuncDecl index, then analyze
// every declared function body and every function literal as a root.
func runPersistorder(pass *Pass) {
	pa := &poAnalysis{
		pass:       pass,
		decls:      make(map[*types.Func]*ast.FuncDecl),
		summaries:  make(map[*types.Func]*poSummary),
		inProgress: make(map[*types.Func]bool),
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				pa.decls[obj] = fd
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pa.analyze(fd.Body, poFact{}, true)
		}
		// Function literals, wherever they nest.
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				pa.analyze(fl.Body, poFact{}, true)
			}
			return true
		})
	}
}

type poAnalysis struct {
	pass       *Pass
	decls      map[*types.Func]*ast.FuncDecl
	summaries  map[*types.Func]*poSummary
	inProgress map[*types.Func]bool
}

// analyze runs the dataflow over one body. With report=true, violations are
// reported via the pass; the returned summary describes the body for use at
// call sites (entry.caller seeds summary mode).
func (pa *poAnalysis) analyze(body *ast.BlockStmt, entry poFact, report bool) *poSummary {
	g := buildCFG(body)
	sum := &poSummary{}
	in := forward(g, flowFuncs[poFact]{
		entry: entry,
		join:  poJoin,
		equal: poEqual,
		transfer: func(b *block, f poFact) poFact {
			return pa.transfer(b, f, nil, sum)
		},
	})
	// Reporting pass: re-run each reachable block's transfer with its final
	// input fact, this time emitting diagnostics.
	if report {
		for _, b := range g.blocks {
			f, ok := in[b]
			if !ok {
				continue
			}
			pa.transfer(b, f, pa.report, sum)
		}
	}
	exit, reached := in[g.exit]
	if reached {
		sum.clearsCaller = !exit.caller
		sum.leavesPending = len(exit.pending) > 0
	} else {
		// Exit unreachable (infinite loop / always panics): nothing escapes.
		sum.clearsCaller = true
	}
	return sum
}

// report emits one finding for a send reached with writes pending.
func (pa *poAnalysis) report(call *ast.CallExpr, f poFact, via string) {
	lines := make([]int, 0, len(f.pending))
	for pos := range f.pending {
		lines = append(lines, pa.pass.Pkg.Fset.Position(pos).Line)
	}
	sort.Ints(lines)
	var where string
	switch {
	case len(lines) == 1:
		where = fmt.Sprintf("the pmem write at line %d is", lines[0])
	case len(lines) > 1:
		parts := make([]string, len(lines))
		for i, l := range lines {
			parts[i] = fmt.Sprintf("%d", l)
		}
		where = fmt.Sprintf("pmem writes at lines %s are", strings.Join(parts, ", "))
	default: // caller-pending only: summary mode, reported at the real root
		return
	}
	pa.pass.Reportf(call.Pos(),
		"%s while %s not yet persisted: a Persist/PersistAll (or tx Commit) must intervene on every path from write to send (durable-before-ACK, PAPER §IV-B)",
		via, where)
}

// transfer pushes a fact through one block. reportFn, when non-nil, receives
// every send performed with writes pending.
func (pa *poAnalysis) transfer(b *block, f poFact, reportFn func(*ast.CallExpr, poFact, string), sum *poSummary) poFact {
	for _, n := range b.nodes {
		inspectCalls(n, func(call *ast.CallExpr) {
			effect, callee := pa.classify(call)
			switch effect {
			case poWrite:
				f = f.withWrite(call.Pos())
			case poBarrier:
				f = f.cleared()
			case poSend:
				if f.caller {
					sum.sendsWhileCallerPending = true
				}
				if reportFn != nil && len(f.pending) > 0 {
					reportFn(call, f, "ACK/response is sent")
				}
			case poCallee:
				s := pa.summaryOf(callee)
				if s.sendsWhileCallerPending {
					if f.caller {
						sum.sendsWhileCallerPending = true
					}
					if reportFn != nil && len(f.pending) > 0 {
						reportFn(call, f, fmt.Sprintf("call to %s sends an ACK/response", callee.Name()))
					}
				}
				if s.clearsCaller {
					f = f.cleared()
				}
				if s.leavesPending {
					f = f.withWrite(call.Pos())
				}
			}
		})
	}
	return f
}

// summaryOf computes (and memoizes) a callee's summary by running the same
// dataflow over its body with caller-pending seeded at entry. Recursion —
// direct or mutual — falls back to the neutral summary.
func (pa *poAnalysis) summaryOf(fn *types.Func) *poSummary {
	if s, ok := pa.summaries[fn]; ok {
		return s
	}
	if pa.inProgress[fn] {
		return &poSummary{}
	}
	fd := pa.decls[fn]
	if fd == nil {
		return &poSummary{}
	}
	pa.inProgress[fn] = true
	s := pa.analyze(fd.Body, poFact{caller: true}, false)
	delete(pa.inProgress, fn)
	pa.summaries[fn] = s
	return s
}

// classify maps one call to its persistence effect. For poCallee the
// resolved *types.Func is returned as well.
func (pa *poAnalysis) classify(call *ast.CallExpr) (poEffect, *types.Func) {
	fn := calleeFunc(pa.pass.Pkg.Info, call)
	if fn == nil {
		return poNone, nil
	}
	if pkgBase, recv := methodRecv(fn); recv != "" {
		switch {
		case pkgBase == "pmem" && recv == "Device":
			switch fn.Name() {
			case "WriteAt":
				return poWrite, nil
			case "Persist", "PersistAll":
				return poBarrier, nil
			}
		case pkgBase == "pmobj" && recv == "Tx":
			switch fn.Name() {
			case "WriteU64", "WriteBytes", "SetRoot", "Alloc", "Free":
				return poWrite, nil
			case "Commit", "Abort":
				return poBarrier, nil
			}
		case pkgBase == "pmobj" && recv == "Arena":
			if fn.Name() == "Update" { // runs the tx and commits
				return poBarrier, nil
			}
		case pkgBase == "netsim" && recv == "Host":
			if fn.Name() == "Send" {
				return poSend, nil
			}
		case pkgBase == "netsim" && recv == "Network":
			switch fn.Name() {
			case "Transmit", "TransmitAfter":
				return poSend, nil
			}
		}
	}
	// Same-package callee with a known body: summary-based propagation.
	if fn.Pkg() == pa.pass.Pkg.Types && pa.decls[fn] != nil {
		return poCallee, fn
	}
	return poNone, nil
}

// calleeFunc resolves the *types.Func a call invokes (nil for calls of
// function-typed values, builtins, and type conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// methodRecv returns the defining package's base name and the receiver type
// name of a method ("" for plain functions).
func methodRecv(fn *types.Func) (pkgBase, recvType string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return path.Base(named.Obj().Pkg().Path()), named.Obj().Name()
}

// inspectCalls visits every call expression under n in pre-order, without
// descending into function literals (each FuncLit is its own analysis root).
func inspectCalls(n ast.Node, f func(*ast.CallExpr)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := x.(*ast.CallExpr); ok {
			f(c)
		}
		return true
	})
}
