package analysis

import (
	"go/ast"
	"go/types"
	"path"
)

// PersistcoverAnalyzer flags functions that write to a pmem.Device but can
// reach a return without any persist barrier: the classic missing-clwb bug
// that silently breaks crash durability (PAPER §V-A — data is durable only
// once a Persist covers it).
//
// The check is intraprocedural and conservative: a function that calls
// Device.WriteAt must also call Device.Persist or Device.PersistAll
// somewhere in its own body. Helpers that intentionally delegate the
// barrier to their caller (write-many-then-persist-once batching) must say
// so with `//pmnetlint:ignore persistcover <reason>` on the write, which
// doubles as documentation of the durability contract.
var PersistcoverAnalyzer = &Analyzer{
	Name:  "persistcover",
	Doc:   "flag pmem writes with no persist barrier before return",
	Scope: modelCode,
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				var writes []*ast.CallExpr
				persisted := false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch deviceMethod(pass.Pkg.Info, call) {
					case "WriteAt":
						writes = append(writes, call)
					case "Persist", "PersistAll":
						persisted = true
					}
					return true
				})
				if persisted {
					continue
				}
				for _, w := range writes {
					pass.Reportf(w.Pos(),
						"pmem write is never persisted: no Persist/PersistAll on any path out of %s; data is not durable until a barrier covers it",
						fd.Name.Name)
				}
			}
		}
	},
}

// deviceMethod returns the method name if call invokes a method of the
// persistent-memory Device type (any package named "pmem", so the fixture
// corpus can carry its own miniature device), else "".
func deviceMethod(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Name() != "Device" || obj.Pkg() == nil || path.Base(obj.Pkg().Path()) != "pmem" {
		return ""
	}
	return fn.Name()
}
