package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Committed-baseline mode: a baseline file records the findings a codebase
// has accepted (for incremental adoption of a new analyzer), and subsequent
// runs report only what the baseline does not cover. Entries are keyed by
// (analyzer, file, message) with a count — deliberately no line numbers, so
// unrelated edits above a baselined finding do not un-baseline it. N
// identical findings in one file consume N baseline slots: fixing some of
// them keeps the rest covered, adding another one is reported.

// BaselineEntry is one accepted finding class in the baseline file.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

type baselineKey struct {
	analyzer, file, message string
}

// Baseline is the in-memory form: accepted finding counts by key.
type Baseline map[baselineKey]int

// WriteBaseline serializes findings as a sorted, indented JSON baseline.
// Finding filenames should already be module-root-relative so the file is
// stable when committed.
func WriteBaseline(w io.Writer, findings []Finding) error {
	counts := make(Baseline)
	for _, f := range findings {
		counts[baselineKey{f.Analyzer, f.Pos.Filename, f.Message}]++
	}
	entries := make([]BaselineEntry, 0, len(counts))
	for k, n := range counts {
		entries = append(entries, BaselineEntry{Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	enc, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// ReadBaseline parses a baseline file.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var entries []BaselineEntry
	dec := json.NewDecoder(r)
	if err := dec.Decode(&entries); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	b := make(Baseline, len(entries))
	for _, e := range entries {
		if e.Count <= 0 {
			e.Count = 1
		}
		b[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	return b, nil
}

// Filter returns the findings not covered by the baseline. The receiver is
// not modified.
func (b Baseline) Filter(findings []Finding) []Finding {
	remaining := make(Baseline, len(b))
	for k, n := range b {
		remaining[k] = n
	}
	var out []Finding
	for _, f := range findings {
		k := baselineKey{f.Analyzer, f.Pos.Filename, f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}
