// Package analysis is pmnet's in-tree static-analysis engine.
//
// The whole reproduction rests on two hand-maintained disciplines that no
// compiler enforces:
//
//  1. Determinism. The DES runs on a virtual clock and a seeded PRNG
//     (internal/sim); model code must never read the wall clock, use the
//     runtime's randomness, or iterate a map in an order-sensitive way.
//     One careless time.Now() or unsorted map range silently destroys the
//     "bit-reproducible given a seed" property.
//  2. Persistence. Every pmem.Device write must be covered by a persist
//     barrier before the data is treated as durable — the crash-consistency
//     core of PMNet's redo log (PAPER §V-A).
//
// The analyzers here mechanise both rules using only the standard library
// (go/parser + go/ast + go/types), so the tool runs offline with no module
// downloads. cmd/pmnetlint is the CLI driver; CI runs it on every push.
//
// # Suppressing a finding
//
// A finding can be suppressed with a directive comment on the same line or
// the line immediately above it:
//
//	//pmnetlint:ignore <analyzer> <reason>
//
// The analyzer name and a non-empty reason are mandatory; malformed or
// unknown-analyzer directives are themselves reported as findings, so a
// typo cannot silently disable checking.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Pkg    *Package
	report func(analyzer string, pos token.Pos, format string, args ...any)
}

// Reportf records a finding at pos. The runner attributes it to the current
// analyzer and drops it if an ignore directive covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report("", pos, format, args...)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	// Scope reports whether the analyzer audits the package with the given
	// import path inside the given module. The fixture harness bypasses it.
	Scope func(modulePath, pkgPath string) bool
	Run   func(*Pass)
}

// Analyzers is the registry, in reporting order. Directive validation only
// accepts these names.
var Analyzers = []*Analyzer{
	WallclockAnalyzer,
	RandsourceAnalyzer,
	MaprangeAnalyzer,
	PersistcoverAnalyzer,
	PersistorderAnalyzer,
	BoundedworkAnalyzer,
	SyncpoolAnalyzer,
	SharedstateAnalyzer,
	// ignoreaudit runs last: it reports on what the others suppressed.
	IgnoreauditAnalyzer,
}

func byName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// fixtureCorpus reports whether pkgPath is part of the analyzer fixture
// corpus. The corpus is deliberately full of violations, and every analyzer
// audits it, so pointing pmnetlint at a fixture directory demonstrably
// exits non-zero. The module walker never descends into testdata, so the
// corpus cannot make `pmnetlint ./...` fail.
func fixtureCorpus(modulePath, pkgPath string) bool {
	return strings.HasPrefix(pkgPath, modulePath+"/internal/analysis/testdata/")
}

// modelCode reports whether pkgPath is simulation/model code: the module
// root package plus everything under internal/, except the analysis tooling
// itself. cmd/ and examples/ are front-ends, free to talk to the real world.
func modelCode(modulePath, pkgPath string) bool {
	if pkgPath == modulePath || fixtureCorpus(modulePath, pkgPath) {
		return true
	}
	if !strings.HasPrefix(pkgPath, modulePath+"/internal/") {
		return false
	}
	return pkgPath != modulePath+"/internal/analysis"
}

// eventOrdering reports whether pkgPath is one of the event-ordering
// packages where map-iteration order can leak into the event schedule or
// reported results.
func eventOrdering(modulePath, pkgPath string) bool {
	if fixtureCorpus(modulePath, pkgPath) {
		return true
	}
	for _, p := range []string{"sim", "netsim", "dataplane", "harness", "server"} {
		if pkgPath == modulePath+"/internal/"+p {
			return true
		}
	}
	return false
}

// DirectivePrefix introduces a suppression comment.
const DirectivePrefix = "pmnetlint:ignore"

// directive is one parsed //pmnetlint:ignore comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Pos
}

// directives extracts every pmnetlint:ignore comment in the file, keyed by
// the line it annotates. Malformed directives are reported via report.
func directives(fset *token.FileSet, file *ast.File, report func(Finding)) map[int][]directive {
	out := make(map[int][]directive)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, DirectivePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			pos := fset.Position(c.Pos())
			switch {
			case name == "" || reason == "":
				report(Finding{Pos: pos, Analyzer: "pmnetlint",
					Message: fmt.Sprintf("malformed directive %q: want //%s <analyzer> <reason>", c.Text, DirectivePrefix)})
			case byName(name) == nil:
				report(Finding{Pos: pos, Analyzer: "pmnetlint",
					Message: fmt.Sprintf("directive names unknown analyzer %q", name)})
			default:
				out[pos.Line] = append(out[pos.Line], directive{analyzer: name, reason: reason, pos: c.Pos()})
			}
		}
	}
	return out
}

// RunPackage executes the given analyzers over pkg and returns the surviving
// findings (suppressed ones removed, malformed directives added), sorted by
// position. Scope is NOT consulted here — callers pick the analyzer set.
//
// When the run set includes ignoreaudit, every directive is additionally
// audited: one that suppressed nothing becomes a finding itself (stale
// ignore), as does one naming an analyzer outside the run set (out-of-scope
// ignore). Audit findings are attributed to ignoreaudit and are themselves
// unsuppressable.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	// A directive on line L suppresses findings on L (trailing comment) and
	// L+1 (directive on the preceding line), per file, per analyzer. Each
	// directive carries a usage bit for the ignoreaudit pass; both covered
	// lines share one record.
	type fileLine struct {
		file string
		line int
	}
	type dirUse struct {
		d    directive
		used bool
	}
	var uses []*dirUse
	suppress := make(map[string]map[fileLine][]*dirUse)
	for _, f := range pkg.Files {
		dirs := directives(pkg.Fset, f, func(fd Finding) { findings = append(findings, fd) })
		for line, ds := range dirs {
			for _, d := range ds {
				u := &dirUse{d: d}
				uses = append(uses, u)
				if suppress[d.analyzer] == nil {
					suppress[d.analyzer] = make(map[fileLine][]*dirUse)
				}
				fn := pkg.Fset.Position(d.pos).Filename
				suppress[d.analyzer][fileLine{fn, line}] = append(suppress[d.analyzer][fileLine{fn, line}], u)
				suppress[d.analyzer][fileLine{fn, line + 1}] = append(suppress[d.analyzer][fileLine{fn, line + 1}], u)
			}
		}
	}
	auditIgnores := false
	for _, a := range analyzers {
		if a.Name == IgnoreauditAnalyzer.Name {
			auditIgnores = true
		}
	}
	for _, a := range analyzers {
		a := a
		pass := &Pass{Pkg: pkg}
		pass.report = func(_ string, pos token.Pos, format string, args ...any) {
			p := pkg.Fset.Position(pos)
			if us := suppress[a.Name][fileLine{p.Filename, p.Line}]; len(us) > 0 {
				for _, u := range us {
					u.used = true
				}
				return
			}
			findings = append(findings, Finding{Pos: p, Analyzer: a.Name, Message: fmt.Sprintf(format, args...)})
		}
		a.Run(pass)
	}
	if auditIgnores {
		ran := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		for _, u := range uses {
			pos := pkg.Fset.Position(u.d.pos)
			switch {
			case !ran[u.d.analyzer]:
				findings = append(findings, Finding{Pos: pos, Analyzer: IgnoreauditAnalyzer.Name,
					Message: fmt.Sprintf("out-of-scope ignore: %s does not audit this package, so this directive can never suppress anything", u.d.analyzer)})
			case !u.used || u.d.analyzer == IgnoreauditAnalyzer.Name:
				findings = append(findings, Finding{Pos: pos, Analyzer: IgnoreauditAnalyzer.Name,
					Message: fmt.Sprintf("stale ignore: no %s finding left to suppress — delete the directive (its reason was: %s)", u.d.analyzer, u.d.reason)})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// ForPackage returns the analyzers whose scope covers pkgPath.
func ForPackage(modulePath, pkgPath string) []*Analyzer {
	var out []*Analyzer
	for _, a := range Analyzers {
		if a.Scope(modulePath, pkgPath) {
			out = append(out, a)
		}
	}
	return out
}
