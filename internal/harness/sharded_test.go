package harness

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"pmnet"
	"pmnet/internal/trace"
)

// shardProbe runs one config at a given shard count and captures everything
// observable: measurement window, histogram, driver accounting, event count,
// counter snapshot, and the serialized trace.
type shardProbe struct {
	run      string
	driver   string
	events   uint64
	virtual  int64
	counters []trace.Snapshot
	chrome   []byte
}

func probeShards(t *testing.T, cfg RunConfig, shards int) shardProbe {
	t.Helper()
	cfg.Shards = shards
	cfg.Trace = trace.NewTracer(1 << 16)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return shardProbe{
		run: fmt.Sprintf("%s start=%d end=%d n=%d",
			res.Run.Hist.String(), res.Run.Start, res.Run.End, res.Run.Requests),
		driver:   fmt.Sprintf("%+v", res.Driver),
		events:   res.Bed.EventsRun(),
		virtual:  int64(res.Bed.Now()),
		counters: res.Bed.Counters().Snapshot(),
		chrome:   cfg.Trace.ChromeJSON(res.Bed.NodeName),
	}
}

// TestShardedByteIdentical is the determinism contract of DESIGN.md §10.4:
// every observable of a sharded run — stats, counters, trace bytes — is
// identical at -shards 1 and -shards N.
func TestShardedByteIdentical(t *testing.T) {
	for _, cfg := range []RunConfig{
		{Design: pmnet.PMNetSwitch, Workload: WLIdeal, Clients: 12, Requests: 40, Warmup: 5, Seed: 7},
		{Design: pmnet.PMNetSwitch, Workload: WLHashmap, Clients: 6, Requests: 30, Seed: 3, Replication: 3, UpdateRatio: 0.5},
		{Design: pmnet.PMNetNIC, Workload: WLIdeal, Clients: 9, Requests: 25, Seed: 11},
		{Design: pmnet.ClientServer, Workload: WLIdeal, Clients: 5, Requests: 20, Seed: 5},
	} {
		base := probeShards(t, cfg, 1)
		for _, n := range []int{2, 4, 7} {
			got := probeShards(t, cfg, n)
			if got.run != base.run {
				t.Errorf("%s shards=%d: hist %q != %q", cfg.Design, n, got.run, base.run)
			}
			if got.driver != base.driver {
				t.Errorf("%s shards=%d: driver %s != %s", cfg.Design, n, got.driver, base.driver)
			}
			if got.events != base.events {
				t.Errorf("%s shards=%d: events %d != %d", cfg.Design, n, got.events, base.events)
			}
			if got.virtual != base.virtual {
				t.Errorf("%s shards=%d: virtual end %d != %d", cfg.Design, n, got.virtual, base.virtual)
			}
			if !reflect.DeepEqual(got.counters, base.counters) {
				t.Errorf("%s shards=%d: counter snapshots differ", cfg.Design, n)
			}
			if !bytes.Equal(got.chrome, base.chrome) {
				t.Errorf("%s shards=%d: trace bytes differ (%d vs %d bytes)",
					cfg.Design, n, len(got.chrome), len(base.chrome))
			}
		}
	}
}
