package harness

// Process-wide core budget shared by the two parallelism layers: the batch
// cell pool (parallel.go) and the per-testbed shard worker pools
// (internal/sim/pdes via pmnet.Config.WorkerBudget). Before the budget, a
// `-parallel N -shards M` batch would spin up N·M workers on a GOMAXPROCS-
// core machine and every one of them paid barrier-spin tax; with it, the
// pool reserves its worker cores up front and sharded runs borrow only what
// is left — worker counts never affect results (the pdes determinism
// contract), so the budget trades nothing but wall clock.

import (
	"runtime"
	"sync"
)

// CoreBudget is a non-blocking token pool. Capacity counts EXTRA workers
// beyond the one the borrowing goroutine already is, so a capacity of
// GOMAXPROCS-1 keeps total busy workers at the core count.
type CoreBudget struct {
	mu    sync.Mutex
	avail int
}

// NewCoreBudget creates a budget with n tokens (clamped at ≥ 0).
func NewCoreBudget(n int) *CoreBudget {
	if n < 0 {
		n = 0
	}
	return &CoreBudget{avail: n}
}

// Acquire takes up to want tokens without blocking and returns how many it
// got (possibly 0 — the caller always owns its own goroutine's worker).
func (b *CoreBudget) Acquire(want int) int {
	if want <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	got := want
	if got > b.avail {
		got = b.avail
	}
	b.avail -= got
	return got
}

// Release returns n tokens to the pool.
func (b *CoreBudget) Release(n int) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	b.avail += n
	b.mu.Unlock()
}

// sharedBudget is the process-wide pool every harness Run hands to its
// testbed. Written once at init, mutated only through the mutex.
var sharedBudget = NewCoreBudget(runtime.GOMAXPROCS(0) - 1)
