package harness

// The "speedup" experiment: ONE scenario executed at -shards 1, 2, 4,
// tracking the parallel runner's wall-clock curve while proving, row by row,
// that the results do not move. Each cell is Custom (not Cfg), so the batch
// -shards override never rewrites it: the shard count under test is baked in
// at enumeration time. The rendered table shows only deterministic values —
// events, epochs, events per epoch — which are identical on every row by the
// PDES determinism contract; the wall-clock curve lives in the per-cell
// wall_ms of the BENCH JSON (with Events populated through the CellEvents
// hook), where cmd/benchdiff turns it into the tracked ns/event trajectory
// and CI's speedup-smoke job gates regressions. On a single-CPU runner the
// curve degenerates to ≈1.00× — the worker budget collapses every cell to
// one worker — but the artifact still records the machine's cpu count so a
// flat curve is readable as "no cores", not "no speedup".

import (
	"fmt"

	"pmnet"
	"pmnet/internal/sim"
	"pmnet/internal/stats"
)

var speedupShards = []int{1, 2, 4}

// speedupCell is the Custom-cell payload: the deterministic outcome of one
// sharded run.
type speedupCell struct {
	Shards int
	Events uint64
	Epochs uint64
}

// CellEvents feeds the deterministic event count into CellResult.Events (and
// so into the BENCH JSON, where wall_ms/events is the gated ns/event rate).
func (v speedupCell) CellEvents() uint64 { return v.Events }

// speedupConfig is the measured scenario: the Fig16 saturation shape, big
// enough that epoch machinery dominates setup but small enough for a CI
// smoke run.
func speedupConfig(seed uint64, shards int) RunConfig {
	return RunConfig{
		Design: pmnet.PMNetSwitch, Workload: WLIdeal, Clients: 32,
		Requests: 150, Warmup: 10, ValueSize: 1000, UpdateRatio: 1,
		Seed: seed, Shards: shards,
	}
}

func speedupCells(seed uint64) []Cell {
	var cells []Cell
	for _, sh := range speedupShards {
		sh := sh
		cells = append(cells, Cell{
			Key: fmt.Sprintf("shards=%d", sh),
			Custom: func() (any, sim.Time) {
				res, err := Run(speedupConfig(seed, sh))
				if err != nil {
					panic(fmt.Sprintf("speedup shards=%d: %v", sh, err))
				}
				return speedupCell{
					Shards: sh,
					Events: res.Bed.EventsRun(),
					Epochs: res.Bed.RunnerPerf().Epochs,
				}, res.Bed.Now()
			},
		})
	}
	return cells
}

func speedupRender(seed uint64, cells []CellResult) Result {
	t := stats.Table{
		Title: "Speedup: one scenario at -shards 1/2/4 (results identical by construction)",
		Columns: []string{"shards", "events", "epochs", "events/epoch"},
	}
	metrics := map[string]float64{}
	base := cells[0].V.(speedupCell)
	for i, sh := range speedupShards {
		v := cells[i].V.(speedupCell)
		if v.Events != base.Events || v.Epochs != base.Epochs {
			// A divergent row means the determinism contract broke; render it
			// loudly rather than hiding it in a wall-clock artifact.
			t.AddRow(fmt.Sprintf("%d", sh), fmt.Sprintf("%d MISMATCH", v.Events),
				fmt.Sprintf("%d MISMATCH", v.Epochs), "-")
			continue
		}
		perEpoch := uint64(0)
		if v.Epochs > 0 {
			perEpoch = v.Events / v.Epochs
		}
		t.AddRow(fmt.Sprintf("%d", sh), fmt.Sprintf("%d", v.Events),
			fmt.Sprintf("%d", v.Epochs), fmt.Sprintf("%d", perEpoch))
		metrics[fmt.Sprintf("events_%d", sh)] = float64(v.Events)
		metrics[fmt.Sprintf("epochs_%d", sh)] = float64(v.Epochs)
	}
	return Result{
		ID:    "speedup",
		Table: t,
		Notes: []string{
			"Every row is the same simulation: events and epochs must match",
			"exactly (PDES byte-identity). The wall-clock curve is in the BENCH",
			"JSON cells (wall_ms per shards=N); compare artifacts with",
			"cmd/benchdiff. The doc's cpus field says whether the machine could",
			"parallelize at all — on 1 CPU the curve is ≈1.00x by design.",
		},
		Metrics: metrics,
	}
}
