package harness

// Parallel execution of experiment cells. The paper's evaluation is ~15
// experiments whose largest member is a 64-cell sweep of independent
// simulations; this runner executes the combined cell list of a whole batch
// on a bounded worker pool and then renders each experiment sequentially, so
// `pmnetbench -run all -parallel N` scales with cores while producing output
// byte-identical to the sequential run (see parallel_test.go for the golden
// guarantee and DESIGN.md for why parallelism cannot perturb determinism).

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Options controls batch execution.
type Options struct {
	Seed     uint64
	Parallel int // worker-pool size; <= 0 means GOMAXPROCS
	// Shards > 0 forces every Cfg cell onto the conservative-PDES path with
	// this many engine shards (RunConfig.Shards). Cell output is
	// byte-identical for every value ≥ 1 (the PDES determinism contract), so
	// the flag trades intra-cell parallelism against the pool's inter-cell
	// parallelism without perturbing results. 0 leaves each cell's own
	// setting untouched.
	Shards int
}

// ExperimentRun is one rendered experiment plus its execution accounting.
type ExperimentRun struct {
	Result
	Cells []CellResult
	// Wall sums the wall time of this experiment's cells — aggregate
	// compute, not elapsed time (cells of different experiments interleave
	// on the pool).
	Wall time.Duration
}

// Perf aggregates host-side execution metrics across a batch — the perf
// trajectory the BENCH artifacts track. Events is deterministic (a pure
// function of the experiment list and seed); the rates and allocation counts
// are wall-clock-class measurements that vary run to run.
type Perf struct {
	Events         uint64  // simulator events fired across all cells
	EventsPerSec   float64 // Events / cell-execution wall time
	Allocs         uint64  // heap allocations during cell execution (all workers)
	AllocsPerEvent float64
}

// BatchResult is the outcome of RunExperiments.
type BatchResult struct {
	Seed        uint64
	Parallel    int           // resolved worker count
	Shards      int           // forced per-cell shard count (0 = per-cell default)
	Wall        time.Duration // real elapsed time of the whole batch
	Perf        Perf
	Experiments []ExperimentRun
}

// RunExperiments executes the named experiments: it enumerates every cell of
// every experiment up front, executes the combined list on a bounded worker
// pool, and renders each experiment in the order given. The rendered tables,
// notes, and metrics are identical for every pool size.
func RunExperiments(ids []string, opt Options) (*BatchResult, error) {
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	//pmnetlint:ignore wallclock real elapsed time is reported only, never simulated
	start := time.Now()
	type span struct {
		spec   *Spec
		lo, hi int
	}
	var flat []Cell
	spans := make([]span, 0, len(ids))
	for _, id := range ids {
		s, ok := Specs[id]
		if !ok {
			return nil, fmt.Errorf("harness: unknown experiment %q", id)
		}
		cs := s.Enumerate(opt.Seed)
		spans = append(spans, span{s, len(flat), len(flat) + len(cs)})
		flat = append(flat, cs...)
	}
	if opt.Shards > 0 {
		for i := range flat {
			if flat[i].Cfg != nil {
				flat[i].Cfg.Shards = opt.Shards
			}
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	//pmnetlint:ignore wallclock real elapsed time is reported only, never simulated
	cellStart := time.Now()
	results := runCells(flat, workers)
	//pmnetlint:ignore wallclock real elapsed time is reported only, never simulated
	cellWall := time.Since(cellStart)
	runtime.ReadMemStats(&ms1)
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
	}
	out := &BatchResult{Seed: opt.Seed, Parallel: workers, Shards: opt.Shards}
	for _, r := range results {
		out.Perf.Events += r.Events
	}
	out.Perf.Allocs = ms1.Mallocs - ms0.Mallocs
	if s := cellWall.Seconds(); s > 0 {
		out.Perf.EventsPerSec = float64(out.Perf.Events) / s
	}
	if out.Perf.Events > 0 {
		out.Perf.AllocsPerEvent = float64(out.Perf.Allocs) / float64(out.Perf.Events)
	}
	for _, sp := range spans {
		cells := results[sp.lo:sp.hi]
		er := ExperimentRun{Result: sp.spec.Render(opt.Seed, cells), Cells: cells}
		for _, c := range cells {
			er.Wall += c.Wall
		}
		out.Experiments = append(out.Experiments, er)
	}
	//pmnetlint:ignore wallclock real elapsed time is reported only, never simulated
	out.Wall = time.Since(start)
	return out, nil
}

// runCells executes cells on up to workers goroutines, returning results in
// input order. Completion order is irrelevant: each result lands in its own
// slot, and no cell shares mutable state with another (each builds its own
// testbed; package-level state is read-only calibration data).
func runCells(cells []Cell, workers int) []CellResult {
	out := make([]CellResult, len(cells))
	if workers > len(cells) {
		workers = len(cells)
	}
	// Reserve this pool's worker cores (beyond the caller's own) from the
	// shared budget so sharded cells only borrow genuinely idle cores; an
	// oversubscribed pool (workers > cores) simply leaves nothing to borrow.
	reserved := sharedBudget.Acquire(workers - 1)
	defer sharedBudget.Release(reserved)
	if workers <= 1 {
		for i := range cells {
			out[i] = execCell(cells[i])
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = execCell(cells[i])
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// RunSpec executes one spec on a pool of the given size and renders it,
// panicking on cell failure — the per-figure API (Fig2Breakdown, ...)
// treats setup failure as fatal, like mustRun.
func RunSpec(s *Spec, seed uint64, workers int) Result {
	cells := runCells(s.Enumerate(seed), workers)
	for _, c := range cells {
		if c.Err != nil {
			panic(c.Err)
		}
	}
	return s.Render(seed, cells)
}
