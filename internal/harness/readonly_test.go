package harness

import (
	"testing"

	"pmnet"
)

// TestReadOnlyRun is the regression test for the UpdateRatio == 0 conflation:
// an explicit 0 used to be silently rewritten to 1.0, making read-only runs
// impossible. Now 0 is a real value and only the negative sentinel defaults.
func TestReadOnlyRun(t *testing.T) {
	res, err := Run(RunConfig{
		Design: pmnet.PMNetSwitch, Workload: WLHashmap,
		Clients: 2, Requests: 80, UpdateRatio: 0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Driver.Updates != 0 {
		t.Fatalf("read-only run performed %d updates", res.Driver.Updates)
	}
	if res.Driver.Bypasses == 0 {
		t.Fatal("read-only run performed no reads")
	}
	if res.Run.Requests == 0 {
		t.Fatal("read-only run recorded no completed requests")
	}
}

// TestUpdateRatioUnsetDefaults checks the sentinel: a negative ratio means
// "unset" and falls back to the all-update default.
func TestUpdateRatioUnsetDefaults(t *testing.T) {
	res, err := Run(RunConfig{
		Design: pmnet.PMNetSwitch, Workload: WLHashmap,
		Clients: 2, Requests: 80, UpdateRatio: UpdateRatioUnset, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Driver.Updates == 0 {
		t.Fatal("unset update ratio should default to all updates")
	}
	if res.Driver.Bypasses != 0 {
		t.Fatalf("all-update run performed %d read bypasses", res.Driver.Bypasses)
	}
}
