package harness

// The "openloop" experiment: retwis at a million users under open-loop
// arrivals — the load-latency curve the closed-loop figures structurally
// cannot show (a closed loop self-throttles at saturation, so offered load
// collapses to match capacity and the knee is invisible). Each cell runs one
// (design, offered-load) point: Poisson arrivals multiplex 1M logical user
// sessions over 8 client transports (internal/openloop), with capped
// exponential retransmission backoff so the past-knee region measures
// queueing rather than a fixed-period retransmission storm. The knee is the
// highest swept load whose goodput still tracks ≥95% of the measured offered
// rate; PMNet-vs-baseline headroom is read at and below the knee.

import (
	"fmt"

	"pmnet"
	"pmnet/internal/sim"
	"pmnet/internal/stats"
)

// openloopLoads sweeps the offered load in user actions per second; an
// action is 1-4 requests (retwis mix). The points bracket both designs'
// knees (~150k-200k actions/s at these testbed calibrations).
var openloopLoads = []float64{50e3, 100e3, 150e3, 200e3, 300e3, 400e3}

var openloopDesigns = []pmnet.Design{pmnet.ClientServer, pmnet.PMNetSwitch}

// openloopSpec parameterizes the sweep; the registered experiment runs the
// million-user instance, tests run smaller ones.
func openloopSpec(users int, duration sim.Time) *Spec {
	return &Spec{
		ID: "openloop",
		Enumerate: func(seed uint64) []Cell {
			return openloopCells(seed, users, duration)
		},
		Render: openloopRender,
	}
}

func openloopCells(seed uint64, users int, duration sim.Time) []Cell {
	var cells []Cell
	for _, d := range openloopDesigns {
		for _, load := range openloopLoads {
			cells = append(cells, cfgCell(
				fmt.Sprintf("%s/%.0fk", designShort(d), load/1000),
				RunConfig{
					Design:       d,
					Workload:     WLTwitter,
					Clients:      8,
					Seed:         seed,
					Zipfian:      true,
					OfferedLoad:  load,
					Duration:     duration,
					WarmupDur:    duration / 5,
					Users:        users,
					UpdateRatio:  UpdateRatioUnset,
					RetryBackoff: true,
				}))
		}
	}
	return cells
}

func openloopRender(seed uint64, cells []CellResult) Result {
	t := stats.Table{
		Title: "Open-loop: retwis load-latency knee (1M users, Poisson arrivals)",
		Columns: []string{"design", "offered k/s", "goodput k/s", "ratio",
			"p50 (us)", "p99 (us)", "p99.9 (us)", "tail spot (us)", "shed"},
	}
	metrics := map[string]float64{}
	knees := map[string]float64{}
	i := 0
	for _, d := range openloopDesigns {
		short := designShort(d)
		for _, load := range openloopLoads {
			res := cells[i]
			i++
			open := res.Open
			goodput := res.Run.Throughput()
			offered := float64(open.MeasuredOff) / (float64(res.Run.End-res.Run.Start) / 1e9)
			ratio := goodput / offered
			t.AddRow(short, fmt.Sprintf("%.0f", load/1000),
				fmt.Sprintf("%.1f", goodput/1000),
				fmt.Sprintf("%.2f", ratio),
				us(res.Run.Hist.Percentile(50)),
				us(res.Run.Hist.Percentile(99)),
				us(res.Run.Hist.Percentile(99.9)),
				// Exact deep-tail spot check from the merged reservoir; it
				// validates the bucketed p99 against real samples.
				us(open.Reservoir.Percentile(99)),
				fmt.Sprintf("%d", open.Shed))
			key := fmt.Sprintf("%s_%.0fk", short, load/1000)
			metrics["goodput_"+key] = goodput
			metrics["p50_us_"+key] = res.Run.Hist.Percentile(50).Micros()
			metrics["p999_us_"+key] = res.Run.Hist.Percentile(99.9).Micros()
			// The knee: highest swept load whose goodput still tracks the
			// offered rate within 5%.
			if ratio >= 0.95 && load > knees[short] {
				knees[short] = load
			}
		}
	}
	base := knees[designShort(pmnet.ClientServer)]
	pmn := knees[designShort(pmnet.PMNetSwitch)]
	metrics["knee_base"] = base
	metrics["knee_pmnet"] = pmn
	return Result{
		ID:    "openloop",
		Table: t,
		Notes: []string{
			"Open-loop Poisson arrivals over 1M logical user sessions (8 transports,",
			"active-session table bounded by the admission cap; excess arrivals shed).",
			fmt.Sprintf("Knee (goodput >= 0.95x offered): baseline %.0fk, PMNet switch %.0fk actions/s (%s).",
				base/1000, pmn/1000, ratio(pmn, base)),
			"Client retransmission uses capped exponential backoff in these cells.",
		},
		Metrics: metrics,
	}
}
