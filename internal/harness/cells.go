package harness

// This file defines the cell model of the experiment harness. Every
// experiment of the paper's evaluation decomposes into independent cells —
// one deterministic discrete-event simulation each, with its own testbed,
// its own virtual clock, and its own seeded sim.Rand streams — plus a
// sequential render step that folds the cell results into the published
// table. Per-cell seeds are fixed at enumeration time and rendering consumes
// results strictly in enumeration order, so cells may execute in any order,
// on any number of goroutines, without perturbing a single output byte.

import (
	"fmt"
	"time"

	"pmnet/internal/sim"
	"pmnet/internal/stats"
	"pmnet/internal/trace"
	"pmnet/internal/workload"
)

// Cell is one independent simulation unit of an experiment. Exactly one of
// Cfg and Custom is set: Cfg cells run the standard harness Run; Custom
// cells drive a bespoke testbed (recovery, tail contention) or sample a
// closed-form model, returning an experiment-defined payload plus their
// final virtual-clock reading.
type Cell struct {
	Key    string
	Cfg    *RunConfig
	Custom func() (any, sim.Time)
}

// CellResult is the outcome of one executed cell. The testbed itself is
// dropped once the cell completes — retaining it would pin every cell's
// arena in memory for the whole sweep — so everything a renderer may need is
// extracted here.
type CellResult struct {
	Key        string
	Run        *stats.Run           // Cfg cells: the measurement window
	Driver     workload.DriverStats // Cfg cells: driver accounting
	Open       *OpenLoopResult      // open-loop Cfg cells: arrival/admission accounting
	V          any                  // Custom cells: experiment-defined payload
	VirtualEnd sim.Time             // virtual clock at cell completion
	Events     uint64               // Cfg cells: simulator events fired (deterministic per seed)
	Counters   []trace.Snapshot     // Cfg cells: unified metrics registry at quiescence
	Wall       time.Duration        // real time spent executing the cell
	Err        error
}

// Spec is one experiment split into cell enumeration and rendering. The
// paper's figure IDs index Specs. Enumerate must be cheap and deterministic
// — it bakes the seed into every cell — and Render must consume cells in
// enumeration order only.
type Spec struct {
	ID        string
	Enumerate func(seed uint64) []Cell
	Render    func(seed uint64, cells []CellResult) Result
}

// execCell runs one cell. The wall clock here measures host execution time
// for perf-trajectory reporting (the BENCH artifacts); it never feeds back
// into the simulation, which advances exclusively on its virtual clock.
func execCell(c Cell) CellResult {
	//pmnetlint:ignore wallclock real elapsed time is reported only, never simulated
	start := time.Now()
	out := CellResult{Key: c.Key}
	if c.Cfg != nil {
		res, err := Run(*c.Cfg)
		if err != nil {
			out.Err = fmt.Errorf("cell %s: %w", c.Key, err)
			return out
		}
		out.Run = res.Run
		out.Driver = res.Driver
		out.Open = res.Open
		out.VirtualEnd = res.Bed.Now()
		out.Events = res.Bed.EventsRun()
		out.Counters = res.Bed.Counters().Snapshot()
	} else {
		out.V, out.VirtualEnd = c.Custom()
		// Custom cells that know their deterministic event count surface it
		// through this hook so the BENCH JSON can rate them (ns/event) like
		// Cfg cells.
		if v, ok := out.V.(interface{ CellEvents() uint64 }); ok {
			out.Events = v.CellEvents()
		}
	}
	//pmnetlint:ignore wallclock real elapsed time is reported only, never simulated
	out.Wall = time.Since(start)
	return out
}

// cfgCell builds a standard cell around a copy of cfg.
func cfgCell(key string, cfg RunConfig) Cell {
	c := cfg
	return Cell{Key: key, Cfg: &c}
}
