package harness

import (
	"fmt"

	"pmnet"
	"pmnet/internal/sim"
	"pmnet/internal/stats"
	"pmnet/internal/workload"
)

// clientSlot is one client's private measurement state on the sharded path.
// Its fields are written only by the shard worker running that client's
// partition during bed.Run() and read only after Run returns (the pdes
// barrier/join provides the happens-before edge) — no client ever shares a
// slot, so the drivers touch no cross-shard memory.
type clientSlot struct {
	run  *stats.Run
	st   workload.DriverStats
	done bool
}

// runSharded wires per-client drivers onto a sharded testbed and merges their
// results. It mirrors the classic driver loop in Run, with two deliberate
// differences forced by parallelism, both shard-count-invariant:
//
//   - Each driver runs on its own client's engine and records into its own
//     slot; timestamps come from that client's clock (identical to the global
//     clock at the recording instant on the classic path, but readable
//     without cross-shard traffic).
//   - The measurement window opens at the earliest issue time among measured
//     requests (min over clients of first completion minus its latency)
//     rather than at the globally first completion — a min over per-client
//     values, so it cannot depend on engine interleaving.
//
// Merging happens in client-index order after bed.Run() returns, so float
// accumulation order in the histogram is fixed.
func runSharded(cfg *RunConfig, bed *pmnet.Testbed) (*RunResult, error) {
	rootRand := sim.NewRand(cfg.Seed + 77)
	slots := make([]clientSlot, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		s := &slots[i]
		s.run = stats.NewRun(0)
		eng := bed.Clients[i].Engine()
		gen := buildGenerator(cfg.Workload, cfg, i, rootRand.Fork())
		seen := 0
		warm := cfg.Warmup
		d := &workload.Driver{
			Sess: bed.Session(i),
			Gen:  gen,
			Record: func(lat sim.Time, op workload.Op) {
				seen++
				if seen <= warm {
					return
				}
				if s.run.Requests == 0 {
					s.run.Start = eng.Now() - lat
				}
				s.run.Record(lat, eng.Now())
			},
		}
		d.Run(eng, uint64(cfg.Requests+cfg.Warmup), func(st workload.DriverStats) {
			s.st = st
			s.done = true
		})
	}
	bed.Run()

	run := stats.NewRun(0)
	var agg workload.DriverStats
	remaining := 0
	started := false
	for i := range slots {
		s := &slots[i]
		if !s.done {
			remaining++
			continue
		}
		agg.Completed += s.st.Completed
		agg.Updates += s.st.Updates
		agg.Bypasses += s.st.Bypasses
		agg.LockOps += s.st.LockOps
		agg.LockRetries += s.st.LockRetries
		agg.Failed += s.st.Failed
		if s.run.Requests == 0 {
			continue
		}
		if !started || s.run.Start < run.Start {
			run.Start = s.run.Start
		}
		started = true
		if s.run.End > run.End {
			run.End = s.run.End
		}
		run.Requests += s.run.Requests
		run.Hist.Merge(s.run.Hist)
	}
	if remaining != 0 {
		return nil, fmt.Errorf("harness: %d clients never finished (deadlock?)", remaining)
	}
	return &RunResult{Bed: bed, Run: run, Driver: agg}, nil
}
