package harness

// Cell enumeration for every experiment: the "what to simulate" half of the
// former monolithic experiments.go. Each function returns the experiment's
// independent cells with their seeds fixed at enumeration time; the matching
// renderers live in render.go and consume the results in this exact order.

import (
	"fmt"

	"pmnet"
	"pmnet/internal/netsim"
	"pmnet/internal/sim"
	"pmnet/internal/stats"
)

// designShort names designs in cell keys and metric keys.
func designShort(d pmnet.Design) string {
	switch d {
	case pmnet.ClientServer:
		return "base"
	case pmnet.PMNetSwitch:
		return "pmnet"
	case pmnet.PMNetNIC:
		return "nic"
	}
	return "unknown"
}

func fig2Cells(seed uint64) []Cell {
	return []Cell{cfgCell("hashmap", RunConfig{
		Design: pmnet.ClientServer, Workload: WLHashmap,
		Clients: 1, Requests: 800, Warmup: 50, UpdateRatio: 1.0, Seed: seed,
	})}
}

var fig15Payloads = []int{50, 100, 200, 400, 600, 800, 1000}

// fig15Designs orders the three designs of the payload sweep.
var fig15Designs = []pmnet.Design{pmnet.ClientServer, pmnet.PMNetSwitch, pmnet.PMNetNIC}

func fig15Cells(seed uint64) []Cell {
	var cells []Cell
	for _, p := range fig15Payloads {
		for _, d := range fig15Designs {
			cells = append(cells, cfgCell(fmt.Sprintf("%d/%s", p, designShort(d)), RunConfig{
				Design: d, Workload: WLIdeal,
				Requests: 600, Warmup: 50, ValueSize: p, UpdateRatio: 1, Seed: seed,
			}))
		}
	}
	return cells
}

var fig16Clients = []int{1, 4, 16, 32, 64, 96}

func fig16Cells(seed uint64) []Cell {
	var cells []Cell
	for _, design := range []pmnet.Design{pmnet.ClientServer, pmnet.PMNetSwitch} {
		for _, clients := range fig16Clients {
			cells = append(cells, cfgCell(fmt.Sprintf("%s/%d", designShort(design), clients), RunConfig{
				Design: design, Workload: WLIdeal, Clients: clients,
				Requests: 250, Warmup: 20, ValueSize: 1000, UpdateRatio: 1, Seed: seed,
			}))
		}
	}
	return cells
}

// fig18Alt carries the sampled means of the alternative logging designs,
// composed from the calibrated component models (client-side logging per
// [4], server-side logging per [56]).
type fig18Alt struct {
	client, client3, server, server3 float64
}

func fig18Cells(seed uint64) []Cell {
	alt := Cell{Key: "altmodels", Custom: func() (any, sim.Time) {
		r := sim.NewRand(seed + 5)
		const n = 2000
		sample := func(fn func() float64) float64 {
			var sum float64
			for i := 0; i < n; i++ {
				sum += fn()
			}
			return sum / n
		}
		pmWrite := 313.0 // ns: 273 media + serialization of ~100B
		// Client-side logging: app → local logger process round trip (two
		// client-stack traversals) + PM write.
		clientLog := sample(func() float64 {
			return float64(netsim.ClientKernelStack.Sample(r)) +
				float64(netsim.ClientKernelStack.Sample(r)) + pmWrite
		})
		// +3-way replication: ship the log to two peer clients in parallel
		// (client stack out, wire, peer stack in, and back); the client
		// proceeds when the slower peer has confirmed.
		peerRTT := func() float64 {
			return 2*float64(netsim.ClientKernelStack.Sample(r)) +
				2*float64(netsim.ClientKernelStack.Sample(r)) +
				4*float64(sim.Microsecond)
		}
		clientLog3 := sample(func() float64 {
			a, b := peerRTT(), peerRTT()
			if b > a {
				a = b
			}
			return float64(netsim.ClientKernelStack.Sample(r)) +
				float64(netsim.ClientKernelStack.Sample(r)) + pmWrite + a
		})
		// Server-side logging: full network path; the server logs at the edge
		// of its stack and acks immediately (processing off the path).
		wire := 4*float64(sim.Microsecond) + 2*float64(netsim.DefaultSwitchLatency)
		serverLog := sample(func() float64 {
			return 2*float64(netsim.ClientKernelStack.Sample(r)) +
				2*float64(netsim.ServerKernelStack.Sample(r)) + wire + pmWrite
		})
		// +replication: the primary synchronously ships the log to a replica
		// server before acking (server↔server RTT).
		serverLog3 := sample(func() float64 {
			return 2*float64(netsim.ClientKernelStack.Sample(r)) +
				2*float64(netsim.ServerKernelStack.Sample(r)) + wire + pmWrite +
				2*float64(netsim.ServerKernelStack.Sample(r)) + wire + pmWrite
		})
		return fig18Alt{client: clientLog, client3: clientLog3,
			server: serverLog, server3: serverLog3}, 0
	}}
	return []Cell{
		alt,
		cfgCell("pmnet", RunConfig{Design: pmnet.PMNetSwitch, Workload: WLIdeal,
			Requests: 800, Warmup: 50, UpdateRatio: 1, Seed: seed}),
		cfgCell("pmnet3", RunConfig{Design: pmnet.PMNetSwitch, Workload: WLIdeal,
			Requests: 800, Warmup: 50, UpdateRatio: 1, Replication: 3, Seed: seed}),
	}
}

var fig19Ratios = []float64{1.0, 0.75, 0.5, 0.25}

func fig19Cells(seed uint64, clients, requests int) []Cell {
	var cells []Cell
	for _, wl := range AllWorkloads {
		for _, ratio := range fig19Ratios {
			for _, design := range []pmnet.Design{pmnet.ClientServer, pmnet.PMNetSwitch} {
				cells = append(cells, cfgCell(
					fmt.Sprintf("%s/%d/%s", wl, int(ratio*100), designShort(design)),
					RunConfig{Design: design, Workload: wl,
						Clients: clients, Requests: requests, Warmup: 20,
						UpdateRatio: ratio, Seed: seed}))
			}
		}
	}
	return cells
}

// fig20Variant is one line of the Figure 20 CDF plots.
type fig20Variant struct {
	name  string
	des   pmnet.Design
	cache int
}

var fig20Variants = []fig20Variant{
	{"Client-Server", pmnet.ClientServer, 0},
	{"PMNet", pmnet.PMNetSwitch, 0},
	{"PMNet+cache", pmnet.PMNetSwitch, 4096},
}

var fig20Ratios = []float64{1.0, 0.5}

func fig20Cells(seed uint64) []Cell {
	var cells []Cell
	for _, ur := range fig20Ratios {
		for _, d := range fig20Variants {
			cells = append(cells, cfgCell(fmt.Sprintf("%s/%d", d.name, int(ur*100)), RunConfig{
				Design: d.des, Workload: WLHashmap, Clients: 4,
				Requests: 400, Warmup: 40, UpdateRatio: ur, Zipfian: true,
				CacheSize: d.cache, Keys: 1000, Seed: seed,
			}))
		}
	}
	return cells
}

func fig20cdfCells(seed uint64) []Cell {
	var cells []Cell
	for _, d := range fig20Variants {
		cells = append(cells, cfgCell(d.name, RunConfig{
			Design: d.des, Workload: WLHashmap, Clients: 4,
			Requests: 600, Warmup: 60, UpdateRatio: 0.5, Zipfian: true,
			CacheSize: d.cache, Keys: 1000, Seed: seed,
		}))
	}
	return cells
}

func fig21Cells(seed uint64) []Cell {
	return []Cell{
		cfgCell("base", RunConfig{Design: pmnet.ClientServer, Workload: WLIdeal,
			Requests: 800, Warmup: 50, UpdateRatio: 1, Seed: seed}),
		cfgCell("pmnet", RunConfig{Design: pmnet.PMNetSwitch, Workload: WLIdeal,
			Requests: 800, Warmup: 50, UpdateRatio: 1, Seed: seed}),
		cfgCell("pmnet3", RunConfig{Design: pmnet.PMNetSwitch, Workload: WLIdeal,
			Requests: 800, Warmup: 50, UpdateRatio: 1, Replication: 3, Seed: seed}),
		// Server-side 3-way replication: model the replica sync as a
		// server↔server RTT (sampled like Fig. 18) that the renderer appends
		// to the baseline request path.
		{Key: "serversync", Custom: func() (any, sim.Time) {
			r := sim.NewRand(seed + 9)
			var syncSum float64
			const n = 2000
			for i := 0; i < n; i++ {
				syncSum += 2*float64(netsim.ServerKernelStack.Sample(r)) +
					2*float64(sim.Microsecond) + 313
			}
			return syncSum / n, 0
		}},
	}
}

// fig22Variant is one row of the optimized-stack comparison.
type fig22Variant struct {
	name   string
	design pmnet.Design
	stacks pmnet.StackKind
}

var fig22Variants = []fig22Variant{
	{"Client-Server", pmnet.ClientServer, pmnet.KernelStack},
	{"PMNet", pmnet.PMNetSwitch, pmnet.KernelStack},
	{"Client-Server + libVMA", pmnet.ClientServer, pmnet.BypassStack},
	{"PMNet + libVMA", pmnet.PMNetSwitch, pmnet.BypassStack},
}

func fig22Cells(seed uint64) []Cell {
	var cells []Cell
	for _, row := range fig22Variants {
		cells = append(cells, cfgCell(row.name, RunConfig{Design: row.design,
			Workload: WLIdeal, Clients: 8, Requests: 250, Warmup: 20,
			UpdateRatio: 1, Stacks: row.stacks, Seed: seed}))
	}
	return cells
}

// recoveryOut carries the crash/replay measurements of §VI-B6.
type recoveryOut struct {
	logged  int      // log entries live at the crash
	resends uint64   // requests replayed to the recovering server
	total   sim.Time // virtual time from power-on to drained log
	perReq  sim.Time // total / resends
	drained bool
}

func recoveryCells(seed uint64) []Cell {
	return []Cell{{Key: "crash-replay", Custom: func() (any, sim.Time) {
		bed := pmnet.NewTestbed(pmnet.Config{
			Design: pmnet.PMNetSwitch, Clients: 4, Seed: seed,
			Timeout: 50 * sim.Millisecond, // keep clients from re-driving recovery
		})
		// Load updates, then cut the power mid-stream.
		for i := 0; i < 4; i++ {
			i := i
			var issue func(k int)
			issue = func(k int) {
				if k >= 200 {
					return
				}
				key := []byte(fmt.Sprintf("c%d-k%03d", i, k))
				bed.Session(i).SendUpdate(pmnet.PutReq(key, make([]byte, 100)), func(r pmnet.Result) {
					issue(k + 1)
				})
			}
			issue(0)
		}
		bed.RunFor(300 * sim.Microsecond)
		bed.CrashServer()
		bed.RunFor(200 * sim.Microsecond) // clients keep logging into PMNet
		out := recoveryOut{logged: bed.Devices[0].Log().LiveEntries()}
		start := bed.Now()
		bed.RecoverServer()
		bed.Run()
		out.total = bed.Now() - start
		out.resends = bed.Devices[0].Stats().RecoveryResends
		if out.resends > 0 {
			out.perReq = out.total / sim.Time(out.resends)
		}
		out.drained = bed.Devices[0].Log().LiveEntries() == 0
		return out, bed.Now()
	}}}
}

func tpcclockCells(seed uint64) []Cell {
	return []Cell{cfgCell("tpcc", RunConfig{Design: pmnet.PMNetSwitch,
		Workload: WLTPCC, Clients: 4, Requests: 400, Warmup: 0,
		UpdateRatio: 0.88, Seed: seed})}
}

// tailMeasure drives 4 measured updaters — plus, when noisy, 100 background
// readers saturating the server CPU — and returns the update-latency
// distribution.
func tailMeasure(seed uint64, d pmnet.Design, noisy bool) (*stats.Histogram, sim.Time) {
	bed := pmnet.NewTestbed(pmnet.Config{
		Design:  d,
		Clients: 4 + 100, // 4 measured updaters + 100 background readers
		Seed:    seed,
		Handler: pmnet.IdealHandler{Cost: 25 * sim.Microsecond},
	})
	h := stats.NewHistogram()
	for c := 0; c < 4; c++ {
		c := c
		var issue func(k int)
		issue = func(k int) {
			if k >= 300 {
				return
			}
			key := []byte(fmt.Sprintf("m%d-%d", c, k))
			bed.Session(c).SendUpdate(pmnet.PutReq(key, make([]byte, 100)), func(r pmnet.Result) {
				if r.Err == nil && k >= 30 {
					h.Record(r.Latency)
				}
				issue(k + 1)
			})
		}
		issue(0)
	}
	if noisy {
		for c := 4; c < 104; c++ {
			c := c
			var read func(k int)
			read = func(k int) {
				if k >= 400 {
					return
				}
				bed.Session(c).Bypass(pmnet.GetReq([]byte("noise")), func(pmnet.Result) {
					read(k + 1)
				})
			}
			read(0)
		}
	}
	bed.Run()
	return h, bed.Now()
}

func tailCells(seed uint64) []Cell {
	var cells []Cell
	for _, noisy := range []bool{false, true} {
		for _, d := range []pmnet.Design{pmnet.ClientServer, pmnet.PMNetSwitch} {
			d, noisy := d, noisy
			label := "idle"
			if noisy {
				label = "noisy"
			}
			cells = append(cells, Cell{
				Key: fmt.Sprintf("%s/%s", label, designShort(d)),
				Custom: func() (any, sim.Time) {
					h, now := tailMeasure(seed, d, noisy)
					return h, now
				},
			})
		}
	}
	return cells
}
