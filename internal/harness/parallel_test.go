package harness

import (
	"fmt"
	"testing"

	"pmnet/internal/sim"
)

// TestRunCellsOrdering checks that results land in input order regardless of
// pool size, including pools larger than the cell count.
func TestRunCellsOrdering(t *testing.T) {
	var cells []Cell
	for i := 0; i < 10; i++ {
		i := i
		cells = append(cells, Cell{
			Key:    fmt.Sprintf("c%d", i),
			Custom: func() (any, sim.Time) { return i, 0 },
		})
	}
	for _, workers := range []int{1, 3, 32} {
		out := runCells(cells, workers)
		if len(out) != len(cells) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out), len(cells))
		}
		for i, r := range out {
			if r.Key != cells[i].Key || r.V.(int) != i {
				t.Errorf("workers=%d slot %d: got key=%q v=%v", workers, i, r.Key, r.V)
			}
		}
	}
}

// TestRunExperimentsUnknownID checks batch setup rejects bad ids up front.
func TestRunExperimentsUnknownID(t *testing.T) {
	if _, err := RunExperiments([]string{"fig2", "nope"}, Options{Seed: 1}); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

// TestParallelGoldenSmall runs a cheap batch mixing standard and Custom
// cells (fig16 sweep, fig18/fig21 sampled models) at several pool sizes and
// requires byte-identical rendering. TestParallelGoldenAll covers the whole
// suite.
func TestParallelGoldenSmall(t *testing.T) {
	ids := []string{"fig16", "fig18", "fig21"}
	want, err := RunExperiments(ids, Options{Seed: 7, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := RunExperiments(ids, Options{Seed: 7, Parallel: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Experiments {
			w, g := want.Experiments[i].Text(), got.Experiments[i].Text()
			if w != g {
				t.Errorf("workers=%d %s: output differs from sequential:\n--- want ---\n%s\n--- got ---\n%s",
					workers, ids[i], w, g)
			}
		}
	}
}

// TestParallelGoldenAll is the full golden guarantee: every experiment in the
// suite renders byte-identically at -parallel 8 and -parallel 1.
func TestParallelGoldenAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite runs ~40s; skipped in -short mode")
	}
	seq, err := RunExperiments(ExperimentOrder, Options{Seed: 1, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunExperiments(ExperimentOrder, Options{Seed: 1, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par.Parallel != 8 {
		t.Fatalf("resolved pool size = %d, want 8", par.Parallel)
	}
	if len(seq.Experiments) != len(par.Experiments) {
		t.Fatalf("experiment counts differ: %d vs %d", len(seq.Experiments), len(par.Experiments))
	}
	for i := range seq.Experiments {
		s, p := seq.Experiments[i], par.Experiments[i]
		if s.ID != p.ID {
			t.Fatalf("experiment order differs at %d: %q vs %q", i, s.ID, p.ID)
		}
		if st, pt := s.Text(), p.Text(); st != pt {
			t.Errorf("%s: parallel output differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s",
				s.ID, st, pt)
		}
	}
}
