package harness

import (
	"fmt"

	"pmnet"
	"pmnet/internal/arrival"
	"pmnet/internal/openloop"
	"pmnet/internal/sim"
	"pmnet/internal/stats"
)

// reservoirCap sizes the per-client exact-tail sample. Small on purpose: the
// reservoir is a spot check on the histogram's bucketed tail, not a second
// histogram, and per-run memory must stay flat however long the run is.
const reservoirCap = 256

// openSlot is one client's private open-loop measurement state — the same
// single-writer pattern as clientSlot on the sharded closed-loop path: the
// client's engine worker writes it during bed.Run(), the merge loop reads it
// after (the run's join provides the happens-before edge).
type openSlot struct {
	run *stats.Run
	res *stats.Reservoir
	drv *openloop.Driver
}

// buildMix constructs the shared per-run action mix for a workload. Mixes
// are read-only after construction, so one instance serves every client's
// driver even when drivers execute on different shard workers.
func buildMix(cfg *RunConfig) (openloop.Mix, error) {
	switch cfg.Workload {
	case WLTwitter:
		return openloop.NewTwitterMix(cfg.Users, cfg.UpdateRatio, cfg.ValueSize), nil
	case WLTPCC:
		return openloop.NewTPCCMix(cfg.UpdateRatio), nil
	case WLIdeal, WLRedis, WLBTree, WLCTree, WLRBTree, WLHashmap, WLSkiplist:
		return openloop.NewKVMix(cfg.Keys, cfg.ValueSize, cfg.UpdateRatio), nil
	}
	return nil, fmt.Errorf("harness: no open-loop mix for workload %q", cfg.Workload)
}

// runOpenLoop wires per-client open-loop drivers onto the testbed and merges
// their results. Determinism mirrors runSharded: the root rand forks once
// per client in client-index order, each driver draws only from its own
// streams on its own client's engine, and merging consumes slots in
// client-index order — so output is byte-identical across -parallel and
// -shards settings.
//
// The measurement window is [WarmupDur, Duration) by arrival time: an action
// arriving inside the window is measured even if it completes during the
// post-Duration drain, so tail latencies past the knee are not censored.
// Goodput is therefore measured completions over the window length.
func runOpenLoop(cfg *RunConfig, bed *pmnet.Testbed) (*RunResult, error) {
	if cfg.Arrival.Rate != 0 {
		return nil, fmt.Errorf("harness: Arrival.Rate is derived from OfferedLoad; leave it zero")
	}
	// Trace replay swaps the synthetic per-client processes for strided
	// views of one recorded file; everything downstream (driver, window,
	// merge order) is identical.
	var traceFile *arrival.TraceFile
	if cfg.ArrivalTrace != "" {
		if cfg.OfferedLoad > 0 {
			return nil, fmt.Errorf("harness: OfferedLoad and ArrivalTrace are mutually exclusive")
		}
		if cfg.Arrival != (arrival.Config{}) {
			return nil, fmt.Errorf("harness: Arrival must be zero when replaying a trace")
		}
		var err error
		traceFile, err = arrival.ReadTraceFile(cfg.ArrivalTrace)
		if err != nil {
			return nil, fmt.Errorf("harness: arrival trace: %w", err)
		}
	}
	mix, err := buildMix(cfg)
	if err != nil {
		return nil, err
	}
	rootRand := sim.NewRand(cfg.Seed + 177)
	perRate := cfg.OfferedLoad / float64(cfg.Clients)
	usersPer := cfg.Users / cfg.Clients
	if usersPer <= 0 {
		usersPer = 1
	}
	perInFlight := cfg.MaxInFlight / cfg.Clients
	if perInFlight <= 0 {
		perInFlight = 1
	}
	skew := 0.0
	if cfg.Zipfian {
		// Inverse power-law popularity: ~1% of users draw ~30% of actions.
		skew = 4.0
	}

	slots := make([]openSlot, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		r := rootRand.Fork()
		var arr arrival.Source
		if traceFile != nil {
			// The fork for the synthetic process still happens (and is
			// discarded) so trace and synthetic runs consume the root stream
			// identically — switching arrival inputs must not reseed mixes.
			r.Fork()
			arr = traceFile.Client(i, cfg.Clients)
		} else {
			arrCfg := cfg.Arrival
			arrCfg.Rate = perRate
			arr = arrival.New(arrCfg, r.Fork())
		}
		s := &slots[i]
		s.run = stats.NewRun(cfg.WarmupDur)
		s.res = stats.NewReservoir(reservoirCap, r.Uint64())
		base := i * usersPer
		users := usersPer
		if i == cfg.Clients-1 {
			// Last client absorbs the division remainder.
			users = cfg.Users - base
		}
		s.drv = openloop.New(openloop.Config{
			Users:       users,
			UserBase:    base,
			MaxInFlight: perInFlight,
			Skew:        skew,
			Warmup:      cfg.WarmupDur,
			Duration:    cfg.Duration,
		}, bed.Session(i), mix, arr, r, s.run, s.res)
		s.drv.Start(bed.Clients[i].Engine())
	}
	bed.Run()

	run := stats.NewRun(cfg.WarmupDur)
	open := &OpenLoopResult{Reservoir: stats.NewReservoir(reservoirCap, cfg.Seed+178)}
	for i := range slots {
		s := &slots[i]
		open.Stats.Merge(s.drv.Stats())
		open.Reservoir.Merge(s.res)
		run.Requests += s.run.Requests
		run.Hist.Merge(s.run.Hist)
		if s.drv.ActiveSessions() != 0 {
			return nil, fmt.Errorf("harness: client %d finished with %d sessions still active", i, s.drv.ActiveSessions())
		}
	}
	// Goodput semantics: Throughput() = measured completions over the fixed
	// window, regardless of when stragglers drained.
	run.End = cfg.Duration
	var agg = RunResult{Bed: bed, Run: run, Open: open}
	agg.Driver.Completed = open.Requests
	agg.Driver.Updates = open.Updates
	agg.Driver.Bypasses = open.Bypasses
	agg.Driver.LockOps = open.LockOps
	agg.Driver.LockRetries = open.LockRetries
	agg.Driver.Failed = open.FailedReqs
	return &agg, nil
}
