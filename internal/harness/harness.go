// Package harness regenerates every table and figure of the paper's
// evaluation (§VI) on the simulated testbed: one exported function per
// experiment, each returning the rows the paper plots. Absolute numbers
// come from the calibrated latency model (DESIGN.md §5); the comparisons —
// who wins, by what factor, where the crossovers sit — are the
// reproduction targets.
package harness

import (
	"fmt"

	"pmnet"
	"pmnet/internal/apps"
	"pmnet/internal/arrival"
	"pmnet/internal/kv"
	"pmnet/internal/netsim"
	"pmnet/internal/openloop"
	"pmnet/internal/rediskv"
	"pmnet/internal/sim"
	"pmnet/internal/stats"
	"pmnet/internal/trace"
	"pmnet/internal/workload"
)

// Workload identifies a server application + generator pairing from the
// paper's Table of workloads (§VI-A2).
type Workload string

// The paper's workloads.
const (
	WLBTree    Workload = "btree"
	WLCTree    Workload = "ctree"
	WLRBTree   Workload = "rbtree"
	WLHashmap  Workload = "hashmap"
	WLSkiplist Workload = "skiplist"
	WLRedis    Workload = "redis"
	WLTwitter  Workload = "twitter"
	WLTPCC     Workload = "tpcc"
	WLIdeal    Workload = "ideal" // §VI-B1 microbenchmark handler
)

// AllWorkloads lists the application workloads of Figure 19.
var AllWorkloads = []Workload{
	WLBTree, WLCTree, WLRBTree, WLHashmap, WLSkiplist, WLRedis, WLTwitter, WLTPCC,
}

// UpdateRatioUnset is the sentinel for "no update ratio specified": Run
// substitutes the paper's all-update default of 1.0. An explicit 0 requests
// a read-only run.
const UpdateRatioUnset = -1.0

// RunConfig describes one experiment run.
type RunConfig struct {
	Design   pmnet.Design
	Workload Workload
	Clients  int
	Requests int // completed requests per client (after warmup)
	Warmup   int // discarded leading requests per client
	// UpdateRatio is the fraction of requests that are updates, in [0, 1].
	// 0 is a real value — a read-only run. Negative means "unset" and is
	// replaced by the paper's all-update default of 1.0 (UpdateRatioUnset).
	// Earlier versions conflated 0 with unset and silently rewrote it to
	// 1.0, making read-only runs impossible.
	UpdateRatio float64
	ValueSize   int
	Zipfian     bool
	CacheSize   int // in-network read cache entries (0 = off)
	Replication int
	Stacks      pmnet.StackKind
	Seed        uint64
	Keys        int // keyspace (prefilled before measuring)
	// CrossTrafficGbps injects background traffic toward the server for the
	// duration of the run (tail-contention extension experiment).
	CrossTrafficGbps float64
	// Trace, when non-nil, is bound to the run's testbed and records the
	// request-lifecycle event stream (pmnetsim -trace). One tracer per run.
	Trace *trace.Tracer
	// Shards > 0 runs the testbed on the conservative-PDES path with this
	// many engine shards (pmnet.Config.Shards). Results are byte-identical
	// for every Shards ≥ 1; 0 keeps the classic single-engine path.
	Shards int

	// Open-loop mode, selected by OfferedLoad > 0: instead of Clients
	// closed loops issuing Requests each, arrivals are generated at
	// OfferedLoad requests/s of virtual time for Duration, multiplexing
	// Users logical user sessions over the client transports
	// (internal/openloop). Clients still sets the transport count — the
	// offered load and user range are split evenly across them — and
	// Requests/Warmup are ignored in favor of Duration/WarmupDur.
	OfferedLoad float64  // aggregate user actions per second (> 0 = open loop)
	Duration    sim.Time // arrival horizon; default 50 ms
	WarmupDur   sim.Time // measurement window opens here; default Duration/5
	Users       int      // logical user population; default 100000
	// Arrival shapes the process (Kind, burst/diurnal/flash parameters);
	// Rate is derived from OfferedLoad and must be left zero.
	Arrival arrival.Config
	// ArrivalTrace, when set, replays a recorded arrival-timestamp file
	// (arrival.ReadTraceFile format) instead of a synthetic process: client
	// i of n replays the file's timestamps i, i+n, i+2n, … . Selects
	// open-loop mode by itself; mutually exclusive with OfferedLoad, and
	// Arrival must stay zero.
	ArrivalTrace string
	// MaxInFlight caps concurrently active user actions across all clients
	// (excess arrivals are shed, not queued); default 1024.
	MaxInFlight int
	// RetryBackoff enables capped exponential retransmission backoff on the
	// client sessions (pmnet.Config.RetryBackoff) — used by the open-loop
	// experiment so past-knee behavior measures queueing, not a fixed-period
	// retransmission storm.
	RetryBackoff bool

	// Topology selects the switch fabric between the clients and the server
	// rack: "" or "star" (default), "leaf-spine", "fat-tree". Leaves/Spines/
	// Oversub parameterize leaf-spine; FatTreeK the fat-tree arity.
	Topology string
	Leaves   int
	Spines   int
	Oversub  float64
	FatTreeK int

	// Impair applies deterministic link impairments to the client access
	// links (pmnet.Config.Impair); ImpairAckPath restricts them to the
	// ACK-carrying edge→client direction.
	Impair        netsim.Impairments
	ImpairAckPath bool

	// Timeout overrides the client retransmission timeout (default 1 ms) —
	// impairment scenarios shrink it so loss-recovery fits the run window.
	Timeout sim.Time
}

// parseTopology maps the RunConfig topology string to the testbed enum.
func parseTopology(s string) (pmnet.TopologyKind, error) {
	switch s {
	case "", "star":
		return pmnet.StarTopology, nil
	case "leaf-spine":
		return pmnet.LeafSpineTopology, nil
	case "fat-tree":
		return pmnet.FatTreeTopology, nil
	}
	return 0, fmt.Errorf("harness: unknown topology %q (star, leaf-spine, fat-tree)", s)
}

func (c *RunConfig) defaults() {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Requests <= 0 {
		c.Requests = 300
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.Keys <= 0 {
		c.Keys = 2000
	}
	if c.UpdateRatio < 0 {
		c.UpdateRatio = 1.0
	}
	if c.OfferedLoad > 0 || c.ArrivalTrace != "" {
		if c.Duration <= 0 {
			c.Duration = 50 * sim.Millisecond
		}
		if c.WarmupDur <= 0 {
			c.WarmupDur = c.Duration / 5
		}
		if c.Users <= 0 {
			c.Users = 100000
		}
		if c.MaxInFlight <= 0 {
			c.MaxInFlight = 1024
		}
	}
}

// RunResult aggregates one run.
type RunResult struct {
	Run    *stats.Run
	Driver workload.DriverStats
	Bed    *pmnet.Testbed
	// Open is set on open-loop runs only: arrival/admission accounting plus
	// the merged exact-tail reservoir.
	Open *OpenLoopResult
}

// OpenLoopResult carries the open-loop accounting of a run: the Stats are
// summed across clients (peaks take the max), the Reservoir is the
// deterministic merge of the per-client tail samples.
type OpenLoopResult struct {
	openloop.Stats
	Reservoir *stats.Reservoir
}

// buildHandler creates the server application for a workload, returning the
// handler plus a prefill function run before measurement.
func buildHandler(w Workload, cfg *RunConfig) (pmnet.Handler, func(), error) {
	switch w {
	case WLIdeal:
		return pmnet.IdealHandler{}, func() {}, nil
	case WLRedis, WLTwitter:
		arena := kv.NewArena(64 << 20)
		store, err := rediskv.Open(arena)
		if err != nil {
			return nil, nil, err
		}
		h := apps.NewRedisHandler(store, arena)
		prefill := func() {
			if w == WLRedis {
				for i := 0; i < cfg.Keys; i++ {
					if err := store.Set(workload.YCSBKey(i), make([]byte, cfg.ValueSize)); err != nil {
						panic(err)
					}
				}
				return
			}
			// Twitter: seed timelines and a few posts so reads hit data.
			users := 1000
			for u := 0; u < users; u += 7 {
				_ = store.Set([]byte(fmt.Sprintf("post:c%d-1", u)), []byte("seed post"))
				_, _ = store.LPush([]byte(fmt.Sprintf("timeline:%d", u)), []byte(fmt.Sprintf("c%d-1", u)), 100)
			}
			_ = store.Set([]byte("post:latest"), []byte("latest"))
		}
		return h, prefill, nil
	case WLTPCC:
		arena := kv.NewArena(64 << 20)
		engine, err := kv.OpenHashmap(arena)
		if err != nil {
			return nil, nil, err
		}
		h := apps.NewKVHandler(engine, arena)
		prefill := func() {
			for wh := 0; wh < 4; wh++ {
				for it := 0; it < 1000; it++ {
					_ = engine.Put([]byte(fmt.Sprintf("tpcc:stock:%d:%d", wh, it)), []byte("100"))
				}
			}
		}
		return h, prefill, nil
	default: // the five PMDK engines
		factory, ok := kv.Factories[string(w)]
		if !ok {
			return nil, nil, fmt.Errorf("harness: unknown workload %q", w)
		}
		arena := kv.NewArena(128 << 20)
		engine, err := factory(arena)
		if err != nil {
			return nil, nil, err
		}
		h := apps.NewKVHandler(engine, arena)
		prefill := func() {
			for i := 0; i < cfg.Keys; i++ {
				if err := engine.Put(workload.YCSBKey(i), make([]byte, cfg.ValueSize)); err != nil {
					panic(err)
				}
			}
		}
		return h, prefill, nil
	}
}

// buildGenerator creates the per-client request generator.
func buildGenerator(w Workload, cfg *RunConfig, clientID int, r *sim.Rand) workload.Generator {
	switch w {
	case WLTwitter:
		return workload.NewTwitter(r, clientID, workload.TwitterConfig{
			Users:       1000,
			UpdateRatio: cfg.UpdateRatio,
			PostLen:     cfg.ValueSize,
		})
	case WLTPCC:
		return workload.NewTPCC(r, clientID, workload.TPCCConfig{UpdateRatio: cfg.UpdateRatio})
	default:
		return workload.NewYCSB(r, workload.YCSBConfig{
			Keys:        cfg.Keys,
			UpdateRatio: cfg.UpdateRatio,
			ValueSize:   cfg.ValueSize,
			Zipfian:     cfg.Zipfian,
		})
	}
}

// Run executes one experiment run and returns the merged statistics.
func Run(cfg RunConfig) (*RunResult, error) {
	cfg.defaults()
	handler, prefill, err := buildHandler(cfg.Workload, &cfg)
	if err != nil {
		return nil, err
	}
	topo, err := parseTopology(cfg.Topology)
	if err != nil {
		return nil, err
	}
	bed := pmnet.NewTestbed(pmnet.Config{
		Design:           cfg.Design,
		Clients:          cfg.Clients,
		Seed:             cfg.Seed,
		Replication:      cfg.Replication,
		CacheEntries:     cfg.CacheSize,
		Stacks:           cfg.Stacks,
		Handler:          handler,
		CrossTrafficGbps: cfg.CrossTrafficGbps,
		Trace:            cfg.Trace,
		Shards:           cfg.Shards,
		RetryBackoff:     cfg.RetryBackoff,
		Timeout:          cfg.Timeout,
		Topology:         topo,
		Leaves:           cfg.Leaves,
		Spines:           cfg.Spines,
		Oversub:          cfg.Oversub,
		FatTreeK:         cfg.FatTreeK,
		Impair:           cfg.Impair,
		ImpairAckPath:    cfg.ImpairAckPath,
		WorkerBudget:     sharedBudget,
	})
	prefill()
	if cfg.OfferedLoad > 0 || cfg.ArrivalTrace != "" {
		// Open-loop mode works on both testbed paths: drivers live on their
		// client's engine (the global engine classically, the client's
		// partition engine when sharded) and merge in client-index order.
		return runOpenLoop(&cfg, bed)
	}
	if bed.Sharded() {
		// The sharded testbed drives clients on different engines (and worker
		// goroutines), so the single-threaded closure wiring below would race;
		// the sharded driver keeps per-client state and merges afterwards.
		return runSharded(&cfg, bed)
	}

	rootRand := sim.NewRand(cfg.Seed + 77)
	res := &RunResult{Bed: bed}
	run := stats.NewRun(0)
	var agg workload.DriverStats
	remaining := cfg.Clients
	for i := 0; i < cfg.Clients; i++ {
		i := i
		gen := buildGenerator(cfg.Workload, &cfg, i, rootRand.Fork())
		seen := 0
		warm := cfg.Warmup
		d := &workload.Driver{
			Sess: bed.Session(i),
			Gen:  gen,
			Record: func(lat sim.Time, op workload.Op) {
				seen++
				if seen <= warm {
					return
				}
				if run.Requests == 0 {
					run.Start = bed.Now() - lat // measurement window opens post-warmup
				}
				run.Record(lat, bed.Now())
			},
		}
		d.Run(bed.Engine, uint64(cfg.Requests+cfg.Warmup), func(s workload.DriverStats) {
			agg.Completed += s.Completed
			agg.Updates += s.Updates
			agg.Bypasses += s.Bypasses
			agg.LockOps += s.LockOps
			agg.LockRetries += s.LockRetries
			agg.Failed += s.Failed
			remaining--
			if remaining == 0 {
				bed.StopBackground()
			}
		})
	}
	bed.Run()
	if remaining != 0 {
		return nil, fmt.Errorf("harness: %d clients never finished (deadlock?)", remaining)
	}
	res.Run = run
	res.Driver = agg
	return res, nil
}

// mustRun panics on error: experiments treat setup failure as fatal.
func mustRun(cfg RunConfig) *RunResult {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// helpers for formatting ----------------------------------------------------

func us(t sim.Time) string { return fmt.Sprintf("%.2f", t.Micros()) }

func ratio(a, b float64) string { return fmt.Sprintf("%.2fx", a/b) }
