package harness

import (
	"testing"

	"pmnet"
	"pmnet/internal/arrival"
	"pmnet/internal/sim"
)

// traceCfg drives the committed testdata/arrival_trace.txt fixture (48
// arrivals over 2.4 ms, 5-deep burst at 1.0 ms) through the open-loop path.
func traceCfg(seed uint64) RunConfig {
	return RunConfig{
		Design:       pmnet.PMNetSwitch,
		Workload:     WLTwitter,
		Clients:      4,
		Seed:         seed,
		ArrivalTrace: "testdata/arrival_trace.txt",
		Duration:     3 * sim.Millisecond,
		WarmupDur:    500 * sim.Microsecond,
		Users:        2000,
		UpdateRatio:  UpdateRatioUnset,
	}
}

// TestOpenLoopTraceReplayGolden: replaying the committed fixture produces
// exactly the recorded arrival count — no sampling noise — and completes
// every admitted action.
func TestOpenLoopTraceReplayGolden(t *testing.T) {
	res, err := Run(traceCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	open := res.Open
	if open == nil {
		t.Fatal("trace replay returned no OpenLoopResult")
	}
	// Every recorded arrival precedes Duration, so offered is the exact
	// fixture line count — the golden property synthetic processes can't give.
	if open.Offered != 48 {
		t.Errorf("offered = %d, want exactly the 48 recorded arrivals", open.Offered)
	}
	if open.Shed != 0 {
		t.Errorf("shed %d arrivals far below the admission cap", open.Shed)
	}
	if open.Admitted != open.Offered {
		t.Errorf("admitted %d != offered %d", open.Admitted, open.Offered)
	}
	if open.Actions+open.ActionsFailed != open.Admitted {
		t.Errorf("actions %d + failed %d != admitted %d",
			open.Actions, open.ActionsFailed, open.Admitted)
	}
	if open.MeasuredDone == 0 {
		t.Error("no measured completions despite post-warmup arrivals")
	}
}

// TestOpenLoopTraceReplayDeterminism: same fixture, same seed → identical
// results down to the reservoir contents.
func TestOpenLoopTraceReplayDeterminism(t *testing.T) {
	a, err := Run(traceCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(traceCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	compareOpenRuns(t, a, b)
}

// TestOpenLoopTraceReplayShardInvariance: the per-client strided split is a
// pure function of (file, client index, client count), so the sharded path
// stays byte-identical across shard counts under replay too.
func TestOpenLoopTraceReplayShardInvariance(t *testing.T) {
	cfg1 := traceCfg(13)
	cfg1.Shards = 1
	cfg4 := traceCfg(13)
	cfg4.Shards = 4
	a, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	compareOpenRuns(t, a, b)
}

// TestOpenLoopTraceReplayValidation: the trace knob is mutually exclusive
// with synthetic arrival configuration.
func TestOpenLoopTraceReplayValidation(t *testing.T) {
	cfg := traceCfg(17)
	cfg.OfferedLoad = 100000
	if _, err := Run(cfg); err == nil {
		t.Error("OfferedLoad + ArrivalTrace accepted")
	}
	cfg = traceCfg(17)
	cfg.Arrival = arrival.Config{Kind: arrival.MMPP}
	if _, err := Run(cfg); err == nil {
		t.Error("Arrival config + ArrivalTrace accepted")
	}
	cfg = traceCfg(17)
	cfg.ArrivalTrace = "testdata/no_such_trace.txt"
	if _, err := Run(cfg); err == nil {
		t.Error("missing trace file accepted")
	}
}
