package harness

// Rendering for every experiment: the "fold results into the published
// table" half of the former monolithic experiments.go. Renderers run
// single-threaded, after all cells of their experiment have completed, and
// read cells strictly in the order the matching enumerator (enumerate.go)
// produced them — the invariant behind `-parallel N` output being
// byte-identical to the sequential run.

import (
	"fmt"

	"pmnet"
	"pmnet/internal/netsim"
	"pmnet/internal/sim"
	"pmnet/internal/stats"
)

// fig2Render reproduces Figure 2: the latency breakdown of an update request
// in the baseline Client-Server system, showing the server side (kernel
// network stack + request processing) dominating at ≈70%.
func fig2Render(seed uint64, cells []CellResult) Result {
	total := float64(cells[0].Run.Hist.Mean())

	// Component means from the calibrated models (two traversals each for
	// the host stacks, measured handler cost via a probe run).
	clientStack := 2 * float64(netsim.ClientKernelStack.Mean())
	serverStack := 2 * float64(netsim.ServerKernelStack.Mean())
	// Wire: client→tor→server and back: 4 link traversals + 2 switch hops.
	wire := 4*float64(sim.Microsecond) + 2*float64(netsim.DefaultSwitchLatency) +
		4*float64(146*8)/10e9*1e9 // serialization of a ~146B frame at 10G
	processing := total - clientStack - serverStack - wire
	if processing < 0 {
		processing = 0
	}

	t := stats.Table{
		Title:   "Figure 2: Latency breakdown of an update request (Client-Server baseline)",
		Columns: []string{"component", "mean (us)", "share"},
	}
	pct := func(v float64) string { return fmt.Sprintf("%.0f%%", 100*v/total) }
	t.AddRow("client network stack", fmt.Sprintf("%.2f", clientStack/1e3), pct(clientStack))
	t.AddRow("network (wire+switch)", fmt.Sprintf("%.2f", wire/1e3), pct(wire))
	t.AddRow("server network stack", fmt.Sprintf("%.2f", serverStack/1e3), pct(serverStack))
	t.AddRow("server processing", fmt.Sprintf("%.2f", processing/1e3), pct(processing))
	t.AddRow("total RTT", fmt.Sprintf("%.2f", total/1e3), "100%")
	serverShare := (serverStack + processing) / total
	return Result{
		ID:    "fig2",
		Table: t,
		Notes: []string{fmt.Sprintf("server-side share = %.0f%% (paper: ~70%%)", serverShare*100)},
		Metrics: map[string]float64{
			"server_share": serverShare,
			"total_us":     total / 1e3,
		},
	}
}

// fig15Render reproduces Figure 15: update RTT of the ideal request handler
// as payload grows from 50 B to 1000 B, for the three designs. Paper:
// 2.83×/2.90× speedup at 50 B, ≈2.19× at 1000 B.
func fig15Render(seed uint64, cells []CellResult) Result {
	t := stats.Table{
		Title: "Figure 15: Update latency of an ideal request handler vs payload size",
		Columns: []string{"payload (B)", "Client-Server (us)", "PMNet-Switch (us)",
			"PMNet-NIC (us)", "switch speedup", "nic speedup"},
	}
	metrics := map[string]float64{}
	for i, p := range fig15Payloads {
		base := cells[3*i]
		sw := cells[3*i+1]
		nic := cells[3*i+2]
		bm := float64(base.Run.Hist.Mean())
		sm := float64(sw.Run.Hist.Mean())
		nm := float64(nic.Run.Hist.Mean())
		t.AddRow(fmt.Sprintf("%d", p), fmt.Sprintf("%.1f", bm/1e3),
			fmt.Sprintf("%.1f", sm/1e3), fmt.Sprintf("%.1f", nm/1e3),
			ratio(bm, sm), ratio(bm, nm))
		metrics[fmt.Sprintf("speedup_switch_%d", p)] = bm / sm
		metrics[fmt.Sprintf("speedup_nic_%d", p)] = bm / nm
		metrics[fmt.Sprintf("switch_nic_gap_us_%d", p)] = (sm - nm) / 1e3
	}
	return Result{
		ID:    "fig15",
		Table: t,
		Notes: []string{
			"Paper: 2.83x (switch) / 2.90x (NIC) at 50B; ~2.19x at 1000B;",
			"switch-vs-NIC gap under 1us.",
		},
		Metrics: metrics,
	}
}

// fig16Render reproduces Figure 16: bandwidth vs latency as client count
// scales, with the latency spike at the 10 Gbps line rate.
func fig16Render(seed uint64, cells []CellResult) Result {
	t := stats.Table{
		Title: "Figure 16: Bandwidth vs latency under stress (1000B requests)",
		Columns: []string{"clients", "design", "offered Gbps", "mean lat (us)",
			"p99 lat (us)"},
	}
	metrics := map[string]float64{}
	i := 0
	for _, design := range []pmnet.Design{pmnet.ClientServer, pmnet.PMNetSwitch} {
		for _, clients := range fig16Clients {
			res := cells[i]
			i++
			// Offered load: completed requests × wire size / elapsed.
			wire := float64(1000+netsim.UDPOverhead+16) * 8
			gbps := res.Run.Throughput() * wire / 1e9
			t.AddRow(fmt.Sprintf("%d", clients), design.String(),
				fmt.Sprintf("%.2f", gbps),
				us(res.Run.Hist.Mean()), us(res.Run.Hist.Percentile(99)))
			key := fmt.Sprintf("%s_%d", designShort(design), clients)
			metrics["gbps_"+key] = gbps
			metrics["lat_us_"+key] = float64(res.Run.Hist.Mean()) / 1e3
		}
	}
	return Result{
		ID:    "fig16",
		Table: t,
		Notes: []string{
			"Latency flat below saturation, spikes as offered load reaches the",
			"10 Gbps line rate; PMNet latency below baseline throughout.",
		},
		Metrics: metrics,
	}
}

// fig18Render reproduces Figure 18: PMNet vs client-side logging vs
// server-side logging, with and without 3-way replication. The alternative
// designs come from the sampled component models (the "altmodels" cell);
// PMNet runs on the full simulation.
func fig18Render(seed uint64, cells []CellResult) Result {
	alt := cells[0].V.(fig18Alt)
	pmnet1 := float64(cells[1].Run.Hist.Mean())
	pmnet3 := float64(cells[2].Run.Hist.Mean())

	t := stats.Table{
		Title:   "Figure 18: PMNet vs alternative logging designs (mean update latency)",
		Columns: []string{"design", "no repl (us)", "3-way repl (us)"},
	}
	t.AddRow("client-side logging", fmt.Sprintf("%.2f", alt.client/1e3), fmt.Sprintf("%.2f", alt.client3/1e3))
	t.AddRow("PMNet", fmt.Sprintf("%.2f", pmnet1/1e3), fmt.Sprintf("%.2f", pmnet3/1e3))
	t.AddRow("server-side logging", fmt.Sprintf("%.2f", alt.server/1e3), fmt.Sprintf("%.2f", alt.server3/1e3))
	return Result{
		ID:    "fig18",
		Table: t,
		Notes: []string{
			"Paper: 10.4 / 21.5 / 47.97 us without repl; 41.61 / 22.8 / 94.02 with.",
			"Shape: client-side fastest unreplicated, PMNet near-flat under",
			"replication, server-side worst throughout.",
		},
		Metrics: map[string]float64{
			"client_us": alt.client / 1e3, "client3_us": alt.client3 / 1e3,
			"pmnet_us": pmnet1 / 1e3, "pmnet3_us": pmnet3 / 1e3,
			"server_us": alt.server / 1e3, "server3_us": alt.server3 / 1e3,
		},
	}
}

// fig19Render reproduces Figure 19: per-workload throughput of PMNet
// normalized to the Client-Server baseline as the update ratio falls from
// 100% to 25%. Paper: 4.31× average at 100% updates, shrinking with more
// reads.
func fig19Render(seed uint64, cells []CellResult) Result {
	t := stats.Table{
		Title:   "Figure 19: Throughput normalized to Client-Server vs update ratio",
		Columns: []string{"workload", "100%", "75%", "50%", "25%"},
	}
	metrics := map[string]float64{}
	sums := make([]float64, len(fig19Ratios))
	i := 0
	for _, wl := range AllWorkloads {
		row := []string{string(wl)}
		for ri, ratio := range fig19Ratios {
			base := cells[i]
			pm := cells[i+1]
			i += 2
			speedup := pm.Run.Throughput() / base.Run.Throughput()
			row = append(row, fmt.Sprintf("%.2fx", speedup))
			metrics[fmt.Sprintf("%s_%d", wl, int(ratio*100))] = speedup
			sums[ri] += speedup
		}
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for ri := range fig19Ratios {
		mean := sums[ri] / float64(len(AllWorkloads))
		avg = append(avg, fmt.Sprintf("%.2fx", mean))
		metrics[fmt.Sprintf("avg_%d", int(fig19Ratios[ri]*100))] = mean
	}
	t.AddRow(avg...)
	return Result{
		ID:    "fig19",
		Table: t,
		Notes: []string{
			"Paper: 4.31x average at 100% updates; benefit shrinks as the read",
			"share grows (reads bypass PMNet without caching).",
		},
		Metrics: metrics,
	}
}

// fig20Render reproduces Figure 20: request-latency percentiles at 100% and
// 50% updates for Client-Server, PMNet, and PMNet+cache. Paper: 3.36×
// average with caching, 3.23× better 99th percentile at 100% updates, and
// the characteristic 50th-percentile knee for PMNet-without-cache at 50%.
func fig20Render(seed uint64, cells []CellResult) Result {
	t := stats.Table{
		Title: "Figure 20: Request latency distribution (KV workloads, zipfian reads)",
		Columns: []string{"updates", "design", "mean (us)", "p50 (us)",
			"p90 (us)", "p99 (us)"},
	}
	metrics := map[string]float64{}
	i := 0
	for _, ur := range fig20Ratios {
		for _, d := range fig20Variants {
			h := cells[i].Run.Hist
			i++
			t.AddRow(fmt.Sprintf("%.0f%%", ur*100), d.name, us(h.Mean()),
				us(h.Percentile(50)), us(h.Percentile(90)), us(h.Percentile(99)))
			key := fmt.Sprintf("%s_%d", d.name, int(ur*100))
			metrics["mean_us_"+key] = float64(h.Mean()) / 1e3
			metrics["p99_us_"+key] = float64(h.Percentile(99)) / 1e3
			metrics["p90_us_"+key] = float64(h.Percentile(90)) / 1e3
			metrics["p50_us_"+key] = float64(h.Percentile(50)) / 1e3
		}
	}
	return Result{
		ID:    "fig20",
		Table: t,
		Notes: []string{
			"Paper: with 50% updates PMNet-no-cache has a knee at p50 (reads",
			"unoptimized); PMNet+cache keeps the benefit into the tail.",
			"3.36x average, 3.23x p99 at 100% updates.",
		},
		Metrics: metrics,
	}
}

// fig20cdfRender emits the actual cumulative distributions Figure 20 plots
// (50% updates, zipfian reads): one row per decile plus the deep tail, for
// the three designs. Best consumed with `pmnetbench -run fig20cdf -format csv`.
func fig20cdfRender(seed uint64, cells []CellResult) Result {
	t := stats.Table{
		Title:   "Figure 20 (CDF): request latency distribution, 50% updates",
		Columns: []string{"fraction", "Client-Server (us)", "PMNet (us)", "PMNet+cache (us)"},
	}
	hists := make([]*stats.Histogram, 3)
	for i := range hists {
		hists[i] = cells[i].Run.Hist
	}
	fractions := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99, 99.9}
	metrics := map[string]float64{}
	for _, p := range fractions {
		row := []string{fmt.Sprintf("%.1f%%", p)}
		for _, h := range hists {
			row = append(row, us(h.Percentile(p)))
		}
		t.AddRow(row...)
		metrics[fmt.Sprintf("base_p%.1f", p)] = float64(hists[0].Percentile(p)) / 1e3
		metrics[fmt.Sprintf("pmnet_p%.1f", p)] = float64(hists[1].Percentile(p)) / 1e3
		metrics[fmt.Sprintf("cache_p%.1f", p)] = float64(hists[2].Percentile(p)) / 1e3
	}
	return Result{
		ID:    "fig20cdf",
		Table: t,
		Notes: []string{
			"The blue-line knee: PMNet-without-cache tracks the fast path up",
			"to ~p50 then converges to the baseline; the green line (cache)",
			"keeps the gap through the tail.",
		},
		Metrics: metrics,
	}
}

// fig21Render reproduces Figure 21: update latency in a 3-way replication
// system, normalized to the no-replication Client-Server design. Paper:
// PMNet replication 5.88× better than server-side replication; 16% overhead
// over single-PMNet logging.
func fig21Render(seed uint64, cells []CellResult) Result {
	baseMean := float64(cells[0].Run.Hist.Mean())
	pm1Mean := float64(cells[1].Run.Hist.Mean())
	pm3Mean := float64(cells[2].Run.Hist.Mean())
	serverRepl := baseMean + cells[3].V.(float64)

	t := stats.Table{
		Title:   "Figure 21: Update latency with 3-way replication (normalized to no-repl Client-Server)",
		Columns: []string{"design", "latency (us)", "normalized"},
	}
	norm := func(v float64) string { return fmt.Sprintf("%.2f", v/baseMean) }
	t.AddRow("Client-Server (no repl)", fmt.Sprintf("%.2f", baseMean/1e3), "1.00")
	t.AddRow("Server-side 3-way repl", fmt.Sprintf("%.2f", serverRepl/1e3), norm(serverRepl))
	t.AddRow("PMNet (single log)", fmt.Sprintf("%.2f", pm1Mean/1e3), norm(pm1Mean))
	t.AddRow("PMNet 3-way repl", fmt.Sprintf("%.2f", pm3Mean/1e3), norm(pm3Mean))
	return Result{
		ID:    "fig21",
		Table: t,
		Notes: []string{
			fmt.Sprintf("PMNet-repl vs server-repl: %.2fx (paper: 5.88x);", serverRepl/pm3Mean),
			fmt.Sprintf("replication overhead over single PMNet: %.0f%% (paper: 16%%).",
				100*(pm3Mean/pm1Mean-1)),
		},
		Metrics: map[string]float64{
			"pmnet_vs_server_repl": serverRepl / pm3Mean,
			"repl_overhead":        pm3Mean/pm1Mean - 1,
		},
	}
}

// fig22Render reproduces Figure 22: update throughput with the default
// kernel stacks vs libVMA-style bypass stacks. Paper: PMNet wins 3.08× on
// the kernel stack and still 3.56× with bypass stacks.
func fig22Render(seed uint64, cells []CellResult) Result {
	t := stats.Table{
		Title:   "Figure 22: Update throughput with an optimized (kernel-bypass) network stack",
		Columns: []string{"design", "throughput (req/s)", "vs baseline"},
	}
	metrics := map[string]float64{}
	var baseKernel float64
	tp := make([]float64, len(fig22Variants))
	for i, row := range fig22Variants {
		tp[i] = cells[i].Run.Throughput()
		if i == 0 {
			baseKernel = tp[i]
		}
		t.AddRow(row.name, fmt.Sprintf("%.0f", tp[i]), fmt.Sprintf("%.2fx", tp[i]/baseKernel))
	}
	metrics["kernel_speedup"] = tp[1] / tp[0]
	metrics["bypass_speedup"] = tp[3] / tp[2]
	return Result{
		ID:    "fig22",
		Table: t,
		Notes: []string{
			fmt.Sprintf("PMNet speedup: %.2fx on kernel stacks (paper 3.08x), %.2fx with bypass (paper 3.56x).",
				metrics["kernel_speedup"], metrics["bypass_speedup"]),
		},
		Metrics: metrics,
	}
}

// recoveryRender reproduces §VI-B6: crash the server with the PMNet log full
// of unacknowledged updates, restore power, and measure the replay. Paper:
// 67 µs per resent request; full recovery seconds, well under the 2–3 minute
// server boot.
func recoveryRender(seed uint64, cells []CellResult) Result {
	v := cells[0].V.(recoveryOut)
	t := stats.Table{
		Title:   "Recovery from server failure (§VI-B6)",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("log entries at crash", fmt.Sprintf("%d", v.logged))
	t.AddRow("requests replayed", fmt.Sprintf("%d", v.resends))
	t.AddRow("per-request resend", fmt.Sprintf("%.1f us", v.perReq.Micros()))
	t.AddRow("total recovery", fmt.Sprintf("%.2f ms", float64(v.total)/1e6))
	t.AddRow("log drained", fmt.Sprintf("%v", v.drained))
	return Result{
		ID:    "recovery",
		Table: t,
		Notes: []string{"Paper: 67 us per resent request; total recovery a small fraction of the 2-3 min boot."},
		Metrics: map[string]float64{
			"per_request_us": v.perReq.Micros(),
			"replayed":       float64(v.resends),
			"drained":        boolTo01(v.drained),
		},
	}
}

// tpcclockRender reproduces the §III-C statistic: the fraction of TPCC
// requests that access the locking primitive (paper: 13.7%).
func tpcclockRender(seed uint64, cells []CellResult) Result {
	d := cells[0].Driver
	total := d.Updates + d.Bypasses
	frac := float64(d.LockOps) / float64(total)
	t := stats.Table{
		Title:   "TPCC locking primitive usage (§III-C)",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("total requests", fmt.Sprintf("%d", total))
	t.AddRow("lock requests", fmt.Sprintf("%d", d.LockOps))
	t.AddRow("lock fraction", fmt.Sprintf("%.1f%%", frac*100))
	t.AddRow("lock retries", fmt.Sprintf("%d", d.LockRetries))
	return Result{
		ID:    "tpcclock",
		Table: t,
		Notes: []string{"Paper: 13.7% of TPCC requests access the locking primitive."},
		Metrics: map[string]float64{
			"lock_fraction": frac,
		},
	}
}

// tailRender is an extension beyond the paper's figures: it quantifies the
// §I claim that the server is a shared, contended resource whose queueing
// drives tail latency — and that PMNet hides it.
func tailRender(seed uint64, cells []CellResult) Result {
	t := stats.Table{
		Title:   "Extension: update tail latency under server contention",
		Columns: []string{"background", "design", "p50 (us)", "p99 (us)"},
	}
	metrics := map[string]float64{}
	i := 0
	for _, noisy := range []bool{false, true} {
		for _, d := range []pmnet.Design{pmnet.ClientServer, pmnet.PMNetSwitch} {
			h := cells[i].V.(*stats.Histogram)
			i++
			label := "idle"
			if noisy {
				label = "100 read clients"
			}
			t.AddRow(label, d.String(), us(h.Percentile(50)), us(h.Percentile(99)))
			key := fmt.Sprintf("%s_%d", designShort(d), boolToInt(noisy))
			metrics["p99_us_"+key] = float64(h.Percentile(99)) / 1e3
			metrics["p50_us_"+key] = float64(h.Percentile(50)) / 1e3
		}
	}
	return Result{
		ID:    "tail",
		Table: t,
		Notes: []string{
			"Extension experiment (not a paper figure): server-CPU contention",
			"inflates the baseline update tail; PMNet updates complete at the",
			"device, off the contended path.",
		},
		Metrics: metrics,
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
