package harness

import (
	"fmt"
	"testing"

	"pmnet"
)

// These tests assert the *shape* of every reproduced figure: who wins, by
// roughly what factor, and where the crossovers sit — the reproduction
// contract from DESIGN.md.

func TestFig2ServerSideDominates(t *testing.T) {
	r := Fig2Breakdown(1)
	share := r.Metrics["server_share"]
	if share < 0.55 || share > 0.85 {
		t.Fatalf("server-side share %.2f, paper ≈0.70\n%s", share, r.Table.Format())
	}
}

func TestFig15SpeedupShape(t *testing.T) {
	r := Fig15PayloadSweep(2)
	s50 := r.Metrics["speedup_switch_50"]
	s1000 := r.Metrics["speedup_switch_1000"]
	if s50 < 1.8 {
		t.Fatalf("speedup at 50B = %.2f, want ≥1.8 (paper 2.83)\n%s", s50, r.Table.Format())
	}
	if s1000 >= s50 {
		t.Fatalf("speedup must shrink with payload: 50B=%.2f 1000B=%.2f", s50, s1000)
	}
	if s1000 < 1.4 {
		t.Fatalf("speedup at 1000B = %.2f, want ≥1.4 (paper 2.19)", s1000)
	}
	// Switch vs NIC nearly identical (paper: <1µs).
	for _, p := range []int{50, 1000} {
		gap := r.Metrics[fmt.Sprintf("switch_nic_gap_us_%d", p)]
		if gap < 0 {
			gap = -gap
		}
		if gap > 3 {
			t.Fatalf("switch/NIC gap at %dB = %.1fµs, want ≈0", p, gap)
		}
	}
}

func TestFig16SaturationShape(t *testing.T) {
	r := Fig16StressTest(3)
	// Below saturation PMNet latency < baseline.
	if r.Metrics["lat_us_pmnet_4"] >= r.Metrics["lat_us_base_4"] {
		t.Fatalf("PMNet not faster at low load\n%s", r.Table.Format())
	}
	// Latency must spike as the offered load approaches line rate.
	if r.Metrics["lat_us_pmnet_96"] < 2*r.Metrics["lat_us_pmnet_4"] {
		t.Fatalf("no latency spike near saturation: %.1f vs %.1f",
			r.Metrics["lat_us_pmnet_96"], r.Metrics["lat_us_pmnet_4"])
	}
	// Bandwidth is capped near 10 Gbps.
	if r.Metrics["gbps_pmnet_96"] > 11 {
		t.Fatalf("bandwidth %.1f exceeds the 10G line rate", r.Metrics["gbps_pmnet_96"])
	}
	if r.Metrics["gbps_pmnet_96"] < 6 {
		t.Fatalf("bandwidth %.1f never approached line rate", r.Metrics["gbps_pmnet_96"])
	}
}

func TestFig18Ordering(t *testing.T) {
	r := Fig18AltDesigns(4)
	m := r.Metrics
	// Unreplicated: client-side < PMNet < server-side (paper 10.4/21.5/47.97).
	if !(m["client_us"] < m["pmnet_us"] && m["pmnet_us"] < m["server_us"]) {
		t.Fatalf("unreplicated ordering wrong:\n%s", r.Table.Format())
	}
	// Replicated: PMNet < client-side < server-side (paper 22.8/41.61/94.02).
	if !(m["pmnet3_us"] < m["client3_us"] && m["client3_us"] < m["server3_us"]) {
		t.Fatalf("replicated ordering wrong:\n%s", r.Table.Format())
	}
	// PMNet replication nearly free (paper: 21.5 → 22.8).
	if m["pmnet3_us"] > m["pmnet_us"]*1.5 {
		t.Fatalf("PMNet replication overhead too high: %.1f → %.1f", m["pmnet_us"], m["pmnet3_us"])
	}
}

func TestFig19SpeedupShape(t *testing.T) {
	r := fig19(5, 4, 60) // smaller instance for test speed
	avg100 := r.Metrics["avg_100"]
	avg25 := r.Metrics["avg_25"]
	if avg100 < 1.6 {
		t.Fatalf("average speedup at 100%% updates = %.2f, want ≥1.6 (paper 4.31)\n%s",
			avg100, r.Table.Format())
	}
	if avg25 >= avg100 {
		t.Fatalf("speedup must shrink with read share: 100%%=%.2f 25%%=%.2f", avg100, avg25)
	}
	// Every workload must individually benefit at 100% updates.
	for _, wl := range AllWorkloads {
		if s := r.Metrics[string(wl)+"_100"]; s < 1.2 {
			t.Fatalf("workload %s speedup %.2f at 100%% updates", wl, s)
		}
	}
}

func TestFig20CacheShape(t *testing.T) {
	r := Fig20CacheCDF(6)
	m := r.Metrics
	// 100% updates: PMNet mean and p99 well below baseline (paper 3.23x p99).
	if m["mean_us_PMNet_100"] >= m["mean_us_Client-Server_100"] {
		t.Fatalf("PMNet not faster at 100%% updates\n%s", r.Table.Format())
	}
	if m["p99_us_PMNet_100"] >= m["p99_us_Client-Server_100"] {
		t.Fatalf("PMNet p99 not better at 100%% updates\n%s", r.Table.Format())
	}
	// 50% updates: PMNet-without-cache has the p50 knee — its p90 degrades
	// toward baseline — while PMNet+cache keeps p90 low (paper's green line).
	if m["p50_us_PMNet_50"] >= m["p50_us_Client-Server_50"] {
		t.Fatalf("PMNet p50 should beat baseline at 50%% updates")
	}
	if m["p90_us_PMNet+cache_50"] >= m["p90_us_PMNet_50"] {
		// cache must extend the benefit past the knee
		t.Fatalf("cache does not extend benefit past p50 knee:\n%s", r.Table.Format())
	}
	if m["mean_us_PMNet+cache_50"] >= m["mean_us_Client-Server_50"] {
		t.Fatalf("PMNet+cache mean not better than baseline")
	}
}

func TestFig21ReplicationShape(t *testing.T) {
	r := Fig21Replication(7)
	if v := r.Metrics["pmnet_vs_server_repl"]; v < 2.5 {
		t.Fatalf("PMNet repl vs server repl = %.2fx, want ≥2.5 (paper 5.88)\n%s",
			v, r.Table.Format())
	}
	if ov := r.Metrics["repl_overhead"]; ov < 0 || ov > 0.45 {
		t.Fatalf("replication overhead %.0f%%, paper 16%%", ov*100)
	}
}

func TestFig22StackShape(t *testing.T) {
	r := Fig22OptStack(8)
	k := r.Metrics["kernel_speedup"]
	b := r.Metrics["bypass_speedup"]
	if k < 1.5 {
		t.Fatalf("kernel-stack speedup %.2f, want ≥1.5 (paper 3.08)\n%s", k, r.Table.Format())
	}
	if b < 1.2 {
		t.Fatalf("bypass-stack speedup %.2f, want ≥1.2 (paper 3.56)", b)
	}
}

func TestRecoveryShape(t *testing.T) {
	r := RecoveryExperiment(9)
	if r.Metrics["replayed"] == 0 {
		t.Fatalf("nothing replayed\n%s", r.Table.Format())
	}
	if r.Metrics["drained"] != 1 {
		t.Fatalf("log not drained after recovery\n%s", r.Table.Format())
	}
	per := r.Metrics["per_request_us"]
	if per <= 0 || per > 500 {
		t.Fatalf("per-request resend %.1fµs implausible (paper 67µs)", per)
	}
}

func TestTPCCLockFractionReproduced(t *testing.T) {
	r := TPCCLockStats(10)
	f := r.Metrics["lock_fraction"]
	if f < 0.10 || f > 0.18 {
		t.Fatalf("lock fraction %.3f, paper 0.137\n%s", f, r.Table.Format())
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	_, err := Run(RunConfig{Design: pmnet.ClientServer, Workload: "nope"})
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in long mode only")
	}
	for _, id := range ExperimentOrder {
		fn := Experiments[id]
		if fn == nil {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
}

func TestTailContentionShape(t *testing.T) {
	r := TailContention(11)
	m := r.Metrics
	// Server contention must inflate the baseline p99 substantially...
	if m["p99_us_base_1"] < m["p99_us_base_0"]*1.3 {
		t.Fatalf("baseline p99 not inflated by contention: %.1f → %.1f\n%s",
			m["p99_us_base_0"], m["p99_us_base_1"], r.Table.Format())
	}
	// ...while PMNet p99 stays close to its uncontended value.
	if m["p99_us_pmnet_1"] > m["p99_us_pmnet_0"]*1.5 {
		t.Fatalf("PMNet p99 degraded under contention: %.1f → %.1f\n%s",
			m["p99_us_pmnet_0"], m["p99_us_pmnet_1"], r.Table.Format())
	}
	// And the contended gap is large.
	if m["p99_us_base_1"] < 2*m["p99_us_pmnet_1"] {
		t.Fatalf("contended tail gap too small\n%s", r.Table.Format())
	}
}

func TestFig20CDFKneeShape(t *testing.T) {
	r := Fig20FullCDF(12)
	m := r.Metrics
	// Below the knee (p30) PMNet-no-cache rides the fast path...
	if m["pmnet_p30.0"] > m["base_p30.0"]*0.6 {
		t.Fatalf("PMNet p30 %.1f not well below baseline %.1f\n%s",
			m["pmnet_p30.0"], m["base_p30.0"], r.Table.Format())
	}
	// ...above it (p80) it converges toward the baseline (within 25%)...
	if m["pmnet_p80.0"] < m["base_p80.0"]*0.75 {
		t.Fatalf("no knee: PMNet p80 %.1f vs baseline %.1f\n%s",
			m["pmnet_p80.0"], m["base_p80.0"], r.Table.Format())
	}
	// ...while the cache keeps a wide gap at p80.
	if m["cache_p80.0"] > m["base_p80.0"]*0.6 {
		t.Fatalf("cache line not holding: p80 %.1f vs baseline %.1f\n%s",
			m["cache_p80.0"], m["base_p80.0"], r.Table.Format())
	}
}
