package harness

import (
	"runtime"
	"testing"

	"pmnet"
	"pmnet/internal/arrival"
	"pmnet/internal/sim"
)

func openCfg(seed uint64) RunConfig {
	return RunConfig{
		Design:      pmnet.PMNetSwitch,
		Workload:    WLTwitter,
		Clients:     4,
		Seed:        seed,
		Zipfian:     true,
		OfferedLoad: 200000,
		Duration:    20 * sim.Millisecond,
		WarmupDur:   4 * sim.Millisecond,
		Users:       20000,
		UpdateRatio: UpdateRatioUnset,
	}
}

func TestOpenLoopSmoke(t *testing.T) {
	res, err := Run(openCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	open := res.Open
	if open == nil {
		t.Fatal("open-loop run returned no OpenLoopResult")
	}
	// 200k/s over 20 ms ≈ 4000 arrivals (Poisson noise on top).
	if open.Offered < 3000 || open.Offered > 5000 {
		t.Errorf("offered = %d, want ≈4000", open.Offered)
	}
	if open.MeasuredDone == 0 || res.Run.Requests == 0 {
		t.Fatalf("no measured completions: %+v", open.Stats)
	}
	if res.Run.Requests != open.MeasuredDone {
		t.Errorf("run.Requests %d != MeasuredDone %d", res.Run.Requests, open.MeasuredDone)
	}
	if res.Run.Throughput() <= 0 {
		t.Error("goodput not computed")
	}
	if open.PeakSessions > open.PeakActive {
		t.Errorf("session table (%d) larger than in-flight actions (%d)",
			open.PeakSessions, open.PeakActive)
	}
	if open.Reservoir.Len() == 0 {
		t.Error("empty tail reservoir")
	}
	// Below the knee at this load: nearly nothing shed.
	if open.Shed > open.Offered/10 {
		t.Errorf("shed %d of %d at moderate load", open.Shed, open.Offered)
	}
}

// TestOpenLoopDeterminism: identical configs must produce identical results —
// including the exact reservoir contents — on the classic path.
func TestOpenLoopDeterminism(t *testing.T) {
	a, err := Run(openCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(openCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	compareOpenRuns(t, a, b)
}

// TestOpenLoopShardInvariance: the sharded path must be byte-identical for
// every shard count (the -shards 1 vs 4 CI diff bottoms out here).
func TestOpenLoopShardInvariance(t *testing.T) {
	cfg1 := openCfg(13)
	cfg1.Shards = 1
	cfg4 := openCfg(13)
	cfg4.Shards = 4
	a, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	compareOpenRuns(t, a, b)
}

func compareOpenRuns(t *testing.T, a, b *RunResult) {
	t.Helper()
	if a.Open.Stats != b.Open.Stats {
		t.Errorf("open stats diverged:\n  a=%+v\n  b=%+v", a.Open.Stats, b.Open.Stats)
	}
	if a.Run.Requests != b.Run.Requests {
		t.Errorf("requests %d != %d", a.Run.Requests, b.Run.Requests)
	}
	for _, p := range []float64{50, 99, 99.9, 100} {
		if av, bv := a.Run.Hist.Percentile(p), b.Run.Hist.Percentile(p); av != bv {
			t.Errorf("p%g: %v != %v", p, av, bv)
		}
	}
	as, bs := a.Open.Reservoir.Samples(), b.Open.Reservoir.Samples()
	if len(as) != len(bs) {
		t.Fatalf("reservoir sizes %d != %d", len(as), len(bs))
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("reservoir sample %d: %v != %v", i, as[i], bs[i])
		}
	}
}

// TestOpenLoopArrivalKinds: every arrival process runs end to end through
// the harness.
func TestOpenLoopArrivalKinds(t *testing.T) {
	for _, kind := range []arrival.Kind{arrival.MMPP, arrival.Diurnal, arrival.Flash} {
		cfg := openCfg(17)
		cfg.Arrival.Kind = kind
		cfg.Duration = 10 * sim.Millisecond
		cfg.WarmupDur = 2 * sim.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Open.MeasuredDone == 0 {
			t.Errorf("%v: no measured completions", kind)
		}
	}
}

// TestOpenLoopMemoryFlat is the scale assertion behind "a million users is a
// config number": live state is O(active sessions), never O(users). It runs
// the same offered load against a 10× larger user population and asserts
// (a) the active-session table stays bounded by the admission cap, and
// (b) retained heap does not grow with the user count.
// `make openloop-smoke` runs exactly this test.
func TestOpenLoopMemoryFlat(t *testing.T) {
	heapAfterRun := func(users int) (uint64, *OpenLoopResult) {
		cfg := openCfg(23)
		cfg.Users = users
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		open := res.Open
		res = nil
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc, open
	}
	small, openS := heapAfterRun(10000)
	big, openB := heapAfterRun(100000)

	if openB.PeakActive > 1024 { // RunConfig.MaxInFlight default
		t.Errorf("peak active %d exceeds the admission cap", openB.PeakActive)
	}
	if openB.PeakSessions > openB.PeakActive {
		t.Errorf("session table peak %d > active peak %d", openB.PeakSessions, openB.PeakActive)
	}
	if openB.MeasuredDone == 0 || openS.MeasuredDone == 0 {
		t.Fatal("no completions")
	}
	// 10× the users must not grow retained heap: allow 8 MB of GC noise,
	// which is far below any O(users) footprint (100k users × even 100 B
	// of per-user state would be 10 MB on its own).
	const ceiling = 8 << 20
	if big > small+ceiling {
		t.Errorf("heap grew with user count: %d B at 10k users → %d B at 100k (Δ %d B > %d B ceiling)",
			small, big, big-small, uint64(ceiling))
	}
	t.Logf("heap after run: 10k users = %d B, 100k users = %d B; peak sessions = %d",
		small, big, openB.PeakSessions)
}
