package harness

import "testing"

// renderImpairments runs a scaled-down impairment matrix with every Cfg cell
// forced to the given shard count (0 = classic single-engine path) on a pool
// of the given size, and returns the rendered text.
func renderImpairments(t *testing.T, seed uint64, shards, workers int) string {
	t.Helper()
	spec := impairmentsSpec(4, 40)
	cells := spec.Enumerate(seed)
	if shards > 0 {
		for i := range cells {
			if cells[i].Cfg != nil {
				cells[i].Cfg.Shards = shards
			}
		}
	}
	results := runCells(cells, workers)
	for _, c := range results {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
	}
	return spec.Render(seed, results).Text()
}

// The scorecard must be byte-identical across shard counts (PDES determinism:
// impairment draws come from per-link RNG streams owned by the sending
// partition) and across worker-pool sizes (cells are independent).
func TestImpairmentsByteIdentity(t *testing.T) {
	want := renderImpairments(t, 11, 1, 1)
	for _, tc := range []struct{ shards, workers int }{
		{1, 8}, {2, 1}, {4, 1}, {4, 8},
	} {
		got := renderImpairments(t, 11, tc.shards, tc.workers)
		if got != want {
			t.Errorf("shards=%d workers=%d diverged:\n--- shards=1 workers=1\n%s\n--- got\n%s",
				tc.shards, tc.workers, want, got)
		}
	}
}

// The matrix must include at least one scenario in each verdict class — the
// experiment exists to show where early-ACK stops winning, not only that it
// wins.
func TestImpairmentsVerdictSpread(t *testing.T) {
	res := RunSpec(impairmentsSpec(4, 40), 11, 4)
	wins, degrades := 0, 0
	for _, sc := range impairScenarios {
		s := res.Metrics["speedup_"+sc.key]
		if s == 0 {
			t.Fatalf("scenario %s missing speedup metric", sc.key)
		}
		switch impairVerdict(s) {
		case "pmnet":
			wins++
		case "degrades":
			degrades++
		}
	}
	if wins == 0 || degrades == 0 {
		t.Fatalf("verdict spread wins=%d degrades=%d; matrix must show both", wins, degrades)
	}
	if res.Metrics["speedup_clean"] < 1.5 {
		t.Fatalf("clean speedup %.2f, want the paper's early-ACK win", res.Metrics["speedup_clean"])
	}
}
