package harness

import (
	"fmt"
	"testing"
	"time"

	"pmnet"
)

// TestFig19AllCellsTerminate is the regression guard for the TPCC
// stranded-lock livelock: every (workload, ratio, design) cell of the
// full-size Figure 19 sweep must terminate.
func TestFig19AllCellsTerminate(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, wl := range AllWorkloads {
		for _, ratio := range []float64{1.0, 0.75, 0.5, 0.25} {
			for _, d := range []pmnet.Design{pmnet.ClientServer, pmnet.PMNetSwitch} {
				wl, ratio, d := wl, ratio, d
				done := make(chan struct{})
				start := time.Now()
				go func() {
					defer close(done)
					mustRun(RunConfig{Design: d, Workload: wl, Clients: 16,
						Requests: 150, Warmup: 20, UpdateRatio: ratio, Seed: 1})
				}()
				select {
				case <-done:
					if el := time.Since(start); el > 2*time.Second {
						fmt.Printf("SLOW %s %v %.2f: %v\n", wl, d, ratio, el)
					}
				case <-time.After(15 * time.Second):
					t.Fatalf("HANG: %s %v ratio %.2f", wl, d, ratio)
				}
			}
		}
	}
}
