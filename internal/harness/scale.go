package harness

// The "scale" experiment: the Fig16 saturation scenario on the sharded
// (conservative-PDES) execution path, swept across client fan-in. The cells
// pin Shards to 1 at enumeration time, so the experiment ALWAYS runs the
// sharded scheduler and its rendered output is byte-identical no matter what
// -shards value (or Options.Shards override) the batch runs with — the
// wall-clock scaling lives in the perf block and the BENCH artifacts, never
// in the tables. EXPERIMENTS.md's "Scaling a single scenario" section shows
// how to read the speedup out of two BENCH JSONs with cmd/benchdiff.

import (
	"fmt"

	"pmnet"
	"pmnet/internal/netsim"
	"pmnet/internal/stats"
)

var scaleClients = []int{8, 32, 96}

func scaleCells(seed uint64) []Cell {
	var cells []Cell
	for _, clients := range scaleClients {
		cells = append(cells, cfgCell(fmt.Sprintf("%d", clients), RunConfig{
			Design: pmnet.PMNetSwitch, Workload: WLIdeal, Clients: clients,
			Requests: 150, Warmup: 10, ValueSize: 1000, UpdateRatio: 1,
			Seed: seed, Shards: 1,
		}))
	}
	return cells
}

func scaleRender(seed uint64, cells []CellResult) Result {
	t := stats.Table{
		Title: "Scale: sharded saturation scenario (PMNet switch, 1000B updates)",
		Columns: []string{"clients", "partitions", "offered Gbps",
			"mean lat (us)", "p99 lat (us)", "events"},
	}
	metrics := map[string]float64{}
	for i, clients := range scaleClients {
		res := cells[i]
		parts := uint64(0)
		for _, c := range res.Counters {
			if c.Name == "sim.partitions" {
				parts = c.Value
			}
		}
		wire := float64(1000+netsim.UDPOverhead+16) * 8
		gbps := res.Run.Throughput() * wire / 1e9
		t.AddRow(fmt.Sprintf("%d", clients), fmt.Sprintf("%d", parts),
			fmt.Sprintf("%.2f", gbps),
			us(res.Run.Hist.Mean()), us(res.Run.Hist.Percentile(99)),
			fmt.Sprintf("%d", res.Events))
		metrics[fmt.Sprintf("gbps_%d", clients)] = gbps
		metrics[fmt.Sprintf("partitions_%d", clients)] = float64(parts)
	}
	return Result{
		ID:    "scale",
		Table: t,
		Notes: []string{
			"Cells run on the conservative-PDES path; output is byte-identical",
			"for every -shards value. Wall-clock scaling: compare BENCH JSONs",
			"from `pmnetbench -run scale -shards 1|4 -json` with cmd/benchdiff.",
		},
		Metrics: metrics,
	}
}
