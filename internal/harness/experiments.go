package harness

import (
	"fmt"

	"pmnet"
	"pmnet/internal/netsim"
	"pmnet/internal/sim"
	"pmnet/internal/stats"
)

// Result is one regenerated figure/table.
type Result struct {
	ID    string // "fig2", "fig15", ...
	Table stats.Table
	Notes []string
	// Metrics exposes headline numbers for tests and EXPERIMENTS.md
	// (e.g. "speedup_100pct": 4.31).
	Metrics map[string]float64
}

// Experiments maps experiment IDs to their runners (cheap defaults; the
// benchmarks run larger instances).
var Experiments = map[string]func(seed uint64) Result{
	"fig2":     Fig2Breakdown,
	"fig15":    Fig15PayloadSweep,
	"fig16":    Fig16StressTest,
	"fig18":    Fig18AltDesigns,
	"fig19":    Fig19Throughput,
	"fig20":    Fig20CacheCDF,
	"fig21":    Fig21Replication,
	"fig22":    Fig22OptStack,
	"recovery": RecoveryExperiment,
	"tpcclock": TPCCLockStats,
	"tail":     TailContention,
	"fig20cdf": Fig20FullCDF,
}

// ExperimentOrder lists experiments in the paper's presentation order.
var ExperimentOrder = []string{
	"fig2", "fig15", "fig16", "fig18", "fig19", "fig20", "fig20cdf", "fig21",
	"fig22", "recovery", "tpcclock", "tail",
}

// Fig2Breakdown reproduces Figure 2: the latency breakdown of an update
// request in the baseline Client-Server system, showing the server side
// (kernel network stack + request processing) dominating at ≈70%.
func Fig2Breakdown(seed uint64) Result {
	res := mustRun(RunConfig{
		Design: pmnet.ClientServer, Workload: WLHashmap,
		Clients: 1, Requests: 800, Warmup: 50, UpdateRatio: 1.0, Seed: seed,
	})
	total := float64(res.Run.Hist.Mean())

	// Component means from the calibrated models (two traversals each for
	// the host stacks, measured handler cost via a probe run).
	clientStack := 2 * float64(netsim.ClientKernelStack.Mean())
	serverStack := 2 * float64(netsim.ServerKernelStack.Mean())
	// Wire: client→tor→server and back: 4 link traversals + 2 switch hops.
	wire := 4*float64(sim.Microsecond) + 2*float64(netsim.DefaultSwitchLatency) +
		4*float64(146*8)/10e9*1e9 // serialization of a ~146B frame at 10G
	processing := total - clientStack - serverStack - wire
	if processing < 0 {
		processing = 0
	}

	t := stats.Table{
		Title:   "Figure 2: Latency breakdown of an update request (Client-Server baseline)",
		Columns: []string{"component", "mean (us)", "share"},
	}
	pct := func(v float64) string { return fmt.Sprintf("%.0f%%", 100*v/total) }
	t.AddRow("client network stack", fmt.Sprintf("%.2f", clientStack/1e3), pct(clientStack))
	t.AddRow("network (wire+switch)", fmt.Sprintf("%.2f", wire/1e3), pct(wire))
	t.AddRow("server network stack", fmt.Sprintf("%.2f", serverStack/1e3), pct(serverStack))
	t.AddRow("server processing", fmt.Sprintf("%.2f", processing/1e3), pct(processing))
	t.AddRow("total RTT", fmt.Sprintf("%.2f", total/1e3), "100%")
	serverShare := (serverStack + processing) / total
	return Result{
		ID:    "fig2",
		Table: t,
		Notes: []string{fmt.Sprintf("server-side share = %.0f%% (paper: ~70%%)", serverShare*100)},
		Metrics: map[string]float64{
			"server_share": serverShare,
			"total_us":     total / 1e3,
		},
	}
}

// Fig15PayloadSweep reproduces Figure 15: update RTT of the ideal request
// handler as payload grows from 50 B to 1000 B, for the three designs.
// Paper: 2.83×/2.90× speedup at 50 B, ≈2.19× at 1000 B.
func Fig15PayloadSweep(seed uint64) Result {
	payloads := []int{50, 100, 200, 400, 600, 800, 1000}
	t := stats.Table{
		Title: "Figure 15: Update latency of an ideal request handler vs payload size",
		Columns: []string{"payload (B)", "Client-Server (us)", "PMNet-Switch (us)",
			"PMNet-NIC (us)", "switch speedup", "nic speedup"},
	}
	metrics := map[string]float64{}
	for _, p := range payloads {
		base := mustRun(RunConfig{Design: pmnet.ClientServer, Workload: WLIdeal,
			Requests: 600, Warmup: 50, ValueSize: p, UpdateRatio: 1, Seed: seed})
		sw := mustRun(RunConfig{Design: pmnet.PMNetSwitch, Workload: WLIdeal,
			Requests: 600, Warmup: 50, ValueSize: p, UpdateRatio: 1, Seed: seed})
		nic := mustRun(RunConfig{Design: pmnet.PMNetNIC, Workload: WLIdeal,
			Requests: 600, Warmup: 50, ValueSize: p, UpdateRatio: 1, Seed: seed})
		bm := float64(base.Run.Hist.Mean())
		sm := float64(sw.Run.Hist.Mean())
		nm := float64(nic.Run.Hist.Mean())
		t.AddRow(fmt.Sprintf("%d", p), fmt.Sprintf("%.1f", bm/1e3),
			fmt.Sprintf("%.1f", sm/1e3), fmt.Sprintf("%.1f", nm/1e3),
			ratio(bm, sm), ratio(bm, nm))
		metrics[fmt.Sprintf("speedup_switch_%d", p)] = bm / sm
		metrics[fmt.Sprintf("speedup_nic_%d", p)] = bm / nm
		metrics[fmt.Sprintf("switch_nic_gap_us_%d", p)] = (sm - nm) / 1e3
	}
	return Result{
		ID:    "fig15",
		Table: t,
		Notes: []string{
			"Paper: 2.83x (switch) / 2.90x (NIC) at 50B; ~2.19x at 1000B;",
			"switch-vs-NIC gap under 1us.",
		},
		Metrics: metrics,
	}
}

// Fig16StressTest reproduces Figure 16: bandwidth vs latency as client
// count scales, with the latency spike at the 10 Gbps line rate.
func Fig16StressTest(seed uint64) Result {
	t := stats.Table{
		Title: "Figure 16: Bandwidth vs latency under stress (1000B requests)",
		Columns: []string{"clients", "design", "offered Gbps", "mean lat (us)",
			"p99 lat (us)"},
	}
	metrics := map[string]float64{}
	for _, design := range []pmnet.Design{pmnet.ClientServer, pmnet.PMNetSwitch} {
		for _, clients := range []int{1, 4, 16, 32, 64, 96} {
			res := mustRun(RunConfig{
				Design: design, Workload: WLIdeal, Clients: clients,
				Requests: 250, Warmup: 20, ValueSize: 1000, UpdateRatio: 1, Seed: seed,
			})
			// Offered load: completed requests × wire size / elapsed.
			wire := float64(1000+netsim.UDPOverhead+16) * 8
			gbps := res.Run.Throughput() * wire / 1e9
			t.AddRow(fmt.Sprintf("%d", clients), design.String(),
				fmt.Sprintf("%.2f", gbps),
				us(res.Run.Hist.Mean()), us(res.Run.Hist.Percentile(99)))
			key := fmt.Sprintf("%s_%d", map[pmnet.Design]string{
				pmnet.ClientServer: "base", pmnet.PMNetSwitch: "pmnet"}[design], clients)
			metrics["gbps_"+key] = gbps
			metrics["lat_us_"+key] = float64(res.Run.Hist.Mean()) / 1e3
		}
	}
	return Result{
		ID:    "fig16",
		Table: t,
		Notes: []string{
			"Latency flat below saturation, spikes as offered load reaches the",
			"10 Gbps line rate; PMNet latency below baseline throughout.",
		},
		Metrics: metrics,
	}
}

// Fig18AltDesigns reproduces Figure 18: PMNet vs client-side logging vs
// server-side logging, with and without 3-way replication. The alternative
// designs are composed from the same calibrated component models
// (client-side logging per [4], server-side logging per [56]); PMNet and
// the baseline run on the full simulation.
func Fig18AltDesigns(seed uint64) Result {
	r := sim.NewRand(seed + 5)
	const n = 2000
	sample := func(fn func() float64) float64 {
		var sum float64
		for i := 0; i < n; i++ {
			sum += fn()
		}
		return sum / n
	}
	pmWrite := 313.0 // ns: 273 media + serialization of ~100B
	// Client-side logging: app → local logger process round trip (two
	// client-stack traversals) + PM write.
	clientLog := sample(func() float64 {
		return float64(netsim.ClientKernelStack.Sample(r)) +
			float64(netsim.ClientKernelStack.Sample(r)) + pmWrite
	})
	// +3-way replication: ship the log to two peer clients in parallel
	// (client stack out, wire, peer stack in, and back); the client
	// proceeds when the slower peer has confirmed.
	peerRTT := func() float64 {
		return 2*float64(netsim.ClientKernelStack.Sample(r)) +
			2*float64(netsim.ClientKernelStack.Sample(r)) +
			4*float64(sim.Microsecond)
	}
	clientLog3 := sample(func() float64 {
		a, b := peerRTT(), peerRTT()
		if b > a {
			a = b
		}
		return float64(netsim.ClientKernelStack.Sample(r)) +
			float64(netsim.ClientKernelStack.Sample(r)) + pmWrite + a
	})
	// Server-side logging: full network path; the server logs at the edge
	// of its stack and acks immediately (processing off the path).
	wire := 4*float64(sim.Microsecond) + 2*float64(netsim.DefaultSwitchLatency)
	serverLog := sample(func() float64 {
		return 2*float64(netsim.ClientKernelStack.Sample(r)) +
			2*float64(netsim.ServerKernelStack.Sample(r)) + wire + pmWrite
	})
	// +replication: the primary synchronously ships the log to a replica
	// server before acking (server↔server RTT).
	serverLog3 := sample(func() float64 {
		return 2*float64(netsim.ClientKernelStack.Sample(r)) +
			2*float64(netsim.ServerKernelStack.Sample(r)) + wire + pmWrite +
			2*float64(netsim.ServerKernelStack.Sample(r)) + wire + pmWrite
	})

	pm1 := mustRun(RunConfig{Design: pmnet.PMNetSwitch, Workload: WLIdeal,
		Requests: 800, Warmup: 50, UpdateRatio: 1, Seed: seed})
	pm3 := mustRun(RunConfig{Design: pmnet.PMNetSwitch, Workload: WLIdeal,
		Requests: 800, Warmup: 50, UpdateRatio: 1, Replication: 3, Seed: seed})

	pmnet1 := float64(pm1.Run.Hist.Mean())
	pmnet3 := float64(pm3.Run.Hist.Mean())

	t := stats.Table{
		Title:   "Figure 18: PMNet vs alternative logging designs (mean update latency)",
		Columns: []string{"design", "no repl (us)", "3-way repl (us)"},
	}
	t.AddRow("client-side logging", fmt.Sprintf("%.2f", clientLog/1e3), fmt.Sprintf("%.2f", clientLog3/1e3))
	t.AddRow("PMNet", fmt.Sprintf("%.2f", pmnet1/1e3), fmt.Sprintf("%.2f", pmnet3/1e3))
	t.AddRow("server-side logging", fmt.Sprintf("%.2f", serverLog/1e3), fmt.Sprintf("%.2f", serverLog3/1e3))
	return Result{
		ID:    "fig18",
		Table: t,
		Notes: []string{
			"Paper: 10.4 / 21.5 / 47.97 us without repl; 41.61 / 22.8 / 94.02 with.",
			"Shape: client-side fastest unreplicated, PMNet near-flat under",
			"replication, server-side worst throughout.",
		},
		Metrics: map[string]float64{
			"client_us": clientLog / 1e3, "client3_us": clientLog3 / 1e3,
			"pmnet_us": pmnet1 / 1e3, "pmnet3_us": pmnet3 / 1e3,
			"server_us": serverLog / 1e3, "server3_us": serverLog3 / 1e3,
		},
	}
}

// Fig19Throughput reproduces Figure 19: per-workload throughput of PMNet
// normalized to the Client-Server baseline as the update ratio falls from
// 100% to 25%. Paper: 4.31× average at 100% updates, shrinking with more
// reads.
func Fig19Throughput(seed uint64) Result {
	return fig19(seed, 16, 150)
}

func fig19(seed uint64, clients, requests int) Result {
	ratios := []float64{1.0, 0.75, 0.5, 0.25}
	t := stats.Table{
		Title:   "Figure 19: Throughput normalized to Client-Server vs update ratio",
		Columns: []string{"workload", "100%", "75%", "50%", "25%"},
	}
	metrics := map[string]float64{}
	sums := make([]float64, len(ratios))
	for _, wl := range AllWorkloads {
		row := []string{string(wl)}
		for ri, ratio := range ratios {
			base := mustRun(RunConfig{Design: pmnet.ClientServer, Workload: wl,
				Clients: clients, Requests: requests, Warmup: 20,
				UpdateRatio: ratio, Seed: seed})
			pm := mustRun(RunConfig{Design: pmnet.PMNetSwitch, Workload: wl,
				Clients: clients, Requests: requests, Warmup: 20,
				UpdateRatio: ratio, Seed: seed})
			speedup := pm.Run.Throughput() / base.Run.Throughput()
			row = append(row, fmt.Sprintf("%.2fx", speedup))
			metrics[fmt.Sprintf("%s_%d", wl, int(ratio*100))] = speedup
			sums[ri] += speedup
		}
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for ri := range ratios {
		mean := sums[ri] / float64(len(AllWorkloads))
		avg = append(avg, fmt.Sprintf("%.2fx", mean))
		metrics[fmt.Sprintf("avg_%d", int(ratios[ri]*100))] = mean
	}
	t.AddRow(avg...)
	return Result{
		ID:    "fig19",
		Table: t,
		Notes: []string{
			"Paper: 4.31x average at 100% updates; benefit shrinks as the read",
			"share grows (reads bypass PMNet without caching).",
		},
		Metrics: metrics,
	}
}

// Fig20CacheCDF reproduces Figure 20: request-latency CDFs at 100% and 50%
// updates for Client-Server, PMNet, and PMNet+cache. Paper: 3.36× average
// with caching, 3.23× better 99th percentile at 100% updates, and the
// characteristic 50th-percentile knee for PMNet-without-cache at 50%.
func Fig20CacheCDF(seed uint64) Result {
	t := stats.Table{
		Title: "Figure 20: Request latency distribution (KV workloads, zipfian reads)",
		Columns: []string{"updates", "design", "mean (us)", "p50 (us)",
			"p90 (us)", "p99 (us)"},
	}
	metrics := map[string]float64{}
	for _, ur := range []float64{1.0, 0.5} {
		for _, d := range []struct {
			name  string
			des   pmnet.Design
			cache int
		}{
			{"Client-Server", pmnet.ClientServer, 0},
			{"PMNet", pmnet.PMNetSwitch, 0},
			{"PMNet+cache", pmnet.PMNetSwitch, 4096},
		} {
			res := mustRun(RunConfig{
				Design: d.des, Workload: WLHashmap, Clients: 4,
				Requests: 400, Warmup: 40, UpdateRatio: ur, Zipfian: true,
				CacheSize: d.cache, Keys: 1000, Seed: seed,
			})
			h := res.Run.Hist
			t.AddRow(fmt.Sprintf("%.0f%%", ur*100), d.name, us(h.Mean()),
				us(h.Percentile(50)), us(h.Percentile(90)), us(h.Percentile(99)))
			key := fmt.Sprintf("%s_%d", d.name, int(ur*100))
			metrics["mean_us_"+key] = float64(h.Mean()) / 1e3
			metrics["p99_us_"+key] = float64(h.Percentile(99)) / 1e3
			metrics["p90_us_"+key] = float64(h.Percentile(90)) / 1e3
			metrics["p50_us_"+key] = float64(h.Percentile(50)) / 1e3
		}
	}
	return Result{
		ID:    "fig20",
		Table: t,
		Notes: []string{
			"Paper: with 50% updates PMNet-no-cache has a knee at p50 (reads",
			"unoptimized); PMNet+cache keeps the benefit into the tail.",
			"3.36x average, 3.23x p99 at 100% updates.",
		},
		Metrics: metrics,
	}
}

// Fig21Replication reproduces Figure 21: update latency in a 3-way
// replication system, normalized to the no-replication Client-Server
// design. Paper: PMNet replication 5.88× better than server-side
// replication; 16% overhead over single-PMNet logging.
func Fig21Replication(seed uint64) Result {
	base := mustRun(RunConfig{Design: pmnet.ClientServer, Workload: WLIdeal,
		Requests: 800, Warmup: 50, UpdateRatio: 1, Seed: seed})
	pm1 := mustRun(RunConfig{Design: pmnet.PMNetSwitch, Workload: WLIdeal,
		Requests: 800, Warmup: 50, UpdateRatio: 1, Seed: seed})
	pm3 := mustRun(RunConfig{Design: pmnet.PMNetSwitch, Workload: WLIdeal,
		Requests: 800, Warmup: 50, UpdateRatio: 1, Replication: 3, Seed: seed})

	// Server-side 3-way replication: the primary commits to two replicas
	// before acking; model the replica sync as a server↔server RTT appended
	// to the baseline request path (sampled like Fig. 18).
	r := sim.NewRand(seed + 9)
	var syncSum float64
	const n = 2000
	for i := 0; i < n; i++ {
		syncSum += 2*float64(netsim.ServerKernelStack.Sample(r)) +
			2*float64(sim.Microsecond) + 313
	}
	serverRepl := float64(base.Run.Hist.Mean()) + syncSum/n

	baseMean := float64(base.Run.Hist.Mean())
	pm1Mean := float64(pm1.Run.Hist.Mean())
	pm3Mean := float64(pm3.Run.Hist.Mean())

	t := stats.Table{
		Title:   "Figure 21: Update latency with 3-way replication (normalized to no-repl Client-Server)",
		Columns: []string{"design", "latency (us)", "normalized"},
	}
	norm := func(v float64) string { return fmt.Sprintf("%.2f", v/baseMean) }
	t.AddRow("Client-Server (no repl)", fmt.Sprintf("%.2f", baseMean/1e3), "1.00")
	t.AddRow("Server-side 3-way repl", fmt.Sprintf("%.2f", serverRepl/1e3), norm(serverRepl))
	t.AddRow("PMNet (single log)", fmt.Sprintf("%.2f", pm1Mean/1e3), norm(pm1Mean))
	t.AddRow("PMNet 3-way repl", fmt.Sprintf("%.2f", pm3Mean/1e3), norm(pm3Mean))
	return Result{
		ID:    "fig21",
		Table: t,
		Notes: []string{
			fmt.Sprintf("PMNet-repl vs server-repl: %.2fx (paper: 5.88x);", serverRepl/pm3Mean),
			fmt.Sprintf("replication overhead over single PMNet: %.0f%% (paper: 16%%).",
				100*(pm3Mean/pm1Mean-1)),
		},
		Metrics: map[string]float64{
			"pmnet_vs_server_repl": serverRepl / pm3Mean,
			"repl_overhead":        pm3Mean/pm1Mean - 1,
		},
	}
}

// Fig22OptStack reproduces Figure 22: update throughput with the default
// kernel stacks vs libVMA-style bypass stacks. Paper: PMNet wins 3.08× on
// the kernel stack and still 3.56× with bypass stacks.
func Fig22OptStack(seed uint64) Result {
	t := stats.Table{
		Title:   "Figure 22: Update throughput with an optimized (kernel-bypass) network stack",
		Columns: []string{"design", "throughput (req/s)", "vs baseline"},
	}
	metrics := map[string]float64{}
	var baseKernel float64
	rows := []struct {
		name   string
		design pmnet.Design
		stacks pmnet.StackKind
	}{
		{"Client-Server", pmnet.ClientServer, pmnet.KernelStack},
		{"PMNet", pmnet.PMNetSwitch, pmnet.KernelStack},
		{"Client-Server + libVMA", pmnet.ClientServer, pmnet.BypassStack},
		{"PMNet + libVMA", pmnet.PMNetSwitch, pmnet.BypassStack},
	}
	tp := make([]float64, len(rows))
	for i, row := range rows {
		res := mustRun(RunConfig{Design: row.design, Workload: WLIdeal,
			Clients: 8, Requests: 250, Warmup: 20, UpdateRatio: 1,
			Stacks: row.stacks, Seed: seed})
		tp[i] = res.Run.Throughput()
		if i == 0 {
			baseKernel = tp[i]
		}
		t.AddRow(row.name, fmt.Sprintf("%.0f", tp[i]), fmt.Sprintf("%.2fx", tp[i]/baseKernel))
	}
	metrics["kernel_speedup"] = tp[1] / tp[0]
	metrics["bypass_speedup"] = tp[3] / tp[2]
	return Result{
		ID:    "fig22",
		Table: t,
		Notes: []string{
			fmt.Sprintf("PMNet speedup: %.2fx on kernel stacks (paper 3.08x), %.2fx with bypass (paper 3.56x).",
				metrics["kernel_speedup"], metrics["bypass_speedup"]),
		},
		Metrics: metrics,
	}
}

// RecoveryExperiment reproduces §VI-B6: crash the server with the PMNet log
// full of unacknowledged updates, restore power, and measure the replay.
// Paper: 67 µs per resent request; full recovery seconds, well under the
// 2–3 minute server boot.
func RecoveryExperiment(seed uint64) Result {
	bed := pmnet.NewTestbed(pmnet.Config{
		Design: pmnet.PMNetSwitch, Clients: 4, Seed: seed,
		Timeout: 50 * sim.Millisecond, // keep clients from re-driving recovery
	})
	// Load updates, then cut the power mid-stream.
	for i := 0; i < 4; i++ {
		i := i
		var issue func(k int)
		issue = func(k int) {
			if k >= 200 {
				return
			}
			key := []byte(fmt.Sprintf("c%d-k%03d", i, k))
			bed.Session(i).SendUpdate(pmnet.PutReq(key, make([]byte, 100)), func(r pmnet.Result) {
				issue(k + 1)
			})
		}
		issue(0)
	}
	bed.RunFor(300 * sim.Microsecond)
	bed.CrashServer()
	bed.RunFor(200 * sim.Microsecond) // clients keep logging into PMNet
	logged := bed.Devices[0].Log().LiveEntries()
	start := bed.Now()
	bed.RecoverServer()
	bed.Run()
	recoveryTime := bed.Now() - start
	resends := bed.Devices[0].Stats().RecoveryResends
	perReq := sim.Time(0)
	if resends > 0 {
		perReq = recoveryTime / sim.Time(resends)
	}

	t := stats.Table{
		Title:   "Recovery from server failure (§VI-B6)",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("log entries at crash", fmt.Sprintf("%d", logged))
	t.AddRow("requests replayed", fmt.Sprintf("%d", resends))
	t.AddRow("per-request resend", fmt.Sprintf("%.1f us", perReq.Micros()))
	t.AddRow("total recovery", fmt.Sprintf("%.2f ms", float64(recoveryTime)/1e6))
	t.AddRow("log drained", fmt.Sprintf("%v", bed.Devices[0].Log().LiveEntries() == 0))
	return Result{
		ID:    "recovery",
		Table: t,
		Notes: []string{"Paper: 67 us per resent request; total recovery a small fraction of the 2-3 min boot."},
		Metrics: map[string]float64{
			"per_request_us": perReq.Micros(),
			"replayed":       float64(resends),
			"drained":        boolTo01(bed.Devices[0].Log().LiveEntries() == 0),
		},
	}
}

// TPCCLockStats reproduces the §III-C statistic: the fraction of TPCC
// requests that access the locking primitive (paper: 13.7%).
func TPCCLockStats(seed uint64) Result {
	res := mustRun(RunConfig{Design: pmnet.PMNetSwitch, Workload: WLTPCC,
		Clients: 4, Requests: 400, Warmup: 0, UpdateRatio: 0.88, Seed: seed})
	total := res.Driver.Updates + res.Driver.Bypasses
	frac := float64(res.Driver.LockOps) / float64(total)
	t := stats.Table{
		Title:   "TPCC locking primitive usage (§III-C)",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("total requests", fmt.Sprintf("%d", total))
	t.AddRow("lock requests", fmt.Sprintf("%d", res.Driver.LockOps))
	t.AddRow("lock fraction", fmt.Sprintf("%.1f%%", frac*100))
	t.AddRow("lock retries", fmt.Sprintf("%d", res.Driver.LockRetries))
	return Result{
		ID:    "tpcclock",
		Table: t,
		Notes: []string{"Paper: 13.7% of TPCC requests access the locking primitive."},
		Metrics: map[string]float64{
			"lock_fraction": frac,
		},
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// TailContention is an extension beyond the paper's figures: it quantifies
// the §I claim that the server is a shared, contended resource whose
// queueing drives tail latency — and that PMNet hides it. A fleet of
// background clients keeps the server CPU near saturation with reads; the
// baseline's update p99 balloons behind that queue, while PMNet updates
// complete at the device, off the contended path.
func TailContention(seed uint64) Result {
	t := stats.Table{
		Title:   "Extension: update tail latency under server contention",
		Columns: []string{"background", "design", "p50 (us)", "p99 (us)"},
	}
	metrics := map[string]float64{}
	measure := func(d pmnet.Design, noisy bool) *stats.Histogram {
		bed := pmnet.NewTestbed(pmnet.Config{
			Design:  d,
			Clients: 4 + 100, // 4 measured updaters + 100 background readers
			Seed:    seed,
			Handler: pmnet.IdealHandler{Cost: 25 * sim.Microsecond},
		})
		h := stats.NewHistogram()
		for c := 0; c < 4; c++ {
			c := c
			var issue func(k int)
			issue = func(k int) {
				if k >= 300 {
					return
				}
				key := []byte(fmt.Sprintf("m%d-%d", c, k))
				bed.Session(c).SendUpdate(pmnet.PutReq(key, make([]byte, 100)), func(r pmnet.Result) {
					if r.Err == nil && k >= 30 {
						h.Record(r.Latency)
					}
					issue(k + 1)
				})
			}
			issue(0)
		}
		if noisy {
			for c := 4; c < 104; c++ {
				c := c
				var read func(k int)
				read = func(k int) {
					if k >= 400 {
						return
					}
					bed.Session(c).Bypass(pmnet.GetReq([]byte("noise")), func(pmnet.Result) {
						read(k + 1)
					})
				}
				read(0)
			}
		}
		bed.Run()
		return h
	}
	for _, noisy := range []bool{false, true} {
		for _, d := range []pmnet.Design{pmnet.ClientServer, pmnet.PMNetSwitch} {
			h := measure(d, noisy)
			label := "idle"
			if noisy {
				label = "100 read clients"
			}
			t.AddRow(label, d.String(), us(h.Percentile(50)), us(h.Percentile(99)))
			key := fmt.Sprintf("%s_%d", map[pmnet.Design]string{
				pmnet.ClientServer: "base", pmnet.PMNetSwitch: "pmnet"}[d], boolToInt(noisy))
			metrics["p99_us_"+key] = float64(h.Percentile(99)) / 1e3
			metrics["p50_us_"+key] = float64(h.Percentile(50)) / 1e3
		}
	}
	return Result{
		ID:    "tail",
		Table: t,
		Notes: []string{
			"Extension experiment (not a paper figure): server-CPU contention",
			"inflates the baseline update tail; PMNet updates complete at the",
			"device, off the contended path.",
		},
		Metrics: metrics,
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Fig20FullCDF emits the actual cumulative distributions Figure 20 plots
// (50% updates, zipfian reads): one row per decile plus the deep tail, for
// the three designs. Best consumed with `pmnetbench -run fig20cdf -format csv`.
func Fig20FullCDF(seed uint64) Result {
	t := stats.Table{
		Title:   "Figure 20 (CDF): request latency distribution, 50% updates",
		Columns: []string{"fraction", "Client-Server (us)", "PMNet (us)", "PMNet+cache (us)"},
	}
	hists := make([]*stats.Histogram, 3)
	for i, d := range []struct {
		des   pmnet.Design
		cache int
	}{
		{pmnet.ClientServer, 0},
		{pmnet.PMNetSwitch, 0},
		{pmnet.PMNetSwitch, 4096},
	} {
		res := mustRun(RunConfig{
			Design: d.des, Workload: WLHashmap, Clients: 4,
			Requests: 600, Warmup: 60, UpdateRatio: 0.5, Zipfian: true,
			CacheSize: d.cache, Keys: 1000, Seed: seed,
		})
		hists[i] = res.Run.Hist
	}
	fractions := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99, 99.9}
	metrics := map[string]float64{}
	for _, p := range fractions {
		row := []string{fmt.Sprintf("%.1f%%", p)}
		for _, h := range hists {
			row = append(row, us(h.Percentile(p)))
		}
		t.AddRow(row...)
		metrics[fmt.Sprintf("base_p%.1f", p)] = float64(hists[0].Percentile(p)) / 1e3
		metrics[fmt.Sprintf("pmnet_p%.1f", p)] = float64(hists[1].Percentile(p)) / 1e3
		metrics[fmt.Sprintf("cache_p%.1f", p)] = float64(hists[2].Percentile(p)) / 1e3
	}
	return Result{
		ID:    "fig20cdf",
		Table: t,
		Notes: []string{
			"The blue-line knee: PMNet-without-cache tracks the fast path up",
			"to ~p50 then converges to the baseline; the green line (cache)",
			"keeps the gap through the tail.",
		},
		Metrics: metrics,
	}
}
