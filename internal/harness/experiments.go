package harness

import (
	"fmt"
	"strings"

	"pmnet/internal/sim"
	"pmnet/internal/stats"
)

// Result is one regenerated figure/table.
type Result struct {
	ID    string // "fig2", "fig15", ...
	Table stats.Table
	Notes []string
	// Metrics exposes headline numbers for tests and EXPERIMENTS.md
	// (e.g. "speedup_100pct": 4.31).
	Metrics map[string]float64
}

// Text renders the result exactly as `pmnetbench` prints it in table mode:
// the formatted table followed by the notes. The golden parallel test
// compares this rendering byte-for-byte across pool sizes.
func (r Result) Text() string {
	var b strings.Builder
	b.WriteString(r.Table.Format())
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Specs maps experiment IDs to their cell-enumeration + rendering split
// (cheap defaults; the benchmarks run scaled-down instances separately).
var Specs = map[string]*Spec{
	"fig2":        {ID: "fig2", Enumerate: fig2Cells, Render: fig2Render},
	"fig15":       {ID: "fig15", Enumerate: fig15Cells, Render: fig15Render},
	"fig16":       {ID: "fig16", Enumerate: fig16Cells, Render: fig16Render},
	"fig18":       {ID: "fig18", Enumerate: fig18Cells, Render: fig18Render},
	"fig19":       fig19Spec(16, 150),
	"fig20":       {ID: "fig20", Enumerate: fig20Cells, Render: fig20Render},
	"fig20cdf":    {ID: "fig20cdf", Enumerate: fig20cdfCells, Render: fig20cdfRender},
	"fig21":       {ID: "fig21", Enumerate: fig21Cells, Render: fig21Render},
	"fig22":       {ID: "fig22", Enumerate: fig22Cells, Render: fig22Render},
	"recovery":    {ID: "recovery", Enumerate: recoveryCells, Render: recoveryRender},
	"tpcclock":    {ID: "tpcclock", Enumerate: tpcclockCells, Render: tpcclockRender},
	"tail":        {ID: "tail", Enumerate: tailCells, Render: tailRender},
	"scale":       {ID: "scale", Enumerate: scaleCells, Render: scaleRender},
	"openloop":    openloopSpec(1000000, 30*sim.Millisecond),
	"speedup":     {ID: "speedup", Enumerate: speedupCells, Render: speedupRender},
	"impairments": impairmentsSpec(8, 120),
}

// fig19Spec parameterizes the Figure 19 sweep; the registered experiment
// runs the full-size instance, tests run smaller ones.
func fig19Spec(clients, requests int) *Spec {
	return &Spec{
		ID: "fig19",
		Enumerate: func(seed uint64) []Cell {
			return fig19Cells(seed, clients, requests)
		},
		Render: fig19Render,
	}
}

// Experiments maps experiment IDs to their single-call runners. Retained as
// the sequential per-figure API; RunExperiments executes batches on a worker
// pool.
var Experiments = map[string]func(seed uint64) Result{
	"fig2":        Fig2Breakdown,
	"fig15":       Fig15PayloadSweep,
	"fig16":       Fig16StressTest,
	"fig18":       Fig18AltDesigns,
	"fig19":       Fig19Throughput,
	"fig20":       Fig20CacheCDF,
	"fig21":       Fig21Replication,
	"fig22":       Fig22OptStack,
	"recovery":    RecoveryExperiment,
	"tpcclock":    TPCCLockStats,
	"tail":        TailContention,
	"fig20cdf":    Fig20FullCDF,
	"scale":       ScaleSharded,
	"openloop":    OpenLoopKnee,
	"speedup":     SpeedupCurve,
	"impairments": ImpairmentMatrix,
}

// ExperimentOrder lists experiments in the paper's presentation order.
var ExperimentOrder = []string{
	"fig2", "fig15", "fig16", "fig18", "fig19", "fig20", "fig20cdf", "fig21",
	"fig22", "recovery", "tpcclock", "tail", "scale", "openloop", "speedup",
	"impairments",
}

// Fig2Breakdown reproduces Figure 2 (see fig2Render).
func Fig2Breakdown(seed uint64) Result { return RunSpec(Specs["fig2"], seed, 1) }

// Fig15PayloadSweep reproduces Figure 15 (see fig15Render).
func Fig15PayloadSweep(seed uint64) Result { return RunSpec(Specs["fig15"], seed, 1) }

// Fig16StressTest reproduces Figure 16 (see fig16Render).
func Fig16StressTest(seed uint64) Result { return RunSpec(Specs["fig16"], seed, 1) }

// Fig18AltDesigns reproduces Figure 18 (see fig18Render).
func Fig18AltDesigns(seed uint64) Result { return RunSpec(Specs["fig18"], seed, 1) }

// Fig19Throughput reproduces Figure 19 at full size (see fig19Render).
func Fig19Throughput(seed uint64) Result { return RunSpec(Specs["fig19"], seed, 1) }

// fig19 runs a custom-size Figure 19 sweep (tests use smaller instances).
func fig19(seed uint64, clients, requests int) Result {
	return RunSpec(fig19Spec(clients, requests), seed, 1)
}

// Fig20CacheCDF reproduces Figure 20's percentile table (see fig20Render).
func Fig20CacheCDF(seed uint64) Result { return RunSpec(Specs["fig20"], seed, 1) }

// Fig20FullCDF emits Figure 20's full CDFs (see fig20cdfRender).
func Fig20FullCDF(seed uint64) Result { return RunSpec(Specs["fig20cdf"], seed, 1) }

// Fig21Replication reproduces Figure 21 (see fig21Render).
func Fig21Replication(seed uint64) Result { return RunSpec(Specs["fig21"], seed, 1) }

// Fig22OptStack reproduces Figure 22 (see fig22Render).
func Fig22OptStack(seed uint64) Result { return RunSpec(Specs["fig22"], seed, 1) }

// RecoveryExperiment reproduces §VI-B6 (see recoveryRender).
func RecoveryExperiment(seed uint64) Result { return RunSpec(Specs["recovery"], seed, 1) }

// TPCCLockStats reproduces the §III-C lock statistic (see tpcclockRender).
func TPCCLockStats(seed uint64) Result { return RunSpec(Specs["tpcclock"], seed, 1) }

// TailContention runs the server-contention extension (see tailRender).
func TailContention(seed uint64) Result { return RunSpec(Specs["tail"], seed, 1) }

// ScaleSharded runs the sharded saturation sweep (see scaleRender).
func ScaleSharded(seed uint64) Result { return RunSpec(Specs["scale"], seed, 1) }

// OpenLoopKnee runs the million-user open-loop sweep (see openloopRender).
func OpenLoopKnee(seed uint64) Result { return RunSpec(Specs["openloop"], seed, 1) }

// SpeedupCurve runs one scenario at -shards 1/2/4 (see speedup.go).
func SpeedupCurve(seed uint64) Result { return RunSpec(Specs["speedup"], seed, 1) }
