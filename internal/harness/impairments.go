package harness

// The "impairments" experiment: the scenario × system scorecard over the
// netsim impairment layer and the generated topologies. Each scenario is one
// deterministic network condition — clean, Gilbert–Elliott burst loss,
// ACK-path loss, lognormal jitter, bounded reordering, duplication, a
// token-bucket rate cap, an oversubscribed leaf-spine incast, a fat-tree
// fabric — and each is measured three ways: the client-server baseline, the
// PMNet switch deployment, and a crash/recovery run under the same
// impairment. The rendered table answers the question the paper's clean-link
// evaluation cannot: where early ACKs keep winning once the network degrades,
// and where they stop (the ack-starve row: a replication chain's extra ACK
// traffic on a bandwidth-starved ACK path pays rather than earns).
//
// Determinism: every impairment draw comes from a per-link forked RNG stream
// (internal/netsim/impair.go), so the whole scorecard is byte-identical
// across -shards and -parallel settings — pinned by TestImpairmentsByteIdentity.

import (
	"fmt"

	"pmnet"
	"pmnet/internal/netsim"
	"pmnet/internal/sim"
	"pmnet/internal/stats"
	"pmnet/internal/trace"
)

// impairScenario is one network condition of the matrix.
type impairScenario struct {
	key     string
	impair  netsim.Impairments
	ackOnly bool // impair only the edge→client (ACK) direction

	topo     pmnet.TopologyKind
	leaves   int
	spines   int
	oversub  float64
	fatTreeK int

	clients     int // override the sweep default (incast fan-in)
	replication int // PMNet device-chain length (0 = single device)
}

// impairScenarios is the scenario axis of the scorecard, in render order.
var impairScenarios = []impairScenario{
	{key: "clean"},
	{key: "burst-loss", impair: netsim.Impairments{
		GoodLoss: 0.001, BadLoss: 0.3, GoodToBad: 0.02, BadToGood: 0.2}},
	{key: "ack-loss", ackOnly: true, impair: netsim.Impairments{GoodLoss: 0.05}},
	{key: "jitter", impair: netsim.Impairments{
		JitterMedian: 20 * sim.Microsecond, JitterSigma: 0.8}},
	{key: "reorder", impair: netsim.Impairments{
		ReorderProb: 0.1, ReorderWindow: 50 * sim.Microsecond}},
	{key: "duplicate", impair: netsim.Impairments{DupProb: 0.05}},
	// 100 Mbps / 2 KB burst binds on the 400 B request stream: the token
	// bucket paces both systems to the same wire rate, compressing PMNet's
	// win toward a wash.
	{key: "rate-cap", impair: netsim.Impairments{RateBps: 1e8, BurstBytes: 2 << 10}},
	// A starved ACK path under replication is where early-ACK degrades: each
	// request sends three PMNet-ACKs plus the server-ACK down the capped
	// client link, quadrupling the baseline's ACK bytes — the extra ACK
	// traffic queues ahead of the completing ACK and pays rather than earns.
	{key: "ack-starve", ackOnly: true, replication: 3,
		impair: netsim.Impairments{RateBps: 2e7, BurstBytes: 512}},
	{key: "incast", clients: 24, topo: pmnet.LeafSpineTopology,
		leaves: 4, spines: 2, oversub: 4},
	{key: "fat-tree", topo: pmnet.FatTreeTopology, fatTreeK: 4},
}

// topoString maps the testbed enum back to the RunConfig string knob.
func topoString(k pmnet.TopologyKind) string {
	switch k {
	case pmnet.LeafSpineTopology:
		return "leaf-spine"
	case pmnet.FatTreeTopology:
		return "fat-tree"
	}
	return "star"
}

// impairRunConfig builds the measured-run config for one scenario × design.
func impairRunConfig(sc impairScenario, d pmnet.Design, seed uint64, clients, requests int) RunConfig {
	if sc.clients > 0 {
		clients = sc.clients
	}
	return RunConfig{
		Design: d, Workload: WLIdeal, Clients: clients,
		Requests: requests, Warmup: 10, ValueSize: 400, UpdateRatio: 1,
		Seed: seed, Replication: sc.replication,
		// Loss scenarios recover by retransmission; the paper-default 1 ms
		// timeout would dominate every latency column, so the matrix runs a
		// tight 200 µs timeout on both systems.
		Timeout:       200 * sim.Microsecond,
		Topology:      topoString(sc.topo),
		Leaves:        sc.leaves,
		Spines:        sc.spines,
		Oversub:       sc.oversub,
		FatTreeK:      sc.fatTreeK,
		Impair:        sc.impair,
		ImpairAckPath: sc.ackOnly,
	}
}

// impairBedConfig builds the crash/recovery testbed for one scenario: the
// §VI-B6 rig with the scenario's impairments and topology applied.
func impairBedConfig(sc impairScenario, seed uint64) pmnet.Config {
	return pmnet.Config{
		Design: pmnet.PMNetSwitch, Clients: 4, Seed: seed,
		Replication: sc.replication,
		// Long enough that in-flight requests are not re-driven during the
		// crash window, short enough that impairment-lost packets recover
		// within the drain instead of serializing 50 ms stalls.
		Timeout:       2 * sim.Millisecond,
		Topology:      sc.topo,
		Leaves:        sc.leaves,
		Spines:        sc.spines,
		Oversub:       sc.oversub,
		FatTreeK:      sc.fatTreeK,
		Impair:        sc.impair,
		ImpairAckPath: sc.ackOnly,
	}
}

// impairRecoveryCell measures crash/replay under one scenario, reusing the
// recovery experiment's shape (load, power-cut, log, recover, drain).
func impairRecoveryCell(sc impairScenario, seed uint64) Cell {
	return Cell{Key: sc.key + "/recovery", Custom: func() (any, sim.Time) {
		bed := pmnet.NewTestbed(impairBedConfig(sc, seed))
		for i := 0; i < 4; i++ {
			i := i
			var issue func(k int)
			issue = func(k int) {
				if k >= 100 {
					return
				}
				key := []byte(fmt.Sprintf("c%d-k%03d", i, k))
				bed.Session(i).SendUpdate(pmnet.PutReq(key, make([]byte, 100)), func(r pmnet.Result) {
					issue(k + 1)
				})
			}
			issue(0)
		}
		bed.RunFor(300 * sim.Microsecond)
		bed.CrashServer()
		bed.RunFor(200 * sim.Microsecond)
		out := recoveryOut{logged: bed.Devices[0].Log().LiveEntries()}
		start := bed.Now()
		bed.RecoverServer()
		bed.Run()
		out.total = bed.Now() - start
		out.resends = bed.Devices[0].Stats().RecoveryResends
		if out.resends > 0 {
			out.perReq = out.total / sim.Time(out.resends)
		}
		out.drained = bed.Devices[0].Log().LiveEntries() == 0
		return out, bed.Now()
	}}
}

// impairmentsCells enumerates scenario × {baseline, pmnet, recovery}.
func impairmentsCells(seed uint64, clients, requests int) []Cell {
	var cells []Cell
	for _, sc := range impairScenarios {
		cells = append(cells,
			cfgCell(sc.key+"/base", impairRunConfig(sc, pmnet.ClientServer, seed, clients, requests)),
			cfgCell(sc.key+"/pmnet", impairRunConfig(sc, pmnet.PMNetSwitch, seed, clients, requests)),
			impairRecoveryCell(sc, seed),
		)
	}
	return cells
}

// counterValue reads one named counter out of a cell's registry snapshot.
func counterValue(cs []trace.Snapshot, name string) uint64 {
	for _, c := range cs {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// impairVerdict classifies one scenario's speedup: where early-ACK keeps
// winning, where the comparison is a wash, and where PMNet degrades.
func impairVerdict(speedup float64) string {
	switch {
	case speedup >= 1.10:
		return "pmnet"
	case speedup <= 0.95:
		return "degrades"
	default:
		return "wash"
	}
}

func impairmentsRender(seed uint64, cells []CellResult) Result {
	t := stats.Table{
		Title: "Impairment matrix: baseline vs PMNet switch per network condition",
		Columns: []string{"scenario", "speedup", "base p99 (us)", "pmnet p99 (us)",
			"pmnet p999 (us)", "resends", "burst drops", "dups", "recovery (us)", "verdict"},
	}
	metrics := map[string]float64{}
	for i, sc := range impairScenarios {
		base, pm, rec := cells[3*i], cells[3*i+1], cells[3*i+2]
		speedup := base.Run.Hist.Mean().Micros() / pm.Run.Hist.Mean().Micros()
		out := rec.V.(recoveryOut)
		t.AddRow(sc.key,
			fmt.Sprintf("%.2fx", speedup),
			us(base.Run.Hist.Percentile(99)),
			us(pm.Run.Hist.Percentile(99)),
			us(pm.Run.Hist.Percentile(99.9)),
			fmt.Sprintf("%d", counterValue(pm.Counters, "client.resends")),
			fmt.Sprintf("%d", counterValue(pm.Counters, "net.dropped_burst")),
			fmt.Sprintf("%d", counterValue(pm.Counters, "net.duplicated")),
			us(out.total),
			impairVerdict(speedup))
		metrics["speedup_"+sc.key] = speedup
		metrics["recovery_us_"+sc.key] = out.total.Micros()
		metrics["p99_pmnet_us_"+sc.key] = pm.Run.Hist.Percentile(99).Micros()
	}
	return Result{
		ID:    "impairments",
		Table: t,
		Notes: []string{
			"Impairments apply to the client access links (ack-loss: ACK direction",
			"only); draws come from per-link forked RNG streams, so the table is",
			"byte-identical across -shards/-parallel. verdict: pmnet = speedup >= 1.10,",
			"degrades = speedup <= 0.95 (PMNet's extra ACK traffic pays, not earns),",
			"wash = in between. recovery = power-cut to drained log, same condition.",
		},
		Metrics: metrics,
	}
}

// impairmentsSpec parameterizes the matrix; the registered experiment runs
// the full-size instance, tests and the smoke target run smaller ones.
func impairmentsSpec(clients, requests int) *Spec {
	return &Spec{
		ID: "impairments",
		Enumerate: func(seed uint64) []Cell {
			return impairmentsCells(seed, clients, requests)
		},
		Render: impairmentsRender,
	}
}

// ImpairmentMatrix runs the impairment scenario scorecard (see
// impairmentsRender).
func ImpairmentMatrix(seed uint64) Result { return RunSpec(Specs["impairments"], seed, 1) }
