package workload

import (
	"fmt"

	"pmnet/internal/protocol"
	"pmnet/internal/sim"
)

// TPCCConfig parameterizes the TPCC subset (§VI-A2, Figure 5). New-order
// transactions put the stock modification inside a critical section guarded
// by a server-side lock; the lock requests bypass PMNet so the server
// enforces multi-client ordering, while the updates inside the critical
// section still benefit from in-network logging (§III-C). The paper reports
// 13.7% of TPCC requests access the locking primitive.
type TPCCConfig struct {
	Warehouses  int
	Districts   int // per warehouse
	Items       int
	UpdateRatio float64 // fraction of mutating transactions (Fig. 19 sweep)
	OrderLines  int     // items per new-order (default 3)
}

// TPCC generates the request steps of new-order, payment and order-status
// transactions.
type TPCC struct {
	cfg    TPCCConfig
	rand   *sim.Rand
	client int
	queue  []Op
	orders uint64
}

// NewTPCC builds a generator for one client (terminal).
func NewTPCC(rand *sim.Rand, clientID int, cfg TPCCConfig) *TPCC {
	if cfg.Warehouses <= 0 {
		cfg.Warehouses = 4
	}
	if cfg.Districts <= 0 {
		cfg.Districts = 10
	}
	if cfg.Items <= 0 {
		cfg.Items = 1000
	}
	if cfg.OrderLines <= 0 {
		cfg.OrderLines = 5
	}
	if cfg.UpdateRatio == 0 {
		cfg.UpdateRatio = 0.88 // TPC-C is ~92% read-write txns; tuned so lock
		// requests are ≈13.7% of all requests, matching §III-C.
	}
	return &TPCC{cfg: cfg, rand: rand, client: clientID}
}

func tpccKey(parts ...any) []byte {
	s := "tpcc"
	for _, p := range parts {
		s += fmt.Sprintf(":%v", p)
	}
	return []byte(s)
}

// Next implements Generator.
func (t *TPCC) Next() Op {
	if len(t.queue) > 0 {
		op := t.queue[0]
		t.queue = t.queue[1:]
		return op
	}
	if t.rand.Float64() < t.cfg.UpdateRatio {
		if t.rand.Float64() < 0.6 {
			t.enqueueNewOrder()
		} else {
			t.enqueuePayment()
		}
	} else {
		t.enqueueOrderStatus()
	}
	return t.Next()
}

// enqueueNewOrder: the Figure 5 pattern — lock the stock row, read it,
// write the updated stock and the order lines, unlock. The lock requests
// travel as bypass; the writes inside the critical section are update-reqs
// that PMNet logs.
func (t *TPCC) enqueueNewOrder() {
	t.orders++
	w := t.rand.Intn(t.cfg.Warehouses)
	d := t.rand.Intn(t.cfg.Districts)
	item := t.rand.Intn(t.cfg.Items)
	lock := tpccKey("stocklock", w, item)
	owner := []byte(fmt.Sprintf("client%d", t.client))
	orderID := fmt.Sprintf("o%d-%d", t.client, t.orders)

	t.queue = append(t.queue,
		Op{Req: protocol.Request{Op: protocol.OpLockAcquire, Args: [][]byte{lock, owner}}, Retry: true},
		Op{Req: protocol.GetReq(tpccKey("stock", w, item))},
		Op{Req: protocol.GetReq(tpccKey("customer", w, d, t.client, "info"))},
		Op{Req: protocol.PutReq(tpccKey("stock", w, item), []byte("qty-updated")), Update: true},
	)
	for l := 0; l < t.cfg.OrderLines; l++ {
		t.queue = append(t.queue, Op{
			Req:    protocol.PutReq(tpccKey("orderline", w, d, orderID, l), []byte("line")),
			Update: true,
		})
	}
	t.queue = append(t.queue,
		Op{Req: protocol.PutReq(tpccKey("order", w, d, orderID), []byte("placed")), Update: true},
		Op{Req: protocol.PutReq(tpccKey("district", w, d, "nextoid"), []byte("oid")), Update: true},
		Op{Req: protocol.Request{Op: protocol.OpLockRelease, Args: [][]byte{lock, owner}}},
	)
}

// enqueuePayment: customer balance and district YTD updates; no lock (the
// per-customer rows are client-partitioned in our setup).
func (t *TPCC) enqueuePayment() {
	w := t.rand.Intn(t.cfg.Warehouses)
	d := t.rand.Intn(t.cfg.Districts)
	t.queue = append(t.queue,
		Op{Req: protocol.PutReq(tpccKey("customer", w, d, t.client, "balance"), []byte("bal")), Update: true},
		Op{Req: protocol.PutReq(tpccKey("district", w, d, "ytd", t.client), []byte("ytd")), Update: true},
		Op{Req: protocol.PutReq(tpccKey("history", w, d, t.client), []byte("h")), Update: true},
	)
}

// enqueueOrderStatus: read-only transaction.
func (t *TPCC) enqueueOrderStatus() {
	w := t.rand.Intn(t.cfg.Warehouses)
	d := t.rand.Intn(t.cfg.Districts)
	t.queue = append(t.queue,
		Op{Req: protocol.GetReq(tpccKey("customer", w, d, t.client, "balance"))},
		Op{Req: protocol.GetReq(tpccKey("order", w, d, fmt.Sprintf("o%d-%d", t.client, t.orders)))},
	)
}
