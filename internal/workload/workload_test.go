package workload

import (
	"math"
	"strings"
	"testing"

	"pmnet/internal/protocol"
	"pmnet/internal/sim"
)

func TestYCSBUpdateRatio(t *testing.T) {
	for _, ratio := range []float64{0.25, 0.5, 1.0} {
		g := NewYCSB(sim.NewRand(1), YCSBConfig{Keys: 1000, UpdateRatio: ratio})
		updates := 0
		const n = 20000
		for i := 0; i < n; i++ {
			op := g.Next()
			if op.Update {
				updates++
				if op.Req.Op != protocol.OpPut {
					t.Fatal("update op is not a PUT")
				}
				if len(op.Req.Args[1]) != 100 {
					t.Fatalf("default payload %d bytes, want 100", len(op.Req.Args[1]))
				}
			} else if op.Req.Op != protocol.OpGet {
				t.Fatal("read op is not a GET")
			}
		}
		got := float64(updates) / n
		if math.Abs(got-ratio) > 0.02 {
			t.Fatalf("update fraction %.3f, want %.2f", got, ratio)
		}
	}
}

func TestYCSBZipfianSkew(t *testing.T) {
	g := NewYCSB(sim.NewRand(2), YCSBConfig{Keys: 1000, UpdateRatio: 0, Zipfian: true})
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[string(g.Next().Req.Args[0])]++
	}
	hot := counts[string(YCSBKey(0))]
	if hot < n/50 {
		t.Fatalf("hottest key only %d/%d requests; zipf not skewed", hot, n)
	}
}

func TestYCSBKeysInRange(t *testing.T) {
	g := NewYCSB(sim.NewRand(3), YCSBConfig{Keys: 10, UpdateRatio: 0.5})
	for i := 0; i < 1000; i++ {
		key := string(g.Next().Req.Key())
		if !strings.HasPrefix(key, "user0000000") {
			t.Fatalf("key %q outside 10-key space", key)
		}
	}
}

func TestTwitterCommandShapes(t *testing.T) {
	g := NewTwitter(sim.NewRand(4), 3, TwitterConfig{Users: 100, UpdateRatio: 0.5})
	cmds := map[string]int{}
	updates, reads := 0, 0
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Req.Op != protocol.OpTxn {
			t.Fatal("twitter op is not a redis command")
		}
		cmd := string(op.Req.Args[0])
		cmds[cmd]++
		if op.Update {
			updates++
			switch cmd {
			case "INCR", "SET", "LPUSH", "SADD":
			default:
				t.Fatalf("mutating flag on %s", cmd)
			}
		} else {
			reads++
			switch cmd {
			case "LRANGE", "GET":
			default:
				t.Fatalf("read flag on %s", cmd)
			}
		}
	}
	for _, want := range []string{"INCR", "SET", "LPUSH", "SADD", "LRANGE", "GET"} {
		if cmds[want] == 0 {
			t.Fatalf("command %s never generated (%v)", want, cmds)
		}
	}
	if updates == 0 || reads == 0 {
		t.Fatal("mix degenerate")
	}
}

func TestTwitterNoLocks(t *testing.T) {
	g := NewTwitter(sim.NewRand(5), 0, TwitterConfig{Users: 50})
	for i := 0; i < 2000; i++ {
		op := g.Next()
		if op.Req.Op == protocol.OpLockAcquire || op.Req.Op == protocol.OpLockRelease {
			t.Fatal("twitter workload must be lock-free (§III-C)")
		}
	}
}

func TestTPCCLockFraction(t *testing.T) {
	g := NewTPCC(sim.NewRand(6), 1, TPCCConfig{})
	locks, total := 0, 0
	for i := 0; i < 50000; i++ {
		op := g.Next()
		total++
		if op.Req.Op == protocol.OpLockAcquire || op.Req.Op == protocol.OpLockRelease {
			locks++
		}
		if op.Req.Op == protocol.OpLockAcquire && !op.Retry {
			t.Fatal("lock acquire must be retryable")
		}
	}
	frac := float64(locks) / float64(total)
	// Paper §III-C: 13.7% of TPCC requests access the locking primitive.
	if math.Abs(frac-0.137) > 0.02 {
		t.Fatalf("lock fraction %.3f, want ≈0.137", frac)
	}
}

func TestTPCCCriticalSectionOrder(t *testing.T) {
	g := NewTPCC(sim.NewRand(7), 2, TPCCConfig{UpdateRatio: 1.0})
	depth := 0
	sawStockPut := false
	for i := 0; i < 5000; i++ {
		op := g.Next()
		switch op.Req.Op {
		case protocol.OpLockAcquire:
			if depth != 0 {
				t.Fatal("nested lock acquire")
			}
			depth++
			sawStockPut = false
		case protocol.OpLockRelease:
			if depth != 1 {
				t.Fatal("release without acquire")
			}
			if !sawStockPut {
				t.Fatal("critical section without stock update")
			}
			depth--
		case protocol.OpPut:
			if strings.HasPrefix(string(op.Req.Key()), "tpcc:stock:") {
				if depth != 1 {
					t.Fatal("stock update outside critical section (Fig. 5)")
				}
				sawStockPut = true
			}
		}
	}
}

func TestTPCCUpdatesInsideCriticalSectionAreLogged(t *testing.T) {
	// The point of §III-C: updates inside the critical section still travel
	// as update-reqs (benefit from PMNet); only the lock ops bypass.
	g := NewTPCC(sim.NewRand(8), 0, TPCCConfig{UpdateRatio: 1.0})
	inCS := false
	for i := 0; i < 3000; i++ {
		op := g.Next()
		switch op.Req.Op {
		case protocol.OpLockAcquire:
			inCS = true
		case protocol.OpLockRelease:
			inCS = false
		case protocol.OpPut:
			if inCS && !op.Update {
				t.Fatal("in-CS update not flagged for PMNet logging")
			}
		}
	}
}
