package workload

import (
	"strconv"

	"pmnet/internal/protocol"
	"pmnet/internal/sim"
)

// YCSBConfig parameterizes the YCSB-like driver (§VI-A2: "We use a
// YCSB-like client to generate and send read/update requests").
type YCSBConfig struct {
	Keys        int     // keyspace size
	UpdateRatio float64 // fraction of requests that are updates (Fig. 19 sweeps this)
	ValueSize   int     // payload bytes (default 100, §VI-A2)
	Zipfian     bool    // zipfian key popularity (vs uniform)
	Theta       float64 // zipf exponent (default 0.99)
	ScanRatio   float64 // fraction of non-update requests that are range scans (YCSB-E)
	ScanLen     int     // pairs per scan (default 10)
}

// YCSB generates GET/PUT requests over a keyspace.
type YCSB struct {
	cfg   YCSBConfig
	rand  *sim.Rand
	zipf  *sim.Zipf
	value []byte
	seq   uint64
}

// NewYCSB builds a generator with its own RNG stream.
func NewYCSB(rand *sim.Rand, cfg YCSBConfig) *YCSB {
	if cfg.Keys <= 0 {
		cfg.Keys = 10000
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 100
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	y := &YCSB{cfg: cfg, rand: rand, value: make([]byte, cfg.ValueSize)}
	for i := range y.value {
		y.value[i] = byte('a' + i%26)
	}
	if cfg.Zipfian {
		y.zipf = sim.NewZipf(rand.Fork(), cfg.Keys, cfg.Theta)
	}
	return y
}

// YCSBKey returns the i-th key in the keyspace (for prefill). It produces
// exactly fmt.Sprintf("user%08d", i) for non-negative i, formatted by hand:
// key generation runs once per request on the hot path and Sprintf costs
// several allocations per call.
func YCSBKey(i int) []byte {
	var digits [20]byte
	n := strconv.AppendInt(digits[:0], int64(i), 10)
	b := make([]byte, 0, 4+8+len(n))
	b = append(b, "user"...)
	for pad := 8 - len(n); pad > 0; pad-- {
		b = append(b, '0')
	}
	return append(b, n...)
}

func (y *YCSB) nextKey() []byte {
	var i int
	if y.zipf != nil {
		i = y.zipf.Next()
	} else {
		i = y.rand.Intn(y.cfg.Keys)
	}
	return YCSBKey(i)
}

// Next implements Generator.
func (y *YCSB) Next() Op {
	y.seq++
	key := y.nextKey()
	if y.rand.Float64() < y.cfg.UpdateRatio {
		return Op{Req: protocol.PutReq(key, y.value), Update: true}
	}
	if y.cfg.ScanRatio > 0 && y.rand.Float64() < y.cfg.ScanRatio {
		scanLen := y.cfg.ScanLen
		if scanLen <= 0 {
			scanLen = 10
		}
		return Op{Req: protocol.ScanReq(key, scanLen)}
	}
	return Op{Req: protocol.GetReq(key)}
}
