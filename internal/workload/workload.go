// Package workload implements the request generators of the paper's
// evaluation (§VI-A2): a YCSB-like key-value driver with configurable
// update ratio and zipfian popularity, the Twitter (Retwis) workload, and a
// TPCC subset whose transactions guard stock updates with server-side locks
// (§III-C) — plus the closed-loop driver that plays any generator against a
// client session with synchronous-RPC semantics.
package workload

import (
	"pmnet/internal/client"
	"pmnet/internal/protocol"
	"pmnet/internal/sim"
)

// Op is one request to issue.
type Op struct {
	Req protocol.Request
	// Update selects update-req framing (persistent logging) vs bypass.
	Update bool
	// Retry requests re-issue on StatusLocked (lock acquisition).
	Retry bool
}

// Generator produces the request stream for one client.
type Generator interface {
	Next() Op
}

// GeneratorFunc adapts a function to Generator.
type GeneratorFunc func() Op

// Next implements Generator.
func (f GeneratorFunc) Next() Op { return f() }

// DriverStats reports a finished driver run.
type DriverStats struct {
	Completed   uint64
	Updates     uint64
	Bypasses    uint64
	LockOps     uint64
	LockRetries uint64
	Failed      uint64
}

// Driver plays a generator against a session in a closed loop: one
// outstanding request, the next issued from the completion callback — the
// synchronous RPC model of §II-A.
type Driver struct {
	Sess *client.Session
	Gen  Generator
	// Record is invoked for every completed request with its latency.
	Record func(lat sim.Time, op Op)
	// RetryDelay backs off lock-acquire retries (0 = 5 µs).
	RetryDelay sim.Time
	// MaxLockRetries caps retries per lock acquisition before giving up
	// (0 = 2000); the safety valve against a peer that died holding a lock.
	MaxLockRetries int

	eng       *sim.Engine
	stats     DriverStats
	lockDepth int
}

// Run issues n requests (completions counted; lock retries re-issue the
// same logical request) and invokes done when finished. A driver whose
// budget expires inside a critical section keeps going until the lock is
// released — a client never disconnects holding a server-side lock.
func (d *Driver) Run(eng *sim.Engine, n uint64, done func(DriverStats)) {
	d.eng = eng
	if d.RetryDelay <= 0 {
		d.RetryDelay = 5 * sim.Microsecond
	}
	if d.MaxLockRetries <= 0 {
		d.MaxLockRetries = 2000
	}
	var issue func()
	issue = func() {
		if d.stats.Completed >= n && d.lockDepth == 0 {
			if done != nil {
				done(d.stats)
			}
			return
		}
		op := d.Gen.Next()
		d.play(op, 0, issue)
	}
	issue()
}

// play issues one op, retrying lock conflicts, then continues with next.
func (d *Driver) play(op Op, retries int, next func()) {
	handle := func(r client.Result) {
		if r.Err != nil {
			d.stats.Failed++
			d.stats.Completed++
			next()
			return
		}
		if op.Retry && r.Status == protocol.StatusLocked {
			if retries >= d.MaxLockRetries {
				d.stats.Failed++
				d.stats.Completed++
				next()
				return
			}
			d.stats.LockRetries++
			d.eng.After(d.RetryDelay, func() { d.play(op, retries+1, next) })
			return
		}
		switch op.Req.Op {
		case protocol.OpLockAcquire:
			if r.Status == protocol.StatusOK {
				d.lockDepth++
			}
		case protocol.OpLockRelease:
			if d.lockDepth > 0 {
				d.lockDepth--
			}
		}
		if d.Record != nil {
			d.Record(r.Latency, op)
		}
		d.stats.Completed++
		next()
	}
	switch {
	case op.Req.Op == protocol.OpLockAcquire || op.Req.Op == protocol.OpLockRelease:
		d.stats.LockOps++
		d.stats.Bypasses++
		d.Sess.Bypass(op.Req, handle)
	case op.Update:
		d.stats.Updates++
		d.Sess.SendUpdate(op.Req, handle)
	default:
		d.stats.Bypasses++
		d.Sess.Bypass(op.Req, handle)
	}
}

// Stats returns the driver counters so far.
func (d *Driver) Stats() DriverStats { return d.stats }
