package workload

import (
	"fmt"

	"pmnet/internal/protocol"
	"pmnet/internal/sim"
)

// TwitterConfig parameterizes the Retwis-style Twitter workload (§VI-A2,
// Figure 4). Clients post tweets, follow users, and read timelines; there
// is no cross-client ordering (each client allocates IDs via independent
// INCR calls), which is exactly the lock-free structure the paper exploits.
type TwitterConfig struct {
	Users       int     // user population
	UpdateRatio float64 // fraction of *actions* that mutate (post/follow)
	PostLen     int     // tweet payload size (default 100)
	TimelineLen int     // LRANGE window on reads (default 10)
}

// Twitter generates Redis-command requests (encoded as OpTxn) implementing
// the retwis operations. Multi-request actions are emitted step by step so
// the closed-loop driver preserves the synchronous model.
type Twitter struct {
	cfg    TwitterConfig
	rand   *sim.Rand
	me     int // this client's user id
	queue  []Op
	post   []byte
	posted uint64
}

// NewTwitter builds a generator for one client instance.
func NewTwitter(rand *sim.Rand, clientID int, cfg TwitterConfig) *Twitter {
	if cfg.Users <= 0 {
		cfg.Users = 1000
	}
	if cfg.PostLen <= 0 {
		cfg.PostLen = 100
	}
	if cfg.TimelineLen <= 0 {
		cfg.TimelineLen = 10
	}
	if cfg.UpdateRatio == 0 {
		cfg.UpdateRatio = 0.5 // retwis default mix: half posts/follows
	}
	t := &Twitter{cfg: cfg, rand: rand, me: clientID % cfg.Users, post: make([]byte, cfg.PostLen)}
	for i := range t.post {
		t.post[i] = byte('t')
	}
	return t
}

// Redis commands ride in OpTxn requests: Args[0] = command name, then the
// command arguments. The server-side RedisHandler interprets them.
func redisCmd(update bool, cmd string, args ...[]byte) Op {
	return Op{Req: protocol.TxnReq([]byte(cmd), args...), Update: update}
}

func userKey(prefix string, uid int) []byte {
	return []byte(fmt.Sprintf("%s:%d", prefix, uid))
}

// Next implements Generator.
func (t *Twitter) Next() Op {
	if len(t.queue) > 0 {
		op := t.queue[0]
		t.queue = t.queue[1:]
		return op
	}
	if t.rand.Float64() < t.cfg.UpdateRatio {
		if t.rand.Float64() < 0.7 {
			t.enqueuePost()
		} else {
			t.enqueueFollow()
		}
	} else {
		t.enqueueTimelineRead()
	}
	return t.Next()
}

// enqueuePost emits the retwis "post" action: allocate a post id (getUID in
// Figure 4 — no cross-client ordering), store the tweet, push it onto the
// poster's timeline and the global timeline.
func (t *Twitter) enqueuePost() {
	t.posted++
	pid := fmt.Sprintf("c%d-%d", t.me, t.posted) // client-local id, like getUID
	t.queue = append(t.queue,
		redisCmd(true, "INCR", []byte("next_post_id")),
		redisCmd(true, "SET", []byte("post:"+pid), t.post),
		redisCmd(true, "LPUSH", userKey("timeline", t.me), []byte(pid)),
		redisCmd(true, "LPUSH", []byte("timeline:global"), []byte(pid)),
	)
}

// enqueueFollow emits the "follow" action: two set insertions.
func (t *Twitter) enqueueFollow() {
	other := t.rand.Intn(t.cfg.Users)
	t.queue = append(t.queue,
		redisCmd(true, "SADD", userKey("followers", other), []byte(fmt.Sprintf("%d", t.me))),
		redisCmd(true, "SADD", userKey("following", t.me), []byte(fmt.Sprintf("%d", other))),
	)
}

// enqueueTimelineRead emits the "home timeline" action: fetch the post list
// then two posts.
func (t *Twitter) enqueueTimelineRead() {
	who := t.rand.Intn(t.cfg.Users)
	t.queue = append(t.queue,
		redisCmd(false, "LRANGE", userKey("timeline", who),
			[]byte("0"), []byte(fmt.Sprintf("%d", t.cfg.TimelineLen-1))),
		redisCmd(false, "GET", []byte(fmt.Sprintf("post:c%d-1", who))),
		redisCmd(false, "GET", []byte("post:latest")),
	)
}
