package stats

import (
	"testing"

	"pmnet/internal/sim"
)

// Regression for the CDF/Percentile clamp mismatch: CDF() used to emit raw
// bucket representatives while Percentile() clamped them to [min, max], so a
// rendered CDF endpoint could disagree with the reported max from the same
// histogram. Both must clamp identically.
func TestCDFClampSingleSample(t *testing.T) {
	h := NewHistogram()
	// 1001 lives in a bucket whose representative is 1000 — below the
	// observed min — so an unclamped CDF would report a latency the
	// histogram never saw.
	h.Record(1001)
	cdf := h.CDF()
	if len(cdf) != 1 {
		t.Fatalf("CDF() returned %d points, want 1", len(cdf))
	}
	if cdf[0].Latency != 1001 || cdf[0].Fraction != 1.0 {
		t.Errorf("CDF() = {%v, %v}, want {1001, 1}", cdf[0].Latency, cdf[0].Fraction)
	}
	if got, want := cdf[0].Latency, h.Percentile(100); got != want {
		t.Errorf("CDF endpoint %v disagrees with p100 %v", got, want)
	}
}

func TestCDFClampTwoSamples(t *testing.T) {
	h := NewHistogram()
	// 1030's bucket representative is 1040 > max; 1001's is 1000 < min.
	h.Record(1001)
	h.Record(1030)
	cdf := h.CDF()
	if len(cdf) != 2 {
		t.Fatalf("CDF() returned %d points, want 2", len(cdf))
	}
	if cdf[0].Latency != 1001 {
		t.Errorf("first CDF point latency %v, want clamped-to-min 1001", cdf[0].Latency)
	}
	if cdf[1].Latency != 1030 {
		t.Errorf("last CDF point latency %v, want clamped-to-max 1030", cdf[1].Latency)
	}
	for _, pt := range cdf {
		if pt.Latency < h.Min() || pt.Latency > h.Max() {
			t.Errorf("CDF latency %v outside observed range [%v, %v]", pt.Latency, h.Min(), h.Max())
		}
	}
}

func TestReservoirExactBelowCapacity(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 1; i <= 50; i++ {
		r.Record(sim.Time(i))
	}
	if r.Len() != 50 || r.Seen() != 50 {
		t.Fatalf("len=%d seen=%d, want 50/50", r.Len(), r.Seen())
	}
	if got := r.Percentile(100); got != 50 {
		t.Errorf("p100 = %v, want 50 (exact below capacity)", got)
	}
	if got := r.Percentile(50); got != 25 {
		t.Errorf("p50 = %v, want 25", got)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	run := func() []sim.Time {
		r := NewReservoir(64, 9)
		rnd := sim.NewRand(4)
		for i := 0; i < 100000; i++ {
			r.Record(sim.Time(rnd.Intn(1 << 20)))
		}
		return r.Samples()
	}
	a, b := run(), run()
	if len(a) != 64 {
		t.Fatalf("retained %d, want 64", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed reservoirs diverged at %d: %v != %v", i, a[i], b[i])
		}
	}
}

// The retained sample must stay approximately uniform over the stream: feed
// 0..n-1 and check the retained mean sits near n/2.
func TestReservoirUniformity(t *testing.T) {
	const n = 1 << 18
	r := NewReservoir(512, 7)
	for i := 0; i < n; i++ {
		r.Record(sim.Time(i))
	}
	var sum float64
	for _, v := range r.Samples() {
		sum += float64(v)
	}
	mean := sum / float64(r.Len())
	if mean < 0.4*n || mean > 0.6*n {
		t.Errorf("retained mean %.0f, want ≈%d (uniform over stream)", mean, n/2)
	}
}

func TestReservoirMergeDeterministic(t *testing.T) {
	build := func() (*Reservoir, *Reservoir) {
		a := NewReservoir(32, 11)
		b := NewReservoir(32, 12)
		for i := 0; i < 1000; i++ {
			a.Record(sim.Time(i))
			b.Record(sim.Time(100000 + i))
		}
		return a, b
	}
	a1, b1 := build()
	a2, b2 := build()
	a1.Merge(b1)
	a2.Merge(b2)
	if a1.Seen() != 2000 {
		t.Fatalf("merged seen = %d, want 2000", a1.Seen())
	}
	s1, s2 := a1.Samples(), a2.Samples()
	if len(s1) != 32 {
		t.Fatalf("merged len = %d, want 32", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same-seed merges diverged at %d", i)
		}
	}
	// Both sides must be represented (equal weights, 32 slots).
	var lo, hi int
	for _, v := range s1 {
		if v < 100000 {
			lo++
		} else {
			hi++
		}
	}
	if lo == 0 || hi == 0 {
		t.Errorf("merge dropped a side entirely: lo=%d hi=%d", lo, hi)
	}
}

func TestReservoirMergeIntoEmpty(t *testing.T) {
	a := NewReservoir(16, 1)
	b := NewReservoir(16, 2)
	for i := 1; i <= 10; i++ {
		b.Record(sim.Time(i))
	}
	a.Merge(b)
	if a.Seen() != 10 || a.Len() != 10 {
		t.Fatalf("seen=%d len=%d, want 10/10", a.Seen(), a.Len())
	}
	a.Merge(NewReservoir(16, 3)) // merging an empty reservoir is a no-op
	if a.Seen() != 10 {
		t.Fatalf("empty merge changed seen to %d", a.Seen())
	}
}
