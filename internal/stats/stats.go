// Package stats provides the measurement plumbing for the evaluation
// harness: a log-bucketed latency histogram (HdrHistogram-style) with
// percentile and CDF extraction, and throughput accounting.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"pmnet/internal/sim"
)

// Histogram records durations in logarithmic buckets: 64 major buckets (one
// per power of two) with 32 minor linear sub-buckets each, giving ≤ ~3%
// relative error across the full range — plenty for tail-latency reporting.
// The zero value is an empty histogram ready for use.
type Histogram struct {
	counts [64 * 32]uint64
	total  uint64
	sum    float64
	min    sim.Time // valid only when total > 0
	max    sim.Time // valid only when total > 0
}

// NewHistogram returns an empty histogram. Equivalent to new(Histogram).
func NewHistogram() *Histogram {
	return &Histogram{}
}

func bucketIndex(v sim.Time) int {
	if v < 0 {
		v = 0
	}
	major := 0
	if v > 0 {
		major = 63 - bits.LeadingZeros64(uint64(v))
	}
	if major >= 64 {
		major = 63
	}
	var minor int
	if major >= 5 {
		minor = int((uint64(v) >> (uint(major) - 5)) & 31)
	} else {
		minor = int(uint64(v) & 31)
	}
	return major*32 + minor
}

// bucketMid returns a representative value for a bucket.
func bucketMid(idx int) sim.Time {
	major := idx / 32
	minor := idx % 32
	if major < 5 {
		return sim.Time(minor)
	}
	base := uint64(1) << uint(major)
	step := base / 32
	return sim.Time(base + uint64(minor)*step + step/2)
}

// Record adds one sample.
func (h *Histogram) Record(v sim.Time) {
	h.counts[bucketIndex(v)]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.total++
	h.sum += float64(v)
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the sample mean.
func (h *Histogram) Mean() sim.Time {
	if h.total == 0 {
		return 0
	}
	return sim.Time(h.sum / float64(h.total))
}

// Min and Max return sample extremes.
func (h *Histogram) Min() sim.Time {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Percentile returns the p-th percentile (0 < p ≤ 100).
func (h *Histogram) Percentile(p float64) sim.Time {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 100 {
		return h.max
	}
	target := uint64(math.Ceil(p / 100 * float64(h.total)))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			// Clamp the bucket representative to the observed range so
			// percentiles never stray outside [min, max].
			v := bucketMid(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// CDFPoint is one point of the cumulative distribution.
type CDFPoint struct {
	Latency  sim.Time
	Fraction float64
}

// CDF returns the cumulative distribution at every non-empty bucket. Bucket
// representatives are clamped to the observed [min, max] exactly like
// Percentile, so a rendered CDF endpoint always agrees with the reported
// p99/max from the same histogram.
func (h *Histogram) CDF() []CDFPoint {
	if h.total == 0 {
		return nil
	}
	var out []CDFPoint
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		v := bucketMid(i)
		if v > h.max {
			v = h.max
		}
		if v < h.min {
			v = h.min
		}
		out = append(out, CDFPoint{Latency: v, Fraction: float64(cum) / float64(h.total)})
	}
	return out
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.total == 0 || other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean(), h.Percentile(50), h.Percentile(99), h.max)
}

// Run aggregates one experiment run: latency distribution plus throughput.
type Run struct {
	Hist     *Histogram
	Start    sim.Time
	End      sim.Time
	Requests uint64
}

// NewRun returns an empty aggregate starting at start.
func NewRun(start sim.Time) *Run {
	return &Run{Hist: NewHistogram(), Start: start}
}

// Record adds a completed request.
func (r *Run) Record(lat sim.Time, now sim.Time) {
	r.Hist.Record(lat)
	r.Requests++
	if now > r.End {
		r.End = now
	}
}

// Throughput returns requests per second of virtual time.
func (r *Run) Throughput() float64 {
	dur := r.End - r.Start
	if dur <= 0 {
		return 0
	}
	return float64(r.Requests) / (float64(dur) / 1e9)
}

// Table is a rendered experiment result: the rows the paper's figures plot.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b []byte
	b = append(b, t.Title...)
	b = append(b, '\n')
	line := func(cells []string) {
		for i, cell := range cells {
			b = append(b, fmt.Sprintf("%-*s", widths[i]+2, cell)...)
		}
		b = append(b, '\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = dashes(widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return string(b)
}

func dashes(n int) string {
	d := make([]byte, n)
	for i := range d {
		d[i] = '-'
	}
	return string(d)
}

// Sorted returns a sorted copy of xs (helper for exact small-sample stats in
// tests and calibration).
func Sorted(xs []sim.Time) []sim.Time {
	out := append([]sim.Time(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CSV renders the table as RFC-4180-ish CSV (quotes only where needed), one
// header row then data rows.
func (t *Table) CSV() string {
	var b []byte
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b = append(b, ',')
			}
			if needsQuoting(c) {
				b = append(b, '"')
				for _, ch := range []byte(c) {
					if ch == '"' {
						b = append(b, '"', '"')
					} else {
						b = append(b, ch)
					}
				}
				b = append(b, '"')
			} else {
				b = append(b, c...)
			}
		}
		b = append(b, '\n')
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
	return string(b)
}

func needsQuoting(s string) bool {
	for _, ch := range s {
		if ch == ',' || ch == '"' || ch == '\n' {
			return true
		}
	}
	return false
}
