package stats

import (
	"math"
	"testing"

	"pmnet/internal/sim"
)

// TestZeroValueHistogram is the regression test for the broken zero value:
// min used to start at 0 instead of being lazily initialized, so a
// Histogram{} (as opposed to NewHistogram()) clamped Percentile and Min to 0
// forever.
func TestZeroValueHistogram(t *testing.T) {
	var h Histogram
	h.Record(5 * sim.Microsecond)
	h.Record(10 * sim.Microsecond)
	if h.Min() != 5*sim.Microsecond {
		t.Fatalf("zero-value min = %v, want 5µs", h.Min())
	}
	if h.Max() != 10*sim.Microsecond {
		t.Fatalf("zero-value max = %v, want 10µs", h.Max())
	}
	if p := h.Percentile(1); p < 5*sim.Microsecond {
		t.Fatalf("p1 = %v clamped below the observed minimum", p)
	}
}

// TestZeroValueMerge checks Merge into and from zero-value histograms.
func TestZeroValueMerge(t *testing.T) {
	var a, b Histogram
	b.Record(7 * sim.Microsecond)
	b.Record(9 * sim.Microsecond)
	a.Merge(&b)
	if a.Min() != 7*sim.Microsecond || a.Max() != 9*sim.Microsecond {
		t.Fatalf("merge into zero value: min/max %v/%v", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty) // merging an empty histogram must not disturb extremes
	if a.Min() != 7*sim.Microsecond || a.Count() != 2 {
		t.Fatalf("merge of empty histogram disturbed state: min %v count %d", a.Min(), a.Count())
	}
}

// TestPercentileAgainstExact is the property test: over randomized (seeded
// sim.Rand) inputs from several distributions, Histogram.Percentile must stay
// within the documented ~3% relative-error bound of the exact sorted-sample
// percentile, and clamp to min/max as p→0 and p→100.
func TestPercentileAgainstExact(t *testing.T) {
	r := sim.NewRand(42)
	dists := []struct {
		name string
		gen  func() sim.Time
	}{
		{"uniform", func() sim.Time { return sim.Time(r.Intn(1_000_000) + 1) }},
		{"exp", func() sim.Time { return sim.Time(r.Exp(50_000)) + 1 }},
		{"lognormal", func() sim.Time { return sim.Time(r.LogNormal(10, 1)) + 1 }},
		{"small", func() sim.Time { return sim.Time(r.Intn(48)) }},
	}
	percentiles := []float64{0.1, 1, 5, 25, 50, 75, 90, 99, 99.9, 100}
	for _, d := range dists {
		for _, n := range []int{1, 10, 997, 20000} {
			var h Histogram
			samples := make([]sim.Time, n)
			for i := range samples {
				samples[i] = d.gen()
				h.Record(samples[i])
			}
			sorted := Sorted(samples)
			for _, p := range percentiles {
				// The histogram resolves percentile p to the bucket holding
				// the ceil(p/100*n)-th sample; compare against that sample.
				rank := int(math.Ceil(p / 100 * float64(n)))
				if rank < 1 {
					rank = 1
				}
				if rank > n {
					rank = n
				}
				exact := float64(sorted[rank-1])
				got := float64(h.Percentile(p))
				tol := 0.035 * exact
				if tol < 1 {
					tol = 1 // sub-32 buckets are exact; allow integer rounding
				}
				if math.Abs(got-exact) > tol {
					t.Fatalf("%s n=%d p=%v: got %v exact %v (err %.2f%%)",
						d.name, n, p, got, exact, 100*math.Abs(got-exact)/exact)
				}
			}
			// Clamping at the extremes: p≤0 pins to the observed minimum,
			// p≥100 to the observed maximum.
			if h.Percentile(0) != h.Min() || h.Percentile(-5) != h.Min() {
				t.Fatalf("%s n=%d: p→0 not clamped to min", d.name, n)
			}
			if h.Percentile(100) != h.Max() || h.Percentile(150) != h.Max() {
				t.Fatalf("%s n=%d: p→100 not clamped to max", d.name, n)
			}
		}
	}
}
