package stats

import (
	"pmnet/internal/sim"
)

// Reservoir is a deterministic fixed-capacity uniform sample of a stream
// (Vitter's Algorithm R), used for exact-tail spot checks alongside the
// bucketed Histogram: the histogram answers "p99.9 within ~3%", the reservoir
// answers "what exact latencies live out there". All randomness comes from a
// seeded sim.Rand, so at a fixed seed the retained sample — and anything
// rendered from it — is byte-reproducible. Memory is O(capacity) no matter
// how many samples stream through.
type Reservoir struct {
	cap     int
	rand    *sim.Rand
	seen    uint64
	samples []sim.Time
}

// NewReservoir returns an empty reservoir holding at most capacity samples,
// drawing replacement decisions from a stream seeded with seed.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		panic("stats: non-positive reservoir capacity")
	}
	return &Reservoir{cap: capacity, rand: sim.NewRand(seed)}
}

// Record offers one sample. Each of the n samples seen so far has an equal
// capacity/n chance of being retained.
func (r *Reservoir) Record(v sim.Time) {
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		return
	}
	if j := r.rand.Uint64() % r.seen; j < uint64(r.cap) {
		r.samples[j] = v
	}
}

// Seen returns the total number of samples offered.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Len returns the number of samples currently retained.
func (r *Reservoir) Len() int { return len(r.samples) }

// Merge folds other into r: the result is a weighted draw from both retained
// sets, each side weighted by how many stream samples it represents. Callers
// must merge in a fixed order (the harness merges per-client reservoirs in
// client-index order) for byte-identical results.
func (r *Reservoir) Merge(other *Reservoir) {
	if other.seen == 0 {
		return
	}
	if r.seen == 0 {
		r.samples = append(r.samples[:0], other.samples...)
		r.seen = other.seen
		return
	}
	a := append([]sim.Time(nil), r.samples...)
	b := other.samples
	wa, wb := float64(r.seen), float64(other.seen)
	merged := r.samples[:0]
	ai, bi := 0, 0
	for len(merged) < r.cap && (ai < len(a) || bi < len(b)) {
		takeA := bi >= len(b) || (ai < len(a) && r.rand.Float64() < wa/(wa+wb))
		if takeA {
			merged = append(merged, a[ai])
			ai++
		} else {
			merged = append(merged, b[bi])
			bi++
		}
	}
	r.samples = merged
	r.seen += other.seen
}

// Percentile returns the exact nearest-rank p-th percentile of the retained
// sample (0 < p ≤ 100), or 0 when empty.
func (r *Reservoir) Percentile(p float64) sim.Time {
	if len(r.samples) == 0 {
		return 0
	}
	s := Sorted(r.samples)
	if p <= 0 {
		return s[0]
	}
	idx := int(p/100*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Samples returns the retained samples in sorted order.
func (r *Reservoir) Samples() []sim.Time {
	return Sorted(r.samples)
}
