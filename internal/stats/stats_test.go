package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pmnet/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(sim.Time(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	mean := h.Mean()
	if mean < 49*sim.Microsecond || mean > 52*sim.Microsecond {
		t.Fatalf("mean %v, want ≈50.5µs", mean)
	}
	p50 := h.Percentile(50)
	if p50 < 45*sim.Microsecond || p50 > 56*sim.Microsecond {
		t.Fatalf("p50 %v", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 95*sim.Microsecond || p99 > 105*sim.Microsecond {
		t.Fatalf("p99 %v", p99)
	}
	if h.Min() != 1*sim.Microsecond || h.Max() != 100*sim.Microsecond {
		t.Fatalf("min/max %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	v := sim.Time(123456789)
	h.Record(v)
	got := h.Percentile(50)
	err := math.Abs(float64(got-v)) / float64(v)
	if err > 0.04 {
		t.Fatalf("relative error %.3f for %v→%v", err, v, got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(99) != 0 || h.Min() != 0 || h.CDF() != nil {
		t.Fatal("empty histogram must return zeros")
	}
}

func TestHistogramZeroAndSmall(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(1)
	h.Record(31)
	if h.Count() != 3 {
		t.Fatal("small values lost")
	}
	if h.Percentile(1) > 31 {
		t.Fatalf("p1 = %v", h.Percentile(1))
	}
}

func TestCDFMonotonic(t *testing.T) {
	h := NewHistogram()
	r := sim.NewRand(3)
	for i := 0; i < 10000; i++ {
		h.Record(sim.Time(r.Exp(50000)))
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Fraction < cdf[i-1].Fraction || cdf[i].Latency < cdf[i-1].Latency {
			t.Fatal("CDF not monotonic")
		}
	}
	last := cdf[len(cdf)-1]
	if math.Abs(last.Fraction-1.0) > 1e-9 {
		t.Fatalf("CDF does not reach 1: %v", last.Fraction)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(10 * sim.Microsecond)
	b.Record(20 * sim.Microsecond)
	b.Record(30 * sim.Microsecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count %d", a.Count())
	}
	if a.Min() != 10*sim.Microsecond || a.Max() != 30*sim.Microsecond {
		t.Fatal("merged extremes wrong")
	}
}

func TestRunThroughput(t *testing.T) {
	r := NewRun(0)
	for i := 1; i <= 1000; i++ {
		r.Record(10*sim.Microsecond, sim.Time(i)*10*sim.Microsecond)
	}
	// 1000 requests over 10 ms = 100k req/s.
	tp := r.Throughput()
	if tp < 99e3 || tp > 101e3 {
		t.Fatalf("throughput %.0f", tp)
	}
}

func TestTableFormat(t *testing.T) {
	tbl := Table{Title: "Fig X", Columns: []string{"design", "latency"}}
	tbl.AddRow("baseline", "60µs")
	tbl.AddRow("pmnet", "21µs")
	out := tbl.Format()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "baseline") {
		t.Fatalf("format output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines", len(lines))
	}
}

// Property: percentiles are monotone in p and bounded by min/max bucket
// representations.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(sim.Time(v))
		}
		prev := sim.Time(-1)
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 100} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the histogram's relative error stays within the bucket design
// bound (~1/32 + rounding) for values ≥ 32.
func TestQuickRelativeError(t *testing.T) {
	f := func(v uint32) bool {
		if v < 32 {
			return true
		}
		h := NewHistogram()
		h.Record(sim.Time(v))
		got := h.Percentile(100)
		relErr := math.Abs(float64(got)-float64(v)) / float64(v)
		return relErr <= 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := Table{Columns: []string{"a", "b"}}
	tbl.AddRow("plain", `with "quotes", and comma`)
	got := tbl.CSV()
	want := "a,b\nplain,\"with \"\"quotes\"\", and comma\"\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}
