package dataplane

import "container/list"

// CacheState is the per-entry state of the integrated read cache
// (Figure 11 of the paper).
type CacheState uint8

const (
	// CacheInvalid: entry unused (initial state).
	CacheInvalid CacheState = iota
	// CachePending: the latest update to this key is logged in PMNet but
	// not yet persisted by the server. Serves reads.
	CachePending
	// CachePersisted: the server has persisted the logged request. Serves
	// reads.
	CachePersisted
	// CacheStale: a newer in-flight update superseded the logged entry; it
	// must not serve reads and becomes Invalid once the old update's
	// server-ACK arrives.
	CacheStale
)

func (s CacheState) String() string {
	switch s {
	case CacheInvalid:
		return "invalid"
	case CachePending:
		return "pending"
	case CachePersisted:
		return "persisted"
	case CacheStale:
		return "stale"
	default:
		return "?"
	}
}

// servable reports whether an entry in this state may answer reads
// ("When the state is Pending or Persisted, the entry can serve for read
// cache", §IV-D).
func (s CacheState) servable() bool { return s == CachePending || s == CachePersisted }

type cacheEntry struct {
	key   string
	state CacheState
	value []byte
	elem  *list.Element
}

// CacheStats counts read-cache activity.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Fills     uint64 // insertions from server read responses
	Evictions uint64
}

// Cache is the PMNet read cache layered on the persistent log (§IV-D). It
// maps application keys to values with the four-state protocol of Figure 11,
// bounded by an LRU policy that never evicts entries holding protocol state
// for in-flight updates (Pending/Stale).
type Cache struct {
	capacity int
	entries  map[string]*cacheEntry
	lru      *list.List // front = most recent
	stats    CacheStats
}

// NewCache creates a cache bounded to capacity entries. capacity must be
// positive.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		panic("dataplane: cache capacity must be positive")
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[string]*cacheEntry, capacity),
		lru:      list.New(),
	}
}

// Stats returns a copy of the cache counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Len returns the number of entries (any state).
func (c *Cache) Len() int { return len(c.entries) }

// State returns the protocol state of key (CacheInvalid if absent).
func (c *Cache) State(key string) CacheState {
	if e, ok := c.entries[key]; ok {
		return e.state
	}
	return CacheInvalid
}

func (c *Cache) touch(e *cacheEntry) { c.lru.MoveToFront(e.elem) }

// evictOne removes the least recently used entry whose state permits
// eviction. Returns false if every entry is protocol-pinned.
func (c *Cache) evictOne() bool {
	//pmnetlint:ignore boundedwork walk is capped by the cache capacity (lru.Len <= c.capacity, a fixed table size)
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if e.state == CachePending || e.state == CacheStale {
			continue // pinned: holds in-flight protocol state
		}
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.stats.Evictions++
		return true
	}
	return false
}

func (c *Cache) insert(key string, state CacheState, value []byte) *cacheEntry {
	if len(c.entries) >= c.capacity {
		if !c.evictOne() {
			return nil // cache full of pinned entries
		}
	}
	e := &cacheEntry{key: key, state: state, value: value}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	return e
}

// Lookup serves a read: on a hit (entry Pending or Persisted) it returns the
// value. The miss counter includes unservable (Stale/Invalid) entries.
func (c *Cache) Lookup(key string) ([]byte, bool) {
	e, ok := c.entries[key]
	if !ok || !e.state.servable() {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.touch(e)
	return e.value, true
}

// OnUpdate applies the state transitions for an update-req to key carrying
// value (T1, T3, T4, T5 in Figure 11).
func (c *Cache) OnUpdate(key string, value []byte) {
	e, ok := c.entries[key]
	if !ok || e == nil {
		c.insert(key, CachePending, value) // T1
		return
	}
	switch e.state {
	case CacheInvalid:
		e.state = CachePending // T1
		e.value = value
		c.touch(e)
	case CachePersisted:
		e.state = CachePending // T3
		e.value = value
		c.touch(e)
	case CachePending:
		e.state = CacheStale // T4: superseded before the server persisted
		e.value = nil
	case CacheStale:
		// T5: remains stale.
	}
}

// OnServerAck applies the transitions for the server-ACK of an update to key
// (T2, T6 in Figure 11).
func (c *Cache) OnServerAck(key string) {
	e, ok := c.entries[key]
	if !ok {
		return
	}
	switch e.state {
	case CachePending:
		e.state = CachePersisted // T2
	case CacheStale:
		e.state = CacheInvalid // T6
		e.value = nil
	}
}

// OnReadResponse fills the cache from a server read response (step 5 in
// Figure 10). It only installs the value when no in-flight update owns the
// entry — overwriting a Pending/Stale entry with a possibly older server
// value would break consistency.
func (c *Cache) OnReadResponse(key string, value []byte) {
	e, ok := c.entries[key]
	if !ok {
		if c.insert(key, CachePersisted, value) != nil {
			c.stats.Fills++
		}
		return
	}
	if e.state == CacheInvalid {
		e.state = CachePersisted
		e.value = value
		c.touch(e)
		c.stats.Fills++
	}
}
