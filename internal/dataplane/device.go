// Package dataplane implements the PMNet device: a programmable data plane
// (deployable as a ToR switch or a bump-in-the-wire NIC) augmented with
// persistent memory that logs in-flight update requests and acknowledges
// clients with sub-RTT latency (§IV of the paper).
//
// The device realizes the paper's three-stage match-action pipeline
// (Figure 8): ingress classification by UDP port and Type field, a PM-access
// stage operating on the hash-indexed request log through SRAM log queues,
// and an egress stage that forwards packets and generates PMNet-ACKs.
package dataplane

import (
	"pmnet/internal/netsim"
	"pmnet/internal/pmem"
	"pmnet/internal/protocol"
	"pmnet/internal/sim"
	"pmnet/internal/trace"
)

// Config parameterizes a PMNet device.
type Config struct {
	// PipelineLatency is the MAT pipeline traversal time applied to every
	// forwarded packet (the FPGA adds sub-microsecond forwarding latency).
	PipelineLatency sim.Time
	// LogBytes sizes the PM request log. The bandwidth-delay product of the
	// network bounds what is ever needed (Equation 1: ≈5 Mbit at 10 Gbps).
	LogBytes int
	// SlotBytes is the fixed log slot size; must hold an MTU-sized packet.
	SlotBytes int
	// QueueBytes sizes the SRAM log queues decoupling the pipeline from PM
	// (§V-A provisions 4 KB).
	QueueBytes int
	// CacheEntries enables the integrated read cache when positive (§IV-D).
	CacheEntries int
	// EntryTTL is the repair timeout: a log entry still live after this
	// long is resent to its server (the server's SeqNum dedupe answers
	// with a make-up ACK that reclaims the slot, §IV-E1). This covers lost
	// forwarded copies AND lost server-ACKs without waiting for a full
	// recovery poll. 0 = 5 ms; negative disables.
	EntryTTL sim.Time
	// ResendLimit caps TTL resends per entry (0 = 5).
	ResendLimit int
	// PM overrides the PM device model; zero value uses the paper-calibrated
	// defaults with LogBytes capacity.
	PM pmem.Config
	// Pin places the device in the sharded testbed's partition plan
	// (ignored by unsharded runs). The device chain normally forms its own
	// partition so it pipelines against the ToR and the servers; PinWithToR
	// glues it into the ToR's partition instead — the right call when the
	// ToR→device patch link is so short it would drag the fabric lookahead
	// (and with it every epoch) down.
	Pin PinMode
}

// PinMode selects a device's partition in a sharded testbed.
type PinMode uint8

const (
	// PinChain: devices form the chain partition (default).
	PinChain PinMode = iota
	// PinWithToR: devices join the ToR's partition.
	PinWithToR
)

// DefaultConfig returns the paper's device configuration.
//
// LogBytes is sized well above the Equation-1 BDP (~640 KB at 10 Gbps):
// entries stay live until the server's ACK retires them, so under server
// load the live set tracks the server queue, and a small table would bleed
// throughput to hash collisions. The paper's board carries 2 GB; 32 MB
// (16 Ki slots) keeps the collision rate negligible at saturation.
func DefaultConfig() Config {
	return Config{
		PipelineLatency: 500 * sim.Nanosecond,
		LogBytes:        32 << 20,
		SlotBytes:       2048, // one MTU packet + metadata
		QueueBytes:      4096, // §V-A
	}
}

// Stats aggregates device activity.
type Stats struct {
	Log             LogStats
	Cache           CacheStats
	AcksSent        uint64 // PMNet-ACKs generated
	Forwarded       uint64 // packets forwarded by the egress stage
	RetransAnswered uint64 // Retrans served from the log
	RecoveryResends uint64 // logged requests replayed to a recovering server
	TTLResends      uint64 // repair resends of entries live past EntryTTL
	CacheResponses  uint64 // reads served by the cache
}

// Device is a PMNet switch/NIC attached to the simulated network.
type Device struct {
	id    netsim.NodeID
	net   *netsim.Network
	eng   *sim.Engine
	cfg   Config
	pm    *pmem.Device
	queue *pmem.Queue
	log   *LogTable
	cache *Cache

	// hashKey maps a logged update's HashVal to its application key so the
	// read cache can apply server-ACK transitions (SRAM metadata; rebuilt
	// empty after a device restart, which only costs cache warmth).
	hashKey map[uint32]string

	stats  Stats
	tracer *trace.Tracer // picked up from the network at New; nil = off
	down   bool
	jobs   []*pipeJob // recycled egress records (per-device)
}

// pipeJob is one pooled traversal of the MAT pipeline: a packet waiting out
// PipelineLatency before hitting the wire. Its callback is bound once at
// allocation, so forwarding and device-generated sends allocate no closures
// in steady state.
type pipeJob struct {
	d   *Device
	pkt *netsim.Packet
	fn  func()
}

func (d *Device) getJob(pkt *netsim.Packet) *pipeJob {
	var j *pipeJob
	if k := len(d.jobs) - 1; k >= 0 {
		j = d.jobs[k]
		d.jobs = d.jobs[:k]
	} else {
		j = &pipeJob{d: d}
		j.fn = func() { j.d.egress(j) }
	}
	j.pkt = pkt
	return j
}

// egress fires when a packet clears the pipeline: recycle the record, then
// transmit — or drop (and recycle the packet) if the device died meanwhile.
func (d *Device) egress(j *pipeJob) {
	pkt := j.pkt
	j.pkt = nil
	d.jobs = append(d.jobs, j)
	if d.down {
		d.net.FreePacket(pkt)
		return
	}
	d.net.Transmit(pkt, d.id)
}

// New creates a PMNet device, registers it with the network under name, and
// returns it.
func New(net *netsim.Network, id netsim.NodeID, name string, cfg Config) *Device {
	if cfg.PipelineLatency <= 0 {
		cfg.PipelineLatency = 500 * sim.Nanosecond
	}
	if cfg.LogBytes <= 0 {
		cfg.LogBytes = DefaultConfig().LogBytes
	}
	if cfg.SlotBytes <= 0 {
		cfg.SlotBytes = DefaultConfig().SlotBytes
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = DefaultConfig().QueueBytes
	}
	if cfg.EntryTTL == 0 {
		cfg.EntryTTL = 5 * sim.Millisecond
	}
	if cfg.ResendLimit <= 0 {
		cfg.ResendLimit = 5
	}
	pmCfg := cfg.PM
	if pmCfg.Capacity == 0 {
		pmCfg = pmem.DefaultConfig(cfg.LogBytes)
	}
	dev := pmem.NewDevice(pmCfg)
	queue := pmem.NewQueue(net.Engine(), dev, cfg.QueueBytes)
	d := &Device{
		id:      id,
		net:     net,
		eng:     net.Engine(),
		cfg:     cfg,
		pm:      dev,
		queue:   queue,
		log:     NewLogTable(dev, queue, cfg.SlotBytes),
		hashKey: make(map[uint32]string),
		tracer:  net.Tracer(),
	}
	if cfg.CacheEntries > 0 {
		d.cache = NewCache(cfg.CacheEntries)
	}
	net.AddNode(d, name)
	return d
}

// ID implements netsim.Node.
func (d *Device) ID() netsim.NodeID { return d.id }

// Stats returns a copy of the device counters (cache stats included when
// caching is enabled).
func (d *Device) Stats() Stats {
	s := d.stats
	if d.cache != nil {
		s.Cache = d.cache.Stats()
	}
	return s
}

// Log exposes the log table for tests and recovery inspection.
func (d *Device) Log() *LogTable { return d.log }

// Cache exposes the read cache (nil when disabled).
func (d *Device) Cache() *Cache { return d.cache }

// PM exposes the device's persistent memory.
func (d *Device) PM() *pmem.Device { return d.pm }

// Queue exposes the SRAM log queue.
func (d *Device) Queue() *pmem.Queue { return d.queue }

// Fail crashes the device. Its battery-backed PM retains every persisted
// log entry; SRAM contents (log queues, cache, hash→key map) are lost.
func (d *Device) Fail() {
	d.down = true
	d.net.SetNodeDown(d.id, true)
	d.queue.PowerFail()
	d.pm.PowerFail() // unpersisted media writes are dropped; durable data stays
}

// Restart brings the device back: it rescans PM to rebuild the slot index
// (RebuildIndex) and resumes with a cold cache.
func (d *Device) Restart() {
	d.down = false
	d.log.RebuildIndex()
	d.hashKey = make(map[uint32]string)
	if d.cache != nil {
		d.cache = NewCache(d.cfg.CacheEntries)
	}
	d.net.SetNodeDown(d.id, false)
}

// Down reports whether the device is failed.
func (d *Device) Down() bool { return d.down }

// forward sends pkt one hop toward its destination after the pipeline
// latency.
func (d *Device) forward(pkt *netsim.Packet) {
	d.stats.Forwarded++
	d.eng.After(d.cfg.PipelineLatency, d.getJob(pkt).fn)
}

// send emits a device-generated packet (ACK, cache response, regenerated
// request) after the pipeline latency.
func (d *Device) send(pkt *netsim.Packet) {
	d.eng.After(d.cfg.PipelineLatency, d.getJob(pkt).fn)
}

// sendNew builds a device-originated PMNet packet on a pooled allocation and
// emits it through the pipeline.
func (d *Device) sendNew(to netsim.NodeID, srcPort, dstPort uint16, msg protocol.Message) {
	pkt := d.net.AllocPacket()
	pkt.ID = d.net.NewPacketID()
	pkt.From = d.id
	pkt.To = to
	pkt.SrcPort = srcPort
	pkt.DstPort = dstPort
	pkt.PMNet = true
	pkt.Msg = msg
	d.send(pkt)
}

// HandlePacket implements the ingress stage (Figure 8): classify by port and
// Type, then dispatch to the PM-access and egress stages.
func (d *Device) HandlePacket(pkt *netsim.Packet) {
	if d.down {
		d.net.FreePacket(pkt)
		return
	}
	// PMNet traffic is identified by the reserved UDP port range (§IV-A2).
	// Server-bound packets carry it as the destination port; packets
	// flowing back to a client (server-ACK, read responses, Retrans) carry
	// it as the source port.
	if !pkt.PMNet || !(protocol.IsPMNetPort(pkt.DstPort) || protocol.IsPMNetPort(pkt.SrcPort)) {
		// Non-PMNet traffic: PMNet is still a regular network device.
		if pkt.To != d.id {
			d.forward(pkt)
			return
		}
		d.net.FreePacket(pkt)
		return
	}
	switch pkt.Msg.Hdr.Type {
	case protocol.TypeUpdateReq:
		d.handleUpdate(pkt)
	case protocol.TypeBypassReq:
		d.handleBypass(pkt)
	case protocol.TypeServerACK:
		d.handleServerAck(pkt)
	case protocol.TypeRetrans:
		d.handleRetrans(pkt)
	case protocol.TypeRecoverReq:
		if pkt.To == d.id {
			d.startRecovery(pkt.From)
			d.net.FreePacket(pkt)
		} else {
			d.forward(pkt)
		}
	case protocol.TypeReadResp:
		d.handleReadResp(pkt)
	default:
		// PMNet-ACK from another PMNet, cache responses, anything else:
		// forward along the path (§IV-B1).
		if pkt.To != d.id {
			d.forward(pkt)
			return
		}
		d.net.FreePacket(pkt)
	}
}

// cacheKeyValue extracts the (key, value) of a cacheable single-fragment
// KV update, or ok=false.
func cacheKeyValue(msg protocol.Message) (key string, value []byte, ok bool) {
	if msg.Hdr.FragTotal > 1 {
		return "", nil, false
	}
	req, err := protocol.DecodeRequest(msg.Payload)
	if err != nil || req.Op != protocol.OpPut || len(req.Args) < 2 {
		return "", nil, false
	}
	return string(req.Args[0]), req.Args[1], true
}

// handleUpdate logs the packet, forwards it to the server, and ACKs the
// client once the log entry is persistent (Figure 3, steps 2–4).
func (d *Device) handleUpdate(pkt *netsim.Packet) {
	if d.tracer != nil {
		d.tracer.Emit(trace.EvPipeline, uint64(d.id), pkt.ID,
			trace.SpanID(pkt.Msg.Hdr.SessionID, pkt.Msg.Hdr.SeqNum))
	}
	// Egress: the update always continues to the server immediately; the PM
	// write proceeds in parallel ("While the request is being written to PM,
	// PMNet forwards it to the destination server").
	d.forward(pkt)

	msg := pkt.Msg
	client := pkt.From
	server := pkt.To
	srcPort, dstPort := pkt.SrcPort, pkt.DstPort
	res := d.log.Insert(msg, int(server), &d.stats.Log, func() {
		d.armEntryTTL(msg.Hdr.HashVal)
		if d.tracer != nil {
			span := trace.SpanID(msg.Hdr.SessionID, msg.Hdr.SeqNum)
			d.tracer.Emit(trace.EvPersist, uint64(d.id), uint64(msg.Hdr.HashVal), span)
			d.tracer.Emit(trace.EvPMNetAck, uint64(d.id), 0, span)
			d.emitGauges()
		}
		// Persist complete: generate the PMNet-ACK (egress step 6').
		ack := protocol.Header{
			Type:      protocol.TypePMNetACK,
			SessionID: msg.Hdr.SessionID,
			SeqNum:    msg.Hdr.SeqNum,
			FragIdx:   msg.Hdr.FragIdx,
			FragTotal: msg.Hdr.FragTotal,
		}
		ack.Seal()
		d.stats.AcksSent++
		d.sendNew(client, dstPort, srcPort, protocol.Message{Hdr: ack})
	})
	if res == insertAccepted && d.cache != nil {
		if key, value, ok := cacheKeyValue(msg); ok {
			d.hashKey[msg.Hdr.HashVal] = key
			d.cache.OnUpdate(key, value)
		}
	}
	// Collision / queue-full / oversize: the packet was forwarded but not
	// logged and the client gets no early ACK (§IV-B1). It will complete on
	// the server's ACK instead.
}

// handleBypass forwards reads and synchronization requests; with caching
// enabled, GET requests may be served from the cache (Figure 10).
func (d *Device) handleBypass(pkt *netsim.Packet) {
	if d.cache != nil && pkt.Msg.Hdr.FragTotal <= 1 {
		if req, err := protocol.DecodeRequest(pkt.Msg.Payload); err == nil && req.Op == protocol.OpGet && len(req.Args) >= 1 {
			key := req.Args[0]
			if value, hit := d.cache.Lookup(string(key)); hit {
				resp := protocol.Response{Status: protocol.StatusOK, Args: [][]byte{key, value}}
				hdr := protocol.Header{
					Type:      protocol.TypeCacheResp,
					SessionID: pkt.Msg.Hdr.SessionID,
					SeqNum:    pkt.Msg.Hdr.SeqNum,
					FragTotal: 1,
				}
				hdr.Seal()
				d.stats.CacheResponses++
				d.sendNew(pkt.From, pkt.DstPort, pkt.SrcPort,
					protocol.Message{Hdr: hdr, Payload: resp.Encode()})
				d.net.FreePacket(pkt)
				return // served: drop the request
			}
		}
	}
	d.forward(pkt)
}

// handleServerAck reclaims the log entry for the acknowledged request and
// forwards the ACK toward the client so upstream PMNets reclaim too
// (Figure 3 step 5; §IV-B1).
func (d *Device) handleServerAck(pkt *netsim.Packet) {
	hash := pkt.Msg.Hdr.HashVal
	d.log.Invalidate(hash, &d.stats.Log)
	if d.tracer != nil {
		d.emitGauges()
	}
	if d.cache != nil {
		if key, ok := d.hashKey[hash]; ok {
			delete(d.hashKey, hash)
			d.cache.OnServerAck(key)
		}
	}
	if pkt.To != d.id {
		d.forward(pkt)
		return
	}
	d.net.FreePacket(pkt)
}

// handleRetrans answers a server's retransmission request from the log when
// possible, otherwise passes it to the client (§IV-B1).
func (d *Device) handleRetrans(pkt *netsim.Packet) {
	server := pkt.From
	srcPort, dstPort := pkt.SrcPort, pkt.DstPort
	served := d.log.Lookup(pkt.Msg.Hdr.HashVal, &d.stats.Log, func(logged protocol.Message) {
		d.stats.RetransAnswered++
		d.sendNew(server, dstPort, srcPort, logged)
	})
	if !served && pkt.To != d.id {
		d.forward(pkt) // let the client retransmit
		return
	}
	d.net.FreePacket(pkt) // served (or addressed to us): the request ends here
}

// handleReadResp lets a passing server read response warm the cache
// (Figure 10 step 5), then forwards it.
func (d *Device) handleReadResp(pkt *netsim.Packet) {
	if d.cache != nil && pkt.Msg.Hdr.FragTotal <= 1 {
		if resp, err := protocol.DecodeResponse(pkt.Msg.Payload); err == nil &&
			resp.Status == protocol.StatusOK && len(resp.Args) >= 2 {
			d.cache.OnReadResponse(string(resp.Args[0]), resp.Args[1])
		}
	}
	if pkt.To != d.id {
		d.forward(pkt)
		return
	}
	d.net.FreePacket(pkt)
}

// emitGauges samples the device's occupancy series — log-table live entries
// and PM dirty lines — at points where they just changed. Both reads are
// O(1) (kept incrementally) so this is safe on the per-packet path.
func (d *Device) emitGauges() {
	d.tracer.Emit(trace.GaugeLogLive, uint64(d.id), uint64(d.log.LiveEntries()), 0)
	d.tracer.Emit(trace.GaugePMDirty, uint64(d.id), uint64(d.pm.DirtyLines()), 0)
}

// armEntryTTL schedules the repair timer for a freshly persisted entry: if
// the entry is still live when the timer fires, the forwarded copy or its
// server-ACK was lost — resend the logged request; the server either
// applies it (lost forward) or answers with a make-up server-ACK (lost
// ACK), reclaiming the slot either way.
func (d *Device) armEntryTTL(hash uint32) {
	if d.cfg.EntryTTL < 0 {
		return
	}
	idx := d.log.slotFor(hash)
	d.eng.After(d.cfg.EntryTTL, func() {
		s := &d.log.slots[idx]
		if d.down || s.state != slotValid || s.hash != hash {
			return // reclaimed (or replaced) in the meantime
		}
		if s.resends >= d.cfg.ResendLimit {
			return // give up; the recovery poll remains the backstop
		}
		s.resends++
		dst := netsim.NodeID(s.dst)
		served := d.log.ReadSlot(idx, func(msg protocol.Message, ok bool) {
			if !ok {
				return // reclaimed while the read was queued
			}
			d.stats.TTLResends++
			d.sendNew(dst, 0, protocol.PortMin, msg)
		})
		_ = served // queue momentarily full: the rescheduled timer retries
		d.armEntryTTL(hash)
	})
}

// startRecovery replays every logged request destined for the recovering
// server, one PM read at a time so the read queue never overflows (§IV-E1).
// The server orders the replayed requests by SeqNum and drops duplicates;
// entries logged for other servers in the rack are left alone.
func (d *Device) startRecovery(server netsim.NodeID) {
	slots := d.log.ValidSlotsFor(int(server))
	var next func(i int)
	next = func(i int) {
		if d.down || i >= len(slots) {
			return
		}
		ok := d.log.ReadSlot(slots[i], func(msg protocol.Message, valid bool) {
			if valid {
				d.stats.RecoveryResends++
				d.sendNew(server, 0, protocol.PortMin, msg)
			}
			next(i + 1)
		})
		if !ok {
			// Read queue momentarily full (or the slot was reclaimed by a
			// racing server-ACK): skip reclaimed slots, retry full queues.
			if d.log.slots[slots[i]].state != slotValid {
				next(i + 1)
				return
			}
			d.eng.After(1*sim.Microsecond, func() { next(i) })
		}
	}
	next(0)
}
