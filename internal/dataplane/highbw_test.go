package dataplane

import (
	"testing"

	"pmnet/internal/netsim"
	"pmnet/internal/pmem"
	"pmnet/internal/protocol"
	"pmnet/internal/sim"
)

// TestHundredGigLineRate exercises the §VII claim: PMNet scales to 100 Gbps
// by sizing the SRAM log queue to the PM bandwidth-delay product (Equation
// 2: ~1.25 kB at 100 G). We blast back-to-back MTU updates at line rate and
// verify every packet is logged (no queue-full bypasses): the queue hides
// the PM access latency.
func TestHundredGigLineRate(t *testing.T) {
	eng := sim.NewEngine()
	r := sim.NewRand(9)
	net := netsim.New(eng, r.Fork())
	stack := netsim.StackModel{} // zero-latency injector
	client := netsim.NewHost(net, 1, "client", stack, 1, r.Fork())
	server := netsim.NewHost(net, 2, "server", stack, 1, r.Fork())
	_ = server

	queueBytes := pmem.BDPQueueBytes(300, 100e9) * 4 // Eq.2 with headroom
	pmCfg := pmem.DefaultConfig(32 << 20)
	pmCfg.BandwidthBps = 12.5e9 // §VII: future PM with bandwidth matching 100G
	dev := New(net, 10, "pmnet", Config{
		QueueBytes: queueBytes,
		EntryTTL:   -1,
		PM:         pmCfg,
	})
	link := netsim.LinkConfig{PropDelay: 100 * sim.Nanosecond, Bandwidth: 100e9}
	net.Connect(1, 10, link)
	net.Connect(10, 2, link)

	// 400 MTU-sized updates injected back-to-back at 100G line rate: one
	// 1434B-payload packet every ~120 ns on the wire.
	const n = 400
	payload := make([]byte, 1400)
	for i := 0; i < n; i++ {
		msg := protocol.Fragment(protocol.TypeUpdateReq, 1, uint32(i+1), payload, 0)[0]
		client.Send(&netsim.Packet{
			To: 2, SrcPort: 40001, DstPort: protocol.PortMin, PMNet: true, Msg: msg,
		})
	}
	eng.Run()
	st := dev.Stats()
	if st.Log.BypassedFull != 0 {
		t.Fatalf("queue overflowed at line rate: %d bypasses (queue %dB)",
			st.Log.BypassedFull, queueBytes)
	}
	if st.Log.Logged != n {
		t.Fatalf("logged %d/%d", st.Log.Logged, n)
	}
	if st.AcksSent != n {
		t.Fatalf("acked %d/%d", st.AcksSent, n)
	}
	maxUsed := dev.Queue().Stats().MaxUsedBytes
	if maxUsed > queueBytes {
		t.Fatalf("queue accounting broken: used %d > cap %d", maxUsed, queueBytes)
	}
	t.Logf("100G line rate: %d updates logged, peak queue %dB of %dB", n, maxUsed, queueBytes)
}

// TestTenGigQueueSizedByEquation2 verifies the 10 Gbps case the paper
// provisions: the 4 KB queue never comes close to overflowing.
func TestTenGigQueueSizedByEquation2(t *testing.T) {
	eng := sim.NewEngine()
	r := sim.NewRand(10)
	net := netsim.New(eng, r.Fork())
	stack := netsim.StackModel{}
	client := netsim.NewHost(net, 1, "client", stack, 1, r.Fork())
	netsim.NewHost(net, 2, "server", stack, 1, r.Fork())
	dev := New(net, 10, "pmnet", Config{EntryTTL: -1})
	link := netsim.LinkConfig{PropDelay: 600 * sim.Nanosecond, Bandwidth: 10e9}
	net.Connect(1, 10, link)
	net.Connect(10, 2, link)
	payload := make([]byte, 1400)
	for i := 0; i < 200; i++ {
		msg := protocol.Fragment(protocol.TypeUpdateReq, 1, uint32(i+1), payload, 0)[0]
		client.Send(&netsim.Packet{
			To: 2, SrcPort: 40001, DstPort: protocol.PortMin, PMNet: true, Msg: msg,
		})
	}
	eng.Run()
	if dev.Stats().Log.BypassedFull != 0 {
		t.Fatal("4KB queue overflowed at 10G line rate")
	}
}
