package dataplane

import (
	"testing"

	"pmnet/internal/netsim"
	"pmnet/internal/protocol"
	"pmnet/internal/sim"
)

// rig is a minimal client — PMNet — server testbed with deterministic
// (jitterless) stacks and a toy server that ACKs updates and answers GETs.
type rig struct {
	eng    *sim.Engine
	net    *netsim.Network
	client *netsim.Host
	server *netsim.Host
	dev    *Device

	// client-side capture, by packet type
	clientGot map[protocol.Type][]*netsim.Packet
	// server-side capture of update requests
	serverGot []*netsim.Packet
	// server behaviour knobs
	ackUpdates bool
	store      map[string][]byte
}

const (
	clientID netsim.NodeID = 1
	serverID netsim.NodeID = 2
	devID    netsim.NodeID = 10
)

func newDevRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	if cfg.EntryTTL == 0 {
		// Most tests deliberately park unacknowledged entries in the log;
		// disable the TTL repair path unless a test opts in.
		cfg.EntryTTL = -1
	}
	eng := sim.NewEngine()
	r := sim.NewRand(1)
	net := netsim.New(eng, r.Fork())
	stack := netsim.StackModel{Base: 1 * sim.Microsecond}
	rg := &rig{
		eng:        eng,
		net:        net,
		clientGot:  make(map[protocol.Type][]*netsim.Packet),
		ackUpdates: true,
		store:      make(map[string][]byte),
	}
	rg.client = netsim.NewHost(net, clientID, "client", stack, 1, r.Fork())
	rg.server = netsim.NewHost(net, serverID, "server", stack, 1, r.Fork())
	rg.dev = New(net, devID, "pmnet", cfg)
	link := netsim.LinkConfig{PropDelay: 1 * sim.Microsecond, Bandwidth: 10e9}
	net.Connect(clientID, devID, link)
	net.Connect(devID, serverID, link)

	rg.client.OnReceive(func(p *netsim.Packet) {
		if p.PMNet {
			rg.clientGot[p.Msg.Hdr.Type] = append(rg.clientGot[p.Msg.Hdr.Type], p.Clone())
		}
	})
	rg.server.OnReceive(func(p *netsim.Packet) {
		if !p.PMNet {
			return
		}
		hdr := p.Msg.Hdr
		switch hdr.Type {
		case protocol.TypeUpdateReq:
			rg.serverGot = append(rg.serverGot, p.Clone())
			if req, err := protocol.DecodeRequest(p.Msg.Payload); err == nil && req.Op == protocol.OpPut {
				rg.store[string(req.Args[0])] = req.Args[1]
			}
			if rg.ackUpdates {
				rg.sendServerAck(p)
			}
		case protocol.TypeBypassReq:
			req, err := protocol.DecodeRequest(p.Msg.Payload)
			if err != nil || req.Op != protocol.OpGet {
				return
			}
			val := rg.store[string(req.Args[0])]
			resp := protocol.Response{Status: protocol.StatusOK, Args: [][]byte{req.Args[0], val}}
			rh := protocol.Header{Type: protocol.TypeReadResp, SessionID: hdr.SessionID,
				SeqNum: hdr.SeqNum, FragTotal: 1}
			rh.Seal()
			rg.server.Send(&netsim.Packet{
				To: p.From, SrcPort: p.DstPort, DstPort: p.SrcPort, PMNet: true,
				Msg: protocol.Message{Hdr: rh, Payload: resp.Encode()},
			})
		}
	})
	return rg
}

func (rg *rig) sendServerAck(p *netsim.Packet) {
	hdr := p.Msg.Hdr
	ah := protocol.Header{Type: protocol.TypeServerACK, SessionID: hdr.SessionID,
		SeqNum: hdr.SeqNum, FragIdx: hdr.FragIdx, FragTotal: hdr.FragTotal}
	ah.Seal()
	rg.server.Send(&netsim.Packet{
		To: p.From, SrcPort: p.DstPort, DstPort: p.SrcPort, PMNet: true,
		Msg: protocol.Message{Hdr: ah},
	})
}

// sendUpdate fires one single-fragment update-req from the client.
func (rg *rig) sendUpdate(session uint16, seq uint32, key, value string) protocol.Message {
	req := protocol.PutReq([]byte(key), []byte(value))
	msg := protocol.Fragment(protocol.TypeUpdateReq, session, seq, req.Encode(), 0)[0]
	rg.client.Send(&netsim.Packet{
		To: serverID, SrcPort: 40000, DstPort: protocol.PortMin, PMNet: true, Msg: msg,
	})
	return msg
}

func (rg *rig) sendGet(session uint16, seq uint32, key string) {
	req := protocol.GetReq([]byte(key))
	msg := protocol.Fragment(protocol.TypeBypassReq, session, seq, req.Encode(), 0)[0]
	rg.client.Send(&netsim.Packet{
		To: serverID, SrcPort: 40000, DstPort: protocol.PortMin, PMNet: true, Msg: msg,
	})
}

func TestUpdateLoggedAckedAndInvalidated(t *testing.T) {
	rg := newDevRig(t, DefaultConfig())
	rg.sendUpdate(1, 1, "k", "v")
	rg.eng.Run()

	if len(rg.serverGot) != 1 {
		t.Fatalf("server received %d updates, want 1", len(rg.serverGot))
	}
	acks := rg.clientGot[protocol.TypePMNetACK]
	if len(acks) != 1 {
		t.Fatalf("client received %d PMNet-ACKs, want 1", len(acks))
	}
	sacks := rg.clientGot[protocol.TypeServerACK]
	if len(sacks) != 1 {
		t.Fatalf("client received %d server-ACKs, want 1", len(sacks))
	}
	// The PMNet-ACK must beat the server-ACK: that is the whole point.
	if acks[0].SentAt >= sacks[0].SentAt {
		// SentAt is stamped at the sender; compare via delivery order instead.
		t.Log("warning: SentAt comparison not meaningful; checking stats")
	}
	st := rg.dev.Stats()
	if st.Log.Logged != 1 || st.AcksSent != 1 || st.Log.Invalidated != 1 {
		t.Fatalf("device stats %+v", st)
	}
	if rg.dev.Log().LiveEntries() != 0 {
		t.Fatal("log entry not reclaimed after server-ACK")
	}
}

func TestPMNetAckArrivesBeforeServerAck(t *testing.T) {
	rg := newDevRig(t, DefaultConfig())
	var ackAt, sackAt sim.Time
	rg.client.OnReceive(func(p *netsim.Packet) {
		if !p.PMNet {
			return
		}
		switch p.Msg.Hdr.Type {
		case protocol.TypePMNetACK:
			ackAt = rg.eng.Now()
		case protocol.TypeServerACK:
			sackAt = rg.eng.Now()
		}
	})
	rg.sendUpdate(1, 1, "k", "v")
	rg.eng.Run()
	if ackAt == 0 || sackAt == 0 {
		t.Fatalf("ACKs missing: pmnet=%v server=%v", ackAt, sackAt)
	}
	if ackAt >= sackAt {
		t.Fatalf("PMNet-ACK (%v) not earlier than server-ACK (%v)", ackAt, sackAt)
	}
	// The gap is the server-side latency moved off the critical path:
	// two extra host-stack traversals plus a wire hop each way.
	if sackAt-ackAt < 3*sim.Microsecond {
		t.Fatalf("gap %v suspiciously small", sackAt-ackAt)
	}
}

func TestCollisionBypassed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LogBytes = 2048 // exactly one slot: everything collides
	cfg.SlotBytes = 2048
	rg := newDevRig(t, cfg)
	rg.ackUpdates = false // keep the first entry live
	rg.sendUpdate(1, 1, "a", "1")
	rg.eng.RunUntil(50 * sim.Microsecond)
	rg.sendUpdate(1, 2, "b", "2")
	rg.eng.Run()

	if len(rg.serverGot) != 2 {
		t.Fatalf("server got %d updates, want 2 (collision still forwarded)", len(rg.serverGot))
	}
	if got := len(rg.clientGot[protocol.TypePMNetACK]); got != 1 {
		t.Fatalf("client got %d ACKs, want 1 (collision unacked)", got)
	}
	st := rg.dev.Stats()
	if st.Log.BypassedCollision != 1 {
		t.Fatalf("collision not counted: %+v", st.Log)
	}
}

func TestDuplicateRetransmissionReLogged(t *testing.T) {
	rg := newDevRig(t, DefaultConfig())
	rg.ackUpdates = false
	msg := rg.sendUpdate(1, 7, "k", "v")
	rg.eng.RunUntil(100 * sim.Microsecond)
	// Client times out and resends the identical packet: same hash slot,
	// same hash → accepted again (overwrite), another ACK.
	rg.client.Send(&netsim.Packet{
		To: serverID, SrcPort: 40000, DstPort: protocol.PortMin, PMNet: true, Msg: msg,
	})
	rg.eng.Run()
	if got := len(rg.clientGot[protocol.TypePMNetACK]); got != 2 {
		t.Fatalf("resend not re-acked: %d ACKs", got)
	}
	if rg.dev.Log().LiveEntries() != 1 {
		t.Fatal("duplicate should occupy one slot")
	}
}

func TestQueueFullBypassed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueBytes = 200 // room for ~1 small entry
	rg := newDevRig(t, cfg)
	rg.ackUpdates = false
	for i := 0; i < 5; i++ {
		rg.sendUpdate(1, uint32(i+1), "key", "0123456789012345678901234567890123456789")
	}
	rg.eng.Run()
	st := rg.dev.Stats()
	if st.Log.BypassedFull == 0 {
		t.Fatalf("no queue-full bypasses: %+v", st.Log)
	}
	if len(rg.serverGot) != 5 {
		t.Fatalf("server got %d updates, want all 5", len(rg.serverGot))
	}
	if uint64(len(rg.clientGot[protocol.TypePMNetACK])) != st.AcksSent {
		t.Fatal("ACK accounting inconsistent")
	}
}

func TestOversizeBypassed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlotBytes = 64
	rg := newDevRig(t, cfg)
	rg.sendUpdate(1, 1, "key", string(make([]byte, 100)))
	rg.eng.Run()
	st := rg.dev.Stats()
	if st.Log.BypassedOversize != 1 {
		t.Fatalf("oversize not bypassed: %+v", st.Log)
	}
	if len(rg.serverGot) != 1 {
		t.Fatal("oversize update not forwarded")
	}
	if len(rg.clientGot[protocol.TypePMNetACK]) != 0 {
		t.Fatal("oversize update wrongly acked")
	}
}

func TestRetransServedFromLog(t *testing.T) {
	rg := newDevRig(t, DefaultConfig())
	rg.ackUpdates = false
	msg := rg.sendUpdate(1, 3, "k", "v")
	rg.eng.RunUntil(100 * sim.Microsecond)
	gotBefore := len(rg.serverGot)

	// Server asks for a retransmission of the logged packet.
	rh := protocol.Header{Type: protocol.TypeRetrans, SessionID: 1, SeqNum: 3, FragTotal: 1}
	rh.Seal()
	if rh.HashVal != msg.Hdr.HashVal {
		t.Fatal("test setup: retrans hash must match request hash")
	}
	rg.server.Send(&netsim.Packet{
		To: clientID, SrcPort: protocol.PortMin, DstPort: 40000, PMNet: true,
		Msg: protocol.Message{Hdr: rh},
	})
	rg.eng.Run()

	if len(rg.serverGot) != gotBefore+1 {
		t.Fatalf("server got %d updates, want %d (retrans served)", len(rg.serverGot), gotBefore+1)
	}
	last := rg.serverGot[len(rg.serverGot)-1]
	if last.Msg.Hdr != msg.Hdr || string(last.Msg.Payload) != string(msg.Payload) {
		t.Fatal("retransmitted packet differs from logged packet")
	}
	if len(rg.clientGot[protocol.TypeRetrans]) != 0 {
		t.Fatal("served Retrans must be dropped, not forwarded to client")
	}
	if rg.dev.Stats().RetransAnswered != 1 {
		t.Fatal("retrans not counted")
	}
}

func TestRetransMissForwardedToClient(t *testing.T) {
	rg := newDevRig(t, DefaultConfig())
	rh := protocol.Header{Type: protocol.TypeRetrans, SessionID: 1, SeqNum: 99, FragTotal: 1}
	rh.Seal()
	rg.server.Send(&netsim.Packet{
		To: clientID, SrcPort: protocol.PortMin, DstPort: 40000, PMNet: true,
		Msg: protocol.Message{Hdr: rh},
	})
	rg.eng.Run()
	if len(rg.clientGot[protocol.TypeRetrans]) != 1 {
		t.Fatal("unserved Retrans must reach the client")
	}
}

func TestRecoveryReplay(t *testing.T) {
	rg := newDevRig(t, DefaultConfig())
	rg.ackUpdates = false
	const n = 20
	for i := 0; i < n; i++ {
		rg.sendUpdate(1, uint32(i+1), "k", "v")
	}
	rg.eng.RunUntil(sim.Millisecond)
	if rg.dev.Log().LiveEntries() != n {
		t.Fatalf("live entries = %d, want %d", rg.dev.Log().LiveEntries(), n)
	}
	rg.serverGot = nil

	// Recovering server polls the device.
	ph := protocol.Header{Type: protocol.TypeRecoverReq, FragTotal: 1}
	ph.Seal()
	rg.server.Send(&netsim.Packet{
		To: devID, SrcPort: protocol.PortMin, DstPort: protocol.PortMin, PMNet: true,
		Msg: protocol.Message{Hdr: ph},
	})
	rg.eng.Run()

	if len(rg.serverGot) != n {
		t.Fatalf("replayed %d, want %d", len(rg.serverGot), n)
	}
	if rg.dev.Stats().RecoveryResends != n {
		t.Fatalf("RecoveryResends = %d", rg.dev.Stats().RecoveryResends)
	}
	seen := make(map[uint32]bool)
	for _, p := range rg.serverGot {
		seen[p.Msg.Hdr.SeqNum] = true
	}
	if len(seen) != n {
		t.Fatal("replay lost or duplicated sequence numbers")
	}
}

func TestDeviceFailRestartKeepsPersistedLog(t *testing.T) {
	rg := newDevRig(t, DefaultConfig())
	rg.ackUpdates = false
	rg.sendUpdate(1, 1, "a", "1")
	rg.sendUpdate(1, 2, "b", "2")
	rg.eng.RunUntil(sim.Millisecond)
	if rg.dev.Log().LiveEntries() != 2 {
		t.Fatalf("setup: %d live", rg.dev.Log().LiveEntries())
	}
	rg.dev.Fail()
	rg.dev.Restart()
	if rg.dev.Log().LiveEntries() != 2 {
		t.Fatalf("after restart: %d live entries, want 2 (battery-backed PM)",
			rg.dev.Log().LiveEntries())
	}
}

func TestDeviceFailDropsInFlightWrite(t *testing.T) {
	rg := newDevRig(t, DefaultConfig())
	rg.ackUpdates = false
	rg.sendUpdate(1, 1, "a", "1")
	// Crash while the update is inside the device (after client stack 1µs +
	// wire ~1µs, before the ~273ns PM write completes at the device).
	rg.eng.RunUntil(2*sim.Microsecond + 200*sim.Nanosecond)
	rg.dev.Fail()
	rg.eng.RunUntil(10 * sim.Microsecond)
	rg.dev.Restart()
	rg.eng.Run()
	if rg.dev.Log().LiveEntries() != 0 {
		t.Fatal("unpersisted log entry survived device crash")
	}
	if len(rg.clientGot[protocol.TypePMNetACK]) != 0 {
		t.Fatal("client acked for a lost entry")
	}
}

func TestCacheHitServedInNetwork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheEntries = 128
	rg := newDevRig(t, cfg)
	rg.sendUpdate(1, 1, "key", "cached-value")
	rg.eng.RunUntil(sim.Millisecond)

	serverBypassBefore := len(rg.serverGot)
	rg.sendGet(1, 2, "key")
	rg.eng.Run()

	crs := rg.clientGot[protocol.TypeCacheResp]
	if len(crs) != 1 {
		t.Fatalf("client got %d cache responses, want 1", len(crs))
	}
	resp, err := protocol.DecodeResponse(crs[0].Msg.Payload)
	if err != nil || string(resp.Args[1]) != "cached-value" {
		t.Fatalf("cache response payload wrong: %+v %v", resp, err)
	}
	if len(rg.serverGot) != serverBypassBefore {
		t.Fatal("cache hit still reached the server")
	}
	if rg.dev.Stats().CacheResponses != 1 {
		t.Fatal("cache response not counted")
	}
}

func TestCacheMissFillsFromReadResp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheEntries = 128
	rg := newDevRig(t, cfg)
	rg.store["key"] = []byte("server-value") // present only on the server
	rg.sendGet(1, 1, "key")
	rg.eng.Run()
	if len(rg.clientGot[protocol.TypeReadResp]) != 1 {
		t.Fatal("miss did not produce a server read response")
	}
	if rg.dev.Cache().State("key") != CachePersisted {
		t.Fatalf("cache state = %v after fill", rg.dev.Cache().State("key"))
	}
	// Second read: in-network hit.
	rg.sendGet(1, 2, "key")
	rg.eng.Run()
	if len(rg.clientGot[protocol.TypeCacheResp]) != 1 {
		t.Fatal("second read not served by cache")
	}
}

func TestNonPMNetTrafficForwarded(t *testing.T) {
	rg := newDevRig(t, DefaultConfig())
	got := false
	rg.server.OnReceive(func(p *netsim.Packet) { got = !p.PMNet })
	rg.client.Send(&netsim.Packet{To: serverID, Raw: []byte("plain udp"), DstPort: 9999})
	rg.eng.Run()
	if !got {
		t.Fatal("non-PMNet packet not forwarded")
	}
}

func TestServerAckRacingPMWrite(t *testing.T) {
	// A server-ACK that arrives while the log write is still queued must
	// suppress the PMNet-ACK and reclaim the entry once the write lands.
	cfg := DefaultConfig()
	cfg.PM = pmSlowConfig(cfg.LogBytes)
	rg := newDevRig(t, cfg)
	rg.sendUpdate(1, 1, "k", "v")
	rg.eng.Run()
	if rg.dev.Log().LiveEntries() != 0 {
		t.Fatal("racing entry not reclaimed")
	}
	if len(rg.clientGot[protocol.TypePMNetACK]) != 0 {
		t.Fatal("PMNet-ACK sent for an already-completed request")
	}
	if len(rg.clientGot[protocol.TypeServerACK]) != 1 {
		t.Fatal("server-ACK lost")
	}
}

func TestEntryTTLRepairsLostServerAck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EntryTTL = 200 * sim.Microsecond
	rg := newDevRig(t, cfg)
	// The server applies the update but its ACK never makes it back:
	// simulate by having the server ACK only the *second* copy it sees.
	seen := 0
	rg.ackUpdates = false
	prevRecv := rg.serverGot
	_ = prevRecv
	rg.server.OnReceive(func(p *netsim.Packet) {
		if !p.PMNet || p.Msg.Hdr.Type != protocol.TypeUpdateReq {
			return
		}
		rg.serverGot = append(rg.serverGot, p)
		seen++
		if seen >= 2 {
			rg.sendServerAck(p) // the make-up ACK for the TTL resend
		}
	})
	rg.sendUpdate(1, 1, "k", "v")
	rg.eng.Run()
	if seen < 2 {
		t.Fatalf("TTL resend never reached the server (seen=%d)", seen)
	}
	if rg.dev.Stats().TTLResends == 0 {
		t.Fatal("TTLResends not counted")
	}
	if rg.dev.Log().LiveEntries() != 0 {
		t.Fatal("entry not reclaimed by the make-up ACK")
	}
}

func TestEntryTTLGivesUpAfterLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EntryTTL = 100 * sim.Microsecond
	cfg.ResendLimit = 3
	rg := newDevRig(t, cfg)
	rg.ackUpdates = false // server never ACKs anything
	rg.sendUpdate(1, 1, "k", "v")
	rg.eng.Run()
	// Original + 3 TTL resends, then the device stops.
	if got := len(rg.serverGot); got != 4 {
		t.Fatalf("server saw %d copies, want 4 (1 + ResendLimit)", got)
	}
	if rg.dev.Log().LiveEntries() != 1 {
		t.Fatal("entry should remain (recovery poll is the backstop)")
	}
}
