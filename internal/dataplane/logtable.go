package dataplane

import (
	"encoding/binary"
	"fmt"

	"pmnet/internal/pmem"
	"pmnet/internal/protocol"
)

// The PM log is an open-addressed table of fixed-size slots indexed by
// HashVal modulo the slot count (§IV-B1: "The HashVal in the PMNet header
// serves as the index to the log entry"). A colliding or oversized request
// is bypassed — forwarded without logging or acknowledging — exactly as the
// paper specifies.
//
// Slot layout on the PM media:
//
//	+0  valid  (1 byte: 0 empty, 1 valid)
//	+1  reserved (1 byte)
//	+2  length (2 bytes, big endian: encoded message bytes)
//	+4  hash   (4 bytes, big endian: HashVal of the logged packet)
//	+8  dst    (8 bytes, big endian: destination server node id — persisted
//	            so TTL repair still works after a device restart)
//	+16 message (protocol.Message wire form)
const slotMetaSize = 16

// slotState tracks the SRAM mirror of a slot's lifecycle. The mirror is
// advisory (it avoids PM reads on the fast path); the PM contents are
// authoritative and RebuildIndex reconstructs the mirror from them.
type slotState uint8

const (
	slotEmpty slotState = iota
	slotWriting
	slotValid
)

type slotMeta struct {
	state            slotState
	hash             uint32
	invalidateOnDone bool // server-ACK raced the PM write
	dst              int  // destination server node (also persisted in the slot)
	resends          int  // TTL resends performed (SRAM; resets on restart)
}

// LogTable manages the PM-resident request log behind the device's log
// queues.
type LogTable struct {
	dev      *pmem.Device
	queue    *pmem.Queue
	slotSize int
	slots    []slotMeta
	live     int    // count of slotValid entries, kept incrementally
	scratch  []byte // entry staging buffer (safe to reuse: TryWrite copies synchronously)
}

// LogStats counts log activity.
type LogStats struct {
	Logged            uint64 // entries accepted and queued for persist
	BypassedCollision uint64 // hash collision with a live entry
	BypassedFull      uint64 // log queue had no room
	BypassedOversize  uint64 // message larger than a slot
	Invalidated       uint64 // entries reclaimed by server-ACKs
	RetransHits       uint64
	RetransMisses     uint64
}

// NewLogTable builds a table over dev with fixed slotSize bytes per entry,
// fed through queue.
func NewLogTable(dev *pmem.Device, queue *pmem.Queue, slotSize int) *LogTable {
	if slotSize <= slotMetaSize {
		panic("dataplane: slot size too small")
	}
	n := dev.Len() / slotSize
	if n == 0 {
		panic("dataplane: PM too small for a single slot")
	}
	return &LogTable{
		dev:      dev,
		queue:    queue,
		slotSize: slotSize,
		slots:    make([]slotMeta, n),
		scratch:  make([]byte, 0, slotSize),
	}
}

// Slots returns the number of slots in the table.
func (t *LogTable) Slots() int { return len(t.slots) }

// LiveEntries returns the number of valid (un-reclaimed) entries. Maintained
// incrementally so the observability gauge can sample it per packet without
// an O(slots) scan (tables are sized for the bandwidth-delay product, easily
// tens of thousands of slots).
func (t *LogTable) LiveEntries() int { return t.live }

// scanLiveEntries recounts by scanning the mirror — the test oracle for the
// incremental count.
func (t *LogTable) scanLiveEntries() int {
	n := 0
	for _, s := range t.slots {
		if s.state == slotValid {
			n++
		}
	}
	return n
}

func (t *LogTable) slotFor(hash uint32) int { return int(hash % uint32(len(t.slots))) }

func (t *LogTable) slotOffset(i int) int { return i * t.slotSize }

// insertResult describes the outcome of an Insert attempt.
type insertResult uint8

const (
	insertAccepted insertResult = iota
	insertCollision
	insertQueueFull
	insertOversize
)

// Insert attempts to log msg headed for dst. onPersist runs when the entry
// is durable in the device PM — the moment PMNet may acknowledge the client.
func (t *LogTable) Insert(msg protocol.Message, dst int, stats *LogStats, onPersist func()) insertResult {
	wireLen := msg.WireSize()
	if wireLen+slotMetaSize > t.slotSize {
		stats.BypassedOversize++
		return insertOversize
	}
	idx := t.slotFor(msg.Hdr.HashVal)
	s := &t.slots[idx]
	if s.state != slotEmpty && s.hash != msg.Hdr.HashVal {
		stats.BypassedCollision++
		return insertCollision
	}
	entry := append(t.scratch[:0], 1, 0)
	entry = binary.BigEndian.AppendUint16(entry, uint16(wireLen))
	entry = binary.BigEndian.AppendUint32(entry, msg.Hdr.HashVal)
	entry = binary.BigEndian.AppendUint64(entry, uint64(dst))
	entry = msg.Hdr.Encode(entry)
	entry = append(entry, msg.Payload...)
	t.scratch = entry
	ok := t.queue.TryWrite(t.slotOffset(idx), entry, func() {
		switch {
		case s.invalidateOnDone:
			// A server-ACK arrived while the write was in the queue: the
			// server has already processed the request, so reclaim
			// immediately and do not acknowledge.
			s.invalidateOnDone = false
			t.reclaim(idx, stats)
		default:
			// A re-logged entry (retransmission racing its own first PM
			// write) completes twice: count the empty/writing → valid
			// transition, not the callback.
			if s.state != slotValid {
				t.live++
			}
			s.state = slotValid
			if onPersist != nil {
				onPersist()
			}
		}
	})
	if !ok {
		stats.BypassedFull++
		return insertQueueFull
	}
	if s.state == slotValid {
		// Re-logging over a still-live entry with the same hash (client
		// retransmission): it leaves the valid set until the rewrite lands.
		t.live--
	}
	s.state = slotWriting
	s.hash = msg.Hdr.HashVal
	s.dst = dst
	s.resends = 0
	stats.Logged++
	return insertAccepted
}

// reclaim writes the tombstone and clears the mirror. Invalidation uses a
// dedicated single-byte PM write that does not contend for log-queue space
// (the paper's separate read/write log queues; a 1-byte tombstone is far
// below the queue's granularity).
func (t *LogTable) reclaim(idx int, stats *LogStats) {
	off := t.slotOffset(idx)
	if err := t.dev.WriteAt([]byte{0}, off); err != nil {
		panic("dataplane: tombstone write failed: " + err.Error())
	}
	if err := t.dev.Persist(off, 1); err != nil {
		panic("dataplane: tombstone persist failed: " + err.Error())
	}
	if t.slots[idx].state == slotValid {
		t.live--
	}
	t.slots[idx] = slotMeta{}
	stats.Invalidated++
}

// Invalidate processes a server-ACK for the request identified by hash.
// Returns true if a matching live (or in-flight) entry was found.
func (t *LogTable) Invalidate(hash uint32, stats *LogStats) bool {
	idx := t.slotFor(hash)
	s := &t.slots[idx]
	switch {
	case s.state == slotValid && s.hash == hash:
		t.reclaim(idx, stats)
		return true
	case s.state == slotWriting && s.hash == hash:
		s.invalidateOnDone = true
		return true
	default:
		return false
	}
}

// Lookup schedules a PM read of the entry for hash; done receives the
// decoded logged message. It returns false — without scheduling — when the
// entry is absent or the read queue is full.
func (t *LogTable) Lookup(hash uint32, stats *LogStats, done func(protocol.Message)) bool {
	idx := t.slotFor(hash)
	s := &t.slots[idx]
	if s.state != slotValid || s.hash != hash {
		stats.RetransMisses++
		return false
	}
	ok := t.queue.TryRead(t.slotOffset(idx), t.slotSize, func(raw []byte) {
		msg, err := decodeSlot(raw)
		if err != nil {
			// The entry was reclaimed (server-ACK tombstone) while this
			// read sat in the PM queue: the request is already processed,
			// so there is nothing to retransmit.
			return
		}
		done(msg)
	})
	if !ok {
		stats.RetransMisses++
		return false
	}
	stats.RetransHits++
	return true
}

func decodeSlot(raw []byte) (protocol.Message, error) {
	msg, _, err := decodeSlotFull(raw)
	return msg, err
}

func decodeSlotFull(raw []byte) (protocol.Message, int, error) {
	if len(raw) < slotMetaSize || raw[0] != 1 {
		return protocol.Message{}, 0, fmt.Errorf("empty slot")
	}
	n := int(binary.BigEndian.Uint16(raw[2:]))
	if slotMetaSize+n > len(raw) {
		return protocol.Message{}, 0, fmt.Errorf("bad length %d", n)
	}
	dst := int(binary.BigEndian.Uint64(raw[8:]))
	msg, err := protocol.DecodeMessage(raw[slotMetaSize : slotMetaSize+n])
	return msg, dst, err
}

// ValidSlots returns the indices of live entries in slot order; used by the
// recovery resend loop.
func (t *LogTable) ValidSlots() []int {
	var out []int
	for i, s := range t.slots {
		if s.state == slotValid {
			out = append(out, i)
		}
	}
	return out
}

// ValidSlotsFor returns the live entries destined for one server — the
// recovery replay set when several servers share the device.
func (t *LogTable) ValidSlotsFor(dst int) []int {
	var out []int
	for i, s := range t.slots {
		if s.state == slotValid && s.dst == dst {
			out = append(out, i)
		}
	}
	return out
}

// ReadSlot schedules a PM read of slot idx (which must be valid), invoking
// done with the decoded message and ok=true — or ok=false when the entry was
// reclaimed while the read sat in the PM queue. Used by the recovery and
// TTL-repair paths; returns false without scheduling when the slot is
// already empty or the read queue is full (caller retries later).
func (t *LogTable) ReadSlot(idx int, done func(msg protocol.Message, ok bool)) bool {
	if t.slots[idx].state != slotValid {
		return false
	}
	return t.queue.TryRead(t.slotOffset(idx), t.slotSize, func(raw []byte) {
		msg, err := decodeSlot(raw)
		done(msg, err == nil)
	})
}

// DebugLiveHeaders synchronously decodes the headers of all live entries —
// for tests and diagnostics only (bypasses the queue/latency model).
func (t *LogTable) DebugLiveHeaders() []protocol.Header {
	var out []protocol.Header
	buf := make([]byte, t.slotSize)
	for _, i := range t.ValidSlots() {
		if err := t.dev.ReadAt(buf, t.slotOffset(i)); err != nil {
			continue
		}
		if msg, err := decodeSlot(buf); err == nil {
			out = append(out, msg.Hdr)
		}
	}
	return out
}

// RebuildIndex reconstructs the SRAM mirror by scanning the persistent
// image — what a battery-backed PMNet device does when it restarts after
// its own intermittent failure. In-flight queue writes must already have
// been dropped (pmem.Queue.PowerFail).
func (t *LogTable) RebuildIndex() {
	buf := make([]byte, t.slotSize)
	t.live = 0
	for i := range t.slots {
		t.slots[i] = slotMeta{}
		if err := t.dev.ReadAt(buf, t.slotOffset(i)); err != nil {
			panic("dataplane: index scan failed: " + err.Error())
		}
		if buf[0] != 1 {
			continue
		}
		msg, dst, err := decodeSlotFull(buf)
		if err != nil {
			continue // torn entry: treat as empty
		}
		t.slots[i] = slotMeta{state: slotValid, hash: msg.Hdr.HashVal, dst: dst}
		t.live++
	}
}
