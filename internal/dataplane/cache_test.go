package dataplane

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestCacheT1InsertPending(t *testing.T) {
	c := NewCache(8)
	c.OnUpdate("k", []byte("v1"))
	if c.State("k") != CachePending {
		t.Fatalf("state = %v, want pending", c.State("k"))
	}
	v, hit := c.Lookup("k")
	if !hit || string(v) != "v1" {
		t.Fatalf("Pending entry must serve reads: %q %v", v, hit)
	}
}

func TestCacheT2AckToPersisted(t *testing.T) {
	c := NewCache(8)
	c.OnUpdate("k", []byte("v1"))
	c.OnServerAck("k")
	if c.State("k") != CachePersisted {
		t.Fatalf("state = %v, want persisted", c.State("k"))
	}
	if v, hit := c.Lookup("k"); !hit || string(v) != "v1" {
		t.Fatal("Persisted entry must serve reads")
	}
}

func TestCacheT3PersistedUpdateBackToPending(t *testing.T) {
	c := NewCache(8)
	c.OnUpdate("k", []byte("v1"))
	c.OnServerAck("k")
	c.OnUpdate("k", []byte("v2"))
	if c.State("k") != CachePending {
		t.Fatalf("state = %v, want pending (T3)", c.State("k"))
	}
	if v, _ := c.Lookup("k"); string(v) != "v2" {
		t.Fatalf("T3 must install the new value, got %q", v)
	}
}

func TestCacheT4PendingUpdateGoesStale(t *testing.T) {
	c := NewCache(8)
	c.OnUpdate("k", []byte("v1"))
	c.OnUpdate("k", []byte("v2")) // second in-flight update
	if c.State("k") != CacheStale {
		t.Fatalf("state = %v, want stale (T4)", c.State("k"))
	}
	if _, hit := c.Lookup("k"); hit {
		t.Fatal("Stale entry must not serve reads")
	}
}

func TestCacheT5StaleStaysStale(t *testing.T) {
	c := NewCache(8)
	c.OnUpdate("k", []byte("v1"))
	c.OnUpdate("k", []byte("v2"))
	c.OnUpdate("k", []byte("v3"))
	if c.State("k") != CacheStale {
		t.Fatalf("state = %v, want stale (T5)", c.State("k"))
	}
}

func TestCacheT6StaleAckToInvalid(t *testing.T) {
	c := NewCache(8)
	c.OnUpdate("k", []byte("v1"))
	c.OnUpdate("k", []byte("v2"))
	c.OnServerAck("k") // first update's ACK
	if c.State("k") != CacheInvalid {
		t.Fatalf("state = %v, want invalid (T6)", c.State("k"))
	}
	if _, hit := c.Lookup("k"); hit {
		t.Fatal("Invalid entry must not serve reads")
	}
}

func TestCacheReadResponseFill(t *testing.T) {
	c := NewCache(8)
	c.OnReadResponse("k", []byte("server-value"))
	if c.State("k") != CachePersisted {
		t.Fatalf("state = %v, want persisted", c.State("k"))
	}
	if v, hit := c.Lookup("k"); !hit || string(v) != "server-value" {
		t.Fatal("fill must serve reads")
	}
	if c.Stats().Fills != 1 {
		t.Fatal("fill not counted")
	}
}

func TestCacheReadResponseMustNotClobberPending(t *testing.T) {
	c := NewCache(8)
	c.OnUpdate("k", []byte("new"))
	c.OnReadResponse("k", []byte("old-server-value"))
	if v, _ := c.Lookup("k"); string(v) != "new" {
		t.Fatalf("stale fill clobbered pending value: %q", v)
	}
	// Stale entries must not be resurrected either.
	c.OnUpdate("k", []byte("newer"))
	c.OnReadResponse("k", []byte("old"))
	if c.State("k") != CacheStale {
		t.Fatal("fill resurrected a stale entry")
	}
	// Invalid entries may be refilled.
	c.OnServerAck("k")
	c.OnReadResponse("k", []byte("fresh"))
	if v, hit := c.Lookup("k"); !hit || string(v) != "fresh" {
		t.Fatal("invalid entry not refilled")
	}
}

func TestCacheEvictionLRUPersistedOnly(t *testing.T) {
	c := NewCache(2)
	c.OnReadResponse("a", []byte("1"))
	c.OnReadResponse("b", []byte("2"))
	_, _ = c.Lookup("a") // make "b" the LRU
	c.OnReadResponse("c", []byte("3"))
	if _, hit := c.Lookup("b"); hit {
		t.Fatal("LRU entry b should have been evicted")
	}
	if _, hit := c.Lookup("a"); !hit {
		t.Fatal("recently used entry a was evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestCachePinnedEntriesNotEvicted(t *testing.T) {
	c := NewCache(2)
	c.OnUpdate("p1", []byte("x")) // Pending: pinned
	c.OnUpdate("p2", []byte("y")) // Pending: pinned
	c.OnReadResponse("q", []byte("z"))
	if c.State("p1") != CachePending || c.State("p2") != CachePending {
		t.Fatal("pinned entries were evicted")
	}
	if _, hit := c.Lookup("q"); hit {
		t.Fatal("insert should have failed with all entries pinned")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheMissCounting(t *testing.T) {
	c := NewCache(4)
	_, _ = c.Lookup("nope")
	c.OnUpdate("k", []byte("v"))
	_, _ = c.Lookup("k")
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCachePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCache(0) did not panic")
		}
	}()
	NewCache(0)
}

// Property: the cache never serves a value that was not the most recent
// update or a fill while no update was in flight. We model a single key's
// protocol with a reference implementation of Figure 11.
func TestQuickCacheStateMachine(t *testing.T) {
	type step struct {
		Kind uint8 // 0 update, 1 ack, 2 read-resp, 3 lookup
		Val  uint8
	}
	f := func(steps []step) bool {
		c := NewCache(4)
		state := CacheInvalid
		var value []byte
		exists := false
		for _, s := range steps {
			switch s.Kind % 4 {
			case 0:
				v := []byte{s.Val}
				c.OnUpdate("k", v)
				switch state {
				case CacheInvalid:
					state, value = CachePending, v
				case CachePersisted:
					state, value = CachePending, v
				case CachePending:
					state, value = CacheStale, nil
				}
				exists = true
			case 1:
				c.OnServerAck("k")
				switch state {
				case CachePending:
					state = CachePersisted
				case CacheStale:
					state, value = CacheInvalid, nil
				}
			case 2:
				v := []byte{s.Val}
				c.OnReadResponse("k", v)
				if !exists || state == CacheInvalid {
					state, value = CachePersisted, v
					exists = true
				}
			case 3:
				got, hit := c.Lookup("k")
				wantHit := state == CachePending || state == CachePersisted
				if hit != wantHit {
					return false
				}
				if hit && fmt.Sprintf("%v", got) != fmt.Sprintf("%v", value) {
					return false
				}
			}
			if exists && c.State("k") != state {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
