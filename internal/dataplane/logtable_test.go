package dataplane

import (
	"testing"

	"pmnet/internal/pmem"
	"pmnet/internal/protocol"
	"pmnet/internal/sim"
)

// pmSlowConfig returns a PM model slow enough (1 ms writes) that a
// server-ACK always overtakes the in-flight log write.
func pmSlowConfig(capacity int) pmem.Config {
	cfg := pmem.DefaultConfig(capacity)
	cfg.WriteLatency = sim.Millisecond
	return cfg
}

func newTable(t *testing.T, slots, slotSize, queueBytes int) (*LogTable, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	dev := pmem.NewDevice(pmem.DefaultConfig(slots * slotSize))
	q := pmem.NewQueue(eng, dev, queueBytes)
	return NewLogTable(dev, q, slotSize), eng
}

func mkMsg(session uint16, seq uint32, payload string) protocol.Message {
	return protocol.Fragment(protocol.TypeUpdateReq, session, seq, []byte(payload), 0)[0]
}

func TestLogInsertAndPersistCallback(t *testing.T) {
	tab, eng := newTable(t, 16, 2048, 4096)
	var stats LogStats
	persisted := false
	res := tab.Insert(mkMsg(1, 1, "data"), 0, &stats, func() { persisted = true })
	if res != insertAccepted {
		t.Fatalf("insert result %d", res)
	}
	if persisted {
		t.Fatal("persist callback ran synchronously")
	}
	eng.Run()
	if !persisted {
		t.Fatal("persist callback never ran")
	}
	if tab.LiveEntries() != 1 || stats.Logged != 1 {
		t.Fatalf("live=%d stats=%+v", tab.LiveEntries(), stats)
	}
}

func TestLogLookupReturnsLoggedMessage(t *testing.T) {
	tab, eng := newTable(t, 16, 2048, 4096)
	var stats LogStats
	msg := mkMsg(3, 9, "payload-bytes")
	tab.Insert(msg, 0, &stats, nil)
	eng.Run()
	var got protocol.Message
	if !tab.Lookup(msg.Hdr.HashVal, &stats, func(m protocol.Message) { got = m }) {
		t.Fatal("lookup missed")
	}
	eng.Run()
	if got.Hdr != msg.Hdr || string(got.Payload) != string(msg.Payload) {
		t.Fatalf("read back %+v", got)
	}
	if stats.RetransHits != 1 {
		t.Fatal("hit not counted")
	}
}

func TestLogLookupMiss(t *testing.T) {
	tab, _ := newTable(t, 16, 2048, 4096)
	var stats LogStats
	if tab.Lookup(12345, &stats, func(protocol.Message) {}) {
		t.Fatal("lookup hit an empty table")
	}
	if stats.RetransMisses != 1 {
		t.Fatal("miss not counted")
	}
}

func TestLogInvalidateReclaims(t *testing.T) {
	tab, eng := newTable(t, 16, 2048, 4096)
	var stats LogStats
	msg := mkMsg(1, 1, "x")
	tab.Insert(msg, 0, &stats, nil)
	eng.Run()
	if !tab.Invalidate(msg.Hdr.HashVal, &stats) {
		t.Fatal("invalidate missed a live entry")
	}
	if tab.LiveEntries() != 0 || stats.Invalidated != 1 {
		t.Fatal("entry not reclaimed")
	}
	// Slot reusable afterwards.
	if tab.Insert(mkMsg(1, 1, "y"), 0, &stats, nil) != insertAccepted {
		t.Fatal("slot not reusable after invalidation")
	}
}

func TestLogInvalidateUnknownHash(t *testing.T) {
	tab, _ := newTable(t, 16, 2048, 4096)
	var stats LogStats
	if tab.Invalidate(777, &stats) {
		t.Fatal("invalidate hit on empty table")
	}
}

func TestLogAckRacesWriteSuppressed(t *testing.T) {
	eng := sim.NewEngine()
	dev := pmem.NewDevice(pmSlowConfig(16 * 2048))
	q := pmem.NewQueue(eng, dev, 4096)
	tab := NewLogTable(dev, q, 2048)
	var stats LogStats
	msg := mkMsg(1, 1, "slow")
	acked := false
	tab.Insert(msg, 0, &stats, func() { acked = true })
	// ACK arrives while the PM write is still queued.
	if !tab.Invalidate(msg.Hdr.HashVal, &stats) {
		t.Fatal("in-flight entry not matched")
	}
	eng.Run()
	if acked {
		t.Fatal("persist callback (ACK) ran despite racing server-ACK")
	}
	if tab.LiveEntries() != 0 {
		t.Fatal("racing entry not reclaimed")
	}
}

func TestLogRebuildIndexFromPM(t *testing.T) {
	tab, eng := newTable(t, 16, 2048, 4096)
	var stats LogStats
	m1 := mkMsg(1, 1, "one")
	m2 := mkMsg(1, 2, "two")
	tab.Insert(m1, 0, &stats, nil)
	tab.Insert(m2, 0, &stats, nil)
	eng.Run()
	tab.Invalidate(m1.Hdr.HashVal, &stats)

	// Wipe the mirror and rebuild from PM: only m2 must come back.
	for i := range tab.slots {
		tab.slots[i] = slotMeta{}
	}
	tab.RebuildIndex()
	if tab.LiveEntries() != 1 {
		t.Fatalf("rebuilt %d entries, want 1", tab.LiveEntries())
	}
	var got protocol.Message
	if !tab.Lookup(m2.Hdr.HashVal, &stats, func(m protocol.Message) { got = m }) {
		t.Fatal("rebuilt entry not found")
	}
	eng.Run()
	if string(got.Payload) != "two" {
		t.Fatalf("rebuilt entry payload %q", got.Payload)
	}
}

// TestLiveEntriesIncrementalMatchesScan pins the incremental live counter
// to the scan oracle across every lifecycle transition, including the race
// that once broke it: a retransmission re-logging an entry while its first
// PM write is still queued leaves TWO persist completions for one slot, and
// only the empty/writing → valid transition may be counted.
func TestLiveEntriesIncrementalMatchesScan(t *testing.T) {
	eng := sim.NewEngine()
	dev := pmem.NewDevice(pmSlowConfig(16 * 2048))
	q := pmem.NewQueue(eng, dev, 8192)
	tab := NewLogTable(dev, q, 2048)
	var stats LogStats
	check := func(step string) {
		t.Helper()
		if got, want := tab.LiveEntries(), tab.scanLiveEntries(); got != want {
			t.Fatalf("%s: incremental live=%d, scan=%d", step, got, want)
		}
	}

	m1 := mkMsg(1, 1, "one")
	tab.Insert(m1, 0, &stats, nil)
	tab.Insert(m1, 0, &stats, nil) // retransmission: second write queued behind the first
	check("two writes queued")
	eng.Run() // both completions fire on the same slot
	check("after double completion")
	if tab.LiveEntries() != 1 {
		t.Fatalf("double completion counted twice: live=%d", tab.LiveEntries())
	}

	// Re-log over the now-valid entry: it leaves the valid set until the
	// rewrite lands.
	tab.Insert(m1, 0, &stats, nil)
	check("re-log over valid entry")
	eng.Run()
	check("re-log persisted")

	// Server-ACK racing a queued write reclaims without a valid interlude.
	m2 := mkMsg(1, 2, "two")
	tab.Insert(m2, 0, &stats, nil)
	tab.Invalidate(m2.Hdr.HashVal, &stats)
	check("ack racing queued write")
	eng.Run()
	check("racing ack settled")

	tab.Invalidate(m1.Hdr.HashVal, &stats)
	check("after invalidate")
	if tab.LiveEntries() != 0 {
		t.Fatalf("live=%d after all entries reclaimed", tab.LiveEntries())
	}

	tab.Insert(m1, 0, &stats, nil)
	eng.Run()
	tab.RebuildIndex()
	check("after rebuild")
}

func TestLogOversizeRejected(t *testing.T) {
	tab, _ := newTable(t, 16, 64, 4096)
	var stats LogStats
	if tab.Insert(mkMsg(1, 1, string(make([]byte, 100))), 0, &stats, nil) != insertOversize {
		t.Fatal("oversize accepted")
	}
	if stats.BypassedOversize != 1 {
		t.Fatal("not counted")
	}
}

func TestNewLogTablePanics(t *testing.T) {
	dev := pmem.NewDevice(pmem.DefaultConfig(1024))
	q := pmem.NewQueue(sim.NewEngine(), dev, 128)
	for _, fn := range []func(){
		func() { NewLogTable(dev, q, slotMetaSize) }, // slot too small
		func() { NewLogTable(dev, q, 4096) },         // PM smaller than a slot
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
