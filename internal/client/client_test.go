package client

import (
	"testing"

	"pmnet/internal/netsim"
	"pmnet/internal/protocol"
	"pmnet/internal/sim"
)

// echoRig wires a client host to a scriptable peer that plays the roles of
// PMNet device and server by injecting packets back.
type echoRig struct {
	eng  *sim.Engine
	net  *netsim.Network
	host *netsim.Host
	peer *netsim.Host
	// every PMNet packet that reached the peer
	got []*netsim.Packet
	// auto-responses toggled by tests
	sendPMNetAck  bool
	ackCopies     int
	sendServerAck bool
	sendReadResp  bool
	dropAll       bool
}

func newEchoRig(t *testing.T) *echoRig {
	t.Helper()
	eng := sim.NewEngine()
	r := sim.NewRand(3)
	net := netsim.New(eng, r.Fork())
	stack := netsim.StackModel{Base: 1 * sim.Microsecond}
	rig := &echoRig{eng: eng, net: net, ackCopies: 1}
	rig.host = netsim.NewHost(net, 1, "client", stack, 1, r.Fork())
	rig.peer = netsim.NewHost(net, 2, "peer", stack, 1, r.Fork())
	net.Connect(1, 2, netsim.LinkConfig{PropDelay: sim.Microsecond, Bandwidth: 10e9})
	rig.peer.OnReceive(func(p *netsim.Packet) {
		if !p.PMNet || rig.dropAll {
			return
		}
		rig.got = append(rig.got, p.Clone())
		hdr := p.Msg.Hdr
		reply := func(typ protocol.Type, payload []byte) {
			h := protocol.Header{Type: typ, SessionID: hdr.SessionID, SeqNum: hdr.SeqNum,
				FragIdx: hdr.FragIdx, FragTotal: hdr.FragTotal}
			h.Seal()
			rig.peer.Send(&netsim.Packet{
				To: p.From, SrcPort: p.DstPort, DstPort: p.SrcPort, PMNet: true,
				Msg: protocol.Message{Hdr: h, Payload: payload},
			})
		}
		switch hdr.Type {
		case protocol.TypeUpdateReq:
			if rig.sendPMNetAck {
				for i := 0; i < rig.ackCopies; i++ {
					reply(protocol.TypePMNetACK, nil)
				}
			}
			if rig.sendServerAck {
				reply(protocol.TypeServerACK, nil)
			}
		case protocol.TypeBypassReq:
			if rig.sendReadResp {
				resp := protocol.Response{Status: protocol.StatusOK,
					Args: [][]byte{[]byte("k"), []byte("v")}}
				h := protocol.Header{Type: protocol.TypeReadResp, SessionID: hdr.SessionID,
					SeqNum: hdr.SeqNum - uint32(hdr.FragIdx), FragTotal: 1}
				h.Seal()
				rig.peer.Send(&netsim.Packet{
					To: p.From, SrcPort: p.DstPort, DstPort: p.SrcPort, PMNet: true,
					Msg: protocol.Message{Hdr: h, Payload: resp.Encode()},
				})
			}
		}
	})
	return rig
}

func (rig *echoRig) session(cfg Config) *Session {
	cfg.Server = 2
	cfg.Session = 1
	return New(rig.host, cfg)
}

func TestPMNetModeCompletesOnDeviceAck(t *testing.T) {
	rig := newEchoRig(t)
	rig.sendPMNetAck = true
	s := rig.session(Config{Mode: ModePMNet})
	var res Result
	s.SendUpdate(protocol.PutReq([]byte("k"), []byte("v")), func(r Result) { res = r })
	rig.eng.Run()
	if res.Err != nil || res.Status != protocol.StatusOK {
		t.Fatalf("update failed: %+v", res)
	}
	if res.Latency <= 0 {
		t.Fatal("latency not measured")
	}
	if s.Outstanding() != 0 {
		t.Fatal("request leaked")
	}
}

func TestBaselineModeIgnoresPMNetAck(t *testing.T) {
	rig := newEchoRig(t)
	rig.sendPMNetAck = true // only PMNet ACKs, no server ACK
	s := rig.session(Config{Mode: ModeBaseline, Timeout: 100 * sim.Microsecond, MaxRetries: 2})
	var res Result
	s.SendUpdate(protocol.PutReq([]byte("k"), []byte("v")), func(r Result) { res = r })
	rig.eng.Run()
	// Without a server-ACK the baseline request must eventually fail.
	if res.Err == nil {
		t.Fatal("baseline completed on PMNet-ACK alone")
	}
	if s.Stats().Failed != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestReplicationNeedsKAcks(t *testing.T) {
	rig := newEchoRig(t)
	rig.sendPMNetAck = true
	rig.ackCopies = 2 // only two devices acked
	s := rig.session(Config{Mode: ModePMNet, RequiredAcks: 3,
		Timeout: 100 * sim.Microsecond, MaxRetries: 1})
	completed := false
	s.SendUpdate(protocol.PutReq([]byte("k"), []byte("v")), func(r Result) {
		completed = r.Err == nil
	})
	rig.eng.RunUntil(90 * sim.Microsecond)
	if completed {
		t.Fatal("completed with 2/3 ACKs")
	}
	// Third ACK arrives late (e.g. from the recovered third device).
	rig.ackCopies = 3
	rig.eng.Run()
	// The retry resends; peer now acks 3 times → completes.
	if !completed {
		t.Fatal("never completed after third ACK")
	}
}

func TestTimeoutResendsAndEventuallyFails(t *testing.T) {
	rig := newEchoRig(t)
	rig.dropAll = true
	s := rig.session(Config{Mode: ModePMNet, Timeout: 50 * sim.Microsecond, MaxRetries: 3})
	var res Result
	s.SendUpdate(protocol.PutReq([]byte("k"), []byte("v")), func(r Result) { res = r })
	rig.eng.Run()
	if res.Err == nil {
		t.Fatal("request succeeded against a black hole")
	}
	if res.Resends != 4 { // MaxRetries+1 attempts counted
		t.Fatalf("resends = %d", res.Resends)
	}
	if s.Stats().Resends != 3 {
		t.Fatalf("stats.Resends = %d, want 3", s.Stats().Resends)
	}
}

func TestBypassCompletesOnReadResp(t *testing.T) {
	rig := newEchoRig(t)
	rig.sendReadResp = true
	s := rig.session(Config{Mode: ModePMNet})
	var res Result
	s.Bypass(protocol.GetReq([]byte("k")), func(r Result) { res = r })
	rig.eng.Run()
	if res.Err != nil || string(res.Value) != "v" {
		t.Fatalf("read failed: %+v", res)
	}
	if res.FromCache {
		t.Fatal("server read marked as cache hit")
	}
}

func TestBypassSeqSpaceSeparateFromUpdates(t *testing.T) {
	rig := newEchoRig(t)
	rig.sendPMNetAck = true
	rig.sendServerAck = true
	rig.sendReadResp = true
	s := rig.session(Config{Mode: ModePMNet})
	s.SendUpdate(protocol.PutReq([]byte("a"), []byte("1")), nil)
	s.Bypass(protocol.GetReq([]byte("a")), nil)
	s.SendUpdate(protocol.PutReq([]byte("b"), []byte("2")), nil)
	rig.eng.Run()
	var updSeqs, bypSeqs []uint32
	for _, p := range rig.got {
		switch p.Msg.Hdr.Type {
		case protocol.TypeUpdateReq:
			updSeqs = append(updSeqs, p.Msg.Hdr.SeqNum)
		case protocol.TypeBypassReq:
			bypSeqs = append(bypSeqs, p.Msg.Hdr.SeqNum)
		}
	}
	if len(updSeqs) != 2 || updSeqs[0] != 1 || updSeqs[1] != 2 {
		t.Fatalf("update seqs %v: reads must not consume update stream numbers", updSeqs)
	}
	if len(bypSeqs) != 1 || bypSeqs[0]&BypassSeqBit == 0 {
		t.Fatalf("bypass seqs %v must carry the bypass bit", bypSeqs)
	}
}

func TestRetransFromServerResendsFragment(t *testing.T) {
	rig := newEchoRig(t)
	s := rig.session(Config{Mode: ModePMNet, Timeout: 10 * sim.Millisecond})
	s.SendUpdate(protocol.PutReq([]byte("k"), []byte("v")), nil)
	rig.eng.RunUntil(100 * sim.Microsecond)
	sentBefore := len(rig.got)

	// Server-style Retrans for seq 1.
	rh := protocol.Header{Type: protocol.TypeRetrans, SessionID: 1, SeqNum: 1, FragTotal: 1}
	rh.Seal()
	rig.peer.Send(&netsim.Packet{
		To: 1, SrcPort: protocol.PortMin, DstPort: 40001, PMNet: true,
		Msg: protocol.Message{Hdr: rh},
	})
	rig.eng.RunUntil(200 * sim.Microsecond)
	if len(rig.got) != sentBefore+1 {
		t.Fatalf("client did not resend on Retrans: %d → %d", sentBefore, len(rig.got))
	}
	if s.Stats().RetransServed != 1 {
		t.Fatal("RetransServed not counted")
	}
	s.Close()
}

func TestCloseFailsOutstanding(t *testing.T) {
	rig := newEchoRig(t)
	rig.dropAll = true
	s := rig.session(Config{Mode: ModePMNet, Timeout: sim.Second})
	var res Result
	s.SendUpdate(protocol.PutReq([]byte("k"), []byte("v")), func(r Result) { res = r })
	s.Close()
	if res.Err == nil {
		t.Fatal("outstanding request survived Close")
	}
	// New requests fail immediately.
	var res2 Result
	s.SendUpdate(protocol.PutReq([]byte("k"), []byte("v")), func(r Result) { res2 = r })
	if res2.Err == nil {
		t.Fatal("send on closed session succeeded")
	}
	rig.eng.Run()
}

func TestFragmentedUpdateNeedsAllFragmentAcks(t *testing.T) {
	rig := newEchoRig(t)
	rig.sendPMNetAck = true
	s := rig.session(Config{Mode: ModePMNet, MTU: 200})
	payload := make([]byte, 500) // several fragments at MTU 200
	var res Result
	s.SendUpdate(protocol.PutReq([]byte("k"), payload), func(r Result) { res = r })
	rig.eng.Run()
	if res.Err != nil {
		t.Fatalf("fragmented update failed: %v", res.Err)
	}
	frags := 0
	for _, p := range rig.got {
		if p.Msg.Hdr.Type == protocol.TypeUpdateReq {
			frags++
		}
	}
	if frags < 3 {
		t.Fatalf("only %d fragments sent", frags)
	}
	if s.Stats().PMNetAcks != uint64(frags) {
		t.Fatalf("acks %d != fragments %d", s.Stats().PMNetAcks, frags)
	}
}

func TestForeignSessionPacketsIgnored(t *testing.T) {
	rig := newEchoRig(t)
	s := rig.session(Config{Mode: ModePMNet, Timeout: 50 * sim.Microsecond, MaxRetries: 1})
	var res Result
	s.SendUpdate(protocol.PutReq([]byte("k"), []byte("v")), func(r Result) { res = r })
	// ACK for a different session must not complete our request.
	h := protocol.Header{Type: protocol.TypePMNetACK, SessionID: 99, SeqNum: 1, FragTotal: 1}
	h.Seal()
	rig.peer.Send(&netsim.Packet{
		To: 1, SrcPort: protocol.PortMin, DstPort: 40001, PMNet: true,
		Msg: protocol.Message{Hdr: h},
	})
	rig.eng.Run()
	if res.Err == nil {
		t.Fatal("foreign-session ACK completed our request")
	}
}

// TestBackoffTimeoutSchedule pins the per-retry timeout sequence: doubling
// from Timeout, capped at BackoffCap, and the plain fixed schedule when
// Backoff is off.
func TestBackoffTimeoutSchedule(t *testing.T) {
	rig := newEchoRig(t)
	s := rig.session(Config{Mode: ModePMNet, Timeout: 50 * sim.Microsecond,
		Backoff: true, BackoffCap: 400 * sim.Microsecond})
	want := []sim.Time{50, 100, 200, 400, 400, 400}
	for k, w := range want {
		if got := s.timeoutFor(k); got != w*sim.Microsecond {
			t.Errorf("timeoutFor(%d) = %v, want %v", k, got, w*sim.Microsecond)
		}
	}
	fixed := rig.session(Config{Mode: ModePMNet, Timeout: 50 * sim.Microsecond})
	for k := 0; k < 6; k++ {
		if got := fixed.timeoutFor(k); got != 50*sim.Microsecond {
			t.Errorf("fixed timeoutFor(%d) = %v, want 50µs", k, got)
		}
	}
}

// TestBackoffDefaultCap: enabling Backoff without a cap defaults to
// 32×Timeout.
func TestBackoffDefaultCap(t *testing.T) {
	rig := newEchoRig(t)
	s := rig.session(Config{Mode: ModePMNet, Timeout: 10 * sim.Microsecond, Backoff: true})
	if got := s.timeoutFor(10); got != 320*sim.Microsecond {
		t.Errorf("timeoutFor(10) = %v, want 320µs (32×Timeout cap)", got)
	}
}

// TestBackoffStretchesFailureTime: against a black hole, backoff must space
// retries out — same retry budget, strictly later final failure — while the
// default path keeps the exact fixed-timeout schedule (byte-identity of
// existing outputs depends on it).
func TestBackoffStretchesFailureTime(t *testing.T) {
	failTime := func(backoff bool) sim.Time {
		rig := newEchoRig(t)
		rig.dropAll = true
		s := rig.session(Config{Mode: ModePMNet, Timeout: 50 * sim.Microsecond,
			MaxRetries: 3, Backoff: backoff})
		var failed sim.Time
		s.SendUpdate(protocol.PutReq([]byte("k"), []byte("v")), func(r Result) {
			if r.Err == nil {
				t.Fatal("request succeeded against a black hole")
			}
			failed = rig.eng.Now()
		})
		rig.eng.Run()
		return failed
	}
	fixed := failTime(false)
	if fixed != 200*sim.Microsecond { // 4 attempts × 50µs, unchanged schedule
		t.Errorf("fixed-timeout failure at %v, want 200µs", fixed)
	}
	backed := failTime(true)
	if backed != 750*sim.Microsecond { // 50+100+200+400
		t.Errorf("backoff failure at %v, want 750µs", backed)
	}
}

// TestRecycledPendingTimerNeverZombies is the lazy-cancellation regression
// test at the client layer: finishing a request cancels its retransmission
// timer lazily (the dead node stays queued in the engine's wheel until
// swept), and the pending record — with its once-bound timerFn closure — is
// immediately recycled for the next request. If the dead timer fired anyway
// it would invoke onTimeout on the RECYCLED record and trigger a spurious
// resend for a request that never timed out. Drive many back-to-back
// requests whose completions land well before each timeout, then let the
// clock run far past every cancelled deadline: the resend counter must stay
// zero.
func TestRecycledPendingTimerNeverZombies(t *testing.T) {
	rig := newEchoRig(t)
	rig.sendPMNetAck = true
	s := rig.session(Config{Mode: ModePMNet, Timeout: 50 * sim.Microsecond, MaxRetries: 3})
	completed := 0
	var issue func(n int)
	issue = func(n int) {
		if n == 0 {
			return
		}
		// Each completion recycles the pending record and immediately
		// reuses it, while the previous request's cancelled timer is still
		// parked in the wheel (its deadline is ~50µs out; the round trip is
		// a few µs).
		s.SendUpdate(protocol.PutReq([]byte("k"), []byte("v")), func(r Result) {
			if r.Err != nil {
				t.Fatalf("request failed: %v", r.Err)
			}
			completed++
			issue(n - 1)
		})
	}
	issue(64)
	rig.eng.Run()
	// Run far past the last cancelled deadline so every dead timer node has
	// been reached and discarded by the wheel.
	rig.eng.RunUntil(rig.eng.Now() + 10*50*sim.Microsecond)
	if completed != 64 {
		t.Fatalf("completed %d of 64", completed)
	}
	if got := s.Stats().Resends; got != 0 {
		t.Fatalf("zombie timers caused %d resends; every request completed promptly", got)
	}
	if s.Outstanding() != 0 {
		t.Fatal("requests leaked")
	}
	if got := rig.eng.Pending(); got != 0 {
		t.Fatalf("engine still reports %d live events after drain", got)
	}
}
